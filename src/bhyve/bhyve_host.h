// BhyveVisor: the simulated FreeBSD bhyve-style hypervisor (type-II).
//
// A FreeBSD host kernel with the vmm.ko module; each VM is driven by a
// user-space bhyve process. Guest memory comes from wired superpage chunks.
// The scheduler model is ULE-flavoured: a simple per-CPU round-robin with
// interactivity scoring omitted (VM Management State — rebuilt, never
// translated, like the other two).

#ifndef HYPERTP_SRC_BHYVE_BHYVE_HOST_H_
#define HYPERTP_SRC_BHYVE_BHYVE_HOST_H_

#include <map>
#include <string>
#include <vector>

#include "src/bhyve/bhyve_formats.h"
#include "src/hv/guest_memory.h"
#include "src/hv/hypervisor.h"

namespace hypertp {

// Minimal ULE-ish run queue: vCPU threads round-robin per CPU.
class UleRunQueue {
 public:
  explicit UleRunQueue(int cpus);

  void AddThread(uint64_t vm_uid, uint32_t vcpu);
  void RemoveVm(uint64_t vm_uid);
  size_t total_threads() const;
  int cpus() const { return static_cast<int>(queues_.size()); }
  const std::vector<std::vector<std::pair<uint64_t, uint32_t>>>& queues() const {
    return queues_;
  }

 private:
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> queues_;
};

struct BhyveVm {
  int vm_handle = 0;  // /dev/vmm/<name> handle; changes across save/restore.
  uint64_t uid = 0;
  std::string name;
  VmRunState run_state = VmRunState::kRunning;
  uint64_t memory_bytes = 0;
  bool huge_pages = false;

  GuestAddressSpace memmap;  // vm_mmap_memseg-style mapping.
  BhyvePlatform platform;
  std::vector<UisrDeviceState> devices;  // The bhyve process's device models.
  uint32_t bhyve_pid = 0;
  uint64_t vm_state_frames = 0;

  // Monotonic platform-state generation (Hypervisor::StateGeneration): bumps
  // on guest-visible state changes, never on pause/resume/save.
  uint64_t state_generation = 1;
};

class BhyveVisor : public Hypervisor {
 public:
  explicit BhyveVisor(Machine& machine);
  ~BhyveVisor() override;

  BhyveVisor(const BhyveVisor&) = delete;
  BhyveVisor& operator=(const BhyveVisor&) = delete;

  std::string_view name() const override { return "bhyvish-13.1"; }
  HypervisorKind kind() const override { return HypervisorKind::kBhyve; }
  HypervisorType type() const override { return HypervisorType::kType2; }
  Machine& machine() override { return *machine_; }
  const Machine& machine() const override { return *machine_; }

  Result<VmId> CreateVm(const VmConfig& config) override;
  Result<void> DestroyVm(VmId id) override;
  Result<void> PauseVm(VmId id) override;
  Result<void> ResumeVm(VmId id) override;
  Result<VmInfo> GetVmInfo(VmId id) const override;
  std::vector<VmId> ListVms() const override;

  Result<std::vector<GuestMapping>> GuestMemoryMap(VmId id) const override;
  Result<uint64_t> ReadGuestPage(VmId id, Gfn gfn) const override;
  Result<void> WriteGuestPage(VmId id, Gfn gfn, uint64_t content) override;

  Result<void> AdvanceGuestClocks(VmId id, SimDuration delta) override;

  Result<uint64_t> StateGeneration(VmId id) const override;
  Result<void> InjectGuestEvent(VmId id, GuestEventKind kind) override;

  Result<void> EnableDirtyLogging(VmId id) override;
  Result<std::vector<Gfn>> FetchAndClearDirtyLog(VmId id) override;
  Result<void> DisableDirtyLogging(VmId id) override;

  Result<UisrVm> SaveVmToUisr(VmId id, FixupLog* log) override;
  Result<VmId> RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                 FixupLog* log) override;

  uint64_t HypervisorFrames() const override;

  Result<std::vector<std::pair<Gfn, uint64_t>>> DumpGuestContent(VmId id) const override;

  Result<void> PrepareVmForTransplant(VmId id) override;

  void DetachForMicroReboot() override;

  MigrationTraits migration_traits() const override {
    // The bhyve process restore path sits between xl and kvmtool.
    return MigrationTraits{4, MillisF(8.0), MillisF(3.0)};
  }

  // --- bhyve-specific introspection ----------------------------------------
  Result<const BhyveVm*> FindVm(VmId id) const;
  Result<VmId> FindVmByUid(uint64_t uid) const;
  const UleRunQueue& scheduler() const { return scheduler_; }
  void RebuildScheduler();

 private:
  Result<BhyveVm*> MutableVm(VmId id);
  Result<void> AllocateGuestMemory(BhyveVm& vm);
  Result<void> AdoptGuestMemory(BhyveVm& vm, const std::vector<PramPageEntry>& entries);
  Result<void> AllocateVmStateFrames(BhyveVm& vm);
  void FreeVmFrames(const BhyveVm& vm);

  Machine* machine_;
  UleRunQueue scheduler_;
  std::map<int, BhyveVm> vms_;  // Keyed by vm handle.
  int next_handle_ = 1;
  uint32_t next_pid_ = 700;
  uint64_t hv_frames_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_BHYVE_BHYVE_HOST_H_
