#include "src/bhyve/bhyve_formats.h"

namespace hypertp {

uint32_t PackVmxAccessRights(const UisrSegment& seg) {
  return static_cast<uint32_t>((seg.type & 0xF) | ((seg.s & 1) << 4) | ((seg.dpl & 3) << 5) |
                               ((seg.present & 1) << 7) | ((seg.avl & 1) << 12) |
                               ((seg.l & 1) << 13) | ((seg.db & 1) << 14) |
                               ((seg.g & 1) << 15) | ((seg.unusable & 1) << 16));
}

void UnpackVmxAccessRights(uint32_t access, UisrSegment& seg) {
  seg.type = access & 0xF;
  seg.s = (access >> 4) & 1;
  seg.dpl = (access >> 5) & 3;
  seg.present = (access >> 7) & 1;
  seg.avl = (access >> 12) & 1;
  seg.l = (access >> 13) & 1;
  seg.db = (access >> 14) & 1;
  seg.g = (access >> 15) & 1;
  seg.unusable = (access >> 16) & 1;
}

BhyveSegDesc ToBhyveSegDesc(const UisrSegment& seg) {
  BhyveSegDesc desc;
  desc.base = seg.base;
  desc.limit = seg.limit;
  desc.access = PackVmxAccessRights(seg);
  desc.selector = seg.selector;
  return desc;
}

UisrSegment FromBhyveSegDesc(const BhyveSegDesc& desc) {
  UisrSegment seg;
  seg.base = desc.base;
  seg.limit = desc.limit;
  seg.selector = desc.selector;
  UnpackVmxAccessRights(desc.access, seg);
  return seg;
}

}  // namespace hypertp
