// BhyveVisor's UISR translation layer. Adding this hypervisor to the
// repertoire cost exactly two converters (to/from UISR) — the 2N scaling the
// paper's §3.1 claims for UISR, versus the 2(N-1) pairwise converters that
// direct translation against both existing hypervisors would have needed.

#ifndef HYPERTP_SRC_BHYVE_BHYVE_UISR_H_
#define HYPERTP_SRC_BHYVE_BHYVE_UISR_H_

#include "src/base/result.h"
#include "src/bhyve/bhyve_formats.h"
#include "src/hv/hypervisor.h"
#include "src/uisr/records.h"

namespace hypertp {

// Lossless per-vCPU translation.
Result<UisrVcpu> BhyveVcpuToUisr(const BhyveVcpu& vcpu);
Result<BhyveVcpu> BhyveVcpuFromUisr(const UisrVcpu& vcpu, uint64_t vm_uid, FixupLog* log);

// Platform translation. Lossy parts, each with a fixup entry:
//  - UISR -> bhyve drops PIT state (bhyve guests use the HPET);
//  - IOAPIC pins beyond 32 are remapped to free pins (when `remap_high_pins`)
//    or disconnected.
// bhyve -> UISR synthesizes a reset-default PIT.
Result<BhyvePlatform> BhyvePlatformFromUisr(const UisrVm& vm, FixupLog* log,
                                            bool remap_high_pins = false);
Result<void> BhyvePlatformToUisr(const BhyvePlatform& platform, UisrVm& out, FixupLog* log);

}  // namespace hypertp

#endif  // HYPERTP_SRC_BHYVE_BHYVE_UISR_H_
