#include "src/bhyve/bhyve_host.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/bhyve/bhyve_uisr.h"
#include "src/hv/devices.h"

namespace hypertp {
namespace {

// FreeBSD host kernel + userland (HV State).
constexpr uint64_t kFreebsdBytes = 1536ull << 20;
// Guest memory comes in wired superpage chunks.
constexpr uint64_t kSuperpageChunkFrames = 131072;  // 512 MiB.
// The bhyve process's working set per VM.
constexpr uint64_t kBhyveProcFrames = 8192;  // 32 MiB.

}  // namespace

UleRunQueue::UleRunQueue(int cpus) { queues_.resize(static_cast<size_t>(std::max(cpus, 1))); }

void UleRunQueue::AddThread(uint64_t vm_uid, uint32_t vcpu) {
  auto it = std::min_element(queues_.begin(), queues_.end(),
                             [](const auto& a, const auto& b) { return a.size() < b.size(); });
  it->emplace_back(vm_uid, vcpu);
}

void UleRunQueue::RemoveVm(uint64_t vm_uid) {
  for (auto& queue : queues_) {
    std::erase_if(queue, [vm_uid](const auto& t) { return t.first == vm_uid; });
  }
}

size_t UleRunQueue::total_threads() const {
  size_t n = 0;
  for (const auto& queue : queues_) {
    n += queue.size();
  }
  return n;
}

BhyveVisor::BhyveVisor(Machine& machine)
    : machine_(&machine), scheduler_(machine.profile().threads) {
  const FrameOwner hv{FrameOwnerKind::kHypervisor, 0};
  uint64_t remaining = kFreebsdBytes / kPageSize;
  uint64_t chunk = kSuperpageChunkFrames;
  while (remaining > 0 && chunk > 0) {
    const uint64_t want = std::min(remaining, chunk);
    auto mfn = machine_->memory().Alloc(want, 1, hv);
    if (mfn.ok()) {
      hv_frames_ += want;
      remaining -= want;
    } else {
      chunk /= 2;
    }
  }
  if (remaining > 0) {
    HYPERTP_LOG(kError, "bhyve") << "boot: machine too small for FreeBSD";
  }
  HYPERTP_LOG(kInfo, "bhyve") << "bhyvish-13.1 booted on " << machine_->hostname();
}

BhyveVisor::~BhyveVisor() {
  for (auto& [handle, vm] : vms_) {
    FreeVmFrames(vm);
  }
  if (hv_frames_ > 0) {
    machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kHypervisor, 0});
  }
}

Result<BhyveVm*> BhyveVisor::MutableVm(VmId id) {
  auto it = vms_.find(static_cast<int>(id));
  if (it == vms_.end()) {
    return NotFoundError("bhyve: no vm handle " + std::to_string(id));
  }
  return &it->second;
}

Result<const BhyveVm*> BhyveVisor::FindVm(VmId id) const {
  auto it = vms_.find(static_cast<int>(id));
  if (it == vms_.end()) {
    return NotFoundError("bhyve: no vm handle " + std::to_string(id));
  }
  return &it->second;
}

Result<VmId> BhyveVisor::FindVmByUid(uint64_t uid) const {
  for (const auto& [handle, vm] : vms_) {
    if (vm.uid == uid) {
      return static_cast<VmId>(handle);
    }
  }
  return NotFoundError("bhyve: no vm with uid " + std::to_string(uid));
}

Result<void> BhyveVisor::AllocateGuestMemory(BhyveVm& vm) {
  const FrameOwner owner{FrameOwnerKind::kGuest, vm.uid};
  uint64_t remaining = vm.memory_bytes / kPageSize;
  Gfn gfn = 0;
  const uint64_t align = vm.huge_pages ? kFramesPerHugePage : 1;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kSuperpageChunkFrames);
    HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, machine_->memory().Alloc(chunk, align, owner));
    HYPERTP_RETURN_IF_ERROR(vm.memmap.MapExtent(gfn, mfn, chunk));
    gfn += chunk;
    remaining -= chunk;
  }
  return OkResult();
}

Result<void> BhyveVisor::AdoptGuestMemory(BhyveVm& vm,
                                          const std::vector<PramPageEntry>& entries) {
  const FrameOwner owner{FrameOwnerKind::kGuest, vm.uid};
  for (const PramPageEntry& e : entries) {
    for (Mfn m = e.mfn; m < e.mfn + e.frame_count(); ++m) {
      HYPERTP_ASSIGN_OR_RETURN(FrameOwner actual, machine_->memory().OwnerOf(m));
      if (!(actual == owner)) {
        return DataLossError("bhyve: in-place frame " + std::to_string(m) +
                             " not owned by guest uid " + std::to_string(vm.uid));
      }
    }
    HYPERTP_RETURN_IF_ERROR(vm.memmap.MapExtent(e.gfn, e.mfn, e.frame_count()));
  }
  if (vm.memmap.mapped_frames() != vm.memory_bytes / kPageSize) {
    return DataLossError("bhyve: PRAM file covers " + std::to_string(vm.memmap.mapped_frames()) +
                         " frames, VM declares " + std::to_string(vm.memory_bytes / kPageSize));
  }
  return OkResult();
}

Result<void> BhyveVisor::AllocateVmStateFrames(BhyveVm& vm) {
  const FrameOwner state_owner{FrameOwnerKind::kVmState, vm.uid};
  const FrameOwner vmm_owner{FrameOwnerKind::kVmm, vm.uid};
  const uint64_t ept_frames = vm.memory_bytes / kHugePageSize + 8;
  HYPERTP_ASSIGN_OR_RETURN(Mfn ept, machine_->memory().Alloc(ept_frames, 1, state_owner));
  (void)ept;
  vm.vm_state_frames = ept_frames;
  HYPERTP_ASSIGN_OR_RETURN(Mfn proc, machine_->memory().Alloc(kBhyveProcFrames, 1, vmm_owner));
  (void)proc;
  return OkResult();
}

void BhyveVisor::FreeVmFrames(const BhyveVm& vm) {
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kGuest, vm.uid});
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kVmState, vm.uid});
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kVmm, vm.uid});
}

Result<VmId> BhyveVisor::CreateVm(const VmConfig& config) {
  HYPERTP_RETURN_IF_ERROR(ValidateVmConfig(config, 128));

  BhyveVm vm;
  vm.vm_handle = next_handle_++;
  vm.uid = config.uid != 0 ? config.uid : AllocateVmUid();
  vm.name = config.name;
  vm.memory_bytes = config.memory_bytes;
  vm.huge_pages = config.huge_pages;
  vm.bhyve_pid = next_pid_++;
  for (const auto& [handle, existing] : vms_) {
    if (existing.uid == vm.uid) {
      return AlreadyExistsError("bhyve: uid " + std::to_string(vm.uid) + " already hosted");
    }
  }

  FixupLog seed_log;
  for (uint32_t i = 0; i < config.vcpus; ++i) {
    HYPERTP_ASSIGN_OR_RETURN(BhyveVcpu vcpu,
                             BhyveVcpuFromUisr(MakeSyntheticVcpu(vm.uid, i), vm.uid, &seed_log));
    vm.platform.vcpus.push_back(std::move(vcpu));
  }

  // bhyve wires its virtio slots to pins 24..31 (within its 32-pin IOAPIC,
  // above KVM's 24 — so a bhyve->KVM transplant exercises the pin fixup).
  vm.platform.ioapic.id = 0;
  vm.platform.ioapic.redirtbl[4] = 0x10004;  // COM1.
  uint32_t instance = 0;
  for (const DeviceConfig& dev_config : config.devices) {
    HYPERTP_ASSIGN_OR_RETURN(
        UisrDeviceState dev,
        MakeDefaultDeviceState(dev_config.model, instance, vm.uid, dev_config.mode));
    if (dev_config.model.starts_with("virtio")) {
      vm.platform.ioapic.redirtbl[24 + instance % 8] = 0x10050 + instance;
    }
    vm.devices.push_back(std::move(dev));
    ++instance;
  }

  HYPERTP_RETURN_IF_ERROR(AllocateGuestMemory(vm));
  HYPERTP_RETURN_IF_ERROR(AllocateVmStateFrames(vm));

  for (uint32_t i = 0; i < config.vcpus; ++i) {
    scheduler_.AddThread(vm.uid, i);
  }

  const VmId id = vm.vm_handle;
  vms_.emplace(vm.vm_handle, std::move(vm));
  HYPERTP_LOG(kInfo, "bhyve") << "created vm " << id << " '" << config.name << "' ("
                              << config.vcpus << " vCPU, " << (config.memory_bytes >> 20)
                              << " MiB)";
  return id;
}

Result<void> BhyveVisor::DestroyVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  FreeVmFrames(*vm);
  scheduler_.RemoveVm(vm->uid);
  vms_.erase(static_cast<int>(id));
  return OkResult();
}

Result<void> BhyveVisor::PauseVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  vm->run_state = VmRunState::kPaused;
  return OkResult();
}

Result<void> BhyveVisor::ResumeVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  vm->run_state = VmRunState::kRunning;
  return OkResult();
}

Result<VmInfo> BhyveVisor::GetVmInfo(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const BhyveVm* vm, FindVm(id));
  VmInfo info;
  info.id = id;
  info.uid = vm->uid;
  info.name = vm->name;
  info.vcpus = static_cast<uint32_t>(vm->platform.vcpus.size());
  info.memory_bytes = vm->memory_bytes;
  info.huge_pages = vm->huge_pages;
  for (const UisrDeviceState& dev : vm->devices) {
    info.has_passthrough |= dev.mode == DeviceAttachMode::kPassthrough;
  }
  info.run_state = vm->run_state;
  return info;
}

std::vector<VmId> BhyveVisor::ListVms() const {
  std::vector<VmId> ids;
  ids.reserve(vms_.size());
  for (const auto& [handle, vm] : vms_) {
    ids.push_back(handle);
  }
  return ids;
}

Result<std::vector<GuestMapping>> BhyveVisor::GuestMemoryMap(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const BhyveVm* vm, FindVm(id));
  return vm->memmap.mappings();
}

Result<uint64_t> BhyveVisor::ReadGuestPage(VmId id, Gfn gfn) const {
  HYPERTP_ASSIGN_OR_RETURN(const BhyveVm* vm, FindVm(id));
  return vm->memmap.Read(machine_->memory(), gfn);
}

Result<void> BhyveVisor::WriteGuestPage(VmId id, Gfn gfn, uint64_t content) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  ++vm->state_generation;
  return vm->memmap.Write(machine_->memory(), gfn, content);
}

Result<void> BhyveVisor::AdvanceGuestClocks(VmId id, SimDuration delta) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  for (BhyveVcpu& vcpu : vm->platform.vcpus) {
    vcpu.tsc += static_cast<uint64_t>(delta);
    if (vcpu.tsc_deadline != 0) {
      vcpu.tsc_deadline += static_cast<uint64_t>(delta);
    }
  }
  vm->platform.hpet_counter += static_cast<uint64_t>(delta / 100);  // 10 MHz HPET.
  ++vm->state_generation;
  return OkResult();
}

Result<uint64_t> BhyveVisor::StateGeneration(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const BhyveVm* vm, FindVm(id));
  return vm->state_generation;
}

Result<void> BhyveVisor::InjectGuestEvent(VmId id, GuestEventKind kind) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  if (vm->run_state != VmRunState::kRunning) {
    return FailedPreconditionError("bhyve: cannot inject guest events into a paused vm");
  }
  switch (kind) {
    case GuestEventKind::kTimerTick:
      // 1 ms LAPIC timer period on the virtual 1 GHz TSC; the HPET main
      // counter (10 MHz) advances alongside.
      for (BhyveVcpu& vcpu : vm->platform.vcpus) {
        vcpu.tsc += 1'000'000;
        vcpu.tsc_deadline = vcpu.tsc + 1'000'000;
      }
      vm->platform.hpet_counter += 10'000;
      break;
    case GuestEventKind::kEventChannel:
      // Interrupt-controller activity: the HPET ticks while the interrupt
      // is delivered and acknowledged.
      vm->platform.hpet_counter += 1;
      break;
    case GuestEventKind::kWorkloadStep:
      // A scheduling quantum of guest execution: registers move.
      for (BhyveVcpu& vcpu : vm->platform.vcpus) {
        vcpu.tsc += 10'000'000;
        vcpu.rip += 0x40;
        vcpu.gpr[0] += 1;
      }
      break;
  }
  ++vm->state_generation;
  return OkResult();
}

Result<void> BhyveVisor::EnableDirtyLogging(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  vm->memmap.EnableDirtyLog();
  return OkResult();
}

Result<std::vector<Gfn>> BhyveVisor::FetchAndClearDirtyLog(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  if (!vm->memmap.dirty_log_enabled()) {
    return FailedPreconditionError("bhyve: dirty logging not enabled");
  }
  return vm->memmap.FetchAndClearDirty();
}

Result<void> BhyveVisor::DisableDirtyLogging(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  vm->memmap.DisableDirtyLog();
  return OkResult();
}

Result<std::vector<std::pair<Gfn, uint64_t>>> BhyveVisor::DumpGuestContent(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const BhyveVm* vm, FindVm(id));
  return vm->memmap.DumpNonZero(machine_->memory());
}

Result<void> BhyveVisor::PrepareVmForTransplant(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(BhyveVm * vm, MutableVm(id));
  // Quiescing/unplugging changes translated device state.
  ++vm->state_generation;
  return PrepareDevicesForTransplant(vm->devices);
}

void BhyveVisor::DetachForMicroReboot() {
  vms_.clear();
  scheduler_ = UleRunQueue(machine_->profile().threads);
  hv_frames_ = 0;
}

Result<UisrVm> BhyveVisor::SaveVmToUisr(VmId id, FixupLog* log) {
  HYPERTP_ASSIGN_OR_RETURN(const BhyveVm* vm, FindVm(id));
  if (vm->run_state != VmRunState::kPaused) {
    return FailedPreconditionError("bhyve: vm must be paused before UISR translation");
  }
  UisrVm out;
  out.vm_uid = vm->uid;
  out.name = vm->name;
  out.source_hypervisor = std::string(name());
  out.memory.memory_bytes = vm->memory_bytes;
  out.memory.uses_huge_pages = vm->huge_pages;
  HYPERTP_RETURN_IF_ERROR(BhyvePlatformToUisr(vm->platform, out, log));
  for (const UisrDeviceState& dev : vm->devices) {
    HYPERTP_RETURN_IF_ERROR(ValidateDeviceForTransplant(dev));
    out.devices.push_back(dev);
    if (dev.mode == DeviceAttachMode::kUnplugged && log != nullptr) {
      log->push_back({vm->uid, dev.model, "unplugged before transplant; will rescan"});
    }
  }
  return out;
}

Result<VmId> BhyveVisor::RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                           FixupLog* log) {
  for (const auto& [handle, existing] : vms_) {
    if (existing.uid == uisr.vm_uid) {
      return AlreadyExistsError("bhyve: uid " + std::to_string(uisr.vm_uid) + " already hosted");
    }
  }
  BhyveVm vm;
  vm.vm_handle = next_handle_++;
  vm.uid = uisr.vm_uid;
  vm.name = uisr.name;
  vm.memory_bytes = uisr.memory.memory_bytes;
  vm.huge_pages = uisr.memory.uses_huge_pages;
  vm.run_state = VmRunState::kPaused;
  vm.bhyve_pid = next_pid_++;

  HYPERTP_ASSIGN_OR_RETURN(vm.platform,
                           BhyvePlatformFromUisr(uisr, log, binding.remap_high_ioapic_pins));
  vm.devices = uisr.devices;

  switch (binding.mode) {
    case GuestMemoryBinding::Mode::kAdoptInPlace:
      HYPERTP_RETURN_IF_ERROR(AdoptGuestMemory(vm, binding.entries));
      break;
    case GuestMemoryBinding::Mode::kAllocate:
      HYPERTP_RETURN_IF_ERROR(AllocateGuestMemory(vm));
      break;
  }
  HYPERTP_RETURN_IF_ERROR(AllocateVmStateFrames(vm));

  for (uint32_t i = 0; i < vm.platform.vcpus.size(); ++i) {
    scheduler_.AddThread(vm.uid, i);
  }

  const VmId id = vm.vm_handle;
  vms_.emplace(vm.vm_handle, std::move(vm));
  HYPERTP_LOG(kInfo, "bhyve") << "restored vm " << id << " (uid " << uisr.vm_uid << ")";
  return id;
}

uint64_t BhyveVisor::HypervisorFrames() const { return hv_frames_; }

void BhyveVisor::RebuildScheduler() {
  scheduler_ = UleRunQueue(machine_->profile().threads);
  for (const auto& [handle, vm] : vms_) {
    for (uint32_t i = 0; i < vm.platform.vcpus.size(); ++i) {
      scheduler_.AddThread(vm.uid, i);
    }
  }
}

}  // namespace hypertp
