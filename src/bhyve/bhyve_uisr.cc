#include "src/bhyve/bhyve_uisr.h"

#include <algorithm>
#include <cstdio>

namespace hypertp {
namespace {

// MSR indices with fixed slots in BhyveVcpu.
constexpr uint32_t kMsrTsc = 0x00000010;
constexpr uint32_t kMsrSysenterCs = 0x00000174;
constexpr uint32_t kMsrSysenterEsp = 0x00000175;
constexpr uint32_t kMsrSysenterEip = 0x00000176;
constexpr uint32_t kMsrMiscEnable = 0x000001A0;
constexpr uint32_t kMsrEfer = 0xC0000080;
constexpr uint32_t kMsrStar = 0xC0000081;
constexpr uint32_t kMsrLstar = 0xC0000082;
constexpr uint32_t kMsrCstar = 0xC0000083;
constexpr uint32_t kMsrSfmask = 0xC0000084;
constexpr uint32_t kMsrFsBase = 0xC0000100;
constexpr uint32_t kMsrGsBase = 0xC0000101;
constexpr uint32_t kMsrKernelGsBase = 0xC0000102;

constexpr size_t kLapicTprOffset = 0x80;

// UISR gpr order: rax rbx rcx rdx rsi rdi rsp rbp r8..r15 (KVM member order).
// Bhyve slot for each UISR index:
constexpr BhyveGprSlot kUisrToBhyve[16] = {
    kBhyveRax, kBhyveRbx, kBhyveRcx, kBhyveRdx, kBhyveRsi, kBhyveRdi, kBhyveRsp, kBhyveRbp,
    kBhyveR8,  kBhyveR9,  kBhyveR10, kBhyveR11, kBhyveR12, kBhyveR13, kBhyveR14, kBhyveR15,
};

}  // namespace

Result<UisrVcpu> BhyveVcpuToUisr(const BhyveVcpu& b) {
  UisrVcpu v;
  v.id = b.vcpu_id;
  v.online = b.online != 0;

  for (size_t i = 0; i < 16; ++i) {
    v.regs.gpr[i] = b.gpr[kUisrToBhyve[i]];
  }
  v.regs.rip = b.rip;
  v.regs.rflags = b.rflags;

  v.sregs.cs = FromBhyveSegDesc(b.cs);
  v.sregs.ds = FromBhyveSegDesc(b.ds);
  v.sregs.es = FromBhyveSegDesc(b.es);
  v.sregs.fs = FromBhyveSegDesc(b.fs);
  v.sregs.gs = FromBhyveSegDesc(b.gs);
  v.sregs.ss = FromBhyveSegDesc(b.ss);
  v.sregs.tr = FromBhyveSegDesc(b.tr);
  v.sregs.ldt = FromBhyveSegDesc(b.ldtr);
  v.sregs.gdt = {b.gdtr.base, static_cast<uint16_t>(b.gdtr.limit)};
  v.sregs.idt = {b.idtr.base, static_cast<uint16_t>(b.idtr.limit)};
  v.sregs.cr0 = b.cr0;
  v.sregs.cr2 = b.cr2;
  v.sregs.cr3 = b.cr3;
  v.sregs.cr4 = b.cr4;
  v.sregs.cr8 = b.cr8;
  v.sregs.efer = b.msr_efer;
  v.sregs.apic_base = b.apic_base;

  // Canonical sorted MSR list from the fixed slots (PAT stays structural).
  v.msrs = {
      {kMsrTsc, b.tsc},
      {kMsrSysenterCs, b.sysenter_cs},
      {kMsrSysenterEsp, b.sysenter_esp},
      {kMsrSysenterEip, b.sysenter_eip},
      {kMsrMiscEnable, b.misc_enable},
      {kMsrEfer, b.msr_efer},
      {kMsrStar, b.msr_star},
      {kMsrLstar, b.msr_lstar},
      {kMsrCstar, b.msr_cstar},
      {kMsrSfmask, b.msr_sfmask},
      {kMsrFsBase, b.fs.base},
      {kMsrGsBase, b.gs.base},
      {kMsrKernelGsBase, b.msr_kgsbase},
  };

  v.fpu = UnpackFxsave(b.fpu);

  v.lapic.apic_base_msr = b.apic_base;
  v.lapic.tsc_deadline = b.tsc_deadline;
  v.lapic.regs = b.lapic_page;

  v.mtrr.cap = b.mtrr_cap;
  v.mtrr.def_type = b.mtrr_def_type;
  v.mtrr.fixed = b.mtrr_fixed;
  v.mtrr.var_base = b.mtrr_var_base;
  v.mtrr.var_mask = b.mtrr_var_mask;
  v.mtrr.pat = b.msr_pat;  // The third PAT home.

  v.xsave.xcr0 = b.xcr0;
  v.xsave.area = b.xsave_area;
  return v;
}

Result<BhyveVcpu> BhyveVcpuFromUisr(const UisrVcpu& vcpu, uint64_t vm_uid, FixupLog* log) {
  BhyveVcpu b;
  b.vcpu_id = vcpu.id;
  b.online = vcpu.online ? 1 : 0;

  for (size_t i = 0; i < 16; ++i) {
    b.gpr[kUisrToBhyve[i]] = vcpu.regs.gpr[i];
  }
  b.rip = vcpu.regs.rip;
  b.rflags = vcpu.regs.rflags;

  b.cs = ToBhyveSegDesc(vcpu.sregs.cs);
  b.ds = ToBhyveSegDesc(vcpu.sregs.ds);
  b.es = ToBhyveSegDesc(vcpu.sregs.es);
  b.fs = ToBhyveSegDesc(vcpu.sregs.fs);
  b.gs = ToBhyveSegDesc(vcpu.sregs.gs);
  b.ss = ToBhyveSegDesc(vcpu.sregs.ss);
  b.tr = ToBhyveSegDesc(vcpu.sregs.tr);
  b.ldtr = ToBhyveSegDesc(vcpu.sregs.ldt);
  b.gdtr.base = vcpu.sregs.gdt.base;
  b.gdtr.limit = vcpu.sregs.gdt.limit;
  b.idtr.base = vcpu.sregs.idt.base;
  b.idtr.limit = vcpu.sregs.idt.limit;
  b.cr0 = vcpu.sregs.cr0;
  b.cr2 = vcpu.sregs.cr2;
  b.cr3 = vcpu.sregs.cr3;
  b.cr4 = vcpu.sregs.cr4;
  b.cr8 = vcpu.sregs.cr8;
  b.msr_efer = vcpu.sregs.efer;
  b.apic_base = vcpu.lapic.apic_base_msr;

  for (const UisrMsr& m : vcpu.msrs) {
    switch (m.index) {
      case kMsrTsc:
        b.tsc = m.value;
        break;
      case kMsrSysenterCs:
        b.sysenter_cs = m.value;
        break;
      case kMsrSysenterEsp:
        b.sysenter_esp = m.value;
        break;
      case kMsrSysenterEip:
        b.sysenter_eip = m.value;
        break;
      case kMsrMiscEnable:
        b.misc_enable = m.value;
        break;
      case kMsrEfer:
        break;  // Carried in sregs.efer.
      case kMsrStar:
        b.msr_star = m.value;
        break;
      case kMsrLstar:
        b.msr_lstar = m.value;
        break;
      case kMsrCstar:
        b.msr_cstar = m.value;
        break;
      case kMsrSfmask:
        b.msr_sfmask = m.value;
        break;
      case kMsrFsBase:
        b.fs.base = m.value;
        break;
      case kMsrGsBase:
        b.gs.base = m.value;
        break;
      case kMsrKernelGsBase:
        b.msr_kgsbase = m.value;
        break;
      default:
        if (log != nullptr) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "MSR 0x%X has no bhyve slot; dropped", m.index);
          log->push_back({vm_uid, "cpu", buf});
        }
        break;
    }
  }

  b.fpu = PackFxsave(vcpu.fpu);

  b.tsc_deadline = vcpu.lapic.tsc_deadline;
  b.lapic_page = vcpu.lapic.regs;
  // Like KVM: CR8 authoritative, TPR page synchronized.
  b.lapic_page[kLapicTprOffset] = static_cast<uint8_t>((vcpu.sregs.cr8 & 0xF) << 4);

  b.mtrr_cap = vcpu.mtrr.cap;
  b.mtrr_def_type = vcpu.mtrr.def_type;
  b.mtrr_fixed = vcpu.mtrr.fixed;
  b.mtrr_var_base = vcpu.mtrr.var_base;
  b.mtrr_var_mask = vcpu.mtrr.var_mask;
  b.msr_pat = vcpu.mtrr.pat;

  b.xcr0 = vcpu.xsave.xcr0;
  b.xsave_area = vcpu.xsave.area;
  return b;
}

Result<BhyvePlatform> BhyvePlatformFromUisr(const UisrVm& vm, FixupLog* log,
                                            bool remap_high_pins) {
  BhyvePlatform platform;
  for (const UisrVcpu& v : vm.vcpus) {
    HYPERTP_ASSIGN_OR_RETURN(BhyveVcpu b, BhyveVcpuFromUisr(v, vm.vm_uid, log));
    platform.vcpus.push_back(std::move(b));
  }

  platform.ioapic.id = vm.ioapic.id;
  platform.ioapic.base_address = vm.ioapic.base_address;
  const uint32_t copied = std::min(vm.ioapic.num_pins, kBhyveIoapicPins);
  for (uint32_t i = 0; i < copied; ++i) {
    platform.ioapic.redirtbl[i] = vm.ioapic.redirection[i];
  }
  for (uint32_t i = kBhyveIoapicPins; i < vm.ioapic.num_pins; ++i) {
    if (vm.ioapic.redirection[i] == 0) {
      continue;
    }
    char buf[96];
    if (remap_high_pins) {
      uint32_t free_pin = kBhyveIoapicPins;
      for (uint32_t candidate = 16; candidate < kBhyveIoapicPins; ++candidate) {
        if (platform.ioapic.redirtbl[candidate] == 0) {
          free_pin = candidate;
          break;
        }
      }
      if (free_pin < kBhyveIoapicPins) {
        platform.ioapic.redirtbl[free_pin] = vm.ioapic.redirection[i];
        if (log != nullptr) {
          std::snprintf(buf, sizeof(buf),
                        "IOAPIC pin %u remapped to pin %u; guest notified of GSI change", i,
                        free_pin);
          log->push_back({vm.vm_uid, "ioapic", buf});
        }
        continue;
      }
    }
    if (log != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "IOAPIC pin %u active on source; disconnected (bhyve has %u pins)", i,
                    kBhyveIoapicPins);
      log->push_back({vm.vm_uid, "ioapic", buf});
    }
  }

  // bhyve has no PIT: drop the state, note the fixup if the PIT was live
  // (programmed mode or pending load — the reset default of count=0x10000,
  // mode 0 does not count).
  bool pit_live = vm.pit.speaker_data_on != 0;
  for (const UisrPitChannel& channel : vm.pit.channels) {
    pit_live |= channel.mode != 0 || channel.count_load_time != 0;
  }
  if (pit_live && log != nullptr) {
    log->push_back({vm.vm_uid, "pit",
                    "PIT state dropped: bhyve has no i8254 model; guest timekeeping "
                    "falls back to the HPET"});
  }
  // Seed the HPET from the PIT's last load time so time appears continuous.
  platform.hpet_counter = vm.pit.channels[0].count_load_time;
  return platform;
}

Result<void> BhyvePlatformToUisr(const BhyvePlatform& platform, UisrVm& out, FixupLog* log) {
  out.vcpus.clear();
  for (const BhyveVcpu& b : platform.vcpus) {
    HYPERTP_ASSIGN_OR_RETURN(UisrVcpu v, BhyveVcpuToUisr(b));
    out.vcpus.push_back(std::move(v));
  }

  out.ioapic.id = platform.ioapic.id;
  out.ioapic.base_address = platform.ioapic.base_address;
  out.ioapic.num_pins = kBhyveIoapicPins;
  out.ioapic.redirection.fill(0);
  std::copy(platform.ioapic.redirtbl.begin(), platform.ioapic.redirtbl.end(),
            out.ioapic.redirection.begin());

  // Synthesize a reset-default PIT: the target hypervisor's guest will
  // re-program it; meanwhile timekeeping continues on the HPET-derived TSC.
  out.pit = UisrPit{};
  out.pit.channels[0].count_load_time = platform.hpet_counter;
  if (log != nullptr) {
    log->push_back({out.vm_uid, "pit", "PIT synthesized with reset defaults (bhyve source)"});
  }
  return OkResult();
}

}  // namespace hypertp
