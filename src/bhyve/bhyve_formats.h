// BhyveVisor's native VM state representation — the third format in the
// repertoire, again deliberately different from both Xen's and KVM's:
//   - GPRs in bhyve's vm_reg_name enumeration order (argument registers
//     first), not Xen's member order nor KVM's;
//   - segments as seg_desc structs with a 32-bit VMX access-rights word
//     (vs Xen's packed 16-bit word and KVM's discrete byte fields);
//   - GDTR/IDTR also stored as seg_desc (access unused) — a bhyve-ism;
//   - well-known MSRs in fixed slots *including PAT* (the third PAT home:
//     Xen keeps it in the MTRR record, KVM in the MSR list);
//   - CR8 stored directly (like KVM), LAPIC page carried alongside;
//   - a 32-pin IOAPIC and NO PIT AT ALL — bhyve guests run from the HPET, so
//     transplants into bhyve drop PIT state (with a fixup) and transplants
//     out synthesize reset defaults.

#ifndef HYPERTP_SRC_BHYVE_BHYVE_FORMATS_H_
#define HYPERTP_SRC_BHYVE_BHYVE_FORMATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/uisr/fxsave.h"
#include "src/uisr/records.h"

namespace hypertp {

// VMX access-rights layout:
//   type[3:0] s[4] dpl[6:5] p[7] avl[12] l[13] db[14] g[15] unusable[16]
uint32_t PackVmxAccessRights(const UisrSegment& seg);
void UnpackVmxAccessRights(uint32_t access, UisrSegment& seg);

struct BhyveSegDesc {
  uint64_t base = 0;
  uint32_t limit = 0;
  uint32_t access = 0;
  uint16_t selector = 0;

  bool operator==(const BhyveSegDesc&) const = default;
};

BhyveSegDesc ToBhyveSegDesc(const UisrSegment& seg);
UisrSegment FromBhyveSegDesc(const BhyveSegDesc& desc);

// GPR slot order in BhyveVcpu::gpr (vm_reg_name-style; argument registers
// first). Conversions must permute against UISR's KVM-member order.
enum BhyveGprSlot : size_t {
  kBhyveRdi = 0,
  kBhyveRsi,
  kBhyveRdx,
  kBhyveRcx,
  kBhyveR8,
  kBhyveR9,
  kBhyveRax,
  kBhyveRbx,
  kBhyveRbp,
  kBhyveR10,
  kBhyveR11,
  kBhyveR12,
  kBhyveR13,
  kBhyveR14,
  kBhyveR15,
  kBhyveRsp,
  kBhyveGprCount,
};

struct BhyveVcpu {
  uint32_t vcpu_id = 0;
  uint8_t online = 1;
  std::array<uint64_t, kBhyveGprCount> gpr{};
  uint64_t rip = 0, rflags = 0;
  uint64_t cr0 = 0, cr2 = 0, cr3 = 0, cr4 = 0, cr8 = 0;
  BhyveSegDesc cs, ds, es, fs, gs, ss, tr, ldtr;
  BhyveSegDesc gdtr, idtr;  // Only base/limit meaningful.
  // Fixed MSR slots (no generic list), PAT included.
  uint64_t msr_efer = 0, msr_star = 0, msr_lstar = 0, msr_cstar = 0, msr_sfmask = 0;
  uint64_t msr_kgsbase = 0, msr_pat = 0;
  uint64_t sysenter_cs = 0, sysenter_esp = 0, sysenter_eip = 0;
  uint64_t tsc = 0, misc_enable = 0;
  FxsaveArea fpu{};
  uint64_t xcr0 = 0;
  std::vector<uint8_t> xsave_area;
  uint64_t apic_base = 0;
  uint64_t tsc_deadline = 0;
  std::array<uint8_t, kLapicRegsSize> lapic_page{};
  // MTRRs as split base/mask arrays.
  uint64_t mtrr_cap = 0, mtrr_def_type = 0;
  std::array<uint64_t, kMtrrFixedCount> mtrr_fixed{};
  std::array<uint64_t, kMtrrVariableCount> mtrr_var_base{};
  std::array<uint64_t, kMtrrVariableCount> mtrr_var_mask{};

  bool operator==(const BhyveVcpu&) const = default;
};

inline constexpr uint32_t kBhyveIoapicPins = 32;
struct BhyveIoapic {
  uint32_t id = 0;
  uint64_t base_address = 0xFEC00000;
  std::array<uint64_t, kBhyveIoapicPins> redirtbl{};

  bool operator==(const BhyveIoapic&) const = default;
};

// The whole platform: vCPUs + IOAPIC + HPET. No PIT.
struct BhyvePlatform {
  std::vector<BhyveVcpu> vcpus;
  BhyveIoapic ioapic;
  uint64_t hpet_counter = 0;

  bool operator==(const BhyvePlatform&) const = default;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_BHYVE_BHYVE_FORMATS_H_
