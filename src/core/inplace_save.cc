// Save-side phase units of InPlaceTransplant::Run: preparation (PRAM
// construction) and translation (Extract -> UisrEncode -> PramStore).

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/base/arena.h"
#include "src/core/inplace_internal.h"
#include "src/pipeline/conversion.h"
#include "src/uisr/codec.h"

namespace hypertp {
namespace inplace_internal {

std::vector<PramPageEntry> EntriesFromMappings(const std::vector<GuestMapping>& mappings,
                                               bool huge_pages) {
  // Each mapping is already one contiguous (gfn, mfn) run, so entry
  // construction is a per-run decision instead of a per-frame loop
  // (pram.cc:BuildEntriesForRange; output pinned equal to the old greedy).
  std::vector<PramPageEntry> entries;
  for (const GuestMapping& m : mappings) {
    BuildEntriesForRange(m.gfn, m.mfn, m.frames, huge_pages, entries);
  }
  return entries;
}

Result<Mfn> TranslateInMap(const std::vector<GuestMapping>& map, Gfn gfn) {
  // GuestMemoryMap() returns mappings sorted by gfn (Hypervisor contract), so
  // only the last mapping starting at or before gfn can contain it.
  auto it = std::upper_bound(map.begin(), map.end(), gfn,
                             [](Gfn g, const GuestMapping& m) { return g < m.gfn; });
  if (it != map.begin()) {
    const GuestMapping& m = *(it - 1);
    if (gfn < m.gfn_end()) {
      return m.mfn + (gfn - m.gfn);
    }
  }
  return NotFoundError("gfn " + std::to_string(gfn) + " unmapped");
}

Result<WorkSchedule> PrepareVms(Hypervisor& source, Machine& machine,
                                const InPlaceOptions& options, int workers,
                                PramBuilder& builder, std::vector<VmSnapshot>& vms) {
  const HostCostProfile& costs = machine.profile().costs;
  std::vector<SimDuration> pram_costs;
  for (VmId id : source.ListVms()) {
    VmSnapshot snap;
    snap.id = id;
    HYPERTP_ASSIGN_OR_RETURN(snap.info, source.GetVmInfo(id));
    HYPERTP_RETURN_IF_ERROR(source.PrepareVmForTransplant(id));
    HYPERTP_ASSIGN_OR_RETURN(snap.map, source.GuestMemoryMap(id));

    const bool huge = options.use_huge_pages && snap.info.huge_pages;
    HYPERTP_ASSIGN_OR_RETURN(
        snap.vm_file_id, builder.AddFile("vm:" + std::to_string(snap.info.uid),
                                         snap.info.memory_bytes, huge,
                                         EntriesFromMappings(snap.map, huge)));

    // Verification samples: spread gfns across the address space.
    if (options.verify_guest_memory) {
      const uint64_t pages = snap.info.memory_bytes / kPageSize;
      const int n = std::max(options.verify_sample_pages, 1);
      for (int i = 0; i < n; ++i) {
        const Gfn gfn = (pages * static_cast<uint64_t>(i)) / static_cast<uint64_t>(n);
        HYPERTP_ASSIGN_OR_RETURN(uint64_t word, source.ReadGuestPage(id, gfn));
        HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, TranslateInMap(snap.map, gfn));
        snap.sample_gfns.push_back(gfn);
        snap.sample_words.push_back(word);
        snap.sample_mfns.push_back(mfn);
      }
    }

    pram_costs.push_back(pipeline::PramStageCost(costs, snap.info.memory_bytes));
    vms.push_back(std::move(snap));
  }
  return ScheduleWork(pram_costs, workers);
}

namespace {

// Per-VM report record + the kPramWriteFailure injection point, which fires
// after the record is pushed but before any bytes reach PRAM frames (exactly
// where the legacy store loop injected it).
Result<void> RecordVm(const InPlaceOptions& options, const VmSnapshot& snap,
                      uint64_t uisr_bytes, TransplantReport& report) {
  report.uisr_total_bytes += uisr_bytes;
  report.vms.push_back(VmTransplantRecord{snap.info.uid, snap.info.name, snap.info.vcpus,
                                          snap.info.memory_bytes, uisr_bytes});
  if (options.inject_fault == InPlaceOptions::Fault::kPramWriteFailure) {
    return InternalError("injected PRAM write fault while parking UISR blob for uid " +
                         std::to_string(snap.info.uid));
  }
  return OkResult();
}

// Pause-time translation + store of one VM when a pre-translation cache is
// present: compare the state generation against the speculative snapshot and
// do the least work that still yields PRAM bytes identical to a from-scratch
// translate. Returns the modeled cost to charge inside the pause window.
Result<SimDuration> TranslateAgainstCache(Hypervisor& source, Machine& machine,
                                          const InPlaceOptions& options,
                                          const pipeline::PreTranslationCache& cache,
                                          PramBuilder& builder, Arena& scratch,
                                          VmSnapshot& snap, TransplantReport& report) {
  const HostCostProfile& costs = machine.profile().costs;
  HYPERTP_ASSIGN_OR_RETURN(uint64_t generation, source.StateGeneration(snap.id));
  const pipeline::PreTranslatedVm* entry = cache.Find(snap.info.uid);
  const SimDuration full_cost =
      pipeline::TranslateStageCost(costs, snap.info.vcpus, snap.info.memory_bytes);

  if (entry != nullptr && entry->generation == generation) {
    // Generation unchanged: the speculative blob is the blob. Replay the
    // fixups its extract recorded — the legacy path would have logged the
    // same ones here.
    report.fixups.insert(report.fixups.end(), entry->fixups.begin(), entry->fixups.end());
    ++report.pretranslate_hits;
    HYPERTP_RETURN_IF_ERROR(RecordVm(options, snap, entry->blob.size(), report));
    if (entry->parked.count > 0) {
      // The bytes were parked in kUisr frames while the guest still ran;
      // the pause window only registers the PRAM file over them.
      HYPERTP_ASSIGN_OR_RETURN(pipeline::StoredUisrBlob stored,
                               pipeline::RegisterParkedBlob(builder, snap.info.uid,
                                                            entry->parked, entry->blob.size()));
      snap.uisr_frames.push_back(stored.frames);
    } else {
      HYPERTP_ASSIGN_OR_RETURN(pipeline::StoredUisrBlob stored,
                               pipeline::StoreUisrBlob(machine.memory(), builder,
                                                       snap.info.uid, entry->blob));
      snap.uisr_frames.push_back(stored.frames);
    }
    return costs.pretranslate_check;
  }

  // Invalidated (or never cached): re-extract now that the guest is paused.
  HYPERTP_ASSIGN_OR_RETURN(UisrVm fresh,
                           pipeline::ExtractVmState(source, snap.id, &report.fixups));
  fresh.memory.pram_file_id = snap.vm_file_id;
  if (entry == nullptr) {
    HYPERTP_RETURN_IF_ERROR(RecordVm(options, snap, EncodedUisrSize(fresh), report));
    HYPERTP_ASSIGN_OR_RETURN(pipeline::StoredUisrBlob stored,
                             pipeline::EncodeUisrVmIntoPram(machine.memory(), builder, fresh));
    snap.uisr_frames.push_back(stored.frames);
    return full_cost;
  }
  ++report.pretranslate_invalidations;
  HYPERTP_ASSIGN_OR_RETURN(pipeline::ReconcileResult rec,
                           pipeline::ReconcilePreTranslated(*entry, fresh, &scratch));
  HYPERTP_RETURN_IF_ERROR(RecordVm(options, snap, rec.blob.size(), report));

  const uint64_t rec_frames = (rec.blob.size() + kPageSize - 1) / kPageSize;
  if (entry->parked.count == rec_frames) {
    // Same frame count: reuse the parked extent. A reconcile hit means the
    // parked bytes are already exactly right; patched/re-encoded blobs are
    // rewritten in place first.
    if (rec.kind != pipeline::ReconcileKind::kHit) {
      HYPERTP_RETURN_IF_ERROR(
          pipeline::RewriteParkedBlob(machine.memory(), entry->parked, rec.blob));
    }
    HYPERTP_ASSIGN_OR_RETURN(
        pipeline::StoredUisrBlob stored,
        pipeline::RegisterParkedBlob(builder, snap.info.uid, entry->parked, rec.blob.size()));
    snap.uisr_frames.push_back(stored.frames);
  } else {
    // The blob outgrew (or shrank out of) its parking spot: release it and
    // store fresh.
    if (entry->parked.count > 0) {
      HYPERTP_RETURN_IF_ERROR(
          machine.memory().Free(entry->parked.base, entry->parked.count));
    }
    HYPERTP_ASSIGN_OR_RETURN(
        pipeline::StoredUisrBlob stored,
        pipeline::StoreUisrBlob(machine.memory(), builder, snap.info.uid, rec.blob));
    snap.uisr_frames.push_back(stored.frames);
  }

  // Charge the full translate scaled by the payload fraction actually
  // rewritten: a false-positive invalidation (nothing reached the UISR)
  // degenerates to the check cost, a structural change to the full cost.
  const double dirty_fraction =
      rec.total_payload_bytes > 0
          ? static_cast<double>(rec.patched_bytes) / static_cast<double>(rec.total_payload_bytes)
          : 1.0;
  return costs.pretranslate_check +
         static_cast<SimDuration>(static_cast<double>(full_cost) * dirty_fraction);
}

}  // namespace

Result<WorkSchedule> TranslateVms(Hypervisor& source, Machine& machine,
                                  const InPlaceOptions& options, int workers, int real_threads,
                                  PramBuilder& builder, TransplantReport& report,
                                  std::vector<VmSnapshot>& vms,
                                  const pipeline::PreTranslationCache* cache) {
  if (options.inject_fault == InPlaceOptions::Fault::kTranslationFailure) {
    return InternalError("injected translation fault");
  }
  const HostCostProfile& costs = machine.profile().costs;
  std::vector<SimDuration> translate_costs;

  if (cache != nullptr) {
    // Section scratch is shared across the batch and recycled per VM.
    Arena scratch;
    for (VmSnapshot& snap : vms) {
      scratch.Reset();
      HYPERTP_ASSIGN_OR_RETURN(SimDuration cost,
                               TranslateAgainstCache(source, machine, options, *cache, builder,
                                                     scratch, snap, report));
      translate_costs.push_back(cost);
    }
    return ScheduleWork(translate_costs, workers);
  }

  // Legacy (no speculative cache): everything happens inside the pause window.
  // Extract (serial: talks to the source hypervisor).
  std::vector<UisrVm> states;
  states.reserve(vms.size());
  for (VmSnapshot& snap : vms) {
    HYPERTP_ASSIGN_OR_RETURN(UisrVm uisr,
                             pipeline::ExtractVmState(source, snap.id, &report.fixups));
    uisr.memory.pram_file_id = snap.vm_file_id;
    states.push_back(std::move(uisr));
    translate_costs.push_back(
        pipeline::TranslateStageCost(costs, snap.info.vcpus, snap.info.memory_bytes));
  }

  // Report records first (sizes are exact without encoding), so the injected
  // PRAM write fault still fires after the first record and before any store.
  for (size_t i = 0; i < vms.size(); ++i) {
    HYPERTP_RETURN_IF_ERROR(RecordVm(options, vms[i], EncodedUisrSize(states[i]), report));
  }

  // UisrEncode + PramStore fused: frames are allocated and registered
  // serially in VM order (same layout as the old store-by-copy loop), then
  // the encodes run straight into the mapped extents on up to `real_threads`
  // OS threads — no intermediate blob vectors, no page-by-page copy.
  HYPERTP_ASSIGN_OR_RETURN(
      std::vector<pipeline::StoredUisrBlob> stored,
      pipeline::EncodeVmStatesIntoPram(machine.memory(), builder, states, real_threads));
  for (size_t i = 0; i < vms.size(); ++i) {
    vms[i].uisr_frames.push_back(stored[i].frames);
  }
  return ScheduleWork(translate_costs, workers);
}

}  // namespace inplace_internal
}  // namespace hypertp
