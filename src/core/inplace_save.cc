// Save-side phase units of InPlaceTransplant::Run: preparation (PRAM
// construction) and translation (Extract -> UisrEncode -> PramStore).

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/core/inplace_internal.h"
#include "src/pipeline/conversion.h"

namespace hypertp {
namespace inplace_internal {

std::vector<PramPageEntry> EntriesFromMappings(const std::vector<GuestMapping>& mappings,
                                               bool huge_pages) {
  std::vector<PramPageEntry> entries;
  for (const GuestMapping& m : mappings) {
    Gfn gfn = m.gfn;
    Mfn mfn = m.mfn;
    uint64_t left = m.frames;
    while (left > 0) {
      if (huge_pages && gfn % kFramesPerHugePage == 0 && mfn % kFramesPerHugePage == 0 &&
          left >= kFramesPerHugePage) {
        entries.push_back(PramPageEntry{gfn, mfn, kHugePageOrder});
        gfn += kFramesPerHugePage;
        mfn += kFramesPerHugePage;
        left -= kFramesPerHugePage;
      } else {
        entries.push_back(PramPageEntry{gfn, mfn, 0});
        ++gfn;
        ++mfn;
        --left;
      }
    }
  }
  return entries;
}

Result<Mfn> TranslateInMap(const std::vector<GuestMapping>& map, Gfn gfn) {
  // GuestMemoryMap() returns mappings sorted by gfn (Hypervisor contract), so
  // only the last mapping starting at or before gfn can contain it.
  auto it = std::upper_bound(map.begin(), map.end(), gfn,
                             [](Gfn g, const GuestMapping& m) { return g < m.gfn; });
  if (it != map.begin()) {
    const GuestMapping& m = *(it - 1);
    if (gfn < m.gfn_end()) {
      return m.mfn + (gfn - m.gfn);
    }
  }
  return NotFoundError("gfn " + std::to_string(gfn) + " unmapped");
}

Result<WorkSchedule> PrepareVms(Hypervisor& source, Machine& machine,
                                const InPlaceOptions& options, int workers,
                                PramBuilder& builder, std::vector<VmSnapshot>& vms) {
  const HostCostProfile& costs = machine.profile().costs;
  std::vector<SimDuration> pram_costs;
  for (VmId id : source.ListVms()) {
    VmSnapshot snap;
    snap.id = id;
    HYPERTP_ASSIGN_OR_RETURN(snap.info, source.GetVmInfo(id));
    HYPERTP_RETURN_IF_ERROR(source.PrepareVmForTransplant(id));
    HYPERTP_ASSIGN_OR_RETURN(snap.map, source.GuestMemoryMap(id));

    const bool huge = options.use_huge_pages && snap.info.huge_pages;
    HYPERTP_ASSIGN_OR_RETURN(
        snap.vm_file_id, builder.AddFile("vm:" + std::to_string(snap.info.uid),
                                         snap.info.memory_bytes, huge,
                                         EntriesFromMappings(snap.map, huge)));

    // Verification samples: spread gfns across the address space.
    if (options.verify_guest_memory) {
      const uint64_t pages = snap.info.memory_bytes / kPageSize;
      const int n = std::max(options.verify_sample_pages, 1);
      for (int i = 0; i < n; ++i) {
        const Gfn gfn = (pages * static_cast<uint64_t>(i)) / static_cast<uint64_t>(n);
        HYPERTP_ASSIGN_OR_RETURN(uint64_t word, source.ReadGuestPage(id, gfn));
        HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, TranslateInMap(snap.map, gfn));
        snap.sample_gfns.push_back(gfn);
        snap.sample_words.push_back(word);
        snap.sample_mfns.push_back(mfn);
      }
    }

    pram_costs.push_back(pipeline::PramStageCost(costs, snap.info.memory_bytes));
    vms.push_back(std::move(snap));
  }
  return ScheduleWork(pram_costs, workers);
}

namespace {

// Pause-time translation of one VM when a pre-translation cache is present:
// compare the state generation against the speculative snapshot and do the
// least work that still yields bytes identical to a from-scratch translate.
// Returns the modeled cost to charge inside the pause window.
Result<SimDuration> TranslateAgainstCache(Hypervisor& source, const HostCostProfile& costs,
                                          const pipeline::PreTranslationCache& cache,
                                          VmSnapshot& snap, TransplantReport& report,
                                          std::vector<uint8_t>& blob) {
  HYPERTP_ASSIGN_OR_RETURN(uint64_t generation, source.StateGeneration(snap.id));
  const pipeline::PreTranslatedVm* entry = cache.Find(snap.info.uid);
  const SimDuration full_cost =
      pipeline::TranslateStageCost(costs, snap.info.vcpus, snap.info.memory_bytes);

  if (entry != nullptr && entry->generation == generation) {
    // Generation unchanged: the speculative blob is the blob. Replay the
    // fixups its extract recorded — the legacy path would have logged the
    // same ones here.
    blob = entry->blob;
    report.fixups.insert(report.fixups.end(), entry->fixups.begin(), entry->fixups.end());
    ++report.pretranslate_hits;
    return costs.pretranslate_check;
  }

  // Invalidated (or never cached): re-extract now that the guest is paused.
  HYPERTP_ASSIGN_OR_RETURN(UisrVm fresh,
                           pipeline::ExtractVmState(source, snap.id, &report.fixups));
  fresh.memory.pram_file_id = snap.vm_file_id;
  if (entry == nullptr) {
    blob = EncodeUisrVm(fresh);
    return full_cost;
  }
  ++report.pretranslate_invalidations;
  HYPERTP_ASSIGN_OR_RETURN(pipeline::ReconcileResult rec,
                           pipeline::ReconcilePreTranslated(*entry, fresh));
  blob = std::move(rec.blob);
  // Charge the full translate scaled by the payload fraction actually
  // rewritten: a false-positive invalidation (nothing reached the UISR)
  // degenerates to the check cost, a structural change to the full cost.
  const double dirty_fraction =
      rec.total_payload_bytes > 0
          ? static_cast<double>(rec.patched_bytes) / static_cast<double>(rec.total_payload_bytes)
          : 1.0;
  return costs.pretranslate_check +
         static_cast<SimDuration>(static_cast<double>(full_cost) * dirty_fraction);
}

}  // namespace

Result<WorkSchedule> TranslateVms(Hypervisor& source, Machine& machine,
                                  const InPlaceOptions& options, int workers, int real_threads,
                                  PramBuilder& builder, TransplantReport& report,
                                  std::vector<VmSnapshot>& vms,
                                  const pipeline::PreTranslationCache* cache) {
  if (options.inject_fault == InPlaceOptions::Fault::kTranslationFailure) {
    return InternalError("injected translation fault");
  }
  const HostCostProfile& costs = machine.profile().costs;

  std::vector<std::vector<uint8_t>> blobs;
  std::vector<SimDuration> translate_costs;
  if (cache == nullptr) {
    // Legacy path: everything happens inside the pause window.
    // Extract (serial: talks to the source hypervisor).
    std::vector<UisrVm> states;
    states.reserve(vms.size());
    for (VmSnapshot& snap : vms) {
      HYPERTP_ASSIGN_OR_RETURN(UisrVm uisr,
                               pipeline::ExtractVmState(source, snap.id, &report.fixups));
      uisr.memory.pram_file_id = snap.vm_file_id;
      states.push_back(std::move(uisr));
    }

    // UisrEncode (pure: real OS threads allowed; bytes independent of count).
    blobs = pipeline::EncodeVmStates(states, real_threads);
    for (const VmSnapshot& snap : vms) {
      translate_costs.push_back(
          pipeline::TranslateStageCost(costs, snap.info.vcpus, snap.info.memory_bytes));
    }
  } else {
    blobs.resize(vms.size());
    for (size_t i = 0; i < vms.size(); ++i) {
      HYPERTP_ASSIGN_OR_RETURN(
          SimDuration cost, TranslateAgainstCache(source, costs, *cache, vms[i], report, blobs[i]));
      translate_costs.push_back(cost);
    }
  }

  // PramStore (serial: allocates kUisr frames so the blobs survive the
  // micro-reboot) + per-VM report records.
  for (size_t i = 0; i < vms.size(); ++i) {
    VmSnapshot& snap = vms[i];
    snap.uisr_blob = std::move(blobs[i]);
    report.uisr_total_bytes += snap.uisr_blob.size();
    report.vms.push_back(VmTransplantRecord{snap.info.uid, snap.info.name, snap.info.vcpus,
                                            snap.info.memory_bytes, snap.uisr_blob.size()});

    if (options.inject_fault == InPlaceOptions::Fault::kPramWriteFailure) {
      return InternalError("injected PRAM write fault while parking UISR blob for uid " +
                           std::to_string(snap.info.uid));
    }
    HYPERTP_ASSIGN_OR_RETURN(
        pipeline::StoredUisrBlob stored,
        pipeline::StoreUisrBlob(machine.memory(), builder, snap.info.uid, snap.uisr_blob));
    snap.uisr_frames.push_back(stored.frames);
  }
  return ScheduleWork(translate_costs, workers);
}

}  // namespace inplace_internal
}  // namespace hypertp
