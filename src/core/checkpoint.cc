#include "src/core/checkpoint.h"

#include "src/base/bytes.h"
#include "src/base/crc32.h"
#include "src/pipeline/conversion.h"
#include "src/uisr/codec.h"

namespace hypertp {
namespace {

constexpr uint32_t kCheckpointMagic = 0x50435448;  // "HTCP"
constexpr uint16_t kCheckpointVersion = 1;

}  // namespace

Result<std::vector<uint8_t>> SaveVmCheckpoint(Hypervisor& hv, VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(VmInfo info, hv.GetVmInfo(id));
  if (info.run_state != VmRunState::kPaused) {
    return FailedPreconditionError("checkpoint: VM must be paused (suspend first)");
  }
  FixupLog log;
  HYPERTP_ASSIGN_OR_RETURN(UisrVm uisr, pipeline::ExtractVmState(hv, id, &log));
  HYPERTP_ASSIGN_OR_RETURN(auto pages, hv.DumpGuestContent(id));

  ByteWriter w;
  w.Reserve(12 + 4 + EncodedUisrSize(uisr) + 8 + pages.size() * 16 + 4);
  w.PutU32(kCheckpointMagic);
  w.PutU16(kCheckpointVersion);
  w.PutU16(0);  // Flags.
  // Length-prefixed UISR blob, encoded in place (no intermediate copy): write
  // a length placeholder, encode straight into the writer, back-patch.
  const size_t len_at = w.size();
  w.PutU32(0);
  const size_t uisr_start = w.size();
  EncodeUisrVm(uisr, w);
  w.PatchU32(len_at, static_cast<uint32_t>(w.size() - uisr_start));
  w.PutU64(pages.size());
  for (const auto& [gfn, word] : pages) {
    w.PutU64(gfn);
    w.PutU64(word);
  }
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  return w.TakeBytes();
}

namespace {

// Shared header/body parsing for inspect + restore.
struct ParsedCheckpoint {
  UisrVm uisr;
  std::vector<std::pair<Gfn, uint64_t>> pages;
};

Result<ParsedCheckpoint> ParseCheckpoint(std::span<const uint8_t> blob) {
  if (blob.size() < 12) {
    return DataLossError("checkpoint: truncated header");
  }
  // CRC covers everything except the 4-byte trailer.
  ByteReader trailer(blob.subspan(blob.size() - 4));
  HYPERTP_ASSIGN_OR_RETURN(uint32_t stored_crc, trailer.ReadU32());
  if (Crc32(blob.subspan(0, blob.size() - 4)) != stored_crc) {
    return DataLossError("checkpoint: CRC mismatch");
  }

  ByteReader r(blob.subspan(0, blob.size() - 4));
  HYPERTP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kCheckpointMagic) {
    return DataLossError("checkpoint: bad magic");
  }
  HYPERTP_ASSIGN_OR_RETURN(uint16_t version, r.ReadU16());
  if (version > kCheckpointVersion) {
    return UnimplementedError("checkpoint: version " + std::to_string(version));
  }
  HYPERTP_RETURN_IF_ERROR(r.Skip(2));

  ParsedCheckpoint parsed;
  HYPERTP_ASSIGN_OR_RETURN(auto uisr_blob, r.ReadLengthPrefixed());
  HYPERTP_ASSIGN_OR_RETURN(parsed.uisr, DecodeUisrVm(uisr_blob));
  HYPERTP_ASSIGN_OR_RETURN(uint64_t page_count, r.ReadU64());
  parsed.pages.reserve(page_count);
  for (uint64_t i = 0; i < page_count; ++i) {
    HYPERTP_ASSIGN_OR_RETURN(uint64_t gfn, r.ReadU64());
    HYPERTP_ASSIGN_OR_RETURN(uint64_t word, r.ReadU64());
    parsed.pages.emplace_back(gfn, word);
  }
  return parsed;
}

}  // namespace

Result<VmId> RestoreVmCheckpoint(Hypervisor& hv, std::span<const uint8_t> blob) {
  HYPERTP_ASSIGN_OR_RETURN(ParsedCheckpoint parsed, ParseCheckpoint(blob));
  FixupLog log;
  GuestMemoryBinding binding;
  binding.mode = GuestMemoryBinding::Mode::kAllocate;
  HYPERTP_ASSIGN_OR_RETURN(VmId id, pipeline::RestoreVmState(hv, parsed.uisr, binding, &log));
  for (const auto& [gfn, word] : parsed.pages) {
    HYPERTP_RETURN_IF_ERROR(hv.WriteGuestPage(id, gfn, word));
  }
  return id;
}

Result<CheckpointInfo> InspectCheckpoint(std::span<const uint8_t> blob) {
  HYPERTP_ASSIGN_OR_RETURN(ParsedCheckpoint parsed, ParseCheckpoint(blob));
  CheckpointInfo info;
  info.vm_uid = parsed.uisr.vm_uid;
  info.name = parsed.uisr.name;
  info.source_hypervisor = parsed.uisr.source_hypervisor;
  info.memory_bytes = parsed.uisr.memory.memory_bytes;
  info.vcpus = static_cast<uint32_t>(parsed.uisr.vcpus.size());
  info.page_count = parsed.pages.size();
  return info;
}

}  // namespace hypertp
