// InPlaceTP: in-place micro-reboot-based hypervisor transplant (paper §3.2).
//
// Workflow (Fig. 3): ❶ stage the target kernel, ❷ pause guests, ❸ translate
// VM_i States to UISR (and describe guest memory in PRAM), ❹ micro-reboot
// into the target hypervisor, ❺ restore VM_i States from UISR, ❻ relink VMs,
// ❼ resume. Guest State never moves: the PRAM reservation carries it through
// the reboot in place.
//
// The implementation is functional (state really crosses the reboot through
// RAM) and timed (each phase charges the calibrated per-machine costs), so
// both correctness invariants and the Fig. 6/7/10 timings come out of one
// code path.

#ifndef HYPERTP_SRC_CORE_INPLACE_H_
#define HYPERTP_SRC_CORE_INPLACE_H_

#include <memory>
#include <vector>

#include "src/base/result.h"
#include "src/core/report.h"
#include "src/hv/hypervisor.h"

namespace hypertp {

struct InPlaceResult {
  // The hypervisor the VMs ended up running under: the target on success, a
  // fresh instance of the *source* kind when the transplant rolled back
  // (report.outcome == TransplantOutcome::kRolledBack).
  std::unique_ptr<Hypervisor> hypervisor;
  std::vector<VmId> restored_vms;
  TransplantReport report;
};

class InPlaceTransplant {
 public:
  // Transplants every VM on `source`'s machine onto a fresh `target`-kind
  // hypervisor via micro-reboot. Consumes `source`.
  //
  // Failure semantics (abort / rollback / salvage taxonomy, DESIGN.md §5):
  //  - Before the micro-reboot (PRAM/translation errors): returns kAborted;
  //    VMs are resumed under the source hypervisor, which is handed back
  //    through `aborted_source` (when non-null) so the caller keeps a
  //    working host.
  //  - After the micro-reboot, when decode/restore under the target fails
  //    but the transplant ledger holds a fully committed record: the VMs are
  //    salvaged by a second micro-reboot into the source hypervisor kind,
  //    restored from the same PRAM/UISR image, and resumed. Run returns OK
  //    with report.outcome == kRolledBack and the recovery downtime charged
  //    to report.phases.rollback. No VM is lost.
  //  - Only when the salvage itself is impossible (guest frames scrubbed,
  //    UISR image corrupt, ledger commit record torn) is the failure an
  //    honest kDataLoss.
  static Result<InPlaceResult> Run(std::unique_ptr<Hypervisor> source, HypervisorKind target,
                                   const InPlaceOptions& options,
                                   std::unique_ptr<Hypervisor>* aborted_source = nullptr);
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_INPLACE_H_
