#include "src/core/telemetry.h"

#include "src/base/json.h"

namespace hypertp {
namespace {

void EmitFixups(JsonWriter& j, const FixupLog& fixups) {
  j.Key("fixups").BeginArray();
  for (const StateFixup& fixup : fixups) {
    j.BeginObject();
    j.Key("vm_uid").Number(fixup.vm_uid);
    j.Key("component").String(fixup.component);
    j.Key("description").String(fixup.description);
    j.EndObject();
  }
  j.EndArray();
}

}  // namespace

std::string TransplantReportToJson(const TransplantReport& report) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("inplace_transplant");
  j.Key("source").String(report.source_hypervisor);
  j.Key("target").String(report.target_hypervisor);
  j.Key("vm_count").Number(static_cast<int64_t>(report.vm_count));
  j.Key("outcome").String(std::string(TransplantOutcomeName(report.outcome)));
  j.Key("phases_ms").BeginObject();
  j.Key("pram").Number(ToMillis(report.phases.pram));
  if (report.pre_translated) {
    // Omitted entirely for legacy runs so pre_translate=false documents stay
    // byte-identical to pre-pretranslation output.
    j.Key("pre_translation").Number(ToMillis(report.phases.pre_translation));
  }
  j.Key("translation").Number(ToMillis(report.phases.translation));
  j.Key("reboot").Number(ToMillis(report.phases.reboot));
  j.Key("pram_parse").Number(ToMillis(report.phases.pram_parse));
  j.Key("restoration").Number(ToMillis(report.phases.restoration));
  j.Key("resume").Number(ToMillis(report.phases.resume));
  j.Key("cleanup").Number(ToMillis(report.phases.cleanup));
  j.Key("network").Number(ToMillis(report.phases.network));
  j.Key("rollback").Number(ToMillis(report.phases.rollback));
  j.EndObject();
  j.Key("downtime_ms").Number(ToMillis(report.downtime));
  j.Key("total_ms").Number(ToMillis(report.total_time));
  j.Key("network_downtime_ms").Number(ToMillis(report.network_downtime));
  if (report.pre_translated) {
    j.Key("pretranslate_hits").Number(report.pretranslate_hits);
    j.Key("pretranslate_invalidations").Number(report.pretranslate_invalidations);
  }
  j.Key("pram_metadata_bytes").Number(report.pram_metadata_bytes);
  j.Key("uisr_total_bytes").Number(report.uisr_total_bytes);
  j.Key("frames_scrubbed").Number(report.frames_scrubbed);
  j.Key("vms").BeginArray();
  for (const VmTransplantRecord& vm : report.vms) {
    j.BeginObject();
    j.Key("uid").Number(vm.uid);
    j.Key("name").String(vm.name);
    j.Key("vcpus").Number(static_cast<int64_t>(vm.vcpus));
    j.Key("memory_bytes").Number(vm.memory_bytes);
    j.Key("uisr_bytes").Number(static_cast<uint64_t>(vm.uisr_bytes));
    j.EndObject();
  }
  j.EndArray();
  EmitFixups(j, report.fixups);
  j.Key("notes").BeginArray();
  for (const std::string& note : report.notes) {
    j.String(note);
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

std::string MigrationResultToJson(const MigrationResult& result) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("migration");
  j.Key("dest_vm_id").Number(result.dest_vm_id);
  j.Key("total_ms").Number(ToMillis(result.total_time));
  j.Key("downtime_ms").Number(ToMillis(result.downtime));
  j.Key("queue_wait_ms").Number(ToMillis(result.queue_wait));
  j.Key("bytes_transferred").Number(result.bytes_transferred);
  j.Key("uisr_bytes").Number(result.uisr_bytes);
  j.Key("rounds").Number(static_cast<int64_t>(result.rounds));
  j.Key("converged").Bool(result.converged);
  j.Key("round_log").BeginArray();
  for (const MigrationRound& round : result.round_log) {
    j.BeginObject();
    j.Key("pages").Number(round.pages);
    j.Key("duration_ms").Number(ToMillis(round.duration));
    j.EndObject();
  }
  j.EndArray();
  EmitFixups(j, result.fixups);
  j.EndObject();
  return j.Take();
}

std::string PlanExecutionStatsToJson(const PlanExecutionStats& stats) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("cluster_upgrade");
  j.Key("migrations").Number(static_cast<int64_t>(stats.migrations));
  j.Key("migration_time_ms").Number(ToMillis(stats.migration_time));
  j.Key("inplace_time_ms").Number(ToMillis(stats.inplace_time));
  j.Key("total_time_ms").Number(ToMillis(stats.total_time));
  j.EndObject();
  return j.Take();
}

std::string OperationalReportToJson(const OperationalReport& report) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("operational_year");
  j.Key("disclosures").Number(static_cast<int64_t>(report.disclosures));
  j.Key("transplants_away").Number(static_cast<int64_t>(report.transplants_away));
  j.Key("transplants_back").Number(static_cast<int64_t>(report.transplants_back));
  j.Key("no_safe_target").Number(static_cast<int64_t>(report.no_safe_target));
  j.Key("already_safe").Number(static_cast<int64_t>(report.already_safe));
  j.Key("exposure_days_traditional").Number(report.exposure_days_traditional);
  j.Key("exposure_days_hypertp").Number(report.exposure_days_hypertp);
  j.Key("exposure_reduction_factor").Number(report.exposure_reduction_factor());
  j.Key("vm_downtime_ms").Number(ToMillis(report.vm_downtime_paid));
  j.Key("fleet").BeginObject();
  j.Key("rollouts").Number(static_cast<int64_t>(report.fleet_rollouts));
  j.Key("retries").Number(static_cast<int64_t>(report.fleet_retries));
  j.Key("stranded_hosts").Number(static_cast<int64_t>(report.fleet_stranded_hosts));
  j.Key("aborts").Number(static_cast<int64_t>(report.fleet_aborts));
  j.Key("post_pause_faults").Number(static_cast<int64_t>(report.fleet_post_pause_faults));
  j.Key("rollbacks").Number(static_cast<int64_t>(report.fleet_rollbacks));
  j.Key("rollback_failures").Number(static_cast<int64_t>(report.fleet_rollback_failures));
  j.Key("crashes").Number(static_cast<int64_t>(report.fleet_crashes));
  j.Key("crash_salvages").Number(static_cast<int64_t>(report.fleet_crash_salvages));
  j.Key("crash_live_recoveries").Number(static_cast<int64_t>(report.fleet_crash_live_recoveries));
  j.Key("crash_rollbacks").Number(static_cast<int64_t>(report.fleet_crash_rollbacks));
  j.Key("lost").Number(static_cast<int64_t>(report.fleet_lost));
  j.Key("throttled_epochs").Number(static_cast<int64_t>(report.fleet_throttled_epochs));
  j.EndObject();
  // Adaptive-only block: kFixed operational JSON stays byte-identical.
  if (report.policy_adaptive) {
    j.Key("policy").BeginObject();
    j.Key("mode").String("adaptive");
    j.Key("refused_hosts").Number(static_cast<int64_t>(report.fleet_refused_hosts));
    j.Key("inplace_vms").Number(static_cast<int64_t>(report.policy_inplace_vms));
    j.Key("migrate_vms").Number(static_cast<int64_t>(report.policy_migrate_vms));
    j.Key("refused_vms").Number(static_cast<int64_t>(report.policy_refused_vms));
    j.EndObject();
  }
  j.Key("event_log").BeginArray();
  for (const std::string& line : report.event_log) {
    j.String(line);
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

}  // namespace hypertp
