// MigrationTP: live-migration-based hypervisor transplant (paper §3.3).
//
// A thin orchestration layer over the migration engine: the same UISR
// translation as InPlaceTP, but the UISR travels over the network through
// source/destination proxies instead of being parked in RAM, and guest pages
// are streamed by pre-copy instead of staying in place.

#ifndef HYPERTP_SRC_CORE_MIGRATION_TP_H_
#define HYPERTP_SRC_CORE_MIGRATION_TP_H_

#include <vector>

#include "src/base/result.h"
#include "src/core/report.h"
#include "src/hv/hypervisor.h"
#include "src/migrate/migrate.h"

namespace hypertp {

struct MigrationTpResult {
  std::vector<MigrationResult> migrations;  // Engine results of the VMs that moved.
  // Per-VM outcomes in vm_ids order: a failed VM stays (resumed) at the
  // source while the rest of the batch still migrates, so callers must check
  // outcomes rather than assume all-or-nothing.
  MigrationBatchResult batch;
  TransplantReport report;                  // Aggregated transplant view.
};

class MigrationTransplant {
 public:
  // Transplants `vm_ids` from `source` to the (heterogeneous or homogeneous)
  // `destination` host over `link`. VMs whose migration aborts remain intact
  // at the source and are reported per-VM in `batch`.
  static Result<MigrationTpResult> Run(Hypervisor& source, const std::vector<VmId>& vm_ids,
                                       Hypervisor& destination, const NetworkLink& link,
                                       const MigrationConfig& config = {});
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_MIGRATION_TP_H_
