// Hypervisor construction by kind — the datacenter's hypervisor repertoire.

#ifndef HYPERTP_SRC_CORE_FACTORY_H_
#define HYPERTP_SRC_CORE_FACTORY_H_

#include <memory>

#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"

namespace hypertp {

// Boots a hypervisor of the requested kind on `machine` (allocates its HV
// State). The machine must have enough free RAM for the hypervisor itself.
std::unique_ptr<Hypervisor> MakeHypervisor(HypervisorKind kind, Machine& machine);

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_FACTORY_H_
