#include "src/core/report.h"

#include <cstdio>

namespace hypertp {

std::string_view TransplantOutcomeName(TransplantOutcome outcome) {
  switch (outcome) {
    case TransplantOutcome::kCompleted:
      return "completed";
    case TransplantOutcome::kRolledBack:
      return "rolled_back";
  }
  return "unknown";
}

std::string TransplantReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "transplant %s -> %s (%d VMs)\n", source_hypervisor.c_str(),
                target_hypervisor.c_str(), vm_count);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  pram %s | translation %s | reboot %s (parse %s) | restoration %s\n",
                FormatDuration(phases.pram).c_str(), FormatDuration(phases.translation).c_str(),
                FormatDuration(phases.reboot).c_str(), FormatDuration(phases.pram_parse).c_str(),
                FormatDuration(phases.restoration).c_str());
  out += buf;
  if (pre_translated) {
    std::snprintf(buf, sizeof(buf),
                  "  pre_translation %s (outside pause) | cache hits %lld | invalidations %lld\n",
                  FormatDuration(phases.pre_translation).c_str(),
                  static_cast<long long>(pretranslate_hits),
                  static_cast<long long>(pretranslate_invalidations));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  downtime %s | total %s | network downtime %s\n",
                FormatDuration(downtime).c_str(), FormatDuration(total_time).c_str(),
                FormatDuration(network_downtime).c_str());
  out += buf;
  if (outcome == TransplantOutcome::kRolledBack) {
    std::snprintf(buf, sizeof(buf), "  outcome rolled_back (salvaged on source) | rollback %s\n",
                  FormatDuration(phases.rollback).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  pram metadata %llu KiB | uisr %llu KiB | fixups %zu\n",
                static_cast<unsigned long long>(pram_metadata_bytes >> 10),
                static_cast<unsigned long long>(uisr_total_bytes >> 10), fixups.size());
  out += buf;
  for (const VmTransplantRecord& vm : vms) {
    std::snprintf(buf, sizeof(buf), "  vm uid %llu '%s': %u vCPU, %llu MiB, uisr %zu B\n",
                  static_cast<unsigned long long>(vm.uid), vm.name.c_str(), vm.vcpus,
                  static_cast<unsigned long long>(vm.memory_bytes >> 20), vm.uisr_bytes);
    out += buf;
  }
  for (const std::string& note : notes) {
    out += "  note: " + note + "\n";
  }
  return out;
}

}  // namespace hypertp
