// Phase units of InPlaceTransplant::Run, split out of the former inplace.cc
// monolith. Run() (src/core/inplace.cc) owns the orchestration — ledger
// commits, kexec, abort/rollback — and calls these units in order:
//
//   PrepareVms        (pre-pause: PRAM entries, device prep, samples)
//   TranslateVms      (post-pause: Extract -> UisrEncode -> PramStore)
//   [kexec micro-reboot]
//   RestoreAllFromPram (PramLoad -> UisrDecode -> Restore)
//
// Each unit runs the per-VM conversion through src/pipeline/ stage functions
// and returns the WorkSchedule that charged its phase, so durations, per-VM
// trace spans and the PhaseBreakdown all derive from one schedule.

#ifndef HYPERTP_SRC_CORE_INPLACE_INTERNAL_H_
#define HYPERTP_SRC_CORE_INPLACE_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/core/report.h"
#include "src/hv/hypervisor.h"
#include "src/pipeline/pretranslate.h"
#include "src/pram/pram.h"
#include "src/sim/worker_pool.h"

namespace hypertp {
namespace inplace_internal {

// Splits a guest memory map into PRAM page entries, emitting 2 MiB entries
// wherever both address spaces are huge-aligned.
std::vector<PramPageEntry> EntriesFromMappings(const std::vector<GuestMapping>& mappings,
                                               bool huge_pages);

// Resolves a gfn through a guest memory map.
Result<Mfn> TranslateInMap(const std::vector<GuestMapping>& map, Gfn gfn);

// Everything Run() carries per VM across the phases.
struct VmSnapshot {
  VmId id = 0;
  VmInfo info;
  std::vector<GuestMapping> map;
  uint64_t vm_file_id = 0;
  std::vector<Gfn> sample_gfns;
  std::vector<uint64_t> sample_words;
  std::vector<Mfn> sample_mfns;
  // kUisr extents holding this VM's encoded blob. The blob bytes themselves
  // live only in PRAM-destined frames (encoded straight into place); the
  // save side never materializes them in a host vector.
  std::vector<FrameExtent> uisr_frames;
};

// Pre-pause preparation: per-VM device prep, guest memory map -> PRAM file,
// verification samples. Fills `vms`; returns the PRAM-construction schedule
// (tasks in `vms` order) whose makespan is charged as phases.pram. Errors
// are returned raw; the caller's abort path wraps them.
Result<WorkSchedule> PrepareVms(Hypervisor& source, Machine& machine,
                                const InPlaceOptions& options, int workers,
                                PramBuilder& builder, std::vector<VmSnapshot>& vms);

// Post-pause translation: serial Extract per VM, then fused UisrEncode +
// PramStore — kUisr frames are allocated and registered serially in VM order
// and the encodes run straight into the mapped extents on `real_threads` OS
// threads (no intermediate blob vectors). Fills the per-VM report records;
// returns the translation schedule (tasks in `vms` order) charged as
// phases.translation. Honors the kTranslationFailure / kPramWriteFailure
// injection points.
//
// With a non-null `cache` (options.pre_translate), each VM's state generation
// is compared against its speculative pre-translation: a match registers the
// parked extent (zero blob bytes move) for pretranslate_check; a mismatch
// re-extracts and patches only the dirty UISR sections — rewriting the
// parked extent in place when the size allows — charged at the full translate
// cost scaled by the dirtied payload fraction. Null runs the legacy path.
Result<WorkSchedule> TranslateVms(Hypervisor& source, Machine& machine,
                                  const InPlaceOptions& options, int workers, int real_threads,
                                  PramBuilder& builder, TransplantReport& report,
                                  std::vector<VmSnapshot>& vms,
                                  const pipeline::PreTranslationCache* cache);

// What the restore side hands back to Run().
struct RestoreOutcome {
  std::vector<VmId> vms;
  // Per-VM uids, parallel to `schedule.tasks` (and to `vms`).
  std::vector<uint64_t> uids;
  // Restore schedule; its makespan is charged as phases.restoration (or
  // added to phases.rollback on the salvage path).
  WorkSchedule schedule;
};

// Restores every `uisr:` PRAM file under `hv`: serial PramLoad of all blobs,
// parallel UisrDecode, then serial Restore — the whole batch is decoded (and
// validated) before the first VM is relinked. Shared by the forward path
// (restore under the target) and the rollback path (salvage under the source
// kind); `inject` only ever carries a fault on the forward attempt. Errors
// come back unwrapped so the caller decides between rollback and kDataLoss.
Result<RestoreOutcome> RestoreAllFromPram(Hypervisor& hv, Machine& machine,
                                          const PramImage& pram, const InPlaceOptions& options,
                                          HypervisorKind kind, int workers, int real_threads,
                                          FixupLog* fixups, InPlaceOptions::Fault inject);

}  // namespace inplace_internal
}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_INPLACE_INTERNAL_H_
