#include "src/core/factory.h"

#include "src/bhyve/bhyve_host.h"
#include "src/kvm/kvm_host.h"
#include "src/xen/xenvisor.h"

namespace hypertp {

std::unique_ptr<Hypervisor> MakeHypervisor(HypervisorKind kind, Machine& machine) {
  switch (kind) {
    case HypervisorKind::kXen:
      return std::make_unique<XenVisor>(machine);
    case HypervisorKind::kKvm:
      return std::make_unique<KvmHost>(machine);
    case HypervisorKind::kBhyve:
      return std::make_unique<BhyveVisor>(machine);
  }
  return nullptr;
}

}  // namespace hypertp
