// InPlaceTransplant::Run — the orchestration spine: ledger commits, fault
// injection, kexec micro-reboot, abort/rollback, verification and the timing
// summary. The per-phase conversion work lives in the phase units of
// inplace_internal.h (inplace_save.cc / inplace_restore.cc), which run the
// shared src/pipeline/ stages and hand back the worker-pool schedule each
// phase charged — so durations, per-VM spans and the PhaseBreakdown all
// derive from one schedule.

#include "src/core/inplace.h"

#include <algorithm>
#include <optional>
#include <string>

#include "src/base/logging.h"
#include "src/core/factory.h"
#include "src/core/inplace_internal.h"
#include "src/kexec/kexec.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pram/ledger.h"
#include "src/pram/pram.h"

namespace hypertp {
namespace {

using inplace_internal::PrepareVms;
using inplace_internal::RestoreAllFromPram;
using inplace_internal::RestoreOutcome;
using inplace_internal::TranslateInMap;
using inplace_internal::TranslateVms;
using inplace_internal::VmSnapshot;

// One "<prefix>:vm-<uid>" span per VM, laid out exactly where the worker-pool
// schedule placed that VM's stage work relative to `phase_start`, as children
// of `parent` on per-VM tracks. `uids` is parallel to `schedule.tasks`.
void TraceScheduledSpans(Tracer* tracer, std::string_view prefix,
                         const std::vector<uint64_t>& uids, const WorkSchedule& schedule,
                         SimTime phase_start, SpanId parent) {
  if (tracer == nullptr) {
    return;
  }
  for (size_t i = 0; i < schedule.tasks.size() && i < uids.size(); ++i) {
    const std::string label = "vm-" + std::to_string(uids[i]);
    tracer->AddSpan(std::string(prefix) + ":" + label, phase_start + schedule.tasks[i].start,
                    schedule.tasks[i].duration(), parent, label);
  }
}

}  // namespace

Result<InPlaceResult> InPlaceTransplant::Run(std::unique_ptr<Hypervisor> source,
                                             HypervisorKind target,
                                             const InPlaceOptions& options,
                                             std::unique_ptr<Hypervisor>* aborted_source) {
  if (source == nullptr) {
    return InvalidArgumentError("inplace: null source hypervisor");
  }
  Machine& machine = source->machine();
  const HostCostProfile& costs = machine.profile().costs;
  // Modeled workers charge every duration; real threads only move wall-clock.
  const int workers = options.parallel_translation ? machine.worker_threads() : 1;
  const int real_threads =
      options.real_threads > 0 ? options.real_threads : ParallelThreadsFromEnv();

  TransplantReport report;
  report.source_hypervisor = std::string(source->name());

  // Tracing: phase spans are laid out along one simulated timeline whose
  // cursor advances by exactly the durations the report charges, so the span
  // tree and the PhaseBreakdown agree to the nanosecond.
  Tracer* const tracer = options.tracer;
  SimTime cursor = options.trace_base;
  SpanId root = 0;
  if (tracer != nullptr) {
    root = tracer->BeginSpan("inplace_transplant", cursor);
    tracer->SetAttribute(root, "source", std::string_view(report.source_hypervisor));
  }

  std::vector<VmId> paused;  // For the abort path.
  auto abort = [&](const Error& cause) -> Error {
    if (tracer != nullptr) {
      tracer->SetAttribute(root, "outcome", "aborted");
      tracer->SetAttribute(root, "abort_cause", std::string_view(cause.ToString()));
      tracer->EndSpan(root, cursor);
    }
    for (VmId id : paused) {
      (void)source->ResumeVm(id);
    }
    // Release everything the aborted attempt staged: PRAM metadata, parked
    // UISR blobs, and the kexec kernel image. The source hypervisor keeps
    // running as if nothing happened.
    for (FrameOwnerKind kind :
         {FrameOwnerKind::kPramMeta, FrameOwnerKind::kUisr, FrameOwnerKind::kKernelImage}) {
      for (const FrameExtent& ext : machine.memory().ExtentsOfKind(kind)) {
        (void)machine.memory().Free(ext.base, ext.count);
      }
    }
    if (aborted_source != nullptr) {
      *aborted_source = std::move(source);
    }
    return AbortedError("inplace transplant aborted before micro-reboot: " + cause.ToString());
  };

  // ❶ Stage the target kernel image (no downtime).
  KexecController kexec(machine);
  const KernelImage image = KernelImage::For(target);
  const HypervisorKind source_kind = source->kind();
  report.target_hypervisor = image.name;
  if (auto staged = kexec.LoadImage(image); !staged.ok()) {
    return abort(staged.error());
  }

  // Open the transplant ledger: the phase record that lets the post-reboot
  // kernel distinguish a healthy hand-off from a crashed one. It lives in a
  // kPramMeta frame, so the abort and cleanup paths below reclaim it with the
  // rest of the PRAM metadata.
  LedgerRecord ledger_record;
  ledger_record.phase = TransplantPhase::kStaged;
  ledger_record.source_kind = static_cast<uint8_t>(source_kind);
  ledger_record.target_kind = static_cast<uint8_t>(target);
  auto ledger_or = TransplantLedger::Create(machine.memory(), ledger_record);
  if (!ledger_or.ok()) {
    return abort(ledger_or.error());
  }
  TransplantLedger ledger = std::move(*ledger_or);

  // --- Preparation: PRAM construction, guest-cooperative device prep. ------
  // Runs before the pause when the prepare_before_pause optimization is on.
  std::vector<VmSnapshot> vms;
  PramBuilder builder(machine.memory());
  auto pram_schedule = PrepareVms(*source, machine, options, workers, builder, vms);
  if (!pram_schedule.ok()) {
    return abort(pram_schedule.error());
  }
  report.vm_count = static_cast<int>(vms.size());
  report.phases.pram = pram_schedule->makespan;
  if (tracer != nullptr) {
    tracer->AddSpan("phase:pram", cursor, report.phases.pram, root);
  }
  cursor += report.phases.pram;

  // --- Speculative pre-translation: Extract -> UisrEncode while the guests
  // still run, keyed by per-VM state generations. Runs after PrepareVms so
  // the PRAM file ids it bakes into the blobs are final. Its makespan is
  // charged to total_time only — the guests are not paused for it.
  pipeline::PreTranslationCache pretranslate_cache;
  if (options.pre_translate) {
    std::vector<pipeline::PreTranslateRequest> requests;
    requests.reserve(vms.size());
    for (const VmSnapshot& snap : vms) {
      requests.push_back(pipeline::PreTranslateRequest{snap.id, snap.info.uid, snap.vm_file_id,
                                                       snap.info.vcpus, snap.info.memory_bytes});
    }
    // Parking into machine memory moves the blob copy out of the pause
    // window: a generation hit later only registers the PRAM file. The
    // extents are owned kUisr, so abort()/cleanup reclaim them like any
    // pause-time store.
    auto pre_schedule = pipeline::PreTranslateVms(*source, costs, requests, workers, real_threads,
                                                  &pretranslate_cache, &machine.memory());
    if (!pre_schedule.ok()) {
      return abort(pre_schedule.error());
    }
    report.pre_translated = true;
    report.phases.pre_translation = pre_schedule->makespan;
    if (tracer != nullptr) {
      const SpanId span =
          tracer->AddSpan("phase:pre_translation", cursor, report.phases.pre_translation, root);
      std::vector<uint64_t> uids;
      uids.reserve(vms.size());
      for (const VmSnapshot& snap : vms) {
        uids.push_back(snap.info.uid);
      }
      TraceScheduledSpans(tracer, "pre_translate", uids, *pre_schedule, cursor, span);
    }
    cursor += report.phases.pre_translation;
  }

  // The guests ran through all of the above. Let the test/bench hook inject
  // its guest activity now (in both modes, so invalidation comparisons are
  // fair) — whatever it dirties must show up in the translated state.
  if (options.concurrent_activity) {
    options.concurrent_activity(*source);
  }

  // ❷ Pause all guests.
  for (VmSnapshot& snap : vms) {
    if (auto pause = source->PauseVm(snap.id); !pause.ok()) {
      return abort(pause.error());
    }
    paused.push_back(snap.id);
  }
  if (tracer != nullptr) {
    tracer->AddInstant("guests_paused", cursor);
  }

  // ❸ Translate VM_i States to UISR; park the blobs in RAM as PRAM files.
  // With pre-translation on this only reconciles the cache against the
  // paused-state generations; without it, the full Extract -> UisrEncode
  // pipeline runs here, inside the pause window.
  auto translate_schedule =
      TranslateVms(*source, machine, options, workers, real_threads, builder, report, vms,
                   options.pre_translate ? &pretranslate_cache : nullptr);
  if (!translate_schedule.ok()) {
    return abort(translate_schedule.error());
  }
  report.phases.translation = translate_schedule->makespan;
  if (options.metrics != nullptr && report.pre_translated) {
    options.metrics->GetCounter("hypertp_pretranslate_hits")
        .Increment(static_cast<uint64_t>(report.pretranslate_hits));
    options.metrics->GetCounter("hypertp_pretranslate_invalidations")
        .Increment(static_cast<uint64_t>(report.pretranslate_invalidations));
  }
  if (tracer != nullptr) {
    const SpanId span = tracer->AddSpan("phase:translation", cursor, report.phases.translation, root);
    tracer->SetAttribute(span, "uisr_bytes", static_cast<int64_t>(report.uisr_total_bytes));
    std::vector<uint64_t> uids;
    uids.reserve(vms.size());
    for (const VmSnapshot& snap : vms) {
      uids.push_back(snap.info.uid);
    }
    TraceScheduledSpans(tracer, "translate", uids, *translate_schedule, cursor, span);
  }
  cursor += report.phases.translation;

  auto pram_handle = builder.Finalize();
  if (!pram_handle.ok()) {
    return abort(pram_handle.error());
  }
  report.pram_metadata_bytes = pram_handle->metadata_bytes();

  ledger_record.phase = TransplantPhase::kTranslated;
  ledger_record.vm_count = static_cast<uint32_t>(vms.size());
  if (auto committed = ledger.Commit(ledger_record); !committed.ok()) {
    return abort(committed.error());
  }

  if (options.inject_fault == InPlaceOptions::Fault::kPramCorruptionBeforeReboot) {
    // Clobber the PRAM root page: models a stray hypervisor write between
    // translation and the kexec jump.
    (void)machine.memory().WritePage(pram_handle->root_mfn, std::vector<uint8_t>(64, 0xFF));
  }
  if (options.inject_fault == InPlaceOptions::Fault::kUisrCorruptionBeforeReboot &&
      !vms.empty() && !vms.front().uisr_frames.empty()) {
    // Flip bytes inside the first VM's parked UISR blob. The PRAM structure
    // stays valid (guest memory survives), but the blob's CRC must catch
    // this at restore time.
    const Mfn victim = vms.front().uisr_frames.front().base;
    auto page = machine.memory().ReadPage(victim);
    if (page.ok() && !page->empty()) {
      (*page)[page->size() / 2] ^= 0xFF;
      (void)machine.memory().WritePage(victim, std::move(*page));
    }
  }

  // Commit the point-of-no-return record: from here on the ledger is what
  // authorizes a rollback and names the hypervisor kind to salvage under.
  ledger_record.phase = TransplantPhase::kCommitted;
  ledger_record.pram_root = pram_handle->root_mfn;
  if (auto committed = ledger.Commit(ledger_record); !committed.ok()) {
    return abort(committed.error());
  }
  if (options.inject_fault == InPlaceOptions::Fault::kLedgerTornWrite) {
    // Tear the commit record the fault-recovery path depends on: flip a byte
    // inside the slot the kCommitted generation was written to. Read() must
    // fall back to the previous (kTranslated) generation, which does not
    // authorize rollback.
    auto page = machine.memory().ReadPage(ledger.frame());
    if (page.ok() && page->size() > TransplantLedger::SlotOffset(ledger.generation())) {
      (*page)[TransplantLedger::SlotOffset(ledger.generation()) + 2] ^= 0xFF;
      (void)machine.memory().WritePage(ledger.frame(), std::move(*page));
    }
  }

  // ❹ Micro-reboot into the target kernel. Point of no return.
  source->DetachForMicroReboot();
  source.reset();
  SpanId reboot_span = 0;
  if (tracer != nullptr) {
    reboot_span = tracer->BeginSpan("phase:reboot", cursor, root);
    kexec.SetTrace(tracer, cursor, reboot_span);
  }
  auto boot = kexec.Reboot(FormatKexecCmdline(pram_handle->root_mfn, ledger.frame()));
  if (!boot.ok()) {
    if (tracer != nullptr) {
      tracer->SetAttribute(root, "outcome", "data_loss");
      tracer->EndSpan(reboot_span, cursor);
      tracer->EndSpan(root, cursor);
    }
    return DataLossError("inplace: micro-reboot lost the guests: " + boot.error().ToString());
  }
  report.phases.reboot = boot->reboot_time;
  report.phases.pram_parse = boot->pram_parse_time;
  report.phases.network = boot->network_ready;
  report.frames_scrubbed = boot->frames_scrubbed;
  if (tracer != nullptr) {
    tracer->EndSpan(reboot_span, cursor + report.phases.reboot);
    // NIC re-init starts at the kexec jump and overlaps the later phases.
    tracer->AddSpan("nic_reinit", cursor, report.phases.network, root, "network");
  }
  cursor += report.phases.reboot;

  // ❺ + ❻ Construct the target hypervisor; restore and relink every VM.
  // A post-pause failure here no longer strands the host: the salvage path
  // below re-instantiates the *source* hypervisor kind from the same PRAM
  // image (ReHype-style), so the guests lose time, not state.
  InPlaceResult result;
  std::unique_ptr<Hypervisor> hv;
  std::optional<Error> rollback_cause;
  if (options.inject_fault == InPlaceOptions::Fault::kKexecFailure) {
    // Models the target kernel panicking right after the scrub: the machine
    // comes back via the watchdog path with nothing restored.
    rollback_cause = InternalError("injected kexec fault: target kernel panicked after scrub");
  } else {
    hv = MakeHypervisor(target, machine);
    if (hv == nullptr) {
      return InternalError("inplace: unknown target hypervisor kind");
    }
    auto restored = RestoreAllFromPram(*hv, machine, boot->pram, options, target, workers,
                                       real_threads, &report.fixups, options.inject_fault);
    if (!restored.ok()) {
      rollback_cause = restored.error();
    } else {
      report.phases.restoration = restored->schedule.makespan;
      if (!options.early_restoration) {
        // Without the early-restoration optimization, restores wait for the
        // full service startup window instead of overlapping the late boot.
        report.phases.restoration += costs.boot_linux / 5;
      }
      if (tracer != nullptr) {
        const SpanId span =
            tracer->AddSpan("phase:restoration", cursor, report.phases.restoration, root);
        TraceScheduledSpans(tracer, "restore", restored->uids, restored->schedule, cursor, span);
      }
      result.restored_vms = std::move(restored->vms);
      cursor += report.phases.restoration;
    }
  }

  if (rollback_cause.has_value()) {
    // --- Salvage: roll back to the source hypervisor kind. -----------------
    // The guests' memory is still in RAM (the PRAM reservation survived the
    // scrub) and the UISR image is hypervisor-neutral, so a second
    // micro-reboot into the source kind can restore every VM — if and only
    // if the ledger proves the image was fully committed.
    SpanId rollback_span = 0;
    if (tracer != nullptr) {
      rollback_span = tracer->BeginSpan("phase:rollback", cursor, root);
      tracer->SetAttribute(rollback_span, "cause", std::string_view(rollback_cause->ToString()));
    }
    auto salvage = [&]() -> Result<void> {
      auto opened = TransplantLedger::Open(machine.memory(), boot->ledger_mfn);
      if (!opened.ok()) {
        return opened.error();
      }
      // Crash-grade triage rather than a bare phase check: Assess() also
      // detects a *newer* write torn over an old committed record, which a
      // Read() fallback would happily salvage as if current (stale-state
      // resurrection). The planned path holds itself to the same bar as the
      // unplanned ReHype recovery.
      HYPERTP_ASSIGN_OR_RETURN(SalvageAssessment assessment, opened->Assess());
      if (assessment.decision != SalvageDecision::kSalvageFromImage) {
        return DataLossError(assessment.reason);
      }
      LedgerRecord record = *assessment.record;
      const auto salvage_kind = static_cast<HypervisorKind>(record.source_kind);
      if (hv != nullptr) {
        // Partially restored target state (VM structures, NPTs) is reclaimed
        // by the second scrub; the target must not free adopted guest frames.
        hv->DetachForMicroReboot();
        hv.reset();
      }
      HYPERTP_RETURN_IF_ERROR(kexec.LoadImage(KernelImage::For(salvage_kind)));
      if (tracer != nullptr) {
        kexec.SetTrace(tracer, cursor, rollback_span);
      }
      HYPERTP_ASSIGN_OR_RETURN(
          KexecBootResult reborn,
          kexec.Reboot(FormatKexecCmdline(record.pram_root, opened->frame())));
      report.phases.rollback += reborn.reboot_time;
      report.frames_scrubbed += reborn.frames_scrubbed;
      hv = MakeHypervisor(salvage_kind, machine);
      if (hv == nullptr) {
        return InternalError("inplace: ledger names unknown source hypervisor kind");
      }
      HYPERTP_ASSIGN_OR_RETURN(
          RestoreOutcome out,
          RestoreAllFromPram(*hv, machine, reborn.pram, options, salvage_kind, workers,
                             real_threads, &report.fixups, InPlaceOptions::Fault::kNone));
      TraceScheduledSpans(tracer, "restore", out.uids, out.schedule,
                          cursor + reborn.reboot_time, rollback_span);
      result.restored_vms = std::move(out.vms);
      report.phases.rollback += out.schedule.makespan;
      record.phase = TransplantPhase::kRolledBack;
      HYPERTP_RETURN_IF_ERROR(opened->Commit(record));
      return OkResult();
    };
    if (auto salvaged = salvage(); !salvaged.ok()) {
      if (tracer != nullptr) {
        tracer->SetAttribute(root, "outcome", "data_loss");
        tracer->EndSpan(rollback_span, cursor);
        tracer->EndSpan(root, cursor);
      }
      return DataLossError("inplace: post-pause fault (" + rollback_cause->ToString() +
                           ") and rollback failed: " + salvaged.error().ToString());
    }
    if (tracer != nullptr) {
      tracer->EndSpan(rollback_span, cursor + report.phases.rollback);
    }
    cursor += report.phases.rollback;
    report.outcome = TransplantOutcome::kRolledBack;
    report.notes.push_back("post-pause fault; salvaged all " +
                           std::to_string(result.restored_vms.size()) +
                           " VMs under the source hypervisor: " + rollback_cause->ToString());
    HYPERTP_LOG(kWarning, "inplace")
        << "rolled back to source hypervisor after post-pause fault: "
        << rollback_cause->ToString();
  }

  // ❼ Resume all guests, advancing their clocks past the pause so guest
  // time never runs backwards.
  const SimDuration pause_span = (options.prepare_before_pause ? 0 : report.phases.pram) +
                                 report.phases.translation + report.phases.reboot +
                                 report.phases.restoration + report.phases.rollback;
  for (VmId id : result.restored_vms) {
    if (auto advanced = hv->AdvanceGuestClocks(id, pause_span); !advanced.ok()) {
      return DataLossError("inplace: clock adjust failed: " + advanced.error().ToString());
    }
    if (auto resumed = hv->ResumeVm(id); !resumed.ok()) {
      return DataLossError("inplace: resume failed: " + resumed.error().ToString());
    }
  }
  report.phases.resume = Millis(2) * report.vm_count;
  if (tracer != nullptr) {
    tracer->AddSpan("phase:resume", cursor, report.phases.resume, root);
  }
  cursor += report.phases.resume;

  // Cleanup: the PRAM metadata and parked UISR blobs are ephemeral.
  for (const FrameExtent& ext : machine.memory().ExtentsOfKind(FrameOwnerKind::kPramMeta)) {
    (void)machine.memory().Free(ext.base, ext.count);
  }
  for (const FrameExtent& ext : machine.memory().ExtentsOfKind(FrameOwnerKind::kUisr)) {
    (void)machine.memory().Free(ext.base, ext.count);
  }
  report.phases.cleanup = Millis(20);
  if (tracer != nullptr) {
    // Cleanup runs after the guests resumed; it is charged to neither
    // downtime nor total_time, so it sits beside the root span, not inside.
    tracer->AddSpan("phase:cleanup", cursor, report.phases.cleanup);
  }

  // Verification: guest memory must be byte-identical AND in place.
  if (options.verify_guest_memory) {
    for (const VmSnapshot& snap : vms) {
      auto new_id = [&]() -> Result<VmId> {
        for (VmId id : result.restored_vms) {
          auto info = hv->GetVmInfo(id);
          if (info.ok() && info->uid == snap.info.uid) {
            return id;
          }
        }
        return NotFoundError("restored vm for uid " + std::to_string(snap.info.uid));
      }();
      if (!new_id.ok()) {
        return DataLossError("inplace: " + new_id.error().ToString());
      }
      auto new_map = hv->GuestMemoryMap(*new_id);
      if (!new_map.ok()) {
        return DataLossError("inplace: " + new_map.error().ToString());
      }
      for (size_t i = 0; i < snap.sample_gfns.size(); ++i) {
        auto word = hv->ReadGuestPage(*new_id, snap.sample_gfns[i]);
        auto mfn = TranslateInMap(*new_map, snap.sample_gfns[i]);
        if (!word.ok() || !mfn.ok() || *word != snap.sample_words[i] ||
            *mfn != snap.sample_mfns[i]) {
          return DataLossError("inplace: guest memory verification failed for uid " +
                               std::to_string(snap.info.uid) + " at gfn " +
                               std::to_string(snap.sample_gfns[i]));
        }
      }
    }
    report.notes.push_back("guest memory verified in place (content + MFN samples)");
  }

  // --- Assemble the timing summary. ----------------------------------------
  report.downtime = (options.prepare_before_pause ? 0 : report.phases.pram) +
                    report.phases.translation + report.phases.reboot +
                    report.phases.restoration + report.phases.rollback + report.phases.resume;
  report.total_time = report.phases.pram + report.phases.pre_translation +
                      report.phases.translation + report.phases.reboot +
                      report.phases.restoration + report.phases.rollback + report.phases.resume;
  // NIC re-init starts at the kexec jump and overlaps the remaining phases.
  report.network_downtime =
      std::max(report.downtime, report.phases.translation + report.phases.network);

  if (tracer != nullptr) {
    tracer->SetAttribute(root, "target", std::string_view(report.target_hypervisor));
    tracer->SetAttribute(root, "vm_count", static_cast<int64_t>(report.vm_count));
    tracer->SetAttribute(root, "outcome", TransplantOutcomeName(report.outcome));
    tracer->SetAttribute(root, "downtime_ms", ToMillis(report.downtime));
    tracer->EndSpan(root, options.trace_base + report.total_time);
  }

  HYPERTP_LOG(kInfo, "inplace") << report.ToString();
  result.report = std::move(report);
  result.hypervisor = std::move(hv);
  return result;
}

}  // namespace hypertp
