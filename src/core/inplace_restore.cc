// Restore-side phase unit of InPlaceTransplant::Run:
// PramLoad -> UisrDecode -> Restore over every `uisr:` PRAM file.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/inplace_internal.h"
#include "src/pipeline/conversion.h"

namespace hypertp {
namespace inplace_internal {

Result<RestoreOutcome> RestoreAllFromPram(Hypervisor& hv, Machine& machine,
                                          const PramImage& pram, const InPlaceOptions& options,
                                          HypervisorKind kind, int workers, int real_threads,
                                          FixupLog* fixups, InPlaceOptions::Fault inject) {
  const HostCostProfile& costs = machine.profile().costs;

  // PramLoad (serial): borrow every parked UISR blob straight from its
  // PRAM-resident frames when the store left them contiguously backed (the
  // zero-copy save path always does); fall back to page-wise reassembly for
  // anything else. `copies` owns the fallback bytes — inner vectors keep
  // stable addresses as the outer vector grows, so earlier spans stay valid.
  std::vector<const PramFile*> files;
  std::vector<std::span<const uint8_t>> blobs;
  std::vector<std::vector<uint8_t>> copies;
  for (const PramFile& file : pram.files) {
    if (!file.name.starts_with("uisr:")) {
      continue;
    }
    if (auto view = pipeline::ViewUisrBlob(machine.memory(), file); view.ok()) {
      blobs.push_back(*view);
    } else {
      auto blob = pipeline::LoadUisrBlob(machine.memory(), file);
      if (!blob.ok()) {
        return DataLossError("inplace: UISR page lost: " + blob.error().ToString());
      }
      copies.push_back(std::move(*blob));
      blobs.push_back(copies.back());
    }
    files.push_back(&file);
  }
  if (!files.empty() && (inject == InPlaceOptions::Fault::kDecodeFailure ||
                         inject == InPlaceOptions::Fault::kLedgerTornWrite)) {
    return DataLossError("inplace: injected UISR decode fault under target");
  }

  // UisrDecode (pure: real OS threads allowed). The whole batch is decoded —
  // and thereby CRC-validated — before the first VM is relinked; the first
  // corrupt blob in file order is reported.
  std::vector<Result<UisrVm>> decoded = pipeline::DecodeVmStates(blobs, real_threads);
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (!decoded[i].ok()) {
      return DataLossError("inplace: UISR blob for '" + files[i]->name +
                           "' corrupt after reboot: " + decoded[i].error().ToString());
    }
  }

  // Restore (serial): relink every VM over its surviving memory.
  RestoreOutcome out;
  std::vector<SimDuration> restore_costs;
  for (size_t i = 0; i < decoded.size(); ++i) {
    const UisrVm& uisr = *decoded[i];
    const PramFile* vm_file = pram.FindFile(uisr.memory.pram_file_id);
    if (vm_file == nullptr) {
      return DataLossError("inplace: PRAM memory file " +
                           std::to_string(uisr.memory.pram_file_id) + " missing");
    }
    if (i == 0 && inject == InPlaceOptions::Fault::kRestoreFailure) {
      return InternalError("inplace: injected VM restore fault under target");
    }
    GuestMemoryBinding binding;
    binding.mode = GuestMemoryBinding::Mode::kAdoptInPlace;
    binding.entries = vm_file->entries;
    binding.remap_high_ioapic_pins = options.remap_high_ioapic_pins;
    auto vm_id = pipeline::RestoreVmState(hv, uisr, binding, fixups);
    if (!vm_id.ok()) {
      return DataLossError("inplace: restore of uid " + std::to_string(uisr.vm_uid) +
                           " failed: " + vm_id.error().ToString());
    }
    out.vms.push_back(*vm_id);
    out.uids.push_back(uisr.vm_uid);
    restore_costs.push_back(
        pipeline::RestoreStageCost(costs, kind, static_cast<uint32_t>(uisr.vcpus.size()),
                                   uisr.memory.memory_bytes));
  }
  out.schedule = ScheduleWork(restore_costs, workers);
  return out;
}

}  // namespace inplace_internal
}  // namespace hypertp
