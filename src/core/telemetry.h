// Telemetry export: transplant and migration reports as JSON documents for
// fleet monitoring (what a production HyperTP would push to its operators'
// dashboards after each §4.5.2 host live upgrade).

#ifndef HYPERTP_SRC_CORE_TELEMETRY_H_
#define HYPERTP_SRC_CORE_TELEMETRY_H_

#include <string>

#include "src/cluster/cluster.h"
#include "src/core/report.h"
#include "src/migrate/migrate.h"
#include "src/scenario/operational.h"

namespace hypertp {

// One JSON object with phases (ms), downtime/total/network (ms), memory
// overheads (bytes), fixups, and notes.
std::string TransplantReportToJson(const TransplantReport& report);

// One JSON object with timing, rounds, bytes, convergence and fixups.
std::string MigrationResultToJson(const MigrationResult& result);

// Cluster-upgrade execution stats: migrations, migration/inplace/total ms.
std::string PlanExecutionStatsToJson(const PlanExecutionStats& stats);

// Year-in-the-life report: disclosure buckets, both worlds' exposure,
// downtime paid, fleet-rollout aggregates, and the event log.
std::string OperationalReportToJson(const OperationalReport& report);

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_TELEMETRY_H_
