// Telemetry export: transplant and migration reports as JSON documents for
// fleet monitoring (what a production HyperTP would push to its operators'
// dashboards after each §4.5.2 host live upgrade).

#ifndef HYPERTP_SRC_CORE_TELEMETRY_H_
#define HYPERTP_SRC_CORE_TELEMETRY_H_

#include <string>

#include "src/core/report.h"
#include "src/migrate/migrate.h"

namespace hypertp {

// One JSON object with phases (ms), downtime/total/network (ms), memory
// overheads (bytes), fixups, and notes.
std::string TransplantReportToJson(const TransplantReport& report);

// One JSON object with timing, rounds, bytes, convergence and fixups.
std::string MigrationResultToJson(const MigrationResult& result);

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_TELEMETRY_H_
