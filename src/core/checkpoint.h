// VM checkpointing: packages a paused VM's complete state — UISR platform
// description plus guest page contents — into one portable, CRC-protected
// blob. Because the platform state travels as UISR, a checkpoint taken on
// one hypervisor restores under any other: a cold (suspend-to-disk shaped)
// variant of the transplant, and the mechanism behind Nova's suspend/resume
// integration point (paper §4.5.2 step 1: "guest state saving, akin to the
// existing suspend operation").

#ifndef HYPERTP_SRC_CORE_CHECKPOINT_H_
#define HYPERTP_SRC_CORE_CHECKPOINT_H_

#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"

namespace hypertp {

// Serializes the paused VM `id` into a self-contained blob. The VM is left
// paused on `hv` (callers typically DestroyVm afterwards).
Result<std::vector<uint8_t>> SaveVmCheckpoint(Hypervisor& hv, VmId id);

// Recreates a VM from `blob` on `hv` (fresh memory allocation, pages applied,
// VM left paused). Fails with kDataLoss on a corrupt or truncated blob and
// kAlreadyExists when a VM with the same uid already runs on `hv`.
Result<VmId> RestoreVmCheckpoint(Hypervisor& hv, std::span<const uint8_t> blob);

// Peeks at a checkpoint's header without restoring.
struct CheckpointInfo {
  uint64_t vm_uid = 0;
  std::string name;
  std::string source_hypervisor;
  uint64_t memory_bytes = 0;
  uint32_t vcpus = 0;
  uint64_t page_count = 0;  // Non-zero guest pages captured.
};
Result<CheckpointInfo> InspectCheckpoint(std::span<const uint8_t> blob);

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_CHECKPOINT_H_
