// Transplant options and reports — the operator-facing telemetry HyperTP
// produces, structured like the paper's Fig. 6 breakdown.

#ifndef HYPERTP_SRC_CORE_REPORT_H_
#define HYPERTP_SRC_CORE_REPORT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/hv/hypervisor.h"
#include "src/sim/time.h"

namespace hypertp {

class MetricsRegistry;
class Tracer;

// Options controlling the InPlaceTP optimizations of paper §4.2.5. The
// defaults are the paper's configuration; the ablation benches flip them.
struct InPlaceOptions {
  // Observability: when non-null, the run records one span per phase (and
  // per VM restore, per kexec stage) starting at `trace_base` on the
  // tracer's simulated timeline. Null (the default) records nothing and
  // changes no behavior or reported duration.
  Tracer* tracer = nullptr;
  SimTime trace_base = 0;
  // When non-null, the run increments hypertp_pretranslate_{hits,invalidations}
  // counters after the translation phase. Null (the default) records nothing.
  MetricsRegistry* metrics = nullptr;

  // "Preparation work without pausing the guest": build PRAM before pause.
  bool prepare_before_pause = true;
  // Speculative pre-translation (src/pipeline/pretranslate.h): Extract +
  // UisrEncode while the guests still run, keyed by per-VM state generations.
  // At pause time only invalidated VMs are re-translated, and within a VM only
  // the dirty UISR sections are patched. Off = the exact legacy pause-window
  // translation (byte-identical blobs, reports and traces).
  bool pre_translate = true;
  // Invoked after pre-translation completes (or, with pre_translate off, at
  // the same point in the sequence) while the guests are still running. Test
  // and bench hook: inject guest events here to dirty state generations and
  // exercise the invalidation path. Null runs nothing.
  std::function<void(Hypervisor&)> concurrent_activity;
  // "Parallelization": one worker per free core for PRAM + translation.
  // This is the *modeled* worker count (Machine::worker_threads()); it
  // decides every charged duration via the worker-pool schedule.
  bool parallel_translation = true;
  // Real OS threads for the pure UISR encode/decode stage work. Wall-clock
  // only: never changes charged durations, reports, blobs or trace JSON —
  // those derive from the modeled schedule above. 0 = read the
  // HYPERTP_PARALLEL env var (unset = 1); 1 = run inline.
  int real_threads = 0;
  // "Huge page support": 2 MiB PRAM entries where alignment permits.
  bool use_huge_pages = true;
  // "Early restoration": start restores while late boot services come up.
  bool early_restoration = true;
  // Extra safety: sample guest pages before/after and compare (content and
  // machine frame numbers must both be identical for InPlaceTP).
  bool verify_guest_memory = true;
  int verify_sample_pages = 32;
  // §4.2.1 future-work extension: renegotiate IOAPIC pins the target cannot
  // host instead of disconnecting them.
  bool remap_high_ioapic_pins = false;

  // Fault injection for testing the recovery paths, one per InPlaceTP phase.
  //
  // Pre-reboot faults expect a clean abort (guests resume under the source):
  //   kTranslationFailure fires after the guests are paused; kPramWriteFailure
  //   fires while parking a UISR blob into PRAM-registered frames.
  // Post-reboot faults expect a rollback (guests salvaged under the source
  // hypervisor kind via the transplant ledger):
  //   kKexecFailure models the target kernel panicking right after the scrub;
  //   kDecodeFailure and kRestoreFailure fire in the target's restore loop.
  // Unrecoverable faults expect kDataLoss:
  //   kPramCorruptionBeforeReboot clobbers the PRAM root just before the
  //   micro-reboot (guests scrubbed); kUisrCorruptionBeforeReboot clobbers a
  //   parked UISR page (guests survive but neither hypervisor can decode
  //   their platform state); kLedgerTornWrite tears the ledger's commit
  //   record, so the post-reboot kernel refuses to roll back.
  enum class Fault : uint8_t {
    kNone,
    kTranslationFailure,
    kPramCorruptionBeforeReboot,
    kUisrCorruptionBeforeReboot,
    kPramWriteFailure,
    kKexecFailure,
    kDecodeFailure,
    kRestoreFailure,
    kLedgerTornWrite,
  };
  Fault inject_fault = Fault::kNone;
};

// Per-phase durations (Fig. 6's stacked bars).
struct PhaseBreakdown {
  SimDuration pram = 0;             // PRAM structure construction.
  // Speculative Extract -> UisrEncode while the guests run. Charged to
  // total_time only — the guests are not paused for it.
  SimDuration pre_translation = 0;
  SimDuration translation = 0;  // VM_i State -> UISR (incl. PRAM finalize).
  SimDuration reboot = 0;       // kexec jump + kernel boot(s) + PRAM parse.
  SimDuration pram_parse = 0;   // Early-boot part of `reboot`.
  SimDuration restoration = 0;  // UISR -> target format + VM relink.
  SimDuration resume = 0;       // Unpausing guests.
  SimDuration cleanup = 0;      // Freeing PRAM/UISR ephemeral frames.
  SimDuration network = 0;      // NIC re-initialization (overlaps reboot).
  SimDuration rollback = 0;     // Salvage micro-reboot + source restore (0 on success).
};

// How an in-place transplant that returned OK actually ended: on the target
// hypervisor, or salvaged back onto the source kind after a post-pause fault.
enum class TransplantOutcome : uint8_t {
  kCompleted = 0,
  kRolledBack = 1,
};

std::string_view TransplantOutcomeName(TransplantOutcome outcome);

// One transplanted VM's record inside the report.
struct VmTransplantRecord {
  uint64_t uid = 0;
  std::string name;
  uint32_t vcpus = 0;
  uint64_t memory_bytes = 0;
  size_t uisr_bytes = 0;
};

struct TransplantReport {
  std::string source_hypervisor;
  std::string target_hypervisor;
  int vm_count = 0;
  std::vector<VmTransplantRecord> vms;
  PhaseBreakdown phases;
  // VMs are paused for: [pram if not prepared early +] translation + reboot
  // + visible restoration + resume.
  SimDuration downtime = 0;
  // Wall-clock of the whole operation (prep included).
  SimDuration total_time = 0;
  // Downtime as seen by network-dependent applications: until the NIC is
  // back up (Fig. 6 reports this separately from the transplant phases).
  SimDuration network_downtime = 0;
  uint64_t pram_metadata_bytes = 0;
  uint64_t uisr_total_bytes = 0;
  uint64_t frames_scrubbed = 0;
  // kRolledBack when a post-pause fault forced the salvage path: the VMs are
  // running, but under the *source* hypervisor kind, and phases.rollback
  // carries the extra downtime the recovery cost.
  TransplantOutcome outcome = TransplantOutcome::kCompleted;
  // Pre-translation accounting (only meaningful when pre_translated is true;
  // ToString/JSON omit all three otherwise so legacy output is unchanged).
  bool pre_translated = false;
  int64_t pretranslate_hits = 0;           // Cached blob adopted unmodified.
  int64_t pretranslate_invalidations = 0;  // Generation moved; reconciled.
  FixupLog fixups;
  std::vector<std::string> notes;

  // Multi-line human-readable rendering.
  std::string ToString() const;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_CORE_REPORT_H_
