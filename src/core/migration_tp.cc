#include "src/core/migration_tp.h"

#include <algorithm>

namespace hypertp {

Result<MigrationTpResult> MigrationTransplant::Run(Hypervisor& source,
                                                   const std::vector<VmId>& vm_ids,
                                                   Hypervisor& destination,
                                                   const NetworkLink& link,
                                                   const MigrationConfig& config) {
  MigrationEngine engine(link);
  HYPERTP_ASSIGN_OR_RETURN(MigrationBatchResult batch,
                           engine.MigrateMany(source, vm_ids, destination, config));
  std::vector<MigrationResult> migrations = batch.successes();

  MigrationTpResult result;
  result.report.source_hypervisor = std::string(source.name());
  result.report.target_hypervisor = std::string(destination.name());
  result.report.vm_count = static_cast<int>(migrations.size());
  for (const MigrationResult& m : migrations) {
    result.report.downtime = std::max(result.report.downtime, m.downtime);
    result.report.total_time = std::max(result.report.total_time, m.total_time);
    result.report.uisr_total_bytes += m.uisr_bytes;
    result.report.fixups.insert(result.report.fixups.end(), m.fixups.begin(), m.fixups.end());
  }
  // MigrationTP needs no PRAM: memory maps are implicitly rebuilt at the
  // destination as pages stream in (paper §4.3).
  result.report.pram_metadata_bytes = 0;
  result.report.network_downtime = result.report.downtime;
  result.report.notes.push_back("migration-based transplant: guest pages streamed by pre-copy");
  if (!batch.all_migrated()) {
    result.report.notes.push_back(
        "partial migration: " + std::to_string(batch.outcomes.size() - batch.migrated_count()) +
        " of " + std::to_string(batch.outcomes.size()) +
        " VMs stayed at the source (see batch outcomes)");
  }
  result.migrations = std::move(migrations);
  result.batch = std::move(batch);
  return result;
}

}  // namespace hypertp
