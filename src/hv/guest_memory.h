// Guest physical address space: gfn -> mfn mapping plus dirty logging.
//
// Both hypervisors use this mechanism for their second-stage translation
// structure (Xen's P2M, KVM's memslots); what differs between them is the
// *allocation policy* that decides which machine frames back the guest, which
// lives in each hypervisor's module.

#ifndef HYPERTP_SRC_HV_GUEST_MEMORY_H_
#define HYPERTP_SRC_HV_GUEST_MEMORY_H_

#include <set>
#include <vector>

#include "src/base/result.h"
#include "src/hw/physical_memory.h"

namespace hypertp {

class GuestAddressSpace {
 public:
  // Appends a mapping. Mappings must be added in gfn order without overlap.
  Result<void> MapExtent(Gfn gfn, Mfn mfn, uint64_t frames);

  // Machine frame backing a guest page.
  Result<Mfn> Translate(Gfn gfn) const;

  const std::vector<GuestMapping>& mappings() const { return mappings_; }
  uint64_t mapped_frames() const { return mapped_frames_; }

  // Reads/writes the content word of a guest page via `ram`. Writes feed the
  // dirty log when logging is enabled.
  Result<uint64_t> Read(const PhysicalMemory& ram, Gfn gfn) const;
  Result<void> Write(PhysicalMemory& ram, Gfn gfn, uint64_t content);

  // All guest pages with non-zero content words, sorted by gfn.
  std::vector<std::pair<Gfn, uint64_t>> DumpNonZero(const PhysicalMemory& ram) const;

  // Dirty logging.
  void EnableDirtyLog() { dirty_log_enabled_ = true; }
  void DisableDirtyLog() {
    dirty_log_enabled_ = false;
    dirty_.clear();
  }
  bool dirty_log_enabled() const { return dirty_log_enabled_; }
  // Returns and clears the set of dirtied gfns (sorted).
  std::vector<Gfn> FetchAndClearDirty();
  // Marks a page dirty without writing (used by cost-free dirty-rate models).
  Result<void> MarkDirty(Gfn gfn);
  size_t dirty_count() const { return dirty_.size(); }

 private:
  std::vector<GuestMapping> mappings_;  // Sorted by gfn, non-overlapping.
  uint64_t mapped_frames_ = 0;
  bool dirty_log_enabled_ = false;
  std::set<Gfn> dirty_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_HV_GUEST_MEMORY_H_
