#include "src/hv/devices.h"

#include "src/base/bytes.h"

namespace hypertp {
namespace {

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9E3779B97F4A7C15ull + b + 1;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 31;
  return x;
}

constexpr uint32_t kNetTag = 0x54454E56;   // "VNET"
constexpr uint32_t kBlkTag = 0x4B4C4256;   // "VBLK"
constexpr uint32_t kUartTag = 0x54524155;  // "UART"
constexpr uint32_t kPtTag = 0x54534150;    // "PAST"

Result<ByteReader> CheckTag(const std::vector<uint8_t>& bytes, uint32_t tag,
                            const char* what) {
  ByteReader r(bytes);
  HYPERTP_ASSIGN_OR_RETURN(uint32_t got, r.ReadU32());
  if (got != tag) {
    return DataLossError(std::string("device state: bad tag for ") + what);
  }
  return r;
}

}  // namespace

std::vector<uint8_t> VirtioNetState::ToBytes() const {
  ByteWriter w;
  w.PutU32(kNetTag);
  w.PutBytes(mac);
  w.PutU64(features);
  w.PutU16(rx_avail_idx);
  w.PutU16(rx_used_idx);
  w.PutU16(tx_avail_idx);
  w.PutU16(tx_used_idx);
  w.PutU8(link_up ? 1 : 0);
  return w.TakeBytes();
}

Result<VirtioNetState> VirtioNetState::FromBytes(const std::vector<uint8_t>& bytes) {
  HYPERTP_ASSIGN_OR_RETURN(ByteReader r, CheckTag(bytes, kNetTag, "virtio-net"));
  VirtioNetState s;
  HYPERTP_ASSIGN_OR_RETURN(auto mac, r.ReadBytes(6));
  std::copy(mac.begin(), mac.end(), s.mac.begin());
  HYPERTP_ASSIGN_OR_RETURN(s.features, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(s.rx_avail_idx, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.rx_used_idx, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.tx_avail_idx, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.tx_used_idx, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(uint8_t up, r.ReadU8());
  s.link_up = up != 0;
  return s;
}

std::vector<uint8_t> VirtioBlkState::ToBytes() const {
  ByteWriter w;
  w.PutU32(kBlkTag);
  w.PutU64(features);
  w.PutU64(capacity_sectors);
  w.PutU16(avail_idx);
  w.PutU16(used_idx);
  w.PutU32(requests_inflight);
  w.PutU8(write_cache ? 1 : 0);
  return w.TakeBytes();
}

Result<VirtioBlkState> VirtioBlkState::FromBytes(const std::vector<uint8_t>& bytes) {
  HYPERTP_ASSIGN_OR_RETURN(ByteReader r, CheckTag(bytes, kBlkTag, "virtio-blk"));
  VirtioBlkState s;
  HYPERTP_ASSIGN_OR_RETURN(s.features, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(s.capacity_sectors, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(s.avail_idx, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.used_idx, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.requests_inflight, r.ReadU32());
  HYPERTP_ASSIGN_OR_RETURN(uint8_t wc, r.ReadU8());
  s.write_cache = wc != 0;
  return s;
}

std::vector<uint8_t> Uart16550State::ToBytes() const {
  ByteWriter w;
  w.PutU32(kUartTag);
  for (uint8_t reg : {ier, iir, lcr, mcr, lsr, msr, scr, dll, dlm}) {
    w.PutU8(reg);
  }
  return w.TakeBytes();
}

Result<Uart16550State> Uart16550State::FromBytes(const std::vector<uint8_t>& bytes) {
  HYPERTP_ASSIGN_OR_RETURN(ByteReader r, CheckTag(bytes, kUartTag, "uart16550"));
  Uart16550State s;
  for (uint8_t* reg : {&s.ier, &s.iir, &s.lcr, &s.mcr, &s.lsr, &s.msr, &s.scr, &s.dll, &s.dlm}) {
    HYPERTP_ASSIGN_OR_RETURN(*reg, r.ReadU8());
  }
  return s;
}

std::vector<uint8_t> PassthroughState::ToBytes() const {
  ByteWriter w;
  w.PutU32(kPtTag);
  w.PutU32(pci_bdf);
  w.PutU16(vendor_id);
  w.PutU16(device_id);
  w.PutU8(paused ? 1 : 0);
  return w.TakeBytes();
}

Result<PassthroughState> PassthroughState::FromBytes(const std::vector<uint8_t>& bytes) {
  HYPERTP_ASSIGN_OR_RETURN(ByteReader r, CheckTag(bytes, kPtTag, "passthrough"));
  PassthroughState s;
  HYPERTP_ASSIGN_OR_RETURN(s.pci_bdf, r.ReadU32());
  HYPERTP_ASSIGN_OR_RETURN(s.vendor_id, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.device_id, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(uint8_t paused, r.ReadU8());
  s.paused = paused != 0;
  return s;
}

bool IsKnownDeviceModel(const std::string& model) {
  return model == "virtio-net" || model == "virtio-blk" || model == "uart16550" ||
         model == "nvme-pt";
}

Result<UisrDeviceState> MakeDefaultDeviceState(const std::string& model, uint32_t instance,
                                               uint64_t vm_uid, DeviceAttachMode mode) {
  UisrDeviceState dev;
  dev.model = model;
  dev.instance = instance;
  dev.mode = mode;
  if (model == "virtio-net") {
    VirtioNetState s;
    s.mac = {0x52, 0x54, 0x00, static_cast<uint8_t>(Mix(vm_uid, 1)),
             static_cast<uint8_t>(Mix(vm_uid, 2)), static_cast<uint8_t>(instance)};
    s.features = 0x130000000ull;  // VERSION_1 | RING_EVENT_IDX | RING_INDIRECT.
    dev.opaque = s.ToBytes();
  } else if (model == "virtio-blk") {
    VirtioBlkState s;
    s.features = 0x100000000ull;
    s.capacity_sectors = 40ull << 21;  // 40 GiB root disk on network storage.
    dev.opaque = s.ToBytes();
  } else if (model == "uart16550") {
    dev.opaque = Uart16550State{}.ToBytes();
  } else if (model == "nvme-pt") {
    PassthroughState s;
    s.pci_bdf = 0x0300 + instance;
    s.vendor_id = 0x8086;
    s.device_id = 0x0A54;
    dev.opaque = s.ToBytes();
    dev.mode = DeviceAttachMode::kPassthrough;
  } else {
    return InvalidArgumentError("unknown device model: " + model);
  }
  return dev;
}

Result<void> PrepareDevicesForTransplant(std::vector<UisrDeviceState>& devices) {
  for (UisrDeviceState& dev : devices) {
    switch (dev.mode) {
      case DeviceAttachMode::kEmulated: {
        if (dev.model == "virtio-blk") {
          HYPERTP_ASSIGN_OR_RETURN(VirtioBlkState s, VirtioBlkState::FromBytes(dev.opaque));
          s.requests_inflight = 0;  // Guest driver drains its queue.
          dev.opaque = s.ToBytes();
        }
        break;
      }
      case DeviceAttachMode::kPassthrough: {
        HYPERTP_ASSIGN_OR_RETURN(PassthroughState s, PassthroughState::FromBytes(dev.opaque));
        s.paused = true;  // Guest driver pauses the device.
        dev.opaque = s.ToBytes();
        break;
      }
      case DeviceAttachMode::kUnplugged: {
        if (dev.model == "virtio-net") {
          HYPERTP_ASSIGN_OR_RETURN(VirtioNetState s, VirtioNetState::FromBytes(dev.opaque));
          s.rx_avail_idx = s.rx_used_idx = s.tx_avail_idx = s.tx_used_idx = 0;
          s.link_up = false;  // Hot-unplugged; only the config travels.
          dev.opaque = s.ToBytes();
        }
        break;
      }
    }
  }
  return OkResult();
}

Result<void> ValidateDeviceForTransplant(const UisrDeviceState& device) {
  switch (device.mode) {
    case DeviceAttachMode::kEmulated: {
      if (device.model == "virtio-blk") {
        HYPERTP_ASSIGN_OR_RETURN(VirtioBlkState s, VirtioBlkState::FromBytes(device.opaque));
        if (s.requests_inflight != 0) {
          return FailedPreconditionError("virtio-blk has " +
                                         std::to_string(s.requests_inflight) +
                                         " in-flight requests; quiesce before transplant");
        }
      }
      return OkResult();
    }
    case DeviceAttachMode::kPassthrough: {
      HYPERTP_ASSIGN_OR_RETURN(PassthroughState s, PassthroughState::FromBytes(device.opaque));
      if (!s.paused) {
        return FailedPreconditionError("pass-through device " + device.model +
                                       " not paused by guest driver");
      }
      return OkResult();
    }
    case DeviceAttachMode::kUnplugged:
      return OkResult();  // Only configuration travels.
  }
  return InternalError("unreachable device mode");
}

}  // namespace hypertp
