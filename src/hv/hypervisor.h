// Hypervisor-neutral interfaces.
//
// Both simulated hypervisors (XenVisor, type-I; KVMish, type-II) implement
// the Hypervisor interface. The HyperTP core (src/core/) drives transplants
// exclusively through this interface plus the UISR save/restore entry points,
// which each hypervisor implements against its own internal state formats —
// matching the paper's design where to_uisr_xxx/from_uisr_xxx are written by
// an expert of each hypervisor (§3.1).

#ifndef HYPERTP_SRC_HV_HYPERVISOR_H_
#define HYPERTP_SRC_HV_HYPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hw/machine.h"
#include "src/hw/physical_memory.h"
#include "src/pram/pram.h"
#include "src/uisr/records.h"

namespace hypertp {

// Which hypervisor implementation. A datacenter's hypervisor "repertoire"
// (paper §3.1) is a set of these.
enum class HypervisorKind : uint8_t { kXen = 0, kKvm = 1, kBhyve = 2 };
// Architectural class: type-I boots on bare metal (hypervisor + dom0 kernel),
// type-II is a module of a host OS kernel.
enum class HypervisorType : uint8_t { kType1 = 1, kType2 = 2 };

std::string_view HypervisorKindName(HypervisorKind kind);

using VmId = uint64_t;

// Datacenter-unique VM identity allocator (shared by all hypervisors); a VM
// keeps its uid across transplants and migrations.
uint64_t AllocateVmUid();

// Traits the migration engine needs about a hypervisor's receive path.
// Xen restores incoming VMs sequentially on the destination and its resume
// path (xl/libxl) is heavier than kvmtool's — the source of Table 4's
// 133.59 ms vs 4.96 ms downtime gap.
struct MigrationTraits {
  int receive_concurrency = 1;
  SimDuration resume_fixed = 0;
  SimDuration resume_per_vcpu = 0;
};

enum class VmRunState : uint8_t { kRunning, kPaused };

struct DeviceConfig {
  std::string model;  // "virtio-net", "virtio-blk", "uart16550", "nvme-pt".
  DeviceAttachMode mode = DeviceAttachMode::kEmulated;
};

struct VmConfig {
  std::string name;
  uint32_t vcpus = 1;
  uint64_t memory_bytes = 1ull << 30;
  bool huge_pages = true;  // The paper configures 2 MB huge pages (§5.1).
  std::vector<DeviceConfig> devices;
  uint64_t uid = 0;  // 0 = assign a fresh datacenter-unique id.

  // The typical cloud VM the paper's basic evaluations use (1 vCPU, 1 GB).
  static VmConfig Small(std::string name);
};

// Validates a VmConfig against common rules (name, vCPU bound, page-aligned
// memory, huge-page multiple, known device models). Every hypervisor calls
// this from CreateVm with its own vCPU ceiling.
Result<void> ValidateVmConfig(const VmConfig& config, uint32_t max_vcpus);

struct VmInfo {
  VmId id = 0;
  uint64_t uid = 0;
  std::string name;
  uint32_t vcpus = 0;
  uint64_t memory_bytes = 0;
  bool huge_pages = false;
  // Pass-through devices pin a VM to its hardware: InPlaceTP works (the
  // device stays put), live migration does not (paper §4.2.3).
  bool has_passthrough = false;
  VmRunState run_state = VmRunState::kRunning;
};

// A compatibility adjustment applied during UISR translation (§4.2.1), e.g.
// disconnecting IOAPIC pins 24-47 when restoring into KVM. Fixups are
// surfaced in the TransplantReport so operators can audit them.
struct StateFixup {
  uint64_t vm_uid = 0;
  std::string component;  // "ioapic", "lapic", ...
  std::string description;
};
using FixupLog = std::vector<StateFixup>;

// How RestoreVmFromUisr obtains guest memory.
struct GuestMemoryBinding {
  enum class Mode : uint8_t {
    // InPlaceTP: adopt the existing in-place frames named by `entries`
    // (from the PRAM file). No guest page is copied or moved.
    kAdoptInPlace,
    // MigrationTP receiver: allocate fresh frames; page contents arrive
    // through WriteGuestPage as the pre-copy stream is applied.
    kAllocate,
  };
  Mode mode = Mode::kAllocate;
  std::vector<PramPageEntry> entries;  // Only for kAdoptInPlace.

  // Compatibility strategy for restore-side topology differences (§4.2.1's
  // future work): when true, active IOAPIC pins the target cannot host are
  // remapped onto free low pins and the guest is informed of the new GSI
  // assignment, instead of being disconnected.
  bool remap_high_ioapic_pins = false;
};

// Common interface of the simulated hypervisors.
class Hypervisor {
 public:
  virtual ~Hypervisor() = default;

  virtual std::string_view name() const = 0;  // e.g. "xenvisor-4.12".
  virtual HypervisorKind kind() const = 0;
  virtual HypervisorType type() const = 0;
  virtual Machine& machine() = 0;
  virtual const Machine& machine() const = 0;

  // --- VM lifecycle -------------------------------------------------------
  virtual Result<VmId> CreateVm(const VmConfig& config) = 0;
  virtual Result<void> DestroyVm(VmId id) = 0;
  virtual Result<void> PauseVm(VmId id) = 0;
  virtual Result<void> ResumeVm(VmId id) = 0;
  virtual Result<VmInfo> GetVmInfo(VmId id) const = 0;
  virtual std::vector<VmId> ListVms() const = 0;

  // --- Guest memory -------------------------------------------------------
  // The VM's guest-physical -> machine mapping, sorted by gfn.
  virtual Result<std::vector<GuestMapping>> GuestMemoryMap(VmId id) const = 0;
  // Reads/writes the content word standing for one guest page.
  virtual Result<uint64_t> ReadGuestPage(VmId id, Gfn gfn) const = 0;
  virtual Result<void> WriteGuestPage(VmId id, Gfn gfn, uint64_t content) = 0;

  // --- Dirty logging (live migration support) ------------------------------
  virtual Result<void> EnableDirtyLogging(VmId id) = 0;
  // Returns the pages dirtied since the previous call and clears the log.
  virtual Result<std::vector<Gfn>> FetchAndClearDirtyLog(VmId id) = 0;
  virtual Result<void> DisableDirtyLogging(VmId id) = 0;

  // Advances each vCPU's TSC (and TSC-deadline timer) by `delta` nanoseconds
  // (virtual 1 GHz TSC: one tick per nanosecond), so guest clocks never run
  // backwards across a transplant's pause. Real hypervisors apply an
  // equivalent TSC_OFFSET adjustment when resuming a restored VM.
  virtual Result<void> AdvanceGuestClocks(VmId id, SimDuration delta) = 0;

  // --- State generations (speculative pre-translation support) -------------
  // Monotonic counter that bumps whenever vCPU-visible platform state may
  // have changed: guest page writes, clock advances, injected guest events,
  // transplant preparation. Pausing, resuming and SaveVmToUisr do NOT bump
  // it — a translation taken under a brief pause stays valid until the guest
  // actually runs again. The pre-translation cache (src/pipeline/) keys
  // speculative Extract→UisrEncode results on this counter, the platform-
  // state analogue of the dirty-page log above.
  virtual Result<uint64_t> StateGeneration(VmId id) const = 0;

  // A vCPU-visible event a running guest experiences; used by benches and
  // tests to dirty a VM's platform state between pre-translation and pause.
  enum class GuestEventKind : uint8_t {
    kTimerTick = 0,     // Local APIC timer fires; TSC/deadline move.
    kEventChannel = 1,  // Interrupt-controller activity (event channel/IRQ).
    kWorkloadStep = 2,  // The guest executes a slice of its workload.
  };
  virtual Result<void> InjectGuestEvent(VmId id, GuestEventKind kind) = 0;

  // --- HyperTP entry points (§3.1 steps 2 and 4) ---------------------------
  // Translates the VM's VM_i State from the hypervisor's native formats into
  // UISR. The VM must be paused. Appends any compatibility fixups to `log`.
  virtual Result<UisrVm> SaveVmToUisr(VmId id, FixupLog* log) = 0;
  // Creates a VM from a UISR description, translating into native formats.
  // The new VM starts paused; ResumeVm completes step (5).
  virtual Result<VmId> RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                         FixupLog* log) = 0;

  // --- Introspection used by invariants & stats ----------------------------
  // Frames of RAM this hypervisor consumes for its own state (HV State).
  virtual uint64_t HypervisorFrames() const = 0;

  // Receive-path characteristics for the migration engine.
  virtual MigrationTraits migration_traits() const = 0;

  // All guest pages of `id` with non-zero content, as (gfn, word) pairs.
  // Used by the migration engine's pre-copy transfer and by invariant checks.
  virtual Result<std::vector<std::pair<Gfn, uint64_t>>> DumpGuestContent(VmId id) const = 0;

  // Guest-cooperative device preparation before a transplant/migration
  // (paper §4.2.3): quiesce emulated block queues, pause pass-through
  // devices, hot-unplug unplug-mode NICs.
  virtual Result<void> PrepareVmForTransplant(VmId id) = 0;

  // Releases this hypervisor's claim on the machine WITHOUT freeing any
  // frame: the kexec jump is about to replace the kernel and the scrubber
  // will reclaim everything not covered by the PRAM reservation. After this
  // call the object only supports destruction.
  virtual void DetachForMicroReboot() = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_HV_HYPERVISOR_H_
