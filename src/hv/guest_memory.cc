#include "src/hv/guest_memory.h"

#include <algorithm>

namespace hypertp {

Result<void> GuestAddressSpace::MapExtent(Gfn gfn, Mfn mfn, uint64_t frames) {
  if (frames == 0) {
    return InvalidArgumentError("guest map: empty extent");
  }
  if (!mappings_.empty() && gfn < mappings_.back().gfn_end()) {
    return InvalidArgumentError("guest map: extents must be added in gfn order");
  }
  // Merge with the previous extent when both spaces are contiguous.
  if (!mappings_.empty()) {
    GuestMapping& last = mappings_.back();
    if (last.gfn_end() == gfn && last.mfn + last.frames == mfn) {
      last.frames += frames;
      mapped_frames_ += frames;
      return OkResult();
    }
  }
  mappings_.push_back(GuestMapping{gfn, mfn, frames});
  mapped_frames_ += frames;
  return OkResult();
}

Result<Mfn> GuestAddressSpace::Translate(Gfn gfn) const {
  // Binary search for the extent containing gfn.
  auto it = std::upper_bound(mappings_.begin(), mappings_.end(), gfn,
                             [](Gfn value, const GuestMapping& m) { return value < m.gfn; });
  if (it == mappings_.begin()) {
    return NotFoundError("gfn " + std::to_string(gfn) + " not mapped");
  }
  const GuestMapping& m = *std::prev(it);
  if (gfn >= m.gfn_end()) {
    return NotFoundError("gfn " + std::to_string(gfn) + " not mapped");
  }
  return m.mfn + (gfn - m.gfn);
}

Result<uint64_t> GuestAddressSpace::Read(const PhysicalMemory& ram, Gfn gfn) const {
  HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, Translate(gfn));
  return ram.ReadWord(mfn);
}

Result<void> GuestAddressSpace::Write(PhysicalMemory& ram, Gfn gfn, uint64_t content) {
  HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, Translate(gfn));
  HYPERTP_RETURN_IF_ERROR(ram.WriteWord(mfn, content));
  if (dirty_log_enabled_) {
    dirty_.insert(gfn);
  }
  return OkResult();
}

std::vector<std::pair<Gfn, uint64_t>> GuestAddressSpace::DumpNonZero(
    const PhysicalMemory& ram) const {
  std::vector<std::pair<Gfn, uint64_t>> out;
  for (const auto& [mfn, word] : ram.content_words()) {
    // Reverse-translate: find the mapping extent containing this frame.
    for (const GuestMapping& m : mappings_) {
      if (mfn >= m.mfn && mfn < m.mfn + m.frames) {
        out.emplace_back(m.gfn + (mfn - m.mfn), word);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Gfn> GuestAddressSpace::FetchAndClearDirty() {
  std::vector<Gfn> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  return out;
}

Result<void> GuestAddressSpace::MarkDirty(Gfn gfn) {
  HYPERTP_RETURN_IF_ERROR(Translate(gfn));
  if (dirty_log_enabled_) {
    dirty_.insert(gfn);
  }
  return OkResult();
}

}  // namespace hypertp
