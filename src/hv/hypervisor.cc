#include "src/hv/hypervisor.h"

#include <atomic>

#include "src/hv/devices.h"

namespace hypertp {

uint64_t AllocateVmUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

std::string_view HypervisorKindName(HypervisorKind kind) {
  switch (kind) {
    case HypervisorKind::kXen:
      return "xen";
    case HypervisorKind::kKvm:
      return "kvm";
    case HypervisorKind::kBhyve:
      return "bhyve";
  }
  return "?";
}

Result<void> ValidateVmConfig(const VmConfig& config, uint32_t max_vcpus) {
  if (config.name.empty()) {
    return InvalidArgumentError("vm config: name required");
  }
  if (config.vcpus == 0 || config.vcpus > max_vcpus) {
    return InvalidArgumentError("vm config: vcpus must be in [1, " + std::to_string(max_vcpus) +
                                "]");
  }
  if (config.memory_bytes == 0 || config.memory_bytes % kPageSize != 0) {
    return InvalidArgumentError("vm config: memory must be a positive multiple of 4 KiB");
  }
  if (config.huge_pages && config.memory_bytes % kHugePageSize != 0) {
    return InvalidArgumentError("vm config: huge-page VMs need 2 MiB-multiple memory");
  }
  for (const DeviceConfig& dev : config.devices) {
    if (!IsKnownDeviceModel(dev.model)) {
      return InvalidArgumentError("vm config: unknown device model " + dev.model);
    }
  }
  return OkResult();
}

VmConfig VmConfig::Small(std::string name) {
  VmConfig config;
  config.name = std::move(name);
  config.vcpus = 1;
  config.memory_bytes = 1ull << 30;
  config.huge_pages = true;
  config.devices = {
      DeviceConfig{"uart16550", DeviceAttachMode::kEmulated},
      DeviceConfig{"virtio-blk", DeviceAttachMode::kEmulated},
      DeviceConfig{"virtio-net", DeviceAttachMode::kUnplugged},
  };
  return config;
}

}  // namespace hypertp
