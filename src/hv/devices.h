// Virtual device models shared by both VMMs.
//
// Each model defines a small emulation-state struct with a byte codec. The
// opaque payload inside UisrDeviceState is this codec's output; both VMMs
// (QEMU-upstream on Xen, kvmtool on KVM) speak it, so the HyperTP adapters
// copy emulated-device state across the transplant (§4.2.3). Network devices
// are handled with the unplug/rescan strategy instead and carry only their
// configuration (MAC), not their queue state.

#ifndef HYPERTP_SRC_HV_DEVICES_H_
#define HYPERTP_SRC_HV_DEVICES_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/uisr/records.h"

namespace hypertp {

struct VirtioNetState {
  std::array<uint8_t, 6> mac{};
  uint64_t features = 0;
  uint16_t rx_avail_idx = 0, rx_used_idx = 0;
  uint16_t tx_avail_idx = 0, tx_used_idx = 0;
  bool link_up = true;

  std::vector<uint8_t> ToBytes() const;
  static Result<VirtioNetState> FromBytes(const std::vector<uint8_t>& bytes);
  bool operator==(const VirtioNetState&) const = default;
};

struct VirtioBlkState {
  uint64_t features = 0;
  uint64_t capacity_sectors = 0;
  uint16_t avail_idx = 0, used_idx = 0;
  uint32_t requests_inflight = 0;  // Must be 0 when paused for transplant.
  bool write_cache = true;

  std::vector<uint8_t> ToBytes() const;
  static Result<VirtioBlkState> FromBytes(const std::vector<uint8_t>& bytes);
  bool operator==(const VirtioBlkState&) const = default;
};

struct Uart16550State {
  uint8_t ier = 0, iir = 1, lcr = 3, mcr = 0, lsr = 0x60, msr = 0xB0, scr = 0;
  uint8_t dll = 1, dlm = 0;  // 115200 baud divisor.

  std::vector<uint8_t> ToBytes() const;
  static Result<Uart16550State> FromBytes(const std::vector<uint8_t>& bytes);
  bool operator==(const Uart16550State&) const = default;
};

// A pass-through device (e.g. "nvme-pt"): the hardware state stays on the
// device, the driver state stays in Guest State; the transplant only needs
// the guest-visible identity so the rebound driver finds the same device.
struct PassthroughState {
  uint32_t pci_bdf = 0;  // bus/device/function.
  uint16_t vendor_id = 0, device_id = 0;
  bool paused = false;   // Must be true when transplanting (§4.2.3).

  std::vector<uint8_t> ToBytes() const;
  static Result<PassthroughState> FromBytes(const std::vector<uint8_t>& bytes);
  bool operator==(const PassthroughState&) const = default;
};

// Builds the initial device state for a freshly created VM, deterministic in
// (vm_uid, model, instance).
Result<UisrDeviceState> MakeDefaultDeviceState(const std::string& model, uint32_t instance,
                                               uint64_t vm_uid, DeviceAttachMode mode);

// True if `model` is a device model this library can emulate.
bool IsKnownDeviceModel(const std::string& model);

// Validates that a device is in a transplantable state: emulated devices must
// be quiesced (no in-flight requests), pass-through devices must be paused,
// unplugged-mode devices carry config only.
Result<void> ValidateDeviceForTransplant(const UisrDeviceState& device);

// Guest-cooperative preparation before a transplant (§4.2.3, in the spirit of
// Azure's Scheduled Events): drains emulated block queues, pauses
// pass-through devices, hot-unplugs unplug-mode NICs (config-only state).
// Mutates the device states in place.
Result<void> PrepareDevicesForTransplant(std::vector<UisrDeviceState>& devices);

}  // namespace hypertp

#endif  // HYPERTP_SRC_HV_DEVICES_H_
