// Minimal structured logging for the HyperTP library.
//
// Log lines carry a severity and a component tag, e.g.
//   [INFO  kexec] staging kernel image 'kvmish-5.3' (24 MiB)
// The default sink writes to stderr; tests can install a capturing sink.

#ifndef HYPERTP_SRC_BASE_LOGGING_H_
#define HYPERTP_SRC_BASE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace hypertp {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

std::string_view LogSeverityName(LogSeverity severity);

// Receives every emitted log record. Must be callable from multiple threads.
using LogSink = std::function<void(LogSeverity, std::string_view component, std::string_view msg)>;

// Replaces the global sink; returns the previous one. Passing nullptr restores
// the default stderr sink.
LogSink SetLogSink(LogSink sink);

// Messages below this severity are dropped before reaching the sink.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Emits one record through the current sink (if severity passes the filter).
void LogMessage(LogSeverity severity, std::string_view component, std::string_view message);

// Stream-style logging helper:
//   HYPERTP_LOG(kInfo, "pram") << "built " << n << " entries";
namespace log_internal {
class LogLine {
 public:
  LogLine(LogSeverity severity, std::string_view component)
      : severity_(severity), component_(component) {}
  ~LogLine() { LogMessage(severity_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace log_internal

#define HYPERTP_LOG(severity, component) \
  ::hypertp::log_internal::LogLine(::hypertp::LogSeverity::severity, component)

// Invariant check for conditions that indicate a programming error rather
// than recoverable input (Result is the tool for the latter). Logs through
// the sink and aborts, so a violated invariant can never silently corrupt
// encoded bytes — e.g. a length-prefixed payload wider than its u32 prefix.
namespace log_internal {
[[noreturn]] void CheckFailed(std::string_view condition, std::string_view file, int line);
}  // namespace log_internal

#define HYPERTP_CHECK(condition)                                            \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::hypertp::log_internal::CheckFailed(#condition, __FILE__, __LINE__); \
    }                                                                       \
  } while (false)

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_LOGGING_H_
