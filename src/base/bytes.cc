#include "src/base/bytes.h"

namespace hypertp {

void ByteWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutBytes(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::PutLengthPrefixed(std::span<const uint8_t> bytes) {
  // Guard before any byte lands: a payload wider than the u32 prefix used to
  // be silently truncated by the cast, producing a blob whose declared length
  // disagreed with its contents.
  HYPERTP_CHECK(bytes.size() <= kMaxLengthPrefixedBytes);
  PutU32(static_cast<uint32_t>(bytes.size()));
  PutBytes(bytes);
}

void ByteWriter::PutString(std::string_view s) {
  HYPERTP_CHECK(s.size() <= kMaxLengthPrefixedBytes);
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.at(offset + static_cast<size_t>(i)) = static_cast<uint8_t>(v >> (8 * i));
  }
}

void SpanWriter::PutU16(uint16_t v) {
  HYPERTP_CHECK(pos_ + 2 <= dest_.size());
  dest_[pos_++] = static_cast<uint8_t>(v);
  dest_[pos_++] = static_cast<uint8_t>(v >> 8);
}

void SpanWriter::PutU32(uint32_t v) {
  HYPERTP_CHECK(pos_ + 4 <= dest_.size());
  for (int i = 0; i < 4; ++i) {
    dest_[pos_++] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void SpanWriter::PutU64(uint64_t v) {
  HYPERTP_CHECK(pos_ + 8 <= dest_.size());
  for (int i = 0; i < 8; ++i) {
    dest_[pos_++] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void SpanWriter::PutBytes(std::span<const uint8_t> bytes) {
  HYPERTP_CHECK(pos_ + bytes.size() <= dest_.size());
  if (!bytes.empty()) {
    std::memcpy(dest_.data() + pos_, bytes.data(), bytes.size());
  }
  pos_ += bytes.size();
}

void SpanWriter::PutLengthPrefixed(std::span<const uint8_t> bytes) {
  HYPERTP_CHECK(bytes.size() <= kMaxLengthPrefixedBytes);
  PutU32(static_cast<uint32_t>(bytes.size()));
  PutBytes(bytes);
}

void SpanWriter::PutString(std::string_view s) {
  HYPERTP_CHECK(s.size() <= kMaxLengthPrefixedBytes);
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

void SpanWriter::PatchU32(size_t offset, uint32_t v) {
  HYPERTP_CHECK(offset + 4 <= pos_);
  for (int i = 0; i < 4; ++i) {
    dest_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

Result<void> ByteReader::Require(size_t n) {
  if (remaining() < n) {
    return DataLossError("byte reader: truncated input, need " + std::to_string(n) +
                         " bytes at offset " + std::to_string(pos_) + ", have " +
                         std::to_string(remaining()));
  }
  return OkResult();
}

Result<uint8_t> ByteReader::ReadU8() {
  HYPERTP_RETURN_IF_ERROR(Require(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  HYPERTP_RETURN_IF_ERROR(Require(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  HYPERTP_RETURN_IF_ERROR(Require(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  HYPERTP_RETURN_IF_ERROR(Require(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes(size_t n) {
  HYPERTP_RETURN_IF_ERROR(Require(n));
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::vector<uint8_t>> ByteReader::ReadLengthPrefixed() {
  HYPERTP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  return ReadBytes(n);
}

Result<std::string> ByteReader::ReadString() {
  HYPERTP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  HYPERTP_RETURN_IF_ERROR(Require(n));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Result<void> ByteReader::Skip(size_t n) {
  HYPERTP_RETURN_IF_ERROR(Require(n));
  pos_ += n;
  return OkResult();
}

}  // namespace hypertp
