// Lightweight error-or-value types used across HyperTP.
//
// The library does not use exceptions for control flow; fallible operations
// return Result<T> (or Result<void>), mirroring the Status/StatusOr idiom
// common in systems codebases.

#ifndef HYPERTP_SRC_BASE_RESULT_H_
#define HYPERTP_SRC_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hypertp {

// Coarse error taxonomy; fine-grained context goes into Error::message.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kDataLoss,      // Corrupt UISR/PRAM payloads, checksum mismatches.
  kUnavailable,   // Transient: busy hypervisor, saturated link.
  kAborted,       // Transplant rolled back before the point of no return.
};

// Human-readable name for an ErrorCode ("kDataLoss" -> "DATA_LOSS").
std::string_view ErrorCodeName(ErrorCode code);

// An error with a code and a contextual message.
class Error {
 public:
  Error(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "Error must not carry kOk");
  }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: uisr: bad magic 0xdeadbeef"
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T> holds either a value of T or an Error. Result<void> holds
// success or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return Error{...};` both work.
  Result(T value) : data_(std::move(value)) {}
  Result(Error error) : data_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

// Success value for Result<void>.
inline Result<void> OkResult() { return Result<void>(); }

// Convenience error factories.
inline Error InvalidArgumentError(std::string msg) {
  return Error(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Error NotFoundError(std::string msg) { return Error(ErrorCode::kNotFound, std::move(msg)); }
inline Error AlreadyExistsError(std::string msg) {
  return Error(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Error FailedPreconditionError(std::string msg) {
  return Error(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Error OutOfRangeError(std::string msg) {
  return Error(ErrorCode::kOutOfRange, std::move(msg));
}
inline Error ResourceExhaustedError(std::string msg) {
  return Error(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Error UnimplementedError(std::string msg) {
  return Error(ErrorCode::kUnimplemented, std::move(msg));
}
inline Error InternalError(std::string msg) { return Error(ErrorCode::kInternal, std::move(msg)); }
inline Error DataLossError(std::string msg) { return Error(ErrorCode::kDataLoss, std::move(msg)); }
inline Error UnavailableError(std::string msg) {
  return Error(ErrorCode::kUnavailable, std::move(msg));
}
inline Error AbortedError(std::string msg) { return Error(ErrorCode::kAborted, std::move(msg)); }

// Propagates an error from an expression producing Result<void>.
#define HYPERTP_RETURN_IF_ERROR(expr)        \
  do {                                       \
    auto hypertp_status_ = (expr);           \
    if (!hypertp_status_.ok()) {             \
      return hypertp_status_.error();        \
    }                                        \
  } while (0)

// Evaluates `expr` (a Result<T>), propagating errors, otherwise assigning the
// value to `lhs`. `lhs` may include a declaration: ASSIGN_OR_RETURN(auto x, F()).
#define HYPERTP_CONCAT_INNER_(a, b) a##b
#define HYPERTP_CONCAT_(a, b) HYPERTP_CONCAT_INNER_(a, b)
#define HYPERTP_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto HYPERTP_CONCAT_(hypertp_result_, __LINE__) = (expr);            \
  if (!HYPERTP_CONCAT_(hypertp_result_, __LINE__).ok()) {              \
    return HYPERTP_CONCAT_(hypertp_result_, __LINE__).error();         \
  }                                                                    \
  lhs = std::move(HYPERTP_CONCAT_(hypertp_result_, __LINE__)).value()

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_RESULT_H_
