#include "src/base/crc32.h"

#include <array>

namespace hypertp {
namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, generated at startup.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t seed, std::span<const uint8_t> data) {
  const auto& table = Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::span<const uint8_t> data) { return Crc32Update(0, data); }

}  // namespace hypertp
