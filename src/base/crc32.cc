#include "src/base/crc32.h"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HYPERTP_CRC32_HAS_CLMUL 1
#else
#define HYPERTP_CRC32_HAS_CLMUL 0
#endif

namespace hypertp {
namespace {

// Slicing-by-8 tables for the reflected IEEE polynomial 0xEDB88320, generated
// at startup. table[0] is the classic byte-at-a-time table; table[k][b] is
// the CRC contribution of byte b seen k positions earlier in an 8-byte group.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = BuildTables();
  return tables;
}

// Little-endian 32-bit load, byte by byte (endianness-independent).
uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

#if HYPERTP_CRC32_HAS_CLMUL

bool ClmulSupported() {
  static const bool ok =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return ok;
}

// Carry-less-multiply folding for the reflected IEEE polynomial, after
// Intel's "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ"
// (Gopal et al.). The constants are x^N mod P for the fold distances below,
// bit-reflected; same values zlib ships for this polynomial.
//
// `raw` is the internal (pre-inverted) CRC register, `len` must be >= 64 and
// a multiple of 16; the caller handles tails with the sliced loop. Runs only
// when ClmulSupported(); the target attribute supplies the ISA, so the file
// builds without -mpclmul.
__attribute__((target("pclmul,sse4.1"))) uint32_t FoldClmul(const uint8_t* buf,
                                                            size_t len, uint32_t raw) {
  // Fold distances: 512 bits (4 lanes ahead) and 128 bits (next lane).
  const __m128i kFold512 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i kFold128 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);

  __m128i lane[4];
  for (int i = 0; i < 4; ++i) {
    lane[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf) + i);
  }
  lane[0] = _mm_xor_si128(lane[0], _mm_cvtsi32_si128(static_cast<int>(raw)));
  buf += 64;
  len -= 64;

  // Fold four 128-bit lanes in parallel over each 64-byte block.
  while (len >= 64) {
    for (int i = 0; i < 4; ++i) {
      const __m128i lo = _mm_clmulepi64_si128(lane[i], kFold512, 0x00);
      const __m128i hi = _mm_clmulepi64_si128(lane[i], kFold512, 0x11);
      const __m128i in = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf) + i);
      lane[i] = _mm_xor_si128(_mm_xor_si128(lo, hi), in);
    }
    buf += 64;
    len -= 64;
  }

  // Collapse the four lanes into one, then fold any remaining 16-byte blocks.
  __m128i acc = lane[0];
  for (int i = 1; i < 4; ++i) {
    const __m128i lo = _mm_clmulepi64_si128(acc, kFold128, 0x00);
    const __m128i hi = _mm_clmulepi64_si128(acc, kFold128, 0x11);
    acc = _mm_xor_si128(_mm_xor_si128(lo, hi), lane[i]);
  }
  while (len >= 16) {
    const __m128i lo = _mm_clmulepi64_si128(acc, kFold128, 0x00);
    const __m128i hi = _mm_clmulepi64_si128(acc, kFold128, 0x11);
    const __m128i in = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    acc = _mm_xor_si128(_mm_xor_si128(lo, hi), in);
    buf += 16;
    len -= 16;
  }

  // Reduce 128 -> 64 bits (fold the low qword across, then x^64 mod P).
  const __m128i kMask32 = _mm_setr_epi32(-1, 0, -1, 0);
  __m128i t = _mm_clmulepi64_si128(acc, kFold128, 0x10);
  acc = _mm_xor_si128(_mm_srli_si128(acc, 8), t);
  const __m128i kFold64 = _mm_set_epi64x(0, 0x0163cd6124);
  t = _mm_srli_si128(acc, 4);
  acc = _mm_and_si128(acc, kMask32);
  acc = _mm_clmulepi64_si128(acc, kFold64, 0x00);
  acc = _mm_xor_si128(acc, t);

  // Barrett reduction 64 -> 32 bits: mu in the high qword, P' in the low.
  const __m128i kBarrett = _mm_set_epi64x(0x01f7011641, 0x01db710641);
  t = _mm_and_si128(acc, kMask32);
  t = _mm_clmulepi64_si128(t, kBarrett, 0x10);
  t = _mm_and_si128(t, kMask32);
  t = _mm_clmulepi64_si128(t, kBarrett, 0x00);
  acc = _mm_xor_si128(acc, t);
  return static_cast<uint32_t>(_mm_extract_epi32(acc, 1));
}

#endif  // HYPERTP_CRC32_HAS_CLMUL

// Shared sliced body operating on the internal (pre-inverted) register.
uint32_t SlicedRaw(uint32_t c, const uint8_t* p, size_t n) {
  const auto& t = Tables();

  // 8 bytes per iteration: fold the running CRC into the first word, then
  // look all eight bytes up in their positional tables.
  while (n >= 8) {
    const uint32_t lo = LoadLe32(p) ^ c;
    const uint32_t hi = LoadLe32(p + 4);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^
        t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  // Unaligned tail (and any head shorter than 8 bytes) byte-at-a-time.
  while (n > 0) {
    c = t[0][(c ^ *p) & 0xFF] ^ (c >> 8);
    ++p;
    --n;
  }
  return c;
}

}  // namespace

uint32_t Crc32Update(uint32_t seed, std::span<const uint8_t> data) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const uint8_t* p = data.data();
  size_t n = data.size();

#if HYPERTP_CRC32_HAS_CLMUL
  // Bulk via carry-less multiply when the hardware has it; the fold wants
  // whole 16-byte blocks and at least one 64-byte run, the sliced loop
  // finishes the tail.
  if (n >= 64 && ClmulSupported()) {
    const size_t chunk = n & ~static_cast<size_t>(15);
    c = FoldClmul(p, chunk, c);
    p += chunk;
    n -= chunk;
  }
#endif

  return SlicedRaw(c, p, n) ^ 0xFFFFFFFFu;
}

uint32_t Crc32UpdateSliced(uint32_t seed, std::span<const uint8_t> data) {
  return SlicedRaw(seed ^ 0xFFFFFFFFu, data.data(), data.size()) ^ 0xFFFFFFFFu;
}

uint32_t Crc32UpdateBitwise(uint32_t seed, std::span<const uint8_t> data) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::span<const uint8_t> data) { return Crc32Update(0, data); }

}  // namespace hypertp
