#include "src/base/result.h"

namespace hypertp {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDataLoss:
      return "DATA_LOSS";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Error::ToString() const {
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hypertp
