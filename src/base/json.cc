#include "src/base/json.h"

#include <cmath>
#include <cstdio>

namespace hypertp {

void JsonWriter::Separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_.back()) {
    out_ += ',';
  }
  needs_comma_.back() = true;
}

void JsonWriter::Escape(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  Separator();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separator();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separator();
  Escape(key);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Separator();
  Escape(value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separator();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf.
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  Separator();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  Separator();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separator();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separator();
  out_ += "null";
  return *this;
}

}  // namespace hypertp
