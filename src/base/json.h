// Minimal JSON writer used for telemetry export (no parsing, no DOM —
// reports are write-only documents consumed by fleet monitoring).

#ifndef HYPERTP_SRC_BASE_JSON_H_
#define HYPERTP_SRC_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hypertp {

// Streaming JSON builder with correct string escaping and comma placement.
// Usage:
//   JsonWriter j;
//   j.BeginObject();
//   j.Key("downtime_ms").Number(4.96);
//   j.Key("fixups").BeginArray(); ... j.EndArray();
//   j.EndObject();
//   std::string doc = j.Take();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separator();
  void Escape(std::string_view s);

  std::string out_;
  // Tracks whether a value was already emitted at each nesting level.
  std::vector<bool> needs_comma_ = {false};
  bool after_key_ = false;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_JSON_H_
