// Little-endian byte encoding/decoding helpers used by the UISR wire format.

#ifndef HYPERTP_SRC_BASE_BYTES_H_
#define HYPERTP_SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"

namespace hypertp {

// Appends fixed-width little-endian integers and length-prefixed blobs to a
// growing byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutBytes(std::span<const uint8_t> bytes);
  // Writes a u32 length prefix followed by the raw bytes.
  void PutLengthPrefixed(std::span<const uint8_t> bytes);
  // Writes a u32 length prefix followed by the string bytes (no terminator).
  void PutString(std::string_view s);

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }

  // Overwrites 4 bytes at `offset` with `v`; used to back-patch section sizes.
  void PatchU32(size_t offset, uint32_t v);

 private:
  std::vector<uint8_t> buf_;
};

// Reads fixed-width little-endian integers from a byte span with bounds checks.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  // Reads exactly `n` raw bytes.
  Result<std::vector<uint8_t>> ReadBytes(size_t n);
  // Reads a u32 length prefix then that many bytes.
  Result<std::vector<uint8_t>> ReadLengthPrefixed();
  Result<std::string> ReadString();
  // Skips `n` bytes.
  Result<void> Skip(size_t n);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Result<void> Require(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_BYTES_H_
