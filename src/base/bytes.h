// Little-endian byte encoding/decoding helpers used by the UISR wire format.

#ifndef HYPERTP_SRC_BASE_BYTES_H_
#define HYPERTP_SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/logging.h"
#include "src/base/result.h"

namespace hypertp {

// Largest payload PutLengthPrefixed/PutString can frame: the length prefix is
// a u32, so anything wider would silently truncate on the wire. Writers and
// the ByteCounter pre-pass both HYPERTP_CHECK against this before touching
// any bytes, so an oversized payload can never produce a malformed blob.
inline constexpr size_t kMaxLengthPrefixedBytes = UINT32_MAX;

// Appends fixed-width little-endian integers and length-prefixed blobs to a
// growing byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutBytes(std::span<const uint8_t> bytes);
  // Writes a u32 length prefix followed by the raw bytes. Aborts via
  // HYPERTP_CHECK when bytes.size() exceeds kMaxLengthPrefixedBytes.
  void PutLengthPrefixed(std::span<const uint8_t> bytes);
  // Writes a u32 length prefix followed by the string bytes (no terminator).
  // Same size guard as PutLengthPrefixed.
  void PutString(std::string_view s);

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }

  // Everything written at or after byte offset `start`. Writer-interface
  // accessor (SpanWriter has it too) so templated encoders can CRC their own
  // output without knowing the writer type.
  std::span<const uint8_t> Written(size_t start) const {
    return std::span<const uint8_t>(buf_).subspan(start);
  }

  // Pre-allocates capacity for `total` bytes (current contents included), so
  // encoders that know their exact output size pay for one allocation.
  void Reserve(size_t total) { buf_.reserve(total); }

  // Overwrites 4 bytes at `offset` with `v`; used to back-patch section sizes.
  void PatchU32(size_t offset, uint32_t v);

 private:
  std::vector<uint8_t> buf_;
};

// ByteWriter-compatible writer over caller-owned storage of fixed capacity.
// This is the zero-copy half of the save path: the conversion pipeline maps a
// pre-sized kUisr frame extent (PramFrameWriter) and the encoder writes the
// wire bytes straight into it — no intermediate std::vector per VM. Encoders
// must pre-size with ByteCounter/EncodedUisrSize; writing past the span's end
// is a programming error and aborts via HYPERTP_CHECK.
class SpanWriter {
 public:
  explicit SpanWriter(std::span<uint8_t> dest) : dest_(dest) {}

  void PutU8(uint8_t v) {
    HYPERTP_CHECK(pos_ + 1 <= dest_.size());
    dest_[pos_++] = v;
  }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutBytes(std::span<const uint8_t> bytes);
  // Same framing and size guard as ByteWriter::PutLengthPrefixed.
  void PutLengthPrefixed(std::span<const uint8_t> bytes);
  void PutString(std::string_view s);
  void PatchU32(size_t offset, uint32_t v);

  size_t size() const { return pos_; }
  size_t capacity() const { return dest_.size(); }
  // Bytes written so far, from offset `start` (see ByteWriter::Written).
  std::span<const uint8_t> Written(size_t start) const {
    return std::span<const uint8_t>(dest_).first(pos_).subspan(start);
  }
  // The storage is fixed; Reserve only asserts the encoder's pre-computed
  // size actually fits, catching a stale size pass before any byte lands.
  void Reserve(size_t total) { HYPERTP_CHECK(total <= dest_.size()); }

 private:
  std::span<uint8_t> dest_;
  size_t pos_ = 0;
};

// Drop-in stand-in for ByteWriter that counts bytes instead of storing them.
// Encoders templated on the writer type can run once against a ByteCounter to
// learn their exact output size, then Reserve() and encode for real.
class ByteCounter {
 public:
  void PutU8(uint8_t) { ++size_; }
  void PutU16(uint16_t) { size_ += 2; }
  void PutU32(uint32_t) { size_ += 4; }
  void PutU64(uint64_t) { size_ += 8; }
  void PutBytes(std::span<const uint8_t> bytes) { size_ += bytes.size(); }
  // Mirrors the writers' oversized-payload guard: the pre-pass must fail the
  // same way the real encode would, not report a size the wire can't carry.
  void PutLengthPrefixed(std::span<const uint8_t> bytes) {
    HYPERTP_CHECK(bytes.size() <= kMaxLengthPrefixedBytes);
    size_ += 4 + bytes.size();
  }
  void PutString(std::string_view s) {
    HYPERTP_CHECK(s.size() <= kMaxLengthPrefixedBytes);
    size_ += 4 + s.size();
  }
  // Patches rewrite bytes already counted; nothing to do.
  void PatchU32(size_t, uint32_t) {}

  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
};

// Reads fixed-width little-endian integers from a byte span with bounds checks.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  // Reads exactly `n` raw bytes.
  Result<std::vector<uint8_t>> ReadBytes(size_t n);
  // Reads a u32 length prefix then that many bytes.
  Result<std::vector<uint8_t>> ReadLengthPrefixed();
  Result<std::string> ReadString();
  // Skips `n` bytes.
  Result<void> Skip(size_t n);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Result<void> Require(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_BYTES_H_
