// CRC-32 (IEEE 802.3 polynomial, reflected) used to protect UISR payloads and
// PRAM metadata pages against corruption across the micro-reboot.
//
// The hot path dispatches per buffer: bulk input goes through carry-less
// multiply folding (PCLMULQDQ) when the CPU has it, everything else through
// slicing-by-8 (eight derived lookup tables, 8 input bytes per iteration).
// This keeps the checksum off the critical path of the zero-copy encode — it
// CRCs every translated byte inside the pause window. A bit-at-a-time
// reference implementation is kept exported as the oracle for differential
// tests, and the sliced path is exported too so it stays tested on hosts
// where the dispatcher never picks it.

#ifndef HYPERTP_SRC_BASE_CRC32_H_
#define HYPERTP_SRC_BASE_CRC32_H_

#include <cstdint>
#include <span>

namespace hypertp {

// One-shot CRC-32 of `data` (initial value 0).
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: pass the previous return value as `seed` to continue.
// Streaming composes exactly: Crc32Update(Crc32(a), b) == Crc32(a || b)
// for any split, including empty pieces (base_test pins this).
uint32_t Crc32Update(uint32_t seed, std::span<const uint8_t> data);

// The portable slicing-by-8 path, bypassing the hardware dispatch. Same
// result as Crc32Update on every input (differential tests pin all three
// implementations against each other).
uint32_t Crc32UpdateSliced(uint32_t seed, std::span<const uint8_t> data);

// Reference implementation: processes one bit at a time straight from the
// polynomial, no tables. Differential-test oracle for the sliced and
// hardware paths; never use it on a hot path.
uint32_t Crc32UpdateBitwise(uint32_t seed, std::span<const uint8_t> data);

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_CRC32_H_
