// CRC-32 (IEEE 802.3 polynomial, reflected) used to protect UISR payloads and
// PRAM metadata pages against corruption across the micro-reboot.

#ifndef HYPERTP_SRC_BASE_CRC32_H_
#define HYPERTP_SRC_BASE_CRC32_H_

#include <cstdint>
#include <span>

namespace hypertp {

// One-shot CRC-32 of `data` (initial value 0).
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: pass the previous return value as `seed` to continue.
uint32_t Crc32Update(uint32_t seed, std::span<const uint8_t> data);

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_CRC32_H_
