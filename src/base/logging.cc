#include "src/base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hypertp {
namespace {

std::mutex g_log_mutex;
LogSink g_sink;  // Empty means "default stderr sink".
LogSeverity g_min_severity = LogSeverity::kWarning;

void DefaultSink(LogSeverity severity, std::string_view component, std::string_view msg) {
  std::fprintf(stderr, "[%-5s %s] %.*s\n", std::string(LogSeverityName(severity)).c_str(),
               std::string(component).c_str(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace

std::string_view LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "?";
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void SetMinLogSeverity(LogSeverity severity) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_min_severity = severity;
}

LogSeverity MinLogSeverity() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  return g_min_severity;
}

void LogMessage(LogSeverity severity, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (severity < g_min_severity) {
    return;
  }
  if (g_sink) {
    g_sink(severity, component, message);
  } else {
    DefaultSink(severity, component, message);
  }
}

namespace log_internal {

void CheckFailed(std::string_view condition, std::string_view file, int line) {
  // Bypass the severity filter: a failed invariant must never be silent.
  std::string msg = "check failed: " + std::string(condition) + " at " + std::string(file) + ":" +
                    std::to_string(line);
  LogMessage(LogSeverity::kError, "check", msg);
  std::fprintf(stderr, "[FATAL check] %s\n", msg.c_str());
  std::abort();
}

}  // namespace log_internal

}  // namespace hypertp
