// Bump allocator for short-lived encode scratch.
//
// The reconcile step of the pause-time translation re-encodes every UISR
// section payload of every VM to diff it against the speculative cache; with
// a fresh std::vector per section that is thousands of heap round-trips per
// transplant, all inside the pause window. An Arena keeps one set of blocks
// alive across the whole VM batch: Alloc() bumps a cursor, Reset() recycles
// every block without returning memory to the heap, so steady-state batches
// allocate nothing.
//
// Spans returned by Alloc() stay valid until Reset() or destruction — they
// are scratch, not storage. Not thread-safe; each worker owns its own arena.

#ifndef HYPERTP_SRC_BASE_ARENA_H_
#define HYPERTP_SRC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hypertp {

class Arena {
 public:
  // Initial block size; blocks double as demand grows, so a batch that needs
  // more settles into O(log) blocks after the first Reset() cycle.
  explicit Arena(size_t initial_block_bytes = 16 * 1024)
      : initial_block_bytes_(initial_block_bytes == 0 ? 1 : initial_block_bytes) {}

  // Zero-initialized scratch of `n` bytes. n == 0 returns an empty span.
  std::span<uint8_t> Alloc(size_t n);

  // Invalidates all outstanding spans and makes every block reusable.
  // Capacity is retained.
  void Reset();

  // Bytes handed out since the last Reset().
  size_t allocated() const { return allocated_; }
  // Total block capacity currently held.
  size_t capacity() const;

 private:
  size_t initial_block_bytes_;
  std::vector<std::vector<uint8_t>> blocks_;
  size_t current_block_ = 0;  // Index of the block `cursor_` points into.
  size_t cursor_ = 0;         // Next free byte inside blocks_[current_block_].
  size_t allocated_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_BASE_ARENA_H_
