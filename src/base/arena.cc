#include "src/base/arena.h"

#include <algorithm>
#include <cstring>

namespace hypertp {

std::span<uint8_t> Arena::Alloc(size_t n) {
  if (n == 0) {
    return {};
  }
  // Advance to (or create) a block with room. Blocks double so pathological
  // batches converge on a handful of allocations.
  while (current_block_ < blocks_.size() && cursor_ + n > blocks_[current_block_].size()) {
    ++current_block_;
    cursor_ = 0;
  }
  if (current_block_ == blocks_.size()) {
    const size_t last = blocks_.empty() ? initial_block_bytes_ / 2 : blocks_.back().size();
    blocks_.emplace_back(std::max(n, std::max(initial_block_bytes_, last * 2)));
    cursor_ = 0;
  }
  std::span<uint8_t> out(blocks_[current_block_].data() + cursor_, n);
  cursor_ += n;
  allocated_ += n;
  // Blocks are recycled by Reset() without scrubbing; hand out clean bytes so
  // a short encode never sees a previous batch's tail.
  std::memset(out.data(), 0, out.size());
  return out;
}

void Arena::Reset() {
  current_block_ = 0;
  cursor_ = 0;
  allocated_ = 0;
}

size_t Arena::capacity() const {
  size_t total = 0;
  for (const auto& b : blocks_) {
    total += b.size();
  }
  return total;
}

}  // namespace hypertp
