#include "src/migrate/migrate.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/uisr/codec.h"

namespace hypertp {

SimDuration NetworkLink::TransferTime(uint64_t bytes) const {
  return rtt + static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_second() * 1e9);
}

MigrationEngine::PrecopyPlan MigrationEngine::PlanPrecopy(uint64_t memory_bytes,
                                                          const MigrationConfig& config,
                                                          double bandwidth_share) const {
  PrecopyPlan plan;
  const double bw = link_.bytes_per_second() * bandwidth_share;
  const uint64_t total_pages = memory_bytes / kPageSize;
  const uint64_t wss = config.writable_working_set_pages != 0
                           ? config.writable_working_set_pages
                           : std::max<uint64_t>(total_pages / 20, 1);
  const uint64_t page_wire_bytes = static_cast<uint64_t>(
      (kPageSize + config.per_page_overhead_bytes) / std::max(config.compression_ratio, 1.0));
  const uint64_t threshold_pages =
      std::max<uint64_t>(config.stop_copy_threshold_bytes / kPageSize, 1);

  uint64_t to_send = total_pages;  // Round 0 sends everything.
  for (int round = 0; round < config.max_rounds; ++round) {
    const uint64_t bytes = to_send * page_wire_bytes;
    const SimDuration t =
        static_cast<SimDuration>(static_cast<double>(bytes) / bw * 1e9) + link_.rtt;
    plan.rounds.push_back(MigrationRound{to_send, t});
    plan.bytes += bytes;
    plan.duration += t;

    // Pages dirtied while this round was on the wire, capped at the WSS.
    const uint64_t dirtied = std::min<uint64_t>(
        static_cast<uint64_t>(config.dirty_pages_per_sec * ToSeconds(t)), wss);
    if (dirtied <= threshold_pages) {
      plan.residual_pages = dirtied;
      return plan;
    }
    // Non-convergence: the dirty rate outruns the link; sending more rounds
    // cannot shrink the set, so force stop-and-copy with the whole WSS.
    if (dirtied >= to_send && round > 0) {
      plan.residual_pages = dirtied;
      plan.converged = false;
      return plan;
    }
    to_send = dirtied;
  }
  plan.residual_pages = to_send;
  plan.converged = false;
  return plan;
}

Result<MigrationResult> MigrationEngine::MigrateVm(Hypervisor& src, VmId src_id, Hypervisor& dst,
                                                   const MigrationConfig& config) {
  auto results = MigrateMany(src, {src_id}, dst, config);
  if (!results.ok()) {
    return results.error();
  }
  return std::move((*results)[0]);
}

Result<std::vector<MigrationResult>> MigrationEngine::MigrateMany(
    Hypervisor& src, const std::vector<VmId>& src_ids, Hypervisor& dst,
    const MigrationConfig& config) {
  if (src_ids.empty()) {
    return std::vector<MigrationResult>{};
  }
  if (&src == &dst) {
    return InvalidArgumentError("migrate: source and destination are the same host");
  }
  const MigrationTraits traits = dst.migration_traits();
  const double share = 1.0 / static_cast<double>(src_ids.size());
  const bool postcopy = config.mode == MigrationMode::kPostcopy;
  // Stop-and-copy runs after the shared pre-copy phase: it gets the full link.
  const double final_bw = link_.bytes_per_second();
  const uint64_t page_wire_bytes = static_cast<uint64_t>(
      (kPageSize + config.per_page_overhead_bytes) / std::max(config.compression_ratio, 1.0));

  // --- Phase 1: concurrent pre-copy streams (source VMs keep running). -----
  struct InFlight {
    VmId src_id = 0;
    VmInfo info;
    PrecopyPlan plan;
    std::vector<std::pair<Gfn, uint64_t>> content;  // Destination-proxy buffer.
    MigrationResult result;
  };
  std::vector<InFlight> flights(src_ids.size());
  for (size_t i = 0; i < src_ids.size(); ++i) {
    InFlight& f = flights[i];
    f.src_id = src_ids[i];
    HYPERTP_ASSIGN_OR_RETURN(f.info, src.GetVmInfo(f.src_id));
    if (f.info.has_passthrough) {
      return FailedPreconditionError("migrate: vm uid " + std::to_string(f.info.uid) +
                                     " has a pass-through device; live migration is "
                                     "impossible (use InPlaceTP)");
    }
    // Guest-cooperative device preparation happens while the VM runs.
    HYPERTP_RETURN_IF_ERROR(src.PrepareVmForTransplant(f.src_id));
    HYPERTP_RETURN_IF_ERROR(src.EnableDirtyLogging(f.src_id));

    if (postcopy) {
      // Post-copy sends nothing up front; execution moves immediately.
      f.plan = PrecopyPlan{};
      f.result.rounds = 0;
      f.result.converged = true;
    } else {
      f.plan = PlanPrecopy(f.info.memory_bytes, config, share);
      f.result.rounds = static_cast<int>(f.plan.rounds.size());
      f.result.round_log = f.plan.rounds;
      f.result.converged = f.plan.converged;
      f.result.bytes_transferred = f.plan.bytes;
    }

    // Functionally, the destination proxy's buffer now holds the guest image:
    // everything written so far plus whatever the dirty log accumulates until
    // the pause (folded into the final read below).
    f.content = std::move(src.DumpGuestContent(f.src_id)).value_or({});
  }

  // --- Phase 2: stop-and-copy through the destination's receiver slots. ----
  // Pre-copy streams finish in src_ids order (equal shares, similar sizes
  // differ only in plan.duration). The destination grants
  // `traits.receive_concurrency` slots; later VMs wait, running and dirtying.
  std::vector<SimDuration> slot_free(
      static_cast<size_t>(std::max(traits.receive_concurrency, 1)), 0);
  std::vector<MigrationResult> results;
  results.reserve(flights.size());

  for (InFlight& f : flights) {
    const SimDuration precopy_end = f.plan.duration;
    auto slot = std::min_element(slot_free.begin(), slot_free.end());
    const SimDuration start_final = std::max(precopy_end, *slot);
    f.result.queue_wait = start_final - precopy_end;

    // Extra dirtying while queued, capped at the WSS.
    const uint64_t total_pages = f.info.memory_bytes / kPageSize;
    const uint64_t wss = config.writable_working_set_pages != 0
                             ? config.writable_working_set_pages
                             : std::max<uint64_t>(total_pages / 20, 1);
    const uint64_t extra = std::min<uint64_t>(
        static_cast<uint64_t>(config.dirty_pages_per_sec * ToSeconds(f.result.queue_wait)),
        wss > f.plan.residual_pages ? wss - f.plan.residual_pages : 0);
    // Post-copy pauses immediately: nothing is copied synchronously beyond
    // the VM_i State; all pages stream (or fault in) after the resume.
    const uint64_t final_pages = postcopy ? 0 : f.plan.residual_pages + extra;

    // Functional stop-and-copy: pause, drain the dirty log into the buffer,
    // translate VM_i State through UISR via the proxies.
    HYPERTP_RETURN_IF_ERROR(src.PauseVm(f.src_id));
    HYPERTP_ASSIGN_OR_RETURN(std::vector<Gfn> dirty, src.FetchAndClearDirtyLog(f.src_id));
    for (Gfn gfn : dirty) {
      HYPERTP_ASSIGN_OR_RETURN(uint64_t word, src.ReadGuestPage(f.src_id, gfn));
      auto it = std::lower_bound(
          f.content.begin(), f.content.end(), gfn,
          [](const std::pair<Gfn, uint64_t>& p, Gfn g) { return p.first < g; });
      if (it != f.content.end() && it->first == gfn) {
        it->second = word;
      } else {
        f.content.insert(it, {gfn, word});
      }
    }
    HYPERTP_RETURN_IF_ERROR(src.DisableDirtyLogging(f.src_id));

    auto uisr = src.SaveVmToUisr(f.src_id, &f.result.fixups);
    if (!uisr.ok()) {
      // Before the point of no return: resume the source and bail out.
      (void)src.ResumeVm(f.src_id);
      return uisr.error();
    }
    const std::vector<uint8_t> blob = EncodeUisrVm(*uisr);
    f.result.uisr_bytes = blob.size();

    // Destination proxy: decode, restore, apply buffered pages.
    auto decoded = DecodeUisrVm(blob);
    if (!decoded.ok()) {
      (void)src.ResumeVm(f.src_id);
      return decoded.error();
    }
    GuestMemoryBinding binding;
    binding.mode = GuestMemoryBinding::Mode::kAllocate;
    binding.remap_high_ioapic_pins = config.remap_high_ioapic_pins;
    auto dst_id = dst.RestoreVmFromUisr(*decoded, binding, &f.result.fixups);
    if (!dst_id.ok()) {
      (void)src.ResumeVm(f.src_id);
      return dst_id.error();
    }
    for (const auto& [gfn, word] : f.content) {
      HYPERTP_RETURN_IF_ERROR(dst.WriteGuestPage(*dst_id, gfn, word));
    }
    // Compute the stop-and-copy span first (needed for the clock adjust).
    const SimDuration final_copy_est = static_cast<SimDuration>(
        static_cast<double>(final_pages * page_wire_bytes) / final_bw * 1e9) + link_.rtt;
    HYPERTP_RETURN_IF_ERROR(dst.AdvanceGuestClocks(
        *dst_id, final_copy_est + traits.resume_fixed +
                     traits.resume_per_vcpu * static_cast<int>(f.info.vcpus)));
    HYPERTP_RETURN_IF_ERROR(dst.ResumeVm(*dst_id));
    // Point of no return passed: tear down the source VM.
    HYPERTP_RETURN_IF_ERROR(src.DestroyVm(f.src_id));

    // Timing: final copy at full link bandwidth + destination restore.
    const SimDuration final_copy = final_copy_est;
    const SimDuration restore =
        traits.resume_fixed + traits.resume_per_vcpu * static_cast<int>(f.info.vcpus);
    // The VM runs while queued (dirtying extra pages); downtime starts at
    // the pause, so it is the final copy — inflated by the queue-time dirt —
    // plus the destination restore.
    f.result.downtime = final_copy + restore;
    f.result.bytes_transferred += final_pages * page_wire_bytes + f.result.uisr_bytes;
    f.result.total_time = start_final + final_copy + restore;
    if (postcopy) {
      // Background page streaming: the VM runs at the destination while its
      // memory faults in over the link.
      const uint64_t total_pages_all = f.info.memory_bytes / kPageSize;
      const SimDuration stream = static_cast<SimDuration>(
          static_cast<double>(total_pages_all * page_wire_bytes) / final_bw * 1e9);
      f.result.postcopy_fault_window = stream;
      f.result.total_time += stream;
      f.result.bytes_transferred += total_pages_all * page_wire_bytes;
    }
    f.result.dest_vm_id = *dst_id;
    *slot = start_final + final_copy + restore;

    HYPERTP_LOG(kInfo, "migrate") << "vm uid " << f.info.uid << ": "
                                  << FormatDuration(f.result.total_time) << " total, "
                                  << FormatDuration(f.result.downtime) << " downtime, "
                                  << f.result.rounds << " rounds";
    results.push_back(std::move(f.result));
  }
  return results;
}

}  // namespace hypertp
