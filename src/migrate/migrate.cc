#include "src/migrate/migrate.h"

#include <algorithm>
#include <string>

#include "src/base/logging.h"
#include "src/obs/trace.h"
#include "src/pipeline/conversion.h"

namespace hypertp {

SimDuration NetworkLink::TransferTime(uint64_t bytes) const {
  return rtt + static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_second() * 1e9);
}

MigrationEngine::PrecopyPlan MigrationEngine::PlanPrecopy(uint64_t memory_bytes,
                                                          const MigrationConfig& config,
                                                          double bandwidth_share) const {
  PrecopyPlan plan;
  const double bw = link_.bytes_per_second() * bandwidth_share;
  const uint64_t total_pages = memory_bytes / kPageSize;
  const uint64_t wss = config.writable_working_set_pages != 0
                           ? config.writable_working_set_pages
                           : std::max<uint64_t>(total_pages / 20, 1);
  const uint64_t page_wire_bytes = static_cast<uint64_t>(
      (kPageSize + config.per_page_overhead_bytes) / std::max(config.compression_ratio, 1.0));
  const uint64_t threshold_pages =
      std::max<uint64_t>(config.stop_copy_threshold_bytes / kPageSize, 1);

  uint64_t to_send = total_pages;  // Round 0 sends everything.
  for (int round = 0; round < config.max_rounds; ++round) {
    const uint64_t bytes = to_send * page_wire_bytes;
    const SimDuration t =
        static_cast<SimDuration>(static_cast<double>(bytes) / bw * 1e9) + link_.rtt;
    plan.rounds.push_back(MigrationRound{to_send, t});
    plan.bytes += bytes;
    plan.duration += t;

    // Pages dirtied while this round was on the wire, capped at the WSS.
    const uint64_t dirtied = std::min<uint64_t>(
        static_cast<uint64_t>(config.dirty_pages_per_sec * ToSeconds(t)), wss);
    if (dirtied <= threshold_pages) {
      plan.residual_pages = dirtied;
      return plan;
    }
    // Non-convergence: the dirty rate outruns the link; sending more rounds
    // cannot shrink the set, so force stop-and-copy with the whole WSS.
    if (dirtied >= to_send && round > 0) {
      plan.residual_pages = dirtied;
      plan.converged = false;
      return plan;
    }
    to_send = dirtied;
  }
  plan.residual_pages = to_send;
  plan.converged = false;
  return plan;
}

bool MigrationBatchResult::all_migrated() const {
  for (const VmMigrationOutcome& o : outcomes) {
    if (!o.migrated) {
      return false;
    }
  }
  return true;
}

size_t MigrationBatchResult::migrated_count() const {
  size_t n = 0;
  for (const VmMigrationOutcome& o : outcomes) {
    n += o.migrated ? 1 : 0;
  }
  return n;
}

std::vector<MigrationResult> MigrationBatchResult::successes() const {
  std::vector<MigrationResult> out;
  out.reserve(outcomes.size());
  for (const VmMigrationOutcome& o : outcomes) {
    if (o.migrated) {
      out.push_back(*o.result);
    }
  }
  return out;
}

const Error* MigrationBatchResult::first_error() const {
  for (const VmMigrationOutcome& o : outcomes) {
    if (!o.migrated) {
      return &*o.error;
    }
  }
  return nullptr;
}

Result<MigrationResult> MigrationEngine::MigrateVm(Hypervisor& src, VmId src_id, Hypervisor& dst,
                                                   const MigrationConfig& config) {
  auto batch = MigrateMany(src, {src_id}, dst, config);
  if (!batch.ok()) {
    return batch.error();
  }
  VmMigrationOutcome& outcome = batch->outcomes[0];
  if (!outcome.migrated) {
    return *outcome.error;
  }
  return std::move(*outcome.result);
}

Result<MigrationBatchResult> MigrationEngine::MigrateMany(Hypervisor& src,
                                                          const std::vector<VmId>& src_ids,
                                                          Hypervisor& dst,
                                                          const MigrationConfig& config) {
  if (src_ids.empty()) {
    return MigrationBatchResult{};
  }
  if (&src == &dst) {
    return InvalidArgumentError("migrate: source and destination are the same host");
  }
  const MigrationTraits traits = dst.migration_traits();
  const double share = 1.0 / static_cast<double>(src_ids.size());
  const bool postcopy = config.mode == MigrationMode::kPostcopy;
  // Stop-and-copy runs after the shared pre-copy phase: it gets the full link.
  const double final_bw = link_.bytes_per_second();
  const uint64_t page_wire_bytes = static_cast<uint64_t>(
      (kPageSize + config.per_page_overhead_bytes) / std::max(config.compression_ratio, 1.0));

  // --- Phase 1: concurrent pre-copy streams (source VMs keep running). -----
  struct InFlight {
    VmId src_id = 0;
    VmInfo info;
    PrecopyPlan plan;
    std::vector<std::pair<Gfn, uint64_t>> content;  // Destination-proxy buffer.
    MigrationResult result;
    // Set when this VM's migration already failed; the VM keeps running at
    // the source and is skipped by the stop-and-copy phase.
    std::optional<Error> failed;
  };
  std::vector<InFlight> flights(src_ids.size());
  for (size_t i = 0; i < src_ids.size(); ++i) {
    InFlight& f = flights[i];
    f.src_id = src_ids[i];
    auto info = src.GetVmInfo(f.src_id);
    if (!info.ok()) {
      f.failed = info.error();
      continue;
    }
    f.info = *info;
    if (f.info.has_passthrough) {
      f.failed = FailedPreconditionError("migrate: vm uid " + std::to_string(f.info.uid) +
                                         " has a pass-through device; live migration is "
                                         "impossible (use InPlaceTP)");
      continue;
    }
    // Guest-cooperative device preparation happens while the VM runs.
    if (auto prepped = src.PrepareVmForTransplant(f.src_id); !prepped.ok()) {
      f.failed = prepped.error();
      continue;
    }
    if (auto logging = src.EnableDirtyLogging(f.src_id); !logging.ok()) {
      f.failed = logging.error();
      continue;
    }

    if (postcopy) {
      // Post-copy sends nothing up front; execution moves immediately.
      f.plan = PrecopyPlan{};
      f.result.rounds = 0;
      f.result.converged = true;
    } else {
      f.plan = PlanPrecopy(f.info.memory_bytes, config, share);
      f.result.rounds = static_cast<int>(f.plan.rounds.size());
      f.result.round_log = f.plan.rounds;
      f.result.converged = f.plan.converged;
      f.result.bytes_transferred = f.plan.bytes;
    }

    // Functionally, the destination proxy's buffer now holds the guest image:
    // everything written so far plus whatever the dirty log accumulates until
    // the pause (folded into the final read below).
    f.content = std::move(src.DumpGuestContent(f.src_id)).value_or({});
  }

  // --- Phase 2: stop-and-copy through the destination's receiver slots. ----
  // Pre-copy streams finish in src_ids order (equal shares, similar sizes
  // differ only in plan.duration). The destination grants
  // `traits.receive_concurrency` slots; later VMs wait, running and dirtying.
  std::vector<SimDuration> slot_free(
      static_cast<size_t>(std::max(traits.receive_concurrency, 1)), 0);
  MigrationBatchResult batch;
  batch.outcomes.reserve(flights.size());

  for (size_t index = 0; index < flights.size(); ++index) {
    InFlight& f = flights[index];
    VmMigrationOutcome outcome;
    outcome.src_id = f.src_id;
    if (f.failed.has_value()) {
      outcome.error = std::move(*f.failed);
      batch.outcomes.push_back(std::move(outcome));
      continue;
    }

    const bool inject_here = config.inject_fault != MigrationFault::kNone &&
                             static_cast<int>(index) == config.inject_fault_at_vm;
    auto injected = [&](MigrationFault step) {
      return inject_here && config.inject_fault == step;
    };

    const SimDuration precopy_end = f.plan.duration;
    auto slot = std::min_element(slot_free.begin(), slot_free.end());
    const SimDuration start_final = std::max(precopy_end, *slot);
    f.result.queue_wait = start_final - precopy_end;

    // Extra dirtying while queued, capped at the WSS.
    const uint64_t total_pages = f.info.memory_bytes / kPageSize;
    const uint64_t wss = config.writable_working_set_pages != 0
                             ? config.writable_working_set_pages
                             : std::max<uint64_t>(total_pages / 20, 1);
    const uint64_t extra = std::min<uint64_t>(
        static_cast<uint64_t>(config.dirty_pages_per_sec * ToSeconds(f.result.queue_wait)),
        wss > f.plan.residual_pages ? wss - f.plan.residual_pages : 0);
    // Post-copy pauses immediately: nothing is copied synchronously beyond
    // the VM_i State; all pages stream (or fault in) after the resume.
    const uint64_t final_pages = postcopy ? 0 : f.plan.residual_pages + extra;
    const SimDuration final_copy_est = static_cast<SimDuration>(
        static_cast<double>(final_pages * page_wire_bytes) / final_bw * 1e9) + link_.rtt;

    // Functional stop-and-copy: pause, drain the dirty log into the buffer,
    // translate VM_i State through UISR via the proxies. Every step before
    // the destination resume can fail; the unwind below puts the VM back
    // exactly as it was (running at the source, dirty logging enabled, no
    // half-built destination VM).
    bool paused = false;
    bool dirty_disabled = false;
    std::optional<VmId> created_dst;
    auto attempt = [&]() -> Result<VmId> {
      if (injected(MigrationFault::kPause)) {
        return InternalError("migrate: injected pause fault");
      }
      HYPERTP_RETURN_IF_ERROR(src.PauseVm(f.src_id));
      paused = true;
      if (injected(MigrationFault::kFetchDirtyLog)) {
        return InternalError("migrate: injected dirty-log fetch fault");
      }
      HYPERTP_ASSIGN_OR_RETURN(std::vector<Gfn> dirty, src.FetchAndClearDirtyLog(f.src_id));
      for (Gfn gfn : dirty) {
        HYPERTP_ASSIGN_OR_RETURN(uint64_t word, src.ReadGuestPage(f.src_id, gfn));
        auto it = std::lower_bound(
            f.content.begin(), f.content.end(), gfn,
            [](const std::pair<Gfn, uint64_t>& p, Gfn g) { return p.first < g; });
        if (it != f.content.end() && it->first == gfn) {
          it->second = word;
        } else {
          f.content.insert(it, {gfn, word});
        }
      }
      HYPERTP_RETURN_IF_ERROR(src.DisableDirtyLogging(f.src_id));
      dirty_disabled = true;

      if (injected(MigrationFault::kSaveUisr)) {
        return InternalError("migrate: injected UISR save fault");
      }
      HYPERTP_ASSIGN_OR_RETURN(auto uisr,
                               pipeline::ExtractVmState(src, f.src_id, &f.result.fixups));

      // Source + destination proxies: wire-encode the VM_i State and decode
      // it straight from the encoder's buffer — no parked intermediate blob.
      if (injected(MigrationFault::kDecode)) {
        return DataLossError("migrate: injected UISR decode fault");
      }
      HYPERTP_ASSIGN_OR_RETURN(auto decoded,
                               pipeline::RoundTripVmState(uisr, &f.result.uisr_bytes));
      GuestMemoryBinding binding;
      binding.mode = GuestMemoryBinding::Mode::kAllocate;
      binding.remap_high_ioapic_pins = config.remap_high_ioapic_pins;
      if (injected(MigrationFault::kRestore)) {
        return InternalError("migrate: injected destination restore fault");
      }
      HYPERTP_ASSIGN_OR_RETURN(VmId dst_id,
                               pipeline::RestoreVmState(dst, decoded, binding, &f.result.fixups));
      created_dst = dst_id;
      if (injected(MigrationFault::kWritePage)) {
        return InternalError("migrate: injected guest page write fault");
      }
      for (const auto& [gfn, word] : f.content) {
        HYPERTP_RETURN_IF_ERROR(dst.WriteGuestPage(dst_id, gfn, word));
      }
      if (injected(MigrationFault::kClockAdvance)) {
        return InternalError("migrate: injected clock advance fault");
      }
      HYPERTP_RETURN_IF_ERROR(dst.AdvanceGuestClocks(
          dst_id, final_copy_est + traits.resume_fixed +
                      traits.resume_per_vcpu * static_cast<int>(f.info.vcpus)));
      if (injected(MigrationFault::kResume)) {
        return InternalError("migrate: injected destination resume fault");
      }
      HYPERTP_RETURN_IF_ERROR(dst.ResumeVm(dst_id));
      return dst_id;
    };

    auto attempted = attempt();
    if (!attempted.ok() && config.tracer != nullptr) {
      const SpanId marker =
          config.tracer->AddInstant("migrate_aborted:vm-" + std::to_string(f.info.uid),
                                    config.trace_base + start_final,
                                    "vm-" + std::to_string(f.info.uid));
      config.tracer->SetAttribute(marker, "error", std::string_view(attempted.error().ToString()));
    }
    if (!attempted.ok()) {
      // Per-VM abort, still before the point of no return: destroy whatever
      // the destination built, re-enable dirty logging (so a retried
      // migration starts from a consistent log), and resume the source VM.
      if (created_dst.has_value()) {
        (void)dst.DestroyVm(*created_dst);
      }
      if (dirty_disabled) {
        (void)src.EnableDirtyLogging(f.src_id);
      }
      if (paused) {
        (void)src.ResumeVm(f.src_id);
      }
      HYPERTP_LOG(kWarning, "migrate") << "vm uid " << f.info.uid << " migration aborted ("
                                       << attempted.error().ToString()
                                       << "); vm resumed at the source";
      outcome.error = attempted.error();
      batch.outcomes.push_back(std::move(outcome));
      continue;
    }
    const VmId dst_id = *attempted;
    // Point of no return passed (the VM runs at the destination): tear down
    // the source VM. A teardown failure must not undo the migration; it
    // leaves a paused husk at the source, which we report but never resume.
    if (auto destroyed = src.DestroyVm(f.src_id); !destroyed.ok()) {
      HYPERTP_LOG(kWarning, "migrate")
          << "vm uid " << f.info.uid
          << ": source teardown failed after successful migration: "
          << destroyed.error().ToString();
    }

    // Timing: final copy at full link bandwidth + destination restore.
    const SimDuration final_copy = final_copy_est;
    const SimDuration restore =
        traits.resume_fixed + traits.resume_per_vcpu * static_cast<int>(f.info.vcpus);
    // The VM runs while queued (dirtying extra pages); downtime starts at
    // the pause, so it is the final copy — inflated by the queue-time dirt —
    // plus the destination restore.
    f.result.downtime = final_copy + restore;
    f.result.bytes_transferred += final_pages * page_wire_bytes + f.result.uisr_bytes;
    f.result.total_time = start_final + final_copy + restore;
    if (postcopy) {
      // Background page streaming: the VM runs at the destination while its
      // memory faults in over the link.
      const uint64_t total_pages_all = f.info.memory_bytes / kPageSize;
      const SimDuration stream = static_cast<SimDuration>(
          static_cast<double>(total_pages_all * page_wire_bytes) / final_bw * 1e9);
      f.result.postcopy_fault_window = stream;
      f.result.total_time += stream;
      f.result.bytes_transferred += total_pages_all * page_wire_bytes;
    }
    f.result.dest_vm_id = dst_id;
    *slot = start_final + final_copy + restore;

    if (config.tracer != nullptr) {
      // Span tree on this VM's track: rounds back-to-back from the batch
      // start, then queue wait, stop-and-copy (the downtime) and restore.
      Tracer& tr = *config.tracer;
      const std::string track = "vm-" + std::to_string(f.info.uid);
      const SimTime base = config.trace_base;
      const SpanId vm_span =
          tr.AddSpan("migrate:" + track, base, f.result.total_time, 0, track);
      tr.SetAttribute(vm_span, "uid", static_cast<int64_t>(f.info.uid));
      tr.SetAttribute(vm_span, "rounds", static_cast<int64_t>(f.result.rounds));
      tr.SetAttribute(vm_span, "converged", f.result.converged);
      tr.SetAttribute(vm_span, "bytes_transferred",
                      static_cast<int64_t>(f.result.bytes_transferred));
      tr.SetAttribute(vm_span, "downtime_ms", ToMillis(f.result.downtime));
      SimTime t = base;
      for (size_t r = 0; r < f.result.round_log.size(); ++r) {
        const SpanId round = tr.AddSpan("precopy:round-" + std::to_string(r), t,
                                        f.result.round_log[r].duration, vm_span, track);
        tr.SetAttribute(round, "pages", static_cast<int64_t>(f.result.round_log[r].pages));
        t += f.result.round_log[r].duration;
      }
      if (f.result.queue_wait > 0) {
        tr.AddSpan("queue_wait", base + precopy_end, f.result.queue_wait, vm_span, track);
      }
      tr.AddSpan("stop_and_copy", base + start_final, final_copy, vm_span, track);
      tr.AddSpan("restore", base + start_final + final_copy, restore, vm_span, track);
      if (postcopy) {
        tr.AddSpan("postcopy_fault_window", base + start_final + final_copy + restore,
                   f.result.postcopy_fault_window, vm_span, track);
      }
    }

    HYPERTP_LOG(kInfo, "migrate") << "vm uid " << f.info.uid << ": "
                                  << FormatDuration(f.result.total_time) << " total, "
                                  << FormatDuration(f.result.downtime) << " downtime, "
                                  << f.result.rounds << " rounds";
    outcome.migrated = true;
    outcome.result = std::move(f.result);
    batch.outcomes.push_back(std::move(outcome));
  }
  return batch;
}

}  // namespace hypertp
