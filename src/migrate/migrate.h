// Live migration engine (pre-copy, paper §3.3 / §4.3).
//
// The engine moves a VM between two hypervisor hosts over a simulated
// network link. State moves for real: guest page contents are read from the
// source and applied at the destination; the VM_i State travels as a UISR
// blob produced/consumed by the source and destination proxies. Timing is
// computed with the classic pre-copy model: iterative rounds whose duration
// follows the link bandwidth while the guest keeps dirtying pages, then a
// stop-and-copy whose length (plus the destination's restore cost) is the
// downtime.
//
// Heterogeneity appears in two places the paper measures:
//  - downtime: kvmtool's restore is far lighter than xl/libxl's (Table 4);
//  - multi-VM variance: Xen's destination receives sequentially, so later
//    VMs accumulate extra dirty pages while queueing (Fig. 8/9 boxplots).

#ifndef HYPERTP_SRC_MIGRATE_MIGRATE_H_
#define HYPERTP_SRC_MIGRATE_MIGRATE_H_

#include <optional>
#include <vector>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/sim/time.h"

namespace hypertp {

class Tracer;

// A point-to-point network path between two hosts.
struct NetworkLink {
  double gbps = 1.0;
  SimDuration rtt = Micros(200);
  double efficiency = 0.94;  // TCP + migration-protocol overhead.

  double bytes_per_second() const { return gbps * 1e9 / 8.0 * efficiency; }
  SimDuration TransferTime(uint64_t bytes) const;
};

// Transfer strategy. Pre-copy (paper §3.3/§4.3) keeps the VM running while
// iteratively copying; post-copy (an extension) moves execution first and
// streams pages behind it — minimal downtime, but the VM runs degraded while
// its working set faults in over the network, and a mid-stream failure loses
// the VM (no source to fall back to).
enum class MigrationMode : uint8_t { kPrecopy = 0, kPostcopy = 1 };

// Fault-injection points covering every step of the stop-and-copy phase, for
// testing the per-VM abort path: on any of these the destination VM (if
// created) is destroyed, dirty logging is re-enabled if it had been turned
// off, and the source VM is resumed — the guest never ends up lost, leaked,
// or running in two places.
enum class MigrationFault : uint8_t {
  kNone = 0,
  kPause,
  kFetchDirtyLog,
  kSaveUisr,
  kDecode,
  kRestore,
  kWritePage,
  kClockAdvance,
  kResume,
};

struct MigrationConfig {
  MigrationMode mode = MigrationMode::kPrecopy;
  int max_rounds = 30;
  // Stop-and-copy once the remaining dirty set is at most this many bytes.
  uint64_t stop_copy_threshold_bytes = 128ull << 10;
  // Guest behaviour while migrating: how fast it dirties pages and how large
  // its writable working set is (the dirty set saturates at the WSS).
  double dirty_pages_per_sec = 2000.0;
  uint64_t writable_working_set_pages = 0;  // 0 = 5% of guest memory.
  // Per-page protocol overhead on the wire (headers, gfn tags).
  uint64_t per_page_overhead_bytes = 24;
  // Renegotiate IOAPIC pins the destination cannot host (§4.2.1 extension).
  bool remap_high_ioapic_pins = false;
  // Effective wire compression (adaptive memory compression, paper's [22]);
  // 1.0 = off. Wire bytes divide by this ratio.
  double compression_ratio = 1.0;
  // Testing: fire `inject_fault` while migrating the VM at index
  // `inject_fault_at_vm` of the batch's `src_ids`.
  MigrationFault inject_fault = MigrationFault::kNone;
  int inject_fault_at_vm = 0;
  // Observability: when non-null, each VM of the batch records a span tree
  // (pre-copy rounds, queue wait, stop-and-copy, restore) on its own track,
  // starting at `trace_base`. Null (the default) records nothing.
  Tracer* tracer = nullptr;
  SimTime trace_base = 0;
};

struct MigrationRound {
  uint64_t pages = 0;
  SimDuration duration = 0;
};

struct MigrationResult {
  VmId dest_vm_id = 0;
  SimDuration total_time = 0;
  SimDuration downtime = 0;
  SimDuration queue_wait = 0;  // Time spent waiting for a receiver slot.
  // Post-copy only: how long the VM ran at the destination while pages were
  // still faulting in over the link.
  SimDuration postcopy_fault_window = 0;
  uint64_t bytes_transferred = 0;
  uint64_t uisr_bytes = 0;
  int rounds = 0;
  bool converged = true;  // False when the round limit forced stop-and-copy.
  FixupLog fixups;
  std::vector<MigrationRound> round_log;
};

// One VM's fate within a batch migration. Exactly one of `result` / `error`
// is set: a VM either moved (and runs at the destination) or its migration
// aborted (and it runs, resumed, at the source). There is no third state.
struct VmMigrationOutcome {
  VmId src_id = 0;
  bool migrated = false;
  std::optional<MigrationResult> result;  // Set when migrated.
  std::optional<Error> error;             // Set when the migration aborted.
};

// Per-VM outcomes of a batch, in `src_ids` order. A VM's failure no longer
// hides the results of VMs that already moved: callers must consult each
// outcome to learn which host a given VM ended up on.
struct MigrationBatchResult {
  std::vector<VmMigrationOutcome> outcomes;

  bool all_migrated() const;
  size_t migrated_count() const;
  // The MigrationResults of the VMs that moved, in batch order.
  std::vector<MigrationResult> successes() const;
  // The first per-VM error, if any (convenience for single-VM callers).
  const Error* first_error() const;
};

class MigrationEngine {
 public:
  explicit MigrationEngine(NetworkLink link) : link_(link) {}

  // Migrates one VM from `src` to `dst`. On success the source VM has been
  // destroyed and the destination VM is running. On failure before the
  // point of no return the destination VM (if any) is destroyed, dirty
  // logging is restored, and the source VM is resumed and intact.
  Result<MigrationResult> MigrateVm(Hypervisor& src, VmId src_id, Hypervisor& dst,
                                    const MigrationConfig& config);

  // Migrates several VMs concurrently over the shared link. Pre-copy streams
  // divide the bandwidth; stop-and-copy/restore compete for the
  // destination's receiver slots (dst.migration_traits().receive_concurrency).
  // Outcomes are in the order of `src_ids`; one VM's failure aborts only
  // that VM (it is cleaned up and resumed at the source) and the remaining
  // VMs still migrate. The call itself only fails on batch-level misuse
  // (e.g. src == dst).
  Result<MigrationBatchResult> MigrateMany(Hypervisor& src, const std::vector<VmId>& src_ids,
                                           Hypervisor& dst, const MigrationConfig& config);

  const NetworkLink& link() const { return link_; }

 private:
  // Pure timing model for one VM's pre-copy phase given an effective
  // bandwidth share; returns rounds and the residual dirty pages.
  struct PrecopyPlan {
    std::vector<MigrationRound> rounds;
    uint64_t residual_pages = 0;
    uint64_t bytes = 0;
    SimDuration duration = 0;
    bool converged = true;
  };
  PrecopyPlan PlanPrecopy(uint64_t memory_bytes, const MigrationConfig& config,
                          double bandwidth_share) const;

  NetworkLink link_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_MIGRATE_MIGRATE_H_
