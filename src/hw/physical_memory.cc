#include "src/hw/physical_memory.h"

#include <algorithm>
#include <cassert>

namespace hypertp {

std::string_view FrameOwnerKindName(FrameOwnerKind kind) {
  switch (kind) {
    case FrameOwnerKind::kHypervisor:
      return "hypervisor";
    case FrameOwnerKind::kGuest:
      return "guest";
    case FrameOwnerKind::kVmState:
      return "vm-state";
    case FrameOwnerKind::kVmm:
      return "vmm";
    case FrameOwnerKind::kPramMeta:
      return "pram-meta";
    case FrameOwnerKind::kUisr:
      return "uisr";
    case FrameOwnerKind::kKernelImage:
      return "kernel-image";
  }
  return "?";
}

PhysicalMemory::PhysicalMemory(uint64_t bytes)
    : total_frames_(bytes / kPageSize), free_frames_(bytes / kPageSize - 1) {
  assert(bytes % kPageSize == 0 && "RAM size must be page aligned");
  assert(total_frames_ > 1);
  // Frame 0 is never handed out: real firmware owns low memory, and mfn 0
  // doubles as the null pointer in PRAM/kexec chains.
  free_.emplace(1, total_frames_ - 1);
}

Result<Mfn> PhysicalMemory::Alloc(uint64_t count, uint64_t align_frames, FrameOwner owner) {
  if (count == 0 || align_frames == 0) {
    return InvalidArgumentError("alloc: count and alignment must be positive");
  }
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const Mfn hole_base = it->first;
    const uint64_t hole_count = it->second;
    // First aligned base at or after hole_base.
    const Mfn aligned = ((hole_base + align_frames - 1) / align_frames) * align_frames;
    if (aligned + count > hole_base + hole_count) {
      continue;
    }
    // Carve [aligned, aligned+count) out of the hole.
    free_.erase(it);
    if (aligned > hole_base) {
      free_.emplace(hole_base, aligned - hole_base);
    }
    if (aligned + count < hole_base + hole_count) {
      free_.emplace(aligned + count, hole_base + hole_count - (aligned + count));
    }
    free_frames_ -= count;
    allocated_.emplace(aligned, FrameExtent{aligned, count, owner});
    return aligned;
  }
  return ResourceExhaustedError("alloc: no hole of " + std::to_string(count) +
                                " frames with alignment " + std::to_string(align_frames));
}

void PhysicalMemory::InsertFree(Mfn base, uint64_t count) {
  // Coalesce with successor.
  auto next = free_.lower_bound(base);
  if (next != free_.end() && base + count == next->first) {
    count += next->second;
    next = free_.erase(next);
  }
  // Coalesce with predecessor.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == base) {
      prev->second += count;
      return;
    }
  }
  free_.emplace(base, count);
}

Result<void> PhysicalMemory::Free(Mfn base, uint64_t count) {
  auto it = allocated_.find(base);
  if (it == allocated_.end() || it->second.count != count) {
    return InvalidArgumentError("free: no allocated extent [" + std::to_string(base) + ", +" +
                                std::to_string(count) + ")");
  }
  DropBackingsIn(base, count);
  for (Mfn m = base; m < base + count; ++m) {
    content_.erase(m);
    pages_.erase(m);
  }
  allocated_.erase(it);
  free_frames_ += count;
  InsertFree(base, count);
  return OkResult();
}

uint64_t PhysicalMemory::FreeAllOwnedBy(FrameOwner owner) {
  uint64_t freed = 0;
  for (auto it = allocated_.begin(); it != allocated_.end();) {
    if (it->second.owner == owner) {
      const FrameExtent ext = it->second;
      it = allocated_.erase(it);
      DropBackingsIn(ext.base, ext.count);
      for (Mfn m = ext.base; m < ext.end(); ++m) {
        content_.erase(m);
        pages_.erase(m);
      }
      free_frames_ += ext.count;
      InsertFree(ext.base, ext.count);
      freed += ext.count;
    } else {
      ++it;
    }
  }
  return freed;
}

Result<void> PhysicalMemory::WriteWord(Mfn mfn, uint64_t content) {
  if (!IsAllocated(mfn)) {
    return FailedPreconditionError("write to unallocated frame " + std::to_string(mfn));
  }
  if (content == 0) {
    content_.erase(mfn);
  } else {
    content_[mfn] = content;
  }
  return OkResult();
}

Result<uint64_t> PhysicalMemory::ReadWord(Mfn mfn) const {
  if (mfn >= total_frames_) {
    return OutOfRangeError("read of frame " + std::to_string(mfn) + " beyond RAM");
  }
  auto it = content_.find(mfn);
  return it == content_.end() ? 0 : it->second;
}

bool PhysicalMemory::IsAllocated(Mfn mfn) const {
  auto it = allocated_.upper_bound(mfn);
  if (it == allocated_.begin()) {
    return false;
  }
  return std::prev(it)->second.Contains(mfn);
}

Result<FrameOwner> PhysicalMemory::OwnerOf(Mfn mfn) const {
  auto it = allocated_.upper_bound(mfn);
  if (it != allocated_.begin()) {
    const FrameExtent& ext = std::prev(it)->second;
    if (ext.Contains(mfn)) {
      return ext.owner;
    }
  }
  return NotFoundError("frame " + std::to_string(mfn) + " is not allocated");
}

std::vector<FrameExtent> PhysicalMemory::AllocatedExtents() const {
  std::vector<FrameExtent> out;
  out.reserve(allocated_.size());
  for (const auto& [base, ext] : allocated_) {
    out.push_back(ext);
  }
  return out;
}

std::vector<FrameExtent> PhysicalMemory::ExtentsOfKind(FrameOwnerKind kind) const {
  std::vector<FrameExtent> out;
  for (const auto& [base, ext] : allocated_) {
    if (ext.owner.kind == kind) {
      out.push_back(ext);
    }
  }
  return out;
}

uint64_t PhysicalMemory::ScrubExcept(const std::vector<FrameExtent>& preserved) {
  // Sort preserved extents for binary-search coverage checks.
  std::vector<FrameExtent> keep = preserved;
  std::sort(keep.begin(), keep.end(),
            [](const FrameExtent& a, const FrameExtent& b) { return a.base < b.base; });

  auto covered = [&keep](const FrameExtent& ext) {
    // Find the preserved extent starting at or before ext.base.
    auto it = std::upper_bound(
        keep.begin(), keep.end(), ext.base,
        [](Mfn value, const FrameExtent& e) { return value < e.base; });
    if (it == keep.begin()) {
      return false;
    }
    const FrameExtent& candidate = *std::prev(it);
    return ext.base >= candidate.base && ext.end() <= candidate.end();
  };

  uint64_t scrubbed = 0;
  for (auto it = allocated_.begin(); it != allocated_.end();) {
    if (!covered(it->second)) {
      const FrameExtent ext = it->second;
      it = allocated_.erase(it);
      DropBackingsIn(ext.base, ext.count);
      for (Mfn m = ext.base; m < ext.end(); ++m) {
        content_.erase(m);  // The scrub really destroys the contents.
        pages_.erase(m);
      }
      free_frames_ += ext.count;
      InsertFree(ext.base, ext.count);
      scrubbed += ext.count;
    } else {
      ++it;
    }
  }
  return scrubbed;
}

Result<void> PhysicalMemory::WritePage(Mfn mfn, std::vector<uint8_t> bytes) {
  if (!IsAllocated(mfn)) {
    return FailedPreconditionError("page write to unallocated frame " + std::to_string(mfn));
  }
  if (bytes.size() > kPageSize) {
    return InvalidArgumentError("page payload of " + std::to_string(bytes.size()) +
                                " bytes exceeds frame size");
  }
  // A frame inside a contiguous backing stays there: the page write replaces
  // its slice (zero-padded, matching whole-page overwrite semantics), so
  // page-level corruption of a parked blob lands in the same storage the
  // zero-copy decode reads.
  Mfn backing_base = 0;
  if (BackingBytes* backing = BackingFor(mfn, &backing_base)) {
    uint8_t* slice = backing->data.get() + (mfn - backing_base) * kPageSize;
    std::fill(slice, slice + kPageSize, 0);
    std::copy(bytes.begin(), bytes.end(), slice);
    return OkResult();
  }
  pages_[mfn] = std::move(bytes);
  return OkResult();
}

Result<std::vector<uint8_t>> PhysicalMemory::ReadPage(Mfn mfn) const {
  if (mfn >= total_frames_) {
    return OutOfRangeError("page read of frame " + std::to_string(mfn) + " beyond RAM");
  }
  Mfn backing_base = 0;
  if (const BackingBytes* backing = BackingFor(mfn, &backing_base)) {
    const uint8_t* slice = backing->data.get() + (mfn - backing_base) * kPageSize;
    return std::vector<uint8_t>(slice, slice + kPageSize);
  }
  auto it = pages_.find(mfn);
  if (it == pages_.end()) {
    return std::vector<uint8_t>{};
  }
  return it->second;
}

Result<std::span<uint8_t>> PhysicalMemory::BackExtent(Mfn base, uint64_t frames,
                                                      uint64_t skip_zero_prefix) {
  if (frames == 0) {
    return InvalidArgumentError("back extent: frame count must be positive");
  }
  auto it = allocated_.upper_bound(base);
  if (it == allocated_.begin()) {
    return FailedPreconditionError("back extent: frame " + std::to_string(base) +
                                   " is not allocated");
  }
  const FrameExtent& ext = std::prev(it)->second;
  if (!ext.Contains(base) || base + frames > ext.end()) {
    return FailedPreconditionError("back extent: [" + std::to_string(base) + ", +" +
                                   std::to_string(frames) +
                                   ") does not lie inside one allocated extent");
  }
  // One backing per frame: replace any overlapping backings or stale per-page
  // payloads rather than shadowing them.
  DropBackingsIn(base, frames);
  for (Mfn m = base; m < base + frames; ++m) {
    pages_.erase(m);
  }
  const size_t bytes = frames * kPageSize;
  BackingBytes backing;
  backing.data = std::unique_ptr<uint8_t[]>(new uint8_t[bytes]);  // Uninitialized.
  backing.size = bytes;
  // Honor the caller's overwrite promise: zero only what it won't write.
  const size_t zero_from = skip_zero_prefix < bytes ? skip_zero_prefix : bytes;
  std::fill(backing.data.get() + zero_from, backing.data.get() + bytes, 0);
  auto [entry, inserted] = backed_.emplace(base, std::move(backing));
  (void)inserted;
  return std::span<uint8_t>(entry->second.data.get(), entry->second.size);
}

Result<std::span<const uint8_t>> PhysicalMemory::BackedExtent(Mfn base, uint64_t frames) const {
  auto it = backed_.find(base);
  if (it == backed_.end() || it->second.size != frames * kPageSize) {
    return NotFoundError("no contiguous backing for [" + std::to_string(base) + ", +" +
                         std::to_string(frames) + ")");
  }
  return std::span<const uint8_t>(it->second.data.get(), it->second.size);
}

void PhysicalMemory::DropBackingsIn(Mfn base, uint64_t count) {
  if (backed_.empty()) {
    return;
  }
  const Mfn end = base + count;
  auto it = backed_.upper_bound(base);
  // A backing starting before `base` can still reach into the range.
  if (it != backed_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size / kPageSize > base) {
      it = prev;
    }
  }
  while (it != backed_.end() && it->first < end) {
    it = backed_.erase(it);
  }
}

const PhysicalMemory::BackingBytes* PhysicalMemory::BackingFor(Mfn mfn, Mfn* backing_base) const {
  auto it = backed_.upper_bound(mfn);
  if (it == backed_.begin()) {
    return nullptr;
  }
  const auto& [base, bytes] = *std::prev(it);
  if (mfn >= base + bytes.size / kPageSize) {
    return nullptr;
  }
  *backing_base = base;
  return &bytes;
}

PhysicalMemory::BackingBytes* PhysicalMemory::BackingFor(Mfn mfn, Mfn* backing_base) {
  return const_cast<BackingBytes*>(
      static_cast<const PhysicalMemory*>(this)->BackingFor(mfn, backing_base));
}

Result<void> PhysicalMemory::Reassign(Mfn base, uint64_t count, FrameOwner new_owner) {
  auto it = allocated_.find(base);
  if (it == allocated_.end() || it->second.count != count) {
    return InvalidArgumentError("reassign: no allocated extent [" + std::to_string(base) + ", +" +
                                std::to_string(count) + ")");
  }
  it->second.owner = new_owner;
  return OkResult();
}

}  // namespace hypertp
