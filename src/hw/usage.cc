#include "src/hw/usage.h"

#include <cstdio>

namespace hypertp {

uint64_t MachineUsage::bytes_of(FrameOwnerKind kind) const {
  auto it = by_kind.find(kind);
  return it == by_kind.end() ? 0 : it->second;
}

std::string MachineUsage::ToString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "RAM %llu MiB total, %llu MiB free\n",
                static_cast<unsigned long long>(total_bytes >> 20),
                static_cast<unsigned long long>(free_bytes >> 20));
  out += buf;
  for (const auto& [kind, bytes] : by_kind) {
    std::snprintf(buf, sizeof(buf), "  %-14s %8.1f MiB\n",
                  std::string(FrameOwnerKindName(kind)).c_str(),
                  static_cast<double>(bytes) / (1 << 20));
    out += buf;
  }
  for (const auto& [uid, bytes] : by_vm) {
    std::snprintf(buf, sizeof(buf), "  vm uid %-6llu %8.1f MiB\n",
                  static_cast<unsigned long long>(uid), static_cast<double>(bytes) / (1 << 20));
    out += buf;
  }
  return out;
}

MachineUsage DescribeMachineUsage(const Machine& machine) {
  MachineUsage usage;
  usage.total_bytes = machine.memory().total_bytes();
  usage.free_bytes = machine.memory().free_frames() * kPageSize;
  for (const FrameExtent& ext : machine.memory().AllocatedExtents()) {
    const uint64_t bytes = ext.count * kPageSize;
    usage.by_kind[ext.owner.kind] += bytes;
    if (ext.owner.kind == FrameOwnerKind::kGuest || ext.owner.kind == FrameOwnerKind::kVmState ||
        ext.owner.kind == FrameOwnerKind::kVmm) {
      usage.by_vm[ext.owner.id] += bytes;
    }
  }
  return usage;
}

}  // namespace hypertp
