// Machine memory-usage accounting: a per-owner-kind breakdown of physical
// RAM, i.e. the memory-separation view of Fig. 2 measured live. Used by
// operator tooling and by tests asserting that transplants leak nothing.

#ifndef HYPERTP_SRC_HW_USAGE_H_
#define HYPERTP_SRC_HW_USAGE_H_

#include <map>
#include <string>

#include "src/hw/machine.h"

namespace hypertp {

struct MachineUsage {
  uint64_t total_bytes = 0;
  uint64_t free_bytes = 0;
  // Bytes per owner kind (Fig. 2's categories: Guest State, VM_i State,
  // HV State, plus the HyperTP ephemera).
  std::map<FrameOwnerKind, uint64_t> by_kind;
  // Bytes per VM uid across guest + VM-state + VMM ownership.
  std::map<uint64_t, uint64_t> by_vm;

  uint64_t bytes_of(FrameOwnerKind kind) const;
  // Multi-line operator-facing rendering.
  std::string ToString() const;
};

MachineUsage DescribeMachineUsage(const Machine& machine);

}  // namespace hypertp

#endif  // HYPERTP_SRC_HW_USAGE_H_
