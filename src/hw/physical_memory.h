// Simulated physical RAM.
//
// RAM is modelled as an array of 4 KiB machine frames managed by an
// extent-based allocator (first-fit with alignment, coalescing free).
// Frame *contents* are modelled as one 64-bit "content word" per frame,
// standing in for the frame's 4096 bytes; the word is stored sparsely so
// multi-GiB machines stay cheap to simulate. A guest write updates the word;
// the micro-reboot scrubber zeroes words of frames it reclaims, so corruption
// of guest memory by a buggy PRAM reservation is observable, exactly as it
// would be on real hardware.

#ifndef HYPERTP_SRC_HW_PHYSICAL_MEMORY_H_
#define HYPERTP_SRC_HW_PHYSICAL_MEMORY_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"

namespace hypertp {

// Machine frame number: index of a 4 KiB frame in physical RAM.
using Mfn = uint64_t;
// Guest frame number: index of a 4 KiB page in a guest's physical address space.
using Gfn = uint64_t;

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kHugePageSize = 2 * 1024 * 1024;
inline constexpr uint64_t kFramesPerHugePage = kHugePageSize / kPageSize;  // 512
// Allocation order of a 2 MiB huge page (2^9 frames).
inline constexpr int kHugePageOrder = 9;

// Who owns a frame extent. `id` scopes the owner (e.g. VM id); 0 when unused.
enum class FrameOwnerKind : uint8_t {
  kHypervisor,   // HV State: hypervisor text/heap. Discarded on micro-reboot.
  kGuest,        // Guest State: a VM's physical address space. Kept in place.
  kVmState,      // VM_i State: NPT, vCPU contexts, device state.
  kVmm,          // User-space VMM (kvmtool/QEMU-like) working memory.
  kPramMeta,     // PRAM metadata pages. Must survive the micro-reboot.
  kUisr,         // Serialized UISR blobs parked in RAM across the reboot.
  kKernelImage,  // Staged kexec target kernel image.
};

std::string_view FrameOwnerKindName(FrameOwnerKind kind);

struct FrameOwner {
  FrameOwnerKind kind = FrameOwnerKind::kHypervisor;
  uint64_t id = 0;

  bool operator==(const FrameOwner&) const = default;
};

// A contiguous guest-physical -> machine-physical mapping: `frames` pages
// starting at `gfn` map to `frames` frames starting at `mfn`.
struct GuestMapping {
  Gfn gfn = 0;
  Mfn mfn = 0;
  uint64_t frames = 0;

  Gfn gfn_end() const { return gfn + frames; }
  bool operator==(const GuestMapping&) const = default;
};

// A contiguous run of allocated frames.
struct FrameExtent {
  Mfn base = 0;
  uint64_t count = 0;
  FrameOwner owner;

  uint64_t end() const { return base + count; }  // One past the last frame.
  bool Contains(Mfn mfn) const { return mfn >= base && mfn < end(); }
};

class PhysicalMemory {
 public:
  // `bytes` must be a multiple of the page size.
  explicit PhysicalMemory(uint64_t bytes);

  uint64_t total_frames() const { return total_frames_; }
  uint64_t total_bytes() const { return total_frames_ * kPageSize; }
  uint64_t free_frames() const { return free_frames_; }
  uint64_t allocated_frames() const { return total_frames_ - free_frames_; }

  // Allocates `count` contiguous frames whose base is a multiple of
  // `align_frames` (>= 1). First fit. Fails with kResourceExhausted when no
  // suitable hole exists.
  Result<Mfn> Alloc(uint64_t count, uint64_t align_frames, FrameOwner owner);
  // Single-frame convenience.
  Result<Mfn> AllocFrame(FrameOwner owner) { return Alloc(1, 1, owner); }
  // 2 MiB-aligned huge-page allocation (512 frames).
  Result<Mfn> AllocHugePage(FrameOwner owner) {
    return Alloc(kFramesPerHugePage, kFramesPerHugePage, owner);
  }

  // Frees exactly the extent previously returned by Alloc (base must match).
  Result<void> Free(Mfn base, uint64_t count);
  // Frees every extent with this owner; returns the number of frames freed.
  uint64_t FreeAllOwnedBy(FrameOwner owner);

  // Content access. Reads of never-written frames return 0 (freshly scrubbed).
  Result<void> WriteWord(Mfn mfn, uint64_t content);
  Result<uint64_t> ReadWord(Mfn mfn) const;

  // Full-page byte payloads, used for small metadata frames (PRAM pages,
  // staged kernel images) that need real contents. At most kPageSize bytes.
  // Payloads are destroyed by Free/Scrub just like content words.
  Result<void> WritePage(Mfn mfn, std::vector<uint8_t> bytes);
  // Empty result for allocated-but-never-written frames.
  Result<std::vector<uint8_t>> ReadPage(Mfn mfn) const;

  // Contiguous byte backing for a whole frame run, the storage under the
  // zero-copy UISR save path: encoders write wire bytes straight into the
  // returned span (PramFrameWriter) and the restore side decodes from it
  // without per-page reassembly. [base, base+frames) must lie inside one
  // allocated extent. The storage is frames * kPageSize zero-initialized
  // bytes; re-backing the same (base, frames) resets it. WritePage/ReadPage
  // on a backed frame operate on the corresponding page-sized slice, so
  // page-level corruption (and its detection) behaves exactly as with
  // per-page payloads. Backings die with their frames on Free/Scrub.
  //
  // `skip_zero_prefix` is the caller's promise that it will overwrite the
  // first that many bytes before anything reads them: those bytes come back
  // uninitialized and only the remainder is zeroed. This is what lets the
  // zero-copy encode pay for one memory pass instead of a zero-fill followed
  // by a full overwrite. The default (0) zeroes everything.
  Result<std::span<uint8_t>> BackExtent(Mfn base, uint64_t frames,
                                        uint64_t skip_zero_prefix = 0);
  // Read view of the backing previously created for exactly (base, frames);
  // kNotFound when that exact run was never backed (caller falls back to
  // page-wise reads).
  Result<std::span<const uint8_t>> BackedExtent(Mfn base, uint64_t frames) const;

  // True when `mfn` lies inside an allocated extent.
  bool IsAllocated(Mfn mfn) const;
  // Owner of the extent containing `mfn`, or error when free/out of range.
  Result<FrameOwner> OwnerOf(Mfn mfn) const;

  // All allocated extents in address order.
  std::vector<FrameExtent> AllocatedExtents() const;
  // All allocated extents with the given owner kind (any id).
  std::vector<FrameExtent> ExtentsOfKind(FrameOwnerKind kind) const;

  // Micro-reboot scrubber: frees every allocated extent that is not fully
  // covered by `preserved`, and zeroes the content words of reclaimed frames.
  // Returns the number of frames scrubbed. Extents in `preserved` must be
  // allocated; their ownership and contents are left untouched.
  uint64_t ScrubExcept(const std::vector<FrameExtent>& preserved);

  // Read-only view of all non-zero content words (sparse). Used by guest
  // address spaces to enumerate a VM's written pages cheaply.
  const std::unordered_map<Mfn, uint64_t>& content_words() const { return content_; }

  // Adjusts the recorded owner of an existing allocated extent (used when the
  // new hypervisor adopts preserved frames after the micro-reboot).
  Result<void> Reassign(Mfn base, uint64_t count, FrameOwner new_owner);

 private:
  // Merges [base, base+count) into the free map, coalescing neighbors.
  void InsertFree(Mfn base, uint64_t count);

  // Backing storage: default-initialized so BackExtent can zero only the
  // bytes its caller will not overwrite (std::vector would memset it all).
  // Deep-copies so PhysicalMemory (and Machine) stay copyable.
  struct BackingBytes {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;

    BackingBytes() = default;
    BackingBytes(BackingBytes&&) = default;
    BackingBytes& operator=(BackingBytes&&) = default;
    BackingBytes(const BackingBytes& other)
        : data(other.size > 0 ? new uint8_t[other.size] : nullptr), size(other.size) {
      if (size > 0) {
        std::copy(other.data.get(), other.data.get() + size, data.get());
      }
    }
    BackingBytes& operator=(const BackingBytes& other) {
      if (this != &other) {
        BackingBytes copy(other);
        data = std::move(copy.data);
        size = copy.size;
      }
      return *this;
    }
  };

  // Drops extent backings overlapping [base, base+count) (frames going away).
  void DropBackingsIn(Mfn base, uint64_t count);
  // The backing containing `mfn`, or nullptr. Non-const twin for writes.
  const BackingBytes* BackingFor(Mfn mfn, Mfn* backing_base) const;
  BackingBytes* BackingFor(Mfn mfn, Mfn* backing_base);

  uint64_t total_frames_;
  uint64_t free_frames_;
  // base -> count of free holes, disjoint and coalesced.
  std::map<Mfn, uint64_t> free_;
  // base -> extent for allocated runs, disjoint.
  std::map<Mfn, FrameExtent> allocated_;
  // Sparse content words: only frames that were written appear here.
  std::unordered_map<Mfn, uint64_t> content_;
  // Sparse full-page payloads for metadata frames.
  std::unordered_map<Mfn, std::vector<uint8_t>> pages_;
  // Contiguous multi-frame backings (base -> frames * kPageSize bytes),
  // disjoint from each other; frames here never also appear in pages_.
  std::map<Mfn, BackingBytes> backed_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_HW_PHYSICAL_MEMORY_H_
