// Simulated physical server: CPU topology, RAM, NIC, and the per-machine cost
// profile that calibrates how long host-side operations take on it.

#ifndef HYPERTP_SRC_HW_MACHINE_H_
#define HYPERTP_SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/hw/physical_memory.h"
#include "src/sim/time.h"

namespace hypertp {

// Per-machine unit costs for host-side operations. The defaults for M1/M2 are
// calibrated so that the simulated phase durations land on the paper's Fig. 6
// numbers for a 1 vCPU / 1 GiB VM; every scaling behaviour (Fig. 7/10) then
// emerges from the mechanics (parallel workers, per-GB walks, sequential
// early-boot parsing) rather than from further fitting.
//
// Unit note: every `*_per_gb` field is the cost per binary gibibyte
// (1 GiB = 1 << 30 bytes) of guest memory, not per decimal gigabyte — the
// cost model (src/pipeline/conversion.cc:ScalePerGiB) divides byte counts by
// 1 << 30. The historical `_gb` suffix is kept for config compatibility;
// read it as GiB when calibrating.
struct HostCostProfile {
  // PRAM construction: walking a VM's P2M/memslots and emitting page entries.
  SimDuration pram_fixed = Millis(50);
  SimDuration pram_per_gb = Millis(400);

  // UISR translation of one VM's platform + device state.
  SimDuration translate_per_vm = Millis(60);
  SimDuration translate_per_vcpu = Millis(15);
  SimDuration translate_per_gb = Millis(5);  // Finalizing the PRAM file entry.

  // Generation comparison + cached-blob adoption when a speculative
  // pre-translation hits at pause time (src/pipeline/pretranslate.h); a
  // small constant instead of a full per-VM translate.
  SimDuration pretranslate_check = Micros(500);

  // UISR restoration into the target hypervisor's native format.
  SimDuration restore_per_vm = Millis(100);
  SimDuration restore_per_vcpu = Millis(10);
  SimDuration restore_per_gb = Millis(10);

  // Micro-reboot components.
  SimDuration kexec_jump = Millis(90);        // Quiesce + jump to new kernel.
  SimDuration boot_linux = Millis(1350);      // Linux/KVM host kernel boot.
  SimDuration boot_xen = Millis(4000);        // Xen core boot (type-I, stage 1).
  SimDuration boot_dom0 = Millis(2800);       // dom0 kernel boot (type-I, stage 2).
  SimDuration pram_parse_per_gb = Millis(80); // Sequential early-boot PRAM parse.

  // Physical NIC re-initialization after the micro-reboot (Fig. 6 "Network").
  SimDuration nic_init = SecondsF(6.6);
};

struct MachineProfile {
  std::string name;
  int sockets = 1;
  int cores = 4;           // Physical cores, total across sockets.
  int threads = 8;         // Hardware threads, total.
  double base_ghz = 2.5;
  uint64_t ram_bytes = 16ull << 30;
  double network_gbps = 1.0;
  HostCostProfile costs;

  // Paper Table 3: Intel i5-8400H, 4c/8t 2.5 GHz, 16 GB RAM, 1 Gbps.
  static MachineProfile M1();
  // Paper Table 3: 2x Xeon E5-2650L v4, 14c/28t 1.7 GHz, 64 GB RAM, 1 Gbps.
  static MachineProfile M2();
  // Paper §5.1 cluster node: 2x Xeon E5-2630 v3, 96 GB RAM, 10 Gbps.
  static MachineProfile C1();
};

// A physical server in the simulated datacenter.
class Machine {
 public:
  Machine(MachineProfile profile, uint64_t id);

  uint64_t id() const { return id_; }
  const MachineProfile& profile() const { return profile_; }
  const std::string& hostname() const { return hostname_; }
  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }

  // The paper reserves 2 CPUs for the administration OS (dom0 / host Linux);
  // host-side parallel work (PRAM construction, translation) uses the rest.
  int admin_threads() const { return 2; }
  int worker_threads() const { return profile_.threads > 2 ? profile_.threads - 2 : 1; }

 private:
  MachineProfile profile_;
  uint64_t id_;
  std::string hostname_;
  PhysicalMemory memory_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_HW_MACHINE_H_
