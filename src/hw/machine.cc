#include "src/hw/machine.h"

namespace hypertp {

MachineProfile MachineProfile::M1() {
  MachineProfile p;
  p.name = "M1";
  p.sockets = 1;
  p.cores = 4;
  p.threads = 8;
  p.base_ghz = 2.5;
  p.ram_bytes = 16ull << 30;
  p.network_gbps = 1.0;
  // Calibrated to Fig. 6 (M1 column): PRAM 0.45 s, Translation 0.08 s,
  // Reboot 1.52 s, Restoration 0.12 s, network wait 6.6 s, and to Fig. 10
  // (KVM->Xen total 7.6 s, dominated by the Xen + dom0 two-kernel boot).
  p.costs.pram_fixed = Millis(50);
  p.costs.pram_per_gb = Millis(400);
  p.costs.translate_per_vm = Millis(60);
  p.costs.translate_per_vcpu = Millis(15);
  p.costs.translate_per_gb = Millis(5);
  p.costs.restore_per_vm = Millis(100);
  p.costs.restore_per_vcpu = Millis(10);
  p.costs.restore_per_gb = Millis(10);
  p.costs.kexec_jump = Millis(90);
  p.costs.boot_linux = Millis(1350);
  p.costs.boot_xen = Millis(4000);
  p.costs.boot_dom0 = Millis(2800);
  p.costs.pram_parse_per_gb = Millis(80);
  p.costs.nic_init = SecondsF(6.6);
  return p;
}

MachineProfile MachineProfile::M2() {
  MachineProfile p;
  p.name = "M2";
  p.sockets = 2;
  p.cores = 14;
  p.threads = 28;
  p.base_ghz = 1.7;
  p.ram_bytes = 64ull << 30;
  p.network_gbps = 1.0;
  // Calibrated to Fig. 6 (M2 column): PRAM 0.5 s, Translation 0.24 s,
  // Reboot 2.40 s, Restoration 0.34 s, network wait 2.3 s, and to Fig. 10
  // (KVM->Xen total 17.8 s).
  p.costs.pram_fixed = Millis(100);
  p.costs.pram_per_gb = Millis(400);
  p.costs.translate_per_vm = Millis(200);
  p.costs.translate_per_vcpu = Millis(35);
  p.costs.translate_per_gb = Millis(5);
  p.costs.restore_per_vm = Millis(300);
  p.costs.restore_per_vcpu = Millis(20);
  p.costs.restore_per_gb = Millis(20);
  p.costs.kexec_jump = Millis(100);
  p.costs.boot_linux = Millis(2200);
  p.costs.boot_xen = Millis(9500);
  p.costs.boot_dom0 = Millis(7000);
  p.costs.pram_parse_per_gb = Millis(100);
  p.costs.nic_init = SecondsF(2.3);
  return p;
}

MachineProfile MachineProfile::C1() {
  MachineProfile p;
  p.name = "C1";
  p.sockets = 2;
  p.cores = 16;
  p.threads = 32;
  p.base_ghz = 2.4;
  p.ram_bytes = 96ull << 30;
  p.network_gbps = 10.0;
  // Cluster nodes reuse M1-like unit costs with a server-class NIC and a
  // Linux-class boot; only the shapes matter for Fig. 13.
  p.costs = MachineProfile::M1().costs;
  p.costs.nic_init = SecondsF(2.0);
  p.costs.boot_linux = Millis(1800);
  return p;
}

Machine::Machine(MachineProfile profile, uint64_t id)
    : profile_(std::move(profile)),
      id_(id),
      hostname_(profile_.name + "-" + std::to_string(id)),
      memory_(profile_.ram_bytes) {}

}  // namespace hypertp
