#include "src/xen/xenvisor.h"

#include "src/base/logging.h"
#include "src/hv/devices.h"
#include "src/xen/xen_uisr.h"

namespace hypertp {
namespace {

// Xen core (text, heap, frametable) and dom0 memory, as HV State.
constexpr uint64_t kXenHeapBytes = 192ull << 20;
constexpr uint64_t kDom0Bytes = 1536ull << 20;
// Guest memory is allocated in chunks of this many frames (128 MiB), with
// NPT allocations interleaved between chunks — the realistic scatter that
// PRAM exists to describe.
constexpr uint64_t kGuestChunkFrames = 32768;

}  // namespace

XenVisor::XenVisor(Machine& machine)
    : machine_(&machine), scheduler_(machine.profile().threads) {
  // Boot: the Xen core and dom0 claim their RAM (HV State). Allocation is
  // chunked because after a micro-reboot free RAM is fragmented around the
  // preserved guest frames — neither Xen's heap nor dom0 needs physically
  // contiguous memory.
  const FrameOwner hv{FrameOwnerKind::kHypervisor, 0};
  uint64_t remaining = (kXenHeapBytes + kDom0Bytes) / kPageSize;
  uint64_t chunk = kGuestChunkFrames;
  while (remaining > 0 && chunk > 0) {
    const uint64_t want = std::min(remaining, chunk);
    auto mfn = machine_->memory().Alloc(want, 1, hv);
    if (mfn.ok()) {
      hv_frames_ += want;
      remaining -= want;
    } else {
      chunk /= 2;  // Fall back to smaller pieces in fragmented holes.
    }
  }
  if (remaining > 0) {
    HYPERTP_LOG(kError, "xen") << "boot: machine too small for Xen + dom0";
  }
  HYPERTP_LOG(kInfo, "xen") << "xenvisor-4.12 booted on " << machine_->hostname();
}

XenVisor::~XenVisor() {
  // A cleanly shut down hypervisor releases everything it owns. After
  // DetachForMicroReboot() there is nothing left to release — the scrubber
  // owns the machine's fate.
  for (auto& [domid, domain] : domains_) {
    FreeDomainFrames(domain);
  }
  if (hv_frames_ > 0) {
    machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kHypervisor, 0});
  }
}

Result<XenDomain*> XenVisor::MutableDomain(VmId id) {
  auto it = domains_.find(static_cast<uint32_t>(id));
  if (it == domains_.end()) {
    return NotFoundError("xen: no domain " + std::to_string(id));
  }
  return &it->second;
}

Result<const XenDomain*> XenVisor::FindDomain(VmId id) const {
  auto it = domains_.find(static_cast<uint32_t>(id));
  if (it == domains_.end()) {
    return NotFoundError("xen: no domain " + std::to_string(id));
  }
  return &it->second;
}

Result<VmId> XenVisor::FindVmByUid(uint64_t uid) const {
  for (const auto& [domid, domain] : domains_) {
    if (domain.uid == uid) {
      return static_cast<VmId>(domid);
    }
  }
  return NotFoundError("xen: no domain with uid " + std::to_string(uid));
}

Result<void> XenVisor::AllocateGuestMemory(XenDomain& domain) {
  const FrameOwner owner{FrameOwnerKind::kGuest, domain.uid};
  const FrameOwner state_owner{FrameOwnerKind::kVmState, domain.uid};
  uint64_t remaining = domain.memory_bytes / kPageSize;
  Gfn gfn = 0;
  const uint64_t align = domain.huge_pages ? kFramesPerHugePage : 1;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kGuestChunkFrames);
    // Interleave a small NPT allocation first: this is what scatters guest
    // memory across the machine.
    const uint64_t npt_piece = chunk / 512 + 1;
    HYPERTP_ASSIGN_OR_RETURN(Mfn npt_mfn, machine_->memory().Alloc(npt_piece, 1, state_owner));
    (void)npt_mfn;
    domain.npt_frames += npt_piece;

    HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, machine_->memory().Alloc(chunk, align, owner));
    HYPERTP_RETURN_IF_ERROR(domain.p2m.MapExtent(gfn, mfn, chunk));
    gfn += chunk;
    remaining -= chunk;
  }
  return OkResult();
}

Result<void> XenVisor::AdoptGuestMemory(XenDomain& domain,
                                        const std::vector<PramPageEntry>& entries) {
  const FrameOwner owner{FrameOwnerKind::kGuest, domain.uid};
  for (const PramPageEntry& e : entries) {
    // The frames must have survived the reboot (still allocated, still owned
    // by this VM's uid) — anything else means the PRAM reservation failed.
    for (Mfn m = e.mfn; m < e.mfn + e.frame_count(); ++m) {
      HYPERTP_ASSIGN_OR_RETURN(FrameOwner actual, machine_->memory().OwnerOf(m));
      if (!(actual == owner)) {
        return DataLossError("xen: in-place frame " + std::to_string(m) +
                             " not owned by guest uid " + std::to_string(domain.uid));
      }
    }
    HYPERTP_RETURN_IF_ERROR(domain.p2m.MapExtent(e.gfn, e.mfn, e.frame_count()));
  }
  if (domain.p2m.mapped_frames() != domain.memory_bytes / kPageSize) {
    return DataLossError("xen: PRAM file covers " + std::to_string(domain.p2m.mapped_frames()) +
                         " frames, VM declares " +
                         std::to_string(domain.memory_bytes / kPageSize));
  }
  return OkResult();
}

Result<void> XenVisor::AllocateVmStateFrames(XenDomain& domain) {
  const FrameOwner state_owner{FrameOwnerKind::kVmState, domain.uid};
  // vCPU contexts, LAPIC pages, shared info.
  const uint64_t context_frames = domain.hvm.vcpus.size() + 2;
  HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, machine_->memory().Alloc(context_frames, 1, state_owner));
  (void)mfn;
  domain.npt_frames += context_frames;
  return OkResult();
}

void XenVisor::SetupPvInfrastructure(XenDomain& domain) {
  domain.event_channels.clear();
  uint32_t port = 1;
  // xenstore + console channels.
  domain.event_channels.push_back({port++, XenEventChannel::Type::kInterdomain, 0, false});
  domain.event_channels.push_back({port++, XenEventChannel::Type::kInterdomain, 0, false});
  // Two channels per virtio-style PV device.
  for (const UisrDeviceState& dev : domain.devices) {
    if (dev.model.starts_with("virtio")) {
      domain.event_channels.push_back({port++, XenEventChannel::Type::kInterdomain, 0, false});
      domain.event_channels.push_back({port++, XenEventChannel::Type::kInterdomain, 0, false});
    }
  }
  // Grant table: two ring pages per PV device, granted to dom0's backends.
  // The GFNs land in the guest's low memory (where PV frontends place rings).
  domain.grant_table.clear();
  uint32_t ref = 8;  // Refs 0-7 are reserved in real Xen.
  Gfn ring_gfn = 256;
  for (const UisrDeviceState& dev : domain.devices) {
    if (dev.model.starts_with("virtio")) {
      domain.grant_table.push_back({ref++, ring_gfn++, 0x1, 0});
      domain.grant_table.push_back({ref++, ring_gfn++, 0x1, 0});
    }
  }
  domain.xenstore.clear();
  domain.xenstore["name"] = domain.name;
  domain.xenstore["memory/target"] = std::to_string(domain.memory_bytes >> 10);
  domain.xenstore["vm"] = "/vm/" + std::to_string(domain.uid);
}

void XenVisor::FreeDomainFrames(const XenDomain& domain) {
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kGuest, domain.uid});
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kVmState, domain.uid});
}

Result<VmId> XenVisor::CreateVm(const VmConfig& config) {
  HYPERTP_RETURN_IF_ERROR(ValidateVmConfig(config, 128));

  XenDomain domain;
  domain.domid = next_domid_++;
  domain.uid = config.uid != 0 ? config.uid : AllocateVmUid();
  domain.name = config.name;
  domain.memory_bytes = config.memory_bytes;
  domain.huge_pages = config.huge_pages;
  for (const auto& [domid, existing] : domains_) {
    if (existing.uid == domain.uid) {
      return AlreadyExistsError("xen: uid " + std::to_string(domain.uid) + " already hosted");
    }
  }

  // Seed the platform state in Xen-native format from the canonical
  // post-boot architectural state.
  FixupLog seed_log;
  for (uint32_t i = 0; i < config.vcpus; ++i) {
    HYPERTP_ASSIGN_OR_RETURN(XenVcpuContext ctx,
                             XenVcpuFromUisr(MakeSyntheticVcpu(domain.uid, i), domain.uid,
                                             &seed_log));
    domain.hvm.vcpus.push_back(std::move(ctx));
  }
  // Xen wires devices to high IOAPIC pins (>= 24) — the exact situation that
  // forces the pin fixup when transplanting to KVM's 24-pin IOAPIC (§4.2.1).
  domain.hvm.ioapic.id = 0;
  domain.hvm.ioapic.redirtbl[4] = 0x10004;  // COM1 -> vector 0x34-ish pattern.
  uint32_t instance = 0;
  for (const DeviceConfig& dev_config : config.devices) {
    HYPERTP_ASSIGN_OR_RETURN(
        UisrDeviceState dev,
        MakeDefaultDeviceState(dev_config.model, instance, domain.uid, dev_config.mode));
    if (dev_config.model.starts_with("virtio")) {
      domain.hvm.ioapic.redirtbl[24 + instance] = 0x10020 + instance;
    }
    domain.devices.push_back(std::move(dev));
    ++instance;
  }
  domain.hvm.pit.channels[0].count = 0x4A9;  // ~100 Hz timer tick.
  domain.hvm.pit.channels[0].mode = 2;
  domain.hvm.pit.channels[0].gate = 1;

  HYPERTP_RETURN_IF_ERROR(AllocateGuestMemory(domain));
  HYPERTP_RETURN_IF_ERROR(AllocateVmStateFrames(domain));
  SetupPvInfrastructure(domain);

  for (uint32_t i = 0; i < config.vcpus; ++i) {
    scheduler_.AddVcpu(domain.domid, i, domain.sched_weight);
  }

  const VmId id = domain.domid;
  domains_.emplace(domain.domid, std::move(domain));
  HYPERTP_LOG(kInfo, "xen") << "created domain " << id << " '" << config.name << "' ("
                            << config.vcpus << " vCPU, " << (config.memory_bytes >> 20)
                            << " MiB)";
  return id;
}

Result<void> XenVisor::DestroyVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  FreeDomainFrames(*domain);
  scheduler_.RemoveDomain(domain->domid);
  domains_.erase(static_cast<uint32_t>(id));
  return OkResult();
}

Result<void> XenVisor::PauseVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  domain->run_state = VmRunState::kPaused;
  return OkResult();
}

Result<void> XenVisor::ResumeVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  domain->run_state = VmRunState::kRunning;
  return OkResult();
}

Result<VmInfo> XenVisor::GetVmInfo(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const XenDomain* domain, FindDomain(id));
  VmInfo info;
  info.id = id;
  info.uid = domain->uid;
  info.name = domain->name;
  info.vcpus = static_cast<uint32_t>(domain->hvm.vcpus.size());
  info.memory_bytes = domain->memory_bytes;
  info.huge_pages = domain->huge_pages;
  for (const UisrDeviceState& dev : domain->devices) {
    info.has_passthrough |= dev.mode == DeviceAttachMode::kPassthrough;
  }
  info.run_state = domain->run_state;
  return info;
}

std::vector<VmId> XenVisor::ListVms() const {
  std::vector<VmId> ids;
  ids.reserve(domains_.size());
  for (const auto& [domid, domain] : domains_) {
    ids.push_back(domid);
  }
  return ids;
}

Result<std::vector<GuestMapping>> XenVisor::GuestMemoryMap(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const XenDomain* domain, FindDomain(id));
  return domain->p2m.mappings();
}

Result<uint64_t> XenVisor::ReadGuestPage(VmId id, Gfn gfn) const {
  HYPERTP_ASSIGN_OR_RETURN(const XenDomain* domain, FindDomain(id));
  return domain->p2m.Read(machine_->memory(), gfn);
}

Result<void> XenVisor::WriteGuestPage(VmId id, Gfn gfn, uint64_t content) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  ++domain->state_generation;
  return domain->p2m.Write(machine_->memory(), gfn, content);
}

Result<void> XenVisor::AdvanceGuestClocks(VmId id, SimDuration delta) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  for (XenVcpuContext& vcpu : domain->hvm.vcpus) {
    vcpu.cpu.tsc += static_cast<uint64_t>(delta);
    if (vcpu.lapic.tsc_deadline != 0) {
      vcpu.lapic.tsc_deadline += static_cast<uint64_t>(delta);
    }
  }
  ++domain->state_generation;
  return OkResult();
}

Result<uint64_t> XenVisor::StateGeneration(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const XenDomain* domain, FindDomain(id));
  return domain->state_generation;
}

Result<void> XenVisor::InjectGuestEvent(VmId id, GuestEventKind kind) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  if (domain->run_state != VmRunState::kRunning) {
    return FailedPreconditionError("xen: cannot inject guest events into a paused domain");
  }
  switch (kind) {
    case GuestEventKind::kTimerTick:
      // 1 ms LAPIC timer period on the virtual 1 GHz TSC; the deadline
      // re-arms, so the translated LAPIC record changes too.
      for (XenVcpuContext& vcpu : domain->hvm.vcpus) {
        vcpu.cpu.tsc += 1'000'000;
        vcpu.lapic.tsc_deadline = vcpu.cpu.tsc + 1'000'000;
      }
      break;
    case GuestEventKind::kEventChannel:
      // PV notification activity. Event channels are rebuilt, never
      // translated, so this dirties the domain without changing its UISR —
      // the pre-translation cache must treat it as an invalidation anyway.
      if (!domain->event_channels.empty()) {
        domain->event_channels.front().pending = !domain->event_channels.front().pending;
      }
      break;
    case GuestEventKind::kWorkloadStep:
      // A scheduling quantum of guest execution: registers move.
      for (XenVcpuContext& vcpu : domain->hvm.vcpus) {
        vcpu.cpu.tsc += 10'000'000;
        vcpu.cpu.rip += 0x40;
        vcpu.cpu.rax += 1;
      }
      break;
  }
  ++domain->state_generation;
  return OkResult();
}

Result<void> XenVisor::EnableDirtyLogging(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  domain->p2m.EnableDirtyLog();
  return OkResult();
}

Result<std::vector<Gfn>> XenVisor::FetchAndClearDirtyLog(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  if (!domain->p2m.dirty_log_enabled()) {
    return FailedPreconditionError("xen: dirty logging not enabled");
  }
  return domain->p2m.FetchAndClearDirty();
}

Result<void> XenVisor::DisableDirtyLogging(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  domain->p2m.DisableDirtyLog();
  return OkResult();
}

Result<void> XenVisor::PrepareVmForTransplant(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(XenDomain * domain, MutableDomain(id));
  // Quiescing/unplugging changes translated device state.
  ++domain->state_generation;
  return PrepareDevicesForTransplant(domain->devices);
}

Result<UisrVm> XenVisor::SaveVmToUisr(VmId id, FixupLog* log) {
  HYPERTP_ASSIGN_OR_RETURN(const XenDomain* domain, FindDomain(id));
  if (domain->run_state != VmRunState::kPaused) {
    return FailedPreconditionError("xen: domain must be paused before UISR translation");
  }

  UisrVm vm;
  vm.vm_uid = domain->uid;
  vm.name = domain->name;
  vm.source_hypervisor = std::string(name());
  vm.memory.memory_bytes = domain->memory_bytes;
  vm.memory.uses_huge_pages = domain->huge_pages;

  HYPERTP_RETURN_IF_ERROR(XenPlatformToUisr(domain->hvm, vm));

  for (const UisrDeviceState& dev : domain->devices) {
    HYPERTP_RETURN_IF_ERROR(ValidateDeviceForTransplant(dev));
    vm.devices.push_back(dev);
    if (dev.mode == DeviceAttachMode::kUnplugged && log != nullptr) {
      log->push_back({domain->uid, dev.model, "unplugged before transplant; will rescan"});
    }
  }
  return vm;
}

Result<VmId> XenVisor::RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                         FixupLog* log) {
  for (const auto& [domid, existing] : domains_) {
    if (existing.uid == uisr.vm_uid) {
      return AlreadyExistsError("xen: uid " + std::to_string(uisr.vm_uid) + " already hosted");
    }
  }

  XenDomain domain;
  domain.domid = next_domid_++;
  domain.uid = uisr.vm_uid;
  domain.name = uisr.name;
  domain.memory_bytes = uisr.memory.memory_bytes;
  domain.huge_pages = uisr.memory.uses_huge_pages;
  domain.run_state = VmRunState::kPaused;

  // from_uisr: translate the platform into Xen's native formats.
  HYPERTP_ASSIGN_OR_RETURN(domain.hvm, XenPlatformFromUisr(uisr, log));
  domain.devices = uisr.devices;

  switch (binding.mode) {
    case GuestMemoryBinding::Mode::kAdoptInPlace:
      HYPERTP_RETURN_IF_ERROR(AdoptGuestMemory(domain, binding.entries));
      break;
    case GuestMemoryBinding::Mode::kAllocate:
      HYPERTP_RETURN_IF_ERROR(AllocateGuestMemory(domain));
      break;
  }
  HYPERTP_RETURN_IF_ERROR(AllocateVmStateFrames(domain));

  // Rebuild VM Management State: PV infrastructure and scheduler membership.
  SetupPvInfrastructure(domain);
  for (uint32_t i = 0; i < domain.hvm.vcpus.size(); ++i) {
    scheduler_.AddVcpu(domain.domid, i, domain.sched_weight);
  }

  const VmId id = domain.domid;
  domains_.emplace(domain.domid, std::move(domain));
  HYPERTP_LOG(kInfo, "xen") << "restored domain " << id << " (uid " << uisr.vm_uid
                            << ") from UISR via "
                            << (binding.mode == GuestMemoryBinding::Mode::kAdoptInPlace
                                    ? "in-place adoption"
                                    : "fresh allocation");
  return id;
}

uint64_t XenVisor::HypervisorFrames() const { return hv_frames_; }

Result<std::vector<std::pair<Gfn, uint64_t>>> XenVisor::DumpGuestContent(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const XenDomain* domain, FindDomain(id));
  return domain->p2m.DumpNonZero(machine_->memory());
}

void XenVisor::DetachForMicroReboot() {
  // The kexec jump is imminent: forget every domain and all ownership
  // without freeing a single frame — the early-boot scrubber decides what
  // survives based on the PRAM reservation, not on us.
  domains_.clear();
  scheduler_ = CreditScheduler(machine_->profile().threads);
  hv_frames_ = 0;
}

void XenVisor::RebuildScheduler() {
  scheduler_ = CreditScheduler(machine_->profile().threads);
  for (const auto& [domid, domain] : domains_) {
    for (uint32_t i = 0; i < domain.hvm.vcpus.size(); ++i) {
      scheduler_.AddVcpu(domid, i, domain.sched_weight);
    }
  }
}

}  // namespace hypertp
