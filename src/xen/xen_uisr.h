// XenVisor's UISR translation layer: the to_uisr_* / from_uisr_* functions
// of the paper (§3.1), written against Xen's native record formats.

#ifndef HYPERTP_SRC_XEN_XEN_UISR_H_
#define HYPERTP_SRC_XEN_XEN_UISR_H_

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/uisr/records.h"
#include "src/xen/xen_formats.h"

namespace hypertp {

// Translates one vCPU's Xen records into the neutral form. Lossless for
// every field UISR carries; Xen-internal bookkeeping (xcr0_accum) is dropped.
Result<UisrVcpu> XenVcpuToUisr(const XenVcpuContext& ctx);

// Translates a neutral vCPU into Xen records. MSRs that have no fixed slot
// in Xen's HVM CPU record are dropped with a fixup entry. FS/GS base MSRs
// are folded into the segment bases (they are the same architectural state).
Result<XenVcpuContext> XenVcpuFromUisr(const UisrVcpu& vcpu, uint64_t vm_uid, FixupLog* log);

// Whole-platform translation (vCPUs + IOAPIC + PIT) into an existing UisrVm
// whose header fields (uid, name, memory) the caller has already filled.
Result<void> XenPlatformToUisr(const XenHvmContext& ctx, UisrVm& out);

// Whole-platform translation from UISR into a fresh Xen HVM context.
// A UISR IOAPIC wider than Xen's 48 pins is rejected; narrower ones are
// zero-extended (no fixup needed — extra pins simply stay disconnected).
Result<XenHvmContext> XenPlatformFromUisr(const UisrVm& vm, FixupLog* log);

}  // namespace hypertp

#endif  // HYPERTP_SRC_XEN_XEN_UISR_H_
