#include "src/xen/credit_scheduler.h"

#include <algorithm>
#include <cassert>

namespace hypertp {
namespace {

constexpr int32_t kCreditsPerEpoch = 300;  // Xen's CSCHED_CREDITS_PER_ACCT.

}  // namespace

CreditScheduler::CreditScheduler(int pcpus) {
  assert(pcpus >= 1);
  runqueues_.resize(static_cast<size_t>(pcpus));
}

void CreditScheduler::AddVcpu(uint32_t domid, uint32_t vcpu, uint32_t weight) {
  auto it = std::min_element(
      runqueues_.begin(), runqueues_.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  it->push_back(CreditEntry{domid, vcpu, weight, kCreditsPerEpoch});
}

void CreditScheduler::RemoveDomain(uint32_t domid) {
  for (auto& queue : runqueues_) {
    std::erase_if(queue, [domid](const CreditEntry& e) { return e.domid == domid; });
  }
}

void CreditScheduler::Tick() {
  // Total weight for proportional refill.
  uint64_t total_weight = 0;
  for (const auto& queue : runqueues_) {
    for (const CreditEntry& e : queue) {
      total_weight += e.weight;
    }
  }
  if (total_weight == 0) {
    return;
  }
  for (auto& queue : runqueues_) {
    if (queue.empty()) {
      continue;
    }
    // The head runs and burns credits; everyone refills by weight share.
    queue.front().credits -= kCreditsPerEpoch;
    for (CreditEntry& e : queue) {
      e.credits += static_cast<int32_t>(kCreditsPerEpoch * e.weight / total_weight);
    }
    // Exhausted head goes to the tail (OVER priority).
    if (queue.front().credits < 0 && queue.size() > 1) {
      std::rotate(queue.begin(), queue.begin() + 1, queue.end());
    }
  }
}

void CreditScheduler::Rebalance() {
  for (;;) {
    auto longest = std::max_element(
        runqueues_.begin(), runqueues_.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    auto shortest = std::min_element(
        runqueues_.begin(), runqueues_.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (longest->size() <= shortest->size() + 1) {
      return;
    }
    shortest->push_back(longest->back());
    longest->pop_back();
  }
}

size_t CreditScheduler::total_vcpus() const {
  size_t n = 0;
  for (const auto& queue : runqueues_) {
    n += queue.size();
  }
  return n;
}

}  // namespace hypertp
