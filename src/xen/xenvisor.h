// XenVisor: the simulated type-I hypervisor.
//
// Runs on the bare (simulated) machine: the Xen core plus a dom0 Linux own a
// slice of RAM as HV State; guests are XenDomain records whose platform state
// lives in Xen's native formats (src/xen/xen_formats.h). Guest memory is
// allocated through a chunked policy that interleaves NPT allocations, so a
// domain's frames are scattered — which is what makes PRAM's scatter-gather
// description necessary (paper §4.2.2).

#ifndef HYPERTP_SRC_XEN_XENVISOR_H_
#define HYPERTP_SRC_XEN_XENVISOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hv/hypervisor.h"
#include "src/xen/credit_scheduler.h"
#include "src/xen/xen_domain.h"

namespace hypertp {

class XenVisor : public Hypervisor {
 public:
  // Boots XenVisor on `machine`: allocates the Xen heap and dom0 memory.
  explicit XenVisor(Machine& machine);
  ~XenVisor() override;

  XenVisor(const XenVisor&) = delete;
  XenVisor& operator=(const XenVisor&) = delete;

  std::string_view name() const override { return "xenvisor-4.12"; }
  HypervisorKind kind() const override { return HypervisorKind::kXen; }
  HypervisorType type() const override { return HypervisorType::kType1; }
  Machine& machine() override { return *machine_; }
  const Machine& machine() const override { return *machine_; }

  Result<VmId> CreateVm(const VmConfig& config) override;
  Result<void> DestroyVm(VmId id) override;
  Result<void> PauseVm(VmId id) override;
  Result<void> ResumeVm(VmId id) override;
  Result<VmInfo> GetVmInfo(VmId id) const override;
  std::vector<VmId> ListVms() const override;

  Result<std::vector<GuestMapping>> GuestMemoryMap(VmId id) const override;
  Result<uint64_t> ReadGuestPage(VmId id, Gfn gfn) const override;
  Result<void> WriteGuestPage(VmId id, Gfn gfn, uint64_t content) override;

  Result<void> AdvanceGuestClocks(VmId id, SimDuration delta) override;

  Result<uint64_t> StateGeneration(VmId id) const override;
  Result<void> InjectGuestEvent(VmId id, GuestEventKind kind) override;

  Result<void> EnableDirtyLogging(VmId id) override;
  Result<std::vector<Gfn>> FetchAndClearDirtyLog(VmId id) override;
  Result<void> DisableDirtyLogging(VmId id) override;

  Result<UisrVm> SaveVmToUisr(VmId id, FixupLog* log) override;
  Result<VmId> RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                 FixupLog* log) override;

  uint64_t HypervisorFrames() const override;

  Result<std::vector<std::pair<Gfn, uint64_t>>> DumpGuestContent(VmId id) const override;

  // Guest-cooperative preparation (paper §4.2.3, Azure Scheduled Events
  // style): quiesces emulated block devices, pauses pass-through devices,
  // unplugs unplug-mode devices. Must run before PauseVm + SaveVmToUisr.
  Result<void> PrepareVmForTransplant(VmId id) override;

  void DetachForMicroReboot() override;

  MigrationTraits migration_traits() const override {
    // xl/libxl restore path: sequential receive, heavyweight resume.
    return MigrationTraits{1, MillisF(125.0), MillisF(14.0)};
  }

  // --- Xen-specific introspection (tests, libxl-equivalent tooling) --------
  Result<const XenDomain*> FindDomain(VmId id) const;
  Result<VmId> FindVmByUid(uint64_t uid) const;
  const CreditScheduler& scheduler() const { return scheduler_; }
  // Drops and rebuilds the scheduler from domain records; used after restore
  // to demonstrate that VM Management State is reconstructable (§3.1).
  void RebuildScheduler();

 private:
  Result<XenDomain*> MutableDomain(VmId id);
  // Allocates guest memory for `domain` with the chunked+interleaved policy.
  Result<void> AllocateGuestMemory(XenDomain& domain);
  // Adopts in-place frames described by PRAM entries (InPlaceTP restore).
  Result<void> AdoptGuestMemory(XenDomain& domain, const std::vector<PramPageEntry>& entries);
  // NPT + context frames for a domain (owner kVmState).
  Result<void> AllocateVmStateFrames(XenDomain& domain);
  void SetupPvInfrastructure(XenDomain& domain);
  void FreeDomainFrames(const XenDomain& domain);

  Machine* machine_;
  CreditScheduler scheduler_;
  std::map<uint32_t, XenDomain> domains_;  // Keyed by domid.
  uint32_t next_domid_ = 1;                // dom0 is domid 0.
  uint64_t hv_frames_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_XEN_XENVISOR_H_
