// XenVisor's credit scheduler — an instance of "VM Management State"
// (paper §3.1): hypervisor-dependent, references VM_i State, and is never
// translated across a transplant; the target hypervisor rebuilds its own
// scheduler from the restored VM_i States.

#ifndef HYPERTP_SRC_XEN_CREDIT_SCHEDULER_H_
#define HYPERTP_SRC_XEN_CREDIT_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"

namespace hypertp {

// A schedulable vCPU with its credit balance.
struct CreditEntry {
  uint32_t domid = 0;
  uint32_t vcpu = 0;
  uint32_t weight = 256;
  int32_t credits = 0;

  bool operator==(const CreditEntry&) const = default;
};

class CreditScheduler {
 public:
  // `pcpus` is the number of physical CPUs available to guests.
  explicit CreditScheduler(int pcpus);

  // Registers a vCPU; it is placed on the least-loaded runqueue.
  void AddVcpu(uint32_t domid, uint32_t vcpu, uint32_t weight);
  // Removes all of a domain's vCPUs (domain destruction / transplant save).
  void RemoveDomain(uint32_t domid);

  // One accounting epoch: burns credits of queue heads and refills
  // proportionally to weight, rotating exhausted vCPUs to the tail.
  void Tick();

  // Moves vCPUs between runqueues until queue lengths differ by at most 1.
  void Rebalance();

  int pcpus() const { return static_cast<int>(runqueues_.size()); }
  size_t total_vcpus() const;
  const std::vector<std::vector<CreditEntry>>& runqueues() const { return runqueues_; }

 private:
  std::vector<std::vector<CreditEntry>> runqueues_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_XEN_CREDIT_SCHEDULER_H_
