#include "src/xen/xen_formats.h"


namespace hypertp {
uint16_t PackXenSegmentAttributes(const UisrSegment& seg) {
  return static_cast<uint16_t>((seg.type & 0xF) | ((seg.s & 1) << 4) | ((seg.dpl & 3) << 5) |
                               ((seg.present & 1) << 7) | ((seg.avl & 1) << 8) |
                               ((seg.l & 1) << 9) | ((seg.db & 1) << 10) | ((seg.g & 1) << 11) |
                               ((seg.unusable & 1) << 12));
}

void UnpackXenSegmentAttributes(uint16_t attr, UisrSegment& seg) {
  seg.type = attr & 0xF;
  seg.s = (attr >> 4) & 1;
  seg.dpl = (attr >> 5) & 3;
  seg.present = (attr >> 7) & 1;
  seg.avl = (attr >> 8) & 1;
  seg.l = (attr >> 9) & 1;
  seg.db = (attr >> 10) & 1;
  seg.g = (attr >> 11) & 1;
  seg.unusable = (attr >> 12) & 1;
}

XenSegmentReg ToXenSegment(const UisrSegment& seg) {
  XenSegmentReg x;
  x.base = seg.base;
  x.limit = seg.limit;
  x.sel = seg.selector;
  x.attr = PackXenSegmentAttributes(seg);
  return x;
}

UisrSegment FromXenSegment(const XenSegmentReg& seg) {
  UisrSegment u;
  u.base = seg.base;
  u.limit = seg.limit;
  u.selector = seg.sel;
  UnpackXenSegmentAttributes(seg.attr, u);
  return u;
}

}  // namespace hypertp
