#include "src/xen/xen_uisr.h"

#include <algorithm>
#include <cstdio>

namespace hypertp {
namespace {

// MSR indices with fixed slots in XenHvmCpu.
constexpr uint32_t kMsrTsc = 0x00000010;
constexpr uint32_t kMsrSysenterCs = 0x00000174;
constexpr uint32_t kMsrSysenterEsp = 0x00000175;
constexpr uint32_t kMsrSysenterEip = 0x00000176;
constexpr uint32_t kMsrMiscEnable = 0x000001A0;
constexpr uint32_t kMsrEfer = 0xC0000080;
constexpr uint32_t kMsrStar = 0xC0000081;
constexpr uint32_t kMsrLstar = 0xC0000082;
constexpr uint32_t kMsrCstar = 0xC0000083;
constexpr uint32_t kMsrSfmask = 0xC0000084;
constexpr uint32_t kMsrFsBase = 0xC0000100;
constexpr uint32_t kMsrGsBase = 0xC0000101;
constexpr uint32_t kMsrKernelGsBase = 0xC0000102;

// Offset of the TPR in the LAPIC register page.
constexpr size_t kLapicTprOffset = 0x80;

}  // namespace

Result<UisrVcpu> XenVcpuToUisr(const XenVcpuContext& ctx) {
  UisrVcpu v;
  v.id = ctx.vcpu_id;
  v.online = ctx.cpu.online != 0;

  // GPRs: Xen names them; UISR uses KVM-member-order array
  // (rax, rbx, rcx, rdx, rsi, rdi, rsp, rbp, r8..r15).
  const XenHvmCpu& c = ctx.cpu;
  v.regs.gpr = {c.rax, c.rbx, c.rcx, c.rdx, c.rsi, c.rdi, c.rsp, c.rbp,
                c.r8,  c.r9,  c.r10, c.r11, c.r12, c.r13, c.r14, c.r15};
  v.regs.rip = c.rip;
  v.regs.rflags = c.rflags;

  v.sregs.cs = FromXenSegment(c.cs);
  v.sregs.ds = FromXenSegment(c.ds);
  v.sregs.es = FromXenSegment(c.es);
  v.sregs.fs = FromXenSegment(c.fs);
  v.sregs.gs = FromXenSegment(c.gs);
  v.sregs.ss = FromXenSegment(c.ss);
  v.sregs.tr = FromXenSegment(c.tr);
  v.sregs.ldt = FromXenSegment(c.ldtr);
  v.sregs.gdt = {c.gdtr_base, static_cast<uint16_t>(c.gdtr_limit)};
  v.sregs.idt = {c.idtr_base, static_cast<uint16_t>(c.idtr_limit)};
  v.sregs.cr0 = c.cr0;
  v.sregs.cr2 = c.cr2;
  v.sregs.cr3 = c.cr3;
  v.sregs.cr4 = c.cr4;
  // Xen has no CR8 field: derive it from the LAPIC TPR (task priority
  // register, bits 7:4 of the register give the CR8 value).
  v.sregs.cr8 = ctx.lapic.regs[kLapicTprOffset] >> 4;
  v.sregs.efer = c.msr_efer;
  v.sregs.apic_base = ctx.lapic.apic_base_msr;

  // Expand fixed slots into the canonical sorted MSR list.
  v.msrs = {
      {kMsrTsc, c.tsc},
      {kMsrSysenterCs, c.sysenter_cs},
      {kMsrSysenterEsp, c.sysenter_esp},
      {kMsrSysenterEip, c.sysenter_eip},
      {kMsrMiscEnable, c.msr_misc_enable},
      {kMsrEfer, c.msr_efer},
      {kMsrStar, c.msr_star},
      {kMsrLstar, c.msr_lstar},
      {kMsrCstar, c.msr_cstar},
      {kMsrSfmask, c.msr_syscall_mask},
      {kMsrFsBase, c.fs.base},  // Synthesized from the segment base.
      {kMsrGsBase, c.gs.base},
      {kMsrKernelGsBase, c.shadow_gs},
  };

  v.fpu = UnpackFxsave(c.fxsave);

  v.lapic.apic_base_msr = ctx.lapic.apic_base_msr;
  v.lapic.tsc_deadline = ctx.lapic.tsc_deadline;
  v.lapic.regs = ctx.lapic.regs;

  v.mtrr.cap = ctx.mtrr.msr_mtrr_cap;
  v.mtrr.def_type = ctx.mtrr.msr_mtrr_def_type;
  v.mtrr.fixed = ctx.mtrr.fixed;
  for (size_t i = 0; i < kMtrrVariableCount; ++i) {
    v.mtrr.var_base[i] = ctx.mtrr.var[i * 2];
    v.mtrr.var_mask[i] = ctx.mtrr.var[i * 2 + 1];
  }
  v.mtrr.pat = ctx.mtrr.msr_pat_cr;

  v.xsave.xcr0 = ctx.xsave.xcr0;
  v.xsave.area = ctx.xsave.area;
  return v;
}

Result<XenVcpuContext> XenVcpuFromUisr(const UisrVcpu& vcpu, uint64_t vm_uid, FixupLog* log) {
  XenVcpuContext ctx;
  ctx.vcpu_id = vcpu.id;
  XenHvmCpu& c = ctx.cpu;
  c.online = vcpu.online ? 1 : 0;

  const auto& g = vcpu.regs.gpr;
  c.rax = g[0];
  c.rbx = g[1];
  c.rcx = g[2];
  c.rdx = g[3];
  c.rsi = g[4];
  c.rdi = g[5];
  c.rsp = g[6];
  c.rbp = g[7];
  c.r8 = g[8];
  c.r9 = g[9];
  c.r10 = g[10];
  c.r11 = g[11];
  c.r12 = g[12];
  c.r13 = g[13];
  c.r14 = g[14];
  c.r15 = g[15];
  c.rip = vcpu.regs.rip;
  c.rflags = vcpu.regs.rflags;

  c.cs = ToXenSegment(vcpu.sregs.cs);
  c.ds = ToXenSegment(vcpu.sregs.ds);
  c.es = ToXenSegment(vcpu.sregs.es);
  c.fs = ToXenSegment(vcpu.sregs.fs);
  c.gs = ToXenSegment(vcpu.sregs.gs);
  c.ss = ToXenSegment(vcpu.sregs.ss);
  c.tr = ToXenSegment(vcpu.sregs.tr);
  c.ldtr = ToXenSegment(vcpu.sregs.ldt);
  c.gdtr_base = vcpu.sregs.gdt.base;
  c.gdtr_limit = vcpu.sregs.gdt.limit;
  c.idtr_base = vcpu.sregs.idt.base;
  c.idtr_limit = vcpu.sregs.idt.limit;
  c.cr0 = vcpu.sregs.cr0;
  c.cr2 = vcpu.sregs.cr2;
  c.cr3 = vcpu.sregs.cr3;
  c.cr4 = vcpu.sregs.cr4;
  c.msr_efer = vcpu.sregs.efer;

  // Fill fixed MSR slots; drop anything Xen's record cannot hold.
  for (const UisrMsr& m : vcpu.msrs) {
    switch (m.index) {
      case kMsrTsc:
        c.tsc = m.value;
        break;
      case kMsrSysenterCs:
        c.sysenter_cs = m.value;
        break;
      case kMsrSysenterEsp:
        c.sysenter_esp = m.value;
        break;
      case kMsrSysenterEip:
        c.sysenter_eip = m.value;
        break;
      case kMsrMiscEnable:
        c.msr_misc_enable = m.value;
        break;
      case kMsrEfer:
        if (m.value != vcpu.sregs.efer && log != nullptr) {
          log->push_back({vm_uid, "cpu", "EFER MSR disagrees with sregs.efer; using sregs"});
        }
        break;
      case kMsrStar:
        c.msr_star = m.value;
        break;
      case kMsrLstar:
        c.msr_lstar = m.value;
        break;
      case kMsrCstar:
        c.msr_cstar = m.value;
        break;
      case kMsrSfmask:
        c.msr_syscall_mask = m.value;
        break;
      case kMsrFsBase:
        c.fs.base = m.value;  // Architecturally the same state as fs.base.
        break;
      case kMsrGsBase:
        c.gs.base = m.value;
        break;
      case kMsrKernelGsBase:
        c.shadow_gs = m.value;
        break;
      default:
        if (log != nullptr) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "MSR 0x%X has no Xen HVM slot; dropped", m.index);
          log->push_back({vm_uid, "cpu", buf});
        }
        break;
    }
  }

  c.fxsave = PackFxsave(vcpu.fpu);

  ctx.lapic.apic_base_msr = vcpu.lapic.apic_base_msr;
  ctx.lapic.tsc_deadline = vcpu.lapic.tsc_deadline;
  ctx.lapic.regs = vcpu.lapic.regs;
  // Consistency: CR8 must equal the LAPIC TPR[7:4]. Trust CR8 (it is what
  // the target's VMCS will load) and patch the register page if they differ.
  const uint8_t tpr_from_cr8 = static_cast<uint8_t>((vcpu.sregs.cr8 & 0xF) << 4);
  if (ctx.lapic.regs[kLapicTprOffset] != tpr_from_cr8) {
    if (log != nullptr) {
      log->push_back({vm_uid, "lapic", "TPR register page disagreed with CR8; synchronized"});
    }
    ctx.lapic.regs[kLapicTprOffset] = tpr_from_cr8;
  }

  ctx.mtrr.msr_mtrr_cap = vcpu.mtrr.cap;
  ctx.mtrr.msr_mtrr_def_type = vcpu.mtrr.def_type;
  ctx.mtrr.fixed = vcpu.mtrr.fixed;
  for (size_t i = 0; i < kMtrrVariableCount; ++i) {
    ctx.mtrr.var[i * 2] = vcpu.mtrr.var_base[i];
    ctx.mtrr.var[i * 2 + 1] = vcpu.mtrr.var_mask[i];
  }
  ctx.mtrr.msr_pat_cr = vcpu.mtrr.pat;

  ctx.xsave.xcr0 = vcpu.xsave.xcr0;
  ctx.xsave.xcr0_accum = vcpu.xsave.xcr0;  // Re-derive Xen-only bookkeeping.
  ctx.xsave.area = vcpu.xsave.area;
  return ctx;
}

Result<void> XenPlatformToUisr(const XenHvmContext& ctx, UisrVm& out) {
  out.vcpus.clear();
  out.vcpus.reserve(ctx.vcpus.size());
  for (const XenVcpuContext& vc : ctx.vcpus) {
    HYPERTP_ASSIGN_OR_RETURN(UisrVcpu v, XenVcpuToUisr(vc));
    out.vcpus.push_back(std::move(v));
  }

  out.ioapic.id = ctx.ioapic.id;
  out.ioapic.base_address = ctx.ioapic.base_address;
  out.ioapic.num_pins = kXenIoapicPins;
  out.ioapic.redirection.fill(0);
  std::copy(ctx.ioapic.redirtbl.begin(), ctx.ioapic.redirtbl.end(),
            out.ioapic.redirection.begin());

  for (size_t i = 0; i < 3; ++i) {
    const XenPitChannel& xc = ctx.pit.channels[i];
    UisrPitChannel& uc = out.pit.channels[i];
    uc.count = xc.count;
    uc.latched_count = xc.latched_count;
    uc.count_latched = xc.count_latched;
    uc.status_latched = xc.status_latched;
    uc.status = xc.status;
    uc.read_state = xc.read_state;
    uc.write_state = xc.write_state;
    uc.write_latch = xc.write_latch;
    uc.rw_mode = xc.rw_mode;
    uc.mode = xc.mode;
    uc.bcd = xc.bcd;
    uc.gate = xc.gate;
    uc.count_load_time = static_cast<uint64_t>(xc.count_load_time);
  }
  out.pit.speaker_data_on = ctx.pit.speaker_data_on;
  return OkResult();
}

Result<XenHvmContext> XenPlatformFromUisr(const UisrVm& vm, FixupLog* log) {
  XenHvmContext ctx;
  for (const UisrVcpu& v : vm.vcpus) {
    HYPERTP_ASSIGN_OR_RETURN(XenVcpuContext xc, XenVcpuFromUisr(v, vm.vm_uid, log));
    ctx.vcpus.push_back(std::move(xc));
  }

  if (vm.ioapic.num_pins > kXenIoapicPins) {
    return InvalidArgumentError("uisr ioapic has " + std::to_string(vm.ioapic.num_pins) +
                                " pins, Xen supports " + std::to_string(kXenIoapicPins));
  }
  ctx.ioapic.id = static_cast<uint8_t>(vm.ioapic.id);
  ctx.ioapic.base_address = vm.ioapic.base_address;
  ctx.ioapic.redirtbl.fill(0);
  std::copy(vm.ioapic.redirection.begin(), vm.ioapic.redirection.begin() + vm.ioapic.num_pins,
            ctx.ioapic.redirtbl.begin());

  for (size_t i = 0; i < 3; ++i) {
    const UisrPitChannel& uc = vm.pit.channels[i];
    XenPitChannel& xc = ctx.pit.channels[i];
    xc.count = uc.count;
    xc.latched_count = uc.latched_count;
    xc.count_latched = uc.count_latched;
    xc.status_latched = uc.status_latched;
    xc.status = uc.status;
    xc.read_state = uc.read_state;
    xc.write_state = uc.write_state;
    xc.write_latch = uc.write_latch;
    xc.rw_mode = uc.rw_mode;
    xc.mode = uc.mode;
    xc.bcd = uc.bcd;
    xc.gate = uc.gate;
    xc.count_load_time = static_cast<int64_t>(uc.count_load_time);
  }
  ctx.pit.speaker_data_on = vm.pit.speaker_data_on;
  return ctx;
}

}  // namespace hypertp
