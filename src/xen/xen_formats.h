// XenVisor's native VM state representation.
//
// These structs mirror the *shape* of Xen's HVM save records (hvm_hw_cpu,
// hvm_hw_lapic, hvm_hw_mtrr, ...): named GPR fields in Xen's member order,
// segment attributes packed into a 16-bit word, the well-known MSRs stored in
// fixed slots rather than a list, the FPU as a raw 512-byte FXSAVE area, PAT
// inside the MTRR record, CR8 derived from the LAPIC TPR, and a 48-pin
// IOAPIC. Everything here is deliberately *not* UISR so the translation layer
// (xen_uisr.h) has real work to do, exactly as in the paper.

#ifndef HYPERTP_SRC_XEN_XEN_FORMATS_H_
#define HYPERTP_SRC_XEN_XEN_FORMATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/uisr/fxsave.h"
#include "src/uisr/records.h"

namespace hypertp {

// Segment register with VMX-style packed attribute word:
//   type[3:0] s[4] dpl[6:5] p[7] avl[8] l[9] db[10] g[11] unusable[12]
struct XenSegmentReg {
  uint64_t base = 0;
  uint32_t limit = 0;
  uint16_t sel = 0;
  uint16_t attr = 0;

  bool operator==(const XenSegmentReg&) const = default;
};

uint16_t PackXenSegmentAttributes(const UisrSegment& seg);
void UnpackXenSegmentAttributes(uint16_t attr, UisrSegment& seg);
XenSegmentReg ToXenSegment(const UisrSegment& seg);
UisrSegment FromXenSegment(const XenSegmentReg& seg);

// FXSAVE codec shared with other hypervisors that store raw FXSAVE blobs.
// (Declared in src/uisr/fxsave.h; re-exported here for Xen's record types.)

// Equivalent of Xen's hvm_hw_cpu: one vCPU's architectural state.
struct XenHvmCpu {
  // GPRs as named fields, in Xen's member order (rbp before rsi/rdi).
  uint64_t rax = 0, rbx = 0, rcx = 0, rdx = 0, rbp = 0, rsi = 0, rdi = 0, rsp = 0;
  uint64_t r8 = 0, r9 = 0, r10 = 0, r11 = 0, r12 = 0, r13 = 0, r14 = 0, r15 = 0;
  uint64_t rip = 0, rflags = 0;
  uint64_t cr0 = 0, cr2 = 0, cr3 = 0, cr4 = 0;
  // No cr8 field: Xen keeps the TPR in the LAPIC register page.
  XenSegmentReg cs, ds, es, fs, gs, ss, tr, ldtr;
  uint64_t gdtr_base = 0, idtr_base = 0;
  uint32_t gdtr_limit = 0, idtr_limit = 0;
  uint64_t sysenter_cs = 0, sysenter_esp = 0, sysenter_eip = 0;
  // Well-known MSRs in fixed slots (no generic list in Xen's record).
  uint64_t msr_efer = 0, msr_star = 0, msr_lstar = 0, msr_cstar = 0;
  uint64_t msr_syscall_mask = 0;  // SFMASK.
  uint64_t shadow_gs = 0;         // KERNEL_GS_BASE.
  uint64_t msr_misc_enable = 0;
  uint64_t tsc = 0;
  FxsaveArea fxsave{};  // FPU/SSE state as a raw FXSAVE area.
  uint8_t online = 1;

  bool operator==(const XenHvmCpu&) const = default;
};

// Equivalent of hvm_hw_lapic + the register page. The APIC base MSR lives
// here (Table 2: Xen "LAPIC" maps to KVM "MSRS").
struct XenLapic {
  uint64_t apic_base_msr = 0;
  uint64_t tsc_deadline = 0;
  std::array<uint8_t, kLapicRegsSize> regs{};

  bool operator==(const XenLapic&) const = default;
};

// Equivalent of hvm_hw_mtrr: MTRRs plus PAT in one record.
struct XenMtrr {
  uint64_t msr_mtrr_cap = 0;
  uint64_t msr_mtrr_def_type = 0;
  std::array<uint64_t, kMtrrFixedCount> fixed{};
  // Variable MTRRs interleaved base/mask, as in Xen's msr_mtrr_var array.
  std::array<uint64_t, kMtrrVariableCount * 2> var{};
  uint64_t msr_pat_cr = 0;

  bool operator==(const XenMtrr&) const = default;
};

struct XenXsave {
  uint64_t xcr0 = 0;
  uint64_t xcr0_accum = 0;  // Xen-only bookkeeping; not part of UISR.
  std::vector<uint8_t> area;

  bool operator==(const XenXsave&) const = default;
};

inline constexpr uint32_t kXenIoapicPins = 48;
struct XenIoapic {
  uint8_t id = 0;
  uint64_t base_address = 0xFEC00000;
  std::array<uint64_t, kXenIoapicPins> redirtbl{};

  bool operator==(const XenIoapic&) const = default;
};

struct XenPitChannel {
  uint32_t count = 0;
  uint16_t latched_count = 0;
  uint8_t count_latched = 0, status_latched = 0, status = 0;
  uint8_t read_state = 0, write_state = 0, write_latch = 0;
  uint8_t rw_mode = 0, mode = 0, bcd = 0, gate = 0;
  int64_t count_load_time = 0;  // Signed in Xen's record.

  bool operator==(const XenPitChannel&) const = default;
};

struct XenPit {
  std::array<XenPitChannel, 3> channels{};
  uint8_t speaker_data_on = 0;

  bool operator==(const XenPit&) const = default;
};

// Per-vCPU bundle of records.
struct XenVcpuContext {
  uint32_t vcpu_id = 0;
  XenHvmCpu cpu;
  XenLapic lapic;
  XenMtrr mtrr;
  XenXsave xsave;

  bool operator==(const XenVcpuContext&) const = default;
};

// The full HVM context blob, equivalent of xc_domain_hvm_getcontext output.
struct XenHvmContext {
  std::vector<XenVcpuContext> vcpus;
  XenIoapic ioapic;
  XenPit pit;

  bool operator==(const XenHvmContext&) const = default;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_XEN_XEN_FORMATS_H_
