// XenVisor's per-domain state (the VM_i State of a Xen guest).

#ifndef HYPERTP_SRC_XEN_XEN_DOMAIN_H_
#define HYPERTP_SRC_XEN_XEN_DOMAIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hv/guest_memory.h"
#include "src/hv/hypervisor.h"
#include "src/xen/xen_formats.h"

namespace hypertp {

// Xen PV event channel. HVM guests use these only for PV drivers; they are
// not translated across a transplant — the paper's device unplug/replug
// strategy means the target side re-negotiates its equivalent notification
// paths (virtio ioeventfds on KVM).
struct XenEventChannel {
  enum class Type : uint8_t { kInterdomain, kVirq, kIpi };
  uint32_t port = 0;
  Type type = Type::kInterdomain;
  uint32_t remote_domid = 0;  // dom0 for PV driver channels.
  bool pending = false;
};

// Grant table entry: the guest grants dom0's backend access to one of its
// own frames (virtio/PV ring pages). Grants reference Guest State GFNs —
// which survive a transplant in place — but the table itself is rebuilt by
// driver re-negotiation on the target side, like the event channels.
struct XenGrantEntry {
  uint32_t ref = 0;
  Gfn gfn = 0;
  uint32_t flags = 0;  // GTF_permit_access-style.
  uint32_t granted_to = 0;  // Backend domid (dom0).
};

struct XenDomain {
  uint32_t domid = 0;   // Xen-local; changes across save/restore.
  uint64_t uid = 0;     // Datacenter-stable identity.
  std::string name;
  VmRunState run_state = VmRunState::kRunning;
  uint64_t memory_bytes = 0;
  bool huge_pages = false;

  // Guest State mapping: the P2M.
  GuestAddressSpace p2m;
  // VM_i State: platform context in Xen's native record formats.
  XenHvmContext hvm;
  // QEMU-upstream device models attached to this domain.
  std::vector<UisrDeviceState> devices;
  // PV infrastructure (rebuilt, never translated).
  std::vector<XenEventChannel> event_channels;
  std::vector<XenGrantEntry> grant_table;
  std::map<std::string, std::string> xenstore;

  // Scheduler parameters (credit scheduler).
  uint32_t sched_weight = 256;
  uint32_t sched_cap = 0;

  // Monotonic platform-state generation (Hypervisor::StateGeneration): bumps
  // on guest-visible state changes, never on pause/resume/save.
  uint64_t state_generation = 1;

  // Frames allocated for this domain's NPT/P2M structures (owner kVmState).
  uint64_t npt_frames = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_XEN_XEN_DOMAIN_H_
