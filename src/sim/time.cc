#include "src/sim/time.h"

#include <cmath>
#include <cstdio>

namespace hypertp {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double abs_d = std::abs(static_cast<double>(d));
  if (abs_d >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", static_cast<double>(d) / 1e9);
  } else if (abs_d >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(d) / 1e6);
  } else if (abs_d >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", static_cast<double>(d) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace hypertp
