// Simulated-time representation.
//
// All durations and timestamps inside the simulated datacenter are integer
// nanoseconds. Simulated time advances only when the discrete-event executor
// (src/sim/executor.h) dispatches events or when cost models charge time.

#ifndef HYPERTP_SRC_SIM_TIME_H_
#define HYPERTP_SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace hypertp {

// A point in simulated time (nanoseconds since simulation start).
using SimTime = int64_t;
// A span of simulated time in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanos(int64_t n) { return n * kNanosecond; }
constexpr SimDuration Micros(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }
// Fractional seconds, e.g. SecondsF(1.52) == 1520 ms.
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * 1e9); }
constexpr SimDuration MillisF(double ms) { return static_cast<SimDuration>(ms * 1e6); }

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }

// Renders a duration with an adaptive unit: "1.700 s", "4.96 ms", "820 us".
std::string FormatDuration(SimDuration d);

}  // namespace hypertp

#endif  // HYPERTP_SRC_SIM_TIME_H_
