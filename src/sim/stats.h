// Statistical accumulators used by the benchmark harness to report results
// the way the paper does: averages when deviation is low, box plots otherwise.

#ifndef HYPERTP_SRC_SIM_STATS_H_
#define HYPERTP_SRC_SIM_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hypertp {

// Streaming mean/variance/min/max (Welford).
class StatAccumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  // Sample variance (n-1); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Five-number summary for box plots (Fig. 8/9 style reporting).
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  size_t count = 0;

  std::string ToString() const;
};

// Holds raw samples; computes percentiles and box plots.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;
  BoxplotSummary Boxplot() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted view, built lazily on the first Percentile/Boxplot after an Add.
  // Percentile used to copy + sort per call — quadratic when a report asks
  // for several percentiles of a large set.
  const std::vector<double>& Sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_SIM_STATS_H_
