// Deterministic worker pool: one LPT schedule drives both the charged
// sim-time of a parallel phase and, optionally, real execution of the
// underlying work across OS threads.
//
// Two distinct worker counts exist on purpose and must never be conflated:
//
//  - `workers` (ScheduleWork) is the *modeled* core count — the paper's "one
//    worker per free core" (§3.4), i.e. Machine::worker_threads(). It decides
//    the charged phase durations, the per-task span offsets and therefore
//    every reported number. It is part of a run's deterministic output.
//
//  - `threads` (RunOnWorkerPool) is the *real* OS-thread count — the
//    HYPERTP_PARALLEL env var / InPlaceOptions::real_threads. It only affects
//    wall-clock speed. Identical inputs must produce byte-identical outputs
//    (reports, blobs, trace JSON) for any thread count; pipeline_test pins
//    this.

#ifndef HYPERTP_SRC_SIM_WORKER_POOL_H_
#define HYPERTP_SRC_SIM_WORKER_POOL_H_

#include <functional>
#include <vector>

#include "src/sim/time.h"

namespace hypertp {

// Which modeled worker runs each task of a cost vector, and when.
struct WorkSchedule {
  struct Task {
    int worker = 0;
    SimDuration start = 0;
    SimDuration end = 0;

    SimDuration duration() const { return end - start; }
  };
  std::vector<Task> tasks;  // In input (cost-vector) order.
  SimDuration makespan = 0;
  int workers = 1;
};

// Lays `costs` out over `workers` modeled workers with greedy
// longest-processing-time-first scheduling: sort descending, always assign to
// the least-loaded worker. Ties break deterministically — equal costs keep
// input order (stable sort), equal loads pick the lowest worker index — so
// the whole schedule, not just its makespan, is a pure function of the
// inputs. workers <= 1 (including bad input) runs everything back-to-back on
// worker 0.
WorkSchedule ScheduleWork(const std::vector<SimDuration>& costs, int workers);

// The LPT makespan alone. Implemented as ScheduleWork(...).makespan, so the
// analytic charge and the schedule can never disagree.
// Models the paper's parallelized per-VM translation/PRAM construction
// (one worker thread per free core).
SimDuration ParallelMakespan(std::vector<SimDuration> costs, int workers);

// Executes every task in `tasks` using `threads` real OS threads
// (threads <= 1: inline on the calling thread, in index order). Thread t runs
// tasks t, t + threads, t + 2*threads, ... — a fixed assignment with no work
// stealing or shared mutable state, so each task must only write its own
// pre-sized output slot; under that contract the results are byte-identical
// for any thread count.
void RunOnWorkerPool(std::vector<std::function<void()>>& tasks, int threads);

// Real-thread count requested via the HYPERTP_PARALLEL env var.
// Unset, unparsable or < 1 means 1 (serial); values are capped at 256.
int ParallelThreadsFromEnv();

}  // namespace hypertp

#endif  // HYPERTP_SRC_SIM_WORKER_POOL_H_
