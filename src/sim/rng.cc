#include "src/sim/rng.h"

#include <cassert>
#include <cmath>

namespace hypertp {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ull); }

}  // namespace hypertp
