#include "src/sim/time_series.h"

#include <algorithm>
#include <cstdio>

namespace hypertp {

double TimeSeries::MeanInWindow(SimTime from, SimTime to) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= from && p.time < to) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::MinInWindow(SimTime from, SimTime to) const {
  double best = 0.0;
  bool any = false;
  for (const auto& p : points_) {
    if (p.time >= from && p.time < to) {
      best = any ? std::min(best, p.value) : p.value;
      any = true;
    }
  }
  return any ? best : 0.0;
}

SimDuration TimeSeries::LongestGapBelow(double threshold) const {
  if (points_.size() < 2) {
    return 0;
  }
  // Estimate the sampling interval from the median gap between samples.
  SimDuration interval = points_[1].time - points_[0].time;

  SimDuration longest = 0;
  SimTime run_start = -1;
  SimTime run_end = -1;
  for (const auto& p : points_) {
    if (p.value <= threshold) {
      if (run_start < 0) {
        run_start = p.time;
      }
      run_end = p.time;
      longest = std::max(longest, run_end - run_start + interval);
    } else {
      run_start = -1;
    }
  }
  return longest;
}

std::string TimeSeries::ToTsv() const {
  std::string out;
  char buf[64];
  for (const auto& p : points_) {
    std::snprintf(buf, sizeof(buf), "%.3f\t%.3f\n", ToSeconds(p.time), p.value);
    out += buf;
  }
  return out;
}

}  // namespace hypertp
