// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every stochastic component (workload noise, migration jitter, placement
// tie-breaking) draws from an Rng seeded from the experiment configuration,
// so a run is exactly reproducible from its seed.

#ifndef HYPERTP_SRC_SIM_RNG_H_
#define HYPERTP_SRC_SIM_RNG_H_

#include <cstdint>

namespace hypertp {

// xoshiro256** seeded via splitmix64. Not cryptographic; fast and well mixed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Standard normal (Box-Muller); deterministic per stream.
  double NextGaussian();

  // Returns true with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Derives an independent child stream; used to give each VM/host its own
  // stream so adding a component does not perturb the others' draws.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_SIM_RNG_H_
