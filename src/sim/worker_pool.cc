#include "src/sim/worker_pool.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <thread>

namespace hypertp {

WorkSchedule ScheduleWork(const std::vector<SimDuration>& costs, int workers) {
  WorkSchedule schedule;
  schedule.workers = workers <= 1 ? 1 : workers;
  schedule.tasks.resize(costs.size());
  if (costs.empty()) {
    return schedule;
  }
  // workers <= 1 degenerates to serial execution, covering bad input (0 or
  // negative) the same way ParallelMakespan always has.
  if (workers <= 1) {
    SimDuration t = 0;
    for (size_t i = 0; i < costs.size(); ++i) {
      schedule.tasks[i] = WorkSchedule::Task{0, t, t + costs[i]};
      t += costs[i];
    }
    schedule.makespan = t;
    return schedule;
  }
  // LPT order: cost descending; stable, so equal costs keep input order.
  std::vector<size_t> order(costs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&costs](size_t a, size_t b) { return costs[a] > costs[b]; });
  std::vector<SimDuration> load(static_cast<size_t>(workers), 0);
  for (size_t idx : order) {
    // min_element returns the FIRST minimum: equal loads pick the lowest
    // worker index, keeping the schedule deterministic.
    auto slot = std::min_element(load.begin(), load.end());
    const int worker = static_cast<int>(slot - load.begin());
    schedule.tasks[idx] = WorkSchedule::Task{worker, *slot, *slot + costs[idx]};
    *slot += costs[idx];
  }
  schedule.makespan = *std::max_element(load.begin(), load.end());
  return schedule;
}

SimDuration ParallelMakespan(std::vector<SimDuration> costs, int workers) {
  return ScheduleWork(costs, workers).makespan;
}

void RunOnWorkerPool(std::vector<std::function<void()>>& tasks, int threads) {
  const int n = static_cast<int>(tasks.size());
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (auto& task : tasks) {
      task();
    }
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&tasks, t, threads, n] {
      for (int i = t; i < n; i += threads) {
        tasks[static_cast<size_t>(i)]();
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
}

int ParallelThreadsFromEnv() {
  const char* raw = std::getenv("HYPERTP_PARALLEL");
  if (raw == nullptr || *raw == '\0') {
    return 1;
  }
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 1) {
    return 1;
  }
  return static_cast<int>(std::min(parsed, 256L));
}

}  // namespace hypertp
