#include "src/sim/executor.h"

#include <algorithm>
#include <cassert>

namespace hypertp {

void SimExecutor::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void SimExecutor::ScheduleAfter(SimDuration d, std::function<void()> fn) {
  assert(d >= 0);
  ScheduleAt(now_ + d, std::move(fn));
}

void SimExecutor::Run() {
  // Consume any Stop() left over from a previous (aborted) run so one
  // abort cannot poison later runs on the same executor.
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }
}

void SimExecutor::RunUntil(SimTime t) {
  assert(t >= now_);
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }
  if (!stopped_) {
    now_ = t;
  }
}

void SimExecutor::AdvanceTo(SimTime t) {
  assert(t >= now_);
  assert((queue_.empty() || queue_.top().time >= t) && "AdvanceTo would skip pending events");
  now_ = t;
}

}  // namespace hypertp
