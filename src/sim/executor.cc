#include "src/sim/executor.h"

#include <algorithm>
#include <cassert>

namespace hypertp {

void SimExecutor::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void SimExecutor::ScheduleAfter(SimDuration d, std::function<void()> fn) {
  assert(d >= 0);
  ScheduleAt(now_ + d, std::move(fn));
}

void SimExecutor::Run() {
  // Consume any Stop() left over from a previous (aborted) run so one
  // abort cannot poison later runs on the same executor.
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }
}

void SimExecutor::RunUntil(SimTime t) {
  assert(t >= now_);
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }
  if (!stopped_) {
    now_ = t;
  }
}

void SimExecutor::AdvanceTo(SimTime t) {
  assert(t >= now_);
  assert((queue_.empty() || queue_.top().time >= t) && "AdvanceTo would skip pending events");
  now_ = t;
}

SimDuration ParallelMakespan(std::vector<SimDuration> costs, int workers) {
  if (costs.empty()) {
    return 0;
  }
  // workers <= 1 degenerates to serial execution. This also covers bad input
  // (0 or negative): the old assert vanished in release builds, leaving
  // min_element on an empty load vector — undefined behavior.
  if (workers <= 1) {
    SimDuration total = 0;
    for (SimDuration c : costs) {
      total += c;
    }
    return total;
  }
  // LPT greedy: sort descending, always assign to the least-loaded worker.
  std::sort(costs.begin(), costs.end(), std::greater<>());
  std::vector<SimDuration> load(static_cast<size_t>(workers), 0);
  for (SimDuration c : costs) {
    auto it = std::min_element(load.begin(), load.end());
    *it += c;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace hypertp
