// Discrete-event simulation executor.
//
// The executor owns the simulated clock. Components schedule closures at
// absolute or relative simulated times; Run() dispatches them in time order
// (FIFO among equal timestamps). Cost models "charge" time by scheduling
// completions in the future, so concurrency (e.g. a migration overlapping a
// running workload) falls out of event interleaving.

#ifndef HYPERTP_SRC_SIM_EXECUTOR_H_
#define HYPERTP_SRC_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace hypertp {

class SimExecutor {
 public:
  SimExecutor() = default;
  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute simulated time `t` (>= now).
  void ScheduleAt(SimTime t, std::function<void()> fn);
  // Schedules `fn` `d` nanoseconds from now.
  void ScheduleAfter(SimDuration d, std::function<void()> fn);

  // Dispatches events until the queue is empty or Stop() is called.
  void Run();
  // Dispatches events with timestamp <= t; the clock ends exactly at t.
  void RunUntil(SimTime t);
  // Moves the clock forward without dispatching (asserts no earlier events).
  void AdvanceTo(SimTime t);

  // Makes Run()/RunUntil() return after the current event completes. The
  // flag is consumed on the next Run()/RunUntil() entry, so an aborted run
  // (e.g. a fleet-rollout abort) never poisons later runs on the same
  // executor; abandoned events stay queued and dispatch on that next run.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  size_t pending_events() const { return queue_.size(); }

  // Timestamp of the earliest queued event, or -1 when the queue is empty.
  // Lets a coordinator that advances many executors in lockstep (the campaign
  // planner) stride over barriers it can prove would dispatch nothing.
  SimTime NextEventTime() const { return queue_.empty() ? -1 : queue_.top().time; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // Tie-breaker: FIFO among equal times.
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace hypertp

// ParallelMakespan lives with the worker-pool primitive now (it is the
// schedule's makespan); included here so existing callers keep compiling.
#include "src/sim/worker_pool.h"  // IWYU pragma: export

#endif  // HYPERTP_SRC_SIM_EXECUTOR_H_
