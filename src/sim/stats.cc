#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace hypertp {

void StatAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }
double StatAccumulator::min() const { return min_; }
double StatAccumulator::max() const { return max_; }

double StatAccumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

std::string BoxplotSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f (n=%zu)", min, q1,
                median, q3, max, count);
  return buf;
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double m2 = 0.0;
  for (double s : samples_) {
    m2 += (s - m) * (s - m);
  }
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double>& SampleSet::Sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleSet::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) {
    return 0.0;
  }
  const std::vector<double>& sorted = Sorted();
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxplotSummary SampleSet::Boxplot() const {
  BoxplotSummary box;
  box.count = samples_.size();
  if (samples_.empty()) {
    return box;
  }
  box.min = min();
  box.q1 = Percentile(25.0);
  box.median = Percentile(50.0);
  box.q3 = Percentile(75.0);
  box.max = max();
  return box;
}

}  // namespace hypertp
