// Time-series recording for workload metrics (QPS, latency, iteration time),
// used to regenerate the paper's Fig. 11/12 timelines.

#ifndef HYPERTP_SRC_SIM_TIME_SERIES_H_
#define HYPERTP_SRC_SIM_TIME_SERIES_H_

#include <string>
#include <vector>

#include "src/sim/time.h"

namespace hypertp {

struct TimeSeriesPoint {
  SimTime time = 0;
  double value = 0.0;
};

// A named sequence of (time, value) samples, appended in time order.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Add(SimTime t, double value) { points_.push_back({t, value}); }

  const std::string& name() const { return name_; }
  const std::vector<TimeSeriesPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Mean of values with time in [from, to).
  double MeanInWindow(SimTime from, SimTime to) const;
  // Smallest value in [from, to); 0 if the window is empty.
  double MinInWindow(SimTime from, SimTime to) const;
  // Longest run of consecutive samples with value <= threshold, as a duration
  // (distance between the first and last sample time of the run, plus one
  // sampling interval estimated from neighbors). Used to measure service gaps.
  SimDuration LongestGapBelow(double threshold) const;

  // Renders "t_seconds value" lines, one per point, for gnuplot-style output.
  std::string ToTsv() const;

 private:
  std::string name_;
  std::vector<TimeSeriesPoint> points_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_SIM_TIME_SERIES_H_
