#include "src/kexec/kexec.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/logging.h"

namespace hypertp {

KernelImage KernelImage::Kvm() {
  return KernelImage{"kvmish-5.3", HypervisorKind::kKvm, 24ull << 20};
}

KernelImage KernelImage::Xen() {
  // Xen core + dom0 kernel + initramfs: a bigger bundle, two-stage boot.
  return KernelImage{"xenvisor-4.12+dom0", HypervisorKind::kXen, 48ull << 20};
}

KernelImage KernelImage::Bhyve() {
  return KernelImage{"bhyvish-13.1", HypervisorKind::kBhyve, 28ull << 20};
}

KernelImage KernelImage::For(HypervisorKind kind) {
  switch (kind) {
    case HypervisorKind::kXen:
      return Xen();
    case HypervisorKind::kKvm:
      return Kvm();
    case HypervisorKind::kBhyve:
      return Bhyve();
  }
  return Kvm();
}

std::string FormatKexecCmdline(Mfn pram_root, Mfn ledger) {
  char buf[128];
  if (pram_root == 0) {
    std::snprintf(buf, sizeof(buf), "console=ttyS0 ro");
  } else {
    std::snprintf(buf, sizeof(buf), "console=ttyS0 ro pram=0x%" PRIx64, pram_root);
  }
  std::string cmdline = buf;
  if (ledger != 0) {
    std::snprintf(buf, sizeof(buf), " tpledger=0x%" PRIx64, ledger);
    cmdline += buf;
  }
  return cmdline;
}

namespace {

// Extracts `key=<number>` from the command line; 0 when the key is absent.
Result<Mfn> ParseMfnParam(const std::string& cmdline, const std::string& key) {
  const size_t pos = cmdline.find(key + "=");
  if (pos == std::string::npos) {
    return Mfn{0};
  }
  const char* value = cmdline.c_str() + pos + key.size() + 1;
  char* end = nullptr;
  const uint64_t mfn = std::strtoull(value, &end, 0);
  if (end == value) {
    return InvalidArgumentError("kexec: unparsable " + key + "= value in '" + cmdline + "'");
  }
  return mfn;
}

}  // namespace

Result<Mfn> ParsePramPointer(const std::string& cmdline) {
  return ParseMfnParam(cmdline, "pram");
}

Result<Mfn> ParseLedgerPointer(const std::string& cmdline) {
  return ParseMfnParam(cmdline, "tpledger");
}

Result<void> KexecController::LoadImage(const KernelImage& image) {
  if (staged_) {
    // Replace: release the previous staging area.
    HYPERTP_RETURN_IF_ERROR(machine_->memory().Free(staged_base_, staged_frames_));
    staged_.reset();
  }
  const uint64_t frames = (image.size_bytes + kPageSize - 1) / kPageSize;
  HYPERTP_ASSIGN_OR_RETURN(
      Mfn base,
      machine_->memory().Alloc(frames, 1, FrameOwner{FrameOwnerKind::kKernelImage, 0}));
  staged_ = image;
  staged_base_ = base;
  staged_frames_ = frames;
  HYPERTP_LOG(kInfo, "kexec") << "staged kernel image '" << image.name << "' ("
                              << (image.size_bytes >> 20) << " MiB) at mfn " << base;
  return OkResult();
}

Result<KexecBootResult> KexecController::Reboot(const std::string& cmdline) {
  if (!staged_) {
    return FailedPreconditionError("kexec: no kernel image staged");
  }
  const KernelImage image = *staged_;
  staged_.reset();

  const HostCostProfile& costs = machine_->profile().costs;
  KexecBootResult result;
  result.booted_kernel = image.name;
  HYPERTP_ASSIGN_OR_RETURN(result.pram_root, ParsePramPointer(cmdline));
  HYPERTP_ASSIGN_OR_RETURN(result.ledger_mfn, ParseLedgerPointer(cmdline));

  // The jump consumes the staged image (the new kernel relocates itself);
  // its staging frames go back to the pool before the scrub.
  HYPERTP_RETURN_IF_ERROR(machine_->memory().Free(staged_base_, staged_frames_));

  // --- Early boot: parse PRAM and compute the preservation list. ----------
  std::vector<FrameExtent> preserve;
  uint64_t preserved_guest_bytes = 0;
  bool pram_ok = true;
  std::string pram_error;
  if (result.pram_root != 0) {
    auto image_or = ParsePram(machine_->memory(), result.pram_root);
    if (!image_or.ok()) {
      pram_ok = false;
      pram_error = image_or.error().ToString();
    } else {
      result.pram = std::move(*image_or);
      auto preserve_or =
          PramPreservationList(machine_->memory(), result.pram_root, result.pram);
      if (!preserve_or.ok()) {
        pram_ok = false;
        pram_error = preserve_or.error().ToString();
      } else {
        preserve = std::move(*preserve_or);
        for (const PramFile& file : result.pram.files) {
          preserved_guest_bytes += file.size_bytes;
        }
      }
    }
  }

  // The transplant ledger survives the scrub independently of the PRAM
  // structure — it is the one page that must outlive a botched handoff.
  if (result.ledger_mfn != 0 && machine_->memory().IsAllocated(result.ledger_mfn)) {
    HYPERTP_ASSIGN_OR_RETURN(FrameOwner ledger_owner,
                             machine_->memory().OwnerOf(result.ledger_mfn));
    preserve.push_back(FrameExtent{result.ledger_mfn, 1, ledger_owner});
  }

  // --- Scrub everything not reserved. --------------------------------------
  result.frames_scrubbed = machine_->memory().ScrubExcept(preserve);

  // --- Timing. --------------------------------------------------------------
  const SimDuration kernel_boot = image.kind == HypervisorKind::kXen
                                      ? costs.boot_xen + costs.boot_dom0
                                      : costs.boot_linux;
  const double preserved_gb =
      static_cast<double>(preserved_guest_bytes) / static_cast<double>(1ull << 30);
  result.pram_parse_time =
      static_cast<SimDuration>(static_cast<double>(costs.pram_parse_per_gb) * preserved_gb);
  result.reboot_time = costs.kexec_jump + kernel_boot + result.pram_parse_time;
  // The NIC driver probes early in the (first) kernel's boot; guests only
  // see the network once link training and driver init complete.
  result.network_ready = costs.kexec_jump + costs.nic_init;

  HYPERTP_LOG(kInfo, "kexec") << "rebooted into '" << image.name << "', scrubbed "
                              << result.frames_scrubbed << " frames, preserved "
                              << result.pram.files.size() << " PRAM files";

  if (tracer_ != nullptr) {
    SimTime t = trace_base_;
    const SpanId jump =
        tracer_->AddSpan("kexec:jump", t, costs.kexec_jump, trace_parent_, "kexec");
    tracer_->SetAttribute(jump, "kernel", std::string_view(image.name));
    tracer_->SetAttribute(jump, "frames_scrubbed",
                          static_cast<int64_t>(result.frames_scrubbed));
    t += costs.kexec_jump;
    tracer_->AddSpan("kexec:kernel_boot", t, kernel_boot, trace_parent_, "kexec");
    t += kernel_boot;
    const SpanId parse =
        tracer_->AddSpan("kexec:pram_parse", t, result.pram_parse_time, trace_parent_, "kexec");
    tracer_->SetAttribute(parse, "pram_files", static_cast<int64_t>(result.pram.files.size()));
    tracer_->SetAttribute(parse, "ok", pram_ok);
  }

  if (!pram_ok) {
    return DataLossError("kexec: PRAM handoff failed (" + pram_error +
                         "); all guest memory was scrubbed");
  }
  return result;
}

}  // namespace hypertp
