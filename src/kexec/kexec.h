// Kexec: micro-reboot of the simulated machine (paper §4.2.4).
//
// A target kernel image is staged into RAM ahead of time (step ❶ of the
// InPlaceTP workflow). Reboot() then models the kexec jump: the PRAM pointer
// travels on the new kernel's command line; the new kernel's early boot
// parses the PRAM structure, reserves every frame it describes, and scrubs
// all other RAM — so a missing or corrupt PRAM reservation really does
// destroy guest memory, exactly as on hardware.

#ifndef HYPERTP_SRC_KEXEC_KEXEC_H_
#define HYPERTP_SRC_KEXEC_KEXEC_H_

#include <optional>
#include <string>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"
#include "src/obs/trace.h"
#include "src/pram/pram.h"
#include "src/sim/time.h"

namespace hypertp {

struct KernelImage {
  std::string name;  // "kvmish-5.3", "xenvisor-4.12+dom0".
  HypervisorKind kind = HypervisorKind::kKvm;
  uint64_t size_bytes = 24ull << 20;

  // The stock images for the repertoire. The Xen image bundles the Xen core
  // and the dom0 kernel (type-I boots two kernels).
  static KernelImage Kvm();
  static KernelImage Xen();
  static KernelImage Bhyve();
  static KernelImage For(HypervisorKind kind);
};

// Builds/parses the kernel command line carrying the PRAM pointer and,
// optionally, the transplant-ledger frame used by the post-pause recovery
// handshake, e.g. "console=ttyS0 pram=0x1a2b tpledger=0x1f". A zero MFN
// means "absent" for either parameter.
std::string FormatKexecCmdline(Mfn pram_root, Mfn ledger = 0);
Result<Mfn> ParsePramPointer(const std::string& cmdline);
Result<Mfn> ParseLedgerPointer(const std::string& cmdline);

struct KexecBootResult {
  // Time from the kexec jump until the new kernel can run restorations:
  // jump + kernel boot(s) + sequential early-boot PRAM parse.
  SimDuration reboot_time = 0;
  // Of which: the early-boot PRAM parse (sequential, no monitoring possible).
  SimDuration pram_parse_time = 0;
  // When (relative to the jump) the physical NIC is usable again.
  SimDuration network_ready = 0;
  uint64_t frames_scrubbed = 0;
  // The parsed PRAM image the new kernel found (empty when none was passed).
  PramImage pram;
  Mfn pram_root = 0;
  // Transplant-ledger frame from the command line (0 when absent). The frame
  // itself is added to the scrub preservation list, so the record of how far
  // the previous world got survives even a botched PRAM handoff.
  Mfn ledger_mfn = 0;
  std::string booted_kernel;
};

class KexecController {
 public:
  explicit KexecController(Machine& machine) : machine_(&machine) {}

  // Observability: a successful Reboot() records "kexec:jump",
  // "kexec:kernel_boot" and "kexec:pram_parse" spans laid out back-to-back
  // from `base` (their durations sum to KexecBootResult::reboot_time), all
  // children of `parent`. Null tracer (the default) records nothing. The
  // caller re-arms before each Reboot; the reference is not retained past it.
  void SetTrace(Tracer* tracer, SimTime base, SpanId parent = 0) {
    tracer_ = tracer;
    trace_base_ = base;
    trace_parent_ = parent;
  }

  // Stages `image` into RAM (owner kKernelImage). Runs while VMs execute;
  // costs no downtime. Staging twice replaces the previous image.
  Result<void> LoadImage(const KernelImage& image);

  bool HasStagedImage() const { return staged_.has_value(); }
  const KernelImage* staged_image() const { return staged_ ? &*staged_ : nullptr; }

  // Performs the micro-reboot. The caller must have detached the old
  // hypervisor (its frames are reclaimed by the scrub). On success the
  // machine is "running" the staged kernel and the staged image is consumed.
  //
  // Fails with kFailedPrecondition when no image is staged, and with
  // kDataLoss when the command line names a PRAM pointer whose structure
  // does not parse — in which case the scrub has already destroyed all
  // unreserved RAM, like a real botched reboot would.
  Result<KexecBootResult> Reboot(const std::string& cmdline);

 private:
  Machine* machine_;
  std::optional<KernelImage> staged_;
  Mfn staged_base_ = 0;
  uint64_t staged_frames_ = 0;
  Tracer* tracer_ = nullptr;
  SimTime trace_base_ = 0;
  SpanId trace_parent_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_KEXEC_KEXEC_H_
