#include "src/guest/guest_image.h"

#include <algorithm>
#include <set>

namespace hypertp {
namespace {

constexpr uint64_t kBootMagic = 0x4755455354ull;  // "GUEST".

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9E3779B97F4A7C15ull + b + 0x632BE59BD9B4E019ull;
  x ^= x >> 31;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 29;
  return x;
}

// Deterministic scattered chain GFNs: unique, in (0, pages-1).
std::vector<Gfn> ChainGfns(uint64_t seed, uint64_t pages, uint32_t length) {
  std::vector<Gfn> gfns;
  std::set<Gfn> used = {0, pages - 1};  // Boot + summary pages.
  gfns.reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    Gfn gfn = 1 + Mix(seed, i) % (pages - 2);
    while (used.count(gfn) != 0) {
      gfn = 1 + (gfn + 1) % (pages - 2);  // Linear probe on collision.
    }
    used.insert(gfn);
    gfns.push_back(gfn);
  }
  return gfns;
}

// A chain page's content word encodes (seq, next gfn, seed fingerprint).
uint64_t ChainWord(uint64_t seed, uint32_t seq, Gfn next_gfn) {
  return ((Mix(seed, 0x1000 + seq) & 0xFFFFF) ^ (next_gfn << 24) ^
          (static_cast<uint64_t>(seq) << 4)) |
         1;  // Never zero.
}

}  // namespace

Result<GuestImageInfo> InstallGuestImage(Hypervisor& hv, VmId id, uint64_t seed) {
  HYPERTP_ASSIGN_OR_RETURN(VmInfo vm, hv.GetVmInfo(id));
  const uint64_t pages = vm.memory_bytes / kPageSize;
  if (pages < 16) {
    return InvalidArgumentError("guest image needs at least 16 pages of guest memory");
  }
  GuestImageInfo info;
  info.seed = seed;
  info.chain_length = static_cast<uint32_t>(std::min<uint64_t>(pages / 64 + 4, 512));
  info.summary_gfn = pages - 1;

  // Boot page.
  HYPERTP_RETURN_IF_ERROR(hv.WriteGuestPage(id, 0, Mix(vm.uid, kBootMagic)));

  // Pointer chain.
  const std::vector<Gfn> gfns = ChainGfns(seed, pages, info.chain_length);
  uint64_t summary = Mix(seed, kBootMagic);
  for (uint32_t i = 0; i < info.chain_length; ++i) {
    const Gfn next = i + 1 < info.chain_length ? gfns[i + 1] : 0;
    const uint64_t word = ChainWord(seed, i, next);
    HYPERTP_RETURN_IF_ERROR(hv.WriteGuestPage(id, gfns[i], word));
    summary = Mix(summary, word);
  }

  // Summary page folds the whole chain.
  HYPERTP_RETURN_IF_ERROR(hv.WriteGuestPage(id, info.summary_gfn, summary | 1));
  return info;
}

Result<void> VerifyGuestImage(Hypervisor& hv, VmId id, const GuestImageInfo& info) {
  HYPERTP_ASSIGN_OR_RETURN(VmInfo vm, hv.GetVmInfo(id));
  const uint64_t pages = vm.memory_bytes / kPageSize;

  // Boot page.
  HYPERTP_ASSIGN_OR_RETURN(uint64_t boot, hv.ReadGuestPage(id, 0));
  if (boot != Mix(vm.uid, kBootMagic)) {
    return DataLossError("guest image: boot page magic mismatch (uid " +
                         std::to_string(vm.uid) + ")");
  }

  // Walk the chain following the *stored* next pointers, cross-checking them
  // against the expected layout — a swapped or relocated page breaks both.
  const std::vector<Gfn> expected = ChainGfns(info.seed, pages, info.chain_length);
  uint64_t summary = Mix(info.seed, kBootMagic);
  Gfn cursor = expected.empty() ? 0 : expected[0];
  for (uint32_t i = 0; i < info.chain_length; ++i) {
    if (cursor != expected[i]) {
      return DataLossError("guest image: chain diverged at seq " + std::to_string(i) +
                           " (at gfn " + std::to_string(cursor) + ", expected " +
                           std::to_string(expected[i]) + ")");
    }
    HYPERTP_ASSIGN_OR_RETURN(uint64_t word, hv.ReadGuestPage(id, cursor));
    const Gfn next = i + 1 < info.chain_length ? expected[i + 1] : 0;
    if (word != ChainWord(info.seed, i, next)) {
      return DataLossError("guest image: corrupt chain page at gfn " + std::to_string(cursor) +
                           " (seq " + std::to_string(i) + ")");
    }
    summary = Mix(summary, word);
    // Decode the stored next pointer and follow it.
    cursor = next;
  }

  HYPERTP_ASSIGN_OR_RETURN(uint64_t stored_summary, hv.ReadGuestPage(id, info.summary_gfn));
  if (stored_summary != (summary | 1)) {
    return DataLossError("guest image: summary checksum mismatch");
  }
  return OkResult();
}

}  // namespace hypertp
