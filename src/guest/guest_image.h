// Synthetic guest OS image: self-referential structures written into guest
// memory, used to prove that a transplant/migration preserved not just the
// bytes but the *relationships between pages*.
//
// The image consists of:
//   - a boot page at GFN 0 carrying a magic derived from the VM's uid;
//   - a pointer chain of pages scattered pseudo-randomly across the address
//     space, where each page's content word encodes its sequence number AND
//     the GFN of the next chain page — a relocation or page swap breaks it;
//   - a summary page whose word folds a checksum over the entire chain.
//
// VerifyGuestImage walks everything through the public Hypervisor interface,
// so it validates the GFN->MFN translation path of whichever hypervisor
// currently runs the VM. This is the closest simulation analogue to "the
// guest kernel keeps working after the transplant".

#ifndef HYPERTP_SRC_GUEST_GUEST_IMAGE_H_
#define HYPERTP_SRC_GUEST_GUEST_IMAGE_H_

#include "src/base/result.h"
#include "src/hv/hypervisor.h"

namespace hypertp {

struct GuestImageInfo {
  uint64_t seed = 0;
  uint32_t chain_length = 0;
  Gfn summary_gfn = 0;
};

// Writes the image into the VM's memory. The VM must be running or paused;
// roughly chain_length+2 pages are written. Chain length adapts to the VM's
// memory size (up to 512 pages).
Result<GuestImageInfo> InstallGuestImage(Hypervisor& hv, VmId id, uint64_t seed);

// Re-walks the image and validates every page and link. Returns
// kDataLoss with a precise description on the first broken invariant.
Result<void> VerifyGuestImage(Hypervisor& hv, VmId id, const GuestImageInfo& info);

}  // namespace hypertp

#endif  // HYPERTP_SRC_GUEST_GUEST_IMAGE_H_
