// Fleet control-plane vocabulary: host state machine, rollout configuration
// and the structured events every transition emits.
//
// A fleet rollout is the datacenter-wide act behind Fig. 1(b): once the
// transplant decision is made, hundreds-to-thousands of hosts must each
// drain, micro-reboot into the alternate hypervisor and come back — under a
// blast-radius cap, with real failures and retries. The closed-form
// `FleetTransplantTime` collapses all of that into one multiplication; the
// types here are what the event-driven `FleetController` executes instead.

#ifndef HYPERTP_SRC_FLEET_FLEET_TYPES_H_
#define HYPERTP_SRC_FLEET_FLEET_TYPES_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "src/sim/time.h"

namespace hypertp {

class Tracer;

// Host lifecycle: kServing -> kDraining -> kTransplanting -> kServing
// (upgraded) | kFailed. A failed transplant retries from kTransplanting;
// only exhausting the retry budget parks the host in kFailed. A post-pause
// fault (the host died after committing to the micro-reboot) detours through
// kRollingBack: the host re-instantiates the source hypervisor from its PRAM
// ledger, and either resumes serving un-upgraded (the failure was
// recoverable — normal retry policy applies) or is lost for good (fatal; no
// retry can help a host whose ledger rollback failed).
enum class FleetHostState : uint8_t {
  kServing,
  kDraining,
  kTransplanting,
  kFailed,
  kRollingBack,  // Appended: keep serialized values stable.
};

std::string_view FleetHostStateName(FleetHostState state);

struct FleetHost {
  int id = 0;
  // Anti-affinity bucket (rack / power feed); assigned round-robin.
  int fault_domain = 0;
  FleetHostState state = FleetHostState::kServing;
  bool upgraded = false;
  int attempts = 0;             // Transplant attempts so far.
  SimTime drain_started = -1;
  SimTime transplant_started = -1;
  SimTime finished = -1;        // Upgraded or permanently failed.
};

enum class FleetEventType : uint8_t {
  kRolloutStart,
  kWaveStart,
  kDrainStart,
  kTransplantStart,
  kTransplantDone,
  kTransplantFailed,   // One attempt failed; a retry may follow.
  kRetryScheduled,
  kHostFailed,         // Retry budget exhausted.
  kWaveDone,
  kRolloutComplete,
  kRolloutAborted,     // Fleet-level abort threshold crossed.
  // Appended (replay/JSON compatibility): post-pause recovery detour.
  kRollbackStart,      // Post-pause fault; host attempts PRAM ledger rollback.
  kRollbackSucceeded,  // Back to serving the source hypervisor; retry follows.
  kRollbackFailed,     // Ledger torn/uncommitted: host lost, no retry.
};

std::string_view FleetEventTypeName(FleetEventType type);

// One timestamped state transition. `host`/`wave` are -1 for fleet-scope
// events; `attempt` is 1-based for transplant attempts, 0 otherwise.
struct FleetEvent {
  SimTime time = 0;
  FleetEventType type = FleetEventType::kRolloutStart;
  int host = -1;
  int wave = -1;
  int attempt = 0;
};

struct FleetConfig {
  int hosts = 100;
  // Wave width: at most this many transplants in flight at once (the
  // blast-radius bound, mirroring FleetProfile::parallel_hosts).
  int parallel_hosts = 10;

  // Per-host timings. With the defaults (no drain, 10 s per host, no jitter,
  // no failures) the rollout makespan equals the closed-form
  // FleetTransplantTime exactly.
  SimDuration drain_time = 0;
  SimDuration per_host_transplant = Seconds(10);
  // Derive drain/transplant durations from the §5.4 cluster model
  // (PlanClusterUpgrade/ExecuteClusterUpgrade) instead of the constants.
  bool use_cluster_timing = false;
  double inplace_fraction = 0.8;  // VM share riding the micro-reboot in place.
  // Modeled conversion workers per host for the cluster-derived timing: the
  // per-VM translate+restore share of each in-place upgrade is re-laid-out by
  // the worker-pool schedule (src/sim/worker_pool.h) over the pipeline stage
  // cost models instead of the serial constant. 0 keeps the legacy constant
  // inplace_upgrade_time, so seeded replays of existing configs are
  // byte-identical. Only meaningful with use_cluster_timing.
  int conversion_workers = 0;
  // Share of each host's guests assumed dirty at pause time under speculative
  // pre-translation: dirty guests pay the full per-VM translate inside the
  // micro-reboot window, clean ones only the generation check. 1.0 (the
  // default) reproduces the legacy per-host cost exactly, so seeded replays
  // of existing configs are unchanged. Only meaningful with
  // use_cluster_timing and conversion_workers > 0.
  double pretranslate_dirty_fraction = 1.0;

  // Anti-affinity: hosts spread round-robin over `fault_domains`; a wave
  // holds at most `max_per_domain_in_flight` hosts of one domain
  // (0 = unconstrained).
  int fault_domains = 1;
  int max_per_domain_in_flight = 0;

  // Fault injection (all draws come from per-host forks of `seed`, so the
  // outcome of host i never depends on scheduling order).
  double failure_probability = 0.0;  // Per transplant attempt.
  double latency_jitter = 0.0;       // Lognormal sigma on per-host durations.
  int max_retries = 3;               // Retries after the initial attempt.
  SimDuration retry_backoff = Seconds(5);  // Doubles per consecutive failure.
  // Abort the rollout when the permanently-failed fraction strictly exceeds
  // this; >= 1.0 disables the abort.
  double abort_threshold = 1.0;
  // Fraction of failed attempts that are post-pause faults (the host already
  // committed its ledger and micro-rebooted): those hosts must roll back via
  // PRAM before the retry policy applies. 0 keeps the legacy draw sequence,
  // so seeded replays of existing configs are unchanged.
  double post_pause_fraction = 0.0;
  // Probability a rollback itself fails (torn ledger / corrupt image): the
  // host is lost immediately, bypassing the retry budget.
  double rollback_failure_probability = 0.0;
  SimDuration rollback_time = Seconds(5);  // Second micro-reboot + restore.

  uint64_t seed = 1;
  size_t trace_capacity = 65536;  // Ring buffer: oldest events drop first.

  // Wave admission gate for an external coordinator (the campaign control
  // plane's SLO governor): consulted with the next wave's index and the
  // current sim time before each wave is composed. A positive return defers
  // the wave by that long (and the gate is consulted again when it fires);
  // <= 0 admits the wave immediately. Null (the default) never defers.
  // Determinism contract: the gate must be a pure function of sim time and
  // of state that only changes at coordinator barriers, never of wall-clock
  // or cross-shard event interleaving.
  std::function<SimDuration(int wave, SimTime now)> wave_pacer;

  // Observability: when non-null, every host state transition opens/closes a
  // span on that host's track (an upgrade wave renders as one swimlane per
  // host in Perfetto), waves and the rollout get spans of their own, and
  // timestamps come from the driving executor. Null records nothing; the
  // FleetTrace ring above is unaffected either way.
  Tracer* tracer = nullptr;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_FLEET_FLEET_TYPES_H_
