// Fleet control-plane vocabulary: host state machine, rollout configuration
// and the structured events every transition emits.
//
// A fleet rollout is the datacenter-wide act behind Fig. 1(b): once the
// transplant decision is made, hundreds-to-thousands of hosts must each
// drain, micro-reboot into the alternate hypervisor and come back — under a
// blast-radius cap, with real failures and retries. The closed-form
// `FleetTransplantTime` collapses all of that into one multiplication; the
// types here are what the event-driven `FleetController` executes instead.

#ifndef HYPERTP_SRC_FLEET_FLEET_TYPES_H_
#define HYPERTP_SRC_FLEET_FLEET_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "src/policy/policy.h"
#include "src/pram/ledger.h"
#include "src/sim/time.h"

namespace hypertp {

class MetricsRegistry;
class Tracer;

// Host lifecycle: kServing -> kDraining -> kTransplanting -> kServing
// (upgraded) | kFailed. A failed transplant retries from kTransplanting;
// only exhausting the retry budget parks the host in kFailed. A post-pause
// fault (the host died after committing to the micro-reboot) detours through
// kRollingBack: the host re-instantiates the source hypervisor from its PRAM
// ledger, and either resumes serving un-upgraded (the failure was
// recoverable — normal retry policy applies) or is lost for good (fatal; no
// retry can help a host whose ledger rollback failed).
enum class FleetHostState : uint8_t {
  kServing,
  kDraining,
  kTransplanting,
  kFailed,
  kRollingBack,  // Appended: keep serialized values stable.
  // Appended (ReHype-mode crash recovery): the host's hypervisor crashed
  // mid-traffic. kCrashed hosts queue for an unplanned micro-reboot recovery
  // (priority over upgrade waves); kRecovering hosts are mid-recovery.
  kCrashed,
  kRecovering,
  // Appended (campaign work-stealing): the host's whole rack was re-homed to
  // another shard's controller at an epoch barrier. A detached host is no
  // longer this controller's responsibility — it leaves the report totals and
  // the exposure count, and no event ever targets it again.
  kDetached,
};

std::string_view FleetHostStateName(FleetHostState state);

struct FleetHost {
  int id = 0;
  // Anti-affinity bucket (rack / power feed); assigned round-robin.
  int fault_domain = 0;
  FleetHostState state = FleetHostState::kServing;
  bool upgraded = false;
  int attempts = 0;             // Transplant attempts so far.
  SimTime drain_started = -1;
  SimTime transplant_started = -1;
  SimTime finished = -1;        // Upgraded or permanently failed.
  // Crash-recovery bookkeeping (only meaningful once a storm struck this
  // host): when the crash hit, what the crash left of the ledger, and how
  // many unplanned-recovery attempts have run.
  SimTime crash_started = -1;
  CrashLedgerState crash_ledger = CrashLedgerState::kCleanCommit;
  int recovery_attempts = 0;
};

enum class FleetEventType : uint8_t {
  kRolloutStart,
  kWaveStart,
  kDrainStart,
  kTransplantStart,
  kTransplantDone,
  kTransplantFailed,   // One attempt failed; a retry may follow.
  kRetryScheduled,
  kHostFailed,         // Retry budget exhausted.
  kWaveDone,
  kRolloutComplete,
  kRolloutAborted,     // Fleet-level abort threshold crossed.
  // Appended (replay/JSON compatibility): post-pause recovery detour.
  kRollbackStart,      // Post-pause fault; host attempts PRAM ledger rollback.
  kRollbackSucceeded,  // Back to serving the source hypervisor; retry follows.
  kRollbackFailed,     // Ledger torn/uncommitted: host lost, no retry.
  // Appended: ReHype-mode crash recovery under a fault storm.
  kHostCrashed,        // Injected hypervisor crash struck a serving host.
  kRecoveryStart,      // Unplanned micro-reboot recovery attempt begins.
  kRecoveryRetry,      // Recovery attempt failed; a retry is scheduled.
  kRecoveryDone,       // Host back to serving (salvaged or live-recovered).
  kCrashRollback,      // Salvage reverted an upgraded host to the vulnerable
                       // source kind (crash-induced rollback; re-exposes).
  kHostLost,           // VMs lost: torn/stale ledger, recovery budget
                       // exhausted, or a fixed fleet that cannot recover.
  // Appended: adaptive mechanism policy (src/policy/).
  kHostRefused,        // Policy refused a guest on this host: neither
                       // mechanism met its budget. Host keeps serving the
                       // vulnerable hypervisor, never enters a wave.
  // Appended: campaign work-stealing (whole-rack re-homing at barriers).
  kHostDetached,       // This unstarted host's rack was stolen by another
                       // shard; it leaves this controller's books.
  kHostsAdopted,       // A stolen rack arrived: `attempt` carries the host
                       // count, `host` the first adopted local id.
};

std::string_view FleetEventTypeName(FleetEventType type);

// One timestamped state transition. `host`/`wave` are -1 for fleet-scope
// events; `attempt` is 1-based for transplant attempts, 0 otherwise.
struct FleetEvent {
  SimTime time = 0;
  FleetEventType type = FleetEventType::kRolloutStart;
  int host = -1;
  int wave = -1;
  int attempt = 0;
};

// Upper bound for saturated retry backoff: far beyond any simulated rollout,
// yet small enough that `now + backoff` can never overflow SimTime no matter
// how many times it compounds.
inline constexpr SimDuration kRetryBackoffCeiling = Seconds(30) * 86400;  // 30 days.

// Exponential backoff that saturates instead of overflowing: base, 2x, 4x...
// per consecutive failure, clamped at kRetryBackoffCeiling. The naive
// `base << failures` overflows SimDuration (int64 ns) after ~33 doublings of
// a 5 s base — a long fault storm reaches 30+ retries — flipping the next
// retry time negative. Saturation keeps a parked host's next-retry time
// finite and monotone in the failure count. A base already above the ceiling
// is returned unchanged (never shorten a configured backoff).
constexpr SimDuration SaturatingBackoff(SimDuration base, int consecutive_failures) {
  if (base <= 0) {
    return 0;
  }
  if (consecutive_failures <= 0 || base >= kRetryBackoffCeiling) {
    return base;
  }
  const int shift = std::min(consecutive_failures, 62);
  if (base > (kRetryBackoffCeiling >> shift)) {
    return kRetryBackoffCeiling;
  }
  return base << shift;
}

// Seeded hypervisor-crash storm: hosts suffer unplanned crashes mid-traffic
// and the fleet answers with ReHype-mode micro-reboot recoveries from the
// last PRAM image. All defaults off: a zero rate leaves legacy configs with
// byte-identical draws, events and reports.
struct CrashStormConfig {
  // Poisson arrival rate of crash events per hour of sim time, fleet-wide.
  // 0 disables the storm entirely.
  double rate_per_hour = 0.0;
  // Hosts struck per crash event (correlated bursts: a rack PDU dip, a bad
  // microcode push). Victims draw uniformly from currently-serving hosts.
  int burst = 1;
  // Storm window relative to rollout start; duration 0 = the storm lasts as
  // long as the rollout does.
  SimDuration start = 0;
  SimDuration duration = 0;
  // Crash-time ledger state mix (CrashLedgerState, src/pram/ledger.h): the
  // fraction of crashes that find each non-clean state. The remainder finds
  // a cleanly committed image. Outcomes follow DecideSalvage(), so the
  // simulated distribution and the byte-level ledger triage share one table.
  double pre_pause_fraction = 0.0;
  double mid_save_torn_fraction = 0.0;
  double stale_commit_fraction = 0.0;
  double scrubbed_fraction = 0.0;
  // false replays the same storm against a fixed fleet that cannot recover:
  // crashed hosts stay down with their VMs lost (the control arm of the
  // fixed-vs-recovering comparison).
  bool recover = true;
  // Unplanned-recovery scheduling: micro-reboot + salvage/adopt duration,
  // per-attempt failure odds, and a retry budget with *saturating* backoff —
  // distinct from the upgrade retry policy so a storm cannot starve it.
  SimDuration recovery_time = Seconds(8);
  double recovery_failure_probability = 0.0;
  int recovery_max_retries = 3;
  SimDuration recovery_backoff = Seconds(2);
  // Probability a salvage re-instantiates the campaign's *target* kind from
  // the kind-neutral UISR image instead of the ledger's source kind: an
  // upgraded host keeps its upgrade through the crash, an un-upgraded one
  // comes back upgraded early. Same-kind salvage of an upgraded host is a
  // crash-induced rollback (the host re-exposes and re-queues).
  double cross_kind_fraction = 0.0;

  bool enabled() const { return rate_per_hour > 0.0; }
};

struct FleetConfig {
  int hosts = 100;
  // Wave width: at most this many transplants in flight at once (the
  // blast-radius bound, mirroring FleetProfile::parallel_hosts).
  int parallel_hosts = 10;

  // Per-host timings. With the defaults (no drain, 10 s per host, no jitter,
  // no failures) the rollout makespan equals the closed-form
  // FleetTransplantTime exactly.
  SimDuration drain_time = 0;
  SimDuration per_host_transplant = Seconds(10);
  // Derive drain/transplant durations from the §5.4 cluster model
  // (PlanClusterUpgrade/ExecuteClusterUpgrade) instead of the constants.
  bool use_cluster_timing = false;
  double inplace_fraction = 0.8;  // VM share riding the micro-reboot in place.
  // Modeled conversion workers per host for the cluster-derived timing: the
  // per-VM translate+restore share of each in-place upgrade is re-laid-out by
  // the worker-pool schedule (src/sim/worker_pool.h) over the pipeline stage
  // cost models instead of the serial constant. 0 keeps the legacy constant
  // inplace_upgrade_time, so seeded replays of existing configs are
  // byte-identical. Only meaningful with use_cluster_timing.
  int conversion_workers = 0;
  // Share of each host's guests assumed dirty at pause time under speculative
  // pre-translation: dirty guests pay the full per-VM translate inside the
  // micro-reboot window, clean ones only the generation check. 1.0 (the
  // default) reproduces the legacy per-host cost exactly, so seeded replays
  // of existing configs are unchanged. Only meaningful with
  // use_cluster_timing and conversion_workers > 0.
  double pretranslate_dirty_fraction = 1.0;

  // Anti-affinity: hosts spread round-robin over `fault_domains`; a wave
  // holds at most `max_per_domain_in_flight` hosts of one domain
  // (0 = unconstrained).
  int fault_domains = 1;
  int max_per_domain_in_flight = 0;

  // Campaign work-stealing mode. Two coupled behavior changes, both off by
  // default so every existing seeded replay is byte-identical:
  //   1. The pending queue fills domain-major (rack 0's hosts first) instead
  //      of id-order, so waves pack into the lowest racks and whole high
  //      racks stay fully unstarted — the unit a barrier steal can re-home.
  //   2. A drained rollout (no pending, in-flight or recovery work) does NOT
  //      self-finalize; it records drained_at() and waits for the coordinator
  //      to either AdoptHosts() more work or FinalizeDrained() it, with the
  //      makespan stamped at the drain instant, not the barrier.
  bool hold_open = false;

  // Fault injection (all draws come from per-host forks of `seed`, so the
  // outcome of host i never depends on scheduling order).
  double failure_probability = 0.0;  // Per transplant attempt.
  double latency_jitter = 0.0;       // Lognormal sigma on per-host durations.
  int max_retries = 3;               // Retries after the initial attempt.
  // Doubles per consecutive failure, saturating at kRetryBackoffCeiling
  // (see SaturatingBackoff above).
  SimDuration retry_backoff = Seconds(5);
  // Abort the rollout when the permanently-failed fraction strictly exceeds
  // this; >= 1.0 disables the abort.
  double abort_threshold = 1.0;
  // Fraction of failed attempts that are post-pause faults (the host already
  // committed its ledger and micro-rebooted): those hosts must roll back via
  // PRAM before the retry policy applies. 0 keeps the legacy draw sequence,
  // so seeded replays of existing configs are unchanged.
  double post_pause_fraction = 0.0;
  // Probability a rollback itself fails (torn ledger / corrupt image): the
  // host is lost immediately, bypassing the retry budget.
  double rollback_failure_probability = 0.0;
  SimDuration rollback_time = Seconds(5);  // Second micro-reboot + restore.

  // Injected hypervisor-crash storm + unplanned recovery policy. Disabled by
  // default (rate 0): legacy configs keep their exact draw sequences.
  CrashStormConfig crash_storm;

  // Adaptive mechanism selection (src/policy/). With the default mode
  // (kFixed) the policy is inert: timings, draws, events and reports are
  // byte-identical to pre-policy builds. With kAdaptive, every host's guests
  // are priced per VM (SyntheticVmSignals over the host's *global* id) and
  // the per-host drain/transplant durations and per-VM downtime come from
  // the resulting HostPolicyPlan; hosts with a refused guest are excluded
  // from the rollout and emit kHostRefused.
  policy::PolicyConfig policy;
  // Global host ids for partition invariance: entry i is the fleet-wide id
  // of local host i. Empty = identity (local id == global id). The campaign
  // planner fills this from the datacenter rack layout so a fleet split into
  // any number of shards prices the same VM population identically.
  std::vector<int64_t> policy_host_global_ids;
  // Adaptive-mode decision counters (hypertp_policy_{inplace,migrate,
  // refused}). Null records nothing. Must not be shared across concurrently
  // running controllers (counters are not atomic).
  MetricsRegistry* metrics = nullptr;

  uint64_t seed = 1;
  size_t trace_capacity = 65536;  // Ring buffer: oldest events drop first.

  // Wave admission gate for an external coordinator (the campaign control
  // plane's SLO governor): consulted with the next wave's index and the
  // current sim time before each wave is composed. A positive return defers
  // the wave by that long (and the gate is consulted again when it fires);
  // <= 0 admits the wave immediately. Null (the default) never defers.
  // Determinism contract: the gate must be a pure function of sim time and
  // of state that only changes at coordinator barriers, never of wall-clock
  // or cross-shard event interleaving.
  std::function<SimDuration(int wave, SimTime now)> wave_pacer;

  // Observability: when non-null, every host state transition opens/closes a
  // span on that host's track (an upgrade wave renders as one swimlane per
  // host in Perfetto), waves and the rollout get spans of their own, and
  // timestamps come from the driving executor. Null records nothing; the
  // FleetTrace ring above is unaffected either way.
  Tracer* tracer = nullptr;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_FLEET_FLEET_TYPES_H_
