// Event-driven fleet control plane: executes a datacenter-wide hypervisor
// transplant as concurrent, failure-prone work on the discrete-event
// executor, subsuming the closed-form FleetTransplantTime.
//
// The controller owns N FleetHost state machines and a wave scheduler that
// keeps at most `parallel_hosts` transplants in flight, composing each wave
// under the anti-affinity constraint (at most `max_per_domain_in_flight`
// hosts per fault domain). Each host drains, transplants (per-host duration
// with optional lognormal jitter), and either returns to serving upgraded or
// retries with exponential backoff until the budget runs out. Crossing the
// fleet abort threshold stops the rollout gracefully: remaining hosts keep
// serving the vulnerable hypervisor and the report states the partial
// exposure. Every transition lands in the FleetTrace.

#ifndef HYPERTP_SRC_FLEET_FLEET_CONTROLLER_H_
#define HYPERTP_SRC_FLEET_FLEET_CONTROLLER_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/fleet/fleet_trace.h"
#include "src/fleet/fleet_types.h"
#include "src/obs/trace.h"
#include "src/sim/executor.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace hypertp {

struct FleetRolloutReport {
  int hosts = 0;
  int upgraded = 0;
  int failed = 0;      // Permanently failed (retry budget exhausted).
  int untouched = 0;   // Never started (rollout aborted first).
  int retries = 0;     // Re-attempts across all hosts.
  // Monotone count of successful transplant attempts. `upgraded` is the net
  // serving-upgraded population (crash rollbacks and lost hosts decrement
  // it); rate governors need the gross attempt outcome instead.
  int transplant_successes = 0;
  int waves = 0;
  // Post-pause recovery: attempts that failed after the point of no return,
  // how many of those hosts salvaged themselves by PRAM ledger rollback
  // (and then re-entered the retry policy), and how many were lost because
  // the rollback itself failed (counted in `failed` too).
  int post_pause_faults = 0;
  int rollbacks = 0;
  int rollback_failures = 0;
  // ReHype-mode crash recovery under a fault storm (all zero without one).
  int crashes = 0;                // Hosts struck by an injected hypervisor crash.
  int crash_salvages = 0;         // Recovered from the committed PRAM image.
  int crash_live_recoveries = 0;  // Pre-commit ledger: re-adopted live state.
  int crash_rollbacks = 0;        // Salvage reverted an upgraded host to the
                                  // vulnerable kind (re-exposed, re-queued).
  int crash_upgrades = 0;         // Cross-kind salvage upgraded a host early.
  int crash_data_loss = 0;        // Torn/stale ledger refused every salvage.
  int crash_recovery_retries = 0;
  int lost = 0;  // Hosts permanently down from crashes: ledger data loss,
                 // recovery budget exhausted, or a fleet that cannot recover.
  // Adaptive mechanism policy (all zero/false with policy mode kFixed, and
  // absent from the report JSON so legacy output stays byte-identical).
  int refused = 0;             // Hosts excluded: a guest refused both mechanisms.
  bool policy_adaptive = false;
  int policy_inplace_vms = 0;  // Per-VM decisions across the whole fleet.
  int policy_migrate_vms = 0;
  int policy_refused_vms = 0;
  // Per-VM downtime actually charged by upgraded hosts' plans (each in-place
  // guest's expected pause + each migrated guest's switchover brownout).
  SimDuration policy_vm_downtime = 0;
  // Campaign work-stealing traffic (zero without FleetConfig::hold_open):
  // hosts this controller handed to / received from sibling shards. `hosts`
  // above tracks the *current* responsibility set, so after steals
  // hosts == initial + adopted - detached.
  int adopted_hosts = 0;
  int detached_hosts = 0;
  bool aborted = false;
  bool complete = false;  // Every host upgraded.
  SimDuration makespan = 0;
  // Exposure integral over the rollout (failed/untouched hosts keep
  // accruing exposure after the rollout ends; that tail is the caller's —
  // it depends on when the patch lands).
  double exposed_host_days = 0.0;
  SampleSet wave_latency_seconds;
  // Crash-to-serving latency of every successful unplanned recovery.
  SampleSet recovery_latency_seconds;
};

// {"kind":"fleet_rollout", summary counters, wave-latency percentiles}.
std::string FleetRolloutReportToJson(const FleetRolloutReport& report);

// Per-host drain/transplant durations derived from the §5.4 cluster model:
// a PaperCluster at `inplace_fraction` compatibility is planned
// (PlanClusterUpgrade) and executed (ExecuteClusterUpgrade); the evacuation
// wall-clock amortizes into drain_per_host and the per-group micro-reboot
// becomes transplant_per_host.
struct FleetTimingModel {
  SimDuration drain_per_host = 0;
  SimDuration transplant_per_host = Seconds(10);
};

// `conversion_workers` > 0 replaces the serial per-VM conversion share inside
// the per-group micro-reboot time with the worker-pool schedule's makespan
// over the pipeline stage cost models (C1 host profile); 0 keeps the legacy
// constant, so existing seeded replays are byte-identical.
//
// `pretranslate_dirty_fraction` models speculative pre-translation on each
// host (src/pipeline/pretranslate.h): that fraction of the guests dirtied
// their state between pre-translation and pause and pay the full translate
// inside the micro-reboot window; the rest pay only the generation check.
// 1.0 (every guest dirty) reproduces the exact pre-pretranslation costs.
// Only meaningful with conversion_workers > 0.
FleetTimingModel DeriveFleetTiming(double inplace_fraction, uint64_t seed,
                                   int conversion_workers = 0,
                                   double pretranslate_dirty_fraction = 1.0);

// Rejects degenerate configurations with a field-naming kInvalidArgument
// instead of the silent clamping the controller used to do: hosts and
// parallel_hosts must be positive, fault_domains >= 1, max_retries >= 0,
// durations non-negative, probabilities/fractions inside [0, 1] and the
// jitter sigma non-negative. abort_threshold may exceed 1.0 (that disables
// the abort) but not be negative.
Result<void> ValidateFleetConfig(const FleetConfig& config);

// One fully-unstarted fault domain (rack) a barrier steal could re-home:
// every non-detached member host is still queued with zero attempts.
struct StealableDomain {
  int domain = 0;
  int hosts = 0;
  // Uniform per-host durations of the rack's hosts (DC-scaled by the campaign
  // at construction, or carried along from a previous adoption).
  SimDuration drain_time = 0;
  SimDuration transplant_time = 0;
};

// A rack in flight between two controllers: DetachDomain() produces it,
// AdoptHosts() consumes it. Each host's RNG stream travels with the host, so
// its jitter/failure draws are a function of the steal plan, not of which
// controller happens to schedule it — deterministic for any thread count.
struct DetachedRack {
  int hosts = 0;
  SimDuration drain_time = 0;
  SimDuration transplant_time = 0;
  std::vector<Rng> rngs;
};

class FleetController {
 public:
  // The executor is borrowed, not owned: the operational scenario reuses one
  // executor across many rollouts (an abort must not poison the next run —
  // see SimExecutor::Stop()). Scheduling is relative to executor.now().
  FleetController(SimExecutor& executor, FleetConfig config);
  ~FleetController();
  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  // Drives the executor until the rollout completes or aborts.
  const FleetRolloutReport& Run();

  // Schedules the rollout without draining the executor, for coordinators
  // (the campaign control plane) that advance the executor in bounded steps
  // via RunUntil. Run() == Start() + executor.Run().
  void Start();

  // Externally finalizes an in-flight rollout as aborted (the campaign SLO
  // governor crossing a fleet-wide budget). No-op once finished.
  void Abort();

  // True once the rollout finalized (complete or aborted) — or when the
  // config was rejected at construction and there is nothing to run.
  bool finished() const { return finished_; }

  // Set when the FleetConfig failed validation at construction: the
  // controller is inert (Start/Run return an all-zero report) and the error
  // names the offending field.
  const std::optional<Error>& config_error() const { return config_error_; }

  const FleetRolloutReport& report() const { return report_; }
  const FleetTrace& trace() const { return trace_; }
  const std::vector<FleetHost>& hosts() const { return hosts_; }
  const FleetConfig& config() const { return config_; }

  // --- Campaign work-stealing surface (FleetConfig::hold_open mode). All of
  // these are coordinator-only calls, made strictly at epoch barriers while
  // no shard is advancing, so they need no synchronization.

  // True when the rollout ran dry under hold_open: no pending, in-flight or
  // recovery work, but not finalized — awaiting adoption or FinalizeDrained().
  bool drained() const { return drained_; }
  // Sim time the rollout ran dry (-1 while it has work).
  SimTime drained_at() const { return drained_at_; }

  // Aggregate (drain + transplant) cost of every unstarted host — the
  // numerator of the shard's remaining-work estimate.
  SimDuration PendingWork() const;
  int pending_hosts() const { return static_cast<int>(pending_.size()); }

  // Fault domains whose every live member is still unstarted, in ascending
  // domain order — the racks a barrier steal may re-home without ever
  // splitting one across shards.
  std::vector<StealableDomain> StealableDomains() const;

  // Re-homes the whole (fully-unstarted) domain out of this controller: hosts
  // become kDetached, leave the pending queue, the report totals and the
  // exposure count (silently — ownership moves, exposure does not change).
  DetachedRack DetachDomain(int domain);

  // Adopts a stolen rack as a fresh fault domain: new hosts appended with the
  // rack's per-host durations and travelling RNG streams, queued behind the
  // existing pending work. Restarts the wave loop if the rollout was drained.
  void AdoptHosts(const DetachedRack& rack);

  // Finalizes a drained hold-open rollout as complete, with the makespan
  // stamped at drained_at() — the instant the last work actually finished —
  // not at the barrier that got around to calling this.
  void FinalizeDrained();

 private:
  void Emit(FleetEventType type, int host, int attempt = 0);
  void StartNextWave();
  void StartDrain(int host);
  void StartTransplant(int host);
  void FinishAttempt(int host);
  // Post-pause recovery resolution: the host either returns to serving the
  // source hypervisor (then retries like any failed attempt) or is lost.
  void FinishRollback(int host);
  // Shared tail of every recoverable failure: retry with backoff while the
  // budget lasts, else park the host in kFailed.
  void ScheduleRetryOrFail(int host);
  void HostDone(int host);
  void AccrueExposure();
  void Finalize(FleetEventType terminal);
  // Per-host durations: adopted hosts carry their origin rack's (DC-scaled)
  // timings; native hosts use the config (or policy plan) values.
  SimDuration HostDrainTime(int host) const;
  SimDuration HostTransplantTime(int host) const;
  // ReHype-mode crash recovery (active only when config_.crash_storm is
  // enabled). Crash arrivals draw from storm_rng_, recovery durations and
  // outcome draws from the struck host's own rng.
  void ScheduleNextCrash();
  void CrashEvent();
  void CrashHost(int host);
  CrashLedgerState SampleCrashLedgerState();
  void TryStartRecoveries();
  void StartRecovery(int host);
  void FinishRecovery(int host);
  // Permanently retires a crashed host (VMs lost). `ledger_data_loss` marks
  // losses where the ledger itself refused every salvage, as opposed to a
  // recovery budget running out or a fleet configured not to recover.
  void LoseHost(int host, bool ledger_data_loss);
  // Finalizes kRolloutComplete once no upgrade *and* no recovery work remains.
  void MaybeFinishRollout();
  SimDuration Jittered(SimDuration base, Rng& rng);
  // Wraps a member-call closure with a liveness guard so events left queued
  // after an abort (or controller destruction) dispatch as no-ops.
  std::function<void()> Guarded(void (FleetController::*method)(int), int host);
  std::function<void()> Guarded(void (FleetController::*method)());

  // Closes host `id`'s open span (if any) and optionally opens the next one,
  // so each host's track is a gap-free sequence of state spans.
  SpanId RollHostSpan(int host, std::string_view next_name);

  SimExecutor& executor_;
  FleetConfig config_;
  std::optional<Error> config_error_;
  // Adaptive mechanism policy (engaged when config_.policy.mode == kAdaptive):
  // per-host plans are computed once at construction from each host's global
  // id — pure functions of config, so any partition of the fleet agrees.
  std::optional<policy::MechanismPolicy> policy_;
  std::vector<policy::HostPolicyPlan> host_plans_;
  std::vector<FleetHost> hosts_;
  std::vector<Rng> host_rngs_;  // Forked in id order: interleaving-independent.
  FleetTrace trace_;
  FleetRolloutReport report_;
  std::shared_ptr<bool> alive_;
  // Span bookkeeping (all 0 when config_.tracer is null).
  SpanId rollout_span_ = 0;
  SpanId wave_span_ = 0;
  std::vector<SpanId> host_spans_;  // The one open span per host.

  std::deque<int> pending_;
  // Work-stealing state (hold_open mode): live fault-domain count (grows as
  // racks are adopted), the drained-but-not-finalized flag/instant, and the
  // per-host duration overrides (empty until the first adoption; then entry i
  // is host i's duration — adopted hosts differ from the config values).
  int fault_domain_count_ = 1;
  bool drained_ = false;
  SimTime drained_at_ = -1;
  std::vector<SimDuration> host_drain_override_;
  std::vector<SimDuration> host_transplant_override_;
  // Crash-storm state: a dedicated RNG stream (forked after all host rngs, so
  // legacy configs keep their exact sequences), the queue of crashed hosts
  // awaiting an unplanned recovery, how many recoveries hold worker slots,
  // and when the storm window closes (-1 = open-ended).
  std::optional<Rng> storm_rng_;
  std::deque<int> recovery_queue_;
  int recovering_ = 0;
  SimTime storm_end_ = -1;
  int wave_ = -1;
  int wave_in_flight_ = 0;
  SimTime wave_started_ = 0;
  SimTime base_ = 0;
  SimTime last_exposure_change_ = 0;
  int exposed_ = 0;
  double exposed_host_seconds_ = 0.0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_FLEET_FLEET_CONTROLLER_H_
