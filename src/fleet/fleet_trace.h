// Structured trace for fleet rollouts: a bounded ring buffer of FleetEvents
// plus the fleet exposure timeline (how many hosts still run the vulnerable
// hypervisor at each instant), exported as one JSON document.
//
// The trace is the observability contract of the control plane: two runs
// with the same FleetConfig must serialize to byte-identical JSON, which is
// what fleet_replay_test pins.

#ifndef HYPERTP_SRC_FLEET_FLEET_TRACE_H_
#define HYPERTP_SRC_FLEET_FLEET_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/fleet_types.h"
#include "src/sim/time.h"

namespace hypertp {

// One sample of the exposure timeline: at `time`, `exposed_hosts` hosts had
// not yet reached the safe hypervisor (failed hosts stay exposed). The
// window_model consumes this as host-days via ExposedHostDays().
struct ExposurePoint {
  SimTime time = 0;
  int exposed_hosts = 0;
};

class FleetTrace {
 public:
  explicit FleetTrace(size_t capacity);

  void Record(FleetEvent event);
  void RecordExposure(SimTime time, int exposed_hosts);

  // Events oldest-to-newest (reassembled from the ring).
  std::vector<FleetEvent> Events() const;
  // Events of one type, oldest-to-newest.
  std::vector<FleetEvent> EventsOfType(FleetEventType type) const;

  size_t size() const { return ring_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped() const { return total_recorded_ - ring_.size(); }
  const std::vector<ExposurePoint>& exposure_timeline() const { return exposure_; }

 private:
  size_t capacity_;
  std::vector<FleetEvent> ring_;  // Ring buffer; `head_` is the oldest slot.
  size_t head_ = 0;
  uint64_t total_recorded_ = 0;
  std::vector<ExposurePoint> exposure_;
};

// Integral of the exposure timeline from its first sample to `end`, in
// host-days: the quantity Fig. 1 compares between worlds, but now sensitive
// to stragglers, retries and failures instead of a closed form.
double ExposedHostDays(const FleetTrace& trace, SimTime end);

// {"kind":"fleet_trace","events":[...],"exposure_timeline":[[t,n],...],...}.
// Deterministic: same trace -> same bytes.
std::string FleetTraceToJson(const FleetTrace& trace);

}  // namespace hypertp

#endif  // HYPERTP_SRC_FLEET_FLEET_TRACE_H_
