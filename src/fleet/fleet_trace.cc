#include "src/fleet/fleet_trace.h"

#include <algorithm>

#include "src/base/json.h"

namespace hypertp {

std::string_view FleetHostStateName(FleetHostState state) {
  switch (state) {
    case FleetHostState::kServing:
      return "serving";
    case FleetHostState::kDraining:
      return "draining";
    case FleetHostState::kTransplanting:
      return "transplanting";
    case FleetHostState::kFailed:
      return "failed";
    case FleetHostState::kRollingBack:
      return "rolling_back";
    case FleetHostState::kCrashed:
      return "crashed";
    case FleetHostState::kRecovering:
      return "recovering";
    case FleetHostState::kDetached:
      return "detached";
  }
  return "unknown";
}

std::string_view FleetEventTypeName(FleetEventType type) {
  switch (type) {
    case FleetEventType::kRolloutStart:
      return "rollout_start";
    case FleetEventType::kWaveStart:
      return "wave_start";
    case FleetEventType::kDrainStart:
      return "drain_start";
    case FleetEventType::kTransplantStart:
      return "transplant_start";
    case FleetEventType::kTransplantDone:
      return "transplant_done";
    case FleetEventType::kTransplantFailed:
      return "transplant_failed";
    case FleetEventType::kRetryScheduled:
      return "retry_scheduled";
    case FleetEventType::kHostFailed:
      return "host_failed";
    case FleetEventType::kWaveDone:
      return "wave_done";
    case FleetEventType::kRolloutComplete:
      return "rollout_complete";
    case FleetEventType::kRolloutAborted:
      return "rollout_aborted";
    case FleetEventType::kRollbackStart:
      return "rollback_start";
    case FleetEventType::kRollbackSucceeded:
      return "rollback_succeeded";
    case FleetEventType::kRollbackFailed:
      return "rollback_failed";
    case FleetEventType::kHostCrashed:
      return "host_crashed";
    case FleetEventType::kRecoveryStart:
      return "recovery_start";
    case FleetEventType::kRecoveryRetry:
      return "recovery_retry";
    case FleetEventType::kRecoveryDone:
      return "recovery_done";
    case FleetEventType::kCrashRollback:
      return "crash_rollback";
    case FleetEventType::kHostLost:
      return "host_lost";
    case FleetEventType::kHostRefused:
      return "host_refused";
    case FleetEventType::kHostDetached:
      return "host_detached";
    case FleetEventType::kHostsAdopted:
      return "hosts_adopted";
  }
  return "unknown";
}

FleetTrace::FleetTrace(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void FleetTrace::Record(FleetEvent event) {
  ++total_recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

void FleetTrace::RecordExposure(SimTime time, int exposed_hosts) {
  // Coalesce same-timestamp updates (several hosts finishing in one event
  // round) so the timeline stays a function of time.
  if (!exposure_.empty() && exposure_.back().time == time) {
    exposure_.back().exposed_hosts = exposed_hosts;
    return;
  }
  exposure_.push_back(ExposurePoint{time, exposed_hosts});
}

std::vector<FleetEvent> FleetTrace::Events() const {
  std::vector<FleetEvent> out;
  out.reserve(ring_.size());
  // head_ advances modulo capacity_, so unwrapping must use the same
  // modulus. Using ring_.size() here only coincided while the ring was
  // partially filled (head_ == 0) or exactly full.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::vector<FleetEvent> FleetTrace::EventsOfType(FleetEventType type) const {
  std::vector<FleetEvent> out;
  for (const FleetEvent& event : Events()) {
    if (event.type == type) {
      out.push_back(event);
    }
  }
  return out;
}

double ExposedHostDays(const FleetTrace& trace, SimTime end) {
  const std::vector<ExposurePoint>& timeline = trace.exposure_timeline();
  if (timeline.empty()) {
    return 0.0;
  }
  double host_seconds = 0.0;
  for (size_t i = 0; i < timeline.size(); ++i) {
    const SimTime until = i + 1 < timeline.size() ? timeline[i + 1].time : end;
    if (until <= timeline[i].time) {
      continue;
    }
    host_seconds += ToSeconds(until - timeline[i].time) * timeline[i].exposed_hosts;
  }
  return host_seconds / (24.0 * 3600.0);
}

std::string FleetTraceToJson(const FleetTrace& trace) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("fleet_trace");
  j.Key("total_recorded").Number(trace.total_recorded());
  j.Key("dropped").Number(trace.dropped());
  j.Key("events").BeginArray();
  for (const FleetEvent& event : trace.Events()) {
    j.BeginObject();
    j.Key("t_ns").Number(static_cast<int64_t>(event.time));
    j.Key("type").String(FleetEventTypeName(event.type));
    if (event.host >= 0) {
      j.Key("host").Number(static_cast<int64_t>(event.host));
    }
    if (event.wave >= 0) {
      j.Key("wave").Number(static_cast<int64_t>(event.wave));
    }
    if (event.attempt > 0) {
      j.Key("attempt").Number(static_cast<int64_t>(event.attempt));
    }
    j.EndObject();
  }
  j.EndArray();
  j.Key("exposure_timeline").BeginArray();
  for (const ExposurePoint& point : trace.exposure_timeline()) {
    j.BeginArray();
    j.Number(static_cast<int64_t>(point.time));
    j.Number(static_cast<int64_t>(point.exposed_hosts));
    j.EndArray();
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

}  // namespace hypertp
