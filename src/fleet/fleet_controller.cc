#include "src/fleet/fleet_controller.h"

#include <algorithm>
#include <cmath>

#include "src/base/json.h"
#include "src/base/logging.h"
#include "src/cluster/cluster.h"
#include "src/pipeline/conversion.h"
#include "src/sim/worker_pool.h"

namespace hypertp {

std::string FleetRolloutReportToJson(const FleetRolloutReport& report) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("fleet_rollout");
  j.Key("hosts").Number(static_cast<int64_t>(report.hosts));
  j.Key("upgraded").Number(static_cast<int64_t>(report.upgraded));
  j.Key("failed").Number(static_cast<int64_t>(report.failed));
  j.Key("untouched").Number(static_cast<int64_t>(report.untouched));
  j.Key("retries").Number(static_cast<int64_t>(report.retries));
  j.Key("waves").Number(static_cast<int64_t>(report.waves));
  j.Key("post_pause_faults").Number(static_cast<int64_t>(report.post_pause_faults));
  j.Key("rollbacks").Number(static_cast<int64_t>(report.rollbacks));
  j.Key("rollback_failures").Number(static_cast<int64_t>(report.rollback_failures));
  j.Key("aborted").Bool(report.aborted);
  j.Key("complete").Bool(report.complete);
  j.Key("makespan_ms").Number(ToMillis(report.makespan));
  j.Key("exposed_host_days").Number(report.exposed_host_days);
  j.Key("wave_latency_seconds").BeginObject();
  j.Key("count").Number(static_cast<uint64_t>(report.wave_latency_seconds.count()));
  if (!report.wave_latency_seconds.empty()) {
    j.Key("p50").Number(report.wave_latency_seconds.Percentile(50));
    j.Key("p90").Number(report.wave_latency_seconds.Percentile(90));
    j.Key("p99").Number(report.wave_latency_seconds.Percentile(99));
    j.Key("max").Number(report.wave_latency_seconds.max());
  }
  j.EndObject();
  j.EndObject();
  return j.Take();
}

FleetTimingModel DeriveFleetTiming(double inplace_fraction, uint64_t seed,
                                   int conversion_workers,
                                   double pretranslate_dirty_fraction) {
  FleetTimingModel timing;
  ClusterModel cluster = ClusterModel::PaperCluster(inplace_fraction, seed);
  auto plan = PlanClusterUpgrade(cluster, 2);
  if (!plan.ok()) {
    return timing;  // Keep the defaults; the planner only fails on bad input.
  }
  ClusterExecutionParams params;
  if (conversion_workers > 0) {
    // The constant inplace_upgrade_time assumes the per-VM conversion runs
    // serially inside each host's micro-reboot. With a modeled worker pool,
    // that share is the worker-pool schedule's makespan over the pipeline
    // stage costs for a representative C1 guest set (8 small VMs), so more
    // workers shrink every group's upgrade time — exactly how
    // InPlaceTransplant charges its translation/restoration phases.
    const HostCostProfile& costs = MachineProfile::C1().costs;
    constexpr int kGuestsPerHost = 8;
    constexpr uint32_t kVcpusPerGuest = 2;
    constexpr uint64_t kBytesPerGuest = 4ull << 30;
    // Speculative pre-translation: only the guests assumed dirty at pause
    // time pay the full translate inside the micro-reboot window; the clean
    // remainder pays the generation check. dirty_fraction 1.0 makes every
    // guest dirty, which is exactly the pre-pretranslation cost vector.
    const double dirty = std::clamp(pretranslate_dirty_fraction, 0.0, 1.0);
    const int dirty_guests =
        static_cast<int>(std::floor(dirty * static_cast<double>(kGuestsPerHost)));
    std::vector<SimDuration> full_per_vm;   // What the constant assumes: all dirty.
    std::vector<SimDuration> per_vm;        // Dirty-adjusted pooled costs.
    full_per_vm.reserve(kGuestsPerHost);
    per_vm.reserve(kGuestsPerHost);
    for (int g = 0; g < kGuestsPerHost; ++g) {
      const SimDuration restore =
          pipeline::RestoreStageCost(costs, HypervisorKind::kKvm, kVcpusPerGuest, kBytesPerGuest);
      const SimDuration full_translate =
          pipeline::TranslateStageCost(costs, kVcpusPerGuest, kBytesPerGuest);
      full_per_vm.push_back(full_translate + restore);
      per_vm.push_back((g < dirty_guests ? full_translate : costs.pretranslate_check) + restore);
    }
    // Always subtract the all-dirty serial share — that is the conversion cost
    // the constant inplace_upgrade_time embeds — then add back the schedule of
    // the dirty-adjusted costs over the worker pool.
    const SimDuration serial_share = ScheduleWork(full_per_vm, 1).makespan;
    const SimDuration pooled_share = ScheduleWork(per_vm, conversion_workers).makespan;
    params.inplace_upgrade_time =
        std::max<SimDuration>(params.inplace_upgrade_time - serial_share + pooled_share,
                              pooled_share);
  }
  int group_steps = 0;
  for (const UpgradeStep& step : plan->steps) {
    group_steps += !step.group.empty();
  }
  auto stats = ExecuteClusterUpgrade(cluster, *plan, params);
  if (!stats.ok() || cluster.hosts().empty()) {
    return timing;
  }
  // Evacuation wall-clock amortized per host; micro-reboot per group (hosts
  // in a group reboot in parallel, so per host == per group).
  timing.drain_per_host = stats->migration_time / static_cast<SimDuration>(cluster.hosts().size());
  timing.transplant_per_host =
      group_steps > 0 ? stats->inplace_time / group_steps : params.inplace_upgrade_time;
  return timing;
}

Result<void> ValidateFleetConfig(const FleetConfig& config) {
  const auto positive_int = [](int v, const char* field) -> Result<void> {
    if (v <= 0) {
      return InvalidArgumentError(std::string("FleetConfig::") + field + " must be > 0, got " +
                                  std::to_string(v));
    }
    return OkResult();
  };
  const auto non_negative_duration = [](SimDuration v, const char* field) -> Result<void> {
    if (v < 0) {
      return InvalidArgumentError(std::string("FleetConfig::") + field +
                                  " must be >= 0, got " + std::to_string(v) + " ns");
    }
    return OkResult();
  };
  const auto probability = [](double v, const char* field) -> Result<void> {
    if (!(v >= 0.0 && v <= 1.0)) {  // Negated so NaN is rejected too.
      return InvalidArgumentError(std::string("FleetConfig::") + field +
                                  " must be a probability in [0, 1], got " + std::to_string(v));
    }
    return OkResult();
  };

  if (auto r = positive_int(config.hosts, "hosts"); !r.ok()) return r;
  if (auto r = positive_int(config.parallel_hosts, "parallel_hosts"); !r.ok()) return r;
  if (auto r = positive_int(config.fault_domains, "fault_domains"); !r.ok()) return r;
  if (config.max_retries < 0) {
    return InvalidArgumentError("FleetConfig::max_retries must be >= 0, got " +
                                std::to_string(config.max_retries));
  }
  if (config.max_per_domain_in_flight < 0) {
    return InvalidArgumentError("FleetConfig::max_per_domain_in_flight must be >= 0, got " +
                                std::to_string(config.max_per_domain_in_flight));
  }
  if (auto r = non_negative_duration(config.drain_time, "drain_time"); !r.ok()) return r;
  if (auto r = non_negative_duration(config.per_host_transplant, "per_host_transplant"); !r.ok())
    return r;
  if (auto r = non_negative_duration(config.retry_backoff, "retry_backoff"); !r.ok()) return r;
  if (auto r = non_negative_duration(config.rollback_time, "rollback_time"); !r.ok()) return r;
  if (auto r = probability(config.failure_probability, "failure_probability"); !r.ok()) return r;
  if (auto r = probability(config.post_pause_fraction, "post_pause_fraction"); !r.ok()) return r;
  if (auto r = probability(config.rollback_failure_probability, "rollback_failure_probability");
      !r.ok())
    return r;
  if (!(config.abort_threshold >= 0.0)) {  // >= 1.0 just disables the abort.
    return InvalidArgumentError("FleetConfig::abort_threshold must be >= 0, got " +
                                std::to_string(config.abort_threshold));
  }
  if (!(config.latency_jitter >= 0.0)) {
    return InvalidArgumentError("FleetConfig::latency_jitter must be >= 0, got " +
                                std::to_string(config.latency_jitter));
  }
  if (!(config.inplace_fraction >= 0.0 && config.inplace_fraction <= 1.0)) {
    return InvalidArgumentError("FleetConfig::inplace_fraction must be in [0, 1], got " +
                                std::to_string(config.inplace_fraction));
  }
  if (config.trace_capacity == 0) {
    return InvalidArgumentError("FleetConfig::trace_capacity must be > 0");
  }
  return OkResult();
}

FleetController::FleetController(SimExecutor& executor, FleetConfig config)
    : executor_(executor),
      config_(std::move(config)),
      trace_(std::max<size_t>(config_.trace_capacity, 1)),
      alive_(std::make_shared<bool>(true)) {
  if (Result<void> valid = ValidateFleetConfig(config_); !valid.ok()) {
    config_error_ = valid.error();
    finished_ = true;  // Inert: Start()/Run() have nothing to execute.
    HYPERTP_LOG(kError, "fleet") << "rejected config: " << config_error_->ToString();
    return;
  }
  if (config_.use_cluster_timing) {
    const FleetTimingModel timing =
        DeriveFleetTiming(config_.inplace_fraction, config_.seed, config_.conversion_workers,
                          config_.pretranslate_dirty_fraction);
    config_.drain_time = timing.drain_per_host;
    config_.per_host_transplant = timing.transplant_per_host;
  }

  hosts_.reserve(static_cast<size_t>(config_.hosts));
  host_rngs_.reserve(static_cast<size_t>(config_.hosts));
  host_spans_.resize(static_cast<size_t>(config_.hosts), 0);
  Rng root(config_.seed);
  for (int i = 0; i < config_.hosts; ++i) {
    FleetHost host;
    host.id = i;
    host.fault_domain = i % config_.fault_domains;
    hosts_.push_back(host);
    // One stream per host, forked in id order: a host's failure/jitter draws
    // never depend on how the waves interleave.
    host_rngs_.push_back(root.Fork());
  }
  report_.hosts = config_.hosts;
}

FleetController::~FleetController() { *alive_ = false; }

std::function<void()> FleetController::Guarded(void (FleetController::*method)(int), int host) {
  return [alive = std::weak_ptr<bool>(alive_), this, method, host] {
    const auto guard = alive.lock();
    if (!guard || !*guard || finished_) {
      return;  // Stale event from an aborted rollout.
    }
    (this->*method)(host);
  };
}

std::function<void()> FleetController::Guarded(void (FleetController::*method)()) {
  return [alive = std::weak_ptr<bool>(alive_), this, method] {
    const auto guard = alive.lock();
    if (!guard || !*guard || finished_) {
      return;
    }
    (this->*method)();
  };
}

SpanId FleetController::RollHostSpan(int host, std::string_view next_name) {
  Tracer* const tracer = config_.tracer;
  if (tracer == nullptr) {
    return 0;
  }
  SpanId& slot = host_spans_[static_cast<size_t>(host)];
  tracer->EndSpan(slot, executor_.now());
  if (next_name.empty()) {
    slot = 0;
    return 0;
  }
  slot = tracer->BeginSpan(next_name, executor_.now(), rollout_span_,
                           "host-" + std::to_string(host));
  return slot;
}

const FleetRolloutReport& FleetController::Run() {
  Start();
  if (!finished_) {
    executor_.Run();
  }
  return report_;
}

void FleetController::Abort() {
  if (finished_) {
    return;
  }
  if (!started_) {
    // Aborted before the rollout ever scheduled: nothing ran, every host is
    // untouched and no events exist to finalize against.
    finished_ = true;
    report_.untouched = report_.hosts;
    report_.aborted = true;
    return;
  }
  Finalize(FleetEventType::kRolloutAborted);
}

void FleetController::Start() {
  if (finished_ || started_) {
    return;
  }
  started_ = true;
  base_ = executor_.now();
  last_exposure_change_ = base_;
  exposed_ = config_.hosts;
  if (config_.tracer != nullptr) {
    rollout_span_ = config_.tracer->BeginSpan("fleet_rollout", base_);
    config_.tracer->SetAttribute(rollout_span_, "hosts", static_cast<int64_t>(config_.hosts));
    config_.tracer->SetAttribute(rollout_span_, "parallel_hosts",
                                 static_cast<int64_t>(config_.parallel_hosts));
  }
  Emit(FleetEventType::kRolloutStart, -1);
  trace_.RecordExposure(base_, exposed_);
  for (int i = 0; i < config_.hosts; ++i) {
    pending_.push_back(i);
  }
  executor_.ScheduleAt(base_, Guarded(&FleetController::StartNextWave));
}

void FleetController::Emit(FleetEventType type, int host, int attempt) {
  trace_.Record(FleetEvent{executor_.now(), type, host, wave_, attempt});
}

void FleetController::StartNextWave() {
  if (pending_.empty()) {
    if (wave_in_flight_ == 0) {
      Finalize(FleetEventType::kRolloutComplete);
    }
    return;
  }
  // External admission gate (campaign SLO governor): a positive hold defers
  // the whole wave and re-consults the gate when the hold expires.
  if (config_.wave_pacer) {
    const SimDuration hold = config_.wave_pacer(wave_ + 1, executor_.now());
    if (hold > 0) {
      executor_.ScheduleAfter(hold, Guarded(&FleetController::StartNextWave));
      return;
    }
  }
  // Compose the wave: first-come order under the width and per-fault-domain
  // caps. Deferred hosts keep their queue position for the next wave.
  std::vector<int> wave_hosts;
  std::vector<int> domain_in_flight(static_cast<size_t>(config_.fault_domains), 0);
  for (auto it = pending_.begin();
       it != pending_.end() && static_cast<int>(wave_hosts.size()) < config_.parallel_hosts;) {
    int& domain_count = domain_in_flight[static_cast<size_t>(hosts_[*it].fault_domain)];
    if (config_.max_per_domain_in_flight > 0 &&
        domain_count >= config_.max_per_domain_in_flight) {
      ++it;
      continue;
    }
    ++domain_count;
    wave_hosts.push_back(*it);
    it = pending_.erase(it);
  }
  ++wave_;
  ++report_.waves;
  wave_started_ = executor_.now();
  wave_in_flight_ = static_cast<int>(wave_hosts.size());
  if (config_.tracer != nullptr) {
    wave_span_ = config_.tracer->BeginSpan("wave-" + std::to_string(wave_), executor_.now(),
                                           rollout_span_, "waves");
    config_.tracer->SetAttribute(wave_span_, "hosts_in_wave",
                                 static_cast<int64_t>(wave_hosts.size()));
  }
  Emit(FleetEventType::kWaveStart, -1);
  for (int host : wave_hosts) {
    StartDrain(host);
  }
}

void FleetController::StartDrain(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  h.state = FleetHostState::kDraining;
  h.drain_started = executor_.now();
  RollHostSpan(host, "drain");
  Emit(FleetEventType::kDrainStart, host);
  executor_.ScheduleAfter(Jittered(config_.drain_time, host_rngs_[static_cast<size_t>(host)]),
                          Guarded(&FleetController::StartTransplant, host));
}

void FleetController::StartTransplant(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  h.state = FleetHostState::kTransplanting;
  h.transplant_started = executor_.now();
  ++h.attempts;
  if (const SpanId span = RollHostSpan(host, "transplant"); span != 0) {
    config_.tracer->SetAttribute(span, "attempt", static_cast<int64_t>(h.attempts));
  }
  Emit(FleetEventType::kTransplantStart, host, h.attempts);
  executor_.ScheduleAfter(
      Jittered(config_.per_host_transplant, host_rngs_[static_cast<size_t>(host)]),
      Guarded(&FleetController::FinishAttempt, host));
}

void FleetController::FinishAttempt(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (!host_rngs_[static_cast<size_t>(host)].NextBool(config_.failure_probability)) {
    h.state = FleetHostState::kServing;
    h.upgraded = true;
    h.finished = executor_.now();
    ++report_.upgraded;
    if (config_.tracer != nullptr) {
      config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "upgraded");
    }
    RollHostSpan(host, {});
    Emit(FleetEventType::kTransplantDone, host, h.attempts);
    AccrueExposure();
    --exposed_;
    trace_.RecordExposure(executor_.now(), exposed_);
    HostDone(host);
    return;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "failed");
  }
  RollHostSpan(host, {});
  Emit(FleetEventType::kTransplantFailed, host, h.attempts);
  // Some failures strike after the point of no return (the micro-reboot
  // already happened): the host is stranded mid-transplant and must roll
  // back to its source hypervisor via the PRAM ledger before any retry. The
  // draw is guarded so legacy configs consume the exact same RNG sequence.
  if (config_.post_pause_fraction > 0.0 &&
      host_rngs_[static_cast<size_t>(host)].NextBool(config_.post_pause_fraction)) {
    ++report_.post_pause_faults;
    h.state = FleetHostState::kRollingBack;
    RollHostSpan(host, "rollback");
    Emit(FleetEventType::kRollbackStart, host, h.attempts);
    executor_.ScheduleAfter(
        Jittered(config_.rollback_time, host_rngs_[static_cast<size_t>(host)]),
        Guarded(&FleetController::FinishRollback, host));
    return;
  }
  ScheduleRetryOrFail(host);
}

void FleetController::FinishRollback(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (config_.rollback_failure_probability > 0.0 &&
      host_rngs_[static_cast<size_t>(host)].NextBool(config_.rollback_failure_probability)) {
    // Fatal: the ledger was torn or the PRAM image corrupt — there is no
    // hypervisor to serve from, so retrying is meaningless.
    ++report_.rollback_failures;
    if (config_.tracer != nullptr) {
      config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "lost");
    }
    RollHostSpan(host, {});
    Emit(FleetEventType::kRollbackFailed, host, h.attempts);
    h.state = FleetHostState::kFailed;
    h.finished = executor_.now();
    ++report_.failed;
    Emit(FleetEventType::kHostFailed, host, h.attempts);
    HostDone(host);
    return;
  }
  // Recoverable: the host serves un-upgraded on the source hypervisor again
  // (still exposed — no exposure change) and the normal retry policy applies.
  ++report_.rollbacks;
  if (config_.tracer != nullptr) {
    config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "recovered");
  }
  RollHostSpan(host, {});
  Emit(FleetEventType::kRollbackSucceeded, host, h.attempts);
  h.state = FleetHostState::kServing;
  ScheduleRetryOrFail(host);
}

void FleetController::ScheduleRetryOrFail(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (h.attempts <= config_.max_retries) {
    ++report_.retries;
    Emit(FleetEventType::kRetryScheduled, host, h.attempts);
    // Exponential backoff: base, 2x, 4x, ... per consecutive failure.
    const SimDuration backoff = config_.retry_backoff << (h.attempts - 1);
    executor_.ScheduleAfter(backoff, Guarded(&FleetController::StartTransplant, host));
    return;
  }
  h.state = FleetHostState::kFailed;
  h.finished = executor_.now();
  ++report_.failed;
  Emit(FleetEventType::kHostFailed, host, h.attempts);
  HostDone(host);  // Failed hosts stay exposed; no exposure change.
}

void FleetController::HostDone(int host) {
  (void)host;
  if (config_.abort_threshold < 1.0 && config_.hosts > 0 &&
      static_cast<double>(report_.failed) / config_.hosts > config_.abort_threshold) {
    Finalize(FleetEventType::kRolloutAborted);
    return;
  }
  if (--wave_in_flight_ == 0) {
    if (config_.tracer != nullptr) {
      config_.tracer->EndSpan(wave_span_, executor_.now());
      wave_span_ = 0;
    }
    Emit(FleetEventType::kWaveDone, -1);
    report_.wave_latency_seconds.Add(ToSeconds(executor_.now() - wave_started_));
    StartNextWave();
  }
}

void FleetController::AccrueExposure() {
  exposed_host_seconds_ +=
      ToSeconds(executor_.now() - last_exposure_change_) * static_cast<double>(exposed_);
  last_exposure_change_ = executor_.now();
}

void FleetController::Finalize(FleetEventType terminal) {
  finished_ = true;
  AccrueExposure();
  report_.untouched = report_.hosts - report_.upgraded - report_.failed;
  report_.aborted = terminal == FleetEventType::kRolloutAborted;
  report_.complete = report_.upgraded == report_.hosts;
  report_.makespan = executor_.now() - base_;
  report_.exposed_host_days = exposed_host_seconds_ / (24.0 * 3600.0);
  if (config_.tracer != nullptr) {
    // An abort leaves in-flight hosts mid-state: close their spans where the
    // rollout stopped so every track ends at the terminal event.
    for (int i = 0; i < config_.hosts; ++i) {
      RollHostSpan(i, {});
    }
    config_.tracer->EndSpan(wave_span_, executor_.now());
    wave_span_ = 0;
    config_.tracer->SetAttribute(rollout_span_, "upgraded",
                                 static_cast<int64_t>(report_.upgraded));
    config_.tracer->SetAttribute(rollout_span_, "failed", static_cast<int64_t>(report_.failed));
    config_.tracer->SetAttribute(rollout_span_, "outcome",
                                 report_.aborted ? "aborted" : "complete");
    config_.tracer->EndSpan(rollout_span_, executor_.now());
  }
  Emit(terminal, -1);
  if (report_.aborted) {
    // Graceful stop: events already in flight dispatch as guarded no-ops on
    // the executor's next run.
    executor_.Stop();
  }
}

SimDuration FleetController::Jittered(SimDuration base, Rng& rng) {
  if (config_.latency_jitter <= 0.0 || base <= 0) {
    return base;
  }
  // Lognormal multiplier: always positive, right-skewed like real
  // maintenance latencies.
  const double multiplier = std::exp(rng.NextGaussian() * config_.latency_jitter);
  return std::max<SimDuration>(1, static_cast<SimDuration>(static_cast<double>(base) * multiplier));
}

}  // namespace hypertp
