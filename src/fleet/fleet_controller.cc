#include "src/fleet/fleet_controller.h"

#include <algorithm>
#include <cmath>

#include "src/base/json.h"
#include "src/base/logging.h"
#include "src/cluster/cluster.h"
#include "src/obs/metrics.h"
#include "src/pipeline/conversion.h"
#include "src/sim/worker_pool.h"

namespace hypertp {

std::string FleetRolloutReportToJson(const FleetRolloutReport& report) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("fleet_rollout");
  j.Key("hosts").Number(static_cast<int64_t>(report.hosts));
  j.Key("upgraded").Number(static_cast<int64_t>(report.upgraded));
  j.Key("failed").Number(static_cast<int64_t>(report.failed));
  j.Key("untouched").Number(static_cast<int64_t>(report.untouched));
  j.Key("retries").Number(static_cast<int64_t>(report.retries));
  j.Key("transplant_successes").Number(static_cast<int64_t>(report.transplant_successes));
  j.Key("waves").Number(static_cast<int64_t>(report.waves));
  j.Key("post_pause_faults").Number(static_cast<int64_t>(report.post_pause_faults));
  j.Key("rollbacks").Number(static_cast<int64_t>(report.rollbacks));
  j.Key("rollback_failures").Number(static_cast<int64_t>(report.rollback_failures));
  j.Key("crashes").Number(static_cast<int64_t>(report.crashes));
  j.Key("crash_salvages").Number(static_cast<int64_t>(report.crash_salvages));
  j.Key("crash_live_recoveries").Number(static_cast<int64_t>(report.crash_live_recoveries));
  j.Key("crash_rollbacks").Number(static_cast<int64_t>(report.crash_rollbacks));
  j.Key("crash_upgrades").Number(static_cast<int64_t>(report.crash_upgrades));
  j.Key("crash_data_loss").Number(static_cast<int64_t>(report.crash_data_loss));
  j.Key("crash_recovery_retries").Number(static_cast<int64_t>(report.crash_recovery_retries));
  j.Key("lost").Number(static_cast<int64_t>(report.lost));
  // The policy block appears only for adaptive rollouts: kFixed reports stay
  // byte-identical to pre-policy builds.
  if (report.policy_adaptive) {
    j.Key("refused").Number(static_cast<int64_t>(report.refused));
    j.Key("policy").BeginObject();
    j.Key("mode").String("adaptive");
    j.Key("inplace_vms").Number(static_cast<int64_t>(report.policy_inplace_vms));
    j.Key("migrate_vms").Number(static_cast<int64_t>(report.policy_migrate_vms));
    j.Key("refused_vms").Number(static_cast<int64_t>(report.policy_refused_vms));
    j.Key("vm_downtime_ms").Number(ToMillis(report.policy_vm_downtime));
    j.EndObject();
  }
  j.Key("aborted").Bool(report.aborted);
  j.Key("complete").Bool(report.complete);
  j.Key("makespan_ms").Number(ToMillis(report.makespan));
  j.Key("exposed_host_days").Number(report.exposed_host_days);
  j.Key("wave_latency_seconds").BeginObject();
  j.Key("count").Number(static_cast<uint64_t>(report.wave_latency_seconds.count()));
  if (!report.wave_latency_seconds.empty()) {
    j.Key("p50").Number(report.wave_latency_seconds.Percentile(50));
    j.Key("p90").Number(report.wave_latency_seconds.Percentile(90));
    j.Key("p99").Number(report.wave_latency_seconds.Percentile(99));
    j.Key("max").Number(report.wave_latency_seconds.max());
  }
  j.EndObject();
  j.Key("recovery_latency_seconds").BeginObject();
  j.Key("count").Number(static_cast<uint64_t>(report.recovery_latency_seconds.count()));
  if (!report.recovery_latency_seconds.empty()) {
    j.Key("p50").Number(report.recovery_latency_seconds.Percentile(50));
    j.Key("p90").Number(report.recovery_latency_seconds.Percentile(90));
    j.Key("p99").Number(report.recovery_latency_seconds.Percentile(99));
    j.Key("max").Number(report.recovery_latency_seconds.max());
  }
  j.EndObject();
  j.EndObject();
  return j.Take();
}

FleetTimingModel DeriveFleetTiming(double inplace_fraction, uint64_t seed,
                                   int conversion_workers,
                                   double pretranslate_dirty_fraction) {
  FleetTimingModel timing;
  ClusterModel cluster = ClusterModel::PaperCluster(inplace_fraction, seed);
  auto plan = PlanClusterUpgrade(cluster, 2);
  if (!plan.ok()) {
    return timing;  // Keep the defaults; the planner only fails on bad input.
  }
  ClusterExecutionParams params;
  if (conversion_workers > 0) {
    // The constant inplace_upgrade_time assumes the per-VM conversion runs
    // serially inside each host's micro-reboot. With a modeled worker pool,
    // that share is the worker-pool schedule's makespan over the pipeline
    // stage costs for a representative C1 guest set (8 small VMs), so more
    // workers shrink every group's upgrade time — exactly how
    // InPlaceTransplant charges its translation/restoration phases.
    const HostCostProfile& costs = MachineProfile::C1().costs;
    constexpr int kGuestsPerHost = 8;
    constexpr uint32_t kVcpusPerGuest = 2;
    constexpr uint64_t kBytesPerGuest = 4ull << 30;
    // Speculative pre-translation: only the guests assumed dirty at pause
    // time pay the full translate inside the micro-reboot window; the clean
    // remainder pays the generation check. dirty_fraction 1.0 makes every
    // guest dirty, which is exactly the pre-pretranslation cost vector.
    const double dirty = std::clamp(pretranslate_dirty_fraction, 0.0, 1.0);
    const int dirty_guests =
        static_cast<int>(std::floor(dirty * static_cast<double>(kGuestsPerHost)));
    std::vector<SimDuration> full_per_vm;   // What the constant assumes: all dirty.
    std::vector<SimDuration> per_vm;        // Dirty-adjusted pooled costs.
    full_per_vm.reserve(kGuestsPerHost);
    per_vm.reserve(kGuestsPerHost);
    for (int g = 0; g < kGuestsPerHost; ++g) {
      const SimDuration restore =
          pipeline::RestoreStageCost(costs, HypervisorKind::kKvm, kVcpusPerGuest, kBytesPerGuest);
      const SimDuration full_translate =
          pipeline::TranslateStageCost(costs, kVcpusPerGuest, kBytesPerGuest);
      full_per_vm.push_back(full_translate + restore);
      per_vm.push_back((g < dirty_guests ? full_translate : costs.pretranslate_check) + restore);
    }
    // Always subtract the all-dirty serial share — that is the conversion cost
    // the constant inplace_upgrade_time embeds — then add back the schedule of
    // the dirty-adjusted costs over the worker pool.
    const SimDuration serial_share = ScheduleWork(full_per_vm, 1).makespan;
    const SimDuration pooled_share = ScheduleWork(per_vm, conversion_workers).makespan;
    params.inplace_upgrade_time =
        std::max<SimDuration>(params.inplace_upgrade_time - serial_share + pooled_share,
                              pooled_share);
  }
  int group_steps = 0;
  for (const UpgradeStep& step : plan->steps) {
    group_steps += !step.group.empty();
  }
  auto stats = ExecuteClusterUpgrade(cluster, *plan, params);
  if (!stats.ok() || cluster.hosts().empty()) {
    return timing;
  }
  // Evacuation wall-clock amortized per host; micro-reboot per group (hosts
  // in a group reboot in parallel, so per host == per group).
  timing.drain_per_host = stats->migration_time / static_cast<SimDuration>(cluster.hosts().size());
  timing.transplant_per_host =
      group_steps > 0 ? stats->inplace_time / group_steps : params.inplace_upgrade_time;
  return timing;
}

Result<void> ValidateFleetConfig(const FleetConfig& config) {
  const auto positive_int = [](int v, const char* field) -> Result<void> {
    if (v <= 0) {
      return InvalidArgumentError(std::string("FleetConfig::") + field + " must be > 0, got " +
                                  std::to_string(v));
    }
    return OkResult();
  };
  const auto non_negative_duration = [](SimDuration v, const char* field) -> Result<void> {
    if (v < 0) {
      return InvalidArgumentError(std::string("FleetConfig::") + field +
                                  " must be >= 0, got " + std::to_string(v) + " ns");
    }
    return OkResult();
  };
  const auto probability = [](double v, const char* field) -> Result<void> {
    if (!(v >= 0.0 && v <= 1.0)) {  // Negated so NaN is rejected too.
      return InvalidArgumentError(std::string("FleetConfig::") + field +
                                  " must be a probability in [0, 1], got " + std::to_string(v));
    }
    return OkResult();
  };

  if (auto r = positive_int(config.hosts, "hosts"); !r.ok()) return r;
  if (auto r = positive_int(config.parallel_hosts, "parallel_hosts"); !r.ok()) return r;
  if (auto r = positive_int(config.fault_domains, "fault_domains"); !r.ok()) return r;
  if (config.max_retries < 0) {
    return InvalidArgumentError("FleetConfig::max_retries must be >= 0, got " +
                                std::to_string(config.max_retries));
  }
  if (config.max_per_domain_in_flight < 0) {
    return InvalidArgumentError("FleetConfig::max_per_domain_in_flight must be >= 0, got " +
                                std::to_string(config.max_per_domain_in_flight));
  }
  if (auto r = non_negative_duration(config.drain_time, "drain_time"); !r.ok()) return r;
  if (auto r = non_negative_duration(config.per_host_transplant, "per_host_transplant"); !r.ok())
    return r;
  if (auto r = non_negative_duration(config.retry_backoff, "retry_backoff"); !r.ok()) return r;
  if (auto r = non_negative_duration(config.rollback_time, "rollback_time"); !r.ok()) return r;
  if (auto r = probability(config.failure_probability, "failure_probability"); !r.ok()) return r;
  if (auto r = probability(config.post_pause_fraction, "post_pause_fraction"); !r.ok()) return r;
  if (auto r = probability(config.rollback_failure_probability, "rollback_failure_probability");
      !r.ok())
    return r;
  if (!(config.abort_threshold >= 0.0)) {  // >= 1.0 just disables the abort.
    return InvalidArgumentError("FleetConfig::abort_threshold must be >= 0, got " +
                                std::to_string(config.abort_threshold));
  }
  if (!(config.latency_jitter >= 0.0)) {
    return InvalidArgumentError("FleetConfig::latency_jitter must be >= 0, got " +
                                std::to_string(config.latency_jitter));
  }
  if (!(config.inplace_fraction >= 0.0 && config.inplace_fraction <= 1.0)) {
    return InvalidArgumentError("FleetConfig::inplace_fraction must be in [0, 1], got " +
                                std::to_string(config.inplace_fraction));
  }
  if (config.trace_capacity == 0) {
    return InvalidArgumentError("FleetConfig::trace_capacity must be > 0");
  }
  const CrashStormConfig& storm = config.crash_storm;
  if (!(storm.rate_per_hour >= 0.0) || !std::isfinite(storm.rate_per_hour)) {
    return InvalidArgumentError(
        "FleetConfig::crash_storm.rate_per_hour must be finite and >= 0, got " +
        std::to_string(storm.rate_per_hour));
  }
  if (storm.enabled()) {
    if (storm.burst < 1) {
      return InvalidArgumentError("FleetConfig::crash_storm.burst must be >= 1, got " +
                                  std::to_string(storm.burst));
    }
    if (storm.recovery_max_retries < 0) {
      return InvalidArgumentError(
          "FleetConfig::crash_storm.recovery_max_retries must be >= 0, got " +
          std::to_string(storm.recovery_max_retries));
    }
    if (auto r = non_negative_duration(storm.start, "crash_storm.start"); !r.ok()) return r;
    if (auto r = non_negative_duration(storm.duration, "crash_storm.duration"); !r.ok()) return r;
    if (auto r = non_negative_duration(storm.recovery_time, "crash_storm.recovery_time"); !r.ok())
      return r;
    if (auto r = non_negative_duration(storm.recovery_backoff, "crash_storm.recovery_backoff");
        !r.ok())
      return r;
    if (auto r = probability(storm.pre_pause_fraction, "crash_storm.pre_pause_fraction"); !r.ok())
      return r;
    if (auto r = probability(storm.mid_save_torn_fraction, "crash_storm.mid_save_torn_fraction");
        !r.ok())
      return r;
    if (auto r = probability(storm.stale_commit_fraction, "crash_storm.stale_commit_fraction");
        !r.ok())
      return r;
    if (auto r = probability(storm.scrubbed_fraction, "crash_storm.scrubbed_fraction"); !r.ok())
      return r;
    if (auto r = probability(storm.recovery_failure_probability,
                             "crash_storm.recovery_failure_probability");
        !r.ok())
      return r;
    if (auto r = probability(storm.cross_kind_fraction, "crash_storm.cross_kind_fraction"); !r.ok())
      return r;
    const double mix = storm.pre_pause_fraction + storm.mid_save_torn_fraction +
                       storm.stale_commit_fraction + storm.scrubbed_fraction;
    if (mix > 1.0) {
      return InvalidArgumentError(
          "FleetConfig::crash_storm ledger-state fractions must sum to <= 1, got " +
          std::to_string(mix));
    }
  }
  if (auto r = policy::ValidatePolicyConfig(config.policy, "FleetConfig::policy."); !r.ok()) {
    return r;
  }
  if (!config.policy_host_global_ids.empty()) {
    if (static_cast<int>(config.policy_host_global_ids.size()) != config.hosts) {
      return InvalidArgumentError(
          "FleetConfig::policy_host_global_ids must be empty or have one entry per host, got " +
          std::to_string(config.policy_host_global_ids.size()) + " for " +
          std::to_string(config.hosts) + " hosts");
    }
    for (int64_t id : config.policy_host_global_ids) {
      if (id < 0) {
        return InvalidArgumentError("FleetConfig::policy_host_global_ids must be >= 0, got " +
                                    std::to_string(id));
      }
    }
  }
  return OkResult();
}

FleetController::FleetController(SimExecutor& executor, FleetConfig config)
    : executor_(executor),
      config_(std::move(config)),
      trace_(std::max<size_t>(config_.trace_capacity, 1)),
      alive_(std::make_shared<bool>(true)) {
  if (Result<void> valid = ValidateFleetConfig(config_); !valid.ok()) {
    config_error_ = valid.error();
    finished_ = true;  // Inert: Start()/Run() have nothing to execute.
    HYPERTP_LOG(kError, "fleet") << "rejected config: " << config_error_->ToString();
    return;
  }
  if (config_.use_cluster_timing) {
    const FleetTimingModel timing =
        DeriveFleetTiming(config_.inplace_fraction, config_.seed, config_.conversion_workers,
                          config_.pretranslate_dirty_fraction);
    config_.drain_time = timing.drain_per_host;
    config_.per_host_transplant = timing.transplant_per_host;
  }

  fault_domain_count_ = config_.fault_domains;
  hosts_.reserve(static_cast<size_t>(config_.hosts));
  host_rngs_.reserve(static_cast<size_t>(config_.hosts));
  host_spans_.resize(static_cast<size_t>(config_.hosts), 0);
  Rng root(config_.seed);
  for (int i = 0; i < config_.hosts; ++i) {
    FleetHost host;
    host.id = i;
    host.fault_domain = i % config_.fault_domains;
    hosts_.push_back(host);
    // One stream per host, forked in id order: a host's failure/jitter draws
    // never depend on how the waves interleave.
    host_rngs_.push_back(root.Fork());
  }
  // The storm stream forks *after* every host stream, so enabling a storm
  // never perturbs the per-host draw sequences of an existing seed.
  if (config_.crash_storm.enabled()) {
    storm_rng_.emplace(root.Fork());
  }
  // Adaptive mechanism policy: plan every host up front. Plans are pure
  // functions of (PolicyConfig, global host id, env) — no RNG — so the
  // decision set is identical however the fleet is partitioned or scheduled.
  if (config_.policy.adaptive()) {
    policy_.emplace(config_.policy);
    policy::EnvSignals env;
    env.link_gbps = config_.policy.link_gbps;
    env.host_headroom = config_.policy.host_headroom;
    env.rollback_risk =
        policy::LedgerRollbackRisk(config_.failure_probability, config_.post_pause_fraction);
    env.migration_overhead = config_.policy.migration_overhead;
    host_plans_.reserve(static_cast<size_t>(config_.hosts));
    report_.policy_adaptive = true;
    for (int i = 0; i < config_.hosts; ++i) {
      const int64_t global_id = config_.policy_host_global_ids.empty()
                                    ? i
                                    : config_.policy_host_global_ids[static_cast<size_t>(i)];
      host_plans_.push_back(policy_->PlanHost(global_id, env, config_.per_host_transplant,
                                              config_.drain_time, config_.conversion_workers));
      const policy::HostPolicyPlan& plan = host_plans_.back();
      report_.policy_inplace_vms += plan.inplace_vms;
      report_.policy_migrate_vms += plan.migrate_vms;
      report_.policy_refused_vms += plan.refused_vms;
      report_.refused += plan.refused();
    }
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("hypertp_policy_inplace")
          .Increment(static_cast<uint64_t>(report_.policy_inplace_vms));
      config_.metrics->GetCounter("hypertp_policy_migrate")
          .Increment(static_cast<uint64_t>(report_.policy_migrate_vms));
      config_.metrics->GetCounter("hypertp_policy_refused")
          .Increment(static_cast<uint64_t>(report_.policy_refused_vms));
    }
  }
  report_.hosts = config_.hosts;
}

FleetController::~FleetController() { *alive_ = false; }

std::function<void()> FleetController::Guarded(void (FleetController::*method)(int), int host) {
  return [alive = std::weak_ptr<bool>(alive_), this, method, host] {
    const auto guard = alive.lock();
    if (!guard || !*guard || finished_) {
      return;  // Stale event from an aborted rollout.
    }
    (this->*method)(host);
  };
}

std::function<void()> FleetController::Guarded(void (FleetController::*method)()) {
  return [alive = std::weak_ptr<bool>(alive_), this, method] {
    const auto guard = alive.lock();
    if (!guard || !*guard || finished_) {
      return;
    }
    (this->*method)();
  };
}

SpanId FleetController::RollHostSpan(int host, std::string_view next_name) {
  Tracer* const tracer = config_.tracer;
  if (tracer == nullptr) {
    return 0;
  }
  SpanId& slot = host_spans_[static_cast<size_t>(host)];
  tracer->EndSpan(slot, executor_.now());
  if (next_name.empty()) {
    slot = 0;
    return 0;
  }
  slot = tracer->BeginSpan(next_name, executor_.now(), rollout_span_,
                           "host-" + std::to_string(host));
  return slot;
}

const FleetRolloutReport& FleetController::Run() {
  Start();
  if (!finished_) {
    executor_.Run();
  }
  return report_;
}

void FleetController::Abort() {
  if (finished_) {
    return;
  }
  if (!started_) {
    // Aborted before the rollout ever scheduled: nothing ran, every host is
    // untouched and no events exist to finalize against.
    finished_ = true;
    report_.untouched = report_.hosts;
    report_.aborted = true;
    return;
  }
  Finalize(FleetEventType::kRolloutAborted);
}

void FleetController::Start() {
  if (finished_ || started_) {
    return;
  }
  started_ = true;
  base_ = executor_.now();
  last_exposure_change_ = base_;
  exposed_ = config_.hosts;
  if (config_.tracer != nullptr) {
    rollout_span_ = config_.tracer->BeginSpan("fleet_rollout", base_);
    config_.tracer->SetAttribute(rollout_span_, "hosts", static_cast<int64_t>(config_.hosts));
    config_.tracer->SetAttribute(rollout_span_, "parallel_hosts",
                                 static_cast<int64_t>(config_.parallel_hosts));
  }
  Emit(FleetEventType::kRolloutStart, -1);
  trace_.RecordExposure(base_, exposed_);
  for (int i = 0; i < config_.hosts; ++i) {
    // A host with a refused guest never enters the rollout: it keeps serving
    // the vulnerable hypervisor (and keeps accruing exposure). Emitted in id
    // order, before any wave work, so the trace is partition-independent.
    if (policy_.has_value() && host_plans_[static_cast<size_t>(i)].refused()) {
      Emit(FleetEventType::kHostRefused, i);
      continue;
    }
    pending_.push_back(i);
  }
  if (config_.hold_open) {
    // Work-stealing mode: fill domain-major so waves pack into the lowest
    // racks and whole high racks stay fully unstarted — the unit a barrier
    // steal can re-home. Id-order fill would touch every rack in wave one.
    std::sort(pending_.begin(), pending_.end(), [this](int a, int b) {
      const int da = hosts_[static_cast<size_t>(a)].fault_domain;
      const int db = hosts_[static_cast<size_t>(b)].fault_domain;
      return da != db ? da < db : a < b;
    });
  }
  if (storm_rng_.has_value()) {
    const CrashStormConfig& storm = config_.crash_storm;
    storm_end_ = storm.duration > 0 ? base_ + storm.start + storm.duration : -1;
    executor_.ScheduleAt(base_ + storm.start, Guarded(&FleetController::ScheduleNextCrash));
  }
  executor_.ScheduleAt(base_, Guarded(&FleetController::StartNextWave));
}

void FleetController::Emit(FleetEventType type, int host, int attempt) {
  trace_.Record(FleetEvent{executor_.now(), type, host, wave_, attempt});
}

void FleetController::StartNextWave() {
  if (pending_.empty()) {
    MaybeFinishRollout();
    return;
  }
  // External admission gate (campaign SLO governor): a positive hold defers
  // the whole wave and re-consults the gate when the hold expires.
  if (config_.wave_pacer) {
    const SimDuration hold = config_.wave_pacer(wave_ + 1, executor_.now());
    if (hold > 0) {
      executor_.ScheduleAfter(hold, Guarded(&FleetController::StartNextWave));
      return;
    }
  }
  // Unplanned recoveries hold worker slots with priority over upgrade work:
  // the wave only gets what the storm left over. A zero width is fine —
  // recovery completions re-trigger wave scheduling.
  const int width = config_.parallel_hosts - recovering_;
  if (width <= 0) {
    return;
  }
  // Compose the wave: first-come order under the width and per-fault-domain
  // caps. Deferred hosts keep their queue position for the next wave.
  std::vector<int> wave_hosts;
  std::vector<int> domain_in_flight(static_cast<size_t>(fault_domain_count_), 0);
  for (auto it = pending_.begin();
       it != pending_.end() && static_cast<int>(wave_hosts.size()) < width;) {
    int& domain_count = domain_in_flight[static_cast<size_t>(hosts_[*it].fault_domain)];
    if (config_.max_per_domain_in_flight > 0 &&
        domain_count >= config_.max_per_domain_in_flight) {
      ++it;
      continue;
    }
    ++domain_count;
    wave_hosts.push_back(*it);
    it = pending_.erase(it);
  }
  ++wave_;
  ++report_.waves;
  wave_started_ = executor_.now();
  wave_in_flight_ = static_cast<int>(wave_hosts.size());
  if (config_.tracer != nullptr) {
    wave_span_ = config_.tracer->BeginSpan("wave-" + std::to_string(wave_), executor_.now(),
                                           rollout_span_, "waves");
    config_.tracer->SetAttribute(wave_span_, "hosts_in_wave",
                                 static_cast<int64_t>(wave_hosts.size()));
  }
  // Per-wave policy decision marker: what the adaptive policy resolved for
  // this wave's guests (summed over the wave's hosts).
  if (policy_.has_value() && config_.tracer != nullptr) {
    int64_t wave_inplace = 0;
    int64_t wave_migrate = 0;
    for (int host : wave_hosts) {
      wave_inplace += host_plans_[static_cast<size_t>(host)].inplace_vms;
      wave_migrate += host_plans_[static_cast<size_t>(host)].migrate_vms;
    }
    const SpanId mark = config_.tracer->AddInstant("policy:decision", executor_.now(), "policy");
    config_.tracer->SetAttribute(mark, "wave", static_cast<int64_t>(wave_));
    config_.tracer->SetAttribute(mark, "inplace_vms", wave_inplace);
    config_.tracer->SetAttribute(mark, "migrate_vms", wave_migrate);
  }
  Emit(FleetEventType::kWaveStart, -1);
  for (int host : wave_hosts) {
    StartDrain(host);
  }
}

void FleetController::StartDrain(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  h.state = FleetHostState::kDraining;
  h.drain_started = executor_.now();
  RollHostSpan(host, "drain");
  Emit(FleetEventType::kDrainStart, host);
  executor_.ScheduleAfter(Jittered(HostDrainTime(host), host_rngs_[static_cast<size_t>(host)]),
                          Guarded(&FleetController::StartTransplant, host));
}

void FleetController::StartTransplant(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  h.state = FleetHostState::kTransplanting;
  h.transplant_started = executor_.now();
  ++h.attempts;
  if (const SpanId span = RollHostSpan(host, "transplant"); span != 0) {
    config_.tracer->SetAttribute(span, "attempt", static_cast<int64_t>(h.attempts));
  }
  Emit(FleetEventType::kTransplantStart, host, h.attempts);
  executor_.ScheduleAfter(
      Jittered(HostTransplantTime(host), host_rngs_[static_cast<size_t>(host)]),
      Guarded(&FleetController::FinishAttempt, host));
}

void FleetController::FinishAttempt(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (!host_rngs_[static_cast<size_t>(host)].NextBool(config_.failure_probability)) {
    h.state = FleetHostState::kServing;
    h.upgraded = true;
    h.finished = executor_.now();
    ++report_.upgraded;
    ++report_.transplant_successes;
    if (policy_.has_value()) {
      report_.policy_vm_downtime += host_plans_[static_cast<size_t>(host)].vm_downtime;
    }
    if (config_.tracer != nullptr) {
      config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "upgraded");
    }
    RollHostSpan(host, {});
    Emit(FleetEventType::kTransplantDone, host, h.attempts);
    AccrueExposure();
    --exposed_;
    trace_.RecordExposure(executor_.now(), exposed_);
    HostDone(host);
    return;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "failed");
  }
  RollHostSpan(host, {});
  Emit(FleetEventType::kTransplantFailed, host, h.attempts);
  // Some failures strike after the point of no return (the micro-reboot
  // already happened): the host is stranded mid-transplant and must roll
  // back to its source hypervisor via the PRAM ledger before any retry. The
  // draw is guarded so legacy configs consume the exact same RNG sequence.
  if (config_.post_pause_fraction > 0.0 &&
      host_rngs_[static_cast<size_t>(host)].NextBool(config_.post_pause_fraction)) {
    ++report_.post_pause_faults;
    h.state = FleetHostState::kRollingBack;
    RollHostSpan(host, "rollback");
    Emit(FleetEventType::kRollbackStart, host, h.attempts);
    executor_.ScheduleAfter(
        Jittered(config_.rollback_time, host_rngs_[static_cast<size_t>(host)]),
        Guarded(&FleetController::FinishRollback, host));
    return;
  }
  ScheduleRetryOrFail(host);
}

void FleetController::FinishRollback(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (config_.rollback_failure_probability > 0.0 &&
      host_rngs_[static_cast<size_t>(host)].NextBool(config_.rollback_failure_probability)) {
    // Fatal: the ledger was torn or the PRAM image corrupt — there is no
    // hypervisor to serve from, so retrying is meaningless.
    ++report_.rollback_failures;
    if (config_.tracer != nullptr) {
      config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "lost");
    }
    RollHostSpan(host, {});
    Emit(FleetEventType::kRollbackFailed, host, h.attempts);
    h.state = FleetHostState::kFailed;
    h.finished = executor_.now();
    ++report_.failed;
    Emit(FleetEventType::kHostFailed, host, h.attempts);
    HostDone(host);
    return;
  }
  // Recoverable: the host serves un-upgraded on the source hypervisor again
  // (still exposed — no exposure change) and the normal retry policy applies.
  ++report_.rollbacks;
  if (config_.tracer != nullptr) {
    config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "recovered");
  }
  RollHostSpan(host, {});
  Emit(FleetEventType::kRollbackSucceeded, host, h.attempts);
  h.state = FleetHostState::kServing;
  ScheduleRetryOrFail(host);
}

void FleetController::ScheduleRetryOrFail(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (h.attempts <= config_.max_retries) {
    ++report_.retries;
    Emit(FleetEventType::kRetryScheduled, host, h.attempts);
    // Exponential backoff per consecutive failure, saturating at the ceiling
    // instead of overflowing SimDuration at 30+ retries (fleet_types.h).
    const SimDuration backoff = SaturatingBackoff(config_.retry_backoff, h.attempts - 1);
    executor_.ScheduleAfter(backoff, Guarded(&FleetController::StartTransplant, host));
    return;
  }
  h.state = FleetHostState::kFailed;
  h.finished = executor_.now();
  ++report_.failed;
  Emit(FleetEventType::kHostFailed, host, h.attempts);
  HostDone(host);  // Failed hosts stay exposed; no exposure change.
}

void FleetController::HostDone(int host) {
  (void)host;
  if (config_.abort_threshold < 1.0 && config_.hosts > 0 &&
      static_cast<double>(report_.failed) / config_.hosts > config_.abort_threshold) {
    Finalize(FleetEventType::kRolloutAborted);
    return;
  }
  --wave_in_flight_;
  // Every host completion frees a worker slot; queued unplanned recoveries
  // claim it before the next wave can.
  TryStartRecoveries();
  if (wave_in_flight_ == 0) {
    if (config_.tracer != nullptr) {
      config_.tracer->EndSpan(wave_span_, executor_.now());
      wave_span_ = 0;
    }
    Emit(FleetEventType::kWaveDone, -1);
    report_.wave_latency_seconds.Add(ToSeconds(executor_.now() - wave_started_));
    StartNextWave();
  }
}

void FleetController::AccrueExposure() {
  exposed_host_seconds_ +=
      ToSeconds(executor_.now() - last_exposure_change_) * static_cast<double>(exposed_);
  last_exposure_change_ = executor_.now();
}

void FleetController::Finalize(FleetEventType terminal) {
  finished_ = true;
  AccrueExposure();
  report_.untouched =
      report_.hosts - report_.upgraded - report_.failed - report_.lost - report_.refused;
  report_.aborted = terminal == FleetEventType::kRolloutAborted;
  report_.complete = report_.upgraded == report_.hosts;
  // A drained hold-open rollout finalizes at a later barrier; its makespan is
  // the instant the last work finished, not when the coordinator got to it.
  const SimTime rollout_end = (drained_ && drained_at_ >= 0) ? drained_at_ : executor_.now();
  report_.makespan = rollout_end - base_;
  report_.exposed_host_days = exposed_host_seconds_ / (24.0 * 3600.0);
  if (config_.tracer != nullptr) {
    // An abort leaves in-flight hosts mid-state: close their spans where the
    // rollout stopped so every track ends at the terminal event.
    for (int i = 0; i < static_cast<int>(hosts_.size()); ++i) {
      RollHostSpan(i, {});
    }
    config_.tracer->EndSpan(wave_span_, executor_.now());
    wave_span_ = 0;
    config_.tracer->SetAttribute(rollout_span_, "upgraded",
                                 static_cast<int64_t>(report_.upgraded));
    config_.tracer->SetAttribute(rollout_span_, "failed", static_cast<int64_t>(report_.failed));
    config_.tracer->SetAttribute(rollout_span_, "outcome",
                                 report_.aborted ? "aborted" : "complete");
    config_.tracer->EndSpan(rollout_span_, executor_.now());
  }
  Emit(terminal, -1);
  if (report_.aborted) {
    // Graceful stop: events already in flight dispatch as guarded no-ops on
    // the executor's next run.
    executor_.Stop();
  }
}

void FleetController::ScheduleNextCrash() {
  // Poisson arrivals: exponential inter-event gap. NextDouble() < 1, so the
  // log argument is never zero.
  const double rate_per_ns = config_.crash_storm.rate_per_hour / (3600.0 * 1e9);
  const double gap_ns = -std::log(1.0 - storm_rng_->NextDouble()) / rate_per_ns;
  executor_.ScheduleAfter(std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns)),
                          Guarded(&FleetController::CrashEvent));
}

void FleetController::CrashEvent() {
  if (storm_end_ >= 0 && executor_.now() >= storm_end_) {
    return;  // Storm window closed; stop the arrival chain.
  }
  // Victims are hosts actually *serving traffic* right now: upgraded ones and
  // ones still queued for their upgrade. Hosts mid-drain/transplant/rollback
  // or parked in retry backoff have scheduled events pointed at them; crashing
  // those would fire stale transitions on a dead host, and the paper's storm
  // strikes running hypervisors anyway.
  std::vector<char> in_pending(hosts_.size(), 0);
  for (int id : pending_) {
    in_pending[static_cast<size_t>(id)] = 1;
  }
  std::vector<int> eligible;
  for (const FleetHost& h : hosts_) {
    if (h.state == FleetHostState::kServing &&
        (h.upgraded || in_pending[static_cast<size_t>(h.id)])) {
      eligible.push_back(h.id);
    }
  }
  // Correlated burst: strike up to `burst` distinct victims, sampled without
  // replacement from the storm stream (scheduling-order independent).
  const int strikes = std::min<int>(config_.crash_storm.burst,
                                    static_cast<int>(eligible.size()));
  for (int s = 0; s < strikes; ++s) {
    const size_t pick =
        static_cast<size_t>(storm_rng_->NextBelow(static_cast<uint64_t>(eligible.size())));
    const int victim = eligible[pick];
    eligible[pick] = eligible.back();
    eligible.pop_back();
    CrashHost(victim);
    if (finished_) {
      return;  // A loss mid-burst can finalize the rollout; stop striking it.
    }
  }
  ScheduleNextCrash();
}

CrashLedgerState FleetController::SampleCrashLedgerState() {
  const CrashStormConfig& storm = config_.crash_storm;
  const double u = storm_rng_->NextDouble();
  double edge = storm.pre_pause_fraction;
  if (u < edge) {
    return CrashLedgerState::kPrePause;
  }
  edge += storm.mid_save_torn_fraction;
  if (u < edge) {
    return CrashLedgerState::kMidSaveTorn;
  }
  edge += storm.stale_commit_fraction;
  if (u < edge) {
    return CrashLedgerState::kStaleCommit;
  }
  edge += storm.scrubbed_fraction;
  if (u < edge) {
    return CrashLedgerState::kScrubbed;
  }
  return CrashLedgerState::kCleanCommit;
}

void FleetController::CrashHost(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  ++report_.crashes;
  h.state = FleetHostState::kCrashed;
  h.crash_started = executor_.now();
  h.recovery_attempts = 0;
  // What the crash left of the transplant ledger decides everything
  // downstream, via the same DecideSalvage() table Assess() applies to real
  // ledger bytes.
  h.crash_ledger = SampleCrashLedgerState();
  std::erase(pending_, host);
  RollHostSpan(host, "crashed");
  Emit(FleetEventType::kHostCrashed, host);
  if (!config_.crash_storm.recover) {
    // Control arm: a fixed fleet has no ReHype path; crashed hosts stay down.
    LoseHost(host, false);
    return;
  }
  if (DecideSalvage(h.crash_ledger) == SalvageDecision::kDataLoss) {
    // Honest data loss: neither the PRAM image's currency nor the in-RAM
    // structures can be proven. No recovery attempt can change that verdict.
    LoseHost(host, true);
    return;
  }
  recovery_queue_.push_back(host);
  TryStartRecoveries();
}

void FleetController::TryStartRecoveries() {
  while (!recovery_queue_.empty() && recovering_ + wave_in_flight_ < config_.parallel_hosts) {
    const int host = recovery_queue_.front();
    recovery_queue_.pop_front();
    ++recovering_;  // Slot held until the recovery succeeds or the host is lost.
    StartRecovery(host);
  }
}

void FleetController::StartRecovery(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  h.state = FleetHostState::kRecovering;
  ++h.recovery_attempts;
  if (const SpanId span = RollHostSpan(host, "recover"); span != 0) {
    config_.tracer->SetAttribute(span, "attempt", static_cast<int64_t>(h.recovery_attempts));
  }
  Emit(FleetEventType::kRecoveryStart, host, h.recovery_attempts);
  executor_.ScheduleAfter(
      Jittered(config_.crash_storm.recovery_time, host_rngs_[static_cast<size_t>(host)]),
      Guarded(&FleetController::FinishRecovery, host));
}

void FleetController::FinishRecovery(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  const CrashStormConfig& storm = config_.crash_storm;
  Rng& rng = host_rngs_[static_cast<size_t>(host)];
  // Guarded draw (same discipline as post_pause_fraction): a zero probability
  // consumes nothing, so storms without recovery faults don't shift the
  // host's upgrade-path draw sequence.
  if (storm.recovery_failure_probability > 0.0 &&
      rng.NextBool(storm.recovery_failure_probability)) {
    if (h.recovery_attempts <= storm.recovery_max_retries) {
      ++report_.crash_recovery_retries;
      Emit(FleetEventType::kRecoveryRetry, host, h.recovery_attempts);
      RollHostSpan(host, "recovery_backoff");
      // The recovery retry policy is distinct from the upgrade one: its own
      // base, its own budget, saturating backoff. The slot stays held —
      // a host mid-recovery is not schedulable capacity.
      executor_.ScheduleAfter(SaturatingBackoff(storm.recovery_backoff, h.recovery_attempts - 1),
                              Guarded(&FleetController::StartRecovery, host));
      return;
    }
    --recovering_;
    LoseHost(host, false);
    if (finished_) {
      return;
    }
    TryStartRecoveries();
    if (wave_in_flight_ == 0) {
      StartNextWave();
    }
    return;
  }
  --recovering_;
  report_.recovery_latency_seconds.Add(ToSeconds(executor_.now() - h.crash_started));
  if (DecideSalvage(h.crash_ledger) == SalvageDecision::kSalvageFromImage) {
    ++report_.crash_salvages;
    // Cross-kind salvage re-instantiates the campaign's *target* kind from
    // the kind-neutral UISR image; same-kind restores the ledger's source.
    const bool cross_kind =
        storm.cross_kind_fraction > 0.0 && rng.NextBool(storm.cross_kind_fraction);
    if (cross_kind && !h.upgraded) {
      // The host comes back already upgraded: the crash did the campaign's
      // work for it.
      h.upgraded = true;
      h.finished = executor_.now();
      ++report_.upgraded;
      ++report_.crash_upgrades;
      AccrueExposure();
      --exposed_;
      trace_.RecordExposure(executor_.now(), exposed_);
    } else if (!cross_kind && h.upgraded) {
      // Crash-induced rollback: the committed image predates the upgrade, so
      // a same-kind salvage reverts the host to the vulnerable source kind.
      // It re-exposes and re-queues for the campaign to upgrade again.
      h.upgraded = false;
      h.finished = -1;
      --report_.upgraded;
      ++report_.crash_rollbacks;
      Emit(FleetEventType::kCrashRollback, host);
      AccrueExposure();
      ++exposed_;
      trace_.RecordExposure(executor_.now(), exposed_);
    }
  } else {
    // kRecoverLive: no committed image governs; the fresh hypervisor re-adopts
    // the in-RAM guests under whatever kind the host was running.
    ++report_.crash_live_recoveries;
  }
  if (!h.upgraded) {
    pending_.push_back(host);  // Erased at crash time, so never a duplicate.
  }
  h.state = FleetHostState::kServing;
  if (config_.tracer != nullptr) {
    config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "recovered");
  }
  RollHostSpan(host, {});
  Emit(FleetEventType::kRecoveryDone, host, h.recovery_attempts);
  TryStartRecoveries();
  if (wave_in_flight_ == 0) {
    StartNextWave();
  }
}

void FleetController::LoseHost(int host, bool ledger_data_loss) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  ++report_.lost;
  if (ledger_data_loss) {
    ++report_.crash_data_loss;
  }
  if (h.upgraded) {
    // A dead host serves nothing: its completed upgrade leaves the fleet tally.
    --report_.upgraded;
  } else {
    // An exposed host that dies stops accruing exposure — its VMs are lost,
    // not running vulnerable.
    AccrueExposure();
    --exposed_;
    trace_.RecordExposure(executor_.now(), exposed_);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->SetAttribute(host_spans_[static_cast<size_t>(host)], "outcome", "lost");
  }
  RollHostSpan(host, {});
  h.state = FleetHostState::kFailed;
  h.finished = executor_.now();
  Emit(FleetEventType::kHostLost, host, h.recovery_attempts);
  MaybeFinishRollout();
}

void FleetController::MaybeFinishRollout() {
  if (pending_.empty() && wave_in_flight_ == 0 && recovering_ == 0 && recovery_queue_.empty()) {
    if (config_.hold_open) {
      // Work-stealing mode: stay alive for the coordinator, which either
      // adopts more work into this controller or finalizes it at a barrier.
      // Close the exposure integral at the drain instant either way.
      if (!drained_) {
        drained_ = true;
        drained_at_ = executor_.now();
        AccrueExposure();
      }
      return;
    }
    Finalize(FleetEventType::kRolloutComplete);
  }
}

SimDuration FleetController::HostDrainTime(int host) const {
  if (policy_.has_value()) {
    return host_plans_[static_cast<size_t>(host)].drain_time;
  }
  if (!host_drain_override_.empty()) {
    return host_drain_override_[static_cast<size_t>(host)];
  }
  return config_.drain_time;
}

SimDuration FleetController::HostTransplantTime(int host) const {
  if (policy_.has_value()) {
    return host_plans_[static_cast<size_t>(host)].transplant_time;
  }
  if (!host_transplant_override_.empty()) {
    return host_transplant_override_[static_cast<size_t>(host)];
  }
  return config_.per_host_transplant;
}

SimDuration FleetController::PendingWork() const {
  SimDuration total = 0;
  for (const int host : pending_) {
    total += HostDrainTime(host) + HostTransplantTime(host);
  }
  return total;
}

std::vector<StealableDomain> FleetController::StealableDomains() const {
  // Precondition (enforced by PlanCampaign): no crash storm and no adaptive
  // policy, so "kServing with zero attempts" is exactly "still queued".
  std::vector<int> members(static_cast<size_t>(fault_domain_count_), 0);
  std::vector<int> unstarted(static_cast<size_t>(fault_domain_count_), 0);
  std::vector<int> first_host(static_cast<size_t>(fault_domain_count_), -1);
  for (const FleetHost& h : hosts_) {
    if (h.state == FleetHostState::kDetached) {
      continue;
    }
    const auto d = static_cast<size_t>(h.fault_domain);
    ++members[d];
    if (first_host[d] < 0) {
      first_host[d] = h.id;
    }
    unstarted[d] +=
        h.state == FleetHostState::kServing && !h.upgraded && h.attempts == 0;
  }
  std::vector<StealableDomain> out;
  for (int d = 0; d < fault_domain_count_; ++d) {
    const auto i = static_cast<size_t>(d);
    if (members[i] > 0 && members[i] == unstarted[i]) {
      out.push_back(StealableDomain{d, members[i], HostDrainTime(first_host[i]),
                                    HostTransplantTime(first_host[i])});
    }
  }
  return out;
}

DetachedRack FleetController::DetachDomain(int domain) {
  HYPERTP_CHECK(config_.hold_open && !policy_.has_value() && started_ && !finished_);
  std::vector<int> member_ids;
  for (const FleetHost& h : hosts_) {
    if (h.fault_domain == domain && h.state != FleetHostState::kDetached) {
      HYPERTP_CHECK(h.state == FleetHostState::kServing && !h.upgraded && h.attempts == 0);
      member_ids.push_back(h.id);
    }
  }
  HYPERTP_CHECK(!member_ids.empty());
  DetachedRack rack;
  rack.hosts = static_cast<int>(member_ids.size());
  rack.drain_time = HostDrainTime(member_ids.front());
  rack.transplant_time = HostTransplantTime(member_ids.front());
  rack.rngs.reserve(member_ids.size());
  // Ownership moves; global exposure does not change. Accrue to the barrier
  // instant, then drop the hosts from this controller's count *silently* (no
  // exposure-timeline entry) — the campaign re-points the weight at the
  // adopting shard so the stream never sees a phantom safe/re-expose event.
  AccrueExposure();
  std::vector<char> leaving(hosts_.size(), 0);
  for (const int id : member_ids) {
    FleetHost& h = hosts_[static_cast<size_t>(id)];
    h.state = FleetHostState::kDetached;
    leaving[static_cast<size_t>(id)] = 1;
    rack.rngs.push_back(host_rngs_[static_cast<size_t>(id)]);
    Emit(FleetEventType::kHostDetached, id);
    --exposed_;
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&leaving](int id) { return leaving[static_cast<size_t>(id)]; }),
                 pending_.end());
  report_.hosts -= rack.hosts;
  report_.detached_hosts += rack.hosts;
  return rack;
}

void FleetController::AdoptHosts(const DetachedRack& rack) {
  HYPERTP_CHECK(config_.hold_open && !policy_.has_value() && started_ && !finished_);
  HYPERTP_CHECK(rack.hosts > 0 && static_cast<int>(rack.rngs.size()) == rack.hosts);
  if (host_drain_override_.empty()) {
    host_drain_override_.assign(hosts_.size(), config_.drain_time);
    host_transplant_override_.assign(hosts_.size(), config_.per_host_transplant);
  }
  const int domain = fault_domain_count_++;
  const int first_id = static_cast<int>(hosts_.size());
  AccrueExposure();
  for (int i = 0; i < rack.hosts; ++i) {
    FleetHost host;
    host.id = first_id + i;
    host.fault_domain = domain;
    hosts_.push_back(host);
    host_rngs_.push_back(rack.rngs[static_cast<size_t>(i)]);
    host_spans_.push_back(0);
    host_drain_override_.push_back(rack.drain_time);
    host_transplant_override_.push_back(rack.transplant_time);
    pending_.push_back(host.id);
    ++exposed_;
  }
  report_.hosts += rack.hosts;
  report_.adopted_hosts += rack.hosts;
  Emit(FleetEventType::kHostsAdopted, first_id, rack.hosts);
  if (drained_) {
    drained_ = false;
    drained_at_ = -1;
    executor_.ScheduleAt(executor_.now(), Guarded(&FleetController::StartNextWave));
  }
}

void FleetController::FinalizeDrained() {
  if (finished_) {
    return;
  }
  HYPERTP_CHECK(config_.hold_open && drained_);
  Finalize(FleetEventType::kRolloutComplete);
}

SimDuration FleetController::Jittered(SimDuration base, Rng& rng) {
  if (config_.latency_jitter <= 0.0 || base <= 0) {
    return base;
  }
  // Lognormal multiplier: always positive, right-skewed like real
  // maintenance latencies.
  const double multiplier = std::exp(rng.NextGaussian() * config_.latency_jitter);
  return std::max<SimDuration>(1, static_cast<SimDuration>(static_cast<double>(base) * multiplier));
}

}  // namespace hypertp
