// Mechanism policy engine: the one place that prices and picks InPlaceTP vs
// MigrationTP (paper §3 mechanisms, §5.4 orchestration).
//
// The paper chooses the mechanism statically per cluster; the repo produces
// every signal needed to choose per VM, per wave: StateGeneration churn from
// pre-translation (dirty fraction), pipeline stage costs, per-DC link
// bandwidth, host headroom, and rollback risk from the PRAM ledger.
// Historically the pricing math was smeared across four subsystems —
// pipeline stage costs (src/pipeline/conversion.h), the cluster executor's
// migration-link arithmetic (src/cluster/cluster.cc), the fleet layer's
// conversion-share adjustment (DeriveFleetTiming) and the closed-form
// FleetTransplantTime (src/vulndb/window_model.h). TransplantCostModel now
// owns all of it with named inputs; those call sites delegate here, so a
// costing change happens exactly once.
//
// Determinism contract: every decision is a pure function of (PolicyConfig,
// VmSignals, EnvSignals) — no RNG draws, no wall-clock, no mutable state.
// Per-host plans key on a *global* host id supplied by the caller (the
// campaign planner derives it from the datacenter rack layout), so a fleet
// partitioned into any number of shards reaches byte-identical decisions.
// With mode == kFixed the policy is inert: consumers keep their legacy
// static tagging and constants, and seeded replays are byte-identical to
// pre-policy builds.

#ifndef HYPERTP_SRC_POLICY_POLICY_H_
#define HYPERTP_SRC_POLICY_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"
#include "src/sim/time.h"

namespace hypertp {
namespace policy {

// What the VM is doing, per the paper's cluster mix (30% streaming, 30%
// CPU+memory intensive, 40% idle). Mirrors ClusterVmRole; kept separate so
// the policy layer stays below the cluster layer.
enum class VmActivity : uint8_t { kIdle, kCpuMem, kStreaming };

// Pre-copy dirty-rate inflation for a live migration of this VM: streaming
// VMs rewrite buffers continuously and need extra pre-copy rounds. The
// values are the ones ExecuteClusterUpgrade always used (1.0 / 1.15 / 1.30);
// they now live here so cluster and policy price migrations identically.
double ActivityDirtyFactor(VmActivity activity);

// Share of the VM's platform/device state expected dirty at pause time under
// speculative pre-translation — the Hypervisor::StateGeneration delta signal.
// A dirty VM pays the full translate inside the pause window; a clean one
// only the generation check.
double ActivityDirtyFraction(VmActivity activity);

// Per-VM signals a decision consumes. Defaults describe the paper's §5.4
// cluster guest (1 vCPU / 4 GiB, idle).
struct VmSignals {
  uint64_t memory_bytes = 4ull << 30;
  uint32_t vcpus = 1;
  VmActivity activity = VmActivity::kIdle;
  // StateGeneration churn: probability the VM's state is dirty at pause time
  // (scales the translate cost paid inside the pause window).
  double dirty_fraction = 0.05;
  // Pre-copy inflation for migration pricing (ActivityDirtyFactor).
  double dirty_factor = 1.0;
};

// Heterogeneous per-datacenter timing: multiplicative factors a DC's hardware
// generation applies to the baseline per-host durations. `host_class` scales
// everything (older CPUs run the whole drain+micro-reboot slower),
// `reboot_cost` additionally scales the transplant leg (firmware / kexec
// latency of the host generation), and `link_generation` divides the drain
// leg (newer NICs evacuate faster). All-1.0 (the default) is the homogeneous
// fleet and must leave every consumer byte-identical, so the scaling helpers
// short-circuit on it instead of round-tripping through double.
struct DcTimingModel {
  double host_class = 1.0;
  double reboot_cost = 1.0;
  double link_generation = 1.0;

  bool uniform() const {
    return host_class == 1.0 && reboot_cost == 1.0 && link_generation == 1.0;
  }
};

// Environment signals: what the datacenter around the VM looks like.
struct EnvSignals {
  double link_gbps = 10.0;       // Per-DC migration link bandwidth.
  double host_headroom = 0.5;    // Spare capacity fraction for evacuations.
  double rollback_risk = 0.0;    // Ledger-derived rollback probability [0,1].
  SimDuration migration_overhead = SecondsF(4.0);  // Per-migration actuation.
};

enum class Mechanism : uint8_t { kInPlaceTP, kMigrationTP, kRefuse };
enum class PolicyMode : uint8_t { kFixed, kAdaptive };

std::string_view MechanismName(Mechanism mechanism);

// Knobs of the adaptive policy. All defaults leave mode == kFixed, which
// every consumer treats as "keep the legacy behavior, byte for byte".
struct PolicyConfig {
  PolicyMode mode = PolicyMode::kFixed;
  // Per-VM downtime budget for InPlaceTP: a VM whose risk-adjusted pause
  // exceeds it is migrated instead (or refused when migration is infeasible).
  SimDuration max_vm_pause = Millis(200);
  // Migration budget: evacuations longer than this are not worth the WAN
  // traffic; the VM is refused rather than migrated.
  SimDuration max_migration_duration = Seconds(300);
  // Migration is only feasible when the destination side has at least this
  // much spare capacity (fraction of a host).
  double min_migration_headroom = 0.05;
  // Environment defaults; the campaign planner overrides these per
  // datacenter (CampaignDatacenter::link_gbps / host_headroom).
  double link_gbps = 10.0;
  double host_headroom = 0.5;
  SimDuration migration_overhead = SecondsF(4.0);
  // Brownout charged to a migrated VM (final stop-and-copy switchover) when
  // the fleet layer tallies per-VM downtime.
  SimDuration migration_vm_downtime = Millis(300);
  // Guests per host for the synthetic per-host VM mix (SyntheticVmSignals).
  int vms_per_host = 10;
  // Concurrent evacuation streams per host when the per-host drain time is
  // derived from the migrating VMs' durations.
  int migration_streams = 1;

  bool adaptive() const { return mode == PolicyMode::kAdaptive; }
};

// Rejects out-of-range knobs (negative bandwidths/budgets/headroom,
// fractions outside [0, 1], non-positive counts) with errors naming
// `prefix` + field, e.g. "FleetConfig::policy.link_gbps must be >= 0".
Result<void> ValidatePolicyConfig(const PolicyConfig& config, const std::string& prefix);

// One VM's priced decision.
struct MechanismDecision {
  Mechanism mechanism = Mechanism::kInPlaceTP;
  // Expected pause of one InPlaceTP pass (risk-unadjusted; see risk_pause).
  SimDuration inplace_pause = 0;
  // inplace_pause * (1 + rollback_risk): what the budget check uses — a
  // rollback replays the pause, so risky fleets prefer migration earlier.
  SimDuration risk_pause = 0;
  SimDuration migration_duration = 0;  // 0 when migration is infeasible.
  bool migration_feasible = false;
};

// Unified transplant cost model over one HostCostProfile (C1, the paper's
// §5.1 cluster node, unless told otherwise). Wraps the pipeline stage costs
// and owns the migration-link and fleet-makespan arithmetic that used to be
// duplicated in cluster.cc, fleet_controller.cc and window_model.cc.
class TransplantCostModel {
 public:
  TransplantCostModel();  // C1 costs.
  explicit TransplantCostModel(HostCostProfile costs);

  const HostCostProfile& costs() const { return costs_; }

  // Usable bytes/second of a `link_gbps` migration link (94% goodput after
  // protocol overhead — the constant ExecuteClusterUpgrade always applied).
  static double LinkBytesPerSecond(double link_gbps);

  // Live-migration wall-clock of one VM: dirty-inflated memory copy over the
  // link plus the per-migration actuation overhead. Bit-identical to the
  // arithmetic ExecuteClusterUpgrade used inline.
  static SimDuration MigrationDuration(uint64_t memory_bytes, double dirty_factor,
                                       double link_gbps, SimDuration overhead);

  // Conversion cost (translate + restore under `target`) of one VM with the
  // dirty fraction applied: dirty share pays the full translate, the clean
  // share only the pre-translation generation check. This is also the VM's
  // expected InPlaceTP pause contribution.
  SimDuration VmConversionCost(const VmSignals& vm, HypervisorKind target) const;

  // Same, assuming the worst case (every byte dirty) — what the legacy
  // constants embed.
  SimDuration VmConversionCostAllDirty(const VmSignals& vm, HypervisorKind target) const;

  // Serial all-dirty conversion share of `guests` identical VMs — the cost a
  // constant per-host transplant time embeds (DeriveFleetTiming's baseline).
  SimDuration SerialConversionShare(int guests, uint32_t vcpus, uint64_t memory_bytes,
                                    HypervisorKind target) const;

  // Worker-pool (LPT) makespan of the dirty-adjusted conversion of `guests`
  // identical VMs: floor(dirty_fraction * guests) of them pay the full
  // translate, the rest the generation check. Exactly DeriveFleetTiming's
  // pooled share, now stated once.
  SimDuration PooledConversionShare(int guests, uint32_t vcpus, uint64_t memory_bytes,
                                    HypervisorKind target, double dirty_fraction,
                                    int workers) const;

  // Closed-form fleet makespan: ceil(hosts / parallel) waves of `per_host`.
  // FleetTransplantTime (window_model) delegates here.
  static SimDuration FleetMakespan(int hosts, int parallel_hosts, SimDuration per_host);

  // Heterogeneous-DC scaling of the baseline per-host durations (campaign
  // layer). Uniform timing returns `base` unchanged — no double round-trip —
  // so homogeneous configs keep their exact legacy durations.
  static SimDuration ScaledTransplant(SimDuration base, const DcTimingModel& timing);
  static SimDuration ScaledDrain(SimDuration base, const DcTimingModel& timing);

  // Remaining-work estimate of a shard mid-rollout: the unstarted hosts'
  // aggregate (drain + transplant) cost spread over the shard's wave width —
  // the quantity the campaign StealPlanner balances across shards.
  static SimDuration RemainingEstimate(SimDuration pending_work, int parallel_hosts);

 private:
  HostCostProfile costs_;
};

// Ledger-derived rollback risk prior: the probability a transplant attempt
// strands the host past the point of no return *and* must replay through the
// PRAM ledger — the product of the per-attempt failure probability and the
// post-pause fraction, clamped to [0, 1].
double LedgerRollbackRisk(double failure_probability, double post_pause_fraction);

// Deterministic synthetic VM population: signals of global VM `index` in the
// paper's §5.4 mix (index % 10: 3 streaming, 3 CPU+mem, 4 idle), 1 vCPU /
// 4 GiB, except every 8th VM is a fat 4 vCPU / 16 GiB guest. Pure function
// of the index, so any partition of a fleet sees the same population.
VmSignals SyntheticVmSignals(int64_t global_vm_index);

// Aggregate plan for one host's guests under the policy.
struct HostPolicyPlan {
  int inplace_vms = 0;
  int migrate_vms = 0;
  int refused_vms = 0;
  // Adjusted per-host durations: transplant covers only the in-place guests'
  // pooled conversion; drain additionally covers the evacuations.
  SimDuration transplant_time = 0;
  SimDuration drain_time = 0;
  // Per-VM downtime one upgrade of this host charges: each in-place guest's
  // expected pause plus each migrated guest's switchover brownout.
  SimDuration vm_downtime = 0;

  // A host with any refused guest is never upgraded: it keeps serving the
  // vulnerable hypervisor (and keeps accruing exposure).
  bool refused() const { return refused_vms > 0; }
};

class MechanismPolicy {
 public:
  explicit MechanismPolicy(PolicyConfig config);
  MechanismPolicy(PolicyConfig config, HostCostProfile costs);

  const PolicyConfig& config() const { return config_; }
  const TransplantCostModel& cost_model() const { return model_; }

  // Environment signals from the config's defaults (rollback risk 0).
  EnvSignals DefaultEnv() const;

  // Prices both mechanisms for one VM and picks:
  //   1. InPlaceTP when the risk-adjusted pause fits max_vm_pause;
  //   2. else MigrationTP when feasible (headroom, live link) and within
  //      max_migration_duration;
  //   3. else kRefuse — neither mechanism meets its budget.
  MechanismDecision Decide(const VmSignals& vm, const EnvSignals& env,
                           HypervisorKind target = HypervisorKind::kKvm) const;

  // Decides every synthetic guest of global host `host_global_id` and folds
  // the outcomes into adjusted per-host timings: the transplant time swaps
  // the all-dirty serial conversion share embedded in `base_transplant` for
  // the in-place guests' pooled share over `conversion_workers`; the drain
  // time adds the migrating guests' LPT makespan over the configured
  // migration streams. A refused() plan carries zero timings and downtime —
  // the host is never touched.
  HostPolicyPlan PlanHost(int64_t host_global_id, const EnvSignals& env,
                          SimDuration base_transplant, SimDuration base_drain,
                          int conversion_workers,
                          HypervisorKind target = HypervisorKind::kKvm) const;

 private:
  PolicyConfig config_;
  TransplantCostModel model_;
};

}  // namespace policy
}  // namespace hypertp

#endif  // HYPERTP_SRC_POLICY_POLICY_H_
