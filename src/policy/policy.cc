#include "src/policy/policy.h"

#include <algorithm>
#include <cmath>

#include "src/pipeline/conversion.h"
#include "src/sim/worker_pool.h"

namespace hypertp {
namespace policy {

double ActivityDirtyFactor(VmActivity activity) {
  switch (activity) {
    case VmActivity::kStreaming:
      return 1.30;
    case VmActivity::kCpuMem:
      return 1.15;
    case VmActivity::kIdle:
      return 1.0;
  }
  return 1.0;
}

double ActivityDirtyFraction(VmActivity activity) {
  switch (activity) {
    case VmActivity::kStreaming:
      return 0.9;
    case VmActivity::kCpuMem:
      return 0.5;
    case VmActivity::kIdle:
      return 0.05;
  }
  return 1.0;
}

std::string_view MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kInPlaceTP:
      return "inplace";
    case Mechanism::kMigrationTP:
      return "migrate";
    case Mechanism::kRefuse:
      return "refuse";
  }
  return "unknown";
}

Result<void> ValidatePolicyConfig(const PolicyConfig& config, const std::string& prefix) {
  const auto non_negative_duration = [&](SimDuration v, const char* field) -> Result<void> {
    if (v < 0) {
      return InvalidArgumentError(prefix + field + " must be >= 0, got " + std::to_string(v) +
                                  " ns");
    }
    return OkResult();
  };
  const auto fraction = [&](double v, const char* field) -> Result<void> {
    if (!(v >= 0.0 && v <= 1.0)) {  // Negated so NaN is rejected too.
      return InvalidArgumentError(prefix + field + " must be a fraction in [0, 1], got " +
                                  std::to_string(v));
    }
    return OkResult();
  };
  const auto positive_int = [&](int v, const char* field) -> Result<void> {
    if (v <= 0) {
      return InvalidArgumentError(prefix + field + " must be > 0, got " + std::to_string(v));
    }
    return OkResult();
  };

  if (auto r = non_negative_duration(config.max_vm_pause, "max_vm_pause"); !r.ok()) return r;
  if (auto r = non_negative_duration(config.max_migration_duration, "max_migration_duration");
      !r.ok())
    return r;
  if (auto r = non_negative_duration(config.migration_overhead, "migration_overhead"); !r.ok())
    return r;
  if (auto r = non_negative_duration(config.migration_vm_downtime, "migration_vm_downtime");
      !r.ok())
    return r;
  if (auto r = fraction(config.min_migration_headroom, "min_migration_headroom"); !r.ok())
    return r;
  if (auto r = fraction(config.host_headroom, "host_headroom"); !r.ok()) return r;
  if (!(config.link_gbps >= 0.0) || !std::isfinite(config.link_gbps)) {
    return InvalidArgumentError(prefix + "link_gbps must be finite and >= 0, got " +
                                std::to_string(config.link_gbps));
  }
  if (auto r = positive_int(config.vms_per_host, "vms_per_host"); !r.ok()) return r;
  if (auto r = positive_int(config.migration_streams, "migration_streams"); !r.ok()) return r;
  return OkResult();
}

TransplantCostModel::TransplantCostModel() : costs_(MachineProfile::C1().costs) {}

TransplantCostModel::TransplantCostModel(HostCostProfile costs) : costs_(costs) {}

double TransplantCostModel::LinkBytesPerSecond(double link_gbps) {
  return link_gbps * 1e9 / 8.0 * 0.94;
}

SimDuration TransplantCostModel::MigrationDuration(uint64_t memory_bytes, double dirty_factor,
                                                   double link_gbps, SimDuration overhead) {
  const double link_bytes_per_sec = LinkBytesPerSecond(link_gbps);
  // Same expression, in the same order, as ExecuteClusterUpgrade always
  // computed inline — cluster replays stay byte-identical.
  const SimDuration copy = static_cast<SimDuration>(
      static_cast<double>(memory_bytes) * dirty_factor / link_bytes_per_sec * 1e9);
  return copy + overhead;
}

SimDuration TransplantCostModel::VmConversionCost(const VmSignals& vm,
                                                  HypervisorKind target) const {
  const SimDuration full_translate =
      pipeline::TranslateStageCost(costs_, vm.vcpus, vm.memory_bytes);
  const SimDuration restore =
      pipeline::RestoreStageCost(costs_, target, vm.vcpus, vm.memory_bytes);
  const double dirty = std::clamp(vm.dirty_fraction, 0.0, 1.0);
  // Expected translate share: the dirty share pays the full per-VM translate
  // inside the pause window, the clean share only the generation check.
  const SimDuration translate_share =
      static_cast<SimDuration>(dirty * static_cast<double>(full_translate) +
                               (1.0 - dirty) * static_cast<double>(costs_.pretranslate_check));
  return translate_share + restore;
}

SimDuration TransplantCostModel::VmConversionCostAllDirty(const VmSignals& vm,
                                                          HypervisorKind target) const {
  return pipeline::TranslateStageCost(costs_, vm.vcpus, vm.memory_bytes) +
         pipeline::RestoreStageCost(costs_, target, vm.vcpus, vm.memory_bytes);
}

SimDuration TransplantCostModel::SerialConversionShare(int guests, uint32_t vcpus,
                                                       uint64_t memory_bytes,
                                                       HypervisorKind target) const {
  const SimDuration per_vm = pipeline::TranslateStageCost(costs_, vcpus, memory_bytes) +
                             pipeline::RestoreStageCost(costs_, target, vcpus, memory_bytes);
  std::vector<SimDuration> costs(static_cast<size_t>(std::max(guests, 0)), per_vm);
  return ScheduleWork(costs, 1).makespan;
}

SimDuration TransplantCostModel::PooledConversionShare(int guests, uint32_t vcpus,
                                                       uint64_t memory_bytes,
                                                       HypervisorKind target,
                                                       double dirty_fraction, int workers) const {
  const int n = std::max(guests, 0);
  const double dirty = std::clamp(dirty_fraction, 0.0, 1.0);
  // Discrete dirty-guest counting, exactly as DeriveFleetTiming laid the
  // costs out: floor(dirty * guests) guests pay the full translate, the rest
  // the generation check; every guest pays the restore.
  const int dirty_guests = static_cast<int>(std::floor(dirty * static_cast<double>(n)));
  const SimDuration full_translate = pipeline::TranslateStageCost(costs_, vcpus, memory_bytes);
  const SimDuration restore = pipeline::RestoreStageCost(costs_, target, vcpus, memory_bytes);
  std::vector<SimDuration> per_vm;
  per_vm.reserve(static_cast<size_t>(n));
  for (int g = 0; g < n; ++g) {
    per_vm.push_back((g < dirty_guests ? full_translate : costs_.pretranslate_check) + restore);
  }
  return ScheduleWork(per_vm, workers).makespan;
}

SimDuration TransplantCostModel::FleetMakespan(int hosts, int parallel_hosts,
                                               SimDuration per_host) {
  const int n = std::max(hosts, 0);  // Negative hosts: empty fleet.
  const int parallel = std::max(parallel_hosts, 1);
  const int waves = (n + parallel - 1) / parallel;
  return per_host * waves;
}

SimDuration TransplantCostModel::ScaledTransplant(SimDuration base, const DcTimingModel& timing) {
  if (timing.host_class == 1.0 && timing.reboot_cost == 1.0) {
    return base;  // Homogeneous: keep the exact integer duration.
  }
  const double scaled = static_cast<double>(base) * timing.host_class * timing.reboot_cost;
  return std::max<SimDuration>(base > 0 ? 1 : 0, static_cast<SimDuration>(scaled));
}

SimDuration TransplantCostModel::ScaledDrain(SimDuration base, const DcTimingModel& timing) {
  if (timing.host_class == 1.0 && timing.link_generation == 1.0) {
    return base;
  }
  const double scaled = static_cast<double>(base) * timing.host_class / timing.link_generation;
  return std::max<SimDuration>(base > 0 ? 1 : 0, static_cast<SimDuration>(scaled));
}

SimDuration TransplantCostModel::RemainingEstimate(SimDuration pending_work, int parallel_hosts) {
  return pending_work / std::max(parallel_hosts, 1);
}

double LedgerRollbackRisk(double failure_probability, double post_pause_fraction) {
  const double risk = failure_probability * post_pause_fraction;
  if (!(risk > 0.0)) {  // Negated so NaN maps to the safe floor.
    return 0.0;
  }
  return std::min(risk, 1.0);
}

VmSignals SyntheticVmSignals(int64_t global_vm_index) {
  const int64_t index = global_vm_index < 0 ? 0 : global_vm_index;
  VmSignals vm;
  // Paper §5.4 mix, same modulus layout as ClusterModel::PaperCluster: per
  // block of 10 VMs, 3 streaming / 3 CPU+mem / 4 idle.
  const int mod = static_cast<int>(index % 10);
  vm.activity = mod < 3 ? VmActivity::kStreaming
                        : (mod < 6 ? VmActivity::kCpuMem : VmActivity::kIdle);
  // Every 8th VM is a fat guest (4 vCPU / 16 GiB) so memory size is a live
  // decision axis, not a constant.
  if (index % 8 == 7) {
    vm.vcpus = 4;
    vm.memory_bytes = 16ull << 30;
  }
  vm.dirty_fraction = ActivityDirtyFraction(vm.activity);
  vm.dirty_factor = ActivityDirtyFactor(vm.activity);
  return vm;
}

MechanismPolicy::MechanismPolicy(PolicyConfig config) : config_(config), model_() {}

MechanismPolicy::MechanismPolicy(PolicyConfig config, HostCostProfile costs)
    : config_(config), model_(costs) {}

EnvSignals MechanismPolicy::DefaultEnv() const {
  EnvSignals env;
  env.link_gbps = config_.link_gbps;
  env.host_headroom = config_.host_headroom;
  env.rollback_risk = 0.0;
  env.migration_overhead = config_.migration_overhead;
  return env;
}

MechanismDecision MechanismPolicy::Decide(const VmSignals& vm, const EnvSignals& env,
                                          HypervisorKind target) const {
  MechanismDecision decision;
  decision.inplace_pause = model_.VmConversionCost(vm, target);
  const double risk = std::clamp(env.rollback_risk, 0.0, 1.0);
  // A rollback replays the pause through the PRAM ledger; first order, the
  // expected pause inflates by the rollback probability.
  decision.risk_pause = static_cast<SimDuration>(
      static_cast<double>(decision.inplace_pause) * (1.0 + risk));
  decision.migration_feasible =
      env.link_gbps > 0.0 && env.host_headroom >= config_.min_migration_headroom;
  if (decision.migration_feasible) {
    decision.migration_duration = TransplantCostModel::MigrationDuration(
        vm.memory_bytes, vm.dirty_factor, env.link_gbps, env.migration_overhead);
  }
  if (decision.risk_pause <= config_.max_vm_pause) {
    decision.mechanism = Mechanism::kInPlaceTP;
  } else if (decision.migration_feasible &&
             decision.migration_duration <= config_.max_migration_duration) {
    decision.mechanism = Mechanism::kMigrationTP;
  } else {
    decision.mechanism = Mechanism::kRefuse;
  }
  return decision;
}

HostPolicyPlan MechanismPolicy::PlanHost(int64_t host_global_id, const EnvSignals& env,
                                         SimDuration base_transplant, SimDuration base_drain,
                                         int conversion_workers, HypervisorKind target) const {
  HostPolicyPlan plan;
  std::vector<SimDuration> all_dirty_costs;
  std::vector<SimDuration> inplace_costs;
  std::vector<SimDuration> migration_costs;
  all_dirty_costs.reserve(static_cast<size_t>(config_.vms_per_host));
  for (int v = 0; v < config_.vms_per_host; ++v) {
    const VmSignals vm =
        SyntheticVmSignals(host_global_id * static_cast<int64_t>(config_.vms_per_host) + v);
    all_dirty_costs.push_back(model_.VmConversionCostAllDirty(vm, target));
    const MechanismDecision decision = Decide(vm, env, target);
    switch (decision.mechanism) {
      case Mechanism::kInPlaceTP:
        ++plan.inplace_vms;
        inplace_costs.push_back(decision.inplace_pause);
        plan.vm_downtime += decision.inplace_pause;
        break;
      case Mechanism::kMigrationTP:
        ++plan.migrate_vms;
        migration_costs.push_back(decision.migration_duration);
        plan.vm_downtime += config_.migration_vm_downtime;
        break;
      case Mechanism::kRefuse:
        ++plan.refused_vms;
        break;
    }
  }
  if (plan.refused()) {
    // One refused guest blocks the whole host: nothing executes, nothing is
    // charged. The decision counts stand — they record what the policy said.
    plan.transplant_time = 0;
    plan.drain_time = 0;
    plan.vm_downtime = 0;
    return plan;
  }
  // Swap the all-dirty serial conversion share the constant embeds for the
  // in-place guests' pooled share — the same adjustment shape
  // DeriveFleetTiming applies, per host instead of fleet-wide.
  const SimDuration serial_share = ScheduleWork(all_dirty_costs, 1).makespan;
  const SimDuration pooled_share =
      ScheduleWork(inplace_costs, std::max(conversion_workers, 1)).makespan;
  plan.transplant_time =
      std::max<SimDuration>(base_transplant - serial_share + pooled_share, pooled_share);
  plan.drain_time =
      base_drain +
      ScheduleWork(migration_costs, std::max(config_.migration_streams, 1)).makespan;
  return plan;
}

}  // namespace policy
}  // namespace hypertp
