#include "src/kvm/cfs_scheduler.h"

#include <algorithm>
#include <cassert>

namespace hypertp {

CfsScheduler::CfsScheduler(int cpus) {
  assert(cpus >= 1);
  runqueues_.resize(static_cast<size_t>(cpus));
}

uint64_t CfsScheduler::MinVruntime() const {
  uint64_t min_vr = 0;
  bool any = false;
  for (const auto& queue : runqueues_) {
    for (const CfsTask& t : queue) {
      if (!any || t.vruntime < min_vr) {
        min_vr = t.vruntime;
        any = true;
      }
    }
  }
  return min_vr;
}

void CfsScheduler::AddTask(uint64_t vm_uid, uint32_t vcpu, uint32_t weight) {
  auto it = std::min_element(
      runqueues_.begin(), runqueues_.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  it->push_back(CfsTask{vm_uid, vcpu, MinVruntime(), weight});
}

void CfsScheduler::RemoveVm(uint64_t vm_uid) {
  for (auto& queue : runqueues_) {
    std::erase_if(queue, [vm_uid](const CfsTask& t) { return t.vm_uid == vm_uid; });
  }
}

void CfsScheduler::Tick(uint64_t period_ns) {
  for (auto& queue : runqueues_) {
    if (queue.empty()) {
      continue;
    }
    auto next = std::min_element(
        queue.begin(), queue.end(),
        [](const CfsTask& a, const CfsTask& b) { return a.vruntime < b.vruntime; });
    // vruntime advances inversely to weight (heavier tasks age slower).
    next->vruntime += period_ns * 1024 / std::max<uint32_t>(next->weight, 1);
  }
}

size_t CfsScheduler::total_tasks() const {
  size_t n = 0;
  for (const auto& queue : runqueues_) {
    n += queue.size();
  }
  return n;
}

}  // namespace hypertp
