// KVMish's UISR translation layer (the kvmtool-side to_uisr_*/from_uisr_*
// functions, paper §4.2.1). kvmtool is the component that understands UISR
// on the KVM side and talks to the kernel module through ioctl-shaped state.

#ifndef HYPERTP_SRC_KVM_KVM_UISR_H_
#define HYPERTP_SRC_KVM_KVM_UISR_H_

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/kvm/kvm_formats.h"
#include "src/uisr/records.h"

namespace hypertp {

// KVM ioctl state -> UISR. Structural MSRs (APIC base, PAT, MTRRs, TSC
// deadline) are lifted out of the generic list into UISR's typed records.
Result<UisrVcpu> KvmVcpuToUisr(const KvmVcpuState& state);

// UISR -> KVM ioctl state. The MSR list is assembled sorted by index and
// includes the structural MSRs, matching what KVM_SET_MSRS would receive.
Result<KvmVcpuState> KvmVcpuFromUisr(const UisrVcpu& vcpu);

// Platform-level: vCPUs + IRQCHIP(IOAPIC) + PIT2 into an existing UisrVm.
Result<void> KvmPlatformToUisr(const std::vector<KvmVcpuState>& vcpus,
                               const KvmIoapicState& ioapic, const KvmPitState2& pit,
                               UisrVm& out);

struct KvmPlatform {
  std::vector<KvmVcpuState> vcpus;
  KvmIoapicState ioapic;
  KvmPitState2 pit;
};

// UISR -> KVM platform. A UISR IOAPIC wider than KVM's 24 pins gets its high
// pins disconnected, one fixup entry per *active* dropped pin (§4.2.1: "our
// implementation simply disconnects the higher 24 IOAPIC pins"). With
// `remap_high_pins` (the paper's future-work extension) active high pins are
// instead moved to free low pins and the guest is notified of the new GSI.
Result<KvmPlatform> KvmPlatformFromUisr(const UisrVm& vm, FixupLog* log,
                                        bool remap_high_pins = false);

}  // namespace hypertp

#endif  // HYPERTP_SRC_KVM_KVM_UISR_H_
