// KVMish's host scheduler model: vCPU threads under a CFS-like policy.
// Like Xen's credit scheduler, this is VM Management State — rebuilt after a
// transplant, never translated.

#ifndef HYPERTP_SRC_KVM_CFS_SCHEDULER_H_
#define HYPERTP_SRC_KVM_CFS_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace hypertp {

struct CfsTask {
  uint64_t vm_uid = 0;
  uint32_t vcpu = 0;
  uint64_t vruntime = 0;
  uint32_t weight = 1024;  // nice 0.

  bool operator==(const CfsTask&) const = default;
};

class CfsScheduler {
 public:
  explicit CfsScheduler(int cpus);

  // New tasks start at the current minimum vruntime (CFS placement rule).
  void AddTask(uint64_t vm_uid, uint32_t vcpu, uint32_t weight = 1024);
  void RemoveVm(uint64_t vm_uid);

  // One scheduling period: the lowest-vruntime task on each CPU runs and
  // accumulates weighted vruntime.
  void Tick(uint64_t period_ns = 4'000'000);

  size_t total_tasks() const;
  int cpus() const { return static_cast<int>(runqueues_.size()); }
  const std::vector<std::vector<CfsTask>>& runqueues() const { return runqueues_; }

 private:
  uint64_t MinVruntime() const;

  std::vector<std::vector<CfsTask>> runqueues_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_KVM_CFS_SCHEDULER_H_
