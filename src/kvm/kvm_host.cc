#include "src/kvm/kvm_host.h"

#include "src/base/logging.h"
#include "src/hv/devices.h"
#include "src/kvm/kvm_uisr.h"

namespace hypertp {
namespace {

// Host Linux kernel + userspace services (HV State).
constexpr uint64_t kHostLinuxBytes = 2048ull << 20;
// kvmtool maps guest memory as anonymous THP-backed regions; the host mm
// hands them out in large contiguous chunks.
constexpr uint64_t kMmapChunkFrames = 65536;  // 256 MiB.
// kvmtool's own working set (text, heap, virtio rings) per VM.
constexpr uint64_t kVmmWorkingFrames = 16384;  // 64 MiB.

}  // namespace

KvmHost::KvmHost(Machine& machine)
    : machine_(&machine), scheduler_(machine.profile().threads) {
  // Chunked like XenVisor's boot allocation: after a micro-reboot, free RAM
  // is fragmented around the preserved guest frames.
  const FrameOwner hv{FrameOwnerKind::kHypervisor, 0};
  uint64_t remaining = kHostLinuxBytes / kPageSize;
  uint64_t chunk = kMmapChunkFrames;
  while (remaining > 0 && chunk > 0) {
    const uint64_t want = std::min(remaining, chunk);
    auto mfn = machine_->memory().Alloc(want, 1, hv);
    if (mfn.ok()) {
      hv_frames_ += want;
      remaining -= want;
    } else {
      chunk /= 2;
    }
  }
  if (remaining > 0) {
    HYPERTP_LOG(kError, "kvm") << "boot: machine too small for host Linux";
  }
  HYPERTP_LOG(kInfo, "kvm") << "kvmish-5.3 booted on " << machine_->hostname();
}

KvmHost::~KvmHost() {
  for (auto& [fd, vm] : vms_) {
    FreeVmFrames(vm);
  }
  if (hv_frames_ > 0) {
    machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kHypervisor, 0});
  }
}

Result<KvmVm*> KvmHost::MutableVm(VmId id) {
  auto it = vms_.find(static_cast<int>(id));
  if (it == vms_.end()) {
    return NotFoundError("kvm: no vm fd " + std::to_string(id));
  }
  return &it->second;
}

Result<const KvmVm*> KvmHost::FindVm(VmId id) const {
  auto it = vms_.find(static_cast<int>(id));
  if (it == vms_.end()) {
    return NotFoundError("kvm: no vm fd " + std::to_string(id));
  }
  return &it->second;
}

Result<VmId> KvmHost::FindVmByUid(uint64_t uid) const {
  for (const auto& [fd, vm] : vms_) {
    if (vm.uid == uid) {
      return static_cast<VmId>(fd);
    }
  }
  return NotFoundError("kvm: no vm with uid " + std::to_string(uid));
}

Result<void> KvmHost::AllocateGuestMemory(KvmVm& vm) {
  const FrameOwner owner{FrameOwnerKind::kGuest, vm.uid};
  uint64_t remaining = vm.memory_bytes / kPageSize;
  Gfn gfn = 0;
  const uint64_t align = vm.huge_pages ? kFramesPerHugePage : 1;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kMmapChunkFrames);
    HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, machine_->memory().Alloc(chunk, align, owner));
    HYPERTP_RETURN_IF_ERROR(vm.memslots.MapExtent(gfn, mfn, chunk));
    gfn += chunk;
    remaining -= chunk;
  }
  return OkResult();
}

Result<void> KvmHost::AdoptGuestMemory(KvmVm& vm, const std::vector<PramPageEntry>& entries) {
  const FrameOwner owner{FrameOwnerKind::kGuest, vm.uid};
  for (const PramPageEntry& e : entries) {
    for (Mfn m = e.mfn; m < e.mfn + e.frame_count(); ++m) {
      HYPERTP_ASSIGN_OR_RETURN(FrameOwner actual, machine_->memory().OwnerOf(m));
      if (!(actual == owner)) {
        return DataLossError("kvm: in-place frame " + std::to_string(m) +
                             " not owned by guest uid " + std::to_string(vm.uid));
      }
    }
    HYPERTP_RETURN_IF_ERROR(vm.memslots.MapExtent(e.gfn, e.mfn, e.frame_count()));
  }
  if (vm.memslots.mapped_frames() != vm.memory_bytes / kPageSize) {
    return DataLossError("kvm: PRAM file covers " + std::to_string(vm.memslots.mapped_frames()) +
                         " frames, VM declares " + std::to_string(vm.memory_bytes / kPageSize));
  }
  return OkResult();
}

Result<void> KvmHost::AllocateVmStateFrames(KvmVm& vm) {
  const FrameOwner state_owner{FrameOwnerKind::kVmState, vm.uid};
  const FrameOwner vmm_owner{FrameOwnerKind::kVmm, vm.uid};
  // EPT tables: ~1 frame per 2 MiB of guest memory plus roots.
  const uint64_t ept_frames = vm.memory_bytes / kHugePageSize + 8;
  HYPERTP_ASSIGN_OR_RETURN(Mfn ept, machine_->memory().Alloc(ept_frames, 1, state_owner));
  (void)ept;
  vm.vm_state_frames = ept_frames;
  HYPERTP_ASSIGN_OR_RETURN(Mfn vmm, machine_->memory().Alloc(kVmmWorkingFrames, 1, vmm_owner));
  (void)vmm;
  vm.vmm.working_frames = kVmmWorkingFrames;
  return OkResult();
}

void KvmHost::FreeVmFrames(const KvmVm& vm) {
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kGuest, vm.uid});
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kVmState, vm.uid});
  machine_->memory().FreeAllOwnedBy(FrameOwner{FrameOwnerKind::kVmm, vm.uid});
}

Result<VmId> KvmHost::CreateVm(const VmConfig& config) {
  HYPERTP_RETURN_IF_ERROR(ValidateVmConfig(config, 240));

  KvmVm vm;
  vm.vm_fd = next_fd_++;
  vm.uid = config.uid != 0 ? config.uid : AllocateVmUid();
  vm.name = config.name;
  vm.memory_bytes = config.memory_bytes;
  vm.huge_pages = config.huge_pages;
  vm.vmm.pid = next_pid_++;
  for (const auto& [fd, existing] : vms_) {
    if (existing.uid == vm.uid) {
      return AlreadyExistsError("kvm: uid " + std::to_string(vm.uid) + " already hosted");
    }
  }

  for (uint32_t i = 0; i < config.vcpus; ++i) {
    HYPERTP_ASSIGN_OR_RETURN(KvmVcpuState vcpu, KvmVcpuFromUisr(MakeSyntheticVcpu(vm.uid, i)));
    vm.vcpus.push_back(std::move(vcpu));
  }

  // kvmtool wires devices to low IOAPIC pins (< 24).
  vm.ioapic.id = 0;
  vm.ioapic.redirtbl[4] = 0x10004;  // COM1.
  uint32_t instance = 0;
  for (const DeviceConfig& dev_config : config.devices) {
    HYPERTP_ASSIGN_OR_RETURN(
        UisrDeviceState dev,
        MakeDefaultDeviceState(dev_config.model, instance, vm.uid, dev_config.mode));
    if (dev_config.model.starts_with("virtio")) {
      vm.ioapic.redirtbl[10 + instance] = 0x10040 + instance;
    }
    vm.vmm.devices.push_back(std::move(dev));
    ++instance;
  }
  vm.pit.channels[0].count = 0x4A9;
  vm.pit.channels[0].mode = 2;
  vm.pit.channels[0].gate = 1;

  HYPERTP_RETURN_IF_ERROR(AllocateGuestMemory(vm));
  HYPERTP_RETURN_IF_ERROR(AllocateVmStateFrames(vm));

  for (uint32_t i = 0; i < config.vcpus; ++i) {
    scheduler_.AddTask(vm.uid, i);
  }

  const VmId id = vm.vm_fd;
  vms_.emplace(vm.vm_fd, std::move(vm));
  HYPERTP_LOG(kInfo, "kvm") << "created vm fd " << id << " '" << config.name << "' ("
                            << config.vcpus << " vCPU, " << (config.memory_bytes >> 20)
                            << " MiB)";
  return id;
}

Result<void> KvmHost::DestroyVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  FreeVmFrames(*vm);
  scheduler_.RemoveVm(vm->uid);
  vms_.erase(static_cast<int>(id));
  return OkResult();
}

Result<void> KvmHost::PauseVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  vm->run_state = VmRunState::kPaused;
  return OkResult();
}

Result<void> KvmHost::ResumeVm(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  vm->run_state = VmRunState::kRunning;
  return OkResult();
}

Result<VmInfo> KvmHost::GetVmInfo(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const KvmVm* vm, FindVm(id));
  VmInfo info;
  info.id = id;
  info.uid = vm->uid;
  info.name = vm->name;
  info.vcpus = static_cast<uint32_t>(vm->vcpus.size());
  info.memory_bytes = vm->memory_bytes;
  info.huge_pages = vm->huge_pages;
  for (const UisrDeviceState& dev : vm->vmm.devices) {
    info.has_passthrough |= dev.mode == DeviceAttachMode::kPassthrough;
  }
  info.run_state = vm->run_state;
  return info;
}

std::vector<VmId> KvmHost::ListVms() const {
  std::vector<VmId> ids;
  ids.reserve(vms_.size());
  for (const auto& [fd, vm] : vms_) {
    ids.push_back(fd);
  }
  return ids;
}

Result<std::vector<GuestMapping>> KvmHost::GuestMemoryMap(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const KvmVm* vm, FindVm(id));
  return vm->memslots.mappings();
}

Result<uint64_t> KvmHost::ReadGuestPage(VmId id, Gfn gfn) const {
  HYPERTP_ASSIGN_OR_RETURN(const KvmVm* vm, FindVm(id));
  return vm->memslots.Read(machine_->memory(), gfn);
}

Result<void> KvmHost::WriteGuestPage(VmId id, Gfn gfn, uint64_t content) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  ++vm->state_generation;
  return vm->memslots.Write(machine_->memory(), gfn, content);
}

Result<void> KvmHost::AdvanceGuestClocks(VmId id, SimDuration delta) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  for (KvmVcpuState& vcpu : vm->vcpus) {
    for (KvmMsrEntry& msr : vcpu.msrs) {
      if (msr.index == 0x10) {  // IA32_TIME_STAMP_COUNTER.
        msr.data += static_cast<uint64_t>(delta);
      } else if (msr.index == kMsrTscDeadline && msr.data != 0) {
        msr.data += static_cast<uint64_t>(delta);
      }
    }
  }
  ++vm->state_generation;
  return OkResult();
}

Result<uint64_t> KvmHost::StateGeneration(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const KvmVm* vm, FindVm(id));
  return vm->state_generation;
}

Result<void> KvmHost::InjectGuestEvent(VmId id, GuestEventKind kind) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  if (vm->run_state != VmRunState::kRunning) {
    return FailedPreconditionError("kvm: cannot inject guest events into a paused vm");
  }
  auto bump_tsc = [&vm](uint64_t ticks, bool rearm_deadline) {
    for (KvmVcpuState& vcpu : vm->vcpus) {
      for (KvmMsrEntry& msr : vcpu.msrs) {
        if (msr.index == 0x10) {  // IA32_TIME_STAMP_COUNTER.
          msr.data += ticks;
        }
      }
      if (rearm_deadline) {
        uint64_t tsc = 0;
        for (const KvmMsrEntry& msr : vcpu.msrs) {
          if (msr.index == 0x10) {
            tsc = msr.data;
          }
        }
        for (KvmMsrEntry& msr : vcpu.msrs) {
          if (msr.index == kMsrTscDeadline) {
            msr.data = tsc + 1'000'000;
          }
        }
      }
    }
  };
  switch (kind) {
    case GuestEventKind::kTimerTick:
      // 1 ms LAPIC timer period on the virtual 1 GHz TSC.
      bump_tsc(1'000'000, /*rearm_deadline=*/true);
      break;
    case GuestEventKind::kEventChannel:
      // Kernel irqchip activity: an IOAPIC redirection entry latches its
      // remote-IRR bit (bit 14) while the interrupt is in service.
      vm->ioapic.redirtbl[2] ^= 1ull << 14;
      break;
    case GuestEventKind::kWorkloadStep:
      // A scheduling quantum of guest execution: registers move.
      bump_tsc(10'000'000, /*rearm_deadline=*/false);
      for (KvmVcpuState& vcpu : vm->vcpus) {
        vcpu.regs.rip += 0x40;
        vcpu.regs.rax += 1;
      }
      break;
  }
  ++vm->state_generation;
  return OkResult();
}

Result<void> KvmHost::EnableDirtyLogging(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  vm->memslots.EnableDirtyLog();
  return OkResult();
}

Result<std::vector<Gfn>> KvmHost::FetchAndClearDirtyLog(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  if (!vm->memslots.dirty_log_enabled()) {
    return FailedPreconditionError("kvm: dirty logging not enabled");
  }
  return vm->memslots.FetchAndClearDirty();
}

Result<void> KvmHost::DisableDirtyLogging(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  vm->memslots.DisableDirtyLog();
  return OkResult();
}

Result<void> KvmHost::PrepareVmForTransplant(VmId id) {
  HYPERTP_ASSIGN_OR_RETURN(KvmVm * vm, MutableVm(id));
  // Quiescing/unplugging changes translated device state.
  ++vm->state_generation;
  return PrepareDevicesForTransplant(vm->vmm.devices);
}

Result<UisrVm> KvmHost::SaveVmToUisr(VmId id, FixupLog* log) {
  HYPERTP_ASSIGN_OR_RETURN(const KvmVm* vm, FindVm(id));
  if (vm->run_state != VmRunState::kPaused) {
    return FailedPreconditionError("kvm: vm must be paused before UISR translation");
  }

  UisrVm out;
  out.vm_uid = vm->uid;
  out.name = vm->name;
  out.source_hypervisor = std::string(name());
  out.memory.memory_bytes = vm->memory_bytes;
  out.memory.uses_huge_pages = vm->huge_pages;

  HYPERTP_RETURN_IF_ERROR(KvmPlatformToUisr(vm->vcpus, vm->ioapic, vm->pit, out));

  for (const UisrDeviceState& dev : vm->vmm.devices) {
    HYPERTP_RETURN_IF_ERROR(ValidateDeviceForTransplant(dev));
    out.devices.push_back(dev);
    if (dev.mode == DeviceAttachMode::kUnplugged && log != nullptr) {
      log->push_back({vm->uid, dev.model, "unplugged before transplant; will rescan"});
    }
  }
  return out;
}

Result<VmId> KvmHost::RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                        FixupLog* log) {
  for (const auto& [fd, existing] : vms_) {
    if (existing.uid == uisr.vm_uid) {
      return AlreadyExistsError("kvm: uid " + std::to_string(uisr.vm_uid) + " already hosted");
    }
  }

  KvmVm vm;
  vm.vm_fd = next_fd_++;
  vm.uid = uisr.vm_uid;
  vm.name = uisr.name;
  vm.memory_bytes = uisr.memory.memory_bytes;
  vm.huge_pages = uisr.memory.uses_huge_pages;
  vm.run_state = VmRunState::kPaused;
  vm.vmm.pid = next_pid_++;

  HYPERTP_ASSIGN_OR_RETURN(KvmPlatform platform,
                           KvmPlatformFromUisr(uisr, log, binding.remap_high_ioapic_pins));
  vm.vcpus = std::move(platform.vcpus);
  vm.ioapic = platform.ioapic;
  vm.pit = platform.pit;
  vm.vmm.devices = uisr.devices;

  switch (binding.mode) {
    case GuestMemoryBinding::Mode::kAdoptInPlace:
      HYPERTP_RETURN_IF_ERROR(AdoptGuestMemory(vm, binding.entries));
      break;
    case GuestMemoryBinding::Mode::kAllocate:
      HYPERTP_RETURN_IF_ERROR(AllocateGuestMemory(vm));
      break;
  }
  HYPERTP_RETURN_IF_ERROR(AllocateVmStateFrames(vm));

  for (uint32_t i = 0; i < vm.vcpus.size(); ++i) {
    scheduler_.AddTask(vm.uid, i);
  }

  const VmId id = vm.vm_fd;
  vms_.emplace(vm.vm_fd, std::move(vm));
  HYPERTP_LOG(kInfo, "kvm") << "restored vm fd " << id << " (uid " << uisr.vm_uid
                            << ") from UISR via "
                            << (binding.mode == GuestMemoryBinding::Mode::kAdoptInPlace
                                    ? "mmap of in-place frames"
                                    : "fresh allocation");
  return id;
}

uint64_t KvmHost::HypervisorFrames() const { return hv_frames_; }

Result<std::vector<std::pair<Gfn, uint64_t>>> KvmHost::DumpGuestContent(VmId id) const {
  HYPERTP_ASSIGN_OR_RETURN(const KvmVm* vm, FindVm(id));
  return vm->memslots.DumpNonZero(machine_->memory());
}

void KvmHost::DetachForMicroReboot() {
  vms_.clear();
  scheduler_ = CfsScheduler(machine_->profile().threads);
  hv_frames_ = 0;
}

void KvmHost::RebuildScheduler() {
  scheduler_ = CfsScheduler(machine_->profile().threads);
  for (const auto& [fd, vm] : vms_) {
    for (uint32_t i = 0; i < vm.vcpus.size(); ++i) {
      scheduler_.AddTask(vm.uid, i);
    }
  }
}

}  // namespace hypertp
