#include "src/kvm/kvm_uisr.h"

#include <algorithm>
#include <cstdio>

namespace hypertp {
namespace {

KvmSegment ToKvmSegment(const UisrSegment& s) {
  KvmSegment k;
  k.base = s.base;
  k.limit = s.limit;
  k.selector = s.selector;
  k.type = s.type;
  k.present = s.present;
  k.dpl = s.dpl;
  k.db = s.db;
  k.s = s.s;
  k.l = s.l;
  k.g = s.g;
  k.avl = s.avl;
  k.unusable = s.unusable;
  return k;
}

UisrSegment FromKvmSegment(const KvmSegment& k) {
  UisrSegment s;
  s.base = k.base;
  s.limit = k.limit;
  s.selector = k.selector;
  s.type = k.type;
  s.present = k.present;
  s.dpl = k.dpl;
  s.db = k.db;
  s.s = k.s;
  s.l = k.l;
  s.g = k.g;
  s.avl = k.avl;
  s.unusable = k.unusable;
  return s;
}

bool IsMtrrVariableMsr(uint32_t index) {
  return index >= kMsrMtrrPhysBase0 && index < kMsrMtrrPhysBase0 + 2 * kMtrrVariableCount;
}

bool IsMtrrFixedMsr(uint32_t index) {
  return index == kMsrMtrrFix64k || index == kMsrMtrrFix16k0 || index == kMsrMtrrFix16k1 ||
         (index >= kMsrMtrrFix4k0 && index <= kMsrMtrrFix4k0 + 7);
}

// Maps an MTRR fixed-range MSR index to its slot in UisrMtrr::fixed.
size_t MtrrFixedSlot(uint32_t index) {
  if (index == kMsrMtrrFix64k) {
    return 0;
  }
  if (index == kMsrMtrrFix16k0) {
    return 1;
  }
  if (index == kMsrMtrrFix16k1) {
    return 2;
  }
  return 3 + (index - kMsrMtrrFix4k0);
}

uint32_t MtrrFixedIndex(size_t slot) {
  switch (slot) {
    case 0:
      return kMsrMtrrFix64k;
    case 1:
      return kMsrMtrrFix16k0;
    case 2:
      return kMsrMtrrFix16k1;
    default:
      return kMsrMtrrFix4k0 + static_cast<uint32_t>(slot - 3);
  }
}

}  // namespace

Result<UisrVcpu> KvmVcpuToUisr(const KvmVcpuState& state) {
  UisrVcpu v;
  v.id = state.id;
  v.online = state.online != 0;

  const KvmRegs& r = state.regs;
  v.regs.gpr = {r.rax, r.rbx, r.rcx, r.rdx, r.rsi, r.rdi, r.rsp, r.rbp,
                r.r8,  r.r9,  r.r10, r.r11, r.r12, r.r13, r.r14, r.r15};
  v.regs.rip = r.rip;
  v.regs.rflags = r.rflags;

  const KvmSregs& s = state.sregs;
  v.sregs.cs = FromKvmSegment(s.cs);
  v.sregs.ds = FromKvmSegment(s.ds);
  v.sregs.es = FromKvmSegment(s.es);
  v.sregs.fs = FromKvmSegment(s.fs);
  v.sregs.gs = FromKvmSegment(s.gs);
  v.sregs.ss = FromKvmSegment(s.ss);
  v.sregs.tr = FromKvmSegment(s.tr);
  v.sregs.ldt = FromKvmSegment(s.ldt);
  v.sregs.gdt = {s.gdt.base, s.gdt.limit};
  v.sregs.idt = {s.idt.base, s.idt.limit};
  v.sregs.cr0 = s.cr0;
  v.sregs.cr2 = s.cr2;
  v.sregs.cr3 = s.cr3;
  v.sregs.cr4 = s.cr4;
  v.sregs.cr8 = s.cr8;
  v.sregs.efer = s.efer;
  v.sregs.apic_base = s.apic_base;
  v.lapic.apic_base_msr = s.apic_base;

  // Lift structural MSRs out of the generic list.
  for (const KvmMsrEntry& m : state.msrs) {
    if (m.index == kMsrApicBase) {
      if (m.data != s.apic_base) {
        return DataLossError("kvm: APIC base MSR disagrees with sregs.apic_base");
      }
      v.lapic.apic_base_msr = m.data;
    } else if (m.index == kMsrTscDeadline) {
      v.lapic.tsc_deadline = m.data;
    } else if (m.index == kMsrPat) {
      v.mtrr.pat = m.data;
    } else if (m.index == kMsrMtrrCap) {
      v.mtrr.cap = m.data;
    } else if (m.index == kMsrMtrrDefType) {
      v.mtrr.def_type = m.data;
    } else if (IsMtrrFixedMsr(m.index)) {
      v.mtrr.fixed[MtrrFixedSlot(m.index)] = m.data;
    } else if (IsMtrrVariableMsr(m.index)) {
      const uint32_t off = m.index - kMsrMtrrPhysBase0;
      if (off % 2 == 0) {
        v.mtrr.var_base[off / 2] = m.data;
      } else {
        v.mtrr.var_mask[off / 2] = m.data;
      }
    } else {
      v.msrs.push_back(UisrMsr{m.index, m.data});
    }
  }
  std::sort(v.msrs.begin(), v.msrs.end(),
            [](const UisrMsr& a, const UisrMsr& b) { return a.index < b.index; });

  v.fpu.fpr = state.fpu.fpr;
  v.fpu.fcw = state.fpu.fcw;
  v.fpu.fsw = state.fpu.fsw;
  v.fpu.ftwx = state.fpu.ftwx;
  v.fpu.last_opcode = state.fpu.last_opcode;
  v.fpu.last_ip = state.fpu.last_ip;
  v.fpu.last_dp = state.fpu.last_dp;
  v.fpu.xmm = state.fpu.xmm;
  v.fpu.mxcsr = state.fpu.mxcsr;

  v.lapic.regs = state.lapic.regs;

  v.xsave.xcr0 = state.xcrs.xcr0;
  v.xsave.area = state.xsave.data;
  return v;
}

Result<KvmVcpuState> KvmVcpuFromUisr(const UisrVcpu& vcpu) {
  KvmVcpuState k;
  k.id = vcpu.id;
  k.online = vcpu.online ? 1 : 0;

  const auto& g = vcpu.regs.gpr;
  k.regs = {g[0], g[1], g[2],  g[3],  g[4],  g[5],  g[6],  g[7],
            g[8], g[9], g[10], g[11], g[12], g[13], g[14], g[15],
            vcpu.regs.rip, vcpu.regs.rflags};

  k.sregs.cs = ToKvmSegment(vcpu.sregs.cs);
  k.sregs.ds = ToKvmSegment(vcpu.sregs.ds);
  k.sregs.es = ToKvmSegment(vcpu.sregs.es);
  k.sregs.fs = ToKvmSegment(vcpu.sregs.fs);
  k.sregs.gs = ToKvmSegment(vcpu.sregs.gs);
  k.sregs.ss = ToKvmSegment(vcpu.sregs.ss);
  k.sregs.tr = ToKvmSegment(vcpu.sregs.tr);
  k.sregs.ldt = ToKvmSegment(vcpu.sregs.ldt);
  k.sregs.gdt = {vcpu.sregs.gdt.base, vcpu.sregs.gdt.limit};
  k.sregs.idt = {vcpu.sregs.idt.base, vcpu.sregs.idt.limit};
  k.sregs.cr0 = vcpu.sregs.cr0;
  k.sregs.cr2 = vcpu.sregs.cr2;
  k.sregs.cr3 = vcpu.sregs.cr3;
  k.sregs.cr4 = vcpu.sregs.cr4;
  k.sregs.cr8 = vcpu.sregs.cr8;
  k.sregs.efer = vcpu.sregs.efer;
  k.sregs.apic_base = vcpu.lapic.apic_base_msr;

  // Assemble the MSR list: generic MSRs plus the structural ones.
  std::vector<KvmMsrEntry> msrs;
  msrs.reserve(vcpu.msrs.size() + 8 + kMtrrFixedCount + 2 * kMtrrVariableCount);
  for (const UisrMsr& m : vcpu.msrs) {
    msrs.push_back(KvmMsrEntry{m.index, m.value});
  }
  msrs.push_back({kMsrApicBase, vcpu.lapic.apic_base_msr});
  msrs.push_back({kMsrTscDeadline, vcpu.lapic.tsc_deadline});
  msrs.push_back({kMsrPat, vcpu.mtrr.pat});
  msrs.push_back({kMsrMtrrCap, vcpu.mtrr.cap});
  msrs.push_back({kMsrMtrrDefType, vcpu.mtrr.def_type});
  for (size_t i = 0; i < kMtrrFixedCount; ++i) {
    msrs.push_back({MtrrFixedIndex(i), vcpu.mtrr.fixed[i]});
  }
  for (size_t i = 0; i < kMtrrVariableCount; ++i) {
    msrs.push_back({kMsrMtrrPhysBase0 + static_cast<uint32_t>(2 * i), vcpu.mtrr.var_base[i]});
    msrs.push_back({kMsrMtrrPhysBase0 + static_cast<uint32_t>(2 * i + 1), vcpu.mtrr.var_mask[i]});
  }
  std::sort(msrs.begin(), msrs.end(),
            [](const KvmMsrEntry& a, const KvmMsrEntry& b) { return a.index < b.index; });
  k.msrs = std::move(msrs);

  k.fpu.fpr = vcpu.fpu.fpr;
  k.fpu.fcw = vcpu.fpu.fcw;
  k.fpu.fsw = vcpu.fpu.fsw;
  k.fpu.ftwx = vcpu.fpu.ftwx;
  k.fpu.last_opcode = vcpu.fpu.last_opcode;
  k.fpu.last_ip = vcpu.fpu.last_ip;
  k.fpu.last_dp = vcpu.fpu.last_dp;
  k.fpu.xmm = vcpu.fpu.xmm;
  k.fpu.mxcsr = vcpu.fpu.mxcsr;

  k.lapic.regs = vcpu.lapic.regs;
  // KVM keeps the TPR in both the LAPIC page and CR8; synchronize from CR8.
  k.lapic.regs[0x80] = static_cast<uint8_t>((vcpu.sregs.cr8 & 0xF) << 4);

  k.xcrs.xcr0 = vcpu.xsave.xcr0;
  k.xsave.data = vcpu.xsave.area;
  return k;
}

Result<void> KvmPlatformToUisr(const std::vector<KvmVcpuState>& vcpus,
                               const KvmIoapicState& ioapic, const KvmPitState2& pit,
                               UisrVm& out) {
  out.vcpus.clear();
  for (const KvmVcpuState& kv : vcpus) {
    HYPERTP_ASSIGN_OR_RETURN(UisrVcpu v, KvmVcpuToUisr(kv));
    out.vcpus.push_back(std::move(v));
  }

  out.ioapic.id = ioapic.id;
  out.ioapic.base_address = ioapic.base_address;
  out.ioapic.num_pins = kKvmIoapicPins;
  out.ioapic.redirection.fill(0);
  std::copy(ioapic.redirtbl.begin(), ioapic.redirtbl.end(), out.ioapic.redirection.begin());

  for (size_t i = 0; i < 3; ++i) {
    const KvmPitChannelState& kc = pit.channels[i];
    UisrPitChannel& uc = out.pit.channels[i];
    uc.count = kc.count;
    uc.latched_count = kc.latched_count;
    uc.count_latched = kc.count_latched;
    uc.status_latched = kc.status_latched;
    uc.status = kc.status;
    uc.read_state = kc.read_state;
    uc.write_state = kc.write_state;
    uc.write_latch = kc.write_latch;
    uc.rw_mode = kc.rw_mode;
    uc.mode = kc.mode;
    uc.bcd = kc.bcd;
    uc.gate = kc.gate;
    uc.count_load_time = static_cast<uint64_t>(kc.count_load_time);
  }
  // PIT2's flags word has no UISR equivalent; it is host bookkeeping
  // (KVM_PIT_FLAGS_HPET_LEGACY) and is re-derived on restore.
  out.pit.speaker_data_on = 0;
  return OkResult();
}

Result<KvmPlatform> KvmPlatformFromUisr(const UisrVm& vm, FixupLog* log,
                                        bool remap_high_pins) {
  KvmPlatform platform;
  for (const UisrVcpu& v : vm.vcpus) {
    HYPERTP_ASSIGN_OR_RETURN(KvmVcpuState kv, KvmVcpuFromUisr(v));
    platform.vcpus.push_back(std::move(kv));
  }

  platform.ioapic.id = vm.ioapic.id;
  platform.ioapic.base_address = vm.ioapic.base_address;
  const uint32_t copied = std::min(vm.ioapic.num_pins, kKvmIoapicPins);
  for (uint32_t i = 0; i < copied; ++i) {
    platform.ioapic.redirtbl[i] = vm.ioapic.redirection[i];
  }
  // Pins beyond KVM's IOAPIC width: remap to free low pins (future-work
  // extension) or disconnect (paper §4.2.1 default).
  for (uint32_t i = kKvmIoapicPins; i < vm.ioapic.num_pins; ++i) {
    if (vm.ioapic.redirection[i] == 0) {
      continue;
    }
    char buf[96];
    if (remap_high_pins) {
      uint32_t free_pin = kKvmIoapicPins;
      // Pins 0-15 carry legacy ISA identity mappings; renegotiate into 16-23.
      for (uint32_t candidate = 16; candidate < kKvmIoapicPins; ++candidate) {
        if (platform.ioapic.redirtbl[candidate] == 0) {
          free_pin = candidate;
          break;
        }
      }
      if (free_pin < kKvmIoapicPins) {
        platform.ioapic.redirtbl[free_pin] = vm.ioapic.redirection[i];
        if (log != nullptr) {
          std::snprintf(buf, sizeof(buf),
                        "IOAPIC pin %u remapped to pin %u; guest notified of GSI change", i,
                        free_pin);
          log->push_back({vm.vm_uid, "ioapic", buf});
        }
        continue;
      }
      // No free pin: fall through to disconnection.
    }
    if (log != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "IOAPIC pin %u active on source; disconnected (KVM has %u pins)", i,
                    kKvmIoapicPins);
      log->push_back({vm.vm_uid, "ioapic", buf});
    }
  }

  for (size_t i = 0; i < 3; ++i) {
    const UisrPitChannel& uc = vm.pit.channels[i];
    KvmPitChannelState& kc = platform.pit.channels[i];
    kc.count = uc.count;
    kc.latched_count = uc.latched_count;
    kc.count_latched = uc.count_latched;
    kc.status_latched = uc.status_latched;
    kc.status = uc.status;
    kc.read_state = uc.read_state;
    kc.write_state = uc.write_state;
    kc.write_latch = uc.write_latch;
    kc.rw_mode = uc.rw_mode;
    kc.mode = uc.mode;
    kc.bcd = uc.bcd;
    kc.gate = uc.gate;
    kc.count_load_time = static_cast<int64_t>(uc.count_load_time);
  }
  platform.pit.flags = 0;
  return platform;
}

}  // namespace hypertp
