// KVMish: the simulated type-II hypervisor (Linux host kernel + kvm module +
// one kvmtool VMM process per VM).
//
// The host Linux owns a slice of RAM as HV State. Each VM is a KvmVm record:
// kernel-side state in KVM's UAPI-shaped formats plus a kvmtool process that
// owns the device models and the guest memory mapping (memslots backed by
// anonymous huge-page allocations — a deliberately different allocation
// policy from XenVisor's chunked/interleaved one).

#ifndef HYPERTP_SRC_KVM_KVM_HOST_H_
#define HYPERTP_SRC_KVM_KVM_HOST_H_

#include <map>
#include <string>
#include <vector>

#include "src/hv/guest_memory.h"
#include "src/hv/hypervisor.h"
#include "src/kvm/cfs_scheduler.h"
#include "src/kvm/kvm_formats.h"

namespace hypertp {

// The user-space VMM attached to one VM.
struct KvmtoolProcess {
  uint32_t pid = 0;
  std::vector<UisrDeviceState> devices;
  uint64_t working_frames = 0;  // kVmm-owned frames.
};

struct KvmVm {
  int vm_fd = 0;  // KVM-local identity; changes across save/restore.
  uint64_t uid = 0;
  std::string name;
  VmRunState run_state = VmRunState::kRunning;
  uint64_t memory_bytes = 0;
  bool huge_pages = false;

  GuestAddressSpace memslots;
  std::vector<KvmVcpuState> vcpus;
  KvmIoapicState ioapic;  // KVM_IRQCHIP state, 24 pins.
  KvmPitState2 pit;
  KvmtoolProcess vmm;
  uint64_t vm_state_frames = 0;  // NPT/EPT + kernel VM structures.

  // Monotonic platform-state generation (Hypervisor::StateGeneration): bumps
  // on guest-visible state changes, never on pause/resume/save.
  uint64_t state_generation = 1;
};

class KvmHost : public Hypervisor {
 public:
  explicit KvmHost(Machine& machine);
  ~KvmHost() override;

  KvmHost(const KvmHost&) = delete;
  KvmHost& operator=(const KvmHost&) = delete;

  std::string_view name() const override { return "kvmish-5.3+kvmtool"; }
  HypervisorKind kind() const override { return HypervisorKind::kKvm; }
  HypervisorType type() const override { return HypervisorType::kType2; }
  Machine& machine() override { return *machine_; }
  const Machine& machine() const override { return *machine_; }

  Result<VmId> CreateVm(const VmConfig& config) override;
  Result<void> DestroyVm(VmId id) override;
  Result<void> PauseVm(VmId id) override;
  Result<void> ResumeVm(VmId id) override;
  Result<VmInfo> GetVmInfo(VmId id) const override;
  std::vector<VmId> ListVms() const override;

  Result<std::vector<GuestMapping>> GuestMemoryMap(VmId id) const override;
  Result<uint64_t> ReadGuestPage(VmId id, Gfn gfn) const override;
  Result<void> WriteGuestPage(VmId id, Gfn gfn, uint64_t content) override;

  Result<void> AdvanceGuestClocks(VmId id, SimDuration delta) override;

  Result<uint64_t> StateGeneration(VmId id) const override;
  Result<void> InjectGuestEvent(VmId id, GuestEventKind kind) override;

  Result<void> EnableDirtyLogging(VmId id) override;
  Result<std::vector<Gfn>> FetchAndClearDirtyLog(VmId id) override;
  Result<void> DisableDirtyLogging(VmId id) override;

  Result<UisrVm> SaveVmToUisr(VmId id, FixupLog* log) override;
  Result<VmId> RestoreVmFromUisr(const UisrVm& uisr, const GuestMemoryBinding& binding,
                                 FixupLog* log) override;

  uint64_t HypervisorFrames() const override;

  Result<std::vector<std::pair<Gfn, uint64_t>>> DumpGuestContent(VmId id) const override;

  Result<void> PrepareVmForTransplant(VmId id) override;

  void DetachForMicroReboot() override;

  MigrationTraits migration_traits() const override {
    // kvmtool's restore path is lightweight and receives concurrently —
    // the source of MigrationTP's 4.96 ms downtime (Table 4).
    return MigrationTraits{8, MillisF(2.5), MillisF(1.2)};
  }

  // --- KVM-specific introspection -----------------------------------------
  Result<const KvmVm*> FindVm(VmId id) const;
  Result<VmId> FindVmByUid(uint64_t uid) const;
  const CfsScheduler& scheduler() const { return scheduler_; }
  void RebuildScheduler();

 private:
  Result<KvmVm*> MutableVm(VmId id);
  Result<void> AllocateGuestMemory(KvmVm& vm);
  Result<void> AdoptGuestMemory(KvmVm& vm, const std::vector<PramPageEntry>& entries);
  Result<void> AllocateVmStateFrames(KvmVm& vm);
  void FreeVmFrames(const KvmVm& vm);

  Machine* machine_;
  CfsScheduler scheduler_;
  std::map<int, KvmVm> vms_;  // Keyed by vm_fd.
  int next_fd_ = 3;           // 0/1/2 are stdio, as tradition demands.
  uint32_t next_pid_ = 1000;
  uint64_t hv_frames_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_KVM_KVM_HOST_H_
