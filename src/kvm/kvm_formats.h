// KVMish's native VM state representation.
//
// These structs mirror the shape of the Linux KVM UAPI (kvm_regs, kvm_sregs,
// kvm_msrs, kvm_fpu, kvm_lapic_state, kvm_irqchip, kvm_pit_state2): segment
// attributes as separate byte fields, MSRs as a generic {index, data} list
// (including the APIC base, PAT and all MTRR registers — Table 2's
// "Xen LAPIC/MTRR map to KVM MSRS"), the FPU unpacked, XCRs separate from the
// XSAVE area, and a 24-pin IOAPIC.

#ifndef HYPERTP_SRC_KVM_KVM_FORMATS_H_
#define HYPERTP_SRC_KVM_KVM_FORMATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/uisr/records.h"

namespace hypertp {

// kvm_segment: attributes as discrete fields (no packed word).
struct KvmSegment {
  uint64_t base = 0;
  uint32_t limit = 0;
  uint16_t selector = 0;
  uint8_t type = 0;
  uint8_t present = 0, dpl = 0, db = 0, s = 0, l = 0, g = 0, avl = 0;
  uint8_t unusable = 0;

  bool operator==(const KvmSegment&) const = default;
};

struct KvmDtable {
  uint64_t base = 0;
  uint16_t limit = 0;

  bool operator==(const KvmDtable&) const = default;
};

// kvm_regs: GPRs in KVM's member order.
struct KvmRegs {
  uint64_t rax = 0, rbx = 0, rcx = 0, rdx = 0;
  uint64_t rsi = 0, rdi = 0, rsp = 0, rbp = 0;
  uint64_t r8 = 0, r9 = 0, r10 = 0, r11 = 0, r12 = 0, r13 = 0, r14 = 0, r15 = 0;
  uint64_t rip = 0, rflags = 0;

  bool operator==(const KvmRegs&) const = default;
};

// kvm_sregs: KVM *does* carry CR8 and the APIC base here (unlike Xen).
struct KvmSregs {
  KvmSegment cs, ds, es, fs, gs, ss, tr, ldt;
  KvmDtable gdt, idt;
  uint64_t cr0 = 0, cr2 = 0, cr3 = 0, cr4 = 0, cr8 = 0;
  uint64_t efer = 0;
  uint64_t apic_base = 0;

  bool operator==(const KvmSregs&) const = default;
};

struct KvmMsrEntry {
  uint32_t index = 0;
  uint64_t data = 0;

  bool operator==(const KvmMsrEntry&) const = default;
};

// kvm_fpu: unpacked FXSAVE contents.
struct KvmFpu {
  std::array<std::array<uint8_t, 16>, 8> fpr{};
  uint16_t fcw = 0, fsw = 0;
  uint8_t ftwx = 0;
  uint16_t last_opcode = 0;
  uint64_t last_ip = 0, last_dp = 0;
  std::array<std::array<uint8_t, 16>, 16> xmm{};
  uint32_t mxcsr = 0;

  bool operator==(const KvmFpu&) const = default;
};

// kvm_lapic_state: just the register page; the base MSR is in the MSR list.
struct KvmLapicState {
  std::array<uint8_t, kLapicRegsSize> regs{};

  bool operator==(const KvmLapicState&) const = default;
};

struct KvmXcrs {
  uint64_t xcr0 = 0;

  bool operator==(const KvmXcrs&) const = default;
};

struct KvmXsaveData {
  std::vector<uint8_t> data;

  bool operator==(const KvmXsaveData&) const = default;
};

inline constexpr uint32_t kKvmIoapicPins = 24;
// kvm_irqchip KVM_IRQCHIP_IOAPIC payload.
struct KvmIoapicState {
  uint32_t id = 0;
  uint64_t base_address = 0xFEC00000;
  std::array<uint64_t, kKvmIoapicPins> redirtbl{};

  bool operator==(const KvmIoapicState&) const = default;
};

struct KvmPitChannelState {
  uint32_t count = 0;
  uint16_t latched_count = 0;
  uint8_t count_latched = 0, status_latched = 0, status = 0;
  uint8_t read_state = 0, write_state = 0, write_latch = 0;
  uint8_t rw_mode = 0, mode = 0, bcd = 0, gate = 0;
  int64_t count_load_time = 0;

  bool operator==(const KvmPitChannelState&) const = default;
};

// kvm_pit_state2 ("PIT2" in Table 2): channels plus a flags word.
struct KvmPitState2 {
  std::array<KvmPitChannelState, 3> channels{};
  uint32_t flags = 0;

  bool operator==(const KvmPitState2&) const = default;
};

// One vCPU's state as kvmtool would assemble it from the KVM ioctls
// (KVM_GET_REGS/SREGS/MSRS/FPU/LAPIC/XCRS/XSAVE).
struct KvmVcpuState {
  uint32_t id = 0;
  uint8_t online = 1;
  KvmRegs regs;
  KvmSregs sregs;
  std::vector<KvmMsrEntry> msrs;  // Sorted by index; includes MTRR/PAT/APIC.
  KvmFpu fpu;
  KvmLapicState lapic;
  KvmXcrs xcrs;
  KvmXsaveData xsave;

  bool operator==(const KvmVcpuState&) const = default;
};

// MSR indices KVM keeps in the generic list but UISR stores structurally.
inline constexpr uint32_t kMsrApicBase = 0x0000001B;
inline constexpr uint32_t kMsrMtrrCap = 0x000000FE;
inline constexpr uint32_t kMsrMtrrPhysBase0 = 0x00000200;  // ..0x20F base/mask pairs.
inline constexpr uint32_t kMsrMtrrFix64k = 0x00000250;
inline constexpr uint32_t kMsrMtrrFix16k0 = 0x00000258;
inline constexpr uint32_t kMsrMtrrFix16k1 = 0x00000259;
inline constexpr uint32_t kMsrMtrrFix4k0 = 0x00000268;     // ..0x26F.
inline constexpr uint32_t kMsrPat = 0x00000277;
inline constexpr uint32_t kMsrMtrrDefType = 0x000002FF;
inline constexpr uint32_t kMsrTscDeadline = 0x000006E0;

}  // namespace hypertp

#endif  // HYPERTP_SRC_KVM_KVM_FORMATS_H_
