// Span-based tracer for the transplant stack.
//
// A Span is a named interval of *simulated* time with an optional parent and
// key-value attributes. Producers (InPlaceTransplant, MigrationEngine,
// KexecController, FleetController, the operational scenario) attach spans to
// a Tracer borrowed through their options structs; a null tracer (the
// default everywhere) records nothing and costs one pointer compare per
// call site, so instrumented and uninstrumented runs are byte-identical.
//
// Spans carry a `track` name (a swimlane: "vm-7", "host-12", "network").
// Export targets:
//  - ToChromeTraceJson(): Chrome trace-event JSON ("X"/"i" phases, one tid
//    per track) loadable in about:tracing or https://ui.perfetto.dev;
//  - ToStatsJson(): compact per-name duration summary via JsonWriter.

#ifndef HYPERTP_SRC_OBS_TRACE_H_
#define HYPERTP_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace hypertp {

// Identifies a span within one Tracer; 0 means "no span" (used for both
// "no parent" and "tracing disabled", so call sites never branch on it).
using SpanId = uint64_t;

struct SpanAttribute {
  enum class Kind : uint8_t { kString, kDouble, kInt, kBool };
  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  double double_value = 0.0;
  int64_t int_value = 0;
  bool bool_value = false;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root.
  std::string name;
  std::string track;  // Swimlane; "" = the main transplant timeline.
  SimTime start = 0;
  SimTime end = 0;       // == start while the span is still open.
  bool open = false;     // BeginSpan'd but not yet EndSpan'd.
  bool instant = false;  // Zero-width marker event.
  std::vector<SpanAttribute> attributes;

  SimDuration duration() const { return end - start; }
};

class Tracer {
 public:
  Tracer() = default;

  // Records a complete span in one call — the common case for producers
  // that compute phase durations rather than observe them.
  SpanId AddSpan(std::string_view name, SimTime start, SimDuration duration, SpanId parent = 0,
                 std::string_view track = {});

  // Open/close pair for event-driven producers (the fleet controller closes
  // a host's span from a later executor event). Ending an unknown or
  // already-closed span is a no-op so abort paths need no bookkeeping.
  SpanId BeginSpan(std::string_view name, SimTime start, SpanId parent = 0,
                   std::string_view track = {});
  void EndSpan(SpanId id, SimTime end);

  // Zero-width marker ("i" phase in the Chrome export).
  SpanId AddInstant(std::string_view name, SimTime at, std::string_view track = {});

  // Attribute setters are no-ops for id 0 (disabled tracing / unknown span).
  void SetAttribute(SpanId id, std::string_view key, std::string_view value);
  // Literals must not decay to the bool overload.
  void SetAttribute(SpanId id, std::string_view key, const char* value) {
    SetAttribute(id, key, std::string_view(value));
  }
  void SetAttribute(SpanId id, std::string_view key, double value);
  void SetAttribute(SpanId id, std::string_view key, int64_t value);
  void SetAttribute(SpanId id, std::string_view key, bool value);

  const std::vector<Span>& spans() const { return spans_; }
  size_t open_span_count() const;
  // First span with `name`, or nullptr. Tests and report assembly only.
  const Span* FindSpan(std::string_view name) const;
  std::vector<const Span*> SpansNamed(std::string_view name) const;
  std::vector<const Span*> ChildrenOf(SpanId parent) const;

  // Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  // Timestamps are microseconds (fractional); one pid, one tid per track,
  // tids numbered in first-use order with thread_name metadata records.
  std::string ToChromeTraceJson() const;

  // Compact summary: spans aggregated by name (count, total duration).
  std::string ToStatsJson() const;

 private:
  Span* Find(SpanId id);

  std::vector<Span> spans_;
  SpanId next_id_ = 1;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_OBS_TRACE_H_
