#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/base/json.h"

namespace hypertp {

void Histogram::Observe(double x) {
  if (!std::isfinite(x)) {
    return;  // NaN/Inf would poison sum and fit no bucket.
  }
  x = std::max(x, 0.0);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  int bucket = 0;
  if (x > 1.0) {
    // Smallest i with x <= 2^i; ilogb is exact for powers of two.
    bucket = std::ilogb(x);
    if (std::ldexp(1.0, bucket) < x) {
      ++bucket;
    }
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
}

double Histogram::BucketBound(int i) { return std::ldexp(1.0, i); }

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket [lower, upper].
      const double lower = i == 0 ? 0.0 : BucketBound(i - 1);
      const double upper = BucketBound(i);
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return std::clamp(lower + (upper - lower) * within, min(), max());
    }
    seen = next;
  }
  return max();
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("metrics");
  j.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    j.Key(name).Number(counter->value());
  }
  j.EndObject();
  j.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    j.Key(name).Number(gauge->value());
  }
  j.EndObject();
  j.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    j.Key(name).BeginObject();
    j.Key("count").Number(histogram->count());
    j.Key("sum").Number(histogram->sum());
    j.Key("min").Number(histogram->min());
    j.Key("max").Number(histogram->max());
    j.Key("p50").Number(histogram->Quantile(0.5));
    j.Key("p99").Number(histogram->Quantile(0.99));
    j.Key("buckets").BeginArray();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram->bucket(i) == 0) {
        continue;
      }
      j.BeginArray();
      j.Number(Histogram::BucketBound(i));
      j.Number(histogram->bucket(i));
      j.EndArray();
    }
    j.EndArray();
    j.EndObject();
  }
  j.EndObject();
  j.EndObject();
  return j.Take();
}

}  // namespace hypertp
