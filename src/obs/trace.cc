#include "src/obs/trace.h"

#include <algorithm>
#include <map>

#include "src/base/json.h"

namespace hypertp {

SpanId Tracer::AddSpan(std::string_view name, SimTime start, SimDuration duration, SpanId parent,
                       std::string_view track) {
  SpanId id = BeginSpan(name, start, parent, track);
  EndSpan(id, start + std::max<SimDuration>(duration, 0));
  return id;
}

SpanId Tracer::BeginSpan(std::string_view name, SimTime start, SpanId parent,
                        std::string_view track) {
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::string(name);
  span.track = std::string(track);
  span.start = start;
  span.end = start;
  span.open = true;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id, SimTime end) {
  Span* span = Find(id);
  if (span == nullptr || !span->open) {
    return;
  }
  span->open = false;
  span->end = std::max(end, span->start);
}

SpanId Tracer::AddInstant(std::string_view name, SimTime at, std::string_view track) {
  SpanId id = AddSpan(name, at, 0, 0, track);
  spans_.back().instant = true;
  return id;
}

void Tracer::SetAttribute(SpanId id, std::string_view key, std::string_view value) {
  if (Span* span = Find(id)) {
    span->attributes.push_back(SpanAttribute{std::string(key), SpanAttribute::Kind::kString,
                                             std::string(value), 0.0, 0, false});
  }
}

void Tracer::SetAttribute(SpanId id, std::string_view key, double value) {
  if (Span* span = Find(id)) {
    span->attributes.push_back(
        SpanAttribute{std::string(key), SpanAttribute::Kind::kDouble, "", value, 0, false});
  }
}

void Tracer::SetAttribute(SpanId id, std::string_view key, int64_t value) {
  if (Span* span = Find(id)) {
    span->attributes.push_back(
        SpanAttribute{std::string(key), SpanAttribute::Kind::kInt, "", 0.0, value, false});
  }
}

void Tracer::SetAttribute(SpanId id, std::string_view key, bool value) {
  if (Span* span = Find(id)) {
    span->attributes.push_back(
        SpanAttribute{std::string(key), SpanAttribute::Kind::kBool, "", 0.0, 0, value});
  }
}

Span* Tracer::Find(SpanId id) {
  if (id == 0) {
    return nullptr;
  }
  // Ids are issued densely from 1 and spans are never removed, so the id
  // doubles as an index.
  const size_t index = static_cast<size_t>(id - 1);
  return index < spans_.size() ? &spans_[index] : nullptr;
}

size_t Tracer::open_span_count() const {
  size_t n = 0;
  for (const Span& span : spans_) {
    n += span.open ? 1 : 0;
  }
  return n;
}

const Span* Tracer::FindSpan(std::string_view name) const {
  for (const Span& span : spans_) {
    if (span.name == name) {
      return &span;
    }
  }
  return nullptr;
}

std::vector<const Span*> Tracer::SpansNamed(std::string_view name) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.name == name) {
      out.push_back(&span);
    }
  }
  return out;
}

std::vector<const Span*> Tracer::ChildrenOf(SpanId parent) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.parent == parent && span.id != parent) {
      out.push_back(&span);
    }
  }
  return out;
}

namespace {

void WriteAttributes(JsonWriter& j, const Span& span) {
  j.Key("args").BeginObject();
  if (span.parent != 0) {
    j.Key("parent").Number(static_cast<uint64_t>(span.parent));
  }
  for (const SpanAttribute& attr : span.attributes) {
    j.Key(attr.key);
    switch (attr.kind) {
      case SpanAttribute::Kind::kString:
        j.String(attr.string_value);
        break;
      case SpanAttribute::Kind::kDouble:
        j.Number(attr.double_value);
        break;
      case SpanAttribute::Kind::kInt:
        j.Number(attr.int_value);
        break;
      case SpanAttribute::Kind::kBool:
        j.Bool(attr.bool_value);
        break;
    }
  }
  j.EndObject();
}

double ToTraceMicros(SimTime t) { return static_cast<double>(t) / 1e3; }

}  // namespace

std::string Tracer::ToChromeTraceJson() const {
  // Assign one tid per track in first-use order; the default track is tid 0.
  std::map<std::string, int> tids;
  tids[""] = 0;
  for (const Span& span : spans_) {
    tids.emplace(span.track, static_cast<int>(tids.size()));
  }

  JsonWriter j;
  j.BeginObject();
  j.Key("displayTimeUnit").String("ms");
  j.Key("traceEvents").BeginArray();
  for (const auto& [track, tid] : tids) {
    j.BeginObject();
    j.Key("ph").String("M");
    j.Key("name").String("thread_name");
    j.Key("pid").Number(int64_t{0});
    j.Key("tid").Number(static_cast<int64_t>(tid));
    j.Key("args").BeginObject();
    j.Key("name").String(track.empty() ? "transplant" : track);
    j.EndObject();
    j.EndObject();
  }
  for (const Span& span : spans_) {
    j.BeginObject();
    j.Key("ph").String(span.instant ? "i" : "X");
    j.Key("name").String(span.name);
    j.Key("pid").Number(int64_t{0});
    j.Key("tid").Number(static_cast<int64_t>(tids.at(span.track)));
    j.Key("ts").Number(ToTraceMicros(span.start));
    if (!span.instant) {
      // Open spans (abort paths) export zero-width rather than vanish.
      j.Key("dur").Number(ToTraceMicros(span.end - span.start));
    } else {
      j.Key("s").String("t");  // Instant scope: thread.
    }
    WriteAttributes(j, span);
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

std::string Tracer::ToStatsJson() const {
  struct NameStats {
    uint64_t count = 0;
    SimDuration total = 0;
  };
  std::map<std::string, NameStats> by_name;
  for (const Span& span : spans_) {
    NameStats& stats = by_name[span.name];
    ++stats.count;
    stats.total += span.duration();
  }
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("span_stats");
  j.Key("spans").Number(static_cast<uint64_t>(spans_.size()));
  j.Key("by_name").BeginObject();
  for (const auto& [name, stats] : by_name) {
    j.Key(name).BeginObject();
    j.Key("count").Number(stats.count);
    j.Key("total_ms").Number(ToMillis(stats.total));
    j.EndObject();
  }
  j.EndObject();
  j.EndObject();
  return j.Take();
}

}  // namespace hypertp
