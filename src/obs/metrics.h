// Metrics registry: named counters, gauges and log-bucketed histograms,
// exported as one compact JSON document through JsonWriter.
//
// Instruments are owned by the registry and handed out as stable references;
// producers cache the reference once and pay an increment per event, never a
// map lookup. Like the Tracer, the registry is borrowed through options
// structs and null by default — an uninstrumented run touches none of this.

#ifndef HYPERTP_SRC_OBS_METRICS_H_
#define HYPERTP_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace hypertp {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Histogram over non-negative values with fixed log-scale (power-of-two)
// buckets: bucket i counts observations x with 2^(i-1) < x <= 2^i (bucket 0
// takes everything <= 1). The bucket layout is identical for every
// histogram, so exported documents from different runs line up bucket-for-
// bucket — the property a regression baseline needs.
class Histogram {
 public:
  static constexpr int kBuckets = 64;  // Upper bounds 2^0 .. 2^63.

  void Observe(double x);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  uint64_t bucket(int i) const { return buckets_[i]; }
  // Inclusive upper bound of bucket i (2^i).
  static double BucketBound(int i);
  // Linear-interpolated quantile estimate from the bucket counts, q in [0,1].
  double Quantile(double q) const;

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Create-or-get by name. References stay valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // {"kind":"metrics","counters":{...},"gauges":{...},"histograms":{...}}.
  // Deterministic: names sort lexicographically, only occupied buckets are
  // emitted (as [upper_bound, count] pairs).
  std::string ToJson() const;

 private:
  // Instruments live behind unique_ptr so handed-out references survive
  // rehashing of the maps.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_OBS_METRICS_H_
