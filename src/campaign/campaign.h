// Sharded campaign control plane: one fleet-wide transplant campaign over
// 100k+ hosts, executed as N per-shard FleetControllers coordinated by a
// top-level planner.
//
// The single event-loop FleetController (src/fleet/) is the right abstraction
// for one datacenter-scale rollout; a planet-scale campaign is a different
// job: partition the fleet into shards that never split a rack (cross-shard
// anti-affinity by construction), admit shards under per-datacenter WAN
// bandwidth slots and a global concurrency cap, advance every admitted shard
// in deterministic lockstep epochs, and govern the whole campaign against
// fleet-wide SLOs — throttling wave admission when the rollback storm or the
// concurrently-unavailable fraction crosses its budget, aborting outright
// when the hard budgets do. Shard events feed a live ExposureStream
// (src/vulndb/exposure_stream.h), so the campaign emits the "fraction of the
// fleet still vulnerable" curve while it runs instead of after.
//
// Determinism contract: per-shard RNG streams fork from the campaign seed in
// shard-id order; shards share no mutable state while an epoch advances (so
// epochs may run on real threads — wall-clock only); governor decisions read
// only barrier-committed state; barrier merges iterate shards in id order and
// sort events by (time, shard). Two runs with the same config produce
// byte-identical reports, curves and trace JSON for any thread count —
// campaign_test pins this.

#ifndef HYPERTP_SRC_CAMPAIGN_CAMPAIGN_H_
#define HYPERTP_SRC_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/fleet/fleet_types.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/vulndb/exposure_stream.h"

namespace hypertp {

// One datacenter of the campaign topology: `racks` racks of `hosts_per_rack`
// hosts, each host carrying `vms_per_host` guests.
struct CampaignDatacenter {
  std::string name;
  int racks = 1;
  int hosts_per_rack = 1;
  int vms_per_host = 10;
  // Bandwidth-aware pacing: one in-flight shard's evacuation + image traffic
  // occupies one slot of the datacenter's WAN links; at most this many of the
  // DC's shards transplant concurrently (0 = unconstrained). Further shards
  // queue in id order and are admitted as slots free up.
  int bandwidth_slots = 0;
  // Per-DC environment signals for the adaptive mechanism policy: migration
  // link bandwidth and spare host capacity. Only consulted when
  // CampaignConfig::policy is adaptive; a congested DC (low link_gbps or
  // headroom) shifts its VMs toward InPlaceTP or refusal.
  double link_gbps = 10.0;
  double host_headroom = 0.5;
  // Seeded hypervisor-crash storm over this datacenter's hosts (disabled by
  // default). The DC-wide Poisson rate is split across the DC's shards in
  // proportion to their host counts (Poisson thinning), so the storm's
  // expected intensity is independent of the sharding and every draw stays
  // inside one shard's deterministic stream.
  CrashStormConfig crash_storm;
  // Heterogeneous per-DC timing: host class (CPU generation), reboot cost
  // (firmware/microcode path) and link generation scale this DC's per-host
  // transplant and drain durations (policy::DcTimingModel). Defaults are all
  // 1.0 — byte-identical to the homogeneous campaign.
  policy::DcTimingModel timing;

  int hosts() const { return racks * hosts_per_rack; }
  int64_t vms() const { return static_cast<int64_t>(hosts()) * vms_per_host; }
};

// Fleet-wide SLO budgets, evaluated at every epoch barrier.
struct CampaignSlo {
  // Downtime budget: fraction of all campaign hosts concurrently out of
  // service (draining / transplanting / rolling back). Above it, shards defer
  // new waves until the fraction drops. 1.0 disables.
  double max_unavailable_fraction = 1.0;
  // Rollback-storm budgets: post-pause faults per completed transplant
  // attempt over the trailing `rate_window_epochs` barriers. Crossing the
  // throttle budget defers every shard's next wave by `throttle_hold`;
  // crossing the abort budget kills the campaign. >= 1.0 disables either.
  double throttle_rollback_rate = 1.0;
  double abort_rollback_rate = 1.0;
  int rate_window_epochs = 4;
  SimDuration throttle_hold = Seconds(30);
  // Hard abort when this fraction of all campaign hosts has permanently
  // failed. >= 1.0 disables.
  double abort_failed_fraction = 1.0;
  // Crash-storm budgets, kept apart from the upgrade-induced ones so a storm
  // can never masquerade as a bad image (and vice versa): the rates above
  // count only post-pause faults of *upgrade* attempts, the ones below only
  // crash-induced rollbacks (an unplanned salvage reverting an upgraded
  // host). Same trailing window, same semantics; distinct abort_reason
  // ("crash_rollback_rate"). >= 1.0 disables either.
  double throttle_crash_rollback_rate = 1.0;
  double abort_crash_rollback_rate = 1.0;
  // Hard abort when this fraction of all campaign hosts was lost to crashes
  // (ledger data loss or recovery exhaustion); abort_reason
  // "crash_loss_fraction". >= 1.0 disables.
  double abort_crash_loss_fraction = 1.0;
};

// Deterministic rack work-stealing, decided only at epoch barriers: when a
// shard's remaining-work estimate (pending per-host cost / wave width) falls
// below `threshold_epochs` epochs, the planner re-homes whole fully-unstarted
// racks from the most-loaded shard to it. Rack-integral moves preserve
// cross-shard anti-affinity by construction; id-order tie-breaking keeps the
// steal plan — and every output byte — independent of thread count.
struct CampaignStealConfig {
  bool enabled = false;
  // A shard becomes a thief when its remaining-work estimate drops under
  // threshold_epochs * epoch.
  double threshold_epochs = 2.0;
  // Cap on racks re-homed per barrier (0 = unlimited).
  int max_racks_per_epoch = 0;
};

struct CampaignConfig {
  std::vector<CampaignDatacenter> datacenters;
  // Shard count: >= datacenters (every DC runs at least one shard) and
  // <= total racks (a shard owns whole racks).
  int shards = 1;
  // Lockstep quantum: every admitted shard advances to the next multiple of
  // `epoch`, then the governor/analytics barrier runs.
  SimDuration epoch = Seconds(5);
  // Global capacity constraint: at most this many shards in flight across
  // all datacenters (0 = unconstrained).
  int max_concurrent_shards = 0;

  // Per-shard FleetController knobs (see FleetConfig for semantics).
  int parallel_hosts_per_shard = 100;
  int max_per_rack_in_flight = 0;
  SimDuration drain_time = 0;
  SimDuration per_host_transplant = Seconds(10);
  double failure_probability = 0.0;
  double latency_jitter = 0.0;
  int max_retries = 3;
  SimDuration retry_backoff = Seconds(5);
  double post_pause_fraction = 0.0;
  double rollback_failure_probability = 0.0;
  SimDuration rollback_time = Seconds(5);

  // Adaptive mechanism selection (src/policy/), threaded into every shard's
  // FleetController. The planner overrides the policy's environment defaults
  // per datacenter (CampaignDatacenter::link_gbps / host_headroom) and keys
  // every host plan on the host's campaign-global id, so decisions are
  // byte-identical across shard counts and thread counts. kFixed (the
  // default) keeps legacy behavior byte for byte.
  policy::PolicyConfig policy;

  // Straggler-tail mitigation (both off/neutral by default — disabled they
  // keep every existing output byte-identical).
  CampaignStealConfig steal;
  // Adaptive epoch stride: when no admitted shard has an event before the
  // next k epoch boundaries and the governor is quiescent, the coordinator
  // strides straight to the next interesting boundary instead of running k
  // empty barriers. Skipped epochs count as executed (identical reports);
  // the campaign_idle_epochs_skipped counter and the report's
  // idle_epochs_skipped field tally them.
  bool adaptive_stride = true;

  CampaignSlo slo;
  uint64_t seed = 1;
  // Real OS threads for epoch advancement (wall-clock only — output bytes
  // are identical for any value). 0 = the HYPERTP_PARALLEL env var.
  int real_threads = 0;
  // Safety horizon: the campaign aborts after this many epochs (0 = never).
  int max_epochs = 1 << 20;
  // ExposureStream downsampling epsilon (see ExposureStreamOptions).
  double exposure_min_fraction_delta = 0.001;

  // Observability (campaign scope only; shard-internal tracing stays off so
  // output is thread-count independent): campaign/shard spans, SLO instants,
  // exposure curve instants, campaign_* counters and gauges.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

// One shard of the plan: whole racks of exactly one datacenter.
struct CampaignShardPlan {
  int id = 0;
  int datacenter = 0;
  std::vector<int> racks;  // DC-local rack indices owned by this shard.
  int hosts = 0;
  int vms_per_host = 0;
};

struct CampaignPlan {
  std::vector<CampaignShardPlan> shards;
  std::vector<int> shards_per_datacenter;
  int total_hosts = 0;
  int64_t total_vms = 0;
  int total_racks = 0;
};

// Rack-aware partition: shards are apportioned to datacenters by host count
// (D'Hondt, every DC >= 1), racks round-robin over the DC's shards. Rejects
// empty/degenerate topologies, shard counts outside [datacenters, racks],
// and invalid per-shard fleet knobs with a field-naming error.
Result<CampaignPlan> PlanCampaign(const CampaignConfig& config);

// Per-shard outcome, in shard-id order.
struct CampaignShardSummary {
  int id = 0;
  int datacenter = 0;
  int hosts = 0;
  int upgraded = 0;
  int failed = 0;
  int untouched = 0;
  int retries = 0;
  int waves = 0;
  int post_pause_faults = 0;
  int rollbacks = 0;
  int rollback_failures = 0;
  int crashes = 0;
  int crash_rollbacks = 0;
  int lost = 0;
  int refused = 0;  // Hosts the adaptive policy excluded (0 under kFixed).
  // Work-stealing traffic: hosts adopted from / handed to sibling shards.
  // `hosts` above is the final responsibility set (initial + in - out).
  int stolen_in = 0;
  int stolen_out = 0;
  bool aborted = false;
  bool complete = false;
  SimTime admitted = -1;  // -1: the campaign aborted before admission.
  SimDuration makespan = 0;
};

struct CampaignReport {
  int shards = 0;
  int datacenters = 0;
  int hosts = 0;
  int64_t vms = 0;
  int upgraded = 0;
  int failed = 0;
  int untouched = 0;
  int retries = 0;
  // Upgrade-induced recovery traffic: post-pause faults and the planned
  // ledger rollbacks they triggered.
  int post_pause_faults = 0;
  int rollbacks = 0;
  int rollback_failures = 0;
  // Crash-storm traffic, tallied separately so neither contaminates the
  // other's SLO rate: strikes, unplanned recoveries by outcome, upgraded
  // hosts reverted by a same-kind salvage, and hosts lost outright.
  int crashes = 0;
  int crash_salvages = 0;
  int crash_live_recoveries = 0;
  int crash_rollbacks = 0;
  int crash_upgrades = 0;
  int crash_data_loss = 0;
  int lost = 0;
  // Adaptive mechanism policy totals (all zero/false under kFixed; absent
  // from the JSON then, so legacy output stays byte-identical).
  int refused = 0;
  bool policy_adaptive = false;
  int policy_inplace_vms = 0;
  int policy_migrate_vms = 0;
  int policy_refused_vms = 0;
  SimDuration policy_vm_downtime = 0;
  // Work-stealing totals (JSON keys appear only when stealing was enabled,
  // so legacy reports stay byte-identical).
  bool steal_enabled = false;
  int steals = 0;        // Rack moves across all barriers.
  int stolen_hosts = 0;  // Hosts those racks carried.
  // Epoch barriers the adaptive stride skipped (JSON key only when > 0).
  int idle_epochs_skipped = 0;
  // Wall-clock of CampaignPlanner::Run() in milliseconds; -1 = not measured.
  // Excluded from byte-identity comparisons (JSON key only when >= 0) —
  // determinism tests reset it to -1 before serializing.
  double wall_ms = -1.0;
  int epochs = 0;
  int throttled_epochs = 0;
  bool aborted = false;   // SLO (or horizon) abort.
  bool complete = false;  // Every host of every shard upgraded.
  std::string abort_reason;
  SimDuration makespan = 0;
  // Final state + running integrals of the live exposure stream.
  double final_fraction_vulnerable = 1.0;
  double exposed_host_days = 0.0;
  double exposed_vm_days = 0.0;
  std::vector<ExposureCurvePoint> exposure_curve;
  std::vector<CampaignShardSummary> shard_summaries;
  SampleSet shard_makespan_seconds;
  // Crash-to-serving latency of every successful unplanned recovery, merged
  // across shards in shard-id order (deterministic for any thread count).
  SampleSet recovery_latency_seconds;
};

// {"kind":"campaign", fleet totals, SLO outcome, exposure, shards} in the
// OperationalReportToJson house style. Deterministic: same report -> same
// bytes.
std::string CampaignReportToJson(const CampaignReport& report);

class CampaignPlanner {
 public:
  explicit CampaignPlanner(CampaignConfig config);

  // Plans (if not yet planned) and executes the campaign to completion or
  // SLO abort. Single-shot: a second call returns kFailedPrecondition.
  Result<CampaignReport> Run();

  // The sharding plan; set after Plan()/Run() succeeds.
  const std::optional<CampaignPlan>& plan() const { return plan_; }
  const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  std::optional<CampaignPlan> plan_;
  bool ran_ = false;
  // Barrier-committed wave hold read by every shard's wave pacer; nonzero
  // while the governor throttles. Written only between epochs.
  SimDuration governor_hold_ = 0;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_CAMPAIGN_CAMPAIGN_H_
