#include "src/campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "src/base/json.h"
#include "src/base/logging.h"
#include "src/fleet/fleet_controller.h"
#include "src/sim/executor.h"
#include "src/sim/rng.h"
#include "src/sim/worker_pool.h"

namespace hypertp {
namespace {

// Builds the per-shard FleetConfig for validation and execution. `hosts`,
// `fault_domains` and `seed` are filled per shard by the caller.
FleetConfig ShardFleetConfig(const CampaignConfig& config) {
  FleetConfig fleet;
  fleet.parallel_hosts = config.parallel_hosts_per_shard;
  fleet.max_per_domain_in_flight = config.max_per_rack_in_flight;
  fleet.drain_time = config.drain_time;
  fleet.per_host_transplant = config.per_host_transplant;
  fleet.failure_probability = config.failure_probability;
  fleet.latency_jitter = config.latency_jitter;
  fleet.max_retries = config.max_retries;
  fleet.retry_backoff = config.retry_backoff;
  fleet.post_pause_fraction = config.post_pause_fraction;
  fleet.rollback_failure_probability = config.rollback_failure_probability;
  fleet.rollback_time = config.rollback_time;
  fleet.policy = config.policy;
  return fleet;
}

}  // namespace

Result<CampaignPlan> PlanCampaign(const CampaignConfig& config) {
  if (config.datacenters.empty()) {
    return InvalidArgumentError("CampaignConfig::datacenters must not be empty");
  }
  CampaignPlan plan;
  for (size_t d = 0; d < config.datacenters.size(); ++d) {
    const CampaignDatacenter& dc = config.datacenters[d];
    const std::string where = "datacenter '" + dc.name + "' (#" + std::to_string(d) + ")";
    if (dc.racks <= 0) {
      return InvalidArgumentError(where + ": racks must be > 0, got " + std::to_string(dc.racks));
    }
    if (dc.hosts_per_rack <= 0) {
      return InvalidArgumentError(where + ": hosts_per_rack must be > 0, got " +
                                  std::to_string(dc.hosts_per_rack));
    }
    if (dc.vms_per_host <= 0) {
      return InvalidArgumentError(where + ": vms_per_host must be > 0, got " +
                                  std::to_string(dc.vms_per_host));
    }
    if (dc.bandwidth_slots < 0) {
      return InvalidArgumentError(where + ": bandwidth_slots must be >= 0, got " +
                                  std::to_string(dc.bandwidth_slots));
    }
    if (!(dc.link_gbps >= 0.0) || !std::isfinite(dc.link_gbps)) {
      return InvalidArgumentError(where + ": link_gbps must be finite and >= 0, got " +
                                  std::to_string(dc.link_gbps));
    }
    if (!(dc.host_headroom >= 0.0 && dc.host_headroom <= 1.0)) {
      return InvalidArgumentError(where + ": host_headroom must be a fraction in [0, 1], got " +
                                  std::to_string(dc.host_headroom));
    }
    // Heterogeneous timing multipliers must be finite and positive (1.0 = the
    // homogeneous default).
    if (!(dc.timing.host_class > 0.0) || !std::isfinite(dc.timing.host_class)) {
      return InvalidArgumentError(where + ": timing.host_class must be finite and > 0, got " +
                                  std::to_string(dc.timing.host_class));
    }
    if (!(dc.timing.reboot_cost > 0.0) || !std::isfinite(dc.timing.reboot_cost)) {
      return InvalidArgumentError(where + ": timing.reboot_cost must be finite and > 0, got " +
                                  std::to_string(dc.timing.reboot_cost));
    }
    if (!(dc.timing.link_generation > 0.0) || !std::isfinite(dc.timing.link_generation)) {
      return InvalidArgumentError(where + ": timing.link_generation must be finite and > 0, got " +
                                  std::to_string(dc.timing.link_generation));
    }
    // Per-DC crash storms fail fast with the fleet layer's own field-naming
    // errors, prefixed with the datacenter they came from.
    FleetConfig storm_probe;
    storm_probe.hosts = 1;
    storm_probe.crash_storm = dc.crash_storm;
    if (Result<void> storm_valid = ValidateFleetConfig(storm_probe); !storm_valid.ok()) {
      return InvalidArgumentError(where + ": " + storm_valid.error().message());
    }
    plan.total_hosts += dc.hosts();
    plan.total_vms += dc.vms();
    plan.total_racks += dc.racks;
  }
  const int dcs = static_cast<int>(config.datacenters.size());
  if (config.shards < dcs) {
    return InvalidArgumentError("CampaignConfig::shards (" + std::to_string(config.shards) +
                                ") must cover every datacenter (>= " + std::to_string(dcs) + ")");
  }
  if (config.shards > plan.total_racks) {
    return InvalidArgumentError("CampaignConfig::shards (" + std::to_string(config.shards) +
                                ") exceeds the total rack count (" +
                                std::to_string(plan.total_racks) +
                                "); shards own whole racks");
  }
  if (config.epoch <= 0) {
    return InvalidArgumentError("CampaignConfig::epoch must be > 0, got " +
                                std::to_string(config.epoch) + " ns");
  }
  if (config.max_concurrent_shards < 0) {
    return InvalidArgumentError("CampaignConfig::max_concurrent_shards must be >= 0");
  }
  if (config.slo.rate_window_epochs <= 0) {
    return InvalidArgumentError("CampaignSlo::rate_window_epochs must be > 0");
  }
  if (!(config.steal.threshold_epochs > 0.0) || !std::isfinite(config.steal.threshold_epochs)) {
    return InvalidArgumentError("CampaignStealConfig::threshold_epochs must be finite and > 0");
  }
  if (config.steal.max_racks_per_epoch < 0) {
    return InvalidArgumentError("CampaignStealConfig::max_racks_per_epoch must be >= 0");
  }
  if (config.steal.enabled) {
    // Work-stealing re-homes whole racks between shards. A stolen rack must
    // mean the same thing everywhere: uniform per-VM weight (exposure
    // accounting), no adaptive per-host plans (plans are keyed to the owning
    // shard's topology), and no crash storms (a fully-unstarted rack is only
    // well-defined when hosts can't crash out from under the steal planner).
    if (config.policy.adaptive()) {
      return InvalidArgumentError(
          "CampaignStealConfig::enabled requires the fixed mechanism policy "
          "(adaptive per-host plans cannot travel between shards)");
    }
    for (size_t d = 0; d < config.datacenters.size(); ++d) {
      if (config.datacenters[d].crash_storm.enabled()) {
        return InvalidArgumentError("CampaignStealConfig::enabled is incompatible with "
                                    "crash storms (datacenter '" +
                                    config.datacenters[d].name + "')");
      }
      if (config.datacenters[d].vms_per_host != config.datacenters[0].vms_per_host) {
        return InvalidArgumentError(
            "CampaignStealConfig::enabled requires a uniform vms_per_host across "
            "datacenters (racks re-home across DCs), got " +
            std::to_string(config.datacenters[d].vms_per_host) + " vs " +
            std::to_string(config.datacenters[0].vms_per_host));
      }
    }
  }
  // Per-shard fleet knobs fail fast here, with the same field-naming errors
  // the controller itself would produce.
  FleetConfig probe = ShardFleetConfig(config);
  probe.hosts = 1;
  if (Result<void> fleet_valid = ValidateFleetConfig(probe); !fleet_valid.ok()) {
    return fleet_valid.error();
  }

  // Apportion shards to datacenters by host count (D'Hondt: every DC starts
  // with one shard; each remaining shard goes to the DC maximizing
  // hosts / (assigned + 1), ties to the lower index), capped at the DC's rack
  // count so no shard ends up empty.
  plan.shards_per_datacenter.assign(static_cast<size_t>(dcs), 1);
  for (int extra = config.shards - dcs; extra > 0; --extra) {
    int best = -1;
    double best_score = -1.0;
    for (int d = 0; d < dcs; ++d) {
      if (plan.shards_per_datacenter[static_cast<size_t>(d)] >=
          config.datacenters[static_cast<size_t>(d)].racks) {
        continue;  // Every rack already has its own shard.
      }
      const double score =
          static_cast<double>(config.datacenters[static_cast<size_t>(d)].hosts()) /
          (plan.shards_per_datacenter[static_cast<size_t>(d)] + 1);
      if (score > best_score) {
        best_score = score;
        best = d;
      }
    }
    plan.shards_per_datacenter[static_cast<size_t>(best)] += 1;
  }

  // Racks round-robin over the DC's shards; shard ids dense in DC order.
  int next_id = 0;
  for (int d = 0; d < dcs; ++d) {
    const CampaignDatacenter& dc = config.datacenters[static_cast<size_t>(d)];
    const int dc_shards = plan.shards_per_datacenter[static_cast<size_t>(d)];
    const int first_id = next_id;
    for (int s = 0; s < dc_shards; ++s) {
      CampaignShardPlan shard;
      shard.id = next_id++;
      shard.datacenter = d;
      shard.vms_per_host = dc.vms_per_host;
      plan.shards.push_back(std::move(shard));
    }
    for (int rack = 0; rack < dc.racks; ++rack) {
      CampaignShardPlan& shard = plan.shards[static_cast<size_t>(first_id + rack % dc_shards)];
      shard.racks.push_back(rack);
      shard.hosts += dc.hosts_per_rack;
    }
  }
  return plan;
}

std::string CampaignReportToJson(const CampaignReport& report) {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("campaign");
  j.Key("shards").Number(static_cast<int64_t>(report.shards));
  j.Key("datacenters").Number(static_cast<int64_t>(report.datacenters));
  j.Key("hosts").Number(static_cast<int64_t>(report.hosts));
  j.Key("vms").Number(report.vms);
  j.Key("upgraded").Number(static_cast<int64_t>(report.upgraded));
  j.Key("failed").Number(static_cast<int64_t>(report.failed));
  j.Key("untouched").Number(static_cast<int64_t>(report.untouched));
  j.Key("retries").Number(static_cast<int64_t>(report.retries));
  j.Key("post_pause_faults").Number(static_cast<int64_t>(report.post_pause_faults));
  j.Key("rollbacks").Number(static_cast<int64_t>(report.rollbacks));
  j.Key("rollback_failures").Number(static_cast<int64_t>(report.rollback_failures));
  j.Key("crashes").Number(static_cast<int64_t>(report.crashes));
  j.Key("crash_salvages").Number(static_cast<int64_t>(report.crash_salvages));
  j.Key("crash_live_recoveries").Number(static_cast<int64_t>(report.crash_live_recoveries));
  j.Key("crash_rollbacks").Number(static_cast<int64_t>(report.crash_rollbacks));
  j.Key("crash_upgrades").Number(static_cast<int64_t>(report.crash_upgrades));
  j.Key("crash_data_loss").Number(static_cast<int64_t>(report.crash_data_loss));
  j.Key("lost").Number(static_cast<int64_t>(report.lost));
  // Adaptive-only block: kFixed campaign JSON stays byte-identical.
  if (report.policy_adaptive) {
    j.Key("refused").Number(static_cast<int64_t>(report.refused));
    j.Key("policy").BeginObject();
    j.Key("mode").String("adaptive");
    j.Key("inplace_vms").Number(static_cast<int64_t>(report.policy_inplace_vms));
    j.Key("migrate_vms").Number(static_cast<int64_t>(report.policy_migrate_vms));
    j.Key("refused_vms").Number(static_cast<int64_t>(report.policy_refused_vms));
    j.Key("vm_downtime_ms").Number(ToMillis(report.policy_vm_downtime));
    j.EndObject();
  }
  // Stealing block only when enabled, the stride tally only when it skipped
  // anything, wall_ms only when measured: default-config reports stay
  // byte-identical to pre-stealing builds (and byte-comparable across runs —
  // determinism tests reset wall_ms to -1).
  if (report.steal_enabled) {
    j.Key("steals").Number(static_cast<int64_t>(report.steals));
    j.Key("stolen_hosts").Number(static_cast<int64_t>(report.stolen_hosts));
  }
  if (report.idle_epochs_skipped > 0) {
    j.Key("idle_epochs_skipped").Number(static_cast<int64_t>(report.idle_epochs_skipped));
  }
  j.Key("aborted").Bool(report.aborted);
  j.Key("complete").Bool(report.complete);
  j.Key("makespan_ms").Number(ToMillis(report.makespan));
  if (report.wall_ms >= 0) {
    j.Key("wall_ms").Number(report.wall_ms);
  }
  j.Key("slo").BeginObject();
  j.Key("epochs").Number(static_cast<int64_t>(report.epochs));
  j.Key("throttled_epochs").Number(static_cast<int64_t>(report.throttled_epochs));
  j.Key("abort_reason").String(report.abort_reason);
  j.EndObject();
  j.Key("exposure").BeginObject();
  j.Key("final_fraction_vulnerable").Number(report.final_fraction_vulnerable);
  j.Key("exposed_host_days").Number(report.exposed_host_days);
  j.Key("exposed_vm_days").Number(report.exposed_vm_days);
  j.Key("curve").BeginArray();
  for (const ExposureCurvePoint& point : report.exposure_curve) {
    j.BeginArray();
    j.Number(ToMillis(point.time));
    j.Number(point.exposed_vms);
    j.Number(point.fraction);
    j.EndArray();
  }
  j.EndArray();
  j.EndObject();
  j.Key("shard_makespan_seconds").BeginObject();
  j.Key("count").Number(static_cast<uint64_t>(report.shard_makespan_seconds.count()));
  if (!report.shard_makespan_seconds.empty()) {
    j.Key("p50").Number(report.shard_makespan_seconds.Percentile(50));
    j.Key("p99").Number(report.shard_makespan_seconds.Percentile(99));
    j.Key("max").Number(report.shard_makespan_seconds.max());
  }
  j.EndObject();
  j.Key("recovery_latency_seconds").BeginObject();
  j.Key("count").Number(static_cast<uint64_t>(report.recovery_latency_seconds.count()));
  if (!report.recovery_latency_seconds.empty()) {
    j.Key("p50").Number(report.recovery_latency_seconds.Percentile(50));
    j.Key("p99").Number(report.recovery_latency_seconds.Percentile(99));
    j.Key("max").Number(report.recovery_latency_seconds.max());
  }
  j.EndObject();
  j.Key("shards_detail").BeginArray();
  for (const CampaignShardSummary& shard : report.shard_summaries) {
    j.BeginObject();
    j.Key("id").Number(static_cast<int64_t>(shard.id));
    j.Key("datacenter").Number(static_cast<int64_t>(shard.datacenter));
    j.Key("hosts").Number(static_cast<int64_t>(shard.hosts));
    j.Key("upgraded").Number(static_cast<int64_t>(shard.upgraded));
    j.Key("failed").Number(static_cast<int64_t>(shard.failed));
    j.Key("untouched").Number(static_cast<int64_t>(shard.untouched));
    j.Key("retries").Number(static_cast<int64_t>(shard.retries));
    j.Key("waves").Number(static_cast<int64_t>(shard.waves));
    j.Key("post_pause_faults").Number(static_cast<int64_t>(shard.post_pause_faults));
    j.Key("rollbacks").Number(static_cast<int64_t>(shard.rollbacks));
    j.Key("rollback_failures").Number(static_cast<int64_t>(shard.rollback_failures));
    j.Key("crashes").Number(static_cast<int64_t>(shard.crashes));
    j.Key("crash_rollbacks").Number(static_cast<int64_t>(shard.crash_rollbacks));
    j.Key("lost").Number(static_cast<int64_t>(shard.lost));
    if (report.policy_adaptive) {
      j.Key("refused").Number(static_cast<int64_t>(shard.refused));
    }
    if (report.steal_enabled) {
      j.Key("stolen_in").Number(static_cast<int64_t>(shard.stolen_in));
      j.Key("stolen_out").Number(static_cast<int64_t>(shard.stolen_out));
    }
    j.Key("aborted").Bool(shard.aborted);
    j.Key("complete").Bool(shard.complete);
    j.Key("admitted_ms").Number(shard.admitted < 0 ? -1.0 : ToMillis(shard.admitted));
    j.Key("makespan_ms").Number(ToMillis(shard.makespan));
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

CampaignPlanner::CampaignPlanner(CampaignConfig config) : config_(std::move(config)) {}

Result<CampaignReport> CampaignPlanner::Run() {
  if (ran_) {
    return FailedPreconditionError("CampaignPlanner::Run is single-shot");
  }
  ran_ = true;
  const auto wall_start = std::chrono::steady_clock::now();
  Result<CampaignPlan> planned = PlanCampaign(config_);
  if (!planned.ok()) {
    return planned.error();
  }
  plan_ = std::move(planned).value();
  const CampaignPlan& plan = *plan_;
  Tracer* const tracer = config_.tracer;

  // Per-shard runtime. Controllers borrow their executor and the pacer reads
  // `governor_hold_`, which is written only at barriers.
  struct ShardRuntime {
    const CampaignShardPlan* plan = nullptr;
    std::unique_ptr<SimExecutor> executor;
    std::unique_ptr<FleetController> controller;
    bool admitted = false;
    bool done = false;
    SimTime admitted_at = -1;
    SpanId span = 0;
    // Exposure-timeline drain cursor + last seen exposed count.
    size_t exposure_consumed = 0;
    int last_exposed = 0;
    // Barrier snapshots for governor deltas. Attempts come from the monotone
    // transplant_successes counter, not `upgraded` (crash rollbacks and lost
    // hosts decrement the latter, which would corrupt the rate denominator).
    int prev_transplant_successes = 0;
    int prev_retries = 0;
    int prev_failed = 0;
    int prev_post_pause = 0;
    int prev_crash_rollbacks = 0;
  };
  std::vector<std::unique_ptr<ShardRuntime>> shards;
  shards.reserve(plan.shards.size());
  // Campaign-global host numbering base per datacenter (cumulative hosts of
  // the DCs before it): the adaptive policy keys every host plan on this id,
  // so decisions are invariant under resharding.
  std::vector<int64_t> dc_base(config_.datacenters.size(), 0);
  for (size_t d = 1; d < config_.datacenters.size(); ++d) {
    dc_base[d] = dc_base[d - 1] + config_.datacenters[d - 1].hosts();
  }
  Rng root(config_.seed);
  for (const CampaignShardPlan& shard_plan : plan.shards) {
    auto rt = std::make_unique<ShardRuntime>();
    rt->plan = &shard_plan;
    rt->executor = std::make_unique<SimExecutor>();
    FleetConfig fleet = ShardFleetConfig(config_);
    fleet.hosts = shard_plan.hosts;
    fleet.fault_domains = static_cast<int>(shard_plan.racks.size());
    // The controller composes waves under the shard-wide width cap; clamping
    // to the shard size keeps wave accounting meaningful for tiny shards.
    fleet.parallel_hosts = std::min(config_.parallel_hosts_per_shard, shard_plan.hosts);
    // Poisson thinning: the DC-wide storm rate splits across the DC's shards
    // in proportion to their host counts, so expected intensity is invariant
    // under resharding and every draw stays in one shard's stream.
    const CampaignDatacenter& dc =
        config_.datacenters[static_cast<size_t>(shard_plan.datacenter)];
    // Heterogeneous per-DC timing: scale this shard's per-host durations by
    // its datacenter's host class / reboot cost / link generation. Uniform
    // multipliers short-circuit to the exact legacy durations.
    fleet.drain_time = policy::TransplantCostModel::ScaledDrain(fleet.drain_time, dc.timing);
    fleet.per_host_transplant =
        policy::TransplantCostModel::ScaledTransplant(fleet.per_host_transplant, dc.timing);
    // Work-stealing keeps drained shards alive (hold-open) so the barrier
    // steal planner can re-home racks into them or finalize them.
    fleet.hold_open = config_.steal.enabled;
    if (dc.crash_storm.enabled() && dc.hosts() > 0) {
      fleet.crash_storm = dc.crash_storm;
      fleet.crash_storm.rate_per_hour *=
          static_cast<double>(shard_plan.hosts) / static_cast<double>(dc.hosts());
    }
    // Adaptive policy: the DC's environment signals override the config
    // defaults, and shard-local host i maps to its campaign-global id via the
    // rack layout (fault domain j == owned rack racks[j]; hosts round-robin
    // over domains). Pure topology, so any shard count prices the same VMs.
    if (config_.policy.adaptive()) {
      fleet.policy.link_gbps = dc.link_gbps;
      fleet.policy.host_headroom = dc.host_headroom;
      fleet.policy.vms_per_host = dc.vms_per_host;
      const int nracks = static_cast<int>(shard_plan.racks.size());
      fleet.policy_host_global_ids.reserve(static_cast<size_t>(shard_plan.hosts));
      for (int i = 0; i < shard_plan.hosts; ++i) {
        const int rack = shard_plan.racks[static_cast<size_t>(i % nracks)];
        fleet.policy_host_global_ids.push_back(
            dc_base[static_cast<size_t>(shard_plan.datacenter)] +
            static_cast<int64_t>(rack) * dc.hosts_per_rack + i / nracks);
      }
    }
    fleet.seed = root.Fork().NextU64();  // Id-order forks: shard-independent.
    fleet.trace_capacity = static_cast<size_t>(std::max(shard_plan.hosts, 128)) * 8;
    fleet.wave_pacer = [this](int, SimTime) { return governor_hold_; };
    rt->last_exposed = shard_plan.hosts;
    rt->controller = std::make_unique<FleetController>(*rt->executor, fleet);
    if (rt->controller->config_error().has_value()) {
      return rt->controller->config_error().value();  // Unreachable: probed in PlanCampaign.
    }
    shards.push_back(std::move(rt));
  }

  const int threads = config_.real_threads > 0 ? config_.real_threads : ParallelThreadsFromEnv();
  ExposureStreamOptions stream_options;
  stream_options.min_fraction_delta = config_.exposure_min_fraction_delta;
  stream_options.tracer = tracer;
  stream_options.metrics = config_.metrics;
  ExposureStream stream(plan.total_hosts, plan.total_vms, 0, stream_options);
  Counter* epochs_counter = nullptr;
  Counter* throttled_counter = nullptr;
  Gauge* active_gauge = nullptr;
  if (config_.metrics != nullptr) {
    epochs_counter = &config_.metrics->GetCounter("campaign_epochs");
    throttled_counter = &config_.metrics->GetCounter("campaign_throttled_epochs");
    active_gauge = &config_.metrics->GetGauge("campaign_active_shards");
  }

  SpanId campaign_span = 0;
  if (tracer != nullptr) {
    campaign_span = tracer->BeginSpan("campaign", 0);
    tracer->SetAttribute(campaign_span, "shards", static_cast<int64_t>(plan.shards.size()));
    tracer->SetAttribute(campaign_span, "hosts", static_cast<int64_t>(plan.total_hosts));
    tracer->SetAttribute(campaign_span, "vms", plan.total_vms);
  }

  CampaignReport report;
  report.shards = static_cast<int>(plan.shards.size());
  report.datacenters = static_cast<int>(config_.datacenters.size());
  report.hosts = plan.total_hosts;
  report.vms = plan.total_vms;

  SimTime now = 0;
  int active = 0;
  size_t finished = 0;
  std::vector<int> dc_active(config_.datacenters.size(), 0);
  // Trailing-window rate samples; upgrade-induced post-pause faults and
  // crash-induced rollbacks share the attempts denominator but never mix.
  struct RateSample {
    int post_pause = 0;
    int crash_rollbacks = 0;
    int attempts = 0;
  };
  std::deque<RateSample> rate_window;
  bool throttled = false;
  // Registered lazily (first steal / first skipped epoch) so metric
  // snapshots of campaigns that never steal or stride stay byte-identical.
  Counter* steals_counter = nullptr;
  Counter* idle_counter = nullptr;

  // Admission under the global concurrency cap and per-DC bandwidth slots,
  // in shard-id order (deferred shards keep their place in line).
  const auto admit = [&]() {
    for (auto& rt : shards) {
      if (rt->admitted || rt->done) {
        continue;
      }
      if (config_.max_concurrent_shards > 0 && active >= config_.max_concurrent_shards) {
        break;
      }
      const int dc = rt->plan->datacenter;
      const int slots = config_.datacenters[static_cast<size_t>(dc)].bandwidth_slots;
      if (slots > 0 && dc_active[static_cast<size_t>(dc)] >= slots) {
        continue;  // This DC's WAN is saturated; later DCs may still admit.
      }
      rt->executor->AdvanceTo(now);
      rt->controller->Start();
      rt->admitted = true;
      rt->admitted_at = now;
      ++active;
      ++dc_active[static_cast<size_t>(dc)];
      if (tracer != nullptr) {
        const std::string track = "shard-" + std::to_string(rt->plan->id);
        rt->span = tracer->BeginSpan(track, now, campaign_span, track);
        tracer->SetAttribute(rt->span, "datacenter",
                             std::string_view(
                                 config_.datacenters[static_cast<size_t>(dc)].name));
        tracer->SetAttribute(rt->span, "hosts", static_cast<int64_t>(rt->plan->hosts));
      }
    }
  };

  const auto finish_shard = [&](ShardRuntime& rt) {
    rt.done = true;
    ++finished;
    if (rt.admitted) {
      --active;
      --dc_active[static_cast<size_t>(rt.plan->datacenter)];
    }
    if (tracer != nullptr && rt.span != 0) {
      const FleetRolloutReport& shard_report = rt.controller->report();
      tracer->SetAttribute(rt.span, "outcome", shard_report.aborted ? "aborted" : "complete");
      tracer->EndSpan(rt.span, rt.admitted_at + shard_report.makespan);
      rt.span = 0;
    }
  };

  admit();
  std::string abort_reason;
  while (finished < shards.size()) {
    if (config_.max_epochs > 0 && report.epochs >= config_.max_epochs) {
      abort_reason = "max_epochs";
      break;
    }
    now += config_.epoch;
    ++report.epochs;
    if (epochs_counter != nullptr) {
      epochs_counter->Increment();
    }

    // Advance every in-flight shard to the barrier. Shards share no mutable
    // state, so this is the (optionally real-threaded) parallel section;
    // everything below the RunOnWorkerPool call is coordinator-only again.
    std::vector<ShardRuntime*> running;
    for (auto& rt : shards) {
      if (rt->admitted && !rt->done) {
        running.push_back(rt.get());
      }
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(running.size());
    for (ShardRuntime* rt : running) {
      if (rt->executor->pending_events() == 0) {
        // Nothing queued (a drained hold-open shard, or a shard idling toward
        // a far-future retry): advance its clock inline instead of paying a
        // worker-pool task — the steal planner still needs the executor at
        // barrier time.
        rt->executor->AdvanceTo(now);
        continue;
      }
      tasks.push_back([rt, now] {
        // Finished shards must never reach the parallel section (TSan races
        // the barrier bookkeeping otherwise); `running` excludes them above.
        HYPERTP_CHECK(!rt->controller->finished());
        rt->executor->RunUntil(now);
      });
    }
    RunOnWorkerPool(tasks, threads);

    // Barrier: merge new exposure samples across shards by (time, shard) and
    // feed the stream, so the curve is identical for any thread count. Deltas
    // are signed — a crash-induced rollback re-exposes hosts mid-campaign.
    struct SafeEvent {
      SimTime time;
      int shard;
      int hosts;  // > 0: reached safety; < 0: re-exposed by a crash rollback.
      int64_t vms;
    };
    std::vector<SafeEvent> safe_events;
    for (ShardRuntime* rt : running) {
      const std::vector<ExposurePoint>& timeline = rt->controller->trace().exposure_timeline();
      for (size_t i = rt->exposure_consumed; i < timeline.size(); ++i) {
        const int delta = rt->last_exposed - timeline[i].exposed_hosts;
        if (delta != 0) {
          safe_events.push_back(SafeEvent{
              timeline[i].time, rt->plan->id, delta,
              static_cast<int64_t>(delta) * rt->plan->vms_per_host});
        }
        rt->last_exposed = timeline[i].exposed_hosts;
      }
      rt->exposure_consumed = timeline.size();
    }
    std::stable_sort(safe_events.begin(), safe_events.end(),
                     [](const SafeEvent& a, const SafeEvent& b) {
                       return a.time != b.time ? a.time < b.time : a.shard < b.shard;
                     });
    for (const SafeEvent& event : safe_events) {
      if (event.hosts > 0) {
        stream.OnHostsSafe(event.time, event.hosts, event.vms);
      } else {
        stream.OnHostsExposed(event.time, -event.hosts, -event.vms);
      }
    }
    stream.AdvanceTo(now);

    for (ShardRuntime* rt : running) {
      if (rt->controller->finished()) {
        finish_shard(*rt);
      }
    }

    // Deterministic rack work-stealing, decided only here at the barrier
    // (coordinator-only: no shard is advancing). The plan is a pure function
    // of barrier state — remaining-work estimates with id-order tie-breaks —
    // so every output byte is independent of thread count. Under hold_open,
    // drained shards wait here to either adopt a rack or be finalized, which
    // doubles as the progress guarantee: no barrier leaves a drained shard
    // both unfed and unfinalized.
    if (config_.steal.enabled) {
      std::vector<ShardRuntime*> live;
      for (auto& rt : shards) {
        if (rt->admitted && !rt->done) {
          live.push_back(rt.get());
        }
      }
      std::vector<SimDuration> rem(live.size(), 0);
      for (size_t i = 0; i < live.size(); ++i) {
        rem[i] = policy::TransplantCostModel::RemainingEstimate(
            live[i]->controller->PendingWork(), live[i]->controller->config().parallel_hosts);
      }
      const auto threshold = static_cast<SimDuration>(
          config_.steal.threshold_epochs * static_cast<double>(config_.epoch));
      // Unlimited mode still caps one barrier at total_racks moves — a
      // deterministic backstop far above any sane rebalance.
      const int barrier_cap = config_.steal.max_racks_per_epoch > 0
                                  ? config_.steal.max_racks_per_epoch
                                  : plan.total_racks;
      int moved = 0;
      while (moved < barrier_cap) {
        // Thief: the least-loaded shard under the threshold (tie: lowest id).
        int thief = -1;
        for (int i = 0; i < static_cast<int>(live.size()); ++i) {
          if (rem[static_cast<size_t>(i)] < threshold &&
              (thief < 0 || rem[static_cast<size_t>(i)] < rem[static_cast<size_t>(thief)])) {
            thief = i;
          }
        }
        if (thief < 0) {
          break;
        }
        // Donors in descending remaining work (tie: lowest id); take the
        // first one owning a stealable rack whose move helps — the thief must
        // stay at or below the donor's pre-move load, or the move would just
        // relocate the straggler.
        std::vector<int> donors;
        for (int i = 0; i < static_cast<int>(live.size()); ++i) {
          if (i != thief && rem[static_cast<size_t>(i)] > rem[static_cast<size_t>(thief)]) {
            donors.push_back(i);
          }
        }
        std::sort(donors.begin(), donors.end(), [&rem](int a, int b) {
          const SimDuration ra = rem[static_cast<size_t>(a)];
          const SimDuration rb = rem[static_cast<size_t>(b)];
          return ra != rb ? ra > rb : a < b;
        });
        bool stole = false;
        for (const int di : donors) {
          ShardRuntime* donor_rt = live[static_cast<size_t>(di)];
          ShardRuntime* thief_rt = live[static_cast<size_t>(thief)];
          const std::vector<StealableDomain> domains =
              donor_rt->controller->StealableDomains();
          if (domains.empty()) {
            continue;
          }
          const StealableDomain& d = domains.front();  // Lowest rack id.
          const SimDuration rack_work =
              static_cast<SimDuration>(d.hosts) * (d.drain_time + d.transplant_time);
          const SimDuration thief_cost = policy::TransplantCostModel::RemainingEstimate(
              rack_work, thief_rt->controller->config().parallel_hosts);
          // Strict improvement only: the thief must land strictly below the
          // donor's pre-move load. Allowing equality lets an equal-cost rack
          // ping-pong between two shards inside one barrier; with strictness
          // every re-move lowers the holder's (integer) load, so the loop
          // provably terminates even without the cap.
          if (rem[static_cast<size_t>(thief)] + thief_cost >= rem[static_cast<size_t>(di)]) {
            continue;
          }
          const DetachedRack rack = donor_rt->controller->DetachDomain(d.domain);
          thief_rt->controller->AdoptHosts(rack);
          // Ownership moved; exposure did not. Re-point both drain cursors'
          // last-seen counts so neither side synthesizes a phantom
          // safe/re-expose event at the next barrier.
          donor_rt->last_exposed -= rack.hosts;
          thief_rt->last_exposed += rack.hosts;
          stream.OnHostsRehomed(now, rack.hosts,
                                static_cast<int64_t>(rack.hosts) * donor_rt->plan->vms_per_host);
          rem[static_cast<size_t>(di)] -= policy::TransplantCostModel::RemainingEstimate(
              rack_work, donor_rt->controller->config().parallel_hosts);
          rem[static_cast<size_t>(thief)] += thief_cost;
          ++report.steals;
          report.stolen_hosts += rack.hosts;
          ++moved;
          if (config_.metrics != nullptr) {
            if (steals_counter == nullptr) {
              steals_counter = &config_.metrics->GetCounter("campaign_steals");
            }
            steals_counter->Increment();
          }
          if (tracer != nullptr) {
            const SpanId mark = tracer->AddInstant("campaign_steal", now, "steal");
            tracer->SetAttribute(mark, "donor", static_cast<int64_t>(donor_rt->plan->id));
            tracer->SetAttribute(mark, "thief", static_cast<int64_t>(thief_rt->plan->id));
            tracer->SetAttribute(mark, "hosts", static_cast<int64_t>(rack.hosts));
          }
          stole = true;
          break;
        }
        if (!stole) {
          break;
        }
      }
      for (ShardRuntime* rt : live) {
        if (!rt->done && rt->controller->drained()) {
          rt->controller->FinalizeDrained();
          finish_shard(*rt);
        }
      }
    }

    // Governor: fleet-wide deltas since the last barrier. Upgrade-induced
    // faults and crash-induced rollbacks are tallied apart so a fault storm
    // never trips (or masks) the bad-image budget.
    int delta_post_pause = 0;
    int delta_crash_rollbacks = 0;
    int delta_attempts = 0;
    int total_failed = 0;
    int total_lost = 0;
    for (auto& rt : shards) {
      const FleetRolloutReport& r = rt->controller->report();
      delta_post_pause += r.post_pause_faults - rt->prev_post_pause;
      delta_crash_rollbacks += r.crash_rollbacks - rt->prev_crash_rollbacks;
      delta_attempts += (r.transplant_successes - rt->prev_transplant_successes) +
                        (r.retries - rt->prev_retries) + (r.failed - rt->prev_failed);
      total_failed += r.failed;
      total_lost += r.lost;
      rt->prev_post_pause = r.post_pause_faults;
      rt->prev_crash_rollbacks = r.crash_rollbacks;
      rt->prev_transplant_successes = r.transplant_successes;
      rt->prev_retries = r.retries;
      rt->prev_failed = r.failed;
    }
    rate_window.push_back({delta_post_pause, delta_crash_rollbacks, delta_attempts});
    while (static_cast<int>(rate_window.size()) > config_.slo.rate_window_epochs) {
      rate_window.pop_front();
    }
    int window_post_pause = 0;
    int window_crash_rollbacks = 0;
    int window_attempts = 0;
    for (const RateSample& sample : rate_window) {
      window_post_pause += sample.post_pause;
      window_crash_rollbacks += sample.crash_rollbacks;
      window_attempts += sample.attempts;
    }
    const double rollback_rate =
        static_cast<double>(window_post_pause) / std::max(window_attempts, 1);
    const double crash_rollback_rate =
        static_cast<double>(window_crash_rollbacks) / std::max(window_attempts, 1);
    const double failed_fraction =
        plan.total_hosts > 0 ? static_cast<double>(total_failed) / plan.total_hosts : 0.0;
    const double crash_loss_fraction =
        plan.total_hosts > 0 ? static_cast<double>(total_lost) / plan.total_hosts : 0.0;
    double unavailable_fraction = 0.0;
    if (config_.slo.max_unavailable_fraction < 1.0) {
      int unavailable = 0;
      for (auto& rt : shards) {
        if (!rt->admitted || rt->done) {
          continue;
        }
        for (const FleetHost& host : rt->controller->hosts()) {
          unavailable += host.state == FleetHostState::kDraining ||
                         host.state == FleetHostState::kTransplanting ||
                         host.state == FleetHostState::kRollingBack ||
                         host.state == FleetHostState::kCrashed ||
                         host.state == FleetHostState::kRecovering;
        }
      }
      unavailable_fraction =
          plan.total_hosts > 0 ? static_cast<double>(unavailable) / plan.total_hosts : 0.0;
    }

    if (config_.slo.abort_failed_fraction < 1.0 &&
        failed_fraction > config_.slo.abort_failed_fraction) {
      abort_reason = "failed_fraction";
      break;
    }
    if (config_.slo.abort_crash_loss_fraction < 1.0 &&
        crash_loss_fraction > config_.slo.abort_crash_loss_fraction) {
      abort_reason = "crash_loss_fraction";
      break;
    }
    if (config_.slo.abort_rollback_rate < 1.0 && rollback_rate > config_.slo.abort_rollback_rate) {
      abort_reason = "rollback_rate";
      break;
    }
    if (config_.slo.abort_crash_rollback_rate < 1.0 &&
        crash_rollback_rate > config_.slo.abort_crash_rollback_rate) {
      abort_reason = "crash_rollback_rate";
      break;
    }
    const bool now_throttled =
        (config_.slo.throttle_rollback_rate < 1.0 &&
         rollback_rate > config_.slo.throttle_rollback_rate) ||
        (config_.slo.throttle_crash_rollback_rate < 1.0 &&
         crash_rollback_rate > config_.slo.throttle_crash_rollback_rate) ||
        (config_.slo.max_unavailable_fraction < 1.0 &&
         unavailable_fraction > config_.slo.max_unavailable_fraction);
    if (now_throttled) {
      ++report.throttled_epochs;
      if (throttled_counter != nullptr) {
        throttled_counter->Increment();
      }
    }
    if (tracer != nullptr && now_throttled != throttled) {
      const SpanId mark =
          tracer->AddInstant(now_throttled ? "slo_throttle_on" : "slo_throttle_off", now, "slo");
      tracer->SetAttribute(mark, "rollback_rate", rollback_rate);
      tracer->SetAttribute(mark, "unavailable_fraction", unavailable_fraction);
    }
    throttled = now_throttled;
    governor_hold_ = throttled ? std::max(config_.slo.throttle_hold, config_.epoch) : 0;
    if (active_gauge != nullptr) {
      active_gauge->Set(active);
    }

    admit();

    // Adaptive epoch stride: when every queued event sits beyond the next
    // barrier and the governor is provably quiescent (not throttled, no hold,
    // zero faults/rollbacks in the trailing window — so the empty barriers
    // could neither throttle nor abort), jump straight to the last empty
    // barrier. Skipped epochs count as executed — same epoch totals, same
    // rate-window contents, same `now` — so every output byte matches the
    // unstrided run; only idle_epochs_skipped records the shortcut.
    if (config_.adaptive_stride && !throttled && governor_hold_ == 0 &&
        window_post_pause == 0 && window_crash_rollbacks == 0 && finished < shards.size()) {
      SimTime next_event = -1;
      for (auto& rt : shards) {
        if (!rt->admitted || rt->done) {
          continue;
        }
        const SimTime t = rt->executor->NextEventTime();
        if (t >= 0 && (next_event < 0 || t < next_event)) {
          next_event = t;
        }
      }
      if (next_event > now + config_.epoch) {
        // First interesting barrier: smallest now + k*epoch >= next_event;
        // the k-1 before it are empty. (a-1)/b == ceil(a/b)-1 for a > 0.
        int64_t skip = (next_event - now - 1) / config_.epoch;
        if (config_.max_epochs > 0) {
          // Never stride past the horizon: the abort must fire at the same
          // epoch count (and the same `now`) as the unstrided run.
          skip = std::min<int64_t>(skip, config_.max_epochs - report.epochs);
        }
        if (skip > 0) {
          now += skip * config_.epoch;
          report.epochs += static_cast<int>(skip);
          report.idle_epochs_skipped += static_cast<int>(skip);
          if (epochs_counter != nullptr) {
            epochs_counter->Increment(static_cast<uint64_t>(skip));
          }
          if (config_.metrics != nullptr) {
            if (idle_counter == nullptr) {
              idle_counter = &config_.metrics->GetCounter("campaign_idle_epochs_skipped");
            }
            idle_counter->Increment(static_cast<uint64_t>(skip));
          }
          // The skipped barriers' all-zero rate samples still slide the
          // trailing window.
          const int64_t pushes = std::min<int64_t>(skip, config_.slo.rate_window_epochs);
          for (int64_t i = 0; i < pushes; ++i) {
            rate_window.push_back({});
          }
          while (static_cast<int>(rate_window.size()) > config_.slo.rate_window_epochs) {
            rate_window.pop_front();
          }
        }
      }
    }
  }

  if (!abort_reason.empty()) {
    // SLO (or horizon) abort: finalize every unfinished shard where it
    // stands; hosts never reached stay exposed on the vulnerable hypervisor.
    report.aborted = true;
    report.abort_reason = abort_reason;
    if (tracer != nullptr) {
      tracer->AddInstant("campaign_abort:" + abort_reason, now, "slo");
    }
    for (auto& rt : shards) {
      if (!rt->done) {
        rt->controller->Abort();
        finish_shard(*rt);
      }
    }
  }

  // Assemble the report in shard-id order.
  SimTime end = report.aborted ? now : 0;
  for (const auto& rt : shards) {
    const FleetRolloutReport& r = rt->controller->report();
    CampaignShardSummary summary;
    summary.id = rt->plan->id;
    summary.datacenter = rt->plan->datacenter;
    // The controller's count is the final responsibility set (initial plan
    // +/- stolen racks); without stealing it equals the plan's.
    summary.hosts = r.hosts;
    summary.stolen_in = r.adopted_hosts;
    summary.stolen_out = r.detached_hosts;
    summary.upgraded = r.upgraded;
    summary.failed = r.failed;
    summary.untouched = r.untouched;
    summary.retries = r.retries;
    summary.waves = r.waves;
    summary.post_pause_faults = r.post_pause_faults;
    summary.rollbacks = r.rollbacks;
    summary.rollback_failures = r.rollback_failures;
    summary.crashes = r.crashes;
    summary.crash_rollbacks = r.crash_rollbacks;
    summary.lost = r.lost;
    summary.refused = r.refused;
    summary.aborted = r.aborted;
    summary.complete = r.complete;
    summary.admitted = rt->admitted ? rt->admitted_at : -1;
    summary.makespan = r.makespan;
    report.upgraded += r.upgraded;
    report.failed += r.failed;
    report.untouched += r.untouched;
    report.retries += r.retries;
    report.post_pause_faults += r.post_pause_faults;
    report.rollbacks += r.rollbacks;
    report.rollback_failures += r.rollback_failures;
    report.crashes += r.crashes;
    report.crash_salvages += r.crash_salvages;
    report.crash_live_recoveries += r.crash_live_recoveries;
    report.crash_rollbacks += r.crash_rollbacks;
    report.crash_upgrades += r.crash_upgrades;
    report.crash_data_loss += r.crash_data_loss;
    report.lost += r.lost;
    report.refused += r.refused;
    report.policy_inplace_vms += r.policy_inplace_vms;
    report.policy_migrate_vms += r.policy_migrate_vms;
    report.policy_refused_vms += r.policy_refused_vms;
    report.policy_vm_downtime += r.policy_vm_downtime;
    // Shard-id-order merge keeps the percentile bytes thread-count invariant.
    for (const double sample : r.recovery_latency_seconds.samples()) {
      report.recovery_latency_seconds.Add(sample);
    }
    if (rt->admitted) {
      end = std::max(end, rt->admitted_at + r.makespan);
      report.shard_makespan_seconds.Add(ToSeconds(r.makespan));
    }
    report.shard_summaries.push_back(std::move(summary));
  }
  report.makespan = end;
  report.complete = !report.aborted && report.upgraded == report.hosts;
  report.policy_adaptive = config_.policy.adaptive();
  report.steal_enabled = config_.steal.enabled;
  // Campaign-scope decision counters. Shard controllers get no registry of
  // their own (Counter::Increment is not atomic and shards advance on real
  // threads), so the totals land here, once, at the coordinator.
  if (report.policy_adaptive && config_.metrics != nullptr) {
    config_.metrics->GetCounter("hypertp_policy_inplace")
        .Increment(static_cast<uint64_t>(report.policy_inplace_vms));
    config_.metrics->GetCounter("hypertp_policy_migrate")
        .Increment(static_cast<uint64_t>(report.policy_migrate_vms));
    config_.metrics->GetCounter("hypertp_policy_refused")
        .Increment(static_cast<uint64_t>(report.policy_refused_vms));
  }

  stream.Seal(std::max(now, end));
  report.final_fraction_vulnerable = stream.fraction_vulnerable();
  report.exposed_host_days = stream.exposed_host_days();
  report.exposed_vm_days = stream.exposed_vm_days();
  report.exposure_curve = stream.curve();

  if (tracer != nullptr) {
    tracer->SetAttribute(campaign_span, "upgraded", static_cast<int64_t>(report.upgraded));
    tracer->SetAttribute(campaign_span, "outcome",
                         report.aborted ? "aborted" : (report.complete ? "complete" : "partial"));
    tracer->EndSpan(campaign_span, std::max(now, end));
  }
  report.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                             wall_start)
                       .count();
  return report;
}

}  // namespace hypertp
