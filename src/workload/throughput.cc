#include "src/workload/throughput.h"

#include <algorithm>

namespace hypertp {

ThroughputModel ThroughputModel::Redis() {
  ThroughputModel model;
  model.base_rate = 28000.0;  // redis-benchmark GET/SET mix on Xen (Fig. 11).
  model.kvm_multiplier = 1.37;
  model.noise_frac = 0.04;
  return model;
}

ThroughputModel ThroughputModel::Mysql() {
  ThroughputModel model;
  model.base_rate = 1400.0;  // Sysbench OLTP QPS (Fig. 12).
  model.kvm_multiplier = 1.05;
  model.noise_frac = 0.05;
  return model;
}

TimeSeries GenerateThroughput(const ThroughputModel& model, SimDuration total, SimDuration step,
                              const InterferenceSchedule& schedule, bool starts_on_xen, Rng& rng,
                              const std::string& name) {
  TimeSeries series(name);
  for (SimTime t = 0; t < total; t += step) {
    const bool on_xen = starts_on_xen == (schedule.switch_time() < 0 || t < schedule.switch_time());
    const double hv_factor = on_xen ? 1.0 : model.kvm_multiplier;
    const double interference = schedule.FactorAt(t);
    double value = 0.0;
    if (interference > 0.0) {
      const double noise = 1.0 + model.noise_frac * rng.NextGaussian();
      value = std::max(0.0, model.base_rate * hv_factor * interference * noise);
    }
    series.Add(t, value);
  }
  return series;
}

TimeSeries GenerateLatency(const ThroughputModel& model, double base_latency_ms,
                           SimDuration total, SimDuration step,
                           const InterferenceSchedule& schedule, bool starts_on_xen, Rng& rng,
                           const std::string& name) {
  TimeSeries series(name);
  for (SimTime t = 0; t < total; t += step) {
    const bool on_xen = starts_on_xen == (schedule.switch_time() < 0 || t < schedule.switch_time());
    const double hv_factor = on_xen ? 1.0 : model.kvm_multiplier;
    const double interference = schedule.FactorAt(t);
    double value = 0.0;  // Paused: the injector records no completed request.
    if (interference > 0.0) {
      const double noise = 1.0 + model.noise_frac * rng.NextGaussian();
      value = std::max(0.05, base_latency_ms / (hv_factor * interference) * noise);
    }
    series.Add(t, value);
  }
  return series;
}

}  // namespace hypertp
