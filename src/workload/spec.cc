#include "src/workload/spec.h"

#include <algorithm>
#include <cmath>

#include "src/sim/rng.h"

namespace hypertp {
namespace {

// Table 5's KVM/Xen columns.
constexpr SpecBenchmark kSuite[] = {
    {"perlbench", 474.31, 477.39}, {"gcc", 345.92, 346.24},
    {"bwaves", 943.96, 941.36},    {"mcf", 466.78, 465.83},
    {"cactuBSSN", 323.78, 325.74}, {"namd", 308.77, 310.58},
    {"parest", 663.50, 666.87},    {"povray", 558.38, 550.73},
    {"lbm", 308.55, 306.27},       {"omnetpp", 557.65, 560.94},
    {"wrf", 650.81, 686.62},       {"xalancbmk", 496.66, 488.86},
    {"x264", 630.68, 634.67},      {"blender", 457.93, 456.97},
    {"cam4", 539.63, 569.20},      {"deepsjeng", 456.65, 457.75},
    {"imagick", 707.99, 712.16},   {"leela", 738.87, 741.29},
    {"nab", 554.47, 570.73},       {"exchange2", 580.84, 578.83},
    {"fotonik3d", 405.29, 398.53}, {"roms", 432.87, 442.74},
    {"xz", 530.10, 527.98},
};

}  // namespace

std::span<const SpecBenchmark> SpecRate2017() { return kSuite; }

std::vector<SpecRunResult> RunSpecSuite(SpecScenario scenario,
                                        const TransplantReport* inplace_report,
                                        const MigrationResult* migration_result, uint64_t seed) {
  std::vector<SpecRunResult> results;
  results.reserve(std::size(kSuite));
  Rng rng(seed ^ 0x53504543);  // "SPEC".

  for (const SpecBenchmark& bench : kSuite) {
    SpecRunResult run;
    run.name = bench.name;
    // Per-run measurement jitter, as any real testbed shows (±~1%; the paper's
    // per-benchmark degradation spread is dominated by exactly this noise).
    const double jitter = 1.0 + 0.012 * rng.NextGaussian();

    switch (scenario) {
      case SpecScenario::kPureXen:
        run.seconds = bench.xen_seconds * jitter;
        break;
      case SpecScenario::kPureKvm:
        run.seconds = bench.kvm_seconds * jitter;
        break;
      case SpecScenario::kInPlaceTp: {
        // Half the work executes at Xen speed, then the VM pauses for the
        // transplant downtime, then the rest runs at KVM speed. SPEC is
        // CPU-only: the network gap does not extend the pause (§5.2).
        const double downtime =
            inplace_report != nullptr ? ToSeconds(inplace_report->downtime) : 1.7;
        run.seconds = (0.5 * bench.xen_seconds + 0.5 * bench.kvm_seconds + downtime) * jitter;
        break;
      }
      case SpecScenario::kMigrationTp: {
        // Pre-copy dirty tracking and page copying shave a few percent off
        // the source-side half; the downtime itself is milliseconds.
        const double precopy = migration_result != nullptr
                                   ? ToSeconds(migration_result->total_time -
                                               migration_result->downtime)
                                   : 76.0;
        const double downtime =
            migration_result != nullptr ? ToSeconds(migration_result->downtime) : 0.005;
        constexpr double kPrecopyOverhead = 0.03;  // 3% slowdown while copying.
        run.seconds = (0.5 * bench.xen_seconds + 0.5 * bench.kvm_seconds +
                       precopy * kPrecopyOverhead + downtime) *
                      jitter;
        break;
      }
    }

    if (scenario == SpecScenario::kInPlaceTp || scenario == SpecScenario::kMigrationTp) {
      const double vs_xen = (run.seconds - bench.xen_seconds) / bench.xen_seconds;
      const double vs_kvm = (run.seconds - bench.kvm_seconds) / bench.kvm_seconds;
      run.degradation_pct = std::max(vs_xen, vs_kvm) * 100.0;
    }
    results.push_back(std::move(run));
  }
  return results;
}

double MaxDegradationPct(const std::vector<SpecRunResult>& results) {
  double max_deg = 0.0;
  for (const SpecRunResult& r : results) {
    max_deg = std::max(max_deg, r.degradation_pct);
  }
  return max_deg;
}

}  // namespace hypertp
