// Darknet-style neural-network training workload (paper Table 6).
//
// 100 fixed-cost training iterations (MNIST-sized). A transplant or
// migration in the middle stretches the iteration it lands in: InPlaceTP
// adds its full downtime to one iteration; MigrationTP adds its (tiny)
// downtime plus pre-copy overhead spread over the copy window.

#ifndef HYPERTP_SRC_WORKLOAD_DARKNET_H_
#define HYPERTP_SRC_WORKLOAD_DARKNET_H_

#include <vector>

#include "src/core/report.h"
#include "src/migrate/migrate.h"
#include "src/workload/interference.h"

namespace hypertp {

struct DarknetConfig {
  int iterations = 100;
  double base_iteration_seconds = 2.044;  // Table 6 "Default".
  double noise_frac = 0.01;
  uint64_t seed = 7;
};

struct DarknetRun {
  std::vector<double> iteration_seconds;

  double average() const;
  double longest() const;
  double total() const;
};

// Runs the training loop under an interference schedule (empty schedule =
// the "Default" row of Table 6). Iterations advance work only while the
// interference factor is positive; a pause stretches the current iteration.
DarknetRun RunDarknetTraining(const DarknetConfig& config,
                              const InterferenceSchedule& schedule);

}  // namespace hypertp

#endif  // HYPERTP_SRC_WORKLOAD_DARKNET_H_
