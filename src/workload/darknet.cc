#include "src/workload/darknet.h"

#include <algorithm>

#include "src/sim/rng.h"

namespace hypertp {

double DarknetRun::average() const {
  if (iteration_seconds.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : iteration_seconds) {
    sum += s;
  }
  return sum / static_cast<double>(iteration_seconds.size());
}

double DarknetRun::longest() const {
  return iteration_seconds.empty()
             ? 0.0
             : *std::max_element(iteration_seconds.begin(), iteration_seconds.end());
}

double DarknetRun::total() const {
  double sum = 0.0;
  for (double s : iteration_seconds) {
    sum += s;
  }
  return sum;
}

DarknetRun RunDarknetTraining(const DarknetConfig& config,
                              const InterferenceSchedule& schedule) {
  DarknetRun run;
  run.iteration_seconds.reserve(static_cast<size_t>(config.iterations));
  Rng rng(config.seed ^ 0x4441524Bull);  // "DARK".

  constexpr SimDuration kStep = Millis(10);
  SimTime now = 0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const double work_needed =
        config.base_iteration_seconds * (1.0 + config.noise_frac * rng.NextGaussian());
    const SimTime started = now;
    double work_done = 0.0;
    while (work_done < work_needed) {
      // Work advances at the current interference factor: zero while paused,
      // fractional during pre-copy.
      work_done += schedule.FactorAt(now) * ToSeconds(kStep);
      now += kStep;
    }
    run.iteration_seconds.push_back(ToSeconds(now - started));
  }
  return run;
}

}  // namespace hypertp
