#include "src/workload/interference.h"

#include <algorithm>

namespace hypertp {

void InterferenceSchedule::AddInterval(SimTime start, SimTime end, double factor) {
  intervals_.push_back(Interval{start, end, factor});
}

double InterferenceSchedule::FactorAt(SimTime t) const {
  double factor = 1.0;
  for (const Interval& interval : intervals_) {
    if (t >= interval.start && t < interval.end) {
      factor = std::min(factor, interval.factor);
    }
  }
  return factor;
}

InterferenceSchedule InterferenceSchedule::ForInPlace(const TransplantReport& report,
                                                      SimTime trigger, bool network_sensitive) {
  InterferenceSchedule schedule;
  // Preparation (PRAM build, device prep) runs with guests live; a small
  // contention factor models the host-side copy threads.
  schedule.AddInterval(trigger, trigger + report.phases.pram, 0.95);
  const SimTime pause_start = trigger + report.phases.pram;
  schedule.AddPause(pause_start, pause_start + report.downtime);
  if (network_sensitive) {
    schedule.AddPause(pause_start, pause_start + report.network_downtime);
  }
  schedule.set_switch_time(pause_start + report.downtime);
  return schedule;
}

InterferenceSchedule InterferenceSchedule::ForMigration(const MigrationResult& result,
                                                        SimTime trigger, double precopy_factor) {
  InterferenceSchedule schedule;
  const SimDuration precopy = result.total_time - result.downtime;
  schedule.AddInterval(trigger, trigger + precopy, precopy_factor);
  schedule.AddPause(trigger + precopy, trigger + precopy + result.downtime);
  schedule.set_switch_time(trigger + result.total_time);
  return schedule;
}

InterferenceSchedule InterferenceSchedule::ForPostcopyMigration(const MigrationResult& result,
                                                                SimTime trigger,
                                                                double fault_factor) {
  InterferenceSchedule schedule;
  schedule.AddPause(trigger, trigger + result.downtime);
  schedule.AddInterval(trigger + result.downtime,
                       trigger + result.downtime + result.postcopy_fault_window, fault_factor);
  schedule.set_switch_time(trigger + result.downtime);
  return schedule;
}

}  // namespace hypertp
