// Throughput/latency workload generators: the Redis and MySQL guests of the
// paper's §5.3 macro evaluation.
//
// A workload has a base rate on Xen, a multiplier on KVM (the two hypervisors
// genuinely serve these workloads differently — Fig. 11 shows Redis gaining
// ~37% after landing on KVM), multiplicative Gaussian noise, and reacts to an
// InterferenceSchedule.

#ifndef HYPERTP_SRC_WORKLOAD_THROUGHPUT_H_
#define HYPERTP_SRC_WORKLOAD_THROUGHPUT_H_

#include "src/sim/rng.h"
#include "src/sim/time_series.h"
#include "src/workload/interference.h"

namespace hypertp {

struct ThroughputModel {
  double base_rate = 1000.0;    // Metric units/s on Xen.
  double kvm_multiplier = 1.0;  // Relative performance on KVM.
  double noise_frac = 0.02;     // Gaussian noise fraction.

  // redis-benchmark against an in-memory KV store: ~28 kQPS on Xen,
  // +37% on KVM (Fig. 11), noisy.
  static ThroughputModel Redis();
  // Sysbench OLTP against MySQL: ~1.4 kQPS, near-parity across hypervisors.
  static ThroughputModel Mysql();
};

// Samples the workload's throughput every `step` for `total`, applying the
// interference schedule and switching to the KVM multiplier at
// schedule.switch_time() when `starts_on_xen` (and vice versa).
TimeSeries GenerateThroughput(const ThroughputModel& model, SimDuration total, SimDuration step,
                              const InterferenceSchedule& schedule, bool starts_on_xen, Rng& rng,
                              const std::string& name);

// Latency view of the same model: base latency divided by the current
// throughput factor (a saturated injector: half throughput = double
// latency), infinite (reported as 0 samples skipped -> max clamp) while
// paused. Latency is in milliseconds.
TimeSeries GenerateLatency(const ThroughputModel& model, double base_latency_ms,
                           SimDuration total, SimDuration step,
                           const InterferenceSchedule& schedule, bool starts_on_xen, Rng& rng,
                           const std::string& name);

}  // namespace hypertp

#endif  // HYPERTP_SRC_WORKLOAD_THROUGHPUT_H_
