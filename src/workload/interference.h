// Interference schedules: how a transplant/migration event shapes a guest
// workload's performance over time.
//
// A schedule is a set of intervals with a throughput factor: 0 while the VM
// is paused, a degradation factor (< 1) during pre-copy, 1 otherwise. The
// factory functions derive the intervals from a TransplantReport or a
// MigrationResult, so the Fig. 11/12 timelines are shaped by the same
// numbers the transplant engines computed.

#ifndef HYPERTP_SRC_WORKLOAD_INTERFERENCE_H_
#define HYPERTP_SRC_WORKLOAD_INTERFERENCE_H_

#include <vector>

#include "src/core/report.h"
#include "src/migrate/migrate.h"
#include "src/sim/time.h"

namespace hypertp {

class InterferenceSchedule {
 public:
  // Intervals may overlap; the lowest factor wins.
  void AddInterval(SimTime start, SimTime end, double factor);
  void AddPause(SimTime start, SimTime end) { AddInterval(start, end, 0.0); }

  // Throughput factor at `t` (1.0 when unaffected).
  double FactorAt(SimTime t) const;

  // Time at which the VM switches hypervisors (performance profile changes);
  // -1 when no switch happens.
  SimTime switch_time() const { return switch_time_; }
  void set_switch_time(SimTime t) { switch_time_ = t; }

  // An InPlaceTP triggered at `trigger`: guests run during preparation, then
  // pause for the downtime. Network-sensitive workloads stay down until the
  // NIC is back (report.network_downtime).
  static InterferenceSchedule ForInPlace(const TransplantReport& report, SimTime trigger,
                                         bool network_sensitive);

  // A MigrationTP (or classic live migration) triggered at `trigger`:
  // degraded to `precopy_factor` during the pre-copy rounds, paused for the
  // downtime, then running on the destination.
  static InterferenceSchedule ForMigration(const MigrationResult& result, SimTime trigger,
                                           double precopy_factor);

  // A post-copy migration: a near-instant pause, then execution continues on
  // the destination degraded to `fault_factor` while the working set faults
  // in over the link (result.postcopy_fault_window).
  static InterferenceSchedule ForPostcopyMigration(const MigrationResult& result,
                                                   SimTime trigger, double fault_factor);

 private:
  struct Interval {
    SimTime start;
    SimTime end;
    double factor;
  };
  std::vector<Interval> intervals_;
  SimTime switch_time_ = -1;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_WORKLOAD_INTERFERENCE_H_
