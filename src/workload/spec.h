// SPECrate 2017-style CPU workload suite (paper Table 5).
//
// The 23 kernels' native execution times on KVM and Xen are embedded from
// the paper's measurements; a run under a transplant scenario splits the
// work across the two hypervisors (each at its own speed), adds the pause,
// and reports the paper's degradation metric:
//   deg = max((T - T_xen)/T_xen, (T - T_kvm)/T_kvm).

#ifndef HYPERTP_SRC_WORKLOAD_SPEC_H_
#define HYPERTP_SRC_WORKLOAD_SPEC_H_

#include <span>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/migrate/migrate.h"

namespace hypertp {

struct SpecBenchmark {
  const char* name;
  double kvm_seconds;  // Native execution time on KVM (Table 5).
  double xen_seconds;  // Native execution time on Xen (Table 5).
};

// The 23 SPECrate 2017 int+fp kernels with the paper's native times.
std::span<const SpecBenchmark> SpecRate2017();

enum class SpecScenario {
  kPureXen,      // Entire run on Xen.
  kPureKvm,      // Entire run on KVM.
  kInPlaceTp,    // Xen -> KVM in-place transplant at mid-run.
  kMigrationTp,  // Xen -> KVM migration transplant at mid-run.
};

struct SpecRunResult {
  std::string name;
  double seconds = 0.0;
  // Paper's metric; 0 for the pure runs.
  double degradation_pct = 0.0;
};

// Runs the whole suite under `scenario`. For the transplant scenarios the
// corresponding report supplies the timing (downtime / pre-copy length).
// `seed` feeds the per-benchmark measurement jitter.
std::vector<SpecRunResult> RunSpecSuite(SpecScenario scenario,
                                        const TransplantReport* inplace_report,
                                        const MigrationResult* migration_result, uint64_t seed);

// Largest degradation across the suite (paper: 4.19% InPlaceTP, 4.81%
// MigrationTP).
double MaxDegradationPct(const std::vector<SpecRunResult>& results);

}  // namespace hypertp

#endif  // HYPERTP_SRC_WORKLOAD_SPEC_H_
