#include "src/pipeline/pretranslate.h"

#include <algorithm>
#include <functional>
#include <span>
#include <utility>

#include "src/base/bytes.h"
#include "src/pipeline/conversion.h"

namespace hypertp {
namespace pipeline {

const PreTranslatedVm* PreTranslationCache::Find(uint64_t vm_uid) const {
  for (const PreTranslatedVm& vm : vms) {
    if (vm.vm_uid == vm_uid) {
      return &vm;
    }
  }
  return nullptr;
}

Result<WorkSchedule> PreTranslateVms(Hypervisor& source, const HostCostProfile& costs,
                                     const std::vector<PreTranslateRequest>& requests,
                                     int workers, int real_threads,
                                     PreTranslationCache* cache,
                                     PhysicalMemory* park_memory) {
  cache->vms.clear();
  cache->vms.reserve(requests.size());
  std::vector<SimDuration> stage_costs;
  stage_costs.reserve(requests.size());

  for (const PreTranslateRequest& req : requests) {
    // SaveVmToUisr requires a paused VM; micro-pause just this one while the
    // rest of the fleet keeps running. Pause/save/resume do not move the
    // state generation, so the snapshot taken here stays valid until the
    // guest itself runs again.
    HYPERTP_ASSIGN_OR_RETURN(VmInfo info, source.GetVmInfo(req.id));
    const bool was_running = info.run_state == VmRunState::kRunning;
    if (was_running) {
      HYPERTP_RETURN_IF_ERROR(source.PauseVm(req.id));
    }
    Result<uint64_t> generation = source.StateGeneration(req.id);
    FixupLog fixups;
    Result<UisrVm> state = ExtractVmState(source, req.id, &fixups);
    // Resume before propagating any failure — the transplant's abort path
    // has not recorded this VM as paused yet.
    if (was_running) {
      HYPERTP_RETURN_IF_ERROR(source.ResumeVm(req.id));
    }
    HYPERTP_RETURN_IF_ERROR(generation);
    HYPERTP_RETURN_IF_ERROR(state);

    PreTranslatedVm entry;
    entry.vm_uid = req.vm_uid;
    entry.generation = *generation;
    entry.state = std::move(*state);
    entry.state.memory.pram_file_id = req.pram_file_id;
    entry.fixups = std::move(fixups);
    cache->vms.push_back(std::move(entry));
    stage_costs.push_back(TranslateStageCost(costs, req.vcpus, req.memory_bytes));
  }

  // Wire-encode the snapshots (and record their section-offset tables) on
  // real pool threads. Each task writes only its own cache slot; bytes are
  // independent of the thread count.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(cache->vms.size());
  for (size_t i = 0; i < cache->vms.size(); ++i) {
    tasks.push_back([cache, i] {
      PreTranslatedVm& entry = cache->vms[i];
      entry.blob = EncodeUisrVm(entry.state, &entry.layout);
    });
  }
  RunOnWorkerPool(tasks, real_threads);

  // Park the blobs in kUisr frames now, while guests still run. Serial and
  // in request order — the same allocation order/sizes a pause-time store
  // would perform, so the frame layout (and thus PRAM metadata) is identical
  // whether a blob is adopted from its parking spot or stored at pause time.
  if (park_memory != nullptr) {
    for (PreTranslatedVm& entry : cache->vms) {
      HYPERTP_ASSIGN_OR_RETURN(entry.parked,
                               ParkUisrBlob(*park_memory, entry.vm_uid, entry.blob));
    }
  }

  return ScheduleWork(stage_costs, workers);
}

Result<ReconcileResult> ReconcilePreTranslated(const PreTranslatedVm& cached,
                                               const UisrVm& fresh, Arena* scratch) {
  Arena local_scratch;
  Arena& arena = scratch != nullptr ? *scratch : local_scratch;

  ReconcileResult out;
  for (const UisrSectionSpan& span : cached.layout.sections) {
    out.total_payload_bytes += span.payload_size;
  }

  // The cached layout only maps onto `fresh` if the section sequence is the
  // same: emit order is header, vcpus, ioapic, pit, devices.
  const bool structure_matches = fresh.vcpus.size() == cached.state.vcpus.size() &&
                                 fresh.devices.size() == cached.state.devices.size();
  if (!structure_matches) {
    out.kind = ReconcileKind::kReencoded;
    out.blob = EncodeUisrVm(fresh);
    out.patched_bytes = out.total_payload_bytes;
    return out;
  }

  // Compare each section's freshly encoded payload against the cached bytes
  // and rewrite only the ones that differ. Patching every differing section
  // with the fresh payload makes the result byte-identical to a from-scratch
  // EncodeUisrVm(fresh) — same sections, same order, same lengths — once the
  // CRC trailer is resealed. Scratch payloads come out of the arena (sized
  // first, encoded second), so a whole batch of VMs reconciles without a
  // heap allocation per section.
  std::vector<uint8_t> blob = cached.blob;
  size_t ordinal_vcpu = 0;
  size_t ordinal_device = 0;
  for (const UisrSectionSpan& span : cached.layout.sections) {
    size_t ordinal = 0;
    if (span.type == UisrSectionType::kVcpu) {
      ordinal = ordinal_vcpu++;
    } else if (span.type == UisrSectionType::kDevice) {
      ordinal = ordinal_device++;
    }
    if (UisrSectionPayloadSize(fresh, span.type, ordinal) != span.payload_size) {
      // A section changed size (e.g. device opaque state grew): the TLV
      // lengths shift, so patching in place is impossible. The size check is
      // pure counting — no payload was encoded for the doomed comparison.
      out.kind = ReconcileKind::kReencoded;
      out.blob = EncodeUisrVm(fresh);
      out.patched_sections = 0;
      out.patched_bytes = out.total_payload_bytes;
      return out;
    }
    std::span<uint8_t> payload = arena.Alloc(span.payload_size);
    SpanWriter payload_writer(payload);
    EncodeUisrSectionPayloadTo(fresh, span.type, ordinal, payload_writer);
    const auto cached_payload =
        std::span<const uint8_t>(blob).subspan(span.payload_offset, span.payload_size);
    if (std::equal(payload.begin(), payload.end(), cached_payload.begin())) {
      continue;
    }
    HYPERTP_RETURN_IF_ERROR(PatchUisrSectionPayload(blob, span, payload));
    ++out.patched_sections;
    out.patched_bytes += span.payload_size;
  }

  if (out.patched_sections == 0) {
    // The generation moved but nothing vCPU-visible reached the UISR (e.g.
    // PV event-channel activity): the cached blob is already correct.
    out.kind = ReconcileKind::kHit;
    out.blob = std::move(blob);
    return out;
  }
  HYPERTP_RETURN_IF_ERROR(ResealUisrBlob(blob));
  out.kind = ReconcileKind::kPatched;
  out.blob = std::move(blob);
  return out;
}

}  // namespace pipeline
}  // namespace hypertp
