// Speculative pre-translation (the platform-state analogue of pre-copy).
//
// While guests still run, PreTranslateVms performs each VM's Extract →
// UisrEncode under a per-VM micro-pause and parks the result in a
// PreTranslationCache keyed by Hypervisor::StateGeneration. At pause time the
// translation phase consults the cache:
//
//   - generation unchanged  -> adopt the cached blob for a small fixed check
//     cost (HostCostProfile::pretranslate_check) instead of a full translate;
//   - generation moved      -> re-extract, then patch only the UISR sections
//     whose payloads actually differ (codec section-offset table) and charge
//     the full translate cost scaled by the dirtied payload fraction.
//
// The cache never changes output bytes: a reconciled blob is byte-identical
// to a from-scratch encode of the fresh extraction (pretranslate_test pins
// this), so pre_translate only moves charged time out of the pause window.

#ifndef HYPERTP_SRC_PIPELINE_PRETRANSLATE_H_
#define HYPERTP_SRC_PIPELINE_PRETRANSLATE_H_

#include <cstdint>
#include <vector>

#include "src/base/arena.h"
#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"
#include "src/sim/worker_pool.h"
#include "src/uisr/codec.h"
#include "src/uisr/records.h"

namespace hypertp {
namespace pipeline {

// One VM's speculative translation, valid while the VM's state generation
// still equals `generation`.
struct PreTranslatedVm {
  uint64_t vm_uid = 0;
  uint64_t generation = 0;
  UisrVm state;                  // As extracted (pram_file_id already set).
  std::vector<uint8_t> blob;     // EncodeUisrVm(state).
  UisrSectionLayout layout;      // Section-offset table of `blob`.
  FixupLog fixups;               // Fixups the speculative extract recorded.

  // Where `blob`'s bytes already sit in PRAM-destined kUisr frames, parked
  // outside the pause window (count == 0 when no park_memory was supplied).
  // On a pause-time generation hit the translation phase only registers the
  // PRAM file over this extent — zero blob bytes move inside the window. A
  // patched blob is rewritten into the same extent; a size-changing
  // invalidation frees it and re-parks. The extent is owned by the transplant
  // (kUisr, vm_uid), so abort/cleanup reclaim it like any other UISR extent.
  FrameExtent parked;
};

// The cache the pause-time translation phase consults. Built once per
// transplant; read-only afterwards.
struct PreTranslationCache {
  std::vector<PreTranslatedVm> vms;

  const PreTranslatedVm* Find(uint64_t vm_uid) const;
};

// What PreTranslateVms needs to know about one VM. `pram_file_id` must be
// the id PrepareVms registered for the VM's guest memory — it is baked into
// the encoded blob's header, so pre-translation has to run after PRAM
// construction.
struct PreTranslateRequest {
  VmId id = 0;
  uint64_t vm_uid = 0;
  uint64_t pram_file_id = 0;
  uint32_t vcpus = 0;
  uint64_t memory_bytes = 0;
};

// Extracts and encodes every requested VM while the fleet runs: each VM is
// individually micro-paused for its extract (SaveVmToUisr requires kPaused)
// and resumed immediately — generations do not move across pause/resume/save,
// so the snapshot stays valid until the guest really runs again. Encodes run
// on up to `real_threads` OS threads (wall-clock only). The returned schedule
// lays one full TranslateStageCost per VM over `workers` modeled workers;
// the caller charges its makespan outside the pause window.
//
// With a non-null `park_memory`, each encoded blob is additionally parked in
// a freshly allocated kUisr extent there (serially, in request order — the
// same order/sizes the pause-time store would use, so frame layout matches
// the legacy path). A pause-time generation hit then registers the PRAM file
// over the parked extent instead of copying the blob inside the window.
Result<WorkSchedule> PreTranslateVms(Hypervisor& source, const HostCostProfile& costs,
                                     const std::vector<PreTranslateRequest>& requests,
                                     int workers, int real_threads,
                                     PreTranslationCache* cache,
                                     PhysicalMemory* park_memory = nullptr);

// How one VM's pause-time translation was satisfied.
enum class ReconcileKind : uint8_t {
  kHit = 0,        // No section payload differed; cached blob adopted as-is.
  kPatched = 1,    // Some sections differed; patched in place + resealed.
  kReencoded = 2,  // Structural change (section count/size); full re-encode.
};

struct ReconcileResult {
  ReconcileKind kind = ReconcileKind::kReencoded;
  std::vector<uint8_t> blob;
  size_t patched_sections = 0;
  size_t patched_bytes = 0;      // Payload bytes rewritten (kPatched only).
  size_t total_payload_bytes = 0;
};

// Produces the wire blob for `fresh` given the (invalidated) cached entry:
// patches only the sections whose payloads differ when the section structure
// still matches, otherwise re-encodes from scratch. The returned blob is
// byte-identical to EncodeUisrVm(fresh) either way.
//
// Per-section scratch payloads are bump-allocated from `scratch` when given
// (Reset() between VMs is the caller's job) so a batch reconcile reuses one
// arena instead of allocating a vector per section; with nullptr an internal
// arena is used.
Result<ReconcileResult> ReconcilePreTranslated(const PreTranslatedVm& cached,
                                               const UisrVm& fresh, Arena* scratch = nullptr);

}  // namespace pipeline
}  // namespace hypertp

#endif  // HYPERTP_SRC_PIPELINE_PRETRANSLATE_H_
