// Shared per-VM conversion pipeline (paper §3.1 steps 2/4, §3.4 parallelism).
//
//   save side:     Extract ──► UisrEncode ──► PramStore
//   restore side:  PramLoad ──► UisrDecode ──► Restore
//
// Every mechanism that converts VM state — InPlaceTransplant, the migration
// engine's stop-and-copy (and MigrationTP above it), checkpointing — calls
// these stage functions, so the conversion logic exists exactly once and a
// given VM produces byte-identical UISR blobs whichever mechanism touches it
// (pipeline_test pins this).
//
// Threading contract: EncodeVmStates and DecodeVmStates are pure (no
// Hypervisor, no PhysicalMemory, no globals) and may run on real OS threads
// via RunOnWorkerPool — each slot of the pre-sized output vector is written
// by exactly one task. Extract/Store/Load/Restore touch shared simulator
// state and always run on the calling thread. Real-thread count never
// affects any output byte; only the modeled WorkSchedule decides charged
// durations.

#ifndef HYPERTP_SRC_PIPELINE_CONVERSION_H_
#define HYPERTP_SRC_PIPELINE_CONVERSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"
#include "src/pram/pram.h"
#include "src/sim/time.h"
#include "src/uisr/records.h"

namespace hypertp {
namespace pipeline {

// --- Cost models (HostCostProfile units; one place instead of three). ------

// PRAM construction for one VM: P2M/memslot walk + page-entry emission.
SimDuration PramStageCost(const HostCostProfile& costs, uint64_t memory_bytes);
// Extract + encode of one VM's platform/device state (the translation phase).
SimDuration TranslateStageCost(const HostCostProfile& costs, uint32_t vcpus,
                               uint64_t memory_bytes);
// Decode + relink of one VM under `target`. Xen's xl/libxl domain creation is
// heavier than kvmtool's, hence the kind-dependent factor (paper Table 4).
SimDuration RestoreStageCost(const HostCostProfile& costs, HypervisorKind target,
                             uint32_t vcpus, uint64_t memory_bytes);

// --- Save side. ------------------------------------------------------------

// Extract: VM_i State -> UisrVm through the source hypervisor's adapter.
// The VM must be paused. Serial stage (talks to the hypervisor).
Result<UisrVm> ExtractVmState(Hypervisor& hv, VmId id, FixupLog* fixups);

// UisrEncode: wire-encode a batch of extracted VMs. Pure; runs the per-VM
// encodes on up to `threads` real OS threads. Output order == input order,
// bytes independent of `threads`.
std::vector<std::vector<uint8_t>> EncodeVmStates(const std::vector<UisrVm>& vms, int threads);

// PramStore: park one encoded blob in fresh kUisr frames and register it as
// the PRAM file "uisr:<vm_uid>" so it survives the micro-reboot. Serial
// stage (allocates from PhysicalMemory).
//
// This is the legacy blob path: the caller already holds the bytes in a
// vector (pre-translation cache adoption, migration's wire copy, tests) and
// they are copied into a contiguous backed extent. The hot save path avoids
// materializing the vector at all — see EncodeVmStatesIntoPram.
struct StoredUisrBlob {
  FrameExtent frames;
  uint64_t file_id = 0;
  uint64_t bytes = 0;  // Encoded blob size (file size_bytes).
};
Result<StoredUisrBlob> StoreUisrBlob(PhysicalMemory& memory, PramBuilder& builder,
                                     uint64_t vm_uid, std::span<const uint8_t> blob);

// Zero-copy PramStore: registers "uisr:<vm.vm_uid>" and encodes the VM's
// wire bytes straight into a pre-sized, contiguously backed kUisr extent via
// a PramFrameWriter — no intermediate vector, no page-by-page copy. Frame
// allocation and file registration are serial and happen in exactly the
// order/sizes of the legacy path, so PRAM metadata and frame layout are
// byte-identical to StoreUisrBlob(EncodeUisrVm(vm)).
Result<StoredUisrBlob> EncodeUisrVmIntoPram(PhysicalMemory& memory, PramBuilder& builder,
                                            const UisrVm& vm);

// Batched zero-copy PramStore: allocates and registers every VM's extent
// serially (in `vms` order), then runs the encodes on up to `threads` real
// OS threads — each task writes only its own pre-mapped extent, so the
// fan-out is data-race-free and the bytes are independent of `threads`.
Result<std::vector<StoredUisrBlob>> EncodeVmStatesIntoPram(PhysicalMemory& memory,
                                                           PramBuilder& builder,
                                                           const std::vector<UisrVm>& vms,
                                                           int threads);

// Split PramStore for speculative pre-translation. ParkUisrBlob performs the
// allocate-and-fill half outside the pause window (no PRAM registration — at
// park time there may not even be a builder yet); RegisterParkedBlob performs
// the registration half inside it, moving zero blob bytes. RewriteParkedBlob
// refills a parked extent with a same-size patched blob.
// StoreUisrBlob == ParkUisrBlob + RegisterParkedBlob, and the extent/entry
// layout is identical.
Result<FrameExtent> ParkUisrBlob(PhysicalMemory& memory, uint64_t vm_uid,
                                 std::span<const uint8_t> blob);
Result<StoredUisrBlob> RegisterParkedBlob(PramBuilder& builder, uint64_t vm_uid,
                                          const FrameExtent& parked, uint64_t bytes);
Result<void> RewriteParkedBlob(PhysicalMemory& memory, const FrameExtent& parked,
                               std::span<const uint8_t> blob);

// --- Restore side. ---------------------------------------------------------

// PramLoad: reassemble one parked UISR blob from its in-RAM pages. Serial
// stage (reads PhysicalMemory). Fallback for blobs whose frames are not
// contiguously backed; the zero-copy restore prefers ViewUisrBlob.
Result<std::vector<uint8_t>> LoadUisrBlob(const PhysicalMemory& memory, const PramFile& file);

// Zero-copy PramLoad: a borrowed view of the parked blob when its entries
// form one contiguous frame run with contiguous backing (which everything
// stored through StoreUisrBlob / EncodeUisrVmIntoPram has). kNotFound when
// the file needs page-wise reassembly; the view is invalidated by freeing or
// re-backing the extent.
Result<std::span<const uint8_t>> ViewUisrBlob(const PhysicalMemory& memory,
                                              const PramFile& file);

// UisrDecode: decode a batch of blobs. Pure; runs on up to `threads` real OS
// threads. Output order == input order; per-blob errors come back in place
// so the caller reports the first failure in input order, exactly as a
// serial loop would. The span form is the zero-copy restore path (views
// straight into PRAM frames); the vector form copies nothing either, it just
// borrows from the vectors.
std::vector<Result<UisrVm>> DecodeVmStates(const std::vector<std::span<const uint8_t>>& blobs,
                                           int threads);
std::vector<Result<UisrVm>> DecodeVmStates(const std::vector<std::vector<uint8_t>>& blobs,
                                           int threads);

// Restore: UisrVm -> a new (paused) VM under `hv`. Serial stage.
Result<VmId> RestoreVmState(Hypervisor& hv, const UisrVm& uisr,
                            const GuestMemoryBinding& binding, FixupLog* fixups);

// --- Wire round-trip (migration stop-and-copy). ----------------------------

// UisrEncode + UisrDecode through one scratch buffer: what the source and
// destination proxies do to a VM_i State on the wire. Decodes straight from
// the encoder's buffer — no parked intermediate blob. On success
// `*encoded_bytes` (if non-null) holds the wire size.
Result<UisrVm> RoundTripVmState(const UisrVm& uisr, uint64_t* encoded_bytes);

}  // namespace pipeline
}  // namespace hypertp

#endif  // HYPERTP_SRC_PIPELINE_CONVERSION_H_
