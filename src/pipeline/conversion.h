// Shared per-VM conversion pipeline (paper §3.1 steps 2/4, §3.4 parallelism).
//
//   save side:     Extract ──► UisrEncode ──► PramStore
//   restore side:  PramLoad ──► UisrDecode ──► Restore
//
// Every mechanism that converts VM state — InPlaceTransplant, the migration
// engine's stop-and-copy (and MigrationTP above it), checkpointing — calls
// these stage functions, so the conversion logic exists exactly once and a
// given VM produces byte-identical UISR blobs whichever mechanism touches it
// (pipeline_test pins this).
//
// Threading contract: EncodeVmStates and DecodeVmStates are pure (no
// Hypervisor, no PhysicalMemory, no globals) and may run on real OS threads
// via RunOnWorkerPool — each slot of the pre-sized output vector is written
// by exactly one task. Extract/Store/Load/Restore touch shared simulator
// state and always run on the calling thread. Real-thread count never
// affects any output byte; only the modeled WorkSchedule decides charged
// durations.

#ifndef HYPERTP_SRC_PIPELINE_CONVERSION_H_
#define HYPERTP_SRC_PIPELINE_CONVERSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/hw/machine.h"
#include "src/pram/pram.h"
#include "src/sim/time.h"
#include "src/uisr/records.h"

namespace hypertp {
namespace pipeline {

// --- Cost models (HostCostProfile units; one place instead of three). ------

// PRAM construction for one VM: P2M/memslot walk + page-entry emission.
SimDuration PramStageCost(const HostCostProfile& costs, uint64_t memory_bytes);
// Extract + encode of one VM's platform/device state (the translation phase).
SimDuration TranslateStageCost(const HostCostProfile& costs, uint32_t vcpus,
                               uint64_t memory_bytes);
// Decode + relink of one VM under `target`. Xen's xl/libxl domain creation is
// heavier than kvmtool's, hence the kind-dependent factor (paper Table 4).
SimDuration RestoreStageCost(const HostCostProfile& costs, HypervisorKind target,
                             uint32_t vcpus, uint64_t memory_bytes);

// --- Save side. ------------------------------------------------------------

// Extract: VM_i State -> UisrVm through the source hypervisor's adapter.
// The VM must be paused. Serial stage (talks to the hypervisor).
Result<UisrVm> ExtractVmState(Hypervisor& hv, VmId id, FixupLog* fixups);

// UisrEncode: wire-encode a batch of extracted VMs. Pure; runs the per-VM
// encodes on up to `threads` real OS threads. Output order == input order,
// bytes independent of `threads`.
std::vector<std::vector<uint8_t>> EncodeVmStates(const std::vector<UisrVm>& vms, int threads);

// PramStore: park one encoded blob in fresh kUisr frames and register it as
// the PRAM file "uisr:<vm_uid>" so it survives the micro-reboot. Serial
// stage (allocates from PhysicalMemory).
struct StoredUisrBlob {
  FrameExtent frames;
  uint64_t file_id = 0;
};
Result<StoredUisrBlob> StoreUisrBlob(PhysicalMemory& memory, PramBuilder& builder,
                                     uint64_t vm_uid, std::span<const uint8_t> blob);

// --- Restore side. ---------------------------------------------------------

// PramLoad: reassemble one parked UISR blob from its in-RAM pages. Serial
// stage (reads PhysicalMemory).
Result<std::vector<uint8_t>> LoadUisrBlob(const PhysicalMemory& memory, const PramFile& file);

// UisrDecode: decode a batch of blobs. Pure; runs on up to `threads` real OS
// threads. Output order == input order; per-blob errors come back in place
// so the caller reports the first failure in input order, exactly as a
// serial loop would.
std::vector<Result<UisrVm>> DecodeVmStates(const std::vector<std::vector<uint8_t>>& blobs,
                                           int threads);

// Restore: UisrVm -> a new (paused) VM under `hv`. Serial stage.
Result<VmId> RestoreVmState(Hypervisor& hv, const UisrVm& uisr,
                            const GuestMemoryBinding& binding, FixupLog* fixups);

// --- Wire round-trip (migration stop-and-copy). ----------------------------

// UisrEncode + UisrDecode through one scratch buffer: what the source and
// destination proxies do to a VM_i State on the wire. Decodes straight from
// the encoder's buffer — no parked intermediate blob. On success
// `*encoded_bytes` (if non-null) holds the wire size.
Result<UisrVm> RoundTripVmState(const UisrVm& uisr, uint64_t* encoded_bytes);

}  // namespace pipeline
}  // namespace hypertp

#endif  // HYPERTP_SRC_PIPELINE_CONVERSION_H_
