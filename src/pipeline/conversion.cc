#include "src/pipeline/conversion.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "src/base/bytes.h"
#include "src/sim/worker_pool.h"
#include "src/uisr/codec.h"

namespace hypertp {
namespace pipeline {
namespace {

double ToGiB(uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(1ull << 30); }

SimDuration ScalePerGb(SimDuration per_gb, uint64_t bytes) {
  return static_cast<SimDuration>(static_cast<double>(per_gb) * ToGiB(bytes));
}

}  // namespace

SimDuration PramStageCost(const HostCostProfile& costs, uint64_t memory_bytes) {
  return costs.pram_fixed + ScalePerGb(costs.pram_per_gb, memory_bytes);
}

SimDuration TranslateStageCost(const HostCostProfile& costs, uint32_t vcpus,
                               uint64_t memory_bytes) {
  return costs.translate_per_vm + costs.translate_per_vcpu * static_cast<int>(vcpus) +
         ScalePerGb(costs.translate_per_gb, memory_bytes);
}

SimDuration RestoreStageCost(const HostCostProfile& costs, HypervisorKind target,
                             uint32_t vcpus, uint64_t memory_bytes) {
  SimDuration cost = costs.restore_per_vm + costs.restore_per_vcpu * static_cast<int>(vcpus) +
                     ScalePerGb(costs.restore_per_gb, memory_bytes);
  if (target == HypervisorKind::kXen) {
    cost *= 2;  // xl/libxl domain creation is heavier than kvmtool's.
  }
  return cost;
}

Result<UisrVm> ExtractVmState(Hypervisor& hv, VmId id, FixupLog* fixups) {
  return hv.SaveVmToUisr(id, fixups);
}

std::vector<std::vector<uint8_t>> EncodeVmStates(const std::vector<UisrVm>& vms, int threads) {
  std::vector<std::vector<uint8_t>> blobs(vms.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(vms.size());
  for (size_t i = 0; i < vms.size(); ++i) {
    tasks.push_back([&vms, &blobs, i] { blobs[i] = EncodeUisrVm(vms[i]); });
  }
  RunOnWorkerPool(tasks, threads);
  return blobs;
}

Result<StoredUisrBlob> StoreUisrBlob(PhysicalMemory& memory, PramBuilder& builder,
                                     uint64_t vm_uid, std::span<const uint8_t> blob) {
  const uint64_t frames = (blob.size() + kPageSize - 1) / kPageSize;
  const FrameOwner owner{FrameOwnerKind::kUisr, vm_uid};
  HYPERTP_ASSIGN_OR_RETURN(Mfn base, memory.Alloc(frames, 1, owner));
  std::vector<PramPageEntry> entries;
  entries.reserve(frames);
  for (uint64_t i = 0; i < frames; ++i) {
    const size_t begin = i * kPageSize;
    const size_t end = std::min(begin + kPageSize, blob.size());
    std::vector<uint8_t> page(blob.begin() + static_cast<ptrdiff_t>(begin),
                              blob.begin() + static_cast<ptrdiff_t>(end));
    HYPERTP_RETURN_IF_ERROR(memory.WritePage(base + i, std::move(page)));
    entries.push_back(PramPageEntry{i, base + i, 0});
  }
  HYPERTP_ASSIGN_OR_RETURN(uint64_t file_id,
                           builder.AddFile("uisr:" + std::to_string(vm_uid), blob.size(),
                                           false, entries));
  return StoredUisrBlob{FrameExtent{base, frames, owner}, file_id};
}

Result<std::vector<uint8_t>> LoadUisrBlob(const PhysicalMemory& memory, const PramFile& file) {
  std::vector<uint8_t> blob;
  blob.reserve(file.size_bytes);
  for (const PramPageEntry& e : file.entries) {
    HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> page, memory.ReadPage(e.mfn));
    blob.insert(blob.end(), page.begin(), page.end());
  }
  blob.resize(file.size_bytes);
  return blob;
}

std::vector<Result<UisrVm>> DecodeVmStates(const std::vector<std::vector<uint8_t>>& blobs,
                                           int threads) {
  // Pre-size the output with placeholder errors so each task only ever
  // assigns its own slot (Result<UisrVm> has no default constructor).
  std::vector<Result<UisrVm>> decoded(
      blobs.size(), Result<UisrVm>(InternalError("uisr decode stage did not run")));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    tasks.push_back([&blobs, &decoded, i] { decoded[i] = DecodeUisrVm(blobs[i]); });
  }
  RunOnWorkerPool(tasks, threads);
  return decoded;
}

Result<VmId> RestoreVmState(Hypervisor& hv, const UisrVm& uisr,
                            const GuestMemoryBinding& binding, FixupLog* fixups) {
  return hv.RestoreVmFromUisr(uisr, binding, fixups);
}

Result<UisrVm> RoundTripVmState(const UisrVm& uisr, uint64_t* encoded_bytes) {
  ByteWriter w;
  EncodeUisrVm(uisr, w);
  if (encoded_bytes != nullptr) {
    *encoded_bytes = w.size();
  }
  return DecodeUisrVm(w.bytes());
}

}  // namespace pipeline
}  // namespace hypertp
