#include "src/pipeline/conversion.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "src/base/bytes.h"
#include "src/pram/frame_writer.h"
#include "src/sim/worker_pool.h"
#include "src/uisr/codec.h"

namespace hypertp {
namespace pipeline {
namespace {

// Unit note: despite the `_per_gb` field names, HostCostProfile scales by the
// binary gibibyte (1 GiB = 1 << 30 bytes), not the decimal gigabyte. ToGiB /
// ScalePerGiB spell it out so the cost model can't be mis-tuned by reading
// "gb" as 10^9. See the matching comment on HostCostProfile.
double ToGiB(uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(1ull << 30); }

SimDuration ScalePerGiB(SimDuration per_gib, uint64_t bytes) {
  return static_cast<SimDuration>(static_cast<double>(per_gib) * ToGiB(bytes));
}

}  // namespace

SimDuration PramStageCost(const HostCostProfile& costs, uint64_t memory_bytes) {
  return costs.pram_fixed + ScalePerGiB(costs.pram_per_gb, memory_bytes);
}

SimDuration TranslateStageCost(const HostCostProfile& costs, uint32_t vcpus,
                               uint64_t memory_bytes) {
  return costs.translate_per_vm + costs.translate_per_vcpu * static_cast<int>(vcpus) +
         ScalePerGiB(costs.translate_per_gb, memory_bytes);
}

SimDuration RestoreStageCost(const HostCostProfile& costs, HypervisorKind target,
                             uint32_t vcpus, uint64_t memory_bytes) {
  SimDuration cost = costs.restore_per_vm + costs.restore_per_vcpu * static_cast<int>(vcpus) +
                     ScalePerGiB(costs.restore_per_gb, memory_bytes);
  if (target == HypervisorKind::kXen) {
    cost *= 2;  // xl/libxl domain creation is heavier than kvmtool's.
  }
  return cost;
}

Result<UisrVm> ExtractVmState(Hypervisor& hv, VmId id, FixupLog* fixups) {
  return hv.SaveVmToUisr(id, fixups);
}

std::vector<std::vector<uint8_t>> EncodeVmStates(const std::vector<UisrVm>& vms, int threads) {
  std::vector<std::vector<uint8_t>> blobs(vms.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(vms.size());
  for (size_t i = 0; i < vms.size(); ++i) {
    tasks.push_back([&vms, &blobs, i] { blobs[i] = EncodeUisrVm(vms[i]); });
  }
  RunOnWorkerPool(tasks, threads);
  return blobs;
}

namespace {

// The PRAM entries of a parked blob: per-frame order-0, gfn 0..frames-1.
// (kUisr extents are allocated with alignment 1, so their base is generally
// not 512-aligned and order-9 entries — which AddFile validates as aligned —
// cannot apply. Guest memory files are where 2 MiB entries happen.)
std::vector<PramPageEntry> UisrFileEntries(Mfn base, uint64_t frames) {
  std::vector<PramPageEntry> entries;
  entries.reserve(frames);
  for (uint64_t i = 0; i < frames; ++i) {
    entries.push_back(PramPageEntry{i, base + i, 0});
  }
  return entries;
}

// Serial half of the zero-copy store: allocate + back the extent and register
// the PRAM file. The writer is ready for an encode that must produce exactly
// `encoded_size` bytes.
Result<std::pair<PramFrameWriter, StoredUisrBlob>> OpenUisrFrames(PhysicalMemory& memory,
                                                                 PramBuilder& builder,
                                                                 uint64_t vm_uid,
                                                                 size_t encoded_size) {
  HYPERTP_ASSIGN_OR_RETURN(PramFrameWriter writer,
                           PramFrameWriter::Create(memory, vm_uid, encoded_size));
  const FrameExtent& ext = writer.frames();
  auto file_id = builder.AddFile("uisr:" + std::to_string(vm_uid), encoded_size, false,
                                 UisrFileEntries(ext.base, ext.count));
  if (!file_id.ok()) {
    (void)memory.Free(ext.base, ext.count);
    return file_id.error();
  }
  return std::make_pair(writer, StoredUisrBlob{ext, *file_id, encoded_size});
}

}  // namespace

Result<StoredUisrBlob> StoreUisrBlob(PhysicalMemory& memory, PramBuilder& builder,
                                     uint64_t vm_uid, std::span<const uint8_t> blob) {
  HYPERTP_ASSIGN_OR_RETURN(FrameExtent parked, ParkUisrBlob(memory, vm_uid, blob));
  return RegisterParkedBlob(builder, vm_uid, parked, blob.size());
}

Result<FrameExtent> ParkUisrBlob(PhysicalMemory& memory, uint64_t vm_uid,
                                 std::span<const uint8_t> blob) {
  const uint64_t frames = (blob.size() + kPageSize - 1) / kPageSize;
  const FrameOwner owner{FrameOwnerKind::kUisr, vm_uid};
  HYPERTP_ASSIGN_OR_RETURN(Mfn base, memory.Alloc(frames, 1, owner));
  const FrameExtent parked{base, frames, owner};
  // One contiguous backing + one copy instead of a vector per page; the
  // trailing bytes of the last frame stay zero. ViewUisrBlob can then serve
  // the restore side without reassembly.
  HYPERTP_RETURN_IF_ERROR(RewriteParkedBlob(memory, parked, blob));
  return parked;
}

Result<StoredUisrBlob> RegisterParkedBlob(PramBuilder& builder, uint64_t vm_uid,
                                          const FrameExtent& parked, uint64_t bytes) {
  HYPERTP_ASSIGN_OR_RETURN(uint64_t file_id,
                           builder.AddFile("uisr:" + std::to_string(vm_uid), bytes, false,
                                           UisrFileEntries(parked.base, parked.count)));
  return StoredUisrBlob{parked, file_id, bytes};
}

Result<void> RewriteParkedBlob(PhysicalMemory& memory, const FrameExtent& parked,
                               std::span<const uint8_t> blob) {
  if ((blob.size() + kPageSize - 1) / kPageSize != parked.count) {
    return InvalidArgumentError("parked blob rewrite changes the frame count");
  }
  // Re-backing zeroes everything past the blob, so the trailing bytes of the
  // last frame are deterministic even after a rewrite; the blob prefix is
  // overwritten in full right here, so it skips the zero pass.
  HYPERTP_ASSIGN_OR_RETURN(std::span<uint8_t> dest,
                           memory.BackExtent(parked.base, parked.count, blob.size()));
  std::copy(blob.begin(), blob.end(), dest.begin());
  return OkResult();
}

Result<StoredUisrBlob> EncodeUisrVmIntoPram(PhysicalMemory& memory, PramBuilder& builder,
                                            const UisrVm& vm) {
  HYPERTP_ASSIGN_OR_RETURN(auto opened,
                           OpenUisrFrames(memory, builder, vm.vm_uid, EncodedUisrSize(vm)));
  EncodeUisrVm(vm, static_cast<SpanWriter&>(opened.first));
  return opened.second;
}

Result<std::vector<StoredUisrBlob>> EncodeVmStatesIntoPram(PhysicalMemory& memory,
                                                           PramBuilder& builder,
                                                           const std::vector<UisrVm>& vms,
                                                           int threads) {
  // Serial: allocation + registration in input order, so the frame layout and
  // PRAM metadata match a legacy store-by-copy loop byte for byte.
  std::vector<PramFrameWriter> writers;
  std::vector<StoredUisrBlob> stored;
  writers.reserve(vms.size());
  stored.reserve(vms.size());
  for (const UisrVm& vm : vms) {
    HYPERTP_ASSIGN_OR_RETURN(auto opened,
                             OpenUisrFrames(memory, builder, vm.vm_uid, EncodedUisrSize(vm)));
    writers.push_back(opened.first);
    stored.push_back(opened.second);
  }

  // Parallel: pure encodes into disjoint pre-mapped extents. No task touches
  // PhysicalMemory bookkeeping, only its own span.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(vms.size());
  for (size_t i = 0; i < vms.size(); ++i) {
    tasks.push_back(
        [&vms, &writers, i] { EncodeUisrVm(vms[i], static_cast<SpanWriter&>(writers[i])); });
  }
  RunOnWorkerPool(tasks, threads);
  return stored;
}

Result<std::vector<uint8_t>> LoadUisrBlob(const PhysicalMemory& memory, const PramFile& file) {
  std::vector<uint8_t> blob;
  blob.reserve(file.size_bytes);
  for (const PramPageEntry& e : file.entries) {
    HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> page, memory.ReadPage(e.mfn));
    blob.insert(blob.end(), page.begin(), page.end());
  }
  blob.resize(file.size_bytes);
  return blob;
}

Result<std::span<const uint8_t>> ViewUisrBlob(const PhysicalMemory& memory,
                                              const PramFile& file) {
  if (file.entries.empty()) {
    return NotFoundError("uisr file '" + file.name + "' has no entries");
  }
  // The view needs one contiguous frame run covering gfn 0..n-1 in order —
  // exactly what the store paths emit. Anything else falls back to LoadUisrBlob.
  const Mfn base = file.entries.front().mfn;
  uint64_t frames = 0;
  for (const PramPageEntry& e : file.entries) {
    if (e.gfn != frames || e.mfn != base + frames || e.order != 0) {
      return NotFoundError("uisr file '" + file.name + "' is not a contiguous frame run");
    }
    ++frames;
  }
  if (frames * kPageSize < file.size_bytes) {
    return DataLossError("uisr file '" + file.name + "' entries cover fewer bytes than its size");
  }
  HYPERTP_ASSIGN_OR_RETURN(std::span<const uint8_t> backing, memory.BackedExtent(base, frames));
  return backing.first(file.size_bytes);
}

std::vector<Result<UisrVm>> DecodeVmStates(const std::vector<std::span<const uint8_t>>& blobs,
                                           int threads) {
  // Pre-size the output with placeholder errors so each task only ever
  // assigns its own slot (Result<UisrVm> has no default constructor).
  std::vector<Result<UisrVm>> decoded(
      blobs.size(), Result<UisrVm>(InternalError("uisr decode stage did not run")));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    tasks.push_back([&blobs, &decoded, i] { decoded[i] = DecodeUisrVm(blobs[i]); });
  }
  RunOnWorkerPool(tasks, threads);
  return decoded;
}

std::vector<Result<UisrVm>> DecodeVmStates(const std::vector<std::vector<uint8_t>>& blobs,
                                           int threads) {
  std::vector<std::span<const uint8_t>> views(blobs.begin(), blobs.end());
  return DecodeVmStates(views, threads);
}

Result<VmId> RestoreVmState(Hypervisor& hv, const UisrVm& uisr,
                            const GuestMemoryBinding& binding, FixupLog* fixups) {
  return hv.RestoreVmFromUisr(uisr, binding, fixups);
}

Result<UisrVm> RoundTripVmState(const UisrVm& uisr, uint64_t* encoded_bytes) {
  ByteWriter w;
  EncodeUisrVm(uisr, w);
  if (encoded_bytes != nullptr) {
    *encoded_bytes = w.size();
  }
  return DecodeUisrVm(w.bytes());
}

}  // namespace pipeline
}  // namespace hypertp
