#include "src/vulndb/vulndb.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hypertp {
namespace {

// Table 1, per year: {xen_crit, xen_med, kvm_crit, kvm_med, common_crit,
// common_med}. Common vulnerabilities are counted inside both hypervisors'
// columns as in the paper (they "share" the flaw).
struct YearRow {
  int year;
  int xen_crit, xen_med, kvm_crit, kvm_med, common_crit, common_med;
};
constexpr YearRow kTable1[] = {
    {2013, 3, 38, 3, 21, 0, 0},  //
    {2014, 4, 27, 1, 12, 0, 0},  //
    {2015, 11, 20, 1, 4, 1, 2},  //
    {2016, 6, 12, 3, 3, 0, 0},   //
    {2017, 17, 38, 1, 7, 0, 0},  //
    {2018, 7, 21, 2, 5, 0, 0},   //
    {2019, 7, 15, 2, 4, 0, 0},   //
};

// §2.2: 24 KVM vulnerabilities with known report->patch windows; mean 71
// days, 14/24 above 60 days, extremes 8 (CVE-2013-0311) and 180
// (CVE-2017-12188).
constexpr int kKvmWindows[24] = {8,  15, 20,  25,  30,  35,  40,  45,  50,  58,  62,  65,
                                 70, 75, 80,  85,  90,  95,  100, 105, 110, 115, 146, 180};

// Deterministic component assignment approximating §2.1's shares.
VulnComponent XenCriticalComponent(int index) {
  // 38.4% PV, 28.2% resource, 15.3% hardware, 7.5% toolstack, 10.2% QEMU.
  const int r = index % 13;  // 5/13=38%, 4/13=31%, 2/13=15%, 1/13=8%, 1/13=8%.
  if (r < 5) {
    return VulnComponent::kPvInterface;
  }
  if (r < 9) {
    return VulnComponent::kResourceMgmt;
  }
  if (r < 11) {
    return VulnComponent::kHardware;
  }
  if (r < 12) {
    return VulnComponent::kToolstack;
  }
  return VulnComponent::kQemu;
}

VulnComponent KvmCriticalComponent(int index) {
  // ~27% ioctls, ~36% hardware, ~27% QEMU, ~9% resource management.
  const int r = index % 11;
  if (r < 3) {
    return VulnComponent::kIoctl;
  }
  if (r < 7) {
    return VulnComponent::kHardware;
  }
  if (r < 10) {
    return VulnComponent::kQemu;
  }
  return VulnComponent::kResourceMgmt;
}

VulnComponent MediumComponent(int index) {
  switch (index % 4) {
    case 0:
      return VulnComponent::kResourceMgmt;
    case 1:
      return VulnComponent::kHardware;
    case 2:
      return VulnComponent::kQemu;
    default:
      return VulnComponent::kPvInterface;
  }
}

std::string SynthId(int year, int serial) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "CVE-%d-%04d", year, 10000 + serial);
  return buf;
}

std::vector<CveRecord> BuildDatabase() {
  std::vector<CveRecord> db;
  int serial = 0;
  int xen_crit_index = 0;
  int kvm_crit_index = 0;
  int kvm_window_index = 0;
  auto next_kvm_window = [&kvm_window_index]() {
    // Windows cycle through the §2.2 sample; only some KVM records carry one
    // (Red Hat's tracker covers 24 of the 69 KVM vulnerabilities).
    const int w = kKvmWindows[kvm_window_index % 24];
    ++kvm_window_index;
    return w;
  };

  for (const YearRow& row : kTable1) {
    // --- Common records first (they count toward both columns). ----------
    int common_crit_left = row.common_crit;
    int common_med_left = row.common_med;
    if (row.year == 2015) {
      db.push_back(CveRecord{"CVE-2015-3456", 2015, 7.7, true, true, VulnComponent::kQemu,
                             "VENOM: QEMU virtual floppy controller missing bounds check, "
                             "buffer overflow (the single common critical flaw)",
                             37});
      --common_crit_left;
      db.push_back(CveRecord{"CVE-2015-8104", 2015, 5.5, true, true, VulnComponent::kHardware,
                             "DoS via Debug Exception (#DB) infinite loop in guest", 64});
      --common_med_left;
      db.push_back(CveRecord{"CVE-2015-5307", 2015, 5.5, true, true, VulnComponent::kHardware,
                             "DoS via Alignment Check (#AC) infinite loop in guest", 61});
      --common_med_left;
    }
    assert(common_crit_left == 0 && common_med_left == 0 &&
           "Table 1 lists common flaws only in 2015");

    // --- Xen-only criticals. ----------------------------------------------
    int xen_crit_left = row.xen_crit - row.common_crit;
    if (row.year == 2016 && xen_crit_left > 0) {
      db.push_back(CveRecord{"CVE-2016-6258", 2016, 7.2, true, false,
                             VulnComponent::kPvInterface,
                             "Xen PV pagetable fast-path privilege escalation; patch released "
                             "7 days after discovery (§2.2)",
                             7});
      --xen_crit_left;
      ++xen_crit_index;
    }
    for (int i = 0; i < xen_crit_left; ++i) {
      CveRecord r;
      r.id = SynthId(row.year, ++serial);
      r.year = row.year;
      r.cvss_v2 = 7.2 + 0.3 * (i % 8);
      r.affects_xen = true;
      r.component = XenCriticalComponent(xen_crit_index++);
      r.description = std::string("Xen critical flaw in ") +
                      std::string(VulnComponentName(r.component));
      db.push_back(std::move(r));
    }

    // --- Xen-only mediums. -------------------------------------------------
    for (int i = 0; i < row.xen_med - row.common_med; ++i) {
      CveRecord r;
      r.id = SynthId(row.year, ++serial);
      r.year = row.year;
      r.cvss_v2 = 4.0 + 0.25 * (i % 12);
      r.affects_xen = true;
      r.component = MediumComponent(i);
      r.description = std::string("Xen medium flaw in ") +
                      std::string(VulnComponentName(r.component));
      db.push_back(std::move(r));
    }

    // --- KVM-only criticals. ------------------------------------------------
    int kvm_crit_left = row.kvm_crit - row.common_crit;
    for (int i = 0; i < kvm_crit_left; ++i) {
      CveRecord r;
      if (row.year == 2013 && i == 0) {
        r.id = "CVE-2013-0311";
        r.description = "KVM vhost descriptor translation privilege escalation "
                        "(shortest observed window: 8 days)";
        r.window_days = 8;
        ++kvm_window_index;  // Consumes the first window sample (8).
      } else if (row.year == 2017 && i == 0) {
        r.id = "CVE-2017-12188";
        r.description = "KVM nested MMU page-table walk overflow "
                        "(longest observed window: 180 days)";
        r.window_days = 180;
      } else {
        r.id = SynthId(row.year, ++serial);
        r.description = "KVM critical flaw";
        r.window_days = next_kvm_window();
      }
      r.year = row.year;
      r.cvss_v2 = 7.2 + 0.3 * (i % 6);
      r.affects_kvm = true;
      r.component = KvmCriticalComponent(kvm_crit_index++);
      if (r.description == "KVM critical flaw") {
        r.description += std::string(" in ") + std::string(VulnComponentName(r.component));
      }
      db.push_back(std::move(r));
    }

    // --- KVM-only mediums. ---------------------------------------------------
    for (int i = 0; i < row.kvm_med - row.common_med; ++i) {
      CveRecord r;
      r.id = SynthId(row.year, ++serial);
      r.year = row.year;
      r.cvss_v2 = 4.0 + 0.25 * (i % 12);
      r.affects_kvm = true;
      r.component = MediumComponent(i + 1);
      r.description = std::string("KVM medium flaw in ") +
                      std::string(VulnComponentName(r.component));
      // Only a subset has tracked windows; give one to every third record
      // until the 24 samples are exhausted.
      if (kvm_window_index < 24 && i % 3 == 0) {
        r.window_days = next_kvm_window();
      }
      db.push_back(std::move(r));
    }
  }
  return db;
}

}  // namespace

std::string_view VulnComponentName(VulnComponent component) {
  switch (component) {
    case VulnComponent::kPvInterface:
      return "pv-interface";
    case VulnComponent::kResourceMgmt:
      return "resource-management";
    case VulnComponent::kHardware:
      return "hardware-handling";
    case VulnComponent::kToolstack:
      return "toolstack";
    case VulnComponent::kQemu:
      return "qemu";
    case VulnComponent::kIoctl:
      return "ioctl";
  }
  return "?";
}

VulnSeverity SeverityFromCvss(double cvss_v2) {
  if (cvss_v2 >= 7.0) {
    return VulnSeverity::kCritical;
  }
  if (cvss_v2 >= 4.0) {
    return VulnSeverity::kMedium;
  }
  return VulnSeverity::kLow;
}

const std::vector<CveRecord>& VulnDatabase() {
  static const std::vector<CveRecord> db = BuildDatabase();
  return db;
}

VulnTable CountByYear(const std::vector<CveRecord>& records) {
  VulnTable table;
  for (const CveRecord& r : records) {
    YearCounts& row = table.by_year[r.year];
    const bool critical = r.severity() == VulnSeverity::kCritical;
    const bool medium = r.severity() == VulnSeverity::kMedium;
    if (r.affects_xen) {
      row.xen_critical += critical;
      row.xen_medium += medium;
    }
    if (r.affects_kvm) {
      row.kvm_critical += critical;
      row.kvm_medium += medium;
    }
    if (r.common()) {
      row.common_critical += critical;
      row.common_medium += medium;
    }
  }
  for (const auto& [year, row] : table.by_year) {
    table.totals.xen_critical += row.xen_critical;
    table.totals.xen_medium += row.xen_medium;
    table.totals.kvm_critical += row.kvm_critical;
    table.totals.kvm_medium += row.kvm_medium;
    table.totals.common_critical += row.common_critical;
    table.totals.common_medium += row.common_medium;
  }
  return table;
}

std::map<VulnComponent, double> CriticalComponentShares(const std::vector<CveRecord>& records,
                                                        HypervisorKind kind) {
  std::map<VulnComponent, int> counts;
  int total = 0;
  for (const CveRecord& r : records) {
    if (r.severity() == VulnSeverity::kCritical && r.Affects(kind)) {
      ++counts[r.component];
      ++total;
    }
  }
  std::map<VulnComponent, double> shares;
  for (const auto& [component, n] : counts) {
    shares[component] = static_cast<double>(n) / std::max(total, 1);
  }
  return shares;
}

WindowStats WindowStatsFor(const std::vector<CveRecord>& records, HypervisorKind kind) {
  WindowStats stats;
  long sum = 0;
  int over_60 = 0;
  for (const CveRecord& r : records) {
    if (!r.Affects(kind) || r.window_days < 0) {
      continue;
    }
    if (stats.samples == 0) {
      stats.min_days = stats.max_days = r.window_days;
    }
    stats.min_days = std::min(stats.min_days, r.window_days);
    stats.max_days = std::max(stats.max_days, r.window_days);
    sum += r.window_days;
    over_60 += r.window_days > 60;
    ++stats.samples;
  }
  if (stats.samples > 0) {
    stats.mean_days = static_cast<double>(sum) / stats.samples;
    stats.fraction_over_60_days = static_cast<double>(over_60) / stats.samples;
  }
  return stats;
}

TransplantDecision DecideTransplant(HypervisorKind current,
                                    const std::vector<ActiveVulnerability>& active,
                                    const std::vector<HypervisorKind>& pool) {
  TransplantDecision decision;

  bool current_affected = false;
  for (const ActiveVulnerability& v : active) {
    current_affected |= v.record != nullptr && v.record->Affects(current) &&
                        v.record->severity() == VulnSeverity::kCritical;
  }
  if (!current_affected) {
    decision.rationale = "no active critical vulnerability affects the running hypervisor; "
                         "apply patches through the normal cycle";
    return decision;
  }

  // Candidates: pool members (other than current) untouched by every active
  // vulnerability — the paper's "safe alternate hypervisor".
  std::vector<HypervisorKind> safe;
  for (HypervisorKind candidate : pool) {
    if (candidate == current) {
      continue;
    }
    bool affected = false;
    for (const ActiveVulnerability& v : active) {
      affected |= v.record != nullptr && v.record->Affects(candidate);
    }
    if (!affected) {
      safe.push_back(candidate);
    }
  }
  if (safe.empty()) {
    decision.rationale = "every hypervisor in the repertoire is affected (common flaw); "
                         "transplant cannot shrink the vulnerability window";
    return decision;
  }

  // Tie-break: the historically least critical-prone candidate.
  auto history_criticals = [](HypervisorKind kind) {
    int n = 0;
    for (const CveRecord& r : VulnDatabase()) {
      n += r.Affects(kind) && r.severity() == VulnSeverity::kCritical;
    }
    return n;
  };
  std::sort(safe.begin(), safe.end(), [&](HypervisorKind a, HypervisorKind b) {
    return history_criticals(a) < history_criticals(b);
  });

  decision.transplant_recommended = true;
  decision.target = safe.front();
  decision.rationale = std::string("transplant to ") +
                       std::string(HypervisorKindName(*decision.target)) +
                       ": unaffected by all active disclosures";
  return decision;
}

}  // namespace hypertp
