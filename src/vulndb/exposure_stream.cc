#include "src/vulndb/exposure_stream.h"

#include <algorithm>
#include <cmath>

#include "src/base/json.h"

namespace hypertp {
namespace {

constexpr double kDaySeconds = 24.0 * 3600.0;

}  // namespace

ExposureStream::ExposureStream(int64_t total_hosts, int64_t total_vms, SimTime start,
                               ExposureStreamOptions options)
    : total_hosts_(std::max<int64_t>(total_hosts, 0)),
      total_vms_(std::max<int64_t>(total_vms, 0)),
      exposed_hosts_(total_hosts_),
      exposed_vms_(total_vms_),
      last_update_(start),
      options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    hosts_upgraded_ = &options_.metrics->GetCounter(options_.metric_prefix + "_hosts_upgraded");
    vms_upgraded_ = &options_.metrics->GetCounter(options_.metric_prefix + "_vms_upgraded");
    fraction_gauge_ =
        &options_.metrics->GetGauge(options_.metric_prefix + "_fraction_vulnerable");
    fraction_gauge_->Set(fraction_vulnerable());
  }
  MaybeRecordPoint(start, /*force=*/true);  // The curve always opens at 1.0.
}

double ExposureStream::fraction_vulnerable() const {
  return total_vms_ > 0 ? static_cast<double>(exposed_vms_) / static_cast<double>(total_vms_)
                        : 0.0;
}

double ExposureStream::exposed_host_days() const { return exposed_host_seconds_ / kDaySeconds; }

double ExposureStream::exposed_vm_days() const { return exposed_vm_seconds_ / kDaySeconds; }

void ExposureStream::Accrue(SimTime t) {
  if (t <= last_update_) {
    return;  // Out-of-order feeds clamp forward; no negative accrual.
  }
  const double dt = ToSeconds(t - last_update_);
  exposed_host_seconds_ += dt * static_cast<double>(exposed_hosts_);
  exposed_vm_seconds_ += dt * static_cast<double>(exposed_vms_);
  last_update_ = t;
}

void ExposureStream::OnHostsSafe(SimTime t, int64_t hosts, int64_t vms) {
  Accrue(t);
  exposed_hosts_ = std::max<int64_t>(exposed_hosts_ - std::max<int64_t>(hosts, 0), 0);
  exposed_vms_ = std::max<int64_t>(exposed_vms_ - std::max<int64_t>(vms, 0), 0);
  if (hosts_upgraded_ != nullptr) {
    hosts_upgraded_->Increment(static_cast<uint64_t>(std::max<int64_t>(hosts, 0)));
    vms_upgraded_->Increment(static_cast<uint64_t>(std::max<int64_t>(vms, 0)));
    fraction_gauge_->Set(fraction_vulnerable());
  }
  MaybeRecordPoint(last_update_, /*force=*/exposed_vms_ == 0);
}

void ExposureStream::OnHostsExposed(SimTime t, int64_t hosts, int64_t vms) {
  Accrue(t);
  exposed_hosts_ = std::min<int64_t>(exposed_hosts_ + std::max<int64_t>(hosts, 0), total_hosts_);
  exposed_vms_ = std::min<int64_t>(exposed_vms_ + std::max<int64_t>(vms, 0), total_vms_);
  if (options_.metrics != nullptr) {
    if (hosts_reexposed_ == nullptr) {
      hosts_reexposed_ =
          &options_.metrics->GetCounter(options_.metric_prefix + "_hosts_reexposed");
      vms_reexposed_ = &options_.metrics->GetCounter(options_.metric_prefix + "_vms_reexposed");
    }
    hosts_reexposed_->Increment(static_cast<uint64_t>(std::max<int64_t>(hosts, 0)));
    vms_reexposed_->Increment(static_cast<uint64_t>(std::max<int64_t>(vms, 0)));
    if (fraction_gauge_ != nullptr) {
      fraction_gauge_->Set(fraction_vulnerable());
    }
  }
  MaybeRecordPoint(last_update_, /*force=*/false);
}

void ExposureStream::OnHostsRehomed(SimTime t, int64_t hosts, int64_t vms) {
  Accrue(t);
  hosts_rehomed_ += std::max<int64_t>(hosts, 0);
  vms_rehomed_ += std::max<int64_t>(vms, 0);
  if (options_.metrics != nullptr) {
    if (hosts_rehomed_counter_ == nullptr) {
      hosts_rehomed_counter_ =
          &options_.metrics->GetCounter(options_.metric_prefix + "_hosts_rehomed");
      vms_rehomed_counter_ = &options_.metrics->GetCounter(options_.metric_prefix + "_vms_rehomed");
    }
    hosts_rehomed_counter_->Increment(static_cast<uint64_t>(std::max<int64_t>(hosts, 0)));
    vms_rehomed_counter_->Increment(static_cast<uint64_t>(std::max<int64_t>(vms, 0)));
  }
  // Exposure-neutral by definition: counts, fraction and curve are untouched.
}

void ExposureStream::AdvanceTo(SimTime t) { Accrue(t); }

void ExposureStream::Seal(SimTime t) {
  Accrue(t);
  MaybeRecordPoint(last_update_, /*force=*/true);
}

void ExposureStream::MaybeRecordPoint(SimTime t, bool force) {
  const double fraction = fraction_vulnerable();
  // Absolute delta: re-exposure (fraction rising under a fault storm) must
  // trigger points too, not just the monotone decay.
  if (!force && !curve_.empty() &&
      std::abs(last_recorded_fraction_ - fraction) < options_.min_fraction_delta) {
    return;
  }
  if (!curve_.empty() && curve_.back().time == t && curve_.back().fraction == fraction) {
    return;  // Seal() after a final event at the same instant: no duplicate.
  }
  curve_.push_back(ExposureCurvePoint{t, exposed_vms_, fraction});
  last_recorded_fraction_ = fraction;
  if (options_.tracer != nullptr) {
    const SpanId mark = options_.tracer->AddInstant("exposure", t, "exposure");
    options_.tracer->SetAttribute(mark, "fraction", fraction);
    options_.tracer->SetAttribute(mark, "exposed_vms", exposed_vms_);
  }
}

std::string ExposureStream::ToJson() const {
  JsonWriter j;
  j.BeginObject();
  j.Key("kind").String("exposure_stream");
  j.Key("total_hosts").Number(total_hosts_);
  j.Key("total_vms").Number(total_vms_);
  j.Key("exposed_hosts").Number(exposed_hosts_);
  j.Key("exposed_vms").Number(exposed_vms_);
  j.Key("fraction_vulnerable").Number(fraction_vulnerable());
  j.Key("exposed_host_days").Number(exposed_host_days());
  j.Key("exposed_vm_days").Number(exposed_vm_days());
  j.Key("curve").BeginArray();
  for (const ExposureCurvePoint& point : curve_) {
    j.BeginArray();
    j.Number(ToMillis(point.time));
    j.Number(point.exposed_vms);
    j.Number(point.fraction);
    j.EndArray();
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

}  // namespace hypertp
