// Streaming exposure analytics: the live "fraction of the fleet still
// vulnerable" curve of a transplant campaign.
//
// The closed-form window model (window_model.h) and the per-rollout
// FleetTrace both report exposure *post hoc*: the integral exists only after
// the run finishes. A campaign over 100k hosts needs the opposite — an
// incremental stream fed by shard events while the campaign is in flight, so
// SLO governors and dashboards see exposure decay as it happens. The stream
// maintains the exposed host/VM counts, the running exposure integral and a
// downsampled curve, and mirrors every update into the tracer/metrics layer
// (src/obs/) when instruments are attached.
//
// During an undisturbed campaign hosts only ever *leave* the vulnerable set
// (failed hosts stay exposed but never re-expose an upgraded one), so the
// fraction is monotonically non-increasing — campaign_test pins this. A fault
// storm breaks that one-way flow: a crash-induced rollback salvages an
// upgraded host back onto the vulnerable kind, and OnHostsExposed() feeds
// that re-exposure so the curve honestly ticks back up.

#ifndef HYPERTP_SRC_VULNDB_EXPOSURE_STREAM_H_
#define HYPERTP_SRC_VULNDB_EXPOSURE_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/time.h"

namespace hypertp {

// One downsampled sample of the live curve.
struct ExposureCurvePoint {
  SimTime time = 0;
  int64_t exposed_vms = 0;
  double fraction = 0.0;  // VM-weighted fraction still vulnerable.
};

struct ExposureStreamOptions {
  // Record a curve point only when the fraction moved at least this much in
  // either direction since the last recorded point (the first and last points
  // always record). Keeps a million-VM campaign's curve at ~1/epsilon points.
  double min_fraction_delta = 0.001;
  // When non-null, every recorded curve point lands as an instant on track
  // "exposure" (attribute "fraction"), and the gauge/counters below update on
  // every ingested event:
  //   <prefix>_fraction_vulnerable  (gauge)
  //   <prefix>_hosts_upgraded       (counter)
  //   <prefix>_vms_upgraded         (counter)
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::string metric_prefix = "campaign";
};

class ExposureStream {
 public:
  // The stream opens at `start` with the whole fleet exposed.
  ExposureStream(int64_t total_hosts, int64_t total_vms, SimTime start = 0,
                 ExposureStreamOptions options = {});

  // `hosts` hosts carrying `vms` VMs reached the safe hypervisor at `t`.
  // Feed in non-decreasing time order (the campaign merges shard events by
  // timestamp first); `t` earlier than the last update clamps forward.
  void OnHostsSafe(SimTime t, int64_t hosts, int64_t vms);

  // The reverse flow: `hosts`/`vms` returned to the vulnerable hypervisor at
  // `t` (crash-induced rollback during a fault storm). Clamped to the fleet
  // totals. Mirrors into <prefix>_hosts_reexposed / <prefix>_vms_reexposed
  // counters, created lazily so storm-free runs keep their exact metric set.
  void OnHostsExposed(SimTime t, int64_t hosts, int64_t vms);

  // Exposure-neutral ownership move: `hosts`/`vms` changed which shard owns
  // them at `t` (campaign rack work-stealing) without changing whether they
  // are exposed. Accrues the integral to `t` and tallies the traffic into
  // <prefix>_hosts_rehomed / <prefix>_vms_rehomed counters (created lazily,
  // so steal-free runs keep their exact metric set); the curve is untouched.
  void OnHostsRehomed(SimTime t, int64_t hosts, int64_t vms);

  // Advances the exposure integral to `t` with no membership change (epoch
  // barriers, and the campaign end).
  void AdvanceTo(SimTime t);

  // Force-records the current state as a curve point (campaign end), so the
  // exported curve always closes at the final fraction.
  void Seal(SimTime t);

  int64_t total_hosts() const { return total_hosts_; }
  int64_t total_vms() const { return total_vms_; }
  int64_t exposed_hosts() const { return exposed_hosts_; }
  int64_t exposed_vms() const { return exposed_vms_; }
  // Cumulative rack-steal traffic fed through OnHostsRehomed.
  int64_t hosts_rehomed() const { return hosts_rehomed_; }
  int64_t vms_rehomed() const { return vms_rehomed_; }
  SimTime last_update() const { return last_update_; }
  // VM-weighted fraction of the fleet still on the vulnerable hypervisor.
  double fraction_vulnerable() const;
  // Running integrals up to last_update().
  double exposed_host_days() const;
  double exposed_vm_days() const;
  const std::vector<ExposureCurvePoint>& curve() const { return curve_; }

  // {"kind":"exposure_stream", totals, integrals, "curve":[[ms,vms,frac]..]}.
  std::string ToJson() const;

 private:
  void Accrue(SimTime t);
  void MaybeRecordPoint(SimTime t, bool force);

  int64_t total_hosts_;
  int64_t total_vms_;
  int64_t exposed_hosts_;
  int64_t exposed_vms_;
  SimTime last_update_;
  double exposed_host_seconds_ = 0.0;
  double exposed_vm_seconds_ = 0.0;
  std::vector<ExposureCurvePoint> curve_;
  double last_recorded_fraction_ = 1.0;
  ExposureStreamOptions options_;
  Counter* hosts_upgraded_ = nullptr;
  Counter* vms_upgraded_ = nullptr;
  Gauge* fraction_gauge_ = nullptr;
  // Created on the first OnHostsExposed (see its comment).
  Counter* hosts_reexposed_ = nullptr;
  Counter* vms_reexposed_ = nullptr;
  // Created on the first OnHostsRehomed.
  int64_t hosts_rehomed_ = 0;
  int64_t vms_rehomed_ = 0;
  Counter* hosts_rehomed_counter_ = nullptr;
  Counter* vms_rehomed_counter_ = nullptr;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_VULNDB_EXPOSURE_STREAM_H_
