// Vulnerability study substrate (paper §2).
//
// An embedded dataset of Xen/KVM vulnerabilities 2013-2019 whose per-year
// critical/medium/common counts reproduce Table 1 exactly. Well-known CVEs
// the paper discusses are present under their real identifiers (VENOM
// CVE-2015-3456, the common DoS pair CVE-2015-8104/CVE-2015-5307,
// CVE-2016-6258, CVE-2017-12188, CVE-2013-0311); the remaining records are
// synthesized with component distributions matching §2.1. On top of the
// dataset: the vulnerability-window statistics of §2.2 and the transplant
// decision policy of §1/§3.1 (find a safe alternate hypervisor).

#ifndef HYPERTP_SRC_VULNDB_VULNDB_H_
#define HYPERTP_SRC_VULNDB_VULNDB_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/hv/hypervisor.h"

namespace hypertp {

// Where a flaw lives (paper §2.1's taxonomy).
enum class VulnComponent : uint8_t {
  kPvInterface,    // Event channels, hypercalls (Xen).
  kResourceMgmt,   // Schedulers, memory management.
  kHardware,       // VT-x state mishandling, CPU bugs surfaced.
  kToolstack,      // libxl and friends.
  kQemu,           // Shared device-emulation code.
  kIoctl,          // KVM's ioctl surface.
};

std::string_view VulnComponentName(VulnComponent component);

enum class VulnSeverity : uint8_t { kLow, kMedium, kCritical };

// Paper footnote 2/3: critical when CVSS v2 >= 7, medium when in [4, 7).
VulnSeverity SeverityFromCvss(double cvss_v2);

struct CveRecord {
  std::string id;  // "CVE-2015-3456".
  int year = 0;
  double cvss_v2 = 0.0;
  bool affects_xen = false;
  bool affects_kvm = false;
  VulnComponent component = VulnComponent::kQemu;
  std::string description;
  // Days from report to patch release; -1 when unknown (most Xen records:
  // §2.2 — Xen has no central tracker and discoverers could not recall).
  int window_days = -1;

  VulnSeverity severity() const { return SeverityFromCvss(cvss_v2); }
  bool common() const { return affects_xen && affects_kvm; }
  bool Affects(HypervisorKind kind) const {
    switch (kind) {
      case HypervisorKind::kXen:
        return affects_xen;
      case HypervisorKind::kKvm:
        return affects_kvm;
      case HypervisorKind::kBhyve:
        // The dataset covers Xen/KVM; bhyve shares no code with either in
        // this model, so it is "not known to be vulnerable" (§1 case (i)).
        return false;
    }
    return false;
  }
};

// The embedded 2013-2019 dataset. Deterministic; built once.
const std::vector<CveRecord>& VulnDatabase();

// Per-year counts in Table 1's column layout.
struct YearCounts {
  int xen_critical = 0, xen_medium = 0;
  int kvm_critical = 0, kvm_medium = 0;
  int common_critical = 0, common_medium = 0;
};
// Keyed by year; `totals` sums all years.
struct VulnTable {
  std::map<int, YearCounts> by_year;
  YearCounts totals;
};
VulnTable CountByYear(const std::vector<CveRecord>& records);

// Distribution of critical vulnerabilities over components for one
// hypervisor, as fractions summing to 1 (paper §2.1).
std::map<VulnComponent, double> CriticalComponentShares(const std::vector<CveRecord>& records,
                                                        HypervisorKind kind);

// §2.2 KVM window statistics: mean 71 days, ~60% above 60 days, max 180,
// min 8 (computed over the records with known windows).
struct WindowStats {
  int samples = 0;
  double mean_days = 0.0;
  double fraction_over_60_days = 0.0;
  int max_days = 0;
  int min_days = 0;
};
WindowStats WindowStatsFor(const std::vector<CveRecord>& records, HypervisorKind kind);

// --- Transplant decision policy -------------------------------------------

// A newly disclosed, not-yet-patched flaw the datacenter must react to.
struct ActiveVulnerability {
  const CveRecord* record = nullptr;
};

struct TransplantDecision {
  bool transplant_recommended = false;
  std::optional<HypervisorKind> target;
  std::string rationale;
};

// Decides whether (and to what) to transplant a datacenter currently running
// `current`, given the unpatched disclosures and the operator's hypervisor
// repertoire. Chooses a pool member unaffected by every active vulnerability;
// ties break toward the historically least-critical-prone hypervisor.
TransplantDecision DecideTransplant(HypervisorKind current,
                                    const std::vector<ActiveVulnerability>& active,
                                    const std::vector<HypervisorKind>& pool);

}  // namespace hypertp

#endif  // HYPERTP_SRC_VULNDB_VULNDB_H_
