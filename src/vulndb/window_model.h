// Vulnerability-window exposure model: quantifies Fig. 1's comparison
// between traditional mitigation (wait for patch release + apply it) and
// hypervisor transplant (exposed only while the fleet transplants).

#ifndef HYPERTP_SRC_VULNDB_WINDOW_MODEL_H_
#define HYPERTP_SRC_VULNDB_WINDOW_MODEL_H_

#include "src/sim/time.h"
#include "src/vulndb/vulndb.h"

namespace hypertp {

// The operator's patching posture.
struct PatchPolicy {
  // Days between patch availability and fleet-wide application (change
  // windows, canarying, reboot scheduling).
  double apply_delay_days = 7.0;
};

// How the datacenter executes a fleet-wide transplant.
struct FleetProfile {
  int hosts = 100;
  // Per-host InPlaceTP wall-clock (staging + transplant; seconds).
  SimDuration per_host_transplant = Seconds(10);
  // Hosts transplanted concurrently (bounded by blast-radius policy).
  int parallel_hosts = 10;
};

// Time to transplant the whole fleet: ceil(hosts/parallel) waves.
SimDuration FleetTransplantTime(const FleetProfile& fleet);

struct ExposureComparison {
  // Fig. 1(a): discovery -> patch release -> patch applied.
  double traditional_exposure_days = 0.0;
  // Fig. 1(b): discovery -> fleet transplanted (then exposure ends until the
  // transplant back, which happens after the patch — no further exposure).
  double hypertp_exposure_days = 0.0;
  double reduction_factor = 0.0;  // traditional / hypertp.
  bool transplant_applicable = false;  // False for common flaws.
};

// Compares exposure for one disclosed vulnerability. Uses the CVE's recorded
// report->patch window when known, otherwise `fallback_window_days`.
// Transplant is only applicable when the policy finds a safe target in
// `pool` (common flaws leave the fleet exposed either way).
ExposureComparison CompareExposure(const CveRecord& cve, HypervisorKind current,
                                   const std::vector<HypervisorKind>& pool,
                                   const PatchPolicy& policy, const FleetProfile& fleet,
                                   double fallback_window_days = 60.0);

// Expected exposure-days avoided per year if HyperTP is applied to every
// critical vulnerability affecting `current` in the dataset.
double AnnualExposureReduction(const std::vector<CveRecord>& records, HypervisorKind current,
                               const std::vector<HypervisorKind>& pool,
                               const PatchPolicy& policy, const FleetProfile& fleet,
                               int years = 7);

}  // namespace hypertp

#endif  // HYPERTP_SRC_VULNDB_WINDOW_MODEL_H_
