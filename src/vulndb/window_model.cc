#include "src/vulndb/window_model.h"

#include <algorithm>
#include <cmath>

#include "src/policy/policy.h"

namespace hypertp {

SimDuration FleetTransplantTime(const FleetProfile& fleet) {
  return policy::TransplantCostModel::FleetMakespan(fleet.hosts, fleet.parallel_hosts,
                                                    fleet.per_host_transplant);
}

ExposureComparison CompareExposure(const CveRecord& cve, HypervisorKind current,
                                   const std::vector<HypervisorKind>& pool,
                                   const PatchPolicy& policy, const FleetProfile& fleet,
                                   double fallback_window_days) {
  ExposureComparison comparison;
  const double window_days =
      cve.window_days >= 0 ? static_cast<double>(cve.window_days) : fallback_window_days;
  comparison.traditional_exposure_days = window_days + policy.apply_delay_days;

  const auto decision = DecideTransplant(current, {{&cve}}, pool);
  comparison.transplant_applicable = decision.transplant_recommended;
  if (comparison.transplant_applicable) {
    comparison.hypertp_exposure_days =
        ToSeconds(FleetTransplantTime(fleet)) / (24.0 * 3600.0);
  } else {
    comparison.hypertp_exposure_days = comparison.traditional_exposure_days;
  }
  comparison.reduction_factor =
      comparison.hypertp_exposure_days > 0.0
          ? comparison.traditional_exposure_days / comparison.hypertp_exposure_days
          : 0.0;
  return comparison;
}

double AnnualExposureReduction(const std::vector<CveRecord>& records, HypervisorKind current,
                               const std::vector<HypervisorKind>& pool,
                               const PatchPolicy& policy, const FleetProfile& fleet,
                               int years) {
  double saved_days = 0.0;
  for (const CveRecord& cve : records) {
    if (cve.severity() != VulnSeverity::kCritical || !cve.Affects(current)) {
      continue;
    }
    const ExposureComparison c = CompareExposure(cve, current, pool, policy, fleet);
    if (c.transplant_applicable) {
      saved_days += c.traditional_exposure_days - c.hypertp_exposure_days;
    }
  }
  return saved_days / std::max(years, 1);
}

}  // namespace hypertp
