#include "src/pram/pram.h"

#include <algorithm>

#include "src/base/bytes.h"
#include "src/base/crc32.h"
#include "src/base/logging.h"

namespace hypertp {
namespace {

constexpr uint32_t kRootMagic = 0x4D415250;  // "PRAM"
constexpr uint32_t kFileMagic = 0x49465250;  // "PRFI"
constexpr uint32_t kNodeMagic = 0x444E5250;  // "PRND"

// Page header: magic u32 + crc u32.
constexpr size_t kPageHeaderSize = 8;
// Root page: header + next u64 + count u32.
constexpr size_t kRootHeaderSize = kPageHeaderSize + 8 + 4;
constexpr size_t kRootCapacity = (kPageSize - kRootHeaderSize) / 8;
// Node page: header + next u64 + count u32.
constexpr size_t kNodeHeaderSize = kPageHeaderSize + 8 + 4;
constexpr size_t kNodeCapacity = (kPageSize - kNodeHeaderSize) / 8;

// 8-byte packed page entry:
//   bits 63..60  type: 0 = map, 1 = skip
//   map:  bits 51..48 order, bits 47..0 mfn
//   skip: bits 47..0 gfn delta (pages)
constexpr uint64_t kEntryTypeShift = 60;
constexpr uint64_t kEntryTypeMap = 0;
constexpr uint64_t kEntryTypeSkip = 1;
constexpr uint64_t kEntryOrderShift = 48;
constexpr uint64_t kEntryOrderMask = 0xF;
constexpr uint64_t kEntryValueMask = 0xFFFFFFFFFFFFull;  // Low 48 bits.

uint64_t PackMapEntry(Mfn mfn, uint8_t order) {
  return (kEntryTypeMap << kEntryTypeShift) |
         ((static_cast<uint64_t>(order) & kEntryOrderMask) << kEntryOrderShift) |
         (mfn & kEntryValueMask);
}

uint64_t PackSkipEntry(uint64_t delta_pages) {
  return (kEntryTypeSkip << kEntryTypeShift) | (delta_pages & kEntryValueMask);
}

// Finishes a metadata page: computes the CRC over the payload (with the CRC
// field still zero), patches it in, and writes the page to RAM.
Result<void> CommitPage(PhysicalMemory& ram, Mfn mfn, ByteWriter&& w) {
  std::vector<uint8_t> bytes = w.TakeBytes();
  const uint32_t crc = Crc32(bytes);
  for (int i = 0; i < 4; ++i) {
    bytes[4 + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return ram.WritePage(mfn, std::move(bytes));
}

// Reads a metadata page and validates magic + CRC.
Result<std::vector<uint8_t>> LoadPage(const PhysicalMemory& ram, Mfn mfn,
                                      uint32_t expected_magic) {
  HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ram.ReadPage(mfn));
  if (bytes.size() < kPageHeaderSize) {
    return DataLossError("pram: metadata page at mfn " + std::to_string(mfn) +
                         " is empty or scrubbed");
  }
  ByteReader r(bytes);
  HYPERTP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != expected_magic) {
    return DataLossError("pram: bad magic at mfn " + std::to_string(mfn));
  }
  HYPERTP_ASSIGN_OR_RETURN(uint32_t stored_crc, r.ReadU32());
  std::vector<uint8_t> zeroed = bytes;
  for (size_t i = 4; i < 8; ++i) {
    zeroed[i] = 0;
  }
  if (Crc32(zeroed) != stored_crc) {
    return DataLossError("pram: CRC mismatch at mfn " + std::to_string(mfn));
  }
  return bytes;
}

uint64_t NodePagesFor(const PramFile& file) {
  // One packed word per entry, plus one skip word per GFN discontinuity.
  uint64_t words = 0;
  Gfn cursor = 0;
  for (const PramPageEntry& e : file.entries) {
    if (e.gfn != cursor) {
      ++words;
    }
    ++words;
    cursor = e.gfn + e.frame_count();
  }
  return (words + kNodeCapacity - 1) / kNodeCapacity;
}

}  // namespace

const PramFile* PramImage::FindFile(uint64_t file_id) const {
  for (const PramFile& f : files) {
    if (f.file_id == file_id) {
      return &f;
    }
  }
  return nullptr;
}

Result<uint64_t> PramBuilder::AddFile(std::string name, uint64_t size_bytes, bool huge_pages,
                                      std::vector<PramPageEntry> entries) {
  if (finalized_) {
    return FailedPreconditionError("pram builder already finalized");
  }
  if (name.size() > kPramMaxNameLength) {
    return InvalidArgumentError("pram file name too long: " + name);
  }
  Gfn prev_end = 0;
  bool first = true;
  for (const PramPageEntry& e : entries) {
    if (e.order > 12) {
      return InvalidArgumentError("pram entry order " + std::to_string(e.order) + " implausible");
    }
    if (e.gfn % e.frame_count() != 0 || e.mfn % e.frame_count() != 0) {
      return InvalidArgumentError("pram entry gfn/mfn not aligned to its order");
    }
    if (!first && e.gfn < prev_end) {
      return InvalidArgumentError("pram entries overlap or are not sorted by gfn");
    }
    prev_end = e.gfn + e.frame_count();
    first = false;
  }
  PramFile file;
  file.file_id = next_file_id_++;
  file.name = std::move(name);
  file.size_bytes = size_bytes;
  file.huge_pages = huge_pages;
  file.entries = std::move(entries);
  image_.files.push_back(std::move(file));
  return image_.files.back().file_id;
}

uint64_t PramBuilder::MetadataPagesNeeded() const {
  // One file-info page per file, node pages per file, and root pages holding
  // one pointer per file.
  uint64_t pages = 0;
  for (const PramFile& f : image_.files) {
    pages += 1 + NodePagesFor(f);
  }
  const uint64_t roots =
      image_.files.empty() ? 1 : (image_.files.size() + kRootCapacity - 1) / kRootCapacity;
  return pages + roots;
}

Result<PramHandle> PramBuilder::Finalize() {
  if (finalized_) {
    return FailedPreconditionError("pram builder already finalized");
  }
  finalized_ = true;

  PramHandle handle;
  const FrameOwner owner{FrameOwnerKind::kPramMeta, 0};
  auto alloc_page = [&]() -> Result<Mfn> {
    HYPERTP_ASSIGN_OR_RETURN(Mfn mfn, ram_->AllocFrame(owner));
    handle.extents.push_back(FrameExtent{mfn, 1, owner});
    ++handle.metadata_pages;
    return mfn;
  };

  // Lay out per-file node chains and file-info pages first, then the roots.
  std::vector<Mfn> file_info_mfns;
  for (const PramFile& file : image_.files) {
    // Pack entries into words.
    std::vector<uint64_t> words;
    Gfn cursor = 0;
    for (const PramPageEntry& e : file.entries) {
      if (e.gfn != cursor) {
        words.push_back(PackSkipEntry(e.gfn - cursor));
      }
      words.push_back(PackMapEntry(e.mfn, e.order));
      cursor = e.gfn + e.frame_count();
    }

    // Node chain, written back-to-front so each page knows its successor.
    Mfn next_node = 0;
    const size_t node_count = (words.size() + kNodeCapacity - 1) / kNodeCapacity;
    for (size_t page = node_count; page-- > 0;) {
      const size_t begin = page * kNodeCapacity;
      const size_t end = std::min(begin + kNodeCapacity, words.size());
      HYPERTP_ASSIGN_OR_RETURN(Mfn node_mfn, alloc_page());
      ByteWriter w;
      w.PutU32(kNodeMagic);
      w.PutU32(0);  // CRC placeholder.
      w.PutU64(next_node);
      w.PutU32(static_cast<uint32_t>(end - begin));
      for (size_t i = begin; i < end; ++i) {
        w.PutU64(words[i]);
      }
      HYPERTP_RETURN_IF_ERROR(CommitPage(*ram_, node_mfn, std::move(w)));
      next_node = node_mfn;
    }

    HYPERTP_ASSIGN_OR_RETURN(Mfn info_mfn, alloc_page());
    ByteWriter w;
    w.PutU32(kFileMagic);
    w.PutU32(0);
    w.PutU64(file.file_id);
    w.PutString(file.name);
    w.PutU64(file.size_bytes);
    w.PutU8(file.huge_pages ? 1 : 0);
    w.PutU64(next_node);
    w.PutU64(file.entries.size());
    HYPERTP_RETURN_IF_ERROR(CommitPage(*ram_, info_mfn, std::move(w)));
    file_info_mfns.push_back(info_mfn);
  }

  // Root directory chain, also written back-to-front.
  Mfn next_root = 0;
  const size_t root_count =
      file_info_mfns.empty() ? 1 : (file_info_mfns.size() + kRootCapacity - 1) / kRootCapacity;
  for (size_t page = root_count; page-- > 0;) {
    const size_t begin = page * kRootCapacity;
    const size_t end = std::min(begin + kRootCapacity, file_info_mfns.size());
    HYPERTP_ASSIGN_OR_RETURN(Mfn root_mfn, alloc_page());
    ByteWriter w;
    w.PutU32(kRootMagic);
    w.PutU32(0);
    w.PutU64(next_root);
    w.PutU32(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      w.PutU64(file_info_mfns[i]);
    }
    HYPERTP_RETURN_IF_ERROR(CommitPage(*ram_, root_mfn, std::move(w)));
    next_root = root_mfn;
  }
  handle.root_mfn = next_root;

  HYPERTP_LOG(kInfo, "pram") << "finalized " << image_.files.size() << " files, "
                             << handle.metadata_pages << " metadata pages, root mfn "
                             << handle.root_mfn;
  return handle;
}

Result<PramImage> ParsePram(const PhysicalMemory& ram, Mfn root_mfn) {
  PramImage image;
  Mfn root = root_mfn;
  while (root != 0) {
    HYPERTP_ASSIGN_OR_RETURN(auto root_bytes, LoadPage(ram, root, kRootMagic));
    ByteReader r(root_bytes);
    HYPERTP_RETURN_IF_ERROR(r.Skip(kPageHeaderSize));
    HYPERTP_ASSIGN_OR_RETURN(Mfn next_root, r.ReadU64());
    HYPERTP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    if (count > kRootCapacity) {
      return DataLossError("pram: root page entry count out of range");
    }
    for (uint32_t i = 0; i < count; ++i) {
      HYPERTP_ASSIGN_OR_RETURN(Mfn info_mfn, r.ReadU64());
      HYPERTP_ASSIGN_OR_RETURN(auto info_bytes, LoadPage(ram, info_mfn, kFileMagic));
      ByteReader fr(info_bytes);
      HYPERTP_RETURN_IF_ERROR(fr.Skip(kPageHeaderSize));
      PramFile file;
      HYPERTP_ASSIGN_OR_RETURN(file.file_id, fr.ReadU64());
      HYPERTP_ASSIGN_OR_RETURN(file.name, fr.ReadString());
      HYPERTP_ASSIGN_OR_RETURN(file.size_bytes, fr.ReadU64());
      HYPERTP_ASSIGN_OR_RETURN(uint8_t huge, fr.ReadU8());
      file.huge_pages = huge != 0;
      HYPERTP_ASSIGN_OR_RETURN(Mfn node_mfn, fr.ReadU64());
      HYPERTP_ASSIGN_OR_RETURN(uint64_t entry_count, fr.ReadU64());

      Gfn cursor = 0;
      while (node_mfn != 0) {
        HYPERTP_ASSIGN_OR_RETURN(auto node_bytes, LoadPage(ram, node_mfn, kNodeMagic));
        ByteReader nr(node_bytes);
        HYPERTP_RETURN_IF_ERROR(nr.Skip(kPageHeaderSize));
        HYPERTP_ASSIGN_OR_RETURN(Mfn next_node, nr.ReadU64());
        HYPERTP_ASSIGN_OR_RETURN(uint32_t word_count, nr.ReadU32());
        if (word_count > kNodeCapacity) {
          return DataLossError("pram: node page word count out of range");
        }
        for (uint32_t j = 0; j < word_count; ++j) {
          HYPERTP_ASSIGN_OR_RETURN(uint64_t word, nr.ReadU64());
          const uint64_t type = word >> kEntryTypeShift;
          if (type == kEntryTypeSkip) {
            cursor += word & kEntryValueMask;
          } else if (type == kEntryTypeMap) {
            PramPageEntry e;
            e.mfn = word & kEntryValueMask;
            e.order = static_cast<uint8_t>((word >> kEntryOrderShift) & kEntryOrderMask);
            e.gfn = cursor;
            cursor += e.frame_count();
            file.entries.push_back(e);
          } else {
            return DataLossError("pram: unknown entry type " + std::to_string(type));
          }
        }
        node_mfn = next_node;
      }
      if (file.entries.size() != entry_count) {
        return DataLossError("pram: file '" + file.name + "' declares " +
                             std::to_string(entry_count) + " entries, found " +
                             std::to_string(file.entries.size()));
      }
      image.files.push_back(std::move(file));
    }
    root = next_root;
  }
  return image;
}

Result<std::vector<FrameExtent>> PramPreservationList(const PhysicalMemory& ram, Mfn root_mfn,
                                                      const PramImage& image) {
  std::vector<FrameExtent> raw;

  // Metadata pages: re-walk the chains.
  Mfn root = root_mfn;
  while (root != 0) {
    raw.push_back(FrameExtent{root, 1, FrameOwner{FrameOwnerKind::kPramMeta, 0}});
    HYPERTP_ASSIGN_OR_RETURN(auto root_bytes, LoadPage(ram, root, kRootMagic));
    ByteReader r(root_bytes);
    HYPERTP_RETURN_IF_ERROR(r.Skip(kPageHeaderSize));
    HYPERTP_ASSIGN_OR_RETURN(Mfn next_root, r.ReadU64());
    HYPERTP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t i = 0; i < count; ++i) {
      HYPERTP_ASSIGN_OR_RETURN(Mfn info_mfn, r.ReadU64());
      raw.push_back(FrameExtent{info_mfn, 1, FrameOwner{FrameOwnerKind::kPramMeta, 0}});
      HYPERTP_ASSIGN_OR_RETURN(auto info_bytes, LoadPage(ram, info_mfn, kFileMagic));
      ByteReader fr(info_bytes);
      HYPERTP_RETURN_IF_ERROR(fr.Skip(kPageHeaderSize));
      HYPERTP_RETURN_IF_ERROR(fr.Skip(8));  // file_id
      HYPERTP_ASSIGN_OR_RETURN(std::string name, fr.ReadString());
      (void)name;
      HYPERTP_RETURN_IF_ERROR(fr.Skip(8 + 1));  // size + huge flag
      HYPERTP_ASSIGN_OR_RETURN(Mfn node_mfn, fr.ReadU64());
      while (node_mfn != 0) {
        raw.push_back(FrameExtent{node_mfn, 1, FrameOwner{FrameOwnerKind::kPramMeta, 0}});
        HYPERTP_ASSIGN_OR_RETURN(auto node_bytes, LoadPage(ram, node_mfn, kNodeMagic));
        ByteReader nr(node_bytes);
        HYPERTP_RETURN_IF_ERROR(nr.Skip(kPageHeaderSize));
        HYPERTP_ASSIGN_OR_RETURN(node_mfn, nr.ReadU64());
      }
    }
    root = next_root;
  }

  // Guest frames named by page entries.
  for (const PramFile& file : image.files) {
    for (const PramPageEntry& e : file.entries) {
      raw.push_back(
          FrameExtent{e.mfn, e.frame_count(), FrameOwner{FrameOwnerKind::kGuest, file.file_id}});
    }
  }

  // Sort and coalesce adjacent/overlapping extents so a guest allocation that
  // spans many PRAM entries is covered by one preserved extent.
  std::sort(raw.begin(), raw.end(),
            [](const FrameExtent& a, const FrameExtent& b) { return a.base < b.base; });
  std::vector<FrameExtent> merged;
  for (const FrameExtent& e : raw) {
    if (!merged.empty() && e.base <= merged.back().end()) {
      merged.back().count = std::max(merged.back().end(), e.end()) - merged.back().base;
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

void BuildEntriesForRange(Gfn gfn, Mfn mfn, uint64_t frames, bool huge_pages,
                          std::vector<PramPageEntry>& out) {
  // Huge entries need gfn and mfn 512-aligned at the same spot. Advancing
  // moves both by the same amount, so the alignment gap (gfn - mfn) mod 512
  // is invariant across the run: either some boundary aligns both, or none
  // ever will and the whole run is order-0.
  const bool alignable =
      huge_pages && (gfn % kFramesPerHugePage) == (mfn % kFramesPerHugePage);
  if (!alignable) {
    out.reserve(out.size() + frames);
    for (uint64_t i = 0; i < frames; ++i) {
      out.push_back(PramPageEntry{gfn + i, mfn + i, 0});
    }
    return;
  }

  // Head singles up to the first huge boundary.
  uint64_t head = (kFramesPerHugePage - gfn % kFramesPerHugePage) % kFramesPerHugePage;
  head = std::min(head, frames);
  const uint64_t huge_count = (frames - head) / kFramesPerHugePage;
  const uint64_t tail = frames - head - huge_count * kFramesPerHugePage;
  out.reserve(out.size() + head + huge_count + tail);
  for (uint64_t i = 0; i < head; ++i) {
    out.push_back(PramPageEntry{gfn + i, mfn + i, 0});
  }
  gfn += head;
  mfn += head;
  for (uint64_t i = 0; i < huge_count; ++i) {
    out.push_back(PramPageEntry{gfn, mfn, kHugePageOrder});
    gfn += kFramesPerHugePage;
    mfn += kFramesPerHugePage;
  }
  for (uint64_t i = 0; i < tail; ++i) {
    out.push_back(PramPageEntry{gfn + i, mfn + i, 0});
  }
}

std::vector<PramPageEntry> BuildPageEntries(const std::vector<std::pair<Gfn, Mfn>>& map,
                                            bool huge_pages) {
  std::vector<PramPageEntry> entries;
  // One pass: find each maximal run contiguous in both address spaces, then
  // let BuildEntriesForRange carve it. The old code re-scanned 512 pairs at
  // every candidate boundary, quadratic on fragmented maps.
  size_t i = 0;
  while (i < map.size()) {
    size_t end = i + 1;
    while (end < map.size() && map[end].first == map[i].first + (end - i) &&
           map[end].second == map[i].second + (end - i)) {
      ++end;
    }
    BuildEntriesForRange(map[i].first, map[i].second, end - i, huge_pages, entries);
    i = end;
  }
  return entries;
}

}  // namespace hypertp
