#include "src/pram/ledger.h"

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/crc32.h"
#include "src/base/logging.h"

namespace hypertp {
namespace {

constexpr uint32_t kLedgerMagic = 0x474C5054;  // "TPLG"
constexpr uint32_t kLedgerVersion = 1;

// Page header: magic u32 + version u32.
constexpr size_t kHeaderSize = 8;
// Slot payload: generation u32 + phase u8 + source u8 + target u8 + reserved
// u8 + pram_root u64 + vm_count u32; followed by crc u32 over the payload.
constexpr size_t kSlotPayloadSize = 20;
constexpr size_t kSlotSize = kSlotPayloadSize + 4;
constexpr size_t kLedgerBytes = kHeaderSize + 2 * kSlotSize;

std::vector<uint8_t> EncodeSlot(const LedgerRecord& record) {
  ByteWriter w;
  w.PutU32(record.generation);
  w.PutU8(static_cast<uint8_t>(record.phase));
  w.PutU8(record.source_kind);
  w.PutU8(record.target_kind);
  w.PutU8(0);
  w.PutU64(record.pram_root);
  w.PutU32(record.vm_count);
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  return w.TakeBytes();
}

// Decodes one slot; nullopt if the slot was never written or its CRC fails.
std::optional<LedgerRecord> DecodeSlot(std::span<const uint8_t> page, size_t offset) {
  if (page.size() < offset + kSlotSize) {
    return std::nullopt;
  }
  const std::span<const uint8_t> slot = page.subspan(offset, kSlotSize);
  const auto u32 = [&slot](size_t at) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(slot[at + static_cast<size_t>(i)]) << (8 * i);
    }
    return v;
  };
  const auto u64 = [&slot](size_t at) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(slot[at + static_cast<size_t>(i)]) << (8 * i);
    }
    return v;
  };
  LedgerRecord record;
  record.generation = u32(0);
  record.phase = static_cast<TransplantPhase>(slot[4]);
  record.source_kind = slot[5];
  record.target_kind = slot[6];
  record.pram_root = u64(8);
  record.vm_count = u32(16);
  const uint32_t stored_crc = u32(kSlotPayloadSize);
  if (record.generation == 0 || Crc32(slot.subspan(0, kSlotPayloadSize)) != stored_crc) {
    return std::nullopt;
  }
  return record;
}

// Best (highest-generation) valid record in the page, if any.
std::optional<LedgerRecord> BestSlot(std::span<const uint8_t> page) {
  std::optional<LedgerRecord> best;
  for (int slot = 0; slot < 2; ++slot) {
    std::optional<LedgerRecord> record =
        DecodeSlot(page, kHeaderSize + static_cast<size_t>(slot) * kSlotSize);
    if (record && (!best || record->generation > best->generation)) {
      best = record;
    }
  }
  return best;
}

// True when the slot region carries any nonzero byte — i.e. a write landed
// there at some point, whether or not it decodes.
bool SlotLooksWritten(std::span<const uint8_t> page, size_t offset) {
  if (page.size() < offset + kSlotSize) {
    return false;
  }
  const std::span<const uint8_t> slot = page.subspan(offset, kSlotSize);
  return std::any_of(slot.begin(), slot.end(), [](uint8_t b) { return b != 0; });
}

bool CommitAuthorizesRollback(TransplantPhase phase) {
  // kCommitted is the point of no return; kRestored means the target restored
  // the VMs from the image but never resumed them — the image is unconsumed
  // and still governs.
  return phase == TransplantPhase::kCommitted || phase == TransplantPhase::kRestored;
}

}  // namespace

std::string_view TransplantPhaseName(TransplantPhase phase) {
  switch (phase) {
    case TransplantPhase::kIdle:
      return "idle";
    case TransplantPhase::kStaged:
      return "staged";
    case TransplantPhase::kTranslated:
      return "translated";
    case TransplantPhase::kCommitted:
      return "committed";
    case TransplantPhase::kRestored:
      return "restored";
    case TransplantPhase::kComplete:
      return "complete";
    case TransplantPhase::kRolledBack:
      return "rolled_back";
  }
  return "unknown";
}

std::string_view SalvageDecisionName(SalvageDecision decision) {
  switch (decision) {
    case SalvageDecision::kSalvageFromImage:
      return "salvage_from_image";
    case SalvageDecision::kRecoverLive:
      return "recover_live";
    case SalvageDecision::kDataLoss:
      return "data_loss";
  }
  return "unknown";
}

std::string_view CrashLedgerStateName(CrashLedgerState state) {
  switch (state) {
    case CrashLedgerState::kCleanCommit:
      return "clean_commit";
    case CrashLedgerState::kPrePause:
      return "pre_pause";
    case CrashLedgerState::kMidSaveTorn:
      return "mid_save_torn";
    case CrashLedgerState::kStaleCommit:
      return "stale_commit";
    case CrashLedgerState::kScrubbed:
      return "scrubbed";
  }
  return "unknown";
}

SalvageDecision DecideSalvage(CrashLedgerState state) {
  switch (state) {
    case CrashLedgerState::kCleanCommit:
      return SalvageDecision::kSalvageFromImage;
    case CrashLedgerState::kPrePause:
    case CrashLedgerState::kMidSaveTorn:
      return SalvageDecision::kRecoverLive;
    case CrashLedgerState::kStaleCommit:
    case CrashLedgerState::kScrubbed:
      return SalvageDecision::kDataLoss;
  }
  return SalvageDecision::kDataLoss;
}

Result<TransplantLedger> TransplantLedger::Create(PhysicalMemory& ram, LedgerRecord initial) {
  HYPERTP_ASSIGN_OR_RETURN(Mfn frame, ram.AllocFrame(FrameOwner{FrameOwnerKind::kPramMeta, 0}));
  std::vector<uint8_t> page(kLedgerBytes, 0);
  ByteWriter header;
  header.PutU32(kLedgerMagic);
  header.PutU32(kLedgerVersion);
  const std::vector<uint8_t> header_bytes = header.TakeBytes();
  std::copy(header_bytes.begin(), header_bytes.end(), page.begin());
  HYPERTP_RETURN_IF_ERROR(ram.WritePage(frame, std::move(page)));

  TransplantLedger ledger(ram, frame, 0);
  HYPERTP_RETURN_IF_ERROR(ledger.Commit(initial));
  return ledger;
}

Result<TransplantLedger> TransplantLedger::Open(PhysicalMemory& ram, Mfn frame) {
  HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> page, ram.ReadPage(frame));
  if (page.size() < kHeaderSize) {
    return DataLossError("transplant ledger at mfn " + std::to_string(frame) +
                         " is empty or scrubbed");
  }
  ByteReader r(page);
  HYPERTP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  HYPERTP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (magic != kLedgerMagic) {
    return DataLossError("transplant ledger: bad magic at mfn " + std::to_string(frame));
  }
  if (version != kLedgerVersion) {
    return DataLossError("transplant ledger: unsupported version " + std::to_string(version));
  }
  const std::optional<LedgerRecord> best = BestSlot(page);
  return TransplantLedger(ram, frame, best ? best->generation : 0);
}

Result<void> TransplantLedger::Commit(LedgerRecord record) {
  HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> page, ram_->ReadPage(frame_));
  if (page.size() < kLedgerBytes) {
    page.resize(kLedgerBytes, 0);
  }
  record.generation = generation_ + 1;
  const std::vector<uint8_t> slot = EncodeSlot(record);
  std::copy(slot.begin(), slot.end(), page.begin() + SlotOffset(record.generation));
  HYPERTP_RETURN_IF_ERROR(ram_->WritePage(frame_, std::move(page)));
  generation_ = record.generation;
  HYPERTP_LOG(kDebug, "ledger") << "committed generation " << generation_ << " phase "
                                << TransplantPhaseName(record.phase);
  return {};
}

Result<LedgerRecord> TransplantLedger::Read() const {
  HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> page, ram_->ReadPage(frame_));
  const std::optional<LedgerRecord> best = BestSlot(page);
  if (!best) {
    return DataLossError("transplant ledger: no valid commit record (torn write?)");
  }
  return *best;
}

Result<SalvageAssessment> TransplantLedger::Assess() const {
  HYPERTP_ASSIGN_OR_RETURN(std::vector<uint8_t> page, ram_->ReadPage(frame_));
  SalvageAssessment assessment;
  const std::optional<LedgerRecord> best = BestSlot(page);
  if (!best) {
    assessment.state = CrashLedgerState::kScrubbed;
    assessment.decision = DecideSalvage(assessment.state);
    assessment.reason =
        "no valid commit record survives CRC (slots torn, scrubbed or never "
        "written); the page does not authorize rollback";
    return assessment;
  }
  assessment.record = *best;
  // The slot the *next* generation would have been written to: nonzero bytes
  // there that do not decode as a valid record of any generation are the
  // fingerprint of a commit torn by the crash. (A valid older record in that
  // slot is the normal A/B steady state, not a torn write.)
  const size_t other_offset = SlotOffset(best->generation + 1);
  assessment.torn_newer_write =
      !DecodeSlot(page, other_offset).has_value() && SlotLooksWritten(page, other_offset);

  const std::string phase_name(TransplantPhaseName(best->phase));
  if (assessment.torn_newer_write) {
    if (CommitAuthorizesRollback(best->phase)) {
      // The crash tore a write *newer* than a committed image: a later
      // transplant superseded it, so the image's currency cannot be proven.
      // Salvaging it would silently resurrect stale guest state.
      assessment.state = CrashLedgerState::kStaleCommit;
      assessment.reason = "committed generation " + std::to_string(best->generation) +
                          " is superseded by a torn newer write; the stale image "
                          "does not authorize rollback";
    } else {
      assessment.state = CrashLedgerState::kMidSaveTorn;
      assessment.reason = "crash tore the save in flight over phase '" + phase_name +
                          "'; the half-saved image does not authorize rollback";
    }
  } else if (CommitAuthorizesRollback(best->phase)) {
    assessment.state = CrashLedgerState::kCleanCommit;
    assessment.reason = "generation " + std::to_string(best->generation) + " phase '" +
                        phase_name + "' cleanly committed; rollback from the image is legal";
  } else {
    assessment.state = CrashLedgerState::kPrePause;
    assessment.reason = "transplant ledger phase '" + phase_name +
                        "' does not authorize rollback (commit record torn or missing); "
                        "live guest state is authoritative";
  }
  assessment.decision = DecideSalvage(assessment.state);
  return assessment;
}

size_t TransplantLedger::SlotOffset(uint32_t generation) {
  return kHeaderSize + static_cast<size_t>(generation % 2) * kSlotSize;
}

size_t TransplantLedger::SlotSize() { return kSlotSize; }

}  // namespace hypertp
