// PramFrameWriter: the ByteWriter interface over freshly allocated kUisr
// frames — the zero-copy half of the conversion save path.
//
// The legacy PramStore materialized each VM's UISR blob in a std::vector and
// then copied it page-by-page into PRAM-resident frames: a full extra copy of
// every translated byte inside the pause window. A PramFrameWriter instead
// allocates the frame extent up front (pre-sized with ByteCounter /
// EncodedUisrSize), maps it as one contiguous backing in PhysicalMemory, and
// lets the encoder write the wire bytes straight into place. Because it is a
// SpanWriter, the templated EncodeUisrVm(vm, Writer&) emits byte-identical
// output through it — same framing, same CRC trailer — as through the
// vector-backed ByteWriter (pipeline_test pins this).
//
// Thread contract: Create() allocates (serial, touches PhysicalMemory); the
// Put* calls only touch the mapped span, so a batch of writers over disjoint
// extents can encode on real OS threads concurrently.

#ifndef HYPERTP_SRC_PRAM_FRAME_WRITER_H_
#define HYPERTP_SRC_PRAM_FRAME_WRITER_H_

#include <cstdint>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/hw/physical_memory.h"

namespace hypertp {

class PramFrameWriter : public SpanWriter {
 public:
  // Allocates ceil(capacity_bytes / kPageSize) kUisr frames owned by
  // `vm_uid`, backs them with contiguous storage and maps the writer over the
  // first `capacity_bytes` of it. The caller knows the exact encoded size
  // (EncodedUisrSize), so the extent is never resized; writing past
  // `capacity_bytes` aborts via the SpanWriter guard. The mapped prefix is
  // NOT pre-zeroed (only the page-padding tail is): the caller must write
  // all `capacity_bytes` before anything reads the frames, which the
  // pre-sized encode does by construction.
  static Result<PramFrameWriter> Create(PhysicalMemory& memory, uint64_t vm_uid,
                                        size_t capacity_bytes);

  // The frame extent the bytes land in (for PRAM file registration and the
  // caller's preservation bookkeeping). The writer does not own the frames;
  // freeing them is the transplant cleanup's job, as with the legacy store.
  const FrameExtent& frames() const { return frames_; }

 private:
  PramFrameWriter(std::span<uint8_t> dest, FrameExtent frames)
      : SpanWriter(dest), frames_(frames) {}

  FrameExtent frames_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_PRAM_FRAME_WRITER_H_
