// PRAM: persistent-over-kexec memory file system (paper §4.2.2, Fig. 4).
//
// PRAM records each VM's guest memory as a "file": an ordered list of page
// entries mapping guest frame numbers to machine frame extents. The structure
// is laid out in page-aligned metadata pages inside simulated physical RAM:
//
//   PRAM pointer (an MFN passed on the kexec command line)
//     -> chain of root directory pages        (red in the paper's Fig. 4)
//          -> file info page per VM           (green)
//               -> chain of page-entry nodes  (blue)
//
// Page entries are 8 bytes each and support power-of-2 orders so 2 MiB huge
// pages cost one entry instead of 512 (paper §4.2.5). The guest frame number
// is implicit: entries appear in GFN order and each advances the cursor by
// 2^order pages; explicit skip entries encode GFN holes (MMIO windows).
//
// Every metadata page carries a magic and a CRC, so a page lost to the
// micro-reboot scrubber (or clobbered by the new hypervisor) is detected as
// kDataLoss at parse time rather than silently corrupting guests.

#ifndef HYPERTP_SRC_PRAM_PRAM_H_
#define HYPERTP_SRC_PRAM_PRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hw/physical_memory.h"

namespace hypertp {

// One mapping: 2^order contiguous guest pages starting at `gfn`, backed by
// 2^order contiguous machine frames starting at `mfn`.
struct PramPageEntry {
  Gfn gfn = 0;
  Mfn mfn = 0;
  uint8_t order = 0;  // 0 = 4 KiB, 9 = 2 MiB.

  uint64_t frame_count() const { return 1ull << order; }
  bool operator==(const PramPageEntry&) const = default;
};

// A single VM's memory description.
struct PramFile {
  uint64_t file_id = 0;
  std::string name;          // VM name; capped at kPramMaxNameLength bytes.
  uint64_t size_bytes = 0;   // Guest memory size.
  bool huge_pages = false;   // Informational: file uses order-9 entries.
  std::vector<PramPageEntry> entries;

  bool operator==(const PramFile&) const = default;
};

// The logical content of a PRAM structure.
struct PramImage {
  std::vector<PramFile> files;

  const PramFile* FindFile(uint64_t file_id) const;
  bool operator==(const PramImage&) const = default;
};

// Where a PRAM structure physically lives.
struct PramHandle {
  Mfn root_mfn = 0;                   // The PRAM pointer.
  uint64_t metadata_pages = 0;
  std::vector<FrameExtent> extents;   // All metadata frames, for preservation.

  uint64_t metadata_bytes() const { return metadata_pages * kPageSize; }
};

inline constexpr size_t kPramMaxNameLength = 64;

// Builds a PRAM structure in `ram`. Usage:
//   PramBuilder builder(ram);
//   uint64_t id = builder.AddFile("vm-3", bytes, entries);
//   HYPERTP_ASSIGN_OR_RETURN(PramHandle h, builder.Finalize());
// AddFile validates that entries are GFN-sorted, non-overlapping and
// order-aligned. Finalize allocates metadata frames (owner kPramMeta) and
// writes the on-"disk" representation. The builder is single-use.
class PramBuilder {
 public:
  explicit PramBuilder(PhysicalMemory& ram) : ram_(&ram) {}

  // Returns the assigned file id (> 0), or an error on invalid entries.
  Result<uint64_t> AddFile(std::string name, uint64_t size_bytes, bool huge_pages,
                           std::vector<PramPageEntry> entries);

  Result<PramHandle> Finalize();

  // Exact number of metadata pages Finalize() will allocate for the files
  // added so far (used by the memory-overhead bench before committing).
  uint64_t MetadataPagesNeeded() const;

 private:
  PhysicalMemory* ram_;
  PramImage image_;
  uint64_t next_file_id_ = 1;
  bool finalized_ = false;
};

// Parses a PRAM structure from RAM starting at the PRAM pointer. Verifies
// per-page magic and CRC. This is what the freshly booted target hypervisor
// runs at early boot, before touching the allocator.
Result<PramImage> ParsePram(const PhysicalMemory& ram, Mfn root_mfn);

// Computes the frame extents the scrubber must preserve for `image` rooted at
// `root_mfn`: every metadata page plus every guest extent named by a page
// entry. Extents are sorted and coalesced.
Result<std::vector<FrameExtent>> PramPreservationList(const PhysicalMemory& ram, Mfn root_mfn,
                                                      const PramImage& image);

// Appends entries covering `frames` contiguous pages starting at (gfn, mfn):
// order-0 singles up to the first huge boundary, one order-9 entry per
// aligned 2 MiB run, order-0 singles for the tail. Emits exactly the entries
// the old per-frame greedy loop produced (pram_test pins equivalence), but
// decides alignment once per run instead of once per frame, so a terabyte
// mapping costs a few thousand entry pushes rather than 2^28 loop
// iterations. With `huge_pages` false (or gfn/mfn misaligned relative to
// each other, which no amount of advancing can fix), every entry is order-0.
void BuildEntriesForRange(Gfn gfn, Mfn mfn, uint64_t frames, bool huge_pages,
                          std::vector<PramPageEntry>& out);

// Converts a guest physical address space layout into PRAM page entries,
// merging adjacent 4K mappings into huge-page entries when `huge_pages` and
// alignment permit. `map` is (gfn, mfn) pairs sorted by gfn. Internally
// splits the map into maximal contiguous runs and defers to
// BuildEntriesForRange, so discovery of each run is a single pass.
std::vector<PramPageEntry> BuildPageEntries(const std::vector<std::pair<Gfn, Mfn>>& map,
                                            bool huge_pages);

}  // namespace hypertp

#endif  // HYPERTP_SRC_PRAM_PRAM_H_
