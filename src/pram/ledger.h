// Transplant ledger: a single PRAM-resident page that records how far an
// in-place transplant has progressed, so the kernel that comes up after the
// micro-reboot can tell a healthy hand-off from a crashed one and — when the
// restore under the target hypervisor fails — prove that rolling back to the
// source hypervisor kind is safe.
//
// The page holds two fixed-size commit slots. Every Commit() bumps a
// monotonically increasing generation and rewrites only the slot selected by
// the generation's parity, leaving the previous commit intact. Each slot
// carries a CRC over its payload, so a write torn by the very fault we are
// trying to survive invalidates at most the newest slot and Read() falls back
// to the last fully committed record. A reader therefore never observes a
// half-written phase.
//
// The ledger frame's MFN travels on the kexec command line (`tpledger=`)
// alongside the PRAM pointer; it is owned by kPramMeta so the existing abort
// and cleanup paths reclaim it with the rest of the PRAM metadata.

#ifndef HYPERTP_SRC_PRAM_LEDGER_H_
#define HYPERTP_SRC_PRAM_LEDGER_H_

#include <cstdint>
#include <string_view>

#include "src/base/result.h"
#include "src/hw/physical_memory.h"

namespace hypertp {

// Where the in-place transplant stands. Values are persisted; append only.
enum class TransplantPhase : uint8_t {
  kIdle = 0,        // Ledger created, nothing staged yet.
  kStaged = 1,      // Target kernel image parked in RAM.
  kTranslated = 2,  // All VMs paused + serialized; PRAM finalized.
  kCommitted = 3,   // About to micro-reboot: PRAM root recorded. Rollback legal.
  kRestored = 4,    // Target hypervisor restored every VM.
  kComplete = 5,    // VMs resumed under the target; transplant done.
  kRolledBack = 6,  // Restore failed; VMs were salvaged under the source kind.
};

std::string_view TransplantPhaseName(TransplantPhase phase);

// One commit record. Hypervisor kinds are stored as raw bytes so the pram
// layer stays below src/hv in the dependency order; src/core casts them.
struct LedgerRecord {
  uint32_t generation = 0;  // Assigned by Commit(); 0 = never committed.
  TransplantPhase phase = TransplantPhase::kIdle;
  uint8_t source_kind = 0;
  uint8_t target_kind = 0;
  Mfn pram_root = 0;        // Valid from kCommitted onwards.
  uint32_t vm_count = 0;

  bool operator==(const LedgerRecord&) const = default;
};

class TransplantLedger {
 public:
  // Allocates the ledger frame (owner kPramMeta) and commits `initial` as
  // generation 1.
  static Result<TransplantLedger> Create(PhysicalMemory& ram, LedgerRecord initial);

  // Attaches to an existing ledger frame (post-reboot recovery handshake).
  // Validates the page magic; does not require any slot to be valid — Read()
  // reports that separately so a torn final commit is distinguishable from a
  // missing ledger.
  static Result<TransplantLedger> Open(PhysicalMemory& ram, Mfn frame);

  // Writes `record` (its generation is overwritten with the next one) into
  // the slot chosen by generation parity. The other slot is untouched.
  Result<void> Commit(LedgerRecord record);

  // Decodes both slots and returns the valid record with the highest
  // generation; kDataLoss if neither slot survives CRC.
  Result<LedgerRecord> Read() const;

  Mfn frame() const { return frame_; }
  uint32_t generation() const { return generation_; }

  // Byte offset of the slot a given generation was written to — used by
  // fault-injection tests to tear a specific commit.
  static size_t SlotOffset(uint32_t generation);
  static size_t SlotSize();

 private:
  TransplantLedger(PhysicalMemory& ram, Mfn frame, uint32_t generation)
      : ram_(&ram), frame_(frame), generation_(generation) {}

  PhysicalMemory* ram_;
  Mfn frame_ = 0;
  uint32_t generation_ = 0;  // Highest generation written or observed.
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_PRAM_LEDGER_H_
