// Transplant ledger: a single PRAM-resident page that records how far an
// in-place transplant has progressed, so the kernel that comes up after the
// micro-reboot can tell a healthy hand-off from a crashed one and — when the
// restore under the target hypervisor fails — prove that rolling back to the
// source hypervisor kind is safe.
//
// The page holds two fixed-size commit slots. Every Commit() bumps a
// monotonically increasing generation and rewrites only the slot selected by
// the generation's parity, leaving the previous commit intact. Each slot
// carries a CRC over its payload, so a write torn by the very fault we are
// trying to survive invalidates at most the newest slot and Read() falls back
// to the last fully committed record. A reader therefore never observes a
// half-written phase.
//
// The ledger frame's MFN travels on the kexec command line (`tpledger=`)
// alongside the PRAM pointer; it is owned by kPramMeta so the existing abort
// and cleanup paths reclaim it with the rest of the PRAM metadata.

#ifndef HYPERTP_SRC_PRAM_LEDGER_H_
#define HYPERTP_SRC_PRAM_LEDGER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/hw/physical_memory.h"

namespace hypertp {

// Where the in-place transplant stands. Values are persisted; append only.
enum class TransplantPhase : uint8_t {
  kIdle = 0,        // Ledger created, nothing staged yet.
  kStaged = 1,      // Target kernel image parked in RAM.
  kTranslated = 2,  // All VMs paused + serialized; PRAM finalized.
  kCommitted = 3,   // About to micro-reboot: PRAM root recorded. Rollback legal.
  kRestored = 4,    // Target hypervisor restored every VM.
  kComplete = 5,    // VMs resumed under the target; transplant done.
  kRolledBack = 6,  // Restore failed; VMs were salvaged under the source kind.
};

std::string_view TransplantPhaseName(TransplantPhase phase);

// What an unplanned micro-reboot (ReHype-mode crash recovery) may do with the
// ledger it finds. A *planned* rollback only ever runs with the transplant
// still on the stack; a crash recovery starts from nothing but this page.
enum class SalvageDecision : uint8_t {
  kSalvageFromImage = 0,  // Newest commit is clean: restore from pram_root.
  kRecoverLive = 1,       // No committed image governs: re-adopt the in-RAM
                          // guests under a fresh hypervisor (ReHype classic);
                          // rolling back would resurrect stale state.
  kDataLoss = 2,          // Nothing trustworthy: neither the image's currency
                          // nor the in-RAM structures can be proven.
};

std::string_view SalvageDecisionName(SalvageDecision decision);

// The distinguishable states a mid-traffic hypervisor crash can leave the
// ledger page in. `Assess()` derives one from the raw slots; the fleet layer
// samples the same taxonomy stochastically, so the simulated outcome
// distribution and the byte-level behaviour share one decision table.
enum class CrashLedgerState : uint8_t {
  kCleanCommit = 0,   // Newest valid slot is kCommitted/kRestored, no torn
                      // newer write: the image is provably current.
  kPrePause = 1,      // Newest valid slot predates the commit point (idle/
                      // staged/translated/complete/rolled_back): no image
                      // authorizes rollback; live guest state is authoritative.
  kMidSaveTorn = 2,   // A newer write tore over a pre-commit base: the save
                      // was in flight, the half-written image must be refused.
  kStaleCommit = 3,   // A newer write tore over a *committed* base: a later
                      // transplant superseded the image, so its currency
                      // cannot be proven — salvaging it would be silent
                      // stale-state resurrection.
  kScrubbed = 4,      // No valid slot at all (torn both, scrubbed, missing).
};

std::string_view CrashLedgerStateName(CrashLedgerState state);

// Pure decision table: clean commit -> salvage, pre-pause/mid-save -> refuse
// rollback and recover live, stale commit/scrubbed -> honest data loss.
SalvageDecision DecideSalvage(CrashLedgerState state);

// One commit record. Hypervisor kinds are stored as raw bytes so the pram
// layer stays below src/hv in the dependency order; src/core casts them.
struct LedgerRecord {
  uint32_t generation = 0;  // Assigned by Commit(); 0 = never committed.
  TransplantPhase phase = TransplantPhase::kIdle;
  uint8_t source_kind = 0;
  uint8_t target_kind = 0;
  Mfn pram_root = 0;        // Valid from kCommitted onwards.
  uint32_t vm_count = 0;

  bool operator==(const LedgerRecord&) const = default;
};

// Crash-time triage of one ledger page.
struct SalvageAssessment {
  CrashLedgerState state = CrashLedgerState::kScrubbed;
  SalvageDecision decision = SalvageDecision::kDataLoss;
  // Best (highest-generation) CRC-valid record, when one exists.
  std::optional<LedgerRecord> record;
  // True when the slot *not* holding `record` carries bytes that fail CRC:
  // evidence of a newer commit torn by the crash. Read() alone cannot tell
  // this apart from "no newer write ever happened".
  bool torn_newer_write = false;
  std::string reason;  // Human-readable justification for the decision.
};

class TransplantLedger {
 public:
  // Allocates the ledger frame (owner kPramMeta) and commits `initial` as
  // generation 1.
  static Result<TransplantLedger> Create(PhysicalMemory& ram, LedgerRecord initial);

  // Attaches to an existing ledger frame (post-reboot recovery handshake).
  // Validates the page magic; does not require any slot to be valid — Read()
  // reports that separately so a torn final commit is distinguishable from a
  // missing ledger.
  static Result<TransplantLedger> Open(PhysicalMemory& ram, Mfn frame);

  // Writes `record` (its generation is overwritten with the next one) into
  // the slot chosen by generation parity. The other slot is untouched.
  Result<void> Commit(LedgerRecord record);

  // Decodes both slots and returns the valid record with the highest
  // generation; kDataLoss if neither slot survives CRC.
  Result<LedgerRecord> Read() const;

  // Crash-time inspection: classifies the page into a CrashLedgerState and
  // the salvage decision it authorizes. Unlike Read(), this distinguishes "no
  // newer write" from "newer write torn by the crash" — the difference
  // between a legal rollback and stale-state resurrection. Only fails when
  // the page itself is unreadable.
  Result<SalvageAssessment> Assess() const;

  Mfn frame() const { return frame_; }
  uint32_t generation() const { return generation_; }

  // Byte offset of the slot a given generation was written to — used by
  // fault-injection tests to tear a specific commit.
  static size_t SlotOffset(uint32_t generation);
  static size_t SlotSize();

 private:
  TransplantLedger(PhysicalMemory& ram, Mfn frame, uint32_t generation)
      : ram_(&ram), frame_(frame), generation_(generation) {}

  PhysicalMemory* ram_;
  Mfn frame_ = 0;
  uint32_t generation_ = 0;  // Highest generation written or observed.
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_PRAM_LEDGER_H_
