#include "src/pram/frame_writer.h"

namespace hypertp {

Result<PramFrameWriter> PramFrameWriter::Create(PhysicalMemory& memory, uint64_t vm_uid,
                                                size_t capacity_bytes) {
  if (capacity_bytes == 0) {
    return InvalidArgumentError("pram frame writer: capacity must be positive");
  }
  const uint64_t frames = (capacity_bytes + kPageSize - 1) / kPageSize;
  const FrameOwner owner{FrameOwnerKind::kUisr, vm_uid};
  HYPERTP_ASSIGN_OR_RETURN(Mfn base, memory.Alloc(frames, 1, owner));
  // The encoder writes exactly `capacity_bytes` (pre-sized via
  // EncodedUisrSize), so only the page-padding tail needs zeroing.
  auto backing = memory.BackExtent(base, frames, capacity_bytes);
  if (!backing.ok()) {
    // Unwind the allocation; a failed backing must not leak the extent.
    (void)memory.Free(base, frames);
    return backing.error();
  }
  return PramFrameWriter(backing->first(capacity_bytes), FrameExtent{base, frames, owner});
}

}  // namespace hypertp
