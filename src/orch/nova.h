// Nova-like cloud orchestrator with HyperTP integration (paper §4.5.2).
//
// Implements the five integration points the paper lists: (1) the extended
// ComputeDriver interface (src/orch/compute_driver.h); (2) the driver
// implementation; (3) a host-live-upgrade compute API that first migrates
// away VMs that do not support HyperTP, then triggers the in-place upgrade
// and updates the instance database; (4) a scheduler filter that keeps
// transplantable VMs together; (5) the operator-facing API below.

#ifndef HYPERTP_SRC_ORCH_NOVA_H_
#define HYPERTP_SRC_ORCH_NOVA_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/orch/compute_driver.h"

namespace hypertp {

// Nova's view of one instance.
struct NovaInstance {
  uint64_t uid = 0;
  std::string name;
  size_t host = 0;
  VmId vm_id = 0;
  // Flavor metadata: whether the image/agent supports riding a transplant
  // (guests needing hot-unplug cooperation may not).
  bool hypertp_capable = true;
};

struct HostUpgradeOutcome {
  TransplantReport report;
  int migrated_away = 0;       // Non-capable instances evacuated first.
  int transplanted_in_place = 0;
};

class NovaManager {
 public:
  // Registers a compute host; Nova owns the driver.
  size_t RegisterHost(std::unique_ptr<ComputeDriver> driver);

  size_t host_count() const { return hosts_.size(); }
  ComputeDriver& driver(size_t host) { return *hosts_[host]; }

  // Boots an instance. The scheduler's TransplantableTogether filter prefers
  // hosts whose current instances share the new instance's capability, so a
  // later host upgrade handles a uniform population (§4.5.2 item 4).
  Result<uint64_t> Boot(const VmConfig& config, bool hypertp_capable);

  Result<void> Delete(uint64_t uid);
  Result<const NovaInstance*> GetInstance(uint64_t uid) const;
  std::vector<NovaInstance> InstancesOn(size_t host) const;

  // The one-click "host live upgrade" API: evacuates non-capable instances
  // to other hosts over `link`, transplants the rest in place, and updates
  // the instance database to the new hypervisor.
  Result<HostUpgradeOutcome> HostLiveUpgrade(size_t host, HypervisorKind target,
                                             const NetworkLink& link,
                                             const InPlaceOptions& options = {});

  // Live-migrates every instance off `host` (Nova's Evacuate API, which the
  // paper's §4.5.2 host-live-upgrade flow builds on). Returns the number of
  // instances moved.
  Result<int> EvacuateHost(size_t host, const NetworkLink& link);

  // Cold-migrates an instance by checkpoint+restore: the fallback when live
  // migration is impossible (e.g. pass-through devices pin the VM, §4.2.3)
  // and the operator accepts a stop-the-world move.
  Result<void> ColdMigrate(uint64_t uid, size_t dest_host);

  // Scheduler filter, exposed for tests: the host Boot() would pick.
  Result<size_t> ScheduleFor(bool hypertp_capable, uint32_t vcpus, uint64_t memory_bytes) const;

 private:
  // Capacity probe: free memory estimate for a host.
  uint64_t UsedMemory(size_t host) const;

  std::vector<std::unique_ptr<ComputeDriver>> hosts_;
  std::map<uint64_t, NovaInstance> instances_;  // Keyed by uid.
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_ORCH_NOVA_H_
