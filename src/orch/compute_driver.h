// Generic VM-management driver layer (paper §4.5.1).
//
// Cloud orchestrators talk to hypervisors exclusively through a generic
// library (libvirt in practice — category G2 in the paper's study); no
// sysadmin touches xl or kvmtool directly. LibvirtDriver is that layer here:
// it wraps whichever Hypervisor currently runs a host and exposes uniform
// operations, plus the HyperTP extensions of §4.5.2 (guest state saving,
// loading the new kernel, restoring — packaged as one host-live-upgrade op).

#ifndef HYPERTP_SRC_ORCH_COMPUTE_DRIVER_H_
#define HYPERTP_SRC_ORCH_COMPUTE_DRIVER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/core/inplace.h"
#include "src/core/report.h"
#include "src/hv/hypervisor.h"
#include "src/migrate/migrate.h"

namespace hypertp {

// The ComputeDriver interface Nova consumes (paper Fig. 5).
class ComputeDriver {
 public:
  virtual ~ComputeDriver() = default;

  virtual std::string_view driver_name() const = 0;
  virtual HypervisorKind hypervisor_kind() const = 0;

  virtual Result<VmId> Spawn(const VmConfig& config) = 0;
  virtual Result<void> Suspend(VmId id) = 0;
  virtual Result<void> Resume(VmId id) = 0;
  virtual Result<void> Destroy(VmId id) = 0;
  virtual std::vector<VmInfo> ListInstances() const = 0;
  virtual Result<VmInfo> GetInstance(VmId id) const = 0;
  // Capacity probe used by the Nova scheduler.
  virtual uint64_t FreeGuestMemoryBytes() const = 0;

  // Existing Nova operation HyperTP reuses for non-transplantable guests.
  virtual Result<MigrationResult> LiveMigrate(VmId id, ComputeDriver& destination,
                                              const NetworkLink& link) = 0;

  // The new "host live upgrade" operation (§4.5.2): transplants every VM on
  // this host onto a `target`-kind hypervisor via InPlaceTP.
  virtual Result<TransplantReport> HostLiveUpgrade(HypervisorKind target,
                                                   const InPlaceOptions& options) = 0;

  // Suspends the VM and packages its complete state (Nova's suspend-to-disk
  // shape); the VM is destroyed on success. The blob restores on any driver.
  virtual Result<std::vector<uint8_t>> CheckpointInstance(VmId id) = 0;
  virtual Result<VmId> RestoreInstance(std::span<const uint8_t> blob) = 0;
};

// libvirt-equivalent driver over the simulated hypervisors.
class LibvirtDriver : public ComputeDriver {
 public:
  explicit LibvirtDriver(std::unique_ptr<Hypervisor> hypervisor);

  std::string_view driver_name() const override { return "libvirt"; }
  HypervisorKind hypervisor_kind() const override { return hypervisor_->kind(); }

  Result<VmId> Spawn(const VmConfig& config) override;
  Result<void> Suspend(VmId id) override;
  Result<void> Resume(VmId id) override;
  Result<void> Destroy(VmId id) override;
  std::vector<VmInfo> ListInstances() const override;
  Result<VmInfo> GetInstance(VmId id) const override;
  uint64_t FreeGuestMemoryBytes() const override;
  Result<MigrationResult> LiveMigrate(VmId id, ComputeDriver& destination,
                                      const NetworkLink& link) override;
  Result<TransplantReport> HostLiveUpgrade(HypervisorKind target,
                                           const InPlaceOptions& options) override;
  Result<std::vector<uint8_t>> CheckpointInstance(VmId id) override;
  Result<VmId> RestoreInstance(std::span<const uint8_t> blob) override;

  // Escape hatch for tests and the migration path (not used by Nova code,
  // mirroring the paper's finding that nobody scripts hypervisors directly).
  Hypervisor& hypervisor() { return *hypervisor_; }
  const Hypervisor& hypervisor() const { return *hypervisor_; }

 private:
  std::unique_ptr<Hypervisor> hypervisor_;
};

}  // namespace hypertp

#endif  // HYPERTP_SRC_ORCH_COMPUTE_DRIVER_H_
