#include "src/orch/compute_driver.h"

#include "src/base/logging.h"
#include "src/core/checkpoint.h"

namespace hypertp {

LibvirtDriver::LibvirtDriver(std::unique_ptr<Hypervisor> hypervisor)
    : hypervisor_(std::move(hypervisor)) {}

Result<VmId> LibvirtDriver::Spawn(const VmConfig& config) {
  return hypervisor_->CreateVm(config);
}

Result<void> LibvirtDriver::Suspend(VmId id) { return hypervisor_->PauseVm(id); }

Result<void> LibvirtDriver::Resume(VmId id) { return hypervisor_->ResumeVm(id); }

Result<void> LibvirtDriver::Destroy(VmId id) { return hypervisor_->DestroyVm(id); }

std::vector<VmInfo> LibvirtDriver::ListInstances() const {
  std::vector<VmInfo> instances;
  for (VmId id : hypervisor_->ListVms()) {
    auto info = hypervisor_->GetVmInfo(id);
    if (info.ok()) {
      instances.push_back(*info);
    }
  }
  return instances;
}

Result<VmInfo> LibvirtDriver::GetInstance(VmId id) const { return hypervisor_->GetVmInfo(id); }

uint64_t LibvirtDriver::FreeGuestMemoryBytes() const {
  return hypervisor_->machine().memory().free_frames() * kPageSize;
}

Result<MigrationResult> LibvirtDriver::LiveMigrate(VmId id, ComputeDriver& destination,
                                                   const NetworkLink& link) {
  auto* dest = dynamic_cast<LibvirtDriver*>(&destination);
  if (dest == nullptr) {
    return UnimplementedError("libvirt: migration to a foreign driver type");
  }
  MigrationEngine engine(link);
  return engine.MigrateVm(*hypervisor_, id, dest->hypervisor(), MigrationConfig{});
}

Result<TransplantReport> LibvirtDriver::HostLiveUpgrade(HypervisorKind target,
                                                        const InPlaceOptions& options) {
  HYPERTP_LOG(kInfo, "libvirt") << "host live upgrade to " << HypervisorKindName(target);
  std::unique_ptr<Hypervisor> aborted;
  auto result = InPlaceTransplant::Run(std::move(hypervisor_), target, options, &aborted);
  if (!result.ok()) {
    if (aborted != nullptr) {
      hypervisor_ = std::move(aborted);  // Clean abort: keep running the old one.
    }
    return result.error();
  }
  hypervisor_ = std::move(result->hypervisor);
  return result->report;
}

Result<std::vector<uint8_t>> LibvirtDriver::CheckpointInstance(VmId id) {
  HYPERTP_RETURN_IF_ERROR(hypervisor_->PrepareVmForTransplant(id));
  HYPERTP_RETURN_IF_ERROR(hypervisor_->PauseVm(id));
  HYPERTP_ASSIGN_OR_RETURN(auto blob, SaveVmCheckpoint(*hypervisor_, id));
  HYPERTP_RETURN_IF_ERROR(hypervisor_->DestroyVm(id));
  return blob;
}

Result<VmId> LibvirtDriver::RestoreInstance(std::span<const uint8_t> blob) {
  HYPERTP_ASSIGN_OR_RETURN(VmId id, RestoreVmCheckpoint(*hypervisor_, blob));
  HYPERTP_RETURN_IF_ERROR(hypervisor_->ResumeVm(id));
  return id;
}

}  // namespace hypertp
