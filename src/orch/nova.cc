#include "src/orch/nova.h"

#include <algorithm>

#include "src/base/logging.h"

namespace hypertp {

size_t NovaManager::RegisterHost(std::unique_ptr<ComputeDriver> driver) {
  hosts_.push_back(std::move(driver));
  return hosts_.size() - 1;
}

uint64_t NovaManager::UsedMemory(size_t host) const {
  uint64_t used = 0;
  for (const auto& [uid, inst] : instances_) {
    if (inst.host == host) {
      auto info = hosts_[host]->GetInstance(inst.vm_id);
      if (info.ok()) {
        used += info->memory_bytes;
      }
    }
  }
  return used;
}

Result<size_t> NovaManager::ScheduleFor(bool hypertp_capable, uint32_t vcpus,
                                        uint64_t memory_bytes) const {
  (void)vcpus;
  size_t best = hosts_.size();
  int best_score = -1;
  for (size_t h = 0; h < hosts_.size(); ++h) {
    // Capacity filter: leave 1 GiB of host headroom.
    if (hosts_[h]->FreeGuestMemoryBytes() < memory_bytes + (1ull << 30)) {
      continue;
    }
    // TransplantableTogether filter (§4.5.2 item 4): score hosts by how
    // uniform the resulting population would be.
    int same = 0, different = 0;
    for (const auto& [uid, inst] : instances_) {
      if (inst.host == h) {
        (inst.hypertp_capable == hypertp_capable ? same : different) += 1;
      }
    }
    int score = different > 0 ? 0 : (same > 0 ? 2 : 1);
    // Tie-break toward emptier hosts.
    score = score * 1000 - same - different;
    if (score > best_score) {
      best_score = score;
      best = h;
    }
  }
  if (best == hosts_.size()) {
    return ResourceExhaustedError("nova: no host satisfies the request");
  }
  return best;
}

Result<uint64_t> NovaManager::Boot(const VmConfig& config, bool hypertp_capable) {
  HYPERTP_ASSIGN_OR_RETURN(size_t host,
                           ScheduleFor(hypertp_capable, config.vcpus, config.memory_bytes));
  HYPERTP_ASSIGN_OR_RETURN(VmId vm_id, hosts_[host]->Spawn(config));
  HYPERTP_ASSIGN_OR_RETURN(VmInfo info, hosts_[host]->GetInstance(vm_id));

  NovaInstance instance;
  instance.uid = info.uid;
  instance.name = config.name;
  instance.host = host;
  instance.vm_id = vm_id;
  instance.hypertp_capable = hypertp_capable;
  instances_[instance.uid] = instance;
  return instance.uid;
}

Result<void> NovaManager::Delete(uint64_t uid) {
  auto it = instances_.find(uid);
  if (it == instances_.end()) {
    return NotFoundError("nova: no instance " + std::to_string(uid));
  }
  HYPERTP_RETURN_IF_ERROR(hosts_[it->second.host]->Destroy(it->second.vm_id));
  instances_.erase(it);
  return OkResult();
}

Result<const NovaInstance*> NovaManager::GetInstance(uint64_t uid) const {
  auto it = instances_.find(uid);
  if (it == instances_.end()) {
    return NotFoundError("nova: no instance " + std::to_string(uid));
  }
  return &it->second;
}

std::vector<NovaInstance> NovaManager::InstancesOn(size_t host) const {
  std::vector<NovaInstance> out;
  for (const auto& [uid, inst] : instances_) {
    if (inst.host == host) {
      out.push_back(inst);
    }
  }
  return out;
}

Result<int> NovaManager::EvacuateHost(size_t host, const NetworkLink& link) {
  if (host >= hosts_.size()) {
    return InvalidArgumentError("nova: no host " + std::to_string(host));
  }
  int moved = 0;
  for (const NovaInstance& inst : InstancesOn(host)) {
    size_t dest = hosts_.size();
    auto info = hosts_[host]->GetInstance(inst.vm_id);
    for (size_t h = 0; h < hosts_.size(); ++h) {
      if (h != host && info.ok() &&
          hosts_[h]->FreeGuestMemoryBytes() > info->memory_bytes + (1ull << 30)) {
        dest = h;
        break;
      }
    }
    if (dest == hosts_.size()) {
      return ResourceExhaustedError("nova: no capacity to evacuate instance " +
                                    std::to_string(inst.uid));
    }
    HYPERTP_ASSIGN_OR_RETURN(MigrationResult migration,
                             hosts_[host]->LiveMigrate(inst.vm_id, *hosts_[dest], link));
    instances_[inst.uid].host = dest;
    instances_[inst.uid].vm_id = migration.dest_vm_id;
    ++moved;
  }
  return moved;
}

Result<void> NovaManager::ColdMigrate(uint64_t uid, size_t dest_host) {
  auto it = instances_.find(uid);
  if (it == instances_.end()) {
    return NotFoundError("nova: no instance " + std::to_string(uid));
  }
  if (dest_host >= hosts_.size()) {
    return InvalidArgumentError("nova: no host " + std::to_string(dest_host));
  }
  if (dest_host == it->second.host) {
    return InvalidArgumentError("nova: instance already on host " + std::to_string(dest_host));
  }
  HYPERTP_ASSIGN_OR_RETURN(auto blob, hosts_[it->second.host]->CheckpointInstance(it->second.vm_id));
  HYPERTP_ASSIGN_OR_RETURN(VmId new_id, hosts_[dest_host]->RestoreInstance(blob));
  it->second.host = dest_host;
  it->second.vm_id = new_id;
  return OkResult();
}

Result<HostUpgradeOutcome> NovaManager::HostLiveUpgrade(size_t host, HypervisorKind target,
                                                        const NetworkLink& link,
                                                        const InPlaceOptions& options) {
  if (host >= hosts_.size()) {
    return InvalidArgumentError("nova: no host " + std::to_string(host));
  }
  HostUpgradeOutcome outcome;

  // Step 1 (§4.5.2 item 3): migrate away instances that do not support
  // HyperTP, using the existing live_migration operation.
  for (const NovaInstance& inst : InstancesOn(host)) {
    if (inst.hypertp_capable) {
      continue;
    }
    // Pick any other host with room, preferring non-capable company.
    size_t dest = hosts_.size();
    for (size_t h = 0; h < hosts_.size(); ++h) {
      auto info = hosts_[host]->GetInstance(inst.vm_id);
      if (h != host && info.ok() &&
          hosts_[h]->FreeGuestMemoryBytes() > info->memory_bytes + (1ull << 30)) {
        dest = h;
        break;
      }
    }
    if (dest == hosts_.size()) {
      return ResourceExhaustedError("nova: cannot evacuate non-HyperTP instance " +
                                    std::to_string(inst.uid));
    }
    HYPERTP_ASSIGN_OR_RETURN(MigrationResult migration,
                             hosts_[host]->LiveMigrate(inst.vm_id, *hosts_[dest], link));
    instances_[inst.uid].host = dest;
    instances_[inst.uid].vm_id = migration.dest_vm_id;
    ++outcome.migrated_away;
  }

  // Step 2: trigger the in-place upgrade; the driver performs the whole
  // HyperTP workflow.
  HYPERTP_ASSIGN_OR_RETURN(outcome.report, hosts_[host]->HostLiveUpgrade(target, options));

  // Step 3: update Nova's database — instances kept their uid but have new
  // hypervisor-local ids.
  for (const VmInfo& info : hosts_[host]->ListInstances()) {
    auto it = instances_.find(info.uid);
    if (it != instances_.end() && it->second.host == host) {
      it->second.vm_id = info.id;
      ++outcome.transplanted_in_place;
    }
  }
  HYPERTP_LOG(kInfo, "nova") << "host " << host << " upgraded to "
                             << HypervisorKindName(target) << ": " << outcome.migrated_away
                             << " migrated away, " << outcome.transplanted_in_place
                             << " transplanted in place";
  return outcome;
}

}  // namespace hypertp
