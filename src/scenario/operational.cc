#include "src/scenario/operational.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/campaign/campaign.h"
#include "src/fleet/fleet_controller.h"
#include "src/obs/trace.h"
#include "src/sim/executor.h"
#include "src/sim/rng.h"
#include "src/vulndb/vulndb.h"

namespace hypertp {
namespace {

constexpr double kDaySeconds = 24.0 * 3600.0;

SimDuration Days(double d) { return static_cast<SimDuration>(d * kDaySeconds * 1e9); }

std::string Stamp(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "day %6.1f", ToSeconds(t) / kDaySeconds);
  return buf;
}

}  // namespace

OperationalReport RunOperationalSimulation(const OperationalConfig& config) {
  OperationalReport report;
  Rng rng(config.seed);
  SimExecutor executor;
  Tracer* const tracer = config.tracer;

  // Dedicated stream for fleet rollouts, forked unconditionally so the
  // disclosure sequence is identical across fleet modes for one seed.
  Rng fleet_stream = rng.Fork();
  // Adaptive mechanism policy: only the event-driven modes execute per-host
  // work the policy can adapt; the closed form stays a pure multiplication.
  const bool adaptive = config.fleet_policy.adaptive() &&
                        config.fleet_mode != FleetExecutionMode::kClosedForm;
  report.policy_adaptive = adaptive;
  // One nested executor reused across every rollout of the year (an aborted
  // rollout's Stop() must not poison the next one).
  SimExecutor fleet_executor;

  // Runs one fleet-wide transplant through the event-driven control plane
  // and returns its makespan. Hosts stranded on the vulnerable hypervisor
  // (permanent failures, or never reached because the rollout aborted) stay
  // exposed for `residual_exposure_days` — the rest of the patch wait.
  auto fleet_rollout = [&](double residual_exposure_days) -> SimDuration {
    FleetConfig fleet_config;
    fleet_config.hosts = config.fleet.hosts;
    fleet_config.parallel_hosts = config.fleet.parallel_hosts;
    fleet_config.per_host_transplant = config.fleet.per_host_transplant;
    fleet_config.failure_probability = config.fleet_failure_probability;
    fleet_config.latency_jitter = config.fleet_latency_jitter;
    fleet_config.max_retries = config.fleet_max_retries;
    fleet_config.abort_threshold = config.fleet_abort_threshold;
    fleet_config.post_pause_fraction = config.fleet_post_pause_fraction;
    fleet_config.rollback_failure_probability = config.fleet_rollback_failure_probability;
    fleet_config.rollback_time = config.fleet_rollback_time;
    if (config.fleet_mode == FleetExecutionMode::kFaultStorm) {
      fleet_config.crash_storm = config.fleet_storm;
    }
    if (adaptive) {
      fleet_config.policy = config.fleet_policy;
      fleet_config.policy.vms_per_host = config.vms_per_host;
    }
    fleet_config.seed = fleet_stream.NextU64();
    FleetController controller(fleet_executor, fleet_config);
    const FleetRolloutReport& rollout = controller.Run();
    ++report.fleet_rollouts;
    report.fleet_retries += rollout.retries;
    report.fleet_stranded_hosts += rollout.failed + rollout.untouched;
    report.fleet_aborts += rollout.aborted;
    report.fleet_post_pause_faults += rollout.post_pause_faults;
    report.fleet_rollbacks += rollout.rollbacks;
    report.fleet_rollback_failures += rollout.rollback_failures;
    report.fleet_crashes += rollout.crashes;
    report.fleet_crash_salvages += rollout.crash_salvages;
    report.fleet_crash_live_recoveries += rollout.crash_live_recoveries;
    report.fleet_crash_rollbacks += rollout.crash_rollbacks;
    report.fleet_lost += rollout.lost;
    if (adaptive) {
      report.fleet_refused_hosts += rollout.refused;
      report.policy_inplace_vms += rollout.policy_inplace_vms;
      report.policy_migrate_vms += rollout.policy_migrate_vms;
      report.policy_refused_vms += rollout.policy_refused_vms;
      // Per-VM downtime is what the plans actually charged, not the flat
      // per_vm_downtime constant (the call sites skip that charge).
      report.vm_downtime_paid += rollout.policy_vm_downtime;
    }
    if (fleet_config.hosts > 0 && !rollout.complete) {
      // Lost hosts are dead, not exposed; only stranded-but-running hosts
      // keep accruing the residual patch wait.
      const double stranded_fraction =
          static_cast<double>(fleet_config.hosts - rollout.upgraded - rollout.lost) /
          fleet_config.hosts;
      report.exposure_days_hypertp += stranded_fraction * residual_exposure_days;
    }
    return rollout.makespan;
  };

  // Same contract as fleet_rollout, but through the sharded campaign control
  // plane: N coordinated per-shard controllers under the SLO governor. A
  // planning error (degenerate knobs) logs and charges zero makespan rather
  // than aborting the year.
  auto campaign_rollout = [&](double residual_exposure_days) -> SimDuration {
    CampaignConfig cc;
    CampaignDatacenter dc;
    dc.name = "dc0";
    dc.racks = std::max(config.campaign_shards, 1);
    dc.hosts_per_rack = std::max(config.fleet.hosts / dc.racks, 1);
    dc.vms_per_host = config.vms_per_host;
    cc.datacenters.push_back(dc);
    cc.shards = dc.racks;
    cc.parallel_hosts_per_shard = std::max(config.fleet.parallel_hosts / cc.shards, 1);
    cc.per_host_transplant = config.fleet.per_host_transplant;
    cc.failure_probability = config.fleet_failure_probability;
    cc.latency_jitter = config.fleet_latency_jitter;
    cc.max_retries = config.fleet_max_retries;
    cc.post_pause_fraction = config.fleet_post_pause_fraction;
    cc.rollback_failure_probability = config.fleet_rollback_failure_probability;
    cc.rollback_time = config.fleet_rollback_time;
    cc.slo = config.campaign_slo;
    if (adaptive) {
      cc.policy = config.fleet_policy;
      // The single synthetic DC carries the policy's environment signals.
      cc.datacenters[0].link_gbps = config.fleet_policy.link_gbps;
      cc.datacenters[0].host_headroom = config.fleet_policy.host_headroom;
    }
    cc.seed = fleet_stream.NextU64();
    CampaignPlanner planner(std::move(cc));
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      report.event_log.push_back("campaign rejected: " + run.error().ToString());
      return 0;
    }
    const CampaignReport& campaign = *run;
    ++report.fleet_rollouts;
    report.fleet_retries += campaign.retries;
    report.fleet_stranded_hosts += campaign.failed + campaign.untouched;
    report.fleet_aborts += campaign.aborted;
    report.fleet_post_pause_faults += campaign.post_pause_faults;
    report.fleet_rollbacks += campaign.rollbacks;
    report.fleet_rollback_failures += campaign.rollback_failures;
    report.fleet_throttled_epochs += campaign.throttled_epochs;
    if (adaptive) {
      report.fleet_refused_hosts += campaign.refused;
      report.policy_inplace_vms += campaign.policy_inplace_vms;
      report.policy_migrate_vms += campaign.policy_migrate_vms;
      report.policy_refused_vms += campaign.policy_refused_vms;
      report.vm_downtime_paid += campaign.policy_vm_downtime;
    }
    if (campaign.hosts > 0 && !campaign.complete) {
      const double stranded_fraction =
          static_cast<double>(campaign.hosts - campaign.upgraded) / campaign.hosts;
      report.exposure_days_hypertp += stranded_fraction * residual_exposure_days;
    }
    return campaign.makespan;
  };

  // One fleet-wide transplant under the configured execution mode; returns
  // the charged makespan.
  auto run_rollout = [&](double residual_exposure_days) -> SimDuration {
    switch (config.fleet_mode) {
      case FleetExecutionMode::kFleetController:
      case FleetExecutionMode::kFaultStorm:
        return fleet_rollout(residual_exposure_days);
      case FleetExecutionMode::kCampaign:
        return campaign_rollout(residual_exposure_days);
      case FleetExecutionMode::kClosedForm:
        break;
    }
    return FleetTransplantTime(config.fleet);
  };

  // Historical disclosure rate: critical flaws affecting the home hypervisor
  // per year, averaged over the dataset's 7 years.
  std::vector<const CveRecord*> candidates;
  for (const CveRecord& r : VulnDatabase()) {
    if (r.severity() == VulnSeverity::kCritical && r.Affects(config.home)) {
      candidates.push_back(&r);
    }
  }
  if (candidates.empty()) {
    report.event_log.push_back("no critical history for this hypervisor; quiet year");
    return report;
  }
  const double per_year = static_cast<double>(candidates.size()) / 7.0;
  const SimDuration horizon = Days(365.0 * config.years);

  // Fleet state.
  HypervisorKind current = config.home;
  SimTime safe_until = -1;  // While transplanted away: when the patch lands.
  const int total_vms = config.fleet.hosts * config.vms_per_host;

  // Poisson arrivals: exponential inter-arrival times.
  std::function<void()> schedule_next = [&]() {
    const double u = std::max(rng.NextDouble(), 1e-12);
    const double gap_days = -std::log(u) * 365.0 / per_year;
    const SimTime at = executor.now() + Days(gap_days);
    if (at >= horizon) {
      return;
    }
    executor.ScheduleAt(at, [&, at]() {
      const CveRecord* cve = candidates[rng.NextBelow(candidates.size())];
      ++report.disclosures;
      const double window =
          cve->window_days >= 0 ? cve->window_days : config.fallback_window_days;
      const double traditional = window + config.patch_policy.apply_delay_days;
      report.exposure_days_traditional += traditional;
      SpanId disclosure_mark = 0;
      if (tracer != nullptr) {
        disclosure_mark = tracer->AddInstant("disclosure:" + cve->id, at, "disclosures");
        tracer->SetAttribute(disclosure_mark, "window_days", window);
      }

      if (current != config.home && at < safe_until) {
        // Already transplanted away; a home-hypervisor flaw cannot touch us.
        ++report.already_safe;
        if (tracer != nullptr) {
          tracer->SetAttribute(disclosure_mark, "outcome", "already_safe");
        }
        report.event_log.push_back(Stamp(at) + ": " + cve->id +
                                   " disclosed while fleet is on " +
                                   std::string(HypervisorKindName(current)) + " — unaffected");
      } else {
        auto decision = DecideTransplant(config.home, {{cve}}, config.pool);
        if (!decision.transplant_recommended) {
          ++report.no_safe_target;
          report.exposure_days_hypertp += traditional;  // Stuck waiting, like Fig. 1(a).
          if (tracer != nullptr) {
            tracer->SetAttribute(disclosure_mark, "outcome", "no_safe_target");
          }
          report.event_log.push_back(Stamp(at) + ": " + cve->id +
                                     " — no safe target, exposed " +
                                     std::to_string(static_cast<int>(traditional)) + " days");
        } else {
          // Transplant away after the reaction time; back when the patch lands.
          ++report.transplants_away;
          current = *decision.target;
          const SimDuration fleet_time = run_rollout(traditional);
          const SimDuration exposed = config.reaction_time + fleet_time;
          if (tracer != nullptr) {
            tracer->SetAttribute(disclosure_mark, "outcome", "transplant");
            const SpanId rollout = tracer->AddSpan(
                "rollout:away", at + config.reaction_time, fleet_time, 0, "fleet");
            tracer->SetAttribute(rollout, "cve", std::string_view(cve->id));
            tracer->SetAttribute(rollout, "target", HypervisorKindName(current));
          }
          report.exposure_days_hypertp += ToSeconds(exposed) / kDaySeconds;
          if (!adaptive) {
            // Flat Fig. 6 charge; adaptive rollouts charged their modeled
            // per-VM downtime inside the rollout lambda instead.
            report.vm_downtime_paid += config.per_vm_downtime * total_vms;
          }
          safe_until = at + Days(window);
          report.event_log.push_back(Stamp(at) + ": " + cve->id + " — fleet -> " +
                                     std::string(HypervisorKindName(current)));
          executor.ScheduleAt(safe_until, [&, when = safe_until]() {
            // Patch shipped and applied on the home hypervisor: return.
            if (current != config.home) {
              ++report.transplants_back;
              current = config.home;
              SimDuration back_time = 0;
              if (config.fleet_mode != FleetExecutionMode::kClosedForm) {
                // The return trip is a rollout too; a straggler here is no
                // longer exposure (home is patched), just counted work.
                back_time = run_rollout(0.0);
              } else if (tracer != nullptr) {
                // Closed form charges no makespan to the report; compute it
                // only so the trace span has a width.
                back_time = FleetTransplantTime(config.fleet);
              }
              if (tracer != nullptr) {
                const SpanId rollout =
                    tracer->AddSpan("rollout:back", when, back_time, 0, "fleet");
                tracer->SetAttribute(rollout, "target", HypervisorKindName(config.home));
              }
              if (!adaptive) {
                report.vm_downtime_paid += config.per_vm_downtime * total_vms;
              }
              report.event_log.push_back(Stamp(when) + ": patch applied — fleet -> " +
                                         std::string(HypervisorKindName(config.home)));
            }
          });
        }
      }
      schedule_next();
    });
  };
  schedule_next();
  executor.RunUntil(horizon);
  return report;
}

}  // namespace hypertp
