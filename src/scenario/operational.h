// Operational simulation: a year (or more) in the life of a HyperTP
// datacenter, driven by the discrete-event executor.
//
// Critical disclosures arrive as a Poisson process at the dataset's
// historical rate for the fleet's home hypervisor. Each disclosure runs the
// transplant policy: when a safe alternate exists the fleet transplants away
// within the reaction time and transplants back once the patch ships (the
// CVE's recorded window, or a fallback); common flaws leave the fleet
// exposed for the full patch-wait. The report aggregates both worlds'
// exposure and the downtime HyperTP charged — the paper's Fig. 1 story,
// played forward as a stochastic process.

#ifndef HYPERTP_SRC_SCENARIO_OPERATIONAL_H_
#define HYPERTP_SRC_SCENARIO_OPERATIONAL_H_

#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/sim/time.h"
#include "src/vulndb/window_model.h"

namespace hypertp {

class Tracer;

// How each disclosure's fleet-wide transplant is timed.
enum class FleetExecutionMode : uint8_t {
  // ceil(hosts/parallel) * per_host (FleetTransplantTime) — no failures,
  // no stragglers.
  kClosedForm,
  // Event-driven rollout through src/fleet's FleetController: wave
  // scheduling, injected failures, retries with backoff, abort threshold.
  // Identical to the closed form when fault-free.
  kFleetController,
  // Sharded campaign through src/campaign's CampaignPlanner: the fleet is
  // laid out as one datacenter of `campaign_shards` racks and every
  // disclosure's rollout runs N coordinated per-shard controllers under the
  // `campaign_slo` budgets. Hosts round down to a whole number of racks.
  kCampaign,
  // kFleetController plus the `fleet_storm` crash storm replayed against
  // every rollout of the year: seeded hypervisor crashes mid-traffic, each
  // answered by an unplanned InPlaceTP recovery from the last PRAM image
  // (ReHype-mode salvage) — or lost when the crash tore the ledger.
  kFaultStorm,
};

struct OperationalConfig {
  HypervisorKind home = HypervisorKind::kXen;
  std::vector<HypervisorKind> pool = {HypervisorKind::kXen, HypervisorKind::kKvm};
  FleetProfile fleet;
  PatchPolicy patch_policy;
  // Operator reaction: disclosure -> fleet transplant begins.
  SimDuration reaction_time = Seconds(4 * 3600);  // 4 hours.
  int years = 1;
  uint64_t seed = 1;
  double fallback_window_days = 60.0;
  // Per-VM downtime charged by one InPlaceTP pass (Fig. 6).
  SimDuration per_vm_downtime = SecondsF(1.7);
  int vms_per_host = 10;

  FleetExecutionMode fleet_mode = FleetExecutionMode::kClosedForm;
  // Fault-injection knobs for kFleetController mode.
  double fleet_failure_probability = 0.0;
  double fleet_latency_jitter = 0.0;
  int fleet_max_retries = 3;
  double fleet_abort_threshold = 0.25;
  // Post-pause recovery (failure-atomic transplant): fraction of failed
  // attempts stranded past the point of no return, chance the PRAM ledger
  // rollback itself fails, and the rollback's duration.
  double fleet_post_pause_fraction = 0.0;
  double fleet_rollback_failure_probability = 0.0;
  SimDuration fleet_rollback_time = Seconds(5);
  // kFaultStorm mode: the storm replayed against every rollout. Ignored by
  // the other modes so their byte-exact outputs never move.
  CrashStormConfig fleet_storm;

  // Adaptive mechanism selection (src/policy/) for every rollout of the
  // year. With kFixed (the default) nothing changes: per-VM downtime is the
  // flat per_vm_downtime charge and rollout timings are the configured
  // constants, byte-identical to earlier builds. With kAdaptive (and any
  // event-driven fleet_mode — kClosedForm has no per-host execution to
  // adapt), each rollout prices every VM individually: in-place guests are
  // charged their modeled pause, migrated guests the switchover brownout,
  // and hosts with refused guests stay exposed. vms_per_host above feeds the
  // policy's per-host population.
  policy::PolicyConfig fleet_policy;

  // kCampaign mode: shard count and fleet-wide SLO budgets for the sharded
  // campaign control plane. The per-shard wave width is
  // fleet.parallel_hosts / campaign_shards (at least 1), so total in-flight
  // capacity matches the single-controller modes.
  int campaign_shards = 4;
  CampaignSlo campaign_slo;

  // Observability: when non-null the year's timeline is recorded — one
  // instant per disclosure (track "disclosures") and one span per fleet-wide
  // rollout (track "fleet"). The nested fleet executor's internal timeline is
  // not propagated: its clock restarts per rollout and is unrelated to the
  // operational clock. Null (the default) records nothing.
  Tracer* tracer = nullptr;
};

struct OperationalReport {
  int disclosures = 0;
  int transplants_away = 0;
  int transplants_back = 0;
  int no_safe_target = 0;   // Common flaws: HyperTP cannot help.
  int already_safe = 0;     // Disclosed while the fleet was transplanted away.
  double exposure_days_traditional = 0.0;  // Patch-wait world.
  double exposure_days_hypertp = 0.0;      // This world.
  // Cumulative per-VM downtime HyperTP charged (both directions).
  SimDuration vm_downtime_paid = 0;
  // kFleetController mode: aggregates over every rollout the year ran.
  int fleet_rollouts = 0;
  int fleet_retries = 0;
  int fleet_stranded_hosts = 0;  // Failed or never reached by an abort.
  int fleet_aborts = 0;
  // Post-pause recovery outcomes across every rollout of the year.
  int fleet_post_pause_faults = 0;
  int fleet_rollbacks = 0;          // Hosts salvaged by PRAM rollback.
  int fleet_rollback_failures = 0;  // Hosts lost to a failed rollback.
  // kFaultStorm mode: crash strikes and their unplanned-recovery outcomes,
  // summed over every rollout of the year.
  int fleet_crashes = 0;
  int fleet_crash_salvages = 0;
  int fleet_crash_live_recoveries = 0;
  int fleet_crash_rollbacks = 0;
  int fleet_lost = 0;
  // kCampaign mode: epoch barriers the SLO governor spent throttled, summed
  // over every campaign of the year.
  int fleet_throttled_epochs = 0;
  // Adaptive mechanism policy (all zero/false under kFixed, and absent from
  // the report JSON then).
  bool policy_adaptive = false;
  int fleet_refused_hosts = 0;  // Hosts excluded by refusals, summed over rollouts.
  int policy_inplace_vms = 0;   // Per-VM decisions, summed over rollouts.
  int policy_migrate_vms = 0;
  int policy_refused_vms = 0;
  std::vector<std::string> event_log;

  double exposure_reduction_factor() const {
    return exposure_days_hypertp > 0.0 ? exposure_days_traditional / exposure_days_hypertp
                                       : 0.0;
  }
};

OperationalReport RunOperationalSimulation(const OperationalConfig& config);

}  // namespace hypertp

#endif  // HYPERTP_SRC_SCENARIO_OPERATIONAL_H_
