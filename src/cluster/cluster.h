// Cluster-scale orchestration of HyperTP (paper §5.4).
//
// A BtrPlace-like reconfiguration planner: to upgrade the whole cluster's
// hypervisor, hosts are taken offline in groups. VMs tagged
// InPlaceTP-compatible stay on their host through the micro-reboot; the rest
// are live-migrated to another host before their host's group goes offline.
// The planner produces the migration plan; the executor computes the
// resulting wall-clock, which reproduces Fig. 13: migrations (and total
// time) fall steeply as the InPlaceTP-compatible share grows.
//
// Two tagging modes feed the planner:
//  - Legacy/static (the paper's): PaperCluster tags a fixed random fraction
//    of VMs InPlaceTP-compatible. This stays the default, and replays are
//    byte-identical to earlier builds.
//  - Policy-driven: ApplyMechanismPolicy retags every VM from a per-VM
//    MechanismPolicy decision (src/policy/) priced from the VM's memory
//    size, dirty behavior, link bandwidth, headroom and rollback risk.
// The executor's migration pricing itself delegates to the shared
// TransplantCostModel, so a costing change lands here and in the fleet and
// window-model layers at once.

#ifndef HYPERTP_SRC_CLUSTER_CLUSTER_H_
#define HYPERTP_SRC_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hv/hypervisor.h"
#include "src/policy/policy.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace hypertp {

// What the VM is doing, per the paper's cluster mix: 30% video streaming,
// 30% CPU+memory intensive, 40% idle.
enum class ClusterVmRole : uint8_t { kIdle, kStreaming, kCpuMem };

struct ClusterVm {
  uint64_t uid = 0;
  std::string name;
  uint32_t vcpus = 1;
  uint64_t memory_bytes = 4ull << 30;  // Paper: 1 vCPU / 4 GB per cluster VM.
  ClusterVmRole role = ClusterVmRole::kIdle;
  bool inplace_compatible = false;
  size_t host = 0;  // Index into ClusterModel::hosts.
};

struct ClusterHost {
  uint64_t id = 0;
  int guest_cpus = 30;                  // Threads available to guests.
  uint64_t guest_memory = 94ull << 30;  // RAM available to guests.
  HypervisorKind hypervisor = HypervisorKind::kXen;
  bool upgraded = false;
  std::vector<size_t> vms;  // Indices into ClusterModel::vms.
};

class ClusterModel {
 public:
  size_t AddHost(ClusterHost host);
  // Places the VM on `host`; fails when capacity would be exceeded.
  Result<size_t> AddVm(ClusterVm vm, size_t host);

  const std::vector<ClusterHost>& hosts() const { return hosts_; }
  const std::vector<ClusterVm>& vms() const { return vms_; }

  // Free capacity on a host.
  int FreeCpus(size_t host) const;
  uint64_t FreeMemory(size_t host) const;
  // Moves a VM between hosts (capacity-checked).
  Result<void> MoveVm(size_t vm, size_t to_host);
  void MarkUpgraded(size_t host) { hosts_[host].upgraded = true; }
  void SetInplaceCompatible(size_t vm, bool compatible) {
    vms_[vm].inplace_compatible = compatible;
  }

  // The paper's evaluation cluster: 10 hosts, 10 VMs each (1 vCPU / 4 GB),
  // 30% streaming / 30% CPU+mem / 40% idle, with `inplace_fraction` of the
  // VMs tagged InPlaceTP-compatible (deterministic given `seed`).
  static ClusterModel PaperCluster(double inplace_fraction, uint64_t seed = 42);

 private:
  std::vector<ClusterHost> hosts_;
  std::vector<ClusterVm> vms_;
};

// Cluster role → policy activity class (same three-way mix, different enum
// order; the policy layer sits below cluster and cannot share the type).
policy::VmActivity ToVmActivity(ClusterVmRole role);

// Policy-layer view of one cluster VM: memory/vCPUs plus the dirty behavior
// implied by its role.
policy::VmSignals ClusterVmSignals(const ClusterVm& vm);

// Tally of one ApplyMechanismPolicy pass.
struct ClusterPolicyOutcome {
  int inplace_vms = 0;
  int migrate_vms = 0;
  // VMs the policy refused (neither mechanism met its budget). The cluster
  // planner has no refuse path — a refused VM is left untagged and will be
  // evacuated like a MigrationTP one — but the count surfaces so callers can
  // see the policy disagreed with executing at all.
  int refused_vms = 0;
};

// Replaces the static tagging with per-VM policy decisions: every VM's
// inplace_compatible flag is recomputed from MechanismPolicy::Decide on its
// ClusterVmSignals. Deterministic (no RNG); with policy mode == kFixed the
// caller should simply not call this, which preserves the legacy tagging
// byte for byte.
ClusterPolicyOutcome ApplyMechanismPolicy(ClusterModel& cluster,
                                          const policy::MechanismPolicy& policy,
                                          const policy::EnvSignals& env,
                                          HypervisorKind target = HypervisorKind::kKvm);

// One live migration in the plan.
struct MigrationOp {
  size_t vm = 0;
  size_t from_host = 0;
  size_t to_host = 0;
};

// One group's worth of work: evacuate, then upgrade the group in place.
struct UpgradeStep {
  std::vector<size_t> group;           // Hosts taken offline together.
  std::vector<MigrationOp> migrations; // Evacuations required first.
};

struct UpgradePlan {
  std::vector<UpgradeStep> steps;

  int total_migrations() const;
};

// Plans the full-cluster upgrade with hosts processed `group_size` at a
// time. Placement prefers already-upgraded hosts (avoiding double moves),
// then falls back to first-fit among remaining hosts — the cascading
// re-migrations this causes at low compatibility are exactly why pure
// MigrationTP scales poorly (paper §1, Alibaba's 15-day estimate).
// When `rebalance` is set (the default, matching BtrPlace's load-balancing
// constraints), a final phase evens out the placement skew the evacuations
// created, adding further migrations at low compatibility.
Result<UpgradePlan> PlanClusterUpgrade(const ClusterModel& cluster, int group_size,
                                       bool rebalance = true);

struct PlanExecutionStats {
  int migrations = 0;
  // Sum of individual migration durations (network work done); invariant
  // under `parallel_streams` — only total_time shrinks with more streams.
  SimDuration migration_time = 0;
  SimDuration inplace_time = 0;    // Sum of in-place host upgrades.
  SimDuration total_time = 0;      // End-to-end plan wall-clock.
};

struct ClusterExecutionParams {
  double network_gbps = 10.0;
  // BtrPlace actuation overhead per migration (setup, suspend, bookkeeping).
  SimDuration per_migration_overhead = SecondsF(4.0);
  // In-place upgrade of one host (micro-reboot based); hosts in a group
  // upgrade in parallel.
  SimDuration inplace_upgrade_time = SecondsF(8.0);
  // Concurrent migration streams per step. 1 matches BtrPlace's sequential
  // actuation; higher values overlap migrations and shrink each step's
  // wall-clock (but never the network work itself).
  int parallel_streams = 1;
};

// Executes (and mutates) the cluster per the plan, returning timing stats.
Result<PlanExecutionStats> ExecuteClusterUpgrade(ClusterModel& cluster, const UpgradePlan& plan,
                                                 const ClusterExecutionParams& params);

}  // namespace hypertp

#endif  // HYPERTP_SRC_CLUSTER_CLUSTER_H_
