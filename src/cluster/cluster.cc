#include "src/cluster/cluster.h"

#include <algorithm>

#include "src/base/logging.h"

namespace hypertp {

size_t ClusterModel::AddHost(ClusterHost host) {
  host.id = hosts_.size();
  hosts_.push_back(std::move(host));
  return hosts_.size() - 1;
}

Result<size_t> ClusterModel::AddVm(ClusterVm vm, size_t host) {
  if (host >= hosts_.size()) {
    return InvalidArgumentError("cluster: no host " + std::to_string(host));
  }
  if (FreeCpus(host) < static_cast<int>(vm.vcpus) || FreeMemory(host) < vm.memory_bytes) {
    return ResourceExhaustedError("cluster: host " + std::to_string(host) + " full");
  }
  vm.host = host;
  vms_.push_back(std::move(vm));
  hosts_[host].vms.push_back(vms_.size() - 1);
  return vms_.size() - 1;
}

int ClusterModel::FreeCpus(size_t host) const {
  int used = 0;
  for (size_t vm : hosts_[host].vms) {
    used += static_cast<int>(vms_[vm].vcpus);
  }
  return hosts_[host].guest_cpus - used;
}

uint64_t ClusterModel::FreeMemory(size_t host) const {
  uint64_t used = 0;
  for (size_t vm : hosts_[host].vms) {
    used += vms_[vm].memory_bytes;
  }
  return hosts_[host].guest_memory - used;
}

Result<void> ClusterModel::MoveVm(size_t vm, size_t to_host) {
  if (vm >= vms_.size() || to_host >= hosts_.size()) {
    return InvalidArgumentError("cluster: bad vm/host index");
  }
  if (FreeCpus(to_host) < static_cast<int>(vms_[vm].vcpus) ||
      FreeMemory(to_host) < vms_[vm].memory_bytes) {
    return ResourceExhaustedError("cluster: host " + std::to_string(to_host) + " full");
  }
  auto& from_list = hosts_[vms_[vm].host].vms;
  from_list.erase(std::find(from_list.begin(), from_list.end(), vm));
  vms_[vm].host = to_host;
  hosts_[to_host].vms.push_back(vm);
  return OkResult();
}

ClusterModel ClusterModel::PaperCluster(double inplace_fraction, uint64_t seed) {
  ClusterModel cluster;
  Rng rng(seed);
  constexpr int kHosts = 10;
  constexpr int kVmsPerHost = 10;
  for (int h = 0; h < kHosts; ++h) {
    cluster.AddHost(ClusterHost{});
  }
  // Role mix: 30% streaming, 30% CPU+mem, 40% idle (paper §5.4).
  int serial = 0;
  for (int h = 0; h < kHosts; ++h) {
    for (int v = 0; v < kVmsPerHost; ++v) {
      ClusterVm vm;
      vm.uid = static_cast<uint64_t>(1000 + serial);
      vm.name = "cvm-" + std::to_string(serial);
      const int mod = serial % 10;
      vm.role = mod < 3 ? ClusterVmRole::kStreaming
                        : (mod < 6 ? ClusterVmRole::kCpuMem : ClusterVmRole::kIdle);
      vm.inplace_compatible = rng.NextBool(inplace_fraction);
      (void)cluster.AddVm(std::move(vm), static_cast<size_t>(h));
      ++serial;
    }
  }
  return cluster;
}

policy::VmActivity ToVmActivity(ClusterVmRole role) {
  switch (role) {
    case ClusterVmRole::kStreaming:
      return policy::VmActivity::kStreaming;
    case ClusterVmRole::kCpuMem:
      return policy::VmActivity::kCpuMem;
    case ClusterVmRole::kIdle:
      return policy::VmActivity::kIdle;
  }
  return policy::VmActivity::kIdle;
}

policy::VmSignals ClusterVmSignals(const ClusterVm& vm) {
  policy::VmSignals signals;
  signals.memory_bytes = vm.memory_bytes;
  signals.vcpus = vm.vcpus;
  signals.activity = ToVmActivity(vm.role);
  signals.dirty_fraction = policy::ActivityDirtyFraction(signals.activity);
  signals.dirty_factor = policy::ActivityDirtyFactor(signals.activity);
  return signals;
}

ClusterPolicyOutcome ApplyMechanismPolicy(ClusterModel& cluster,
                                          const policy::MechanismPolicy& policy,
                                          const policy::EnvSignals& env,
                                          HypervisorKind target) {
  ClusterPolicyOutcome outcome;
  for (size_t v = 0; v < cluster.vms().size(); ++v) {
    const policy::MechanismDecision decision =
        policy.Decide(ClusterVmSignals(cluster.vms()[v]), env, target);
    cluster.SetInplaceCompatible(v, decision.mechanism == policy::Mechanism::kInPlaceTP);
    switch (decision.mechanism) {
      case policy::Mechanism::kInPlaceTP:
        ++outcome.inplace_vms;
        break;
      case policy::Mechanism::kMigrationTP:
        ++outcome.migrate_vms;
        break;
      case policy::Mechanism::kRefuse:
        ++outcome.refused_vms;
        break;
    }
  }
  return outcome;
}

int UpgradePlan::total_migrations() const {
  int n = 0;
  for (const UpgradeStep& step : steps) {
    n += static_cast<int>(step.migrations.size());
  }
  return n;
}

Result<UpgradePlan> PlanClusterUpgrade(const ClusterModel& cluster, int group_size,
                                       bool rebalance) {
  if (group_size < 1 || static_cast<size_t>(group_size) > cluster.hosts().size()) {
    return InvalidArgumentError("cluster: bad group size");
  }

  // Work on a scratch copy: planning simulates the placements.
  ClusterModel scratch = cluster;
  UpgradePlan plan;

  const size_t host_count = scratch.hosts().size();
  for (size_t begin = 0; begin < host_count; begin += static_cast<size_t>(group_size)) {
    UpgradeStep step;
    const size_t end = std::min(begin + static_cast<size_t>(group_size), host_count);
    for (size_t h = begin; h < end; ++h) {
      step.group.push_back(h);
    }
    auto in_group = [&](size_t h) { return h >= begin && h < end; };

    // Evacuate non-InPlaceTP-compatible VMs from the group.
    for (size_t h = begin; h < end; ++h) {
      // Copy: MoveVm mutates the host's vm list.
      const std::vector<size_t> vms_on_host = scratch.hosts()[h].vms;
      for (size_t vm : vms_on_host) {
        if (scratch.vms()[vm].inplace_compatible) {
          continue;  // Rides the micro-reboot in place.
        }
        // Destination preference: upgraded hosts first (the VM will not have
        // to move again), then any host outside the group, first fit.
        size_t dest = host_count;
        for (int pass = 0; pass < 2 && dest == host_count; ++pass) {
          for (size_t candidate = 0; candidate < host_count; ++candidate) {
            if (in_group(candidate) || candidate == h) {
              continue;
            }
            if (pass == 0 && !scratch.hosts()[candidate].upgraded) {
              continue;
            }
            if (scratch.FreeCpus(candidate) >=
                    static_cast<int>(scratch.vms()[vm].vcpus) &&
                scratch.FreeMemory(candidate) >= scratch.vms()[vm].memory_bytes) {
              dest = candidate;
              break;
            }
          }
        }
        if (dest == host_count) {
          return ResourceExhaustedError(
              "cluster: no spare capacity to evacuate vm " + std::to_string(vm) +
              " — shrink the group size or add hosts");
        }
        step.migrations.push_back(MigrationOp{vm, h, dest});
        HYPERTP_RETURN_IF_ERROR(scratch.MoveVm(vm, dest));
      }
    }
    for (size_t h = begin; h < end; ++h) {
      scratch.MarkUpgraded(h);
    }
    plan.steps.push_back(std::move(step));
  }

  // Final load-balancing phase (BtrPlace's spread constraint): evacuations
  // piled VMs onto the hosts upgraded early; even the placement back out.
  if (rebalance) {
    UpgradeStep step;
    const size_t avg = scratch.vms().size() / host_count;
    for (;;) {
      size_t busiest = 0, emptiest = 0;
      for (size_t h = 0; h < host_count; ++h) {
        if (scratch.hosts()[h].vms.size() > scratch.hosts()[busiest].vms.size()) {
          busiest = h;
        }
        if (scratch.hosts()[h].vms.size() < scratch.hosts()[emptiest].vms.size()) {
          emptiest = h;
        }
      }
      // Tolerate a skew of 2 VMs (BtrPlace's spread is a soft preference).
      if (scratch.hosts()[busiest].vms.size() <= avg + 2 ||
          scratch.hosts()[emptiest].vms.size() + 1 >= scratch.hosts()[busiest].vms.size()) {
        break;
      }
      const size_t vm = scratch.hosts()[busiest].vms.back();
      step.migrations.push_back(MigrationOp{vm, busiest, emptiest});
      HYPERTP_RETURN_IF_ERROR(scratch.MoveVm(vm, emptiest));
    }
    if (!step.migrations.empty()) {
      plan.steps.push_back(std::move(step));
    }
  }
  return plan;
}

Result<PlanExecutionStats> ExecuteClusterUpgrade(ClusterModel& cluster, const UpgradePlan& plan,
                                                 const ClusterExecutionParams& params) {
  PlanExecutionStats stats;

  for (const UpgradeStep& step : plan.steps) {
    // Migrations first: `parallel_streams` run concurrently over the shared
    // fabric. migration_time sums the individual migration durations (the
    // network work, invariant under stream count); the step's wall-clock is
    // the makespan of greedily packing them onto the streams.
    SimDuration step_makespan = 0;
    std::vector<SimDuration> streams(static_cast<size_t>(std::max(params.parallel_streams, 1)),
                                     0);
    for (const MigrationOp& op : step.migrations) {
      HYPERTP_RETURN_IF_ERROR(cluster.MoveVm(op.vm, op.to_host));
      const auto& vm = cluster.vms()[op.vm];
      // Dirty-rate inflation by workload role and the link arithmetic both
      // live in the shared cost model now (same values, same expression).
      const SimDuration migration = policy::TransplantCostModel::MigrationDuration(
          vm.memory_bytes, policy::ActivityDirtyFactor(ToVmActivity(vm.role)),
          params.network_gbps, params.per_migration_overhead);
      stats.migration_time += migration;
      auto slot = std::min_element(streams.begin(), streams.end());
      *slot += migration;
      step_makespan = std::max(step_makespan, *slot);
    }
    stats.migrations += static_cast<int>(step.migrations.size());

    // Then the group's hosts micro-reboot in parallel (InPlaceTP). The final
    // rebalancing step has no offline group and charges no reboot.
    SimDuration step_inplace = 0;
    if (!step.group.empty()) {
      for (size_t h : step.group) {
        cluster.MarkUpgraded(h);
      }
      step_inplace = params.inplace_upgrade_time;
    }
    stats.inplace_time += step_inplace;
    stats.total_time += step_makespan + step_inplace;
  }
  return stats;
}

}  // namespace hypertp
