// UISR wire format: a versioned, CRC-protected TLV container.
//
// Layout:
//   u32 magic "UISR" | u16 version | u16 flags
//   repeated sections: u16 type | u32 length | payload
//   end section: type=kEnd, length=4, payload=CRC32 of all preceding bytes
//
// The format plays the role XDR plays for network data (paper §3.1): each
// hypervisor only needs to speak UISR, not every other hypervisor's format.

#ifndef HYPERTP_SRC_UISR_CODEC_H_
#define HYPERTP_SRC_UISR_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/uisr/records.h"

namespace hypertp {

enum class UisrSectionType : uint16_t {
  kVmHeader = 1,
  kVcpu = 2,
  kIoapic = 3,
  kPit = 4,
  kDevice = 5,
  kEnd = 0xFFFF,
};

// Per-section byte counts of an encoded UISR blob (drives Fig. 14).
struct UisrSizeBreakdown {
  size_t header = 0;
  size_t vcpus = 0;
  size_t ioapic = 0;
  size_t pit = 0;
  size_t devices = 0;
  size_t framing = 0;  // Magic/version + section headers + CRC trailer.

  size_t total() const { return header + vcpus + ioapic + pit + devices + framing; }
};

class ByteWriter;

// Serializes a UisrVm into its wire form. The output vector is allocated
// once at its exact final size (the encoder pre-computes the byte count).
std::vector<uint8_t> EncodeUisrVm(const UisrVm& vm);

// Appends exactly the bytes the vector overload would return to `w` — the
// CRC trailer covers only this VM's bytes, starting at the writer's current
// position, so blobs can be embedded mid-stream (checkpoint files, PRAM
// framing) without a temporary copy. Reserves the exact size up front.
void EncodeUisrVm(const UisrVm& vm, ByteWriter& w);

// Exact byte count EncodeUisrVm produces for `vm`, without encoding.
size_t EncodedUisrSize(const UisrVm& vm);

// Parses and validates a UISR blob. Fails with kDataLoss on bad magic,
// truncation or CRC mismatch, and kUnimplemented on a newer version.
Result<UisrVm> DecodeUisrVm(std::span<const uint8_t> data);

// Computes the per-section size breakdown of `vm` without retaining the blob.
UisrSizeBreakdown MeasureUisrVm(const UisrVm& vm);

}  // namespace hypertp

#endif  // HYPERTP_SRC_UISR_CODEC_H_
