// UISR wire format: a versioned, CRC-protected TLV container.
//
// Layout:
//   u32 magic "UISR" | u16 version | u16 flags
//   repeated sections: u16 type | u32 length | payload
//   end section: type=kEnd, length=4, payload=CRC32 of all preceding bytes
//
// The format plays the role XDR plays for network data (paper §3.1): each
// hypervisor only needs to speak UISR, not every other hypervisor's format.

#ifndef HYPERTP_SRC_UISR_CODEC_H_
#define HYPERTP_SRC_UISR_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/uisr/records.h"

namespace hypertp {

enum class UisrSectionType : uint16_t {
  kVmHeader = 1,
  kVcpu = 2,
  kIoapic = 3,
  kPit = 4,
  kDevice = 5,
  kEnd = 0xFFFF,
};

// Per-section byte counts of an encoded UISR blob (drives Fig. 14).
struct UisrSizeBreakdown {
  size_t header = 0;
  size_t vcpus = 0;
  size_t ioapic = 0;
  size_t pit = 0;
  size_t devices = 0;
  size_t framing = 0;  // Magic/version + section headers + CRC trailer.

  size_t total() const { return header + vcpus + ioapic + pit + devices + framing; }
};

class ByteWriter;
class SpanWriter;

// Byte offsets of one encoded TLV section inside a UISR blob.
struct UisrSectionSpan {
  UisrSectionType type = UisrSectionType::kEnd;
  size_t header_offset = 0;   // Where the u16 type field starts.
  size_t payload_offset = 0;  // header_offset + 6 (u16 type + u32 length).
  size_t payload_size = 0;
};

// Section-offset table for a UISR blob, in emit order. Lets callers patch an
// individual section's payload in place (same size) and reseal the CRC
// instead of re-encoding the whole VM.
struct UisrSectionLayout {
  std::vector<UisrSectionSpan> sections;
  size_t total_size = 0;  // Blob size including the kEnd/CRC trailer.

  // The `ordinal`-th section of `type` in emit order (vCPU #2, device #0...),
  // or nullptr when absent.
  const UisrSectionSpan* Find(UisrSectionType type, size_t ordinal) const;
};

// Serializes a UisrVm into its wire form. The output vector is allocated
// once at its exact final size (the encoder pre-computes the byte count).
std::vector<uint8_t> EncodeUisrVm(const UisrVm& vm);

// Same bytes, and additionally fills `layout` with the section-offset table
// of the returned blob. `layout` must be non-null.
std::vector<uint8_t> EncodeUisrVm(const UisrVm& vm, UisrSectionLayout* layout);

// Appends exactly the bytes the vector overload would return to `w` — the
// CRC trailer covers only this VM's bytes, starting at the writer's current
// position, so blobs can be embedded mid-stream (checkpoint files, PRAM
// framing) without a temporary copy. Reserves the exact size up front.
//
// Templated over the writer type: ByteWriter appends to a growing buffer
// (checkpoint embedding, migration's wire copy); SpanWriter writes into
// caller-owned storage, which is how the zero-copy save path encodes straight
// into PRAM-resident frames (PramFrameWriter). Any writer with the
// Put*/PatchU32/size/Reserve/Written interface works; these two are
// instantiated in codec.cc.
template <typename Writer>
void EncodeUisrVm(const UisrVm& vm, Writer& w);

extern template void EncodeUisrVm<ByteWriter>(const UisrVm& vm, ByteWriter& w);
extern template void EncodeUisrVm<SpanWriter>(const UisrVm& vm, SpanWriter& w);

// Exact byte count EncodeUisrVm produces for `vm`, without encoding.
size_t EncodedUisrSize(const UisrVm& vm);

// Parses and validates a UISR blob. Fails with kDataLoss on bad magic,
// truncation or CRC mismatch, and kUnimplemented on a newer version.
Result<UisrVm> DecodeUisrVm(std::span<const uint8_t> data);

// Computes the per-section size breakdown of `vm` without retaining the blob.
UisrSizeBreakdown MeasureUisrVm(const UisrVm& vm);

// Rebuilds the section-offset table of an existing blob by walking the TLV
// headers (no payload decode). Fails with kDataLoss on framing damage.
Result<UisrSectionLayout> IndexUisrSections(std::span<const uint8_t> blob);

// Encodes just the payload bytes of the `ordinal`-th section of `type`
// (vCPU #2, device #0, ...) — the bytes that sit between that section's TLV
// header and the next header in a full encode.
std::vector<uint8_t> EncodeUisrSectionPayload(const UisrVm& vm, UisrSectionType type,
                                              size_t ordinal);

// Exact byte count EncodeUisrSectionPayload would produce, without encoding.
// Lets reconcile pre-size arena scratch (and reject a size drift) before
// paying for the encode.
size_t UisrSectionPayloadSize(const UisrVm& vm, UisrSectionType type, size_t ordinal);

// Writer-targeted form of EncodeUisrSectionPayload: appends the payload bytes
// to `w` instead of materializing a vector. Instantiated for ByteWriter and
// SpanWriter (arena scratch) in codec.cc.
template <typename Writer>
void EncodeUisrSectionPayloadTo(const UisrVm& vm, UisrSectionType type, size_t ordinal,
                                Writer& w);

extern template void EncodeUisrSectionPayloadTo<ByteWriter>(const UisrVm&, UisrSectionType,
                                                            size_t, ByteWriter&);
extern template void EncodeUisrSectionPayloadTo<SpanWriter>(const UisrVm&, UisrSectionType,
                                                            size_t, SpanWriter&);

// Overwrites one section's payload in place. The replacement must be exactly
// `span.payload_size` bytes (section lengths are fixed by the TLV header);
// callers re-encode the whole VM when a section changes size. The blob's CRC
// trailer is stale afterwards until ResealUisrBlob runs.
Result<void> PatchUisrSectionPayload(std::span<uint8_t> blob, const UisrSectionSpan& span,
                                     std::span<const uint8_t> payload);

// Recomputes the CRC trailer over everything before the kEnd section, after
// one or more PatchUisrSectionPayload calls. Fails if the blob does not end
// in a well-formed kEnd trailer.
Result<void> ResealUisrBlob(std::span<uint8_t> blob);

}  // namespace hypertp

#endif  // HYPERTP_SRC_UISR_CODEC_H_
