#include "src/uisr/fxsave.h"

#include <cstring>

namespace hypertp {
namespace {

void PutLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void PutLe32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}
void PutLe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}
uint16_t GetLe16(const uint8_t* p) { return static_cast<uint16_t>(p[0] | (p[1] << 8)); }
uint32_t GetLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}
uint64_t GetLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

FxsaveArea PackFxsave(const UisrFpu& fpu) {
  FxsaveArea a{};
  PutLe16(&a[0], fpu.fcw);
  PutLe16(&a[2], fpu.fsw);
  a[4] = fpu.ftwx;
  // a[5] reserved.
  PutLe16(&a[6], fpu.last_opcode);
  PutLe64(&a[8], fpu.last_ip);
  PutLe64(&a[16], fpu.last_dp);
  PutLe32(&a[24], fpu.mxcsr);
  PutLe32(&a[28], 0x0000FFFF);  // MXCSR_MASK.
  for (size_t i = 0; i < fpu.fpr.size(); ++i) {
    std::memcpy(&a[32 + i * 16], fpu.fpr[i].data(), 16);
  }
  for (size_t i = 0; i < fpu.xmm.size(); ++i) {
    std::memcpy(&a[160 + i * 16], fpu.xmm[i].data(), 16);
  }
  return a;
}

UisrFpu UnpackFxsave(const FxsaveArea& a) {
  UisrFpu fpu;
  fpu.fcw = GetLe16(&a[0]);
  fpu.fsw = GetLe16(&a[2]);
  fpu.ftwx = a[4];
  fpu.last_opcode = GetLe16(&a[6]);
  fpu.last_ip = GetLe64(&a[8]);
  fpu.last_dp = GetLe64(&a[16]);
  fpu.mxcsr = GetLe32(&a[24]);
  for (size_t i = 0; i < fpu.fpr.size(); ++i) {
    std::memcpy(fpu.fpr[i].data(), &a[32 + i * 16], 16);
  }
  for (size_t i = 0; i < fpu.xmm.size(); ++i) {
    std::memcpy(fpu.xmm[i].data(), &a[160 + i * 16], 16);
  }
  return fpu;
}

}  // namespace hypertp
