#include "src/uisr/records.h"

namespace hypertp {
namespace {

// Small deterministic mixer so synthetic state is unique per (vm, vcpu, slot).
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a * 0x9E3779B97F4A7C15ull + b * 0xC2B2AE3D27D4EB4Full + c + 1;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

UisrSegment CodeSegment64() {
  UisrSegment s;
  s.selector = 0x10;
  s.base = 0;
  s.limit = 0xFFFFFFFF;
  s.type = 0xB;  // Execute/read, accessed.
  s.s = 1;
  s.present = 1;
  s.l = 1;
  s.g = 1;
  return s;
}

UisrSegment DataSegment() {
  UisrSegment s;
  s.selector = 0x18;
  s.base = 0;
  s.limit = 0xFFFFFFFF;
  s.type = 0x3;  // Read/write, accessed.
  s.s = 1;
  s.present = 1;
  s.db = 1;
  s.g = 1;
  return s;
}

}  // namespace

std::string_view DeviceAttachModeName(DeviceAttachMode mode) {
  switch (mode) {
    case DeviceAttachMode::kEmulated:
      return "emulated";
    case DeviceAttachMode::kPassthrough:
      return "passthrough";
    case DeviceAttachMode::kUnplugged:
      return "unplugged";
  }
  return "?";
}

UisrVcpu MakeSyntheticVcpu(uint64_t vm_uid, uint32_t vcpu_id) {
  UisrVcpu v;
  v.id = vcpu_id;
  v.online = true;

  for (size_t i = 0; i < v.regs.gpr.size(); ++i) {
    v.regs.gpr[i] = Mix(vm_uid, vcpu_id, i);
  }
  v.regs.rip = 0xFFFFFFFF81000000ull + (Mix(vm_uid, vcpu_id, 100) & 0xFFFFF0);
  v.regs.rflags = 0x246;  // IF | ZF | PF | reserved bit 1.

  v.sregs.cs = CodeSegment64();
  v.sregs.ds = v.sregs.es = v.sregs.ss = DataSegment();
  v.sregs.fs = DataSegment();
  v.sregs.fs.base = Mix(vm_uid, vcpu_id, 101) & 0x7FFFFFFFF000ull;
  v.sregs.gs = DataSegment();
  v.sregs.gs.base = Mix(vm_uid, vcpu_id, 102) & 0x7FFFFFFFF000ull;
  v.sregs.tr.selector = 0x40;
  v.sregs.tr.type = 0xB;  // Busy 64-bit TSS.
  v.sregs.tr.present = 1;
  v.sregs.tr.limit = 0x67;
  v.sregs.gdt.base = 0xFFFFFFFF82000000ull;
  v.sregs.gdt.limit = 0x7F;
  v.sregs.idt.base = 0xFFFFFFFF83000000ull;
  v.sregs.idt.limit = 0xFFF;
  v.sregs.cr0 = 0x80050033;  // PG | WP | NE | ET | MP | PE.
  v.sregs.cr3 = Mix(vm_uid, vcpu_id, 103) & 0xFFFFFF000ull;
  v.sregs.cr4 = 0x3606E0;    // Typical 64-bit Linux CR4.
  v.sregs.efer = 0xD01;      // LME | LMA | SCE | NXE.
  v.sregs.apic_base = 0xFEE00800 | (vcpu_id == 0 ? 0x100 : 0);  // Enable | BSP.

  // The canonical UISR MSR set (sorted by index): the registers both
  // hypervisors must carry across a transplant (§4.2.1). Xen stores these in
  // fixed slots of its HVM CPU record; KVM stores them as a {index, value}
  // list — the adapters convert both ways.
  v.msrs = {
      {0x00000010, Mix(vm_uid, vcpu_id, 107)},           // TSC.
      {0x00000174, 0x10},                                // SYSENTER_CS.
      {0x00000175, Mix(vm_uid, vcpu_id, 105)},           // SYSENTER_ESP.
      {0x00000176, Mix(vm_uid, vcpu_id, 106)},           // SYSENTER_EIP.
      {0x000001A0, 0x850089},                            // MISC_ENABLE.
      {0xC0000080, v.sregs.efer},                        // EFER.
      {0xC0000081, 0x23001000000000ull},                 // STAR.
      {0xC0000082, 0xFFFFFFFF81800000ull},               // LSTAR.
      {0xC0000083, 0xFFFFFFFF81800100ull},               // CSTAR.
      {0xC0000084, 0x47700},                             // SFMASK.
      {0xC0000100, v.sregs.fs.base},                     // FS_BASE.
      {0xC0000101, v.sregs.gs.base},                     // GS_BASE.
      {0xC0000102, Mix(vm_uid, vcpu_id, 104)},           // KERNEL_GS_BASE.
  };

  for (size_t i = 0; i < v.fpu.fpr.size(); ++i) {
    for (size_t j = 0; j < 10; ++j) {  // 80-bit values; pad bytes stay zero.
      v.fpu.fpr[i][j] = static_cast<uint8_t>(Mix(vm_uid, vcpu_id, 200 + i * 16 + j));
    }
  }
  for (size_t i = 0; i < v.fpu.xmm.size(); ++i) {
    for (size_t j = 0; j < 16; ++j) {
      v.fpu.xmm[i][j] = static_cast<uint8_t>(Mix(vm_uid, vcpu_id, 400 + i * 16 + j));
    }
  }
  v.fpu.fsw = static_cast<uint16_t>(Mix(vm_uid, vcpu_id, 108) & 0x3F00);
  v.fpu.last_ip = Mix(vm_uid, vcpu_id, 109);

  v.lapic.apic_base_msr = v.sregs.apic_base;
  for (size_t i = 0; i < kLapicRegsSize; ++i) {
    // Sparse register page: only aligned registers carry data.
    v.lapic.regs[i] = (i % 16 == 0) ? static_cast<uint8_t>(Mix(vm_uid, vcpu_id, 600 + i)) : 0;
  }
  v.lapic.regs[0x20] = static_cast<uint8_t>(vcpu_id << 4);  // APIC ID register.
  // The TPR (offset 0x80) mirrors CR8 architecturally; keep them consistent
  // (CR8 defaults to 0) so adapters need no synchronization fixup.
  v.lapic.regs[0x80] = static_cast<uint8_t>((v.sregs.cr8 & 0xF) << 4);
  v.lapic.tsc_deadline = Mix(vm_uid, vcpu_id, 110);

  v.mtrr.def_type = 0xC06;  // Enabled, fixed enabled, WB default.
  for (size_t i = 0; i < kMtrrFixedCount; ++i) {
    v.mtrr.fixed[i] = 0x0606060606060606ull;
  }
  v.mtrr.var_base[0] = 0x80000000 | 0x6;
  v.mtrr.var_mask[0] = 0xFFFFC0000800ull;
  v.mtrr.pat = 0x0007040600070406ull;

  v.xsave.xcr0 = 0x7;  // x87 | SSE | AVX.
  v.xsave.area.resize(kXsaveAreaSize);
  for (size_t i = 0; i < v.xsave.area.size(); i += 64) {
    v.xsave.area[i] = static_cast<uint8_t>(Mix(vm_uid, vcpu_id, 800 + i));
  }

  return v;
}

}  // namespace hypertp
