// The 512-byte FXSAVE area codec (legacy x87/SSE state layout), shared by
// every hypervisor that stores FPU state as a raw FXSAVE blob.

#ifndef HYPERTP_SRC_UISR_FXSAVE_H_
#define HYPERTP_SRC_UISR_FXSAVE_H_

#include <array>
#include <cstdint>

#include "src/uisr/records.h"

namespace hypertp {

using FxsaveArea = std::array<uint8_t, 512>;

FxsaveArea PackFxsave(const UisrFpu& fpu);
UisrFpu UnpackFxsave(const FxsaveArea& area);

}  // namespace hypertp

#endif  // HYPERTP_SRC_UISR_FXSAVE_H_
