// Unified Intermediate State Representation (UISR) — typed records.
//
// UISR is the hypervisor-independent description of a VM's VM_i State
// (paper §3.1): everything the target hypervisor needs to re-adopt a running
// VM, minus the guest's own memory contents (Guest State, which stays in
// place or is streamed separately during migration).
//
// The record layouts follow the paper's choice (§4.2): a slightly modified,
// neutralized version of the Xen HVM representation. Table 2's mapping is
// implemented by the per-hypervisor adapters in src/core/.

#ifndef HYPERTP_SRC_UISR_RECORDS_H_
#define HYPERTP_SRC_UISR_RECORDS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/physical_memory.h"

namespace hypertp {

inline constexpr uint32_t kUisrMagic = 0x52534955;  // "UISR" little-endian.
inline constexpr uint16_t kUisrVersion = 1;

// General-purpose registers + instruction pointer + flags.
struct UisrCpuRegs {
  // rax, rbx, rcx, rdx, rsi, rdi, rsp, rbp, r8..r15.
  std::array<uint64_t, 16> gpr{};
  uint64_t rip = 0;
  uint64_t rflags = 0x2;  // Bit 1 is architecturally always 1.

  bool operator==(const UisrCpuRegs&) const = default;
};

// A segment register in unpacked (KVM-style) attribute form; adapters that
// store packed attribute words (Xen-style) unpack into this neutral form.
struct UisrSegment {
  uint64_t base = 0;
  uint32_t limit = 0;
  uint16_t selector = 0;
  uint8_t type = 0;
  uint8_t s = 0;        // Descriptor type (system/code-data).
  uint8_t dpl = 0;      // Privilege level.
  uint8_t present = 0;
  uint8_t avl = 0;
  uint8_t l = 0;        // 64-bit code segment.
  uint8_t db = 0;       // Default operation size.
  uint8_t g = 0;        // Granularity.
  uint8_t unusable = 0;

  bool operator==(const UisrSegment&) const = default;
};

struct UisrDescriptorTable {
  uint64_t base = 0;
  uint16_t limit = 0;

  bool operator==(const UisrDescriptorTable&) const = default;
};

// System registers: segments, descriptor tables, control registers.
struct UisrSregs {
  UisrSegment cs, ds, es, fs, gs, ss, tr, ldt;
  UisrDescriptorTable gdt, idt;
  uint64_t cr0 = 0, cr2 = 0, cr3 = 0, cr4 = 0, cr8 = 0;
  uint64_t efer = 0;
  uint64_t apic_base = 0;

  bool operator==(const UisrSregs&) const = default;
};

struct UisrMsr {
  uint32_t index = 0;
  uint64_t value = 0;

  bool operator==(const UisrMsr&) const = default;
};

// x87/SSE state (FXSAVE-equivalent content).
struct UisrFpu {
  std::array<std::array<uint8_t, 16>, 8> fpr{};   // ST0..ST7, 80-bit padded.
  uint16_t fcw = 0x37F;
  uint16_t fsw = 0;
  uint8_t ftwx = 0;       // Abridged tag word.
  uint16_t last_opcode = 0;  // FOP, 11 bits architecturally.
  uint64_t last_ip = 0;
  uint64_t last_dp = 0;
  std::array<std::array<uint8_t, 16>, 16> xmm{};  // XMM0..XMM15.
  uint32_t mxcsr = 0x1F80;

  bool operator==(const UisrFpu&) const = default;
};

// Local APIC: the architectural 1 KiB register page plus the base MSR.
inline constexpr size_t kLapicRegsSize = 1024;
struct UisrLapic {
  uint64_t apic_base_msr = 0xFEE00800;  // Enabled, at the default base.
  uint64_t tsc_deadline = 0;
  std::array<uint8_t, kLapicRegsSize> regs{};

  bool operator==(const UisrLapic&) const = default;
};

// Memory type range registers.
inline constexpr size_t kMtrrFixedCount = 11;
inline constexpr size_t kMtrrVariableCount = 8;
struct UisrMtrr {
  uint64_t cap = 0x508;       // 8 variable, fixed supported, WC supported.
  uint64_t def_type = 0;
  std::array<uint64_t, kMtrrFixedCount> fixed{};
  std::array<uint64_t, kMtrrVariableCount> var_base{};
  std::array<uint64_t, kMtrrVariableCount> var_mask{};
  // PAT travels with the MTRR state in UISR. Xen keeps it in its MTRR record;
  // KVM exposes it as MSR 0x277 — the adapters translate both ways.
  uint64_t pat = 0x0007040600070406ull;

  bool operator==(const UisrMtrr&) const = default;
};

// Extended state: XCR0 plus the raw XSAVE area. Every producer in the
// repertoire emits the same standard-format area size; the decoder rejects
// any other size instead of silently truncating or padding.
inline constexpr size_t kXsaveAreaSize = 2048;
struct UisrXsave {
  uint64_t xcr0 = 1;  // x87 always enabled.
  std::vector<uint8_t> area;

  bool operator==(const UisrXsave&) const = default;
};

// One virtual CPU's full architectural state.
struct UisrVcpu {
  uint32_t id = 0;
  bool online = true;
  UisrCpuRegs regs;
  UisrSregs sregs;
  std::vector<UisrMsr> msrs;
  UisrFpu fpu;
  UisrLapic lapic;
  UisrMtrr mtrr;
  UisrXsave xsave;

  bool operator==(const UisrVcpu&) const = default;
};

// IOAPIC. UISR carries up to kUisrMaxIoapicPins pins; adapters for targets
// with fewer pins must apply (and record) a compatibility fixup (§4.2.1).
inline constexpr uint32_t kUisrMaxIoapicPins = 64;
struct UisrIoapic {
  uint32_t id = 0;
  uint64_t base_address = 0xFEC00000;
  uint32_t num_pins = 24;
  std::array<uint64_t, kUisrMaxIoapicPins> redirection{};  // Entries [0, num_pins).

  bool operator==(const UisrIoapic&) const = default;
};

// Programmable interval timer (i8254), 3 channels.
struct UisrPitChannel {
  uint32_t count = 0x10000;
  uint16_t latched_count = 0;
  uint8_t count_latched = 0;
  uint8_t status_latched = 0;
  uint8_t status = 0;
  uint8_t read_state = 0;
  uint8_t write_state = 0;
  uint8_t write_latch = 0;
  uint8_t rw_mode = 0;
  uint8_t mode = 0;
  uint8_t bcd = 0;
  uint8_t gate = 1;
  uint64_t count_load_time = 0;

  bool operator==(const UisrPitChannel&) const = default;
};
struct UisrPit {
  std::array<UisrPitChannel, 3> channels{};
  uint8_t speaker_data_on = 0;

  bool operator==(const UisrPit&) const = default;
};

// How a virtual device is attached (paper §4.2.3).
enum class DeviceAttachMode : uint8_t {
  kEmulated = 0,     // State copied and translated across the transplant.
  kPassthrough = 1,  // Device paused in guest-consistent state; not translated.
  kUnplugged = 2,    // Hot-unplugged before transplant, rescanned after.
};

std::string_view DeviceAttachModeName(DeviceAttachMode mode);

// A virtual device's serialized emulation state. `model` identifies the
// device model ("virtio-net", "virtio-blk", "uart16550", ...); `opaque` is
// the device model's own format, produced/consumed by matching models.
struct UisrDeviceState {
  std::string model;
  uint32_t instance = 0;
  DeviceAttachMode mode = DeviceAttachMode::kEmulated;
  std::vector<uint8_t> opaque;

  bool operator==(const UisrDeviceState&) const = default;
};

// Where the VM's guest memory lives across the transplant.
struct UisrMemoryInfo {
  uint64_t memory_bytes = 0;
  // InPlaceTP: PRAM file id describing the in-place guest frames; 0 when the
  // memory travels out-of-band (MigrationTP pre-copy stream).
  uint64_t pram_file_id = 0;
  bool uses_huge_pages = false;

  bool operator==(const UisrMemoryInfo&) const = default;
};

// The complete UISR description of one VM.
struct UisrVm {
  uint64_t vm_uid = 0;       // Stable across hypervisors.
  std::string name;
  std::string source_hypervisor;  // Informational: who produced this UISR.
  UisrMemoryInfo memory;
  std::vector<UisrVcpu> vcpus;
  UisrIoapic ioapic;
  UisrPit pit;
  std::vector<UisrDeviceState> devices;

  bool operator==(const UisrVm&) const = default;
};

// Returns a fully-populated vCPU in a post-boot-ish state, with
// deterministic contents derived from (vm_uid, vcpu_id). Used by the
// hypervisors to seed freshly created VMs and by tests as a golden record.
UisrVcpu MakeSyntheticVcpu(uint64_t vm_uid, uint32_t vcpu_id);

}  // namespace hypertp

#endif  // HYPERTP_SRC_UISR_RECORDS_H_
