#include "src/uisr/codec.h"

#include "src/base/bytes.h"
#include "src/base/crc32.h"

namespace hypertp {
namespace {

// The encode helpers are templated on the writer type so the same code path
// serves ByteWriter (real output) and ByteCounter (exact size pre-pass).
template <typename W>
void EncodeSegment(W& w, const UisrSegment& s) {
  w.PutU64(s.base);
  w.PutU32(s.limit);
  w.PutU16(s.selector);
  w.PutU8(s.type);
  w.PutU8(s.s);
  w.PutU8(s.dpl);
  w.PutU8(s.present);
  w.PutU8(s.avl);
  w.PutU8(s.l);
  w.PutU8(s.db);
  w.PutU8(s.g);
  w.PutU8(s.unusable);
}

Result<UisrSegment> DecodeSegment(ByteReader& r) {
  UisrSegment s;
  HYPERTP_ASSIGN_OR_RETURN(s.base, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(s.limit, r.ReadU32());
  HYPERTP_ASSIGN_OR_RETURN(s.selector, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(s.type, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.s, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.dpl, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.present, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.avl, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.l, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.db, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.g, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(s.unusable, r.ReadU8());
  return s;
}

template <typename W>
void EncodeVcpu(W& w, const UisrVcpu& v) {
  w.PutU32(v.id);
  w.PutU8(v.online ? 1 : 0);
  for (uint64_t g : v.regs.gpr) {
    w.PutU64(g);
  }
  w.PutU64(v.regs.rip);
  w.PutU64(v.regs.rflags);

  for (const UisrSegment* s : {&v.sregs.cs, &v.sregs.ds, &v.sregs.es, &v.sregs.fs, &v.sregs.gs,
                               &v.sregs.ss, &v.sregs.tr, &v.sregs.ldt}) {
    EncodeSegment(w, *s);
  }
  w.PutU64(v.sregs.gdt.base);
  w.PutU16(v.sregs.gdt.limit);
  w.PutU64(v.sregs.idt.base);
  w.PutU16(v.sregs.idt.limit);
  w.PutU64(v.sregs.cr0);
  w.PutU64(v.sregs.cr2);
  w.PutU64(v.sregs.cr3);
  w.PutU64(v.sregs.cr4);
  w.PutU64(v.sregs.cr8);
  w.PutU64(v.sregs.efer);
  w.PutU64(v.sregs.apic_base);

  w.PutU32(static_cast<uint32_t>(v.msrs.size()));
  for (const UisrMsr& m : v.msrs) {
    w.PutU32(m.index);
    w.PutU64(m.value);
  }

  for (const auto& fpr : v.fpu.fpr) {
    w.PutBytes(fpr);
  }
  w.PutU16(v.fpu.fcw);
  w.PutU16(v.fpu.fsw);
  w.PutU8(v.fpu.ftwx);
  w.PutU16(v.fpu.last_opcode);
  w.PutU64(v.fpu.last_ip);
  w.PutU64(v.fpu.last_dp);
  for (const auto& xmm : v.fpu.xmm) {
    w.PutBytes(xmm);
  }
  w.PutU32(v.fpu.mxcsr);

  w.PutU64(v.lapic.apic_base_msr);
  w.PutU64(v.lapic.tsc_deadline);
  w.PutBytes(v.lapic.regs);

  w.PutU64(v.mtrr.cap);
  w.PutU64(v.mtrr.def_type);
  for (uint64_t f : v.mtrr.fixed) {
    w.PutU64(f);
  }
  for (size_t i = 0; i < kMtrrVariableCount; ++i) {
    w.PutU64(v.mtrr.var_base[i]);
    w.PutU64(v.mtrr.var_mask[i]);
  }
  w.PutU64(v.mtrr.pat);

  w.PutU64(v.xsave.xcr0);
  w.PutLengthPrefixed(v.xsave.area);
}

Result<UisrVcpu> DecodeVcpu(ByteReader& r) {
  UisrVcpu v;
  HYPERTP_ASSIGN_OR_RETURN(v.id, r.ReadU32());
  HYPERTP_ASSIGN_OR_RETURN(uint8_t online, r.ReadU8());
  v.online = online != 0;
  for (auto& g : v.regs.gpr) {
    HYPERTP_ASSIGN_OR_RETURN(g, r.ReadU64());
  }
  HYPERTP_ASSIGN_OR_RETURN(v.regs.rip, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.regs.rflags, r.ReadU64());

  for (UisrSegment* s : {&v.sregs.cs, &v.sregs.ds, &v.sregs.es, &v.sregs.fs, &v.sregs.gs,
                         &v.sregs.ss, &v.sregs.tr, &v.sregs.ldt}) {
    HYPERTP_ASSIGN_OR_RETURN(*s, DecodeSegment(r));
  }
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.gdt.base, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.gdt.limit, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.idt.base, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.idt.limit, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.cr0, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.cr2, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.cr3, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.cr4, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.cr8, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.efer, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.sregs.apic_base, r.ReadU64());

  HYPERTP_ASSIGN_OR_RETURN(uint32_t msr_count, r.ReadU32());
  if (msr_count > 4096) {
    return DataLossError("uisr: implausible MSR count " + std::to_string(msr_count));
  }
  v.msrs.resize(msr_count);
  for (auto& m : v.msrs) {
    HYPERTP_ASSIGN_OR_RETURN(m.index, r.ReadU32());
    HYPERTP_ASSIGN_OR_RETURN(m.value, r.ReadU64());
  }

  for (auto& fpr : v.fpu.fpr) {
    HYPERTP_ASSIGN_OR_RETURN(auto bytes, r.ReadBytes(fpr.size()));
    std::copy(bytes.begin(), bytes.end(), fpr.begin());
  }
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.fcw, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.fsw, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.ftwx, r.ReadU8());
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.last_opcode, r.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.last_ip, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.last_dp, r.ReadU64());
  for (auto& xmm : v.fpu.xmm) {
    HYPERTP_ASSIGN_OR_RETURN(auto bytes, r.ReadBytes(xmm.size()));
    std::copy(bytes.begin(), bytes.end(), xmm.begin());
  }
  HYPERTP_ASSIGN_OR_RETURN(v.fpu.mxcsr, r.ReadU32());

  HYPERTP_ASSIGN_OR_RETURN(v.lapic.apic_base_msr, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.lapic.tsc_deadline, r.ReadU64());
  {
    HYPERTP_ASSIGN_OR_RETURN(auto bytes, r.ReadBytes(kLapicRegsSize));
    std::copy(bytes.begin(), bytes.end(), v.lapic.regs.begin());
  }

  HYPERTP_ASSIGN_OR_RETURN(v.mtrr.cap, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.mtrr.def_type, r.ReadU64());
  for (auto& f : v.mtrr.fixed) {
    HYPERTP_ASSIGN_OR_RETURN(f, r.ReadU64());
  }
  for (size_t i = 0; i < kMtrrVariableCount; ++i) {
    HYPERTP_ASSIGN_OR_RETURN(v.mtrr.var_base[i], r.ReadU64());
    HYPERTP_ASSIGN_OR_RETURN(v.mtrr.var_mask[i], r.ReadU64());
  }
  HYPERTP_ASSIGN_OR_RETURN(v.mtrr.pat, r.ReadU64());

  HYPERTP_ASSIGN_OR_RETURN(v.xsave.xcr0, r.ReadU64());
  HYPERTP_ASSIGN_OR_RETURN(v.xsave.area, r.ReadLengthPrefixed());
  if (v.xsave.area.size() != kXsaveAreaSize) {
    return DataLossError("uisr: xsave area is " + std::to_string(v.xsave.area.size()) +
                         " bytes, expected " + std::to_string(kXsaveAreaSize));
  }
  return v;
}

template <typename W>
void EncodeVmHeader(W& w, const UisrVm& vm) {
  w.PutU64(vm.vm_uid);
  w.PutString(vm.name);
  w.PutString(vm.source_hypervisor);
  w.PutU64(vm.memory.memory_bytes);
  w.PutU64(vm.memory.pram_file_id);
  w.PutU8(vm.memory.uses_huge_pages ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(vm.vcpus.size()));
}

template <typename W>
void EncodeIoapic(W& w, const UisrIoapic& io) {
  w.PutU32(io.id);
  w.PutU64(io.base_address);
  w.PutU32(io.num_pins);
  for (uint32_t i = 0; i < io.num_pins; ++i) {
    w.PutU64(io.redirection[i]);
  }
}

template <typename W>
void EncodePit(W& w, const UisrPit& pit) {
  for (const UisrPitChannel& c : pit.channels) {
    w.PutU32(c.count);
    w.PutU16(c.latched_count);
    w.PutU8(c.count_latched);
    w.PutU8(c.status_latched);
    w.PutU8(c.status);
    w.PutU8(c.read_state);
    w.PutU8(c.write_state);
    w.PutU8(c.write_latch);
    w.PutU8(c.rw_mode);
    w.PutU8(c.mode);
    w.PutU8(c.bcd);
    w.PutU8(c.gate);
    w.PutU64(c.count_load_time);
  }
  w.PutU8(pit.speaker_data_on);
}

template <typename W>
void EncodeDevice(W& w, const UisrDeviceState& dev) {
  w.PutString(dev.model);
  w.PutU32(dev.instance);
  w.PutU8(static_cast<uint8_t>(dev.mode));
  w.PutLengthPrefixed(dev.opaque);
}

// Appends one TLV section whose payload is produced by `fill`, recording its
// offsets in `layout` when one is supplied.
template <typename W, typename Fill>
void AppendSection(W& w, UisrSectionType type, UisrSectionLayout* layout, Fill&& fill) {
  const size_t header_at = w.size();
  w.PutU16(static_cast<uint16_t>(type));
  const size_t len_at = w.size();
  w.PutU32(0);  // Patched below.
  const size_t payload_start = w.size();
  fill(w);
  w.PatchU32(len_at, static_cast<uint32_t>(w.size() - payload_start));
  if (layout != nullptr) {
    layout->sections.push_back({type, header_at, payload_start, w.size() - payload_start});
  }
}

// Everything up to (not including) the kEnd/CRC trailer.
template <typename W>
void EncodeUisrBody(W& w, const UisrVm& vm, UisrSectionLayout* layout) {
  w.PutU32(kUisrMagic);
  w.PutU16(kUisrVersion);
  w.PutU16(0);  // Flags.

  AppendSection(w, UisrSectionType::kVmHeader, layout,
                [&vm](auto& out) { EncodeVmHeader(out, vm); });
  for (const UisrVcpu& v : vm.vcpus) {
    AppendSection(w, UisrSectionType::kVcpu, layout, [&v](auto& out) { EncodeVcpu(out, v); });
  }
  AppendSection(w, UisrSectionType::kIoapic, layout,
                [&vm](auto& out) { EncodeIoapic(out, vm.ioapic); });
  AppendSection(w, UisrSectionType::kPit, layout, [&vm](auto& out) { EncodePit(out, vm.pit); });
  for (const UisrDeviceState& dev : vm.devices) {
    AppendSection(w, UisrSectionType::kDevice, layout,
                  [&dev](auto& out) { EncodeDevice(out, dev); });
  }
}

// u16 type + u32 length + u32 CRC.
constexpr size_t kEndTrailerBytes = 10;

}  // namespace

const UisrSectionSpan* UisrSectionLayout::Find(UisrSectionType type, size_t ordinal) const {
  size_t seen = 0;
  for (const UisrSectionSpan& s : sections) {
    if (s.type != type) {
      continue;
    }
    if (seen == ordinal) {
      return &s;
    }
    ++seen;
  }
  return nullptr;
}

size_t EncodedUisrSize(const UisrVm& vm) {
  ByteCounter counter;
  EncodeUisrBody(counter, vm, nullptr);
  return counter.size() + kEndTrailerBytes;
}

template <typename Writer>
void EncodeUisrVm(const UisrVm& vm, Writer& w) {
  const size_t start = w.size();
  w.Reserve(start + EncodedUisrSize(vm));
  EncodeUisrBody(w, vm, nullptr);
  // CRC trailer over this VM's bytes only, so the blob decodes identically
  // whether it stands alone or sits embedded in a larger stream.
  const uint32_t crc = Crc32(w.Written(start));
  w.PutU16(static_cast<uint16_t>(UisrSectionType::kEnd));
  w.PutU32(4);
  w.PutU32(crc);
}

template void EncodeUisrVm<ByteWriter>(const UisrVm& vm, ByteWriter& w);
template void EncodeUisrVm<SpanWriter>(const UisrVm& vm, SpanWriter& w);

std::vector<uint8_t> EncodeUisrVm(const UisrVm& vm) {
  ByteWriter w;
  EncodeUisrVm(vm, w);
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeUisrVm(const UisrVm& vm, UisrSectionLayout* layout) {
  layout->sections.clear();
  ByteWriter w;
  w.Reserve(EncodedUisrSize(vm));
  EncodeUisrBody(w, vm, layout);
  const uint32_t crc = Crc32(std::span<const uint8_t>(w.bytes()));
  w.PutU16(static_cast<uint16_t>(UisrSectionType::kEnd));
  w.PutU32(4);
  w.PutU32(crc);
  layout->total_size = w.size();
  return w.TakeBytes();
}

Result<UisrSectionLayout> IndexUisrSections(std::span<const uint8_t> blob) {
  ByteReader r(blob);
  HYPERTP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kUisrMagic) {
    return DataLossError("uisr: bad magic");
  }
  HYPERTP_ASSIGN_OR_RETURN(uint16_t version, r.ReadU16());
  if (version > kUisrVersion) {
    return UnimplementedError("uisr: version " + std::to_string(version) + " not supported");
  }
  HYPERTP_RETURN_IF_ERROR(r.Skip(2));  // Flags.

  UisrSectionLayout layout;
  while (!r.AtEnd()) {
    const size_t header_at = r.position();
    HYPERTP_ASSIGN_OR_RETURN(uint16_t raw_type, r.ReadU16());
    HYPERTP_ASSIGN_OR_RETURN(uint32_t length, r.ReadU32());
    const auto type = static_cast<UisrSectionType>(raw_type);
    if (type == UisrSectionType::kEnd) {
      if (length != 4) {
        return DataLossError("uisr: end section declares length " + std::to_string(length) +
                             ", expected 4 (CRC trailer)");
      }
      HYPERTP_RETURN_IF_ERROR(r.Skip(4));  // CRC value; not validated here.
      if (!r.AtEnd()) {
        return DataLossError("uisr: trailing bytes after CRC trailer");
      }
      layout.total_size = blob.size();
      return layout;
    }
    const size_t payload_at = r.position();
    HYPERTP_RETURN_IF_ERROR(r.Skip(length));
    layout.sections.push_back({type, header_at, payload_at, length});
  }
  return DataLossError("uisr: missing end/CRC section");
}

template <typename Writer>
void EncodeUisrSectionPayloadTo(const UisrVm& vm, UisrSectionType type, size_t ordinal,
                                Writer& w) {
  switch (type) {
    case UisrSectionType::kVmHeader:
      EncodeVmHeader(w, vm);
      break;
    case UisrSectionType::kVcpu:
      if (ordinal < vm.vcpus.size()) {
        EncodeVcpu(w, vm.vcpus[ordinal]);
      }
      break;
    case UisrSectionType::kIoapic:
      EncodeIoapic(w, vm.ioapic);
      break;
    case UisrSectionType::kPit:
      EncodePit(w, vm.pit);
      break;
    case UisrSectionType::kDevice:
      if (ordinal < vm.devices.size()) {
        EncodeDevice(w, vm.devices[ordinal]);
      }
      break;
    case UisrSectionType::kEnd:
      break;
  }
}

template void EncodeUisrSectionPayloadTo<ByteWriter>(const UisrVm&, UisrSectionType, size_t,
                                                     ByteWriter&);
template void EncodeUisrSectionPayloadTo<SpanWriter>(const UisrVm&, UisrSectionType, size_t,
                                                     SpanWriter&);

size_t UisrSectionPayloadSize(const UisrVm& vm, UisrSectionType type, size_t ordinal) {
  ByteCounter counter;
  EncodeUisrSectionPayloadTo(vm, type, ordinal, counter);
  return counter.size();
}

std::vector<uint8_t> EncodeUisrSectionPayload(const UisrVm& vm, UisrSectionType type,
                                              size_t ordinal) {
  ByteWriter w;
  EncodeUisrSectionPayloadTo(vm, type, ordinal, w);
  return w.TakeBytes();
}

Result<void> PatchUisrSectionPayload(std::span<uint8_t> blob, const UisrSectionSpan& span,
                                     std::span<const uint8_t> payload) {
  if (payload.size() != span.payload_size) {
    return InvalidArgumentError("uisr: patch payload is " + std::to_string(payload.size()) +
                                " bytes, section holds " + std::to_string(span.payload_size));
  }
  if (span.payload_offset + span.payload_size > blob.size()) {
    return InvalidArgumentError("uisr: section span exceeds blob");
  }
  std::copy(payload.begin(), payload.end(), blob.begin() + span.payload_offset);
  return OkResult();
}

Result<void> ResealUisrBlob(std::span<uint8_t> blob) {
  if (blob.size() < kEndTrailerBytes) {
    return DataLossError("uisr: blob too small to hold a CRC trailer");
  }
  ByteReader trailer(std::span<const uint8_t>(blob).subspan(blob.size() - kEndTrailerBytes));
  HYPERTP_ASSIGN_OR_RETURN(uint16_t raw_type, trailer.ReadU16());
  HYPERTP_ASSIGN_OR_RETURN(uint32_t length, trailer.ReadU32());
  if (raw_type != static_cast<uint16_t>(UisrSectionType::kEnd) || length != 4) {
    return DataLossError("uisr: blob does not end in a kEnd/CRC trailer");
  }
  const uint32_t crc =
      Crc32(std::span<const uint8_t>(blob).subspan(0, blob.size() - kEndTrailerBytes));
  const size_t at = blob.size() - 4;
  blob[at] = static_cast<uint8_t>(crc & 0xFF);
  blob[at + 1] = static_cast<uint8_t>((crc >> 8) & 0xFF);
  blob[at + 2] = static_cast<uint8_t>((crc >> 16) & 0xFF);
  blob[at + 3] = static_cast<uint8_t>((crc >> 24) & 0xFF);
  return OkResult();
}

Result<UisrVm> DecodeUisrVm(std::span<const uint8_t> data) {
  ByteReader r(data);
  HYPERTP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kUisrMagic) {
    return DataLossError("uisr: bad magic");
  }
  HYPERTP_ASSIGN_OR_RETURN(uint16_t version, r.ReadU16());
  if (version > kUisrVersion) {
    return UnimplementedError("uisr: version " + std::to_string(version) + " not supported");
  }
  HYPERTP_RETURN_IF_ERROR(r.Skip(2));  // Flags.

  UisrVm vm;
  uint32_t declared_vcpus = 0;
  bool saw_header = false;
  bool saw_end = false;

  while (!r.AtEnd()) {
    // Remember where this section starts: the kEnd trailer's CRC covers
    // every byte before its own type field, whatever the header size is.
    const size_t section_start = r.position();
    HYPERTP_ASSIGN_OR_RETURN(uint16_t raw_type, r.ReadU16());
    HYPERTP_ASSIGN_OR_RETURN(uint32_t length, r.ReadU32());
    const auto type = static_cast<UisrSectionType>(raw_type);

    if (type == UisrSectionType::kEnd) {
      if (length != 4) {
        return DataLossError("uisr: end section declares length " + std::to_string(length) +
                             ", expected 4 (CRC trailer)");
      }
      HYPERTP_ASSIGN_OR_RETURN(uint32_t stored_crc, r.ReadU32());
      const uint32_t actual_crc = Crc32(data.subspan(0, section_start));
      if (stored_crc != actual_crc) {
        return DataLossError("uisr: CRC mismatch (corrupted blob)");
      }
      if (!r.AtEnd()) {
        return DataLossError("uisr: " + std::to_string(r.remaining()) +
                             " trailing bytes after CRC trailer (truncated or concatenated "
                             "blob?)");
      }
      saw_end = true;
      break;
    }

    HYPERTP_ASSIGN_OR_RETURN(auto payload, r.ReadBytes(length));
    ByteReader section(payload);
    switch (type) {
      case UisrSectionType::kVmHeader: {
        HYPERTP_ASSIGN_OR_RETURN(vm.vm_uid, section.ReadU64());
        HYPERTP_ASSIGN_OR_RETURN(vm.name, section.ReadString());
        HYPERTP_ASSIGN_OR_RETURN(vm.source_hypervisor, section.ReadString());
        HYPERTP_ASSIGN_OR_RETURN(vm.memory.memory_bytes, section.ReadU64());
        HYPERTP_ASSIGN_OR_RETURN(vm.memory.pram_file_id, section.ReadU64());
        HYPERTP_ASSIGN_OR_RETURN(uint8_t huge, section.ReadU8());
        vm.memory.uses_huge_pages = huge != 0;
        HYPERTP_ASSIGN_OR_RETURN(declared_vcpus, section.ReadU32());
        saw_header = true;
        break;
      }
      case UisrSectionType::kVcpu: {
        HYPERTP_ASSIGN_OR_RETURN(UisrVcpu vcpu, DecodeVcpu(section));
        vm.vcpus.push_back(std::move(vcpu));
        break;
      }
      case UisrSectionType::kIoapic: {
        HYPERTP_ASSIGN_OR_RETURN(vm.ioapic.id, section.ReadU32());
        HYPERTP_ASSIGN_OR_RETURN(vm.ioapic.base_address, section.ReadU64());
        HYPERTP_ASSIGN_OR_RETURN(vm.ioapic.num_pins, section.ReadU32());
        if (vm.ioapic.num_pins > kUisrMaxIoapicPins) {
          return DataLossError("uisr: ioapic pin count " + std::to_string(vm.ioapic.num_pins) +
                               " exceeds limit");
        }
        for (uint32_t i = 0; i < vm.ioapic.num_pins; ++i) {
          HYPERTP_ASSIGN_OR_RETURN(vm.ioapic.redirection[i], section.ReadU64());
        }
        break;
      }
      case UisrSectionType::kPit: {
        for (UisrPitChannel& c : vm.pit.channels) {
          HYPERTP_ASSIGN_OR_RETURN(c.count, section.ReadU32());
          HYPERTP_ASSIGN_OR_RETURN(c.latched_count, section.ReadU16());
          HYPERTP_ASSIGN_OR_RETURN(c.count_latched, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.status_latched, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.status, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.read_state, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.write_state, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.write_latch, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.rw_mode, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.mode, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.bcd, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.gate, section.ReadU8());
          HYPERTP_ASSIGN_OR_RETURN(c.count_load_time, section.ReadU64());
        }
        HYPERTP_ASSIGN_OR_RETURN(vm.pit.speaker_data_on, section.ReadU8());
        break;
      }
      case UisrSectionType::kDevice: {
        UisrDeviceState dev;
        HYPERTP_ASSIGN_OR_RETURN(dev.model, section.ReadString());
        HYPERTP_ASSIGN_OR_RETURN(dev.instance, section.ReadU32());
        HYPERTP_ASSIGN_OR_RETURN(uint8_t mode, section.ReadU8());
        if (mode > static_cast<uint8_t>(DeviceAttachMode::kUnplugged)) {
          return DataLossError("uisr: bad device attach mode " + std::to_string(mode));
        }
        dev.mode = static_cast<DeviceAttachMode>(mode);
        HYPERTP_ASSIGN_OR_RETURN(dev.opaque, section.ReadLengthPrefixed());
        vm.devices.push_back(std::move(dev));
        break;
      }
      case UisrSectionType::kEnd:
        break;  // Handled above.
    }
  }

  if (!saw_end) {
    return DataLossError("uisr: missing end/CRC section");
  }
  if (!saw_header) {
    return DataLossError("uisr: missing VM header section");
  }
  if (vm.vcpus.size() != declared_vcpus) {
    return DataLossError("uisr: header declares " + std::to_string(declared_vcpus) +
                         " vcpus, found " + std::to_string(vm.vcpus.size()));
  }
  return vm;
}

UisrSizeBreakdown MeasureUisrVm(const UisrVm& vm) {
  UisrSizeBreakdown sizes;
  // ByteCounter walks the same encoders without materializing any bytes.
  auto measure = [](auto&& fill) {
    ByteCounter counter;
    fill(counter);
    return counter.size();
  };
  sizes.header = measure([&vm](ByteCounter& w) { EncodeVmHeader(w, vm); });
  for (const UisrVcpu& v : vm.vcpus) {
    sizes.vcpus += measure([&v](ByteCounter& w) { EncodeVcpu(w, v); });
  }
  sizes.ioapic = measure([&vm](ByteCounter& w) { EncodeIoapic(w, vm.ioapic); });
  sizes.pit = measure([&vm](ByteCounter& w) { EncodePit(w, vm.pit); });
  for (const UisrDeviceState& dev : vm.devices) {
    sizes.devices += measure([&dev](ByteCounter& w) { EncodeDevice(w, dev); });
  }
  // 8-byte file header, 6 bytes per section header, 10-byte end trailer.
  const size_t sections = 3 + vm.vcpus.size() + vm.devices.size();
  sizes.framing = 8 + 6 * sections + 10;
  return sizes;
}

}  // namespace hypertp
