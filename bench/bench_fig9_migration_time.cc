// Regenerates Fig. 9: total migration time, MigrationTP (Xen -> KVM) vs
// Xen -> Xen, sweeping vCPUs, memory, and VM count. Expected shapes: total
// time ~flat in vCPUs, proportional to memory size (page copies dominate),
// and for multiple VMs MigrationTP shows less variance than Xen.

#include "bench/bench_util.h"
#include "src/kvm/kvm_host.h"
#include "src/migrate/migrate.h"
#include "src/sim/stats.h"
#include "src/xen/xenvisor.h"

namespace hypertp {
namespace {

std::vector<MigrationResult> MigrateFleet(int vms, uint32_t vcpus, uint64_t mem_bytes,
                                          HypervisorKind dst_kind) {
  Machine src_machine(MachineProfile::M2(), 1);
  XenVisor src(src_machine);
  std::vector<VmId> ids;
  for (int i = 0; i < vms; ++i) {
    VmConfig config = VmConfig::Small("f9-" + std::to_string(i));
    config.vcpus = vcpus;
    config.memory_bytes = mem_bytes;
    auto id = src.CreateVm(config);
    if (!id.ok()) {
      return {};
    }
    ids.push_back(*id);
  }
  Machine dst_machine(MachineProfile::M2(), 2);
  MigrationEngine engine(NetworkLink{1.0});
  if (dst_kind == HypervisorKind::kKvm) {
    KvmHost dst(dst_machine);
    auto results = engine.MigrateMany(src, ids, dst, MigrationConfig{});
    return results.ok() ? results->successes() : std::vector<MigrationResult>{};
  }
  XenVisor dst(dst_machine);
  auto results = engine.MigrateMany(src, ids, dst, MigrationConfig{});
  return results.ok() ? results->successes() : std::vector<MigrationResult>{};
}

double SingleTotalSec(uint32_t vcpus, uint64_t mem, HypervisorKind dst) {
  auto results = MigrateFleet(1, vcpus, mem, dst);
  return results.empty() ? 0.0 : bench::Sec(results[0].total_time);
}

void Run() {
  bench::Banner("Fig. 9 — Total migration time: MigrationTP vs Xen->Xen",
                "1 Gbps link. Paper: ~9.5 s at 1 GB growing to ~110 s at 12 GB; flat in "
                "vCPUs; multi-VM totals similar, MigrationTP with less per-VM variance.");

  bench::BenchReport report("fig9_migration_time");

  bench::Section("a) vCPU sweep (1 GB VM), total time in s");
  bench::Row("%-8s %12s %12s", "vCPUs", "Xen->Xen", "MigrationTP");
  for (uint32_t vcpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
    const double xen_s = SingleTotalSec(vcpus, 1ull << 30, HypervisorKind::kXen);
    const double tp_s = SingleTotalSec(vcpus, 1ull << 30, HypervisorKind::kKvm);
    bench::Row("%-8u %12.2f %12.2f", vcpus, xen_s, tp_s);
    report.AddSample("vcpu_sweep_xen_s", xen_s);
    report.AddSample("vcpu_sweep_tp_s", tp_s);
  }

  bench::Section("b) memory sweep (1 vCPU), total time in s");
  bench::Row("%-8s %12s %12s", "GiB", "Xen->Xen", "MigrationTP");
  for (uint64_t gib : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull}) {
    const double xen_s = SingleTotalSec(1, gib << 30, HypervisorKind::kXen);
    const double tp_s = SingleTotalSec(1, gib << 30, HypervisorKind::kKvm);
    bench::Row("%-8llu %12.2f %12.2f", static_cast<unsigned long long>(gib), xen_s, tp_s);
    report.AddSample("memory_sweep_xen_s", xen_s);
    report.AddSample("memory_sweep_tp_s", tp_s);
  }

  bench::Section("c) VM-count sweep (1 vCPU / 1 GB each), per-VM completion time in s");
  bench::Row("%-8s %-36s %-36s", "#VMs", "Xen->Xen (med [min,max])", "MigrationTP (med [min,max])");
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    SampleSet& xen_samples = report.Series("multivm_xen_s_" + std::to_string(vms) + "vms");
    SampleSet& tp_samples = report.Series("multivm_tp_s_" + std::to_string(vms) + "vms");
    SimDuration xen_makespan = 0, tp_makespan = 0;
    for (const MigrationResult& r : MigrateFleet(vms, 1, 1ull << 30, HypervisorKind::kXen)) {
      xen_samples.Add(bench::Sec(r.total_time));
      xen_makespan = std::max(xen_makespan, r.total_time);
    }
    for (const MigrationResult& r : MigrateFleet(vms, 1, 1ull << 30, HypervisorKind::kKvm)) {
      tp_samples.Add(bench::Sec(r.total_time));
      tp_makespan = std::max(tp_makespan, r.total_time);
    }
    bench::Row("%-8d med=%7.1f [%7.1f, %7.1f]         med=%7.1f [%7.1f, %7.1f]", vms,
               xen_samples.Percentile(50), xen_samples.min(), xen_samples.max(),
               tp_samples.Percentile(50), tp_samples.min(), tp_samples.max());
    bench::Row("         makespan: Xen %.1f s, MigrationTP %.1f s", bench::Sec(xen_makespan),
               bench::Sec(tp_makespan));
    report.SetScalar("multivm_xen_makespan_s_" + std::to_string(vms) + "vms",
                     bench::Sec(xen_makespan));
    report.SetScalar("multivm_tp_makespan_s_" + std::to_string(vms) + "vms",
                     bench::Sec(tp_makespan));
  }

  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
