// Ablation study for the design choices DESIGN.md calls out:
//   1. prepare-before-pause (PRAM ahead of time)   [§4.2.5]
//   2. parallel translation/PRAM construction      [§4.2.5]
//   3. huge-page PRAM entries                      [§4.2.5]
//   4. early restoration                           [§4.2.5]
//   5. memory separation (vs full-copy transplant) [§3.1]
//   6. pre-copy vs post-copy migration             [extension]
//   7. wire compression                            [paper's ref 22]
//   8. UISR vs pairwise direct converters          [§3.1]
//   9. speculative pre-translation                 [extension]

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/kvm/kvm_host.h"
#include "src/migrate/migrate.h"
#include "src/xen/xenvisor.h"

namespace hypertp {
namespace {

TransplantReport RunWith(InPlaceOptions options, int vms, uint64_t mem_bytes) {
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  for (int i = 0; i < vms; ++i) {
    VmConfig config = VmConfig::Small("abl-" + std::to_string(i));
    config.memory_bytes = mem_bytes;
    auto id = xen->CreateVm(config);
    if (!id.ok()) {
      return {};
    }
  }
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, options);
  return result.ok() ? result->report : TransplantReport{};
}

void Run() {
  bench::Banner("Ablations — the InPlaceTP optimizations of §4.2.5 and the design "
                "principles of §3.1",
                "All runs: Xen -> KVM on M1.");

  {
    bench::Section("1) prepare-before-pause (8 x 1 GB VMs)");
    InPlaceOptions off;
    off.prepare_before_pause = false;
    const TransplantReport with = RunWith(InPlaceOptions{}, 8, 1ull << 30);
    const TransplantReport without = RunWith(off, 8, 1ull << 30);
    bench::Row("%-12s downtime %6.2f s   total %6.2f s", "enabled", bench::Sec(with.downtime),
               bench::Sec(with.total_time));
    bench::Row("%-12s downtime %6.2f s   total %6.2f s", "disabled",
               bench::Sec(without.downtime), bench::Sec(without.total_time));
    bench::Row("-> the PRAM phase (%.2f s) moves out of the downtime at no total-time cost",
               bench::Sec(with.phases.pram));
  }

  {
    bench::Section("2) parallel translation/PRAM (12 x 1 GB VMs; M1 has 6 worker threads)");
    InPlaceOptions off;
    off.parallel_translation = false;
    const TransplantReport with = RunWith(InPlaceOptions{}, 12, 1ull << 30);
    const TransplantReport without = RunWith(off, 12, 1ull << 30);
    bench::Row("%-12s pram %6.2f s   translation %6.2f s   downtime %6.2f s", "parallel",
               bench::Sec(with.phases.pram), bench::Sec(with.phases.translation),
               bench::Sec(with.downtime));
    bench::Row("%-12s pram %6.2f s   translation %6.2f s   downtime %6.2f s", "serial",
               bench::Sec(without.phases.pram), bench::Sec(without.phases.translation),
               bench::Sec(without.downtime));
  }

  {
    bench::Section("3) huge-page PRAM entries (1 x 8 GB VM)");
    InPlaceOptions off;
    off.use_huge_pages = false;
    const TransplantReport with = RunWith(InPlaceOptions{}, 1, 8ull << 30);
    const TransplantReport without = RunWith(off, 1, 8ull << 30);
    bench::Row("%-12s PRAM metadata %8.1f KB", "2M entries",
               with.pram_metadata_bytes / 1024.0);
    bench::Row("%-12s PRAM metadata %8.1f KB (%.0fx)", "4K entries",
               without.pram_metadata_bytes / 1024.0,
               static_cast<double>(without.pram_metadata_bytes) /
                   static_cast<double>(std::max<uint64_t>(with.pram_metadata_bytes, 1)));
  }

  {
    bench::Section("4) early restoration (6 x 1 GB VMs)");
    InPlaceOptions off;
    off.early_restoration = false;
    const TransplantReport with = RunWith(InPlaceOptions{}, 6, 1ull << 30);
    const TransplantReport without = RunWith(off, 6, 1ull << 30);
    bench::Row("%-12s restoration %6.2f s   downtime %6.2f s", "enabled",
               bench::Sec(with.phases.restoration), bench::Sec(with.downtime));
    bench::Row("%-12s restoration %6.2f s   downtime %6.2f s", "disabled",
               bench::Sec(without.phases.restoration), bench::Sec(without.downtime));
  }

  {
    bench::Section("5) memory separation vs full-copy transplant (analytic, 1 x 8 GB VM)");
    const TransplantReport report = RunWith(InPlaceOptions{}, 1, 8ull << 30);
    // Without memory separation, Guest State (8 GB) would be serialized and
    // restored through RAM at memcpy speed (~5 GB/s each way).
    const double copy_seconds = 2.0 * 8.0 / 5.0;
    bench::Row("with separation: downtime %.2f s (guest pages untouched, in place)",
               bench::Sec(report.downtime));
    bench::Row("full copy would add ~%.1f s of serialize+restore -> downtime ~%.1f s",
               copy_seconds, bench::Sec(report.downtime) + copy_seconds);
  }

  {
    bench::Section("6) pre-copy vs post-copy migration (1 x 4 GB VM, 1 Gbps)");
    auto run = [](MigrationMode mode, double compression) {
      Machine src_machine(MachineProfile::M1(), 50);
      Machine dst_machine(MachineProfile::M1(), 51);
      XenVisor src(src_machine);
      KvmHost dst(dst_machine);
      VmConfig config = VmConfig::Small("abl-mig");
      config.memory_bytes = 4ull << 30;
      auto id = src.CreateVm(config);
      MigrationEngine engine(NetworkLink{1.0});
      MigrationConfig mig;
      mig.mode = mode;
      mig.compression_ratio = compression;
      auto result = engine.MigrateVm(src, *id, dst, mig);
      return result.ok() ? *result : MigrationResult{};
    };
    const MigrationResult pre = run(MigrationMode::kPrecopy, 1.0);
    const MigrationResult post = run(MigrationMode::kPostcopy, 1.0);
    bench::Row("%-10s downtime %9.2f ms  total %7.1f s  fault window %7.1f s", "pre-copy",
               bench::Ms(pre.downtime), bench::Sec(pre.total_time), 0.0);
    bench::Row("%-10s downtime %9.2f ms  total %7.1f s  fault window %7.1f s", "post-copy",
               bench::Ms(post.downtime), bench::Sec(post.total_time),
               bench::Sec(post.postcopy_fault_window));
    bench::Row("-> post-copy trades the stop-and-copy for a long degraded window and a");
    bench::Row("   mid-stream failure that loses the VM; the paper's choice of pre-copy holds");

    bench::Section("7) wire compression (adaptive memory compression, paper [22])");
    const MigrationResult raw = run(MigrationMode::kPrecopy, 1.0);
    const MigrationResult comp = run(MigrationMode::kPrecopy, 1.6);
    bench::Row("%-14s total %7.1f s  bytes %8.0f MiB", "raw",
               bench::Sec(raw.total_time), raw.bytes_transferred / 1048576.0);
    bench::Row("%-14s total %7.1f s  bytes %8.0f MiB  (1.6x ratio)", "compressed",
               bench::Sec(comp.total_time), comp.bytes_transferred / 1048576.0);
  }

  {
    bench::Section("8) UISR vs pairwise direct converters (engineering-cost ablation)");
    bench::Row("%-14s %22s %26s", "hypervisors", "UISR converters (2N)", "direct converters (N^2-N)");
    for (int n : {2, 3, 5, 8}) {
      bench::Row("%-14d %22d %26d", n, 2 * n, n * (n - 1));
    }
    bench::Row("-> UISR keeps re-engineering linear in the repertoire size (paper §3.1)");
  }

  {
    bench::Section("9) speculative pre-translation (12 x 1 GB VMs, idle guests)");
    InPlaceOptions off;
    off.pre_translate = false;
    const TransplantReport with = RunWith(InPlaceOptions{}, 12, 1ull << 30);
    const TransplantReport without = RunWith(off, 12, 1ull << 30);
    bench::Row("%-12s translation %6.3f s   pre_translation %6.2f s   downtime %6.2f s",
               "enabled", bench::Sec(with.phases.translation),
               bench::Sec(with.phases.pre_translation), bench::Sec(with.downtime));
    bench::Row("%-12s translation %6.3f s   pre_translation %6.2f s   downtime %6.2f s",
               "disabled", bench::Sec(without.phases.translation),
               bench::Sec(without.phases.pre_translation), bench::Sec(without.downtime));
    bench::Row("-> Extract+UisrEncode moves out of the pause window; idle guests keep their");
    bench::Row("   cached blobs, so the paused translation collapses to the generation check");
  }
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
