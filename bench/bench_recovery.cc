// Recovery sweep: downtime cost of failure-atomic InPlaceTP across every
// post-pause fault point and VM count. Each cell runs a real transplant with
// the fault injected, exercises the PRAM ledger rollback, and reports the
// salvage outcome plus how much downtime the recovery added on top of a
// clean transplant. Pre-reboot faults abort (no reboot, tiny cost);
// post-pause faults roll back (second micro-reboot + source restore).

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"

namespace hypertp {
namespace {

struct SweepPoint {
  InPlaceOptions::Fault fault;
  const char* name;
};

struct CellResult {
  std::string outcome = "-";
  double downtime_s = 0.0;
  double rollback_s = 0.0;
  int vms_salvaged = 0;
};

CellResult RunCell(InPlaceOptions::Fault fault, int vms) {
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> source = MakeHypervisor(HypervisorKind::kXen, machine);
  for (int i = 0; i < vms; ++i) {
    auto id = source->CreateVm(VmConfig::Small("rec-" + std::to_string(i)));
    if (!id.ok()) {
      return CellResult{"create-failed", 0.0, 0.0, 0};
    }
  }
  InPlaceOptions options;
  options.inject_fault = fault;
  std::unique_ptr<Hypervisor> survivor;
  auto result =
      InPlaceTransplant::Run(std::move(source), HypervisorKind::kKvm, options, &survivor);

  CellResult cell;
  if (result.ok()) {
    cell.outcome = result->report.outcome == TransplantOutcome::kRolledBack ? "rolled_back"
                                                                            : "completed";
    cell.downtime_s = bench::Sec(result->report.downtime);
    cell.rollback_s = bench::Sec(result->report.phases.rollback);
    cell.vms_salvaged = static_cast<int>(result->restored_vms.size());
  } else if (survivor != nullptr) {
    cell.outcome = "aborted";
    cell.vms_salvaged = static_cast<int>(survivor->ListVms().size());
  } else {
    cell.outcome = "data_loss";
  }
  return cell;
}

void Run() {
  bench::Banner(
      "Recovery sweep — failure-atomic InPlaceTP: fault point x VM count",
      "Xen -> KVM on M1. Pre-reboot faults abort (source keeps serving);\n"
      "post-pause faults salvage via PRAM ledger rollback: a second micro-reboot\n"
      "back into the source kind restores every VM from the same image. The\n"
      "rollback column is the extra downtime the recovery charged.");

  const std::vector<SweepPoint> faults = {
      {InPlaceOptions::Fault::kNone, "none (baseline)"},
      {InPlaceOptions::Fault::kTranslationFailure, "translate"},
      {InPlaceOptions::Fault::kPramWriteFailure, "pram_write"},
      {InPlaceOptions::Fault::kKexecFailure, "kexec"},
      {InPlaceOptions::Fault::kDecodeFailure, "decode"},
      {InPlaceOptions::Fault::kRestoreFailure, "restore"},
      {InPlaceOptions::Fault::kLedgerTornWrite, "ledger_torn"},
  };

  bench::BenchReport report("recovery");
  for (int vms : {1, 4, 8}) {
    bench::Section(("VM count = " + std::to_string(vms)).c_str());
    bench::Row("%-18s %-12s %10s %12s %8s", "fault point", "outcome", "downtime_s",
               "rollback_s", "VMs");
    for (const SweepPoint& point : faults) {
      const CellResult cell = RunCell(point.fault, vms);
      bench::Row("%-18s %-12s %10.2f %12.2f %8d", point.name, cell.outcome.c_str(),
                 cell.downtime_s, cell.rollback_s, cell.vms_salvaged);
      const std::string tag = std::to_string(vms) + "vms";
      report.AddSample("downtime_s_" + tag, cell.downtime_s);
      if (cell.outcome == "rolled_back") {
        report.AddSample("rollback_s_" + tag, cell.rollback_s);
      }
      if (point.fault == InPlaceOptions::Fault::kNone) {
        report.SetScalar("baseline_downtime_s_" + tag, cell.downtime_s);
      }
    }
  }
  report.WriteJsonArtifact();

  bench::Section("reading the table");
  bench::Row("%s", "- aborted rows: fault before the point of no return; zero downtime "
                   "charged, the source hypervisor never stopped serving.");
  bench::Row("%s", "- rolled_back rows: downtime roughly doubles the baseline (two "
                   "micro-reboots + the source-side restore), but no VM is lost.");
  bench::Row("%s", "- ledger_torn is the one unrecoverable case: the commit record is "
                   "torn, rollback is refused, and the result is honest data loss.");
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
