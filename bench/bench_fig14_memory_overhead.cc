// Regenerates Fig. 14: HyperTP's memory overhead — PRAM metadata and
// serialized UISR sizes across the Fig. 7 sweeps. Paper: PRAM 16 KB (1 GB VM)
// to 60 KB (12 GB VM), 148 KB for 12 x 1 GB VMs; UISR 5 KB (1 vCPU) to 38 KB
// (10 vCPUs); total 21-98 KB per VM; ~4 KB/GB metadata with 2M pages vs
// ~2 MB/GB with 4K pages.

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/hv/hypervisor.h"
#include "src/pram/pram.h"
#include "src/uisr/codec.h"

namespace hypertp {
namespace {

// Builds the PRAM structure for the VMs currently on `hv` and returns the
// metadata size in bytes.
uint64_t PramBytesFor(Hypervisor& hv, bool huge_pages) {
  PramBuilder builder(hv.machine().memory());
  for (VmId id : hv.ListVms()) {
    auto info = hv.GetVmInfo(id);
    auto map = hv.GuestMemoryMap(id);
    if (!info.ok() || !map.ok()) {
      return 0;
    }
    std::vector<std::pair<Gfn, Mfn>> pairs;
    for (const GuestMapping& m : *map) {
      for (uint64_t i = 0; i < m.frames; ++i) {
        pairs.emplace_back(m.gfn + i, m.mfn + i);
      }
    }
    auto added = builder.AddFile("vm:" + std::to_string(info->uid), info->memory_bytes,
                                 huge_pages, BuildPageEntries(pairs, huge_pages));
    if (!added.ok()) {
      return 0;
    }
  }
  return builder.MetadataPagesNeeded() * kPageSize;
}

uint64_t UisrBytesFor(Hypervisor& hv) {
  uint64_t total = 0;
  FixupLog log;
  for (VmId id : hv.ListVms()) {
    (void)hv.PrepareVmForTransplant(id);
    (void)hv.PauseVm(id);
    auto uisr = hv.SaveVmToUisr(id, &log);
    if (uisr.ok()) {
      total += EncodeUisrVm(*uisr).size();
    }
    (void)hv.ResumeVm(id);
  }
  return total;
}

void Run() {
  bench::Banner("Fig. 14 — HyperTP memory overhead (PRAM metadata + UISR blobs)",
                "Paper: PRAM 16->60 KB across 1-12 GB, 148 KB for 12 VMs; UISR 5->38 KB "
                "across 1-10 vCPUs; total 21-98 KB per VM.");

  bench::Section("UISR size vs vCPU count (1 GB VM)");
  bench::Row("%-8s %12s %12s", "vCPUs", "UISR (KB)", "paper");
  for (uint32_t vcpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
    Machine machine(MachineProfile::M1(), vcpus);
    std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
    VmConfig config = VmConfig::Small("uisr");
    config.vcpus = vcpus;
    (void)xen->CreateVm(config);
    bench::Row("%-8u %12.1f %12s", vcpus, UisrBytesFor(*xen) / 1024.0,
               vcpus == 1 ? "5 KB" : (vcpus == 10 ? "38 KB" : "-"));
  }

  bench::Section("PRAM metadata vs VM memory size (1 VM, 2M huge pages)");
  bench::Row("%-8s %12s %12s", "GiB", "PRAM (KB)", "paper");
  for (uint64_t gib : {1ull, 2ull, 4ull, 6ull, 8ull, 10ull, 12ull}) {
    Machine machine(MachineProfile::M1(), 100 + gib);
    std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
    VmConfig config = VmConfig::Small("pram");
    config.memory_bytes = gib << 30;
    (void)xen->CreateVm(config);
    bench::Row("%-8llu %12.1f %12s", static_cast<unsigned long long>(gib),
               PramBytesFor(*xen, true) / 1024.0,
               gib == 1 ? "16 KB" : (gib == 12 ? "60 KB" : "-"));
  }

  bench::Section("PRAM metadata vs VM count (1 GB each, 2M huge pages)");
  bench::Row("%-8s %12s %12s", "#VMs", "PRAM (KB)", "paper");
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    Machine machine(MachineProfile::M1(), 200 + vms);
    std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
    for (int i = 0; i < vms; ++i) {
      (void)xen->CreateVm(VmConfig::Small("pram-" + std::to_string(i)));
    }
    bench::Row("%-8d %12.1f %12s", vms, PramBytesFor(*xen, true) / 1024.0,
               vms == 12 ? "148 KB" : "-");
  }

  bench::Section("Worst-case metadata density (paper §5.5)");
  {
    Machine machine(MachineProfile::M1(), 300);
    std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
    VmConfig config = VmConfig::Small("density");
    config.memory_bytes = 1ull << 30;
    (void)xen->CreateVm(config);
    const double huge_kb = PramBytesFor(*xen, true) / 1024.0;
    const double small_kb = PramBytesFor(*xen, false) / 1024.0;
    bench::Row("all-2M pages: %8.1f KB per GB (paper: ~4 KB/GB)", huge_kb);
    bench::Row("all-4K pages: %8.1f KB per GB (paper: ~2 MB/GB)", small_kb);
  }
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
