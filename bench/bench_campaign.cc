// Sharded campaign control plane at fleet scale: a 100k-host / 1M-VM
// transplant campaign through CampaignPlanner, swept over shard counts to
// show near-linear makespan scaling, plus the live exposure curve and the
// SLO governor under an injected rollback storm (throttle and abort).
// Deterministic: one seed, byte-identical artifacts on rerun.
//
// `--smoke` shrinks every section ~100x for sanitizer runs.

#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/campaign/campaign.h"

namespace hypertp {
namespace {

struct Scale {
  int racks = 8;
  int hosts_per_rack = 12500;  // 8 racks x 12.5k = 100k hosts, 1M VMs.
  int parallel_per_shard = 1000;
  int storm_hosts_per_rack = 1000;  // 8k-host storm fleet.
  // Skewed-DC steal section: 4 DCs x 100 racks x 250 = 100k hosts, 1M VMs.
  int skew_racks = 100;
  int skew_hosts_per_rack = 250;
  int skew_width = 250;
  bool assert_criteria = true;  // Full scale only: --smoke skips the gate.
};

CampaignConfig FleetOfRacks(const Scale& scale) {
  CampaignConfig config;
  CampaignDatacenter dc;
  dc.name = "dc0";
  dc.racks = scale.racks;
  dc.hosts_per_rack = scale.hosts_per_rack;
  dc.vms_per_host = 10;
  config.datacenters = {dc};
  config.parallel_hosts_per_shard = scale.parallel_per_shard;
  config.per_host_transplant = Seconds(10);
  config.latency_jitter = 0.2;
  config.epoch = Seconds(30);
  config.seed = 2026;
  return config;
}

void ScalingSweep(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("Shard scaling — one campaign, 1 -> 8 shards");
  bench::Row("%-7s %9s %9s %10s %9s %10s %11s", "shards", "hosts", "epochs", "makespan",
             "speedup", "exp-vm-d", "curve-pts");
  double base_makespan = 0.0;
  for (int shards : {1, 2, 4, 8}) {
    CampaignConfig config = FleetOfRacks(scale);
    config.shards = shards;
    CampaignPlanner planner(config);
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      bench::Row("shards=%d rejected: %s", shards, run.error().ToString().c_str());
      continue;
    }
    const CampaignReport& report = *run;
    // The live curve must decay monotonically — the streaming-analytics
    // contract this bench exists to demonstrate.
    bool monotone = true;
    for (size_t i = 1; i < report.exposure_curve.size(); ++i) {
      monotone &= report.exposure_curve[i].fraction <= report.exposure_curve[i - 1].fraction;
    }
    const double makespan_s = bench::Sec(report.makespan);
    if (shards == 1) {
      base_makespan = makespan_s;
    }
    bench::Row("%-7d %9d %9d %9.1fs %8.2fx %10.1f %8zu %s", shards, report.hosts,
               report.epochs, makespan_s, base_makespan > 0.0 ? base_makespan / makespan_s : 1.0,
               report.exposed_vm_days, report.exposure_curve.size(),
               monotone ? "" : "NON-MONOTONE!");
    const std::string tag = std::to_string(shards) + "shards";
    bench_report.SetScalar("makespan_s_" + tag, makespan_s);
    bench_report.SetScalar("exposed_vm_days_" + tag, report.exposed_vm_days);
    bench_report.SetScalar("curve_monotone_" + tag, monotone ? 1.0 : 0.0);
    SampleSet& series = bench_report.Series("shard_makespan_s_" + tag);
    for (double sample : report.shard_makespan_seconds.samples()) {
      series.Add(sample);
    }
    if (shards == 8) {
      bench::Row("  live curve (fraction of VMs still vulnerable):");
      const size_t stride = std::max<size_t>(report.exposure_curve.size() / 6, 1);
      for (size_t i = 0; i < report.exposure_curve.size(); i += stride) {
        const ExposureCurvePoint& p = report.exposure_curve[i];
        bench::Row("    t=%7.1fs  fraction=%.3f  exposed_vms=%lld", bench::Sec(p.time),
                   p.fraction, static_cast<long long>(p.exposed_vms));
      }
    }
  }
}

void BandwidthSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("Bandwidth-aware pacing — 4 datacenters, 2 WAN slots each");
  bench::Row("%-24s %9s %10s %12s", "config", "shards", "makespan", "last-admit");
  for (int slots : {0, 2}) {
    CampaignConfig config = FleetOfRacks(scale);
    // Same fleet re-laid-out over 4 DCs (uneven rack counts exercise the
    // D'Hondt apportionment), two racks per shard.
    config.datacenters.clear();
    const int dc_racks[4] = {scale.racks / 2, scale.racks / 4, scale.racks / 8,
                             scale.racks - scale.racks / 2 - scale.racks / 4 - scale.racks / 8};
    for (int d = 0; d < 4; ++d) {
      CampaignDatacenter dc;
      dc.name = "dc" + std::to_string(d);
      dc.racks = std::max(dc_racks[d], 1);
      dc.hosts_per_rack = scale.hosts_per_rack;
      dc.vms_per_host = 10;
      dc.bandwidth_slots = slots;
      config.datacenters.push_back(dc);
    }
    config.shards = 8;
    CampaignPlanner planner(config);
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      bench::Row("slots=%d rejected: %s", slots, run.error().ToString().c_str());
      continue;
    }
    SimTime last_admit = 0;
    for (const CampaignShardSummary& shard : run->shard_summaries) {
      last_admit = std::max(last_admit, shard.admitted);
    }
    bench::Row("%-24s %9d %9.1fs %11.1fs", slots == 0 ? "unconstrained" : "2 slots per DC",
               run->shards, bench::Sec(run->makespan), bench::Sec(last_admit));
    bench_report.SetScalar(std::string("bw_makespan_s_") +
                               (slots == 0 ? "unconstrained" : "slotted"),
                           bench::Sec(run->makespan));
  }
}

void StormSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("SLO governor under a rollback storm (50% attempts fault post-pause)");
  bench::Row("%-22s %9s %9s %10s %10s %8s %s", "budget", "epochs", "thr-ep", "makespan",
             "upgraded", "aborted", "reason");
  struct Case {
    const char* name;
    double throttle;
    double abort;
  };
  const Case cases[] = {
      {"none", 1.0, 1.0},
      {"throttle>5%", 0.05, 1.0},
      {"abort>20%", 1.0, 0.2},
  };
  for (const Case& c : cases) {
    CampaignConfig config = FleetOfRacks(scale);
    config.datacenters[0].hosts_per_rack = scale.storm_hosts_per_rack;
    config.parallel_hosts_per_shard = std::max(scale.parallel_per_shard / 10, 1);
    config.shards = 8;
    config.epoch = Seconds(5);
    config.failure_probability = 0.5;
    config.post_pause_fraction = 1.0;
    config.max_retries = 6;
    config.retry_backoff = Seconds(2);
    config.rollback_time = Seconds(2);
    config.slo.throttle_rollback_rate = c.throttle;
    config.slo.throttle_hold = Seconds(60);
    config.slo.abort_rollback_rate = c.abort;
    config.slo.rate_window_epochs = 4;
    CampaignPlanner planner(config);
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      bench::Row("%s rejected: %s", c.name, run.error().ToString().c_str());
      continue;
    }
    bench::Row("%-22s %9d %9d %9.1fs %10d %8s %s", c.name, run->epochs, run->throttled_epochs,
               bench::Sec(run->makespan), run->upgraded, run->aborted ? "yes" : "no",
               run->abort_reason.c_str());
    const std::string tag = c.throttle < 1.0 ? "throttled" : (c.abort < 1.0 ? "abort" : "free");
    bench_report.SetScalar("storm_makespan_s_" + tag, bench::Sec(run->makespan));
    bench_report.SetScalar("storm_throttled_epochs_" + tag, run->throttled_epochs);
    bench_report.SetScalar("storm_aborted_" + tag, run->aborted ? 1.0 : 0.0);
  }
}

void SkewedSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("Straggler tail — 4 DCs with 1x..4x host classes, fixed vs work-stealing");
  // Four equal-size DCs whose host classes span a hardware generation: the
  // slowest DC's shards are 4x stragglers under fixed ownership. The
  // work-conserving bound is total scaled work spread over every execution
  // slot; the acceptance gate is stealing >= 1.3x over fixed AND within 10%
  // of that bound.
  const double host_class[4] = {1.0, 1.5, 2.0, 4.0};
  const int shards = 8;
  CampaignConfig base;
  for (int d = 0; d < 4; ++d) {
    CampaignDatacenter dc;
    dc.name = "dc" + std::to_string(d);
    dc.racks = scale.skew_racks;
    dc.hosts_per_rack = scale.skew_hosts_per_rack;
    dc.vms_per_host = 10;
    dc.timing.host_class = host_class[d];
    base.datacenters.push_back(dc);
  }
  base.shards = shards;
  base.parallel_hosts_per_shard = scale.skew_width;
  base.per_host_transplant = Seconds(10);
  base.latency_jitter = 0.0;  // Exact wave math: the bound below is tight.
  base.epoch = Seconds(5);
  base.steal.threshold_epochs = 2.0;
  base.seed = 2026;

  double total_work_s = 0.0;
  for (int d = 0; d < 4; ++d) {
    total_work_s += static_cast<double>(base.datacenters[d].hosts()) * 10.0 * host_class[d];
  }
  const double bound_s = total_work_s / (static_cast<double>(shards) * scale.skew_width);

  bench::Row("%-14s %10s %9s %8s %8s %10s %10s", "ownership", "makespan", "vs-bound",
             "steals", "stolen", "idle-skip", "wall");
  double fixed_s = 0.0;
  double steal_s = 0.0;
  for (bool stealing : {false, true}) {
    CampaignConfig config = base;
    config.steal.enabled = stealing;
    Result<CampaignReport> run = CampaignPlanner(config).Run();
    if (!run.ok()) {
      bench::Row("%s rejected: %s", stealing ? "stealing" : "fixed",
                 run.error().ToString().c_str());
      return;
    }
    bool monotone = true;
    for (size_t i = 1; i < run->exposure_curve.size(); ++i) {
      monotone &= run->exposure_curve[i].fraction <= run->exposure_curve[i - 1].fraction;
    }
    const double makespan_s = bench::Sec(run->makespan);
    bench::Row("%-14s %9.1fs %8.2fx %8d %8d %10d %9.0fms %s",
               stealing ? "work-stealing" : "fixed", makespan_s, makespan_s / bound_s,
               run->steals, run->stolen_hosts, run->idle_epochs_skipped, run->wall_ms,
               monotone ? "" : "NON-MONOTONE!");
    if (stealing) {
      steal_s = makespan_s;
      bench_report.SetScalar("skew_makespan_steal_s", makespan_s);
      bench_report.SetScalar("skew_steals", run->steals);
      bench_report.SetScalar("skew_idle_epochs_skipped", run->idle_epochs_skipped);
      bench_report.SetScalar("skew_curve_monotone", monotone ? 1.0 : 0.0);
    } else {
      fixed_s = makespan_s;
      bench_report.SetScalar("skew_makespan_fixed_s", makespan_s);
    }
  }
  const double speedup = steal_s > 0.0 ? fixed_s / steal_s : 0.0;
  bench::Row("  work-conserving bound %.1fs, speedup %.2fx", bound_s, speedup);
  bench_report.SetScalar("skew_bound_s", bound_s);
  bench_report.SetScalar("skew_speedup", speedup);
  if (scale.assert_criteria && !(speedup >= 1.3 && steal_s <= 1.1 * bound_s)) {
    bench::Row("FAIL: steal criterion missed (need >=1.30x over fixed and <=1.10x bound, "
               "got %.2fx and %.2fx)",
               speedup, steal_s / bound_s);
    std::exit(1);
  }
}

void Run(bool smoke) {
  bench::Banner("Campaign control plane — 100k hosts / 1M VMs, sharded and SLO-governed",
                "10 s/host transplant, 20% jitter, 30 s epochs, seed 2026. Sections: shard "
                "scaling 1->8, bandwidth-aware multi-DC pacing, rollback-storm governance, "
                "heterogeneous-DC straggler tail with rack work-stealing.");
  Scale scale;
  if (smoke) {
    scale.hosts_per_rack = 125;  // 1k hosts / 10k VMs: sanitizer-friendly.
    scale.parallel_per_shard = 10;
    scale.storm_hosts_per_rack = 50;
    scale.skew_racks = 8;
    scale.skew_hosts_per_rack = 25;
    scale.skew_width = 25;
    scale.assert_criteria = false;
    bench::Row("(--smoke: 1k-host fleet)");
  }
  bench::BenchReport bench_report(smoke ? "campaign_smoke" : "campaign");
  ScalingSweep(scale, bench_report);
  BandwidthSection(scale, bench_report);
  StormSection(scale, bench_report);
  SkewedSection(scale, bench_report);
  bench_report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hypertp::Run(smoke);
  return 0;
}
