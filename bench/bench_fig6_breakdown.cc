// Regenerates Fig. 6: InPlaceTP time breakdown on M1 and M2 for Xen -> KVM
// with a single 1 vCPU / 1 GB VM, plus the separately-reported network
// re-initialization time. Emits BENCH_fig6_breakdown.json; with HYPERTP_TRACE
// set, each machine's transplant also writes a Chrome trace
// (TRACE_fig6_<machine>.json, loadable in ui.perfetto.dev).

#include <cstdlib>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/obs/trace.h"

namespace hypertp {
namespace {

struct PaperRow {
  double pram, translation, reboot, restoration, downtime, total, network;
};

void RunMachine(const MachineProfile& profile, const PaperRow& paper,
                bench::BenchReport& report) {
  Machine machine(profile, 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  auto id = xen->CreateVm(VmConfig::Small("fig6-vm"));
  if (!id.ok()) {
    bench::Row("VM creation failed: %s", id.error().ToString().c_str());
    return;
  }
  InPlaceOptions options;
  std::unique_ptr<Tracer> tracer;
  if (std::getenv("HYPERTP_TRACE") != nullptr) {
    tracer = std::make_unique<Tracer>();
    options.tracer = tracer.get();
  }
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, options);
  if (!result.ok()) {
    bench::Row("transplant failed: %s", result.error().ToString().c_str());
    return;
  }
  const TransplantReport& r = result->report;
  report.AddSample("pram_s", bench::Sec(r.phases.pram));
  report.AddSample("translation_s", bench::Sec(r.phases.translation));
  report.AddSample("reboot_s", bench::Sec(r.phases.reboot));
  report.AddSample("restoration_s", bench::Sec(r.phases.restoration));
  report.AddSample("downtime_s", bench::Sec(r.downtime));
  report.AddSample("total_s", bench::Sec(r.total_time));
  report.SetScalar(profile.name + "_downtime_s", bench::Sec(r.downtime));
  report.SetScalar(profile.name + "_total_s", bench::Sec(r.total_time));
  if (tracer != nullptr) {
    bench::WriteArtifactFile("TRACE_fig6_" + profile.name + ".json",
                             tracer->ToChromeTraceJson());
  }
  bench::Section(profile.name.c_str());
  bench::Row("%-22s %10s %10s", "phase", "measured", "paper");
  bench::Row("%-22s %9.2fs %9.2fs", "PRAM (pre-pause)", bench::Sec(r.phases.pram), paper.pram);
  bench::Row("%-22s %9.2fs %9.2fs", "Translation", bench::Sec(r.phases.translation),
             paper.translation);
  bench::Row("%-22s %9.2fs %9.2fs", "Reboot (incl. parse)", bench::Sec(r.phases.reboot),
             paper.reboot);
  bench::Row("%-22s %9.2fs %9.2fs", "Restoration", bench::Sec(r.phases.restoration),
             paper.restoration);
  bench::Row("%-22s %9.2fs %9.2fs", "VM downtime", bench::Sec(r.downtime), paper.downtime);
  bench::Row("%-22s %9.2fs %9.2fs", "Total transplant", bench::Sec(r.total_time), paper.total);
  bench::Row("%-22s %9.2fs %9.2fs", "Network interruption", bench::Sec(r.network_downtime),
             paper.network);
  bench::Row("reboot share of total: %.0f%% (paper: ~70%%)",
             100.0 * bench::Sec(r.phases.reboot) / bench::Sec(r.total_time));
}

void Run() {
  bench::Banner("Fig. 6 — InPlaceTP time breakdown (Xen -> KVM, 1 vCPU / 1 GB VM)",
                "Phases: PRAM construction (before pause), UISR translation, micro-reboot, "
                "restoration; downtime = translation + reboot + restoration.");
  // Paper values: M1 total 2.15 s (.45/.08/1.52/.12), downtime 1.7 s,
  // network 8.1 s overall with 6.6 s NIC wait; M2 total 3.56 s
  // (.5/.24/2.40/.34), downtime 3.01 s, network wait 2.3 s.
  bench::BenchReport report("fig6_breakdown");
  RunMachine(MachineProfile::M1(), {0.45, 0.08, 1.52, 0.12, 1.70, 2.15, 6.77}, report);
  RunMachine(MachineProfile::M2(), {0.50, 0.24, 2.40, 0.34, 3.01, 3.56, 2.64}, report);
  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
