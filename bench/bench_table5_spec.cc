// Regenerates Table 5: SPECrate 2017 execution times on KVM, Xen, and under
// InPlaceTP / MigrationTP with the transplant at mid-run, plus the paper's
// degradation metric per benchmark.

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/core/migration_tp.h"
#include "src/workload/spec.h"

namespace hypertp {
namespace {

void Run() {
  bench::Banner("Table 5 — SPECrate 2017 under InPlaceTP and MigrationTP (2 vCPU / 8 GB)",
                "deg = max((T-T_xen)/T_xen, (T-T_kvm)/T_kvm). Paper maxima: 4.19% "
                "(InPlaceTP, deepsjeng) and 4.81% (MigrationTP, fotonik3d).");

  // Real transplant runs supply the timing inputs.
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  VmConfig config = VmConfig::Small("spec");
  config.vcpus = 2;
  config.memory_bytes = 8ull << 30;
  auto vm = xen->CreateVm(config);
  auto inplace = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!inplace.ok()) {
    bench::Row("inplace failed: %s", inplace.error().ToString().c_str());
    return;
  }

  Machine src2(MachineProfile::M1(), 2);
  Machine dst2(MachineProfile::M1(), 3);
  std::unique_ptr<Hypervisor> xen2 = MakeHypervisor(HypervisorKind::kXen, src2);
  std::unique_ptr<Hypervisor> kvm2 = MakeHypervisor(HypervisorKind::kKvm, dst2);
  auto vm2 = xen2->CreateVm(config);
  MigrationConfig mig_config;
  mig_config.dirty_pages_per_sec = 1200.0;  // CPU suites touch little memory.
  auto migration = MigrationTransplant::Run(*xen2, {*vm2}, *kvm2, NetworkLink{1.0}, mig_config);
  if (!migration.ok()) {
    bench::Row("migration failed: %s", migration.error().ToString().c_str());
    return;
  }

  const auto kvm_runs = RunSpecSuite(SpecScenario::kPureKvm, nullptr, nullptr, 99);
  const auto xen_runs = RunSpecSuite(SpecScenario::kPureXen, nullptr, nullptr, 99);
  const auto ip_runs =
      RunSpecSuite(SpecScenario::kInPlaceTp, &inplace->report, nullptr, 99);
  const auto mig_runs =
      RunSpecSuite(SpecScenario::kMigrationTp, nullptr, &migration->migrations[0], 99);

  bench::Row("%-12s %9s %9s %12s %7s %12s %7s", "benchmark", "KVM(s)", "Xen(s)", "InPlaceTP(s)",
             "deg%", "MigrTP(s)", "deg%");
  for (size_t i = 0; i < kvm_runs.size(); ++i) {
    bench::Row("%-12s %9.2f %9.2f %12.2f %6.2f%% %12.2f %6.2f%%", kvm_runs[i].name.c_str(),
               kvm_runs[i].seconds, xen_runs[i].seconds, ip_runs[i].seconds,
               ip_runs[i].degradation_pct, mig_runs[i].seconds, mig_runs[i].degradation_pct);
  }
  bench::Row("%-12s %9s %9s %12s %6.2f%% %12s %6.2f%%", "max", "", "", "",
             MaxDegradationPct(ip_runs), "", MaxDegradationPct(mig_runs));
  bench::Row("(paper maxima: 4.19%% / 4.81%%; transplant downtime used: %.2f s InPlaceTP, "
             "%.2f ms MigrationTP)",
             bench::Sec(inplace->report.downtime), bench::Ms(migration->report.downtime));
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
