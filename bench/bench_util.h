// Shared helpers for the benchmark binaries: aligned table printing, the
// standard experiment banner, and the BENCH_<name>.json artifact writer.
// Each bench regenerates one of the paper's tables/figures, prints the
// simulated values next to the paper's reference numbers where the paper
// states them, and (for the converted benches) also emits a machine-readable
// artifact so plots and regression dashboards never scrape the table text.

#ifndef HYPERTP_BENCH_BENCH_UTIL_H_
#define HYPERTP_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace hypertp {
namespace bench {

inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================================\n");
}

inline void Section(const char* title) { std::printf("\n--- %s ---\n", title); }

// printf-style row helper.
inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

inline double Sec(SimDuration d) { return ToSeconds(d); }
inline double Ms(SimDuration d) { return ToMillis(d); }

// Directory for bench artifacts (BENCH_*.json, TRACE_*.json):
// $HYPERTP_BENCH_DIR when set, else the current directory.
inline std::string ArtifactDir() {
  const char* dir = std::getenv("HYPERTP_BENCH_DIR");
  return (dir != nullptr && dir[0] != '\0') ? dir : ".";
}

inline bool WriteArtifactFile(const std::string& filename, const std::string& contents) {
  const std::string path = ArtifactDir() + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  if (ok) {
    std::printf("\nartifact: %s\n", path.c_str());
  }
  return ok;
}

// Machine-readable result sink for one bench run: named sample series (each
// summarized as count/mean/p50/p99/min/max/stddev) plus scalar facts, written
// as BENCH_<name>.json. Keys serialize in sorted order, so reruns of a
// deterministic bench produce byte-identical artifacts.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  // The mutable series named `series`, created empty on first use.
  SampleSet& Series(const std::string& series) { return series_[series]; }
  void AddSample(const std::string& series, double value) { series_[series].Add(value); }
  void SetScalar(const std::string& key, double value) { scalars_[key] = value; }

  std::string ToJson() const {
    JsonWriter j;
    j.BeginObject();
    j.Key("kind").String("bench");
    j.Key("name").String(name_);
    j.Key("scalars").BeginObject();
    for (const auto& [key, value] : scalars_) {
      j.Key(key).Number(value);
    }
    j.EndObject();
    j.Key("series").BeginObject();
    for (const auto& [key, samples] : series_) {
      j.Key(key).BeginObject();
      j.Key("count").Number(static_cast<uint64_t>(samples.count()));
      j.Key("mean").Number(samples.mean());
      j.Key("p50").Number(samples.Percentile(50));
      j.Key("p99").Number(samples.Percentile(99));
      j.Key("min").Number(samples.min());
      j.Key("max").Number(samples.max());
      j.Key("stddev").Number(samples.stddev());
      j.EndObject();
    }
    j.EndObject();
    j.EndObject();
    return j.Take();
  }

  bool WriteJsonArtifact() const { return WriteArtifactFile("BENCH_" + name_ + ".json", ToJson()); }

 private:
  std::string name_;
  std::map<std::string, SampleSet> series_;
  std::map<std::string, double> scalars_;
};

}  // namespace bench
}  // namespace hypertp

#endif  // HYPERTP_BENCH_BENCH_UTIL_H_
