// Shared helpers for the benchmark binaries: aligned table printing and the
// standard experiment banner. Each bench regenerates one of the paper's
// tables/figures and prints the simulated values next to the paper's
// reference numbers where the paper states them.

#ifndef HYPERTP_BENCH_BENCH_UTIL_H_
#define HYPERTP_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace hypertp {
namespace bench {

inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================================\n");
}

inline void Section(const char* title) { std::printf("\n--- %s ---\n", title); }

// printf-style row helper.
inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

inline double Sec(SimDuration d) { return ToSeconds(d); }
inline double Ms(SimDuration d) { return ToMillis(d); }

}  // namespace bench
}  // namespace hypertp

#endif  // HYPERTP_BENCH_BENCH_UTIL_H_
