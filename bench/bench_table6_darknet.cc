// Regenerates Table 6: average/longest Darknet training-iteration duration
// under no event, Xen->Xen migration, InPlaceTP, and MigrationTP.

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/core/migration_tp.h"
#include "src/workload/darknet.h"
#include "src/xen/xenvisor.h"

namespace hypertp {
namespace {

VmConfig TrainerVm() {
  VmConfig config = VmConfig::Small("darknet");
  config.vcpus = 2;
  config.memory_bytes = 8ull << 30;
  return config;
}

void Run() {
  bench::Banner("Table 6 — Darknet MNIST training iterations (100 iterations, 2.044 s base)",
                "Paper: default 2.044 s, Xen migration 2.672 s (longest), InPlaceTP 4.970 s, "
                "MigrationTP 2.244 s.");

  const SimTime trigger = Seconds(100);  // Mid-run (~iteration 49).

  // Default.
  DarknetRun base = RunDarknetTraining(DarknetConfig{}, InterferenceSchedule{});

  // InPlaceTP: run the real transplant for the timing.
  Machine m1(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, m1);
  auto id1 = xen->CreateVm(TrainerVm());
  auto inplace = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  InterferenceSchedule inplace_schedule;
  if (inplace.ok()) {
    // Training is CPU-bound: network re-init does not extend its pause.
    inplace_schedule = InterferenceSchedule::ForInPlace(inplace->report, trigger, false);
  }
  DarknetRun ip_run = RunDarknetTraining(DarknetConfig{}, inplace_schedule);

  // MigrationTP to KVM, and the Xen->Xen baseline.
  auto migrate_to = [&](HypervisorKind kind) -> MigrationResult {
    Machine src_machine(MachineProfile::M1(), 10 + static_cast<int>(kind));
    Machine dst_machine(MachineProfile::M1(), 20 + static_cast<int>(kind));
    std::unique_ptr<Hypervisor> src = MakeHypervisor(HypervisorKind::kXen, src_machine);
    std::unique_ptr<Hypervisor> dst = MakeHypervisor(kind, dst_machine);
    auto id = src->CreateVm(TrainerVm());
    MigrationConfig config;
    config.dirty_pages_per_sec = 5000.0;  // Gradient buffers churn.
    auto result = MigrationTransplant::Run(*src, {*id}, *dst, NetworkLink{1.0}, config);
    return result.ok() ? result->migrations[0] : MigrationResult{};
  };
  const MigrationResult to_kvm = migrate_to(HypervisorKind::kKvm);
  const MigrationResult to_xen = migrate_to(HypervisorKind::kXen);

  DarknetRun tp_run = RunDarknetTraining(
      DarknetConfig{}, InterferenceSchedule::ForMigration(to_kvm, trigger, 0.92));
  DarknetRun xenmig_run = RunDarknetTraining(
      DarknetConfig{}, InterferenceSchedule::ForMigration(to_xen, trigger, 0.85));

  bench::Row("%-22s %12s %12s %12s", "scenario", "avg iter(s)", "longest(s)", "paper-longest");
  bench::Row("%-22s %12.3f %12.3f %12s", "Default", base.average(), base.longest(), "2.044");
  bench::Row("%-22s %12.3f %12.3f %12s", "Xen->Xen migration", xenmig_run.average(),
             xenmig_run.longest(), "2.672");
  bench::Row("%-22s %12.3f %12.3f %12s", "InPlaceTP", ip_run.average(), ip_run.longest(),
             "4.970");
  bench::Row("%-22s %12.3f %12.3f %12s", "MigrationTP", tp_run.average(), tp_run.longest(),
             "2.244");
  if (inplace.ok()) {
    bench::Row("(InPlaceTP downtime applied: %.2f s; MigrationTP downtime: %.2f ms)",
               bench::Sec(inplace->report.downtime), bench::Ms(to_kvm.downtime));
  }
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
