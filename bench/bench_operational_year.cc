// Operational capstone: Monte-Carlo years of datacenter operation under
// HyperTP — disclosures arrive at historical rates, the policy reacts, the
// fleet transplants. Aggregates the exposure reduction Fig. 1 promises and
// the downtime price paid for it.

#include "bench/bench_util.h"
#include "src/scenario/operational.h"
#include "src/sim/stats.h"

namespace hypertp {
namespace {

void RunFor(HypervisorKind home, const std::vector<HypervisorKind>& pool, const char* label) {
  bench::Section(label);
  SampleSet reduction, downtime_minutes, transplants;
  OperationalReport sample;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    OperationalConfig config;
    config.home = home;
    config.pool = pool;
    config.seed = seed;
    config.years = 1;
    OperationalReport report = RunOperationalSimulation(config);
    if (seed == 1) {
      sample = report;
    }
    if (report.exposure_days_hypertp > 0) {
      reduction.Add(report.exposure_reduction_factor());
    }
    downtime_minutes.Add(ToSeconds(report.vm_downtime_paid) / 60.0);
    transplants.Add(report.transplants_away);
  }
  bench::Row("transplants/year:       median %5.1f  [%0.0f, %0.0f]",
             transplants.Percentile(50), transplants.min(), transplants.max());
  bench::Row("exposure reduction:     median %5.0fx (over 20 seeded years)",
             reduction.Percentile(50));
  bench::Row("VM-downtime paid/year:  median %5.1f VM-minutes across the fleet",
             downtime_minutes.Percentile(50));
  bench::Row("sample year (seed 1): %d disclosures, %d away, %d back, %d unaffected-while-away,"
             " %d no-safe-target",
             sample.disclosures, sample.transplants_away, sample.transplants_back,
             sample.already_safe, sample.no_safe_target);
  for (const std::string& line : sample.event_log) {
    bench::Row("  %s", line.c_str());
  }
}

void Run() {
  bench::Banner("Operational simulation — a year of HyperTP in production",
                "Poisson disclosures at the 2013-2019 historical rate; 100-host fleet, "
                "1000 VMs; 4 h reaction time; patch windows from the dataset.");
  RunFor(HypervisorKind::kXen, {HypervisorKind::kXen, HypervisorKind::kKvm},
         "Xen fleet, {Xen, KVM} repertoire");
  RunFor(HypervisorKind::kXen,
         {HypervisorKind::kXen, HypervisorKind::kKvm, HypervisorKind::kBhyve},
         "Xen fleet, three-hypervisor repertoire");
  RunFor(HypervisorKind::kKvm, {HypervisorKind::kXen, HypervisorKind::kKvm},
         "KVM fleet, {Xen, KVM} repertoire");
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
