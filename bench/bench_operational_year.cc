// Operational capstone: Monte-Carlo years of datacenter operation under
// HyperTP — disclosures arrive at historical rates, the policy reacts, the
// fleet transplants. Aggregates the exposure reduction Fig. 1 promises and
// the downtime price paid for it, then replays the same years with the
// adaptive mechanism policy (src/policy/) against the fixed flat-charge
// baseline to price what per-VM mechanism selection buys.
//
// Deterministic: seeded years, byte-identical BENCH_operational_year.json on
// rerun. `--smoke` shrinks the seed sweep for sanitizer runs (and renames the
// artifact so it never clobbers the committed baseline).

#include <cstring>

#include "bench/bench_util.h"
#include "src/scenario/operational.h"
#include "src/sim/stats.h"

namespace hypertp {
namespace {

void RunFor(HypervisorKind home, const std::vector<HypervisorKind>& pool, const char* label,
            int seeds, bench::BenchReport& bench_report, const std::string& series_prefix) {
  bench::Section(label);
  SampleSet reduction, downtime_minutes, transplants;
  OperationalReport sample;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
    OperationalConfig config;
    config.home = home;
    config.pool = pool;
    config.seed = seed;
    config.years = 1;
    OperationalReport report = RunOperationalSimulation(config);
    if (seed == 1) {
      sample = report;
    }
    if (report.exposure_days_hypertp > 0) {
      reduction.Add(report.exposure_reduction_factor());
    }
    downtime_minutes.Add(ToSeconds(report.vm_downtime_paid) / 60.0);
    transplants.Add(report.transplants_away);
  }
  bench::Row("transplants/year:       median %5.1f  [%0.0f, %0.0f]",
             transplants.Percentile(50), transplants.min(), transplants.max());
  bench::Row("exposure reduction:     median %5.0fx (over %d seeded years)",
             reduction.Percentile(50), seeds);
  bench::Row("VM-downtime paid/year:  median %5.1f VM-minutes across the fleet",
             downtime_minutes.Percentile(50));
  bench::Row("sample year (seed 1): %d disclosures, %d away, %d back, %d unaffected-while-away,"
             " %d no-safe-target",
             sample.disclosures, sample.transplants_away, sample.transplants_back,
             sample.already_safe, sample.no_safe_target);
  for (const std::string& line : sample.event_log) {
    bench::Row("  %s", line.c_str());
  }
  bench_report.Series(series_prefix + "_reduction_factor") = reduction;
  bench_report.Series(series_prefix + "_downtime_vm_minutes") = downtime_minutes;
  bench_report.Series(series_prefix + "_transplants_per_year") = transplants;
}

// Fixed vs adaptive mechanism policy, replayed over the same seeded years.
// Both arms run the event-driven FleetController so the adaptive policy has
// per-host execution to price; everything except PolicyConfig::mode is
// identical, so any delta is the policy's.
void FixedVsAdaptive(int seeds, bench::BenchReport& bench_report) {
  bench::Section("Fixed vs adaptive mechanism policy — same years, FleetController mode");
  SampleSet fixed_downtime, adaptive_downtime, fixed_exposure, adaptive_exposure;
  OperationalReport sample_fixed, sample_adaptive;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
    OperationalConfig config;
    config.home = HypervisorKind::kXen;
    config.pool = {HypervisorKind::kXen, HypervisorKind::kKvm};
    config.seed = seed;
    config.years = 1;
    config.fleet_mode = FleetExecutionMode::kFleetController;

    OperationalReport fixed = RunOperationalSimulation(config);

    config.fleet_policy.mode = policy::PolicyMode::kAdaptive;
    OperationalReport adaptive = RunOperationalSimulation(config);

    if (seed == 1) {
      sample_fixed = fixed;
      sample_adaptive = adaptive;
    }
    fixed_downtime.Add(ToSeconds(fixed.vm_downtime_paid) / 60.0);
    adaptive_downtime.Add(ToSeconds(adaptive.vm_downtime_paid) / 60.0);
    fixed_exposure.Add(fixed.exposure_days_hypertp);
    adaptive_exposure.Add(adaptive.exposure_days_hypertp);
  }
  bench::Row("%-10s %22s %22s", "policy", "downtime (VM-min/yr)", "exposure (days/yr)");
  bench::Row("%-10s %12.1f (median) %12.2f (median)", "fixed",
             fixed_downtime.Percentile(50), fixed_exposure.Percentile(50));
  bench::Row("%-10s %12.1f (median) %12.2f (median)", "adaptive",
             adaptive_downtime.Percentile(50), adaptive_exposure.Percentile(50));
  const double fixed_dt = fixed_downtime.Percentile(50);
  const double adaptive_dt = adaptive_downtime.Percentile(50);
  if (adaptive_dt > 0) {
    bench::Row("downtime ratio: fixed charges %.1fx the adaptive modeled cost",
               fixed_dt / adaptive_dt);
  }
  bench::Row("sample year (seed 1, adaptive): %d in-place VMs, %d migrated, %d refused,"
             " %d refused hosts",
             sample_adaptive.policy_inplace_vms, sample_adaptive.policy_migrate_vms,
             sample_adaptive.policy_refused_vms, sample_adaptive.fleet_refused_hosts);
  bench_report.Series("fixed_downtime_vm_minutes") = fixed_downtime;
  bench_report.Series("adaptive_downtime_vm_minutes") = adaptive_downtime;
  bench_report.Series("fixed_exposure_days") = fixed_exposure;
  bench_report.Series("adaptive_exposure_days") = adaptive_exposure;
  bench_report.SetScalar("sample_policy_inplace_vms", sample_adaptive.policy_inplace_vms);
  bench_report.SetScalar("sample_policy_migrate_vms", sample_adaptive.policy_migrate_vms);
  bench_report.SetScalar("sample_policy_refused_vms", sample_adaptive.policy_refused_vms);
  bench_report.SetScalar("sample_refused_hosts", sample_adaptive.fleet_refused_hosts);
}

void Run(bool smoke) {
  bench::Banner("Operational simulation — a year of HyperTP in production",
                "Poisson disclosures at the 2013-2019 historical rate; 100-host fleet, "
                "1000 VMs; 4 h reaction time; patch windows from the dataset.");
  const int seeds = smoke ? 3 : 20;
  if (smoke) {
    bench::Row("(--smoke: %d seeded years per section)", seeds);
  }
  bench::BenchReport bench_report(smoke ? "operational_year_smoke" : "operational_year");
  RunFor(HypervisorKind::kXen, {HypervisorKind::kXen, HypervisorKind::kKvm},
         "Xen fleet, {Xen, KVM} repertoire", seeds, bench_report, "xen_two");
  RunFor(HypervisorKind::kXen,
         {HypervisorKind::kXen, HypervisorKind::kKvm, HypervisorKind::kBhyve},
         "Xen fleet, three-hypervisor repertoire", seeds, bench_report, "xen_three");
  RunFor(HypervisorKind::kKvm, {HypervisorKind::kXen, HypervisorKind::kKvm},
         "KVM fleet, {Xen, KVM} repertoire", seeds, bench_report, "kvm_two");
  FixedVsAdaptive(seeds, bench_report);
  bench_report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hypertp::Run(smoke);
  return 0;
}
