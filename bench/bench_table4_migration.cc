// Regenerates Table 4: downtime and total migration time for Xen -> Xen live
// migration vs MigrationTP (Xen -> KVM), 1 vCPU / 1 GB VM over 1 Gbps.

#include "bench/bench_util.h"
#include "src/kvm/kvm_host.h"
#include "src/migrate/migrate.h"
#include "src/xen/xenvisor.h"

namespace hypertp {
namespace {

MigrationResult MigrateOne(Hypervisor& dst) {
  Machine src_machine(MachineProfile::M1(), 1);
  XenVisor src(src_machine);
  auto id = src.CreateVm(VmConfig::Small("t4"));
  MigrationEngine engine(NetworkLink{1.0});
  auto result = engine.MigrateVm(src, *id, dst, MigrationConfig{});
  return result.ok() ? *result : MigrationResult{};
}

void Run() {
  bench::Banner("Table 4 — MigrationTP vs Xen live migration (1 vCPU / 1 GB, 1 Gbps)",
                "Same pre-copy engine; the destination's restore path makes the difference: "
                "xl/libxl (sequential, heavy) vs kvmtool (concurrent, light).");

  Machine xen_dst_machine(MachineProfile::M1(), 2);
  XenVisor xen_dst(xen_dst_machine);
  const MigrationResult xen_to_xen = MigrateOne(xen_dst);

  Machine kvm_dst_machine(MachineProfile::M1(), 3);
  KvmHost kvm_dst(kvm_dst_machine);
  const MigrationResult migration_tp = MigrateOne(kvm_dst);

  bench::Row("%-26s %16s %22s", "", "Xen -> Xen", "MigrationTP (Xen->KVM)");
  bench::Row("%-26s %14.2fms %20.2fms", "Downtime (measured)", bench::Ms(xen_to_xen.downtime),
             bench::Ms(migration_tp.downtime));
  bench::Row("%-26s %16s %22s", "Downtime (paper)", "133.59 ms", "4.96 ms");
  bench::Row("%-26s %15.2fs %21.2fs", "Migration time (measured)",
             bench::Sec(xen_to_xen.total_time), bench::Sec(migration_tp.total_time));
  bench::Row("%-26s %16s %22s", "Migration time (paper)", "9.564 s", "9.63 s");
  bench::Row("%-26s %16d %22d", "Pre-copy rounds", xen_to_xen.rounds, migration_tp.rounds);
  bench::Row("%-26s %15.2fx %22s", "Downtime ratio",
             bench::Ms(xen_to_xen.downtime) / bench::Ms(migration_tp.downtime),
             "27x (paper)");
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
