// Regenerates Fig. 8: migration downtime for MigrationTP (Xen -> KVM) vs the
// Xen -> Xen baseline, sweeping vCPUs, memory size and VM count. Expected
// shapes: downtime grows slightly with vCPUs (destination restore), is flat
// in memory, and the multi-VM case shows Xen's high variance (sequential
// receiver) vs MigrationTP's near-constant downtime.

#include "bench/bench_util.h"
#include "src/kvm/kvm_host.h"
#include "src/migrate/migrate.h"
#include "src/sim/stats.h"
#include "src/xen/xenvisor.h"

namespace hypertp {
namespace {

std::vector<MigrationResult> MigrateFleet(int vms, uint32_t vcpus, uint64_t mem_bytes,
                                          HypervisorKind dst_kind) {
  Machine src_machine(MachineProfile::M2(), 1);  // M2: room for 12 x VMs.
  XenVisor src(src_machine);
  std::vector<VmId> ids;
  for (int i = 0; i < vms; ++i) {
    VmConfig config = VmConfig::Small("f8-" + std::to_string(i));
    config.vcpus = vcpus;
    config.memory_bytes = mem_bytes;
    auto id = src.CreateVm(config);
    if (!id.ok()) {
      std::fprintf(stderr, "create failed: %s\n", id.error().ToString().c_str());
      return {};
    }
    ids.push_back(*id);
  }
  Machine dst_machine(MachineProfile::M2(), 2);
  MigrationEngine engine(NetworkLink{1.0});
  if (dst_kind == HypervisorKind::kKvm) {
    KvmHost dst(dst_machine);
    auto results = engine.MigrateMany(src, ids, dst, MigrationConfig{});
    return results.ok() ? results->successes() : std::vector<MigrationResult>{};
  }
  XenVisor dst(dst_machine);
  auto results = engine.MigrateMany(src, ids, dst, MigrationConfig{});
  return results.ok() ? results->successes() : std::vector<MigrationResult>{};
}

double SingleDowntimeMs(uint32_t vcpus, uint64_t mem, HypervisorKind dst) {
  auto results = MigrateFleet(1, vcpus, mem, dst);
  return results.empty() ? 0.0 : bench::Ms(results[0].downtime);
}

void Run() {
  bench::Banner("Fig. 8 — Migration downtime: MigrationTP (->KVM) vs Xen->Xen baseline",
                "1 Gbps link. Paper: HyperTP downtime well below Xen's; Xen multi-VM "
                "downtime has high variance from its sequential receiver [39].");
  bench::BenchReport report("fig8_migration_downtime");

  bench::Section("a) vCPU sweep (1 GB VM), downtime in ms");
  bench::Row("%-8s %14s %14s", "vCPUs", "Xen->Xen", "MigrationTP");
  for (uint32_t vcpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
    const double xen_ms = SingleDowntimeMs(vcpus, 1ull << 30, HypervisorKind::kXen);
    const double tp_ms = SingleDowntimeMs(vcpus, 1ull << 30, HypervisorKind::kKvm);
    bench::Row("%-8u %14.2f %14.2f", vcpus, xen_ms, tp_ms);
    report.AddSample("vcpu_sweep_xen_ms", xen_ms);
    report.AddSample("vcpu_sweep_tp_ms", tp_ms);
  }

  bench::Section("b) memory sweep (1 vCPU), downtime in ms");
  bench::Row("%-8s %14s %14s", "GiB", "Xen->Xen", "MigrationTP");
  for (uint64_t gib : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull}) {
    const double xen_ms = SingleDowntimeMs(1, gib << 30, HypervisorKind::kXen);
    const double tp_ms = SingleDowntimeMs(1, gib << 30, HypervisorKind::kKvm);
    bench::Row("%-8llu %14.2f %14.2f", static_cast<unsigned long long>(gib), xen_ms, tp_ms);
    report.AddSample("memory_sweep_xen_ms", xen_ms);
    report.AddSample("memory_sweep_tp_ms", tp_ms);
  }

  bench::Section("c) VM-count sweep (1 vCPU / 1 GB each), downtime distribution in ms");
  bench::Row("%-8s %-34s %-34s", "#VMs", "Xen->Xen (boxplot)", "MigrationTP (boxplot)");
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    SampleSet& xen_samples = report.Series("multivm_xen_ms_" + std::to_string(vms) + "vms");
    SampleSet& tp_samples = report.Series("multivm_tp_ms_" + std::to_string(vms) + "vms");
    for (const MigrationResult& r : MigrateFleet(vms, 1, 1ull << 30, HypervisorKind::kXen)) {
      xen_samples.Add(bench::Ms(r.downtime));
    }
    for (const MigrationResult& r : MigrateFleet(vms, 1, 1ull << 30, HypervisorKind::kKvm)) {
      tp_samples.Add(bench::Ms(r.downtime));
    }
    bench::Row("%-8d med=%7.1f [%7.1f, %7.1f]       med=%7.1f [%7.1f, %7.1f]", vms,
               xen_samples.Percentile(50), xen_samples.min(), xen_samples.max(),
               tp_samples.Percentile(50), tp_samples.min(), tp_samples.max());
  }

  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
