// ReHype-mode crash recovery under fault storms: a 10k-host upgrade campaign
// with seeded hypervisor crashes striking mid-traffic, each answered by an
// unplanned InPlaceTP recovery from the last PRAM image — or honestly lost
// when the crash tore the transplant ledger. Sections: VM survival and
// recovery latency for a recovering fleet vs a fixed (no-recovery) control
// arm, the exposure the storm adds back to the campaign curve, ledger-state
// sensitivity, and the thread-count byte-identity check the determinism
// contract demands.
//
// `--smoke` shrinks the fleet ~50x for sanitizer runs.

#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/campaign/campaign.h"

namespace hypertp {
namespace {

struct Scale {
  int racks = 8;
  int hosts_per_rack = 1250;  // 8 racks x 1250 = 10k hosts, 100k VMs.
  int parallel_per_shard = 50;
  double storm_rate_per_hour = 120000.0;  // DC-wide; ~33 strikes/s at peak.
};

// The campaign every section perturbs: one DC, 8 shards, an upgrade rollout
// long enough for the storm window to overlap in-flight waves.
CampaignConfig StormCampaign(const Scale& scale) {
  CampaignConfig config;
  CampaignDatacenter dc;
  dc.name = "dc0";
  dc.racks = scale.racks;
  dc.hosts_per_rack = scale.hosts_per_rack;
  dc.vms_per_host = 10;
  dc.crash_storm.rate_per_hour = scale.storm_rate_per_hour;
  dc.crash_storm.duration = Seconds(300);
  dc.crash_storm.start = Seconds(30);
  dc.crash_storm.recovery_time = Seconds(8);
  dc.crash_storm.pre_pause_fraction = 0.15;
  dc.crash_storm.mid_save_torn_fraction = 0.05;
  dc.crash_storm.stale_commit_fraction = 0.05;
  dc.crash_storm.scrubbed_fraction = 0.02;
  config.datacenters = {dc};
  config.shards = scale.racks;
  config.parallel_hosts_per_shard = scale.parallel_per_shard;
  config.per_host_transplant = Seconds(10);
  config.latency_jitter = 0.2;
  config.epoch = Seconds(5);
  config.seed = 2027;
  return config;
}

void SurvivalSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("VM survival — recovering fleet vs fixed (no-recovery) control arm");
  bench::Row("%-12s %9s %9s %9s %9s %10s %11s %9s", "arm", "crashes", "salvage", "live",
             "lost", "survival", "rec-p50", "rec-p99");
  for (const bool recover : {false, true}) {
    CampaignConfig config = StormCampaign(scale);
    config.datacenters[0].crash_storm.recover = recover;
    CampaignPlanner planner(config);
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      bench::Row("%s rejected: %s", recover ? "recovering" : "fixed",
                 run.error().ToString().c_str());
      continue;
    }
    const CampaignReport& report = *run;
    // Lost hosts take their VMs down with them; everything else survives.
    const double survival =
        report.vms > 0
            ? 1.0 - static_cast<double>(report.lost) * 10.0 / static_cast<double>(report.vms)
            : 1.0;
    const bool has_latency = !report.recovery_latency_seconds.empty();
    bench::Row("%-12s %9d %9d %9d %9d %9.4f %10.1fs %8.1fs",
               recover ? "recovering" : "fixed", report.crashes, report.crash_salvages,
               report.crash_live_recoveries, report.lost, survival,
               has_latency ? report.recovery_latency_seconds.Percentile(50) : 0.0,
               has_latency ? report.recovery_latency_seconds.Percentile(99) : 0.0);
    const std::string tag = recover ? "recovering" : "fixed";
    bench_report.SetScalar("crashes_" + tag, report.crashes);
    bench_report.SetScalar("lost_" + tag, report.lost);
    bench_report.SetScalar("vm_survival_" + tag, survival);
    if (has_latency) {
      bench_report.SetScalar("recovery_latency_p50_s", report.recovery_latency_seconds.Percentile(50));
      bench_report.SetScalar("recovery_latency_p99_s", report.recovery_latency_seconds.Percentile(99));
      bench_report.SetScalar("recoveries", static_cast<double>(report.recovery_latency_seconds.count()));
    }
  }
}

void ExposureSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("Crash-added exposure — storm vs storm-free campaign");
  bench::Row("%-12s %10s %12s %12s %10s", "arm", "makespan", "exp-vm-days", "crash-rb",
             "curve-pts");
  double baseline_exposure = 0.0;
  for (const bool storm : {false, true}) {
    CampaignConfig config = StormCampaign(scale);
    if (!storm) {
      config.datacenters[0].crash_storm = CrashStormConfig{};
    }
    CampaignPlanner planner(config);
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      bench::Row("%s rejected: %s", storm ? "storm" : "quiet", run.error().ToString().c_str());
      continue;
    }
    const CampaignReport& report = *run;
    if (!storm) {
      baseline_exposure = report.exposed_vm_days;
    }
    bench::Row("%-12s %9.1fs %12.2f %12d %10zu", storm ? "storm" : "quiet",
               bench::Sec(report.makespan), report.exposed_vm_days, report.crash_rollbacks,
               report.exposure_curve.size());
    const std::string tag = storm ? "storm" : "quiet";
    bench_report.SetScalar("exposed_vm_days_" + tag, report.exposed_vm_days);
    bench_report.SetScalar("makespan_s_" + tag, bench::Sec(report.makespan));
    if (storm) {
      bench_report.SetScalar("crash_rollbacks", report.crash_rollbacks);
      bench_report.SetScalar("crash_added_vm_days", report.exposed_vm_days - baseline_exposure);
      // Re-exposure must be visible on the curve: at least one rising step.
      bool rose = false;
      for (size_t i = 1; i < report.exposure_curve.size(); ++i) {
        rose |= report.exposure_curve[i].fraction > report.exposure_curve[i - 1].fraction;
      }
      bench_report.SetScalar("curve_rose", rose ? 1.0 : 0.0);
      bench::Row("  crash-added exposure: %.2f VM-days%s",
                 report.exposed_vm_days - baseline_exposure,
                 rose ? "  (re-exposure visible on curve)" : "");
    }
  }
}

void LedgerMixSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("Ledger-state sensitivity — what the crash left in PRAM decides the salvage");
  bench::Row("%-22s %9s %9s %9s %9s", "ledger mix", "crashes", "salvage", "live", "lost");
  struct Mix {
    const char* name;
    double pre_pause, torn, stale, scrubbed;
  };
  const Mix mixes[] = {
      {"all clean commits", 0.0, 0.0, 0.0, 0.0},
      {"25% pre-pause", 0.25, 0.0, 0.0, 0.0},
      {"25% torn frames", 0.0, 0.25, 0.0, 0.0},
      {"25% scrubbed", 0.0, 0.0, 0.0, 0.25},
  };
  for (const Mix& mix : mixes) {
    CampaignConfig config = StormCampaign(scale);
    CrashStormConfig& storm = config.datacenters[0].crash_storm;
    storm.pre_pause_fraction = mix.pre_pause;
    storm.mid_save_torn_fraction = mix.torn;
    storm.stale_commit_fraction = mix.stale;
    storm.scrubbed_fraction = mix.scrubbed;
    CampaignPlanner planner(config);
    Result<CampaignReport> run = planner.Run();
    if (!run.ok()) {
      bench::Row("%s rejected: %s", mix.name, run.error().ToString().c_str());
      continue;
    }
    bench::Row("%-22s %9d %9d %9d %9d", mix.name, run->crashes, run->crash_salvages,
               run->crash_live_recoveries, run->lost);
  }
  // One stable scalar for the regression dashboard: the clean-commit arm.
  CampaignConfig clean = StormCampaign(scale);
  CrashStormConfig& storm = clean.datacenters[0].crash_storm;
  storm.pre_pause_fraction = 0.0;
  storm.mid_save_torn_fraction = 0.0;
  storm.stale_commit_fraction = 0.0;
  storm.scrubbed_fraction = 0.0;
  Result<CampaignReport> run = CampaignPlanner(clean).Run();
  if (run.ok()) {
    bench_report.SetScalar("clean_ledger_lost", run->lost);
  }
}

void DeterminismSection(const Scale& scale, bench::BenchReport& bench_report) {
  bench::Section("Determinism — byte-identical reports across worker-thread counts");
  std::string json[3];
  const int threads[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    CampaignConfig config = StormCampaign(scale);
    config.real_threads = threads[i];
    Result<CampaignReport> run = CampaignPlanner(config).Run();
    if (!run.ok()) {
      bench::Row("threads=%d rejected: %s", threads[i], run.error().ToString().c_str());
      return;
    }
    json[i] = CampaignReportToJson(*run);
  }
  const bool identical = json[0] == json[1] && json[1] == json[2];
  bench::Row("threads {1,4,8}: %s (%zu bytes)",
             identical ? "byte-identical" : "DIVERGED!", json[0].size());
  bench_report.SetScalar("thread_count_identical", identical ? 1.0 : 0.0);
}

void Run(bool smoke) {
  bench::Banner(
      "Fault storms over an in-flight campaign — 10k hosts / 100k VMs, ReHype-mode salvage",
      "Poisson crash storm (300 s window) concurrent with an 8-shard upgrade campaign; "
      "unplanned recoveries compete with waves for worker slots. Seed 2027. Sections: "
      "survival vs a fixed fleet, crash-added exposure, ledger-state mix, thread-count "
      "byte-identity.");
  Scale scale;
  if (smoke) {
    scale.hosts_per_rack = 25;  // 200 hosts / 2k VMs: sanitizer-friendly.
    scale.parallel_per_shard = 5;
    scale.storm_rate_per_hour = 2400.0;
    bench::Row("(--smoke: 200-host fleet)");
  }
  bench::BenchReport bench_report(smoke ? "fault_storm_smoke" : "fault_storm");
  SurvivalSection(scale, bench_report);
  ExposureSection(scale, bench_report);
  LedgerMixSection(scale, bench_report);
  DeterminismSection(scale, bench_report);
  bench_report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hypertp::Run(smoke);
  return 0;
}
