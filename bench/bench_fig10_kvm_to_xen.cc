// Regenerates Fig. 10: InPlaceTP scalability for the KVM -> Xen direction.
// The headline difference from Fig. 7 is the reboot phase: the type-I target
// boots two kernels (Xen core + dom0), so total transplantation time reaches
// ~7.6 s on M1 and ~17.8 s on M2 (vs 2.15 s / 3.56 s for Xen -> KVM).

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"

namespace hypertp {
namespace {

TransplantReport RunOnce(const MachineProfile& profile, int vms, uint32_t vcpus,
                         uint64_t mem_bytes) {
  Machine machine(profile, 1);
  std::unique_ptr<Hypervisor> kvm = MakeHypervisor(HypervisorKind::kKvm, machine);
  for (int i = 0; i < vms; ++i) {
    VmConfig config = VmConfig::Small("f10-" + std::to_string(i));
    config.vcpus = vcpus;
    config.memory_bytes = mem_bytes;
    auto id = kvm->CreateVm(config);
    if (!id.ok()) {
      std::fprintf(stderr, "create failed: %s\n", id.error().ToString().c_str());
      return {};
    }
  }
  auto result = InPlaceTransplant::Run(std::move(kvm), HypervisorKind::kXen, InPlaceOptions{});
  if (!result.ok()) {
    std::fprintf(stderr, "transplant failed: %s\n", result.error().ToString().c_str());
    return {};
  }
  return result->report;
}

void Sweep(const MachineProfile& profile) {
  auto header = [] {
    bench::Row("%-10s %8s %8s %8s %8s %10s %8s", "x", "pram(s)", "transl", "reboot", "restore",
               "downtime", "total");
  };
  auto print = [](const std::string& x, const TransplantReport& r) {
    bench::Row("%-10s %8.2f %8.2f %8.2f %8.2f %10.2f %8.2f", x.c_str(),
               bench::Sec(r.phases.pram), bench::Sec(r.phases.translation),
               bench::Sec(r.phases.reboot), bench::Sec(r.phases.restoration),
               bench::Sec(r.downtime), bench::Sec(r.total_time));
  };

  bench::Section((profile.name + " a) vCPU sweep (1 VM, 1 GB)").c_str());
  header();
  for (uint32_t vcpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
    print(std::to_string(vcpus) + " vcpu", RunOnce(profile, 1, vcpus, 1ull << 30));
  }
  bench::Section((profile.name + " b) memory sweep (1 VM, 1 vCPU)").c_str());
  header();
  for (uint64_t gib : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull}) {
    print(std::to_string(gib) + " GiB", RunOnce(profile, 1, 1, gib << 30));
  }
  bench::Section((profile.name + " c) VM-count sweep (1 vCPU / 1 GB each)").c_str());
  header();
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    print(std::to_string(vms) + " VMs", RunOnce(profile, vms, 1, 1ull << 30));
  }
}

void Run() {
  bench::Banner("Fig. 10 — InPlaceTP scalability, KVM -> Xen",
                "Paper: total ~7.6 s on M1 and ~17.8 s on M2 (two-kernel boot dominates); "
                "still far under the 30 s maintenance bound Azure announces.");
  Sweep(MachineProfile::M1());
  Sweep(MachineProfile::M2());
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
