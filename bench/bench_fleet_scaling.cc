// Fleet control-plane scaling sweep: hosts x injected failure rate, through
// the event-driven FleetController (wave scheduling, retries with backoff).
// Prints makespan, retry volume and wave-latency percentiles — the numbers
// the closed-form FleetTransplantTime cannot produce: stragglers fatten the
// tail, failures strand hosts, and both grow with fleet size.

#include "bench/bench_util.h"
#include "src/fleet/fleet_controller.h"

namespace hypertp {
namespace {

void Run() {
  bench::Banner("Fleet scaling — wave-scheduled rollout vs injected failures",
                "10 s/host transplant, wave width hosts/10 (blast radius 10%), 20% latency "
                "jitter, 5 s backoff doubling per retry, up to 5 retries, seed 2026.");

  bench::BenchReport bench_report("fleet_scaling");
  bench::Row("%-8s %-9s %8s %8s %8s %8s %9s %9s %9s %9s", "hosts", "fail-rate", "waves",
             "retries", "stranded", "makespan", "wave-p50", "wave-p90", "wave-p99", "exp-h-d");
  for (int hosts : {100, 1000, 10000}) {
    for (double failure_rate : {0.0, 0.01, 0.05}) {
      FleetConfig config;
      config.hosts = hosts;
      config.parallel_hosts = hosts / 10;
      config.per_host_transplant = Seconds(10);
      config.latency_jitter = 0.2;
      config.failure_probability = failure_rate;
      config.max_retries = 5;
      config.retry_backoff = Seconds(5);
      config.trace_capacity = 1 << 17;
      config.seed = 2026;

      SimExecutor executor;
      FleetController controller(executor, config);
      const FleetRolloutReport& report = controller.Run();
      const SampleSet& waves = report.wave_latency_seconds;
      bench::Row("%-8d %-9.2f %8d %8d %8d %7.1fs %8.1fs %8.1fs %8.1fs %9.3f", hosts,
                 failure_rate, report.waves, report.retries, report.failed + report.untouched,
                 bench::Sec(report.makespan), waves.empty() ? 0.0 : waves.Percentile(50),
                 waves.empty() ? 0.0 : waves.Percentile(90),
                 waves.empty() ? 0.0 : waves.Percentile(99), report.exposed_host_days);

      char tag[48];
      std::snprintf(tag, sizeof(tag), "%dhosts_f%.2f", hosts, failure_rate);
      SampleSet& wave_series = bench_report.Series(std::string("wave_latency_s_") + tag);
      for (double sample : waves.samples()) {
        wave_series.Add(sample);
      }
      bench_report.SetScalar(std::string("makespan_s_") + tag, bench::Sec(report.makespan));
      bench_report.SetScalar(std::string("retries_") + tag, report.retries);
      bench_report.SetScalar(std::string("exposed_host_days_") + tag, report.exposed_host_days);
    }
  }
  bench_report.WriteJsonArtifact();
  bench::Row("(closed form for every row: 10 waves x 10 s = 100.0 s, zero stragglers — "
             "compare wave-p99)");
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
