// Quantifies Fig. 1: exposure under traditional patching vs hypervisor
// transplant, for the CVEs the paper names and for the whole dataset.

#include "bench/bench_util.h"
#include "src/vulndb/window_model.h"

namespace hypertp {
namespace {

void Run() {
  bench::Banner("Fig. 1 quantified — vulnerability-window exposure, patch-wait vs HyperTP",
                "Fleet: 100 hosts, 10 s per-host InPlaceTP, 10 hosts in parallel; patch "
                "policy: 7 days from release to fleet-wide application.");

  const std::vector<HypervisorKind> pool = {HypervisorKind::kXen, HypervisorKind::kKvm,
                                            HypervisorKind::kBhyve};
  PatchPolicy policy;
  FleetProfile fleet;
  bench::Row("fleet transplant completes in %s",
             FormatDuration(FleetTransplantTime(fleet)).c_str());

  bench::Section("named CVEs");
  bench::Row("%-16s %10s %16s %16s %12s", "CVE", "window(d)", "patch-wait(d)", "HyperTP(d)",
             "reduction");
  for (const char* id :
       {"CVE-2016-6258", "CVE-2013-0311", "CVE-2017-12188", "CVE-2015-3456"}) {
    const CveRecord* cve = nullptr;
    for (const CveRecord& r : VulnDatabase()) {
      if (r.id == id) {
        cve = &r;
      }
    }
    if (cve == nullptr) {
      continue;
    }
    const HypervisorKind current =
        cve->affects_xen ? HypervisorKind::kXen : HypervisorKind::kKvm;
    const ExposureComparison c = CompareExposure(*cve, current, pool, policy, fleet);
    if (c.transplant_applicable) {
      bench::Row("%-16s %10d %16.1f %16.4f %11.0fx", cve->id.c_str(), cve->window_days,
                 c.traditional_exposure_days, c.hypertp_exposure_days, c.reduction_factor);
    } else {
      bench::Row("%-16s %10d %16.1f %16s %12s", cve->id.c_str(), cve->window_days,
                 c.traditional_exposure_days, "(no safe target)", "1x");
    }
  }

  bench::Section("fleet-wide annual savings (critical flaws, 2013-2019 average)");
  for (HypervisorKind current : pool) {
    const double saved =
        AnnualExposureReduction(VulnDatabase(), current, pool, policy, fleet);
    bench::Row("running %-6s fleet: %8.0f exposure-days avoided per year",
               std::string(HypervisorKindName(current)).c_str(), saved);
  }
  bench::Row("(the paper's argument in §1: windows of days-to-months shrink to the "
             "minutes a fleet transplant takes, whenever a safe alternate exists)");
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
