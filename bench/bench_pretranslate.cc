// Speculative pre-translation ablation: sweep the fraction of guests that
// dirty their platform state between pre-translation and the pause, crossed
// with the VM count. Clean guests adopt their cached UISR blob for the
// generation-check cost; dirty guests re-extract and patch only the sections
// that changed, so the pause-window translation share scales with the dirty
// fraction instead of the fleet size.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"

namespace hypertp {
namespace {

TransplantReport RunOnce(int vms, double dirty_fraction, bool pre_translate) {
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  for (int i = 0; i < vms; ++i) {
    // 512 MiB guests so the 16-VM sweep fits inside M1's 16 GiB alongside
    // the kernel image and the PRAM/UISR frames.
    VmConfig config = VmConfig::Small("pre-" + std::to_string(i));
    config.memory_bytes = 512ull << 20;
    auto id = xen->CreateVm(config);
    if (!id.ok()) {
      std::fprintf(stderr, "create failed: %s\n", id.error().ToString().c_str());
      return {};
    }
  }

  InPlaceOptions options;
  options.pre_translate = pre_translate;
  // Dirty the first floor(dirty_fraction * vms) guests after pre-translation:
  // a workload step moves tsc/rip/rax, which lands in the UISR vcpu sections
  // and invalidates those VMs' cached blobs.
  const int dirty = static_cast<int>(dirty_fraction * vms);
  options.concurrent_activity = [dirty](Hypervisor& hv) {
    std::vector<VmId> ids = hv.ListVms();
    for (int i = 0; i < dirty && i < static_cast<int>(ids.size()); ++i) {
      (void)hv.InjectGuestEvent(ids[i], Hypervisor::GuestEventKind::kWorkloadStep);
    }
  };

  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, options);
  if (!result.ok()) {
    std::fprintf(stderr, "transplant failed: %s\n", result.error().ToString().c_str());
    return {};
  }
  return result->report;
}

void Run() {
  bench::Banner("Pre-translation ablation — dirty fraction x VM count (M1, Xen -> KVM)",
                "Pause-window translation vs the share of guests dirtied after the "
                "speculative pass; 'legacy' is pre_translate off (everything translated "
                "inside the pause window).");
  bench::BenchReport report("pretranslate");

  for (int vms : {4, 8, 16}) {
    bench::Section((std::to_string(vms) + " VMs (1 vCPU / 512 MiB each)").c_str());
    bench::Row("%-12s %10s %12s %10s %8s %8s %10s", "dirty", "transl(s)", "pre_tr(s)",
               "downtime", "hits", "invalid", "total(s)");

    const TransplantReport legacy = RunOnce(vms, 0.0, false);
    bench::Row("%-12s %10.3f %12.3f %10.3f %8s %8s %10.3f", "legacy",
               bench::Sec(legacy.phases.translation), bench::Sec(legacy.phases.pre_translation),
               bench::Sec(legacy.downtime), "-", "-", bench::Sec(legacy.total_time));
    report.SetScalar("translation_s_legacy_" + std::to_string(vms) + "vms",
                     bench::Sec(legacy.phases.translation));

    for (double fraction : {0.0, 0.25, 0.5, 1.0}) {
      const TransplantReport r = RunOnce(vms, fraction, true);
      const std::string label = std::to_string(static_cast<int>(fraction * 100)) + "%";
      bench::Row("%-12s %10.3f %12.3f %10.3f %8lld %8lld %10.3f", label.c_str(),
                 bench::Sec(r.phases.translation), bench::Sec(r.phases.pre_translation),
                 bench::Sec(r.downtime), static_cast<long long>(r.pretranslate_hits),
                 static_cast<long long>(r.pretranslate_invalidations), bench::Sec(r.total_time));
      const std::string key = std::to_string(vms) + "vms_dirty" +
                              std::to_string(static_cast<int>(fraction * 100));
      report.SetScalar("translation_s_" + key, bench::Sec(r.phases.translation));
      report.SetScalar("downtime_s_" + key, bench::Sec(r.downtime));
      report.AddSample("pretranslate_hits", static_cast<double>(r.pretranslate_hits));
      report.AddSample("pretranslate_invalidations",
                       static_cast<double>(r.pretranslate_invalidations));
    }
  }

  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
