// Regenerates Fig. 12: MySQL (Sysbench) latency and QPS under InPlaceTP and
// MigrationTP. Paper shapes: InPlaceTP causes a ~9 s interruption;
// MigrationTP raises latency ~252% and cuts QPS ~68% during the ~76 s copy.

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/core/migration_tp.h"
#include "src/workload/throughput.h"

namespace hypertp {
namespace {

VmConfig MysqlVm() {
  VmConfig config = VmConfig::Small("mysql");
  config.vcpus = 2;
  config.memory_bytes = 8ull << 30;
  return config;
}

void Summarize(const TimeSeries& qps, const TimeSeries& lat, SimTime t_before_end,
               SimTime t_during_start, SimTime t_during_end) {
  const double qps_before = qps.MeanInWindow(Seconds(10), t_before_end);
  const double qps_during = qps.MeanInWindow(t_during_start, t_during_end);
  const double lat_before = lat.MeanInWindow(Seconds(10), t_before_end);
  const double lat_during = lat.MeanInWindow(t_during_start, t_during_end);
  bench::Row("QPS   before %7.0f   during %7.0f   (%+.0f%%)", qps_before, qps_during,
             (qps_during / qps_before - 1.0) * 100.0);
  if (lat_during > 0) {
    bench::Row("lat   before %6.1fms  during %6.1fms  (%+.0f%%)", lat_before, lat_during,
               (lat_during / lat_before - 1.0) * 100.0);
  } else {
    bench::Row("lat   before %6.1fms  during   (paused: no completed requests)", lat_before);
  }
}

void RunInPlace() {
  bench::Section("InPlaceTP (trigger at t=50 s)");
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  auto id = xen->CreateVm(MysqlVm());
  if (!id.ok()) {
    return;
  }
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!result.ok()) {
    return;
  }
  auto schedule = InterferenceSchedule::ForInPlace(result->report, Seconds(50), true);
  Rng rng(21);
  Rng rng2(22);
  TimeSeries qps = GenerateThroughput(ThroughputModel::Mysql(), Seconds(150), Seconds(1),
                                      schedule, true, rng, "mysql-qps");
  TimeSeries lat = GenerateLatency(ThroughputModel::Mysql(), 7.0, Seconds(150), Seconds(1),
                                   schedule, true, rng2, "mysql-lat");
  bench::Row("service interruption: %.1f s (paper: ~9 s)",
             bench::Sec(qps.LongestGapBelow(10.0)));
  Summarize(qps, lat, Seconds(45), Seconds(70), Seconds(140));
}

void RunMigration() {
  bench::Section("MigrationTP (trigger at t=46 s)");
  Machine src_machine(MachineProfile::M1(), 2);
  Machine dst_machine(MachineProfile::M1(), 3);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, src_machine);
  std::unique_ptr<Hypervisor> kvm = MakeHypervisor(HypervisorKind::kKvm, dst_machine);
  auto id = xen->CreateVm(MysqlVm());
  if (!id.ok()) {
    return;
  }
  MigrationConfig config;
  config.dirty_pages_per_sec = 6000.0;  // OLTP dirties buffer-pool pages.
  auto result = MigrationTransplant::Run(*xen, {*id}, *kvm, NetworkLink{1.0}, config);
  if (!result.ok()) {
    return;
  }
  const MigrationResult& m = result->migrations[0];
  // Fig. 12: latency x3.52 / QPS x0.32 during the copy.
  auto schedule = InterferenceSchedule::ForMigration(m, Seconds(46), 0.32);
  Rng rng(23);
  Rng rng2(24);
  TimeSeries qps = GenerateThroughput(ThroughputModel::Mysql(), Seconds(180), Seconds(1),
                                      schedule, true, rng, "mysql-qps-mig");
  TimeSeries lat = GenerateLatency(ThroughputModel::Mysql(), 7.0, Seconds(180), Seconds(1),
                                   schedule, true, rng2, "mysql-lat-mig");
  const SimTime copy_end = Seconds(46) + (m.total_time - m.downtime);
  bench::Row("migration lasts %.1f s (paper: ~76 s), downtime %.2f ms", bench::Sec(m.total_time),
             bench::Ms(m.downtime));
  Summarize(qps, lat, Seconds(45), Seconds(50), copy_end);
  bench::Row("(paper: +252%% latency, -68%% QPS during the migration window)");
}

void Run() {
  bench::Banner("Fig. 12 — MySQL/Sysbench under InPlaceTP and MigrationTP (2 vCPU / 8 GB)",
                "Request latency and queries-per-second around the transplant event.");
  RunInPlace();
  RunMigration();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
