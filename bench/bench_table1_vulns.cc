// Regenerates Table 1 (vulnerabilities per year in Xen and KVM) and the
// §2.1/§2.2 analysis: component shares and vulnerability-window statistics.

#include "bench/bench_util.h"
#include "src/vulndb/vulndb.h"

namespace hypertp {
namespace {

void Run() {
  bench::Banner("Table 1 — Critical and medium vulnerabilities per year (2013-2019)",
                "Source: embedded NVD-derived dataset (src/vulndb). Counts match the paper's "
                "per-year rows exactly.");

  const VulnTable table = CountByYear(VulnDatabase());
  bench::Row("%-6s %12s %12s %12s %12s %12s %12s", "Year", "Xen crit", "Xen med", "KVM crit",
             "KVM med", "Common crit", "Common med");
  for (const auto& [year, row] : table.by_year) {
    bench::Row("%-6d %12d %12d %12d %12d %12d %12d", year, row.xen_critical, row.xen_medium,
               row.kvm_critical, row.kvm_medium, row.common_critical, row.common_medium);
  }
  bench::Row("%-6s %12d %12d %12d %12d %12d %12d", "Total", table.totals.xen_critical,
             table.totals.xen_medium, table.totals.kvm_critical, table.totals.kvm_medium,
             table.totals.common_critical, table.totals.common_medium);
  bench::Row("(note: the paper's printed Xen-medium total, 136, disagrees with its own "
             "column sum of 171; we reproduce the per-year data)");

  bench::Section("Critical-vulnerability component shares (paper §2.1)");
  for (HypervisorKind kind : {HypervisorKind::kXen, HypervisorKind::kKvm}) {
    bench::Row("%s:", std::string(HypervisorKindName(kind)).c_str());
    for (const auto& [component, share] : CriticalComponentShares(VulnDatabase(), kind)) {
      bench::Row("  %-22s %5.1f%%", std::string(VulnComponentName(component)).c_str(),
                 share * 100.0);
    }
  }
  bench::Row("paper: Xen 38.4%% PV, 28.2%% resource, 15.3%% hardware, 7.5%% toolstack, "
             "10.2%% QEMU; KVM 27%% ioctl, 36%% hardware, 36%% QEMU, 9%% resource");

  bench::Section("KVM vulnerability windows (paper §2.2)");
  const WindowStats stats = WindowStatsFor(VulnDatabase(), HypervisorKind::kKvm);
  bench::Row("%-36s %10s %10s", "metric", "measured", "paper");
  bench::Row("%-36s %10d %10s", "samples with known window", stats.samples, "24");
  bench::Row("%-36s %10.1f %10s", "mean window (days)", stats.mean_days, "71");
  bench::Row("%-36s %9.1f%% %10s", "fraction > 60 days", stats.fraction_over_60_days * 100.0,
             "60%");
  bench::Row("%-36s %10d %10s", "max window (days, CVE-2017-12188)", stats.max_days, "180");
  bench::Row("%-36s %10d %10s", "min window (days, CVE-2013-0311)", stats.min_days, "8");

  bench::Section("Transplant policy demonstration (paper §1)");
  const CveRecord* xsa = nullptr;
  const CveRecord* venom = nullptr;
  for (const CveRecord& r : VulnDatabase()) {
    if (r.id == "CVE-2016-6258") {
      xsa = &r;
    }
    if (r.id == "CVE-2015-3456") {
      venom = &r;
    }
  }
  auto d1 = DecideTransplant(HypervisorKind::kXen, {{xsa}},
                             {HypervisorKind::kXen, HypervisorKind::kKvm});
  bench::Row("CVE-2016-6258 (Xen critical): transplant=%s -> %s", d1.transplant_recommended ? "yes" : "no",
             d1.rationale.c_str());
  auto d2 = DecideTransplant(HypervisorKind::kXen, {{venom}},
                             {HypervisorKind::kXen, HypervisorKind::kKvm});
  bench::Row("CVE-2015-3456 (VENOM, common): transplant=%s -> %s",
             d2.transplant_recommended ? "yes" : "no", d2.rationale.c_str());
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
