// Conversion-pipeline scaling: VM count x worker count.
//
// Two views of the same stage work, matching the worker pool's two counts:
//  - charged time: the deterministic LPT schedule makespan over the pipeline
//    stage cost models (what InPlaceTransplant charges its translation and
//    restoration phases) — exact, hardware-independent;
//  - wall-clock: real execution of the pure UISR encode+decode batch across
//    N OS threads (what HYPERTP_PARALLEL buys on a real host) — measured
//    with std::chrono, so it depends on the machine running the bench.
//
// Writes BENCH_pipeline_scaling.json. The charged series are deterministic;
// the wall-clock series vary with the host (single-core CI boxes won't show
// thread speedup, many-core hosts should improve monotonically 1 -> 4).

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/pipeline/conversion.h"
#include "src/sim/worker_pool.h"
#include "src/uisr/codec.h"

namespace hypertp {
namespace {

constexpr int kHostVms = 32;           // The ">= 32-VM host" of the scaling claim.
constexpr int kWallClockReps = 12;     // Per worker count; best-of smooths noise.

// Extracted states for `count` paused guests (4 vCPUs each so the encode has
// real per-VM weight).
std::vector<UisrVm> ExtractStates(int count) {
  Machine machine(MachineProfile::M2(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  std::vector<UisrVm> states;
  states.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    VmConfig config = VmConfig::Small("scale-" + std::to_string(i));
    config.vcpus = 4;
    config.memory_bytes = 256ull << 20;  // Keep 32+ guests inside M2's RAM.
    auto id = xen->CreateVm(config);
    if (!id.ok()) {
      std::fprintf(stderr, "create failed: %s\n", id.error().ToString().c_str());
      return states;
    }
    (void)xen->WriteGuestPage(*id, 3, 0x1234 + static_cast<uint64_t>(i));
    (void)xen->PrepareVmForTransplant(*id);
    (void)xen->PauseVm(*id);
    FixupLog log;
    auto uisr = xen->SaveVmToUisr(*id, &log);
    if (!uisr.ok()) {
      std::fprintf(stderr, "extract failed: %s\n", uisr.error().ToString().c_str());
      return states;
    }
    states.push_back(std::move(*uisr));
  }
  return states;
}

double EncodeDecodeWallMs(const std::vector<UisrVm>& states, int threads) {
  using Clock = std::chrono::steady_clock;
  double best_ms = 0.0;
  for (int rep = 0; rep < kWallClockReps; ++rep) {
    const auto start = Clock::now();
    auto blobs = pipeline::EncodeVmStates(states, threads);
    auto decoded = pipeline::DecodeVmStates(blobs, threads);
    const auto end = Clock::now();
    for (const auto& d : decoded) {
      if (!d.ok()) {
        std::fprintf(stderr, "decode failed: %s\n", d.error().ToString().c_str());
        return 0.0;
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(end - start).count();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;  // Best-of: the least-disturbed run of the same pure work.
    }
  }
  return best_ms;
}

void Run() {
  bench::Banner("Pipeline scaling — conversion stages, VM count x workers",
                "Charged LPT makespans (deterministic) and real encode+decode "
                "wall-clock across OS threads on this host.");
  bench::BenchReport report("pipeline_scaling");
  const HostCostProfile& costs = MachineProfile::M2().costs;

  bench::Section("charged schedule makespan (translate+restore, ms)");
  bench::Row("%-8s %10s %10s %10s %10s", "vms", "w=1", "w=2", "w=4", "w=8");
  for (int vms : {8, 16, 32, 64}) {
    std::vector<SimDuration> stage_costs;
    stage_costs.reserve(static_cast<size_t>(vms));
    for (int i = 0; i < vms; ++i) {
      stage_costs.push_back(
          pipeline::TranslateStageCost(costs, 4, 256ull << 20) +
          pipeline::RestoreStageCost(costs, HypervisorKind::kKvm, 4, 256ull << 20));
    }
    double ms[4] = {0, 0, 0, 0};
    const int worker_counts[4] = {1, 2, 4, 8};
    for (int w = 0; w < 4; ++w) {
      const WorkSchedule schedule = ScheduleWork(stage_costs, worker_counts[w]);
      ms[w] = bench::Ms(schedule.makespan);
      report.AddSample("charged_makespan_ms_w" + std::to_string(worker_counts[w]), ms[w]);
    }
    bench::Row("%-8d %10.1f %10.1f %10.1f %10.1f", vms, ms[0], ms[1], ms[2], ms[3]);
  }

  bench::Section("encode+decode wall-clock (32 VMs, best-of reps, ms)");
  const std::vector<UisrVm> states = ExtractStates(kHostVms);
  report.SetScalar("host_vms", static_cast<double>(states.size()));
  uint64_t total_bytes = 0;
  for (const auto& s : states) {
    total_bytes += EncodedUisrSize(s);
  }
  report.SetScalar("uisr_total_bytes", static_cast<double>(total_bytes));
  bench::Row("%-8s %12s", "threads", "wall(ms)");
  for (int threads : {1, 2, 4, 8}) {
    const double wall_ms = EncodeDecodeWallMs(states, threads);
    report.AddSample("encode_decode_wall_ms_t" + std::to_string(threads), wall_ms);
    bench::Row("%-8d %12.3f", threads, wall_ms);
  }

  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
