// Regenerates Fig. 13: cluster upgrade with varying shares of
// InPlaceTP-compatible VMs — (a) number of migrations, (b) total-time gain.
// Paper: 154 migrations at 0%; 109 (-17% time) at 20%; 73% fewer migrations
// and -68% time at 60%; 25 migrations and ~-80% time at 80%.

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"

namespace hypertp {
namespace {

void Run() {
  bench::Banner("Fig. 13 — Cluster upgrade vs InPlaceTP-compatible share",
                "10 hosts x 10 VMs (1 vCPU / 4 GB), 10 Gbps fabric, BtrPlace-like planner "
                "with hosts offlined two at a time.");

  struct PaperRef {
    int percent;
    const char* migrations;
    const char* gain;
  };
  const PaperRef refs[] = {
      {0, "154", "0%"},   {20, "109", "17%"}, {40, "~80", "-"},
      {60, "~42", "68%"}, {80, "25", "~80%"},
  };

  SimDuration baseline_time = 0;
  bench::Row("%-10s %12s %14s %12s %14s %12s", "compat%", "migrations", "paper-migr",
             "total time", "time gain", "paper-gain");
  for (const PaperRef& ref : refs) {
    ClusterModel cluster = ClusterModel::PaperCluster(ref.percent / 100.0);
    auto plan = PlanClusterUpgrade(cluster, 2);
    if (!plan.ok()) {
      bench::Row("%3d%%: planning failed: %s", ref.percent, plan.error().ToString().c_str());
      continue;
    }
    auto stats = ExecuteClusterUpgrade(cluster, *plan, ClusterExecutionParams{});
    if (!stats.ok()) {
      bench::Row("%3d%%: execution failed: %s", ref.percent, stats.error().ToString().c_str());
      continue;
    }
    if (ref.percent == 0) {
      baseline_time = stats->total_time;
    }
    const double gain =
        baseline_time > 0
            ? (1.0 - static_cast<double>(stats->total_time) / static_cast<double>(baseline_time)) *
                  100.0
            : 0.0;
    bench::Row("%-10d %12d %14s %11.1fs %13.1f%% %12s", ref.percent, stats->migrations,
               ref.migrations, bench::Sec(stats->total_time), gain, ref.gain);
  }
  bench::Row("(paper end-to-end anchors: 80%% compatible = 3 min 54 s vs up to 19 min "
             "for the all-migration plan)");
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
