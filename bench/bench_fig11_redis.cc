// Regenerates Fig. 11: Redis QPS timeline under InPlaceTP (left) and
// MigrationTP (right). VM: 2 vCPU / 8 GB on M1, transplant triggered
// mid-run. Paper shapes: InPlaceTP shows a ~9 s service gap (network
// re-init included) then ~37% higher QPS on KVM; MigrationTP shows the
// classic pre-copy degradation (~78 s) with negligible downtime.

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/core/migration_tp.h"
#include "src/workload/throughput.h"

namespace hypertp {
namespace {

VmConfig RedisVm() {
  VmConfig config = VmConfig::Small("redis");
  config.vcpus = 2;
  config.memory_bytes = 8ull << 30;
  return config;
}

void PrintSeries(const TimeSeries& series, SimDuration step, SimDuration window) {
  // Coarse timeline: mean QPS per `window`, rendered as columns.
  for (SimTime t = 0; t + window <= series.points().back().time; t += window) {
    const double mean = series.MeanInWindow(t, t + window);
    const int bars = static_cast<int>(mean / 2500.0);
    std::string bar(static_cast<size_t>(std::max(bars, 0)), '#');
    bench::Row("t=%5.0fs %8.0f qps %s", bench::Sec(t), mean, bar.c_str());
  }
  (void)step;
}

void RunInPlace() {
  bench::Section("InPlaceTP (trigger at t=50 s)");
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  auto id = xen->CreateVm(RedisVm());
  if (!id.ok()) {
    return;
  }
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!result.ok()) {
    return;
  }
  // Redis serves network clients: the NIC re-init gap is part of its outage.
  auto schedule =
      InterferenceSchedule::ForInPlace(result->report, Seconds(50), /*network_sensitive=*/true);
  Rng rng(11);
  TimeSeries series = GenerateThroughput(ThroughputModel::Redis(), Seconds(200), Seconds(1),
                                         schedule, true, rng, "redis-inplace");
  PrintSeries(series, Seconds(1), Seconds(10));
  const double before = series.MeanInWindow(Seconds(10), Seconds(45));
  const double after = series.MeanInWindow(Seconds(80), Seconds(190));
  bench::Row("steady QPS before %.0f, after %.0f (+%.0f%%; paper: +37%%)", before, after,
             (after / before - 1.0) * 100.0);
  bench::Row("service gap: %.1f s (paper: ~9 s including network re-init)",
             bench::Sec(series.LongestGapBelow(100.0)));
}

void RunMigration() {
  bench::Section("MigrationTP (trigger at t=46 s)");
  Machine src_machine(MachineProfile::M1(), 2);
  Machine dst_machine(MachineProfile::M1(), 3);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, src_machine);
  std::unique_ptr<Hypervisor> kvm = MakeHypervisor(HypervisorKind::kKvm, dst_machine);
  auto id = xen->CreateVm(RedisVm());
  if (!id.ok()) {
    return;
  }
  MigrationConfig config;
  config.dirty_pages_per_sec = 8000.0;  // Redis writes keys continuously.
  auto result = MigrationTransplant::Run(*xen, {*id}, *kvm, NetworkLink{1.0}, config);
  if (!result.ok()) {
    return;
  }
  auto schedule = InterferenceSchedule::ForMigration(result->migrations[0], Seconds(46), 0.55);
  Rng rng(12);
  TimeSeries series = GenerateThroughput(ThroughputModel::Redis(), Seconds(250), Seconds(1),
                                         schedule, true, rng, "redis-migration");
  PrintSeries(series, Seconds(1), Seconds(10));
  const SimDuration precopy = result->migrations[0].total_time - result->migrations[0].downtime;
  bench::Row("pre-copy window %.1f s (paper: ~78 s), downtime %.2f ms (negligible)",
             bench::Sec(precopy), bench::Ms(result->migrations[0].downtime));
}

void Run() {
  bench::Banner("Fig. 11 — Redis under InPlaceTP and MigrationTP (2 vCPU / 8 GB, M1)",
                "redis-benchmark QPS, 1 s sampling; '#' columns are 2.5 kQPS each.");
  RunInPlace();
  RunMigration();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
