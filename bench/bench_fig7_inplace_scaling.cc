// Regenerates Fig. 7: InPlaceTP (Xen -> KVM) scalability on M1 and M2 while
// sweeping (a/d) vCPU count, (b/e) memory size, (c/f) number of VMs.
// Expected shapes (paper §5.2.2):
//   - vCPUs: flat (no phase depends on vCPU count materially);
//   - memory: PRAM and Reboot (early-boot parse) grow, Restoration flat;
//   - #VMs: PRAM grows faster on M1 than M2 (fewer cores to parallelize).

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"

namespace hypertp {
namespace {

TransplantReport RunOnce(const MachineProfile& profile, int vms, uint32_t vcpus,
                         uint64_t mem_bytes) {
  Machine machine(profile, 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  for (int i = 0; i < vms; ++i) {
    VmConfig config = VmConfig::Small("sweep-" + std::to_string(i));
    config.vcpus = vcpus;
    config.memory_bytes = mem_bytes;
    auto id = xen->CreateVm(config);
    if (!id.ok()) {
      std::fprintf(stderr, "create failed: %s\n", id.error().ToString().c_str());
      return {};
    }
  }
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!result.ok()) {
    std::fprintf(stderr, "transplant failed: %s\n", result.error().ToString().c_str());
    return {};
  }
  return result->report;
}

void PrintHeader() {
  bench::Row("%-10s %8s %8s %8s %8s %10s %8s", "x", "pram(s)", "transl", "reboot", "restore",
             "downtime", "total");
}

void PrintRow(const std::string& x, const TransplantReport& r) {
  bench::Row("%-10s %8.2f %8.2f %8.2f %8.2f %10.2f %8.2f", x.c_str(), bench::Sec(r.phases.pram),
             bench::Sec(r.phases.translation), bench::Sec(r.phases.reboot),
             bench::Sec(r.phases.restoration), bench::Sec(r.downtime), bench::Sec(r.total_time));
}

void Sweep(const MachineProfile& profile) {
  bench::Section((profile.name + " a) vCPU sweep (1 VM, 1 GB)").c_str());
  PrintHeader();
  for (uint32_t vcpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
    PrintRow(std::to_string(vcpus) + " vcpu", RunOnce(profile, 1, vcpus, 1ull << 30));
  }

  bench::Section((profile.name + " b) memory sweep (1 VM, 1 vCPU)").c_str());
  PrintHeader();
  for (uint64_t gib : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull}) {
    PrintRow(std::to_string(gib) + " GiB", RunOnce(profile, 1, 1, gib << 30));
  }

  bench::Section((profile.name + " c) VM-count sweep (1 vCPU / 1 GB each)").c_str());
  PrintHeader();
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    PrintRow(std::to_string(vms) + " VMs", RunOnce(profile, vms, 1, 1ull << 30));
  }
}

void Run() {
  bench::Banner("Fig. 7 — InPlaceTP scalability, Xen -> KVM",
                "Paper reference: downtime stays within 1.7-3.6 s on M1 and 2.94-4.28 s on "
                "M2 across all sweeps; reboot grows 1.55 -> ~2.46 s with memory on M1.");
  Sweep(MachineProfile::M1());
  Sweep(MachineProfile::M2());
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
