// Regenerates Fig. 7: InPlaceTP (Xen -> KVM) scalability on M1 and M2 while
// sweeping (a/d) vCPU count, (b/e) memory size, (c/f) number of VMs.
// Expected shapes (paper §5.2.2):
//   - vCPUs: flat (no phase depends on vCPU count materially);
//   - memory: PRAM and Reboot (early-boot parse) grow, Restoration flat;
//   - #VMs: PRAM grows faster on M1 than M2 (fewer cores to parallelize).

#include <memory>

#include "bench/bench_util.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"

namespace hypertp {
namespace {

TransplantReport RunOnce(const MachineProfile& profile, int vms, uint32_t vcpus,
                         uint64_t mem_bytes, bool pre_translate = true) {
  Machine machine(profile, 1);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  for (int i = 0; i < vms; ++i) {
    VmConfig config = VmConfig::Small("sweep-" + std::to_string(i));
    config.vcpus = vcpus;
    config.memory_bytes = mem_bytes;
    auto id = xen->CreateVm(config);
    if (!id.ok()) {
      std::fprintf(stderr, "create failed: %s\n", id.error().ToString().c_str());
      return {};
    }
  }
  InPlaceOptions options;
  options.pre_translate = pre_translate;
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, options);
  if (!result.ok()) {
    std::fprintf(stderr, "transplant failed: %s\n", result.error().ToString().c_str());
    return {};
  }
  return result->report;
}

void PrintHeader() {
  bench::Row("%-10s %8s %8s %8s %8s %10s %8s", "x", "pram(s)", "transl", "reboot", "restore",
             "downtime", "total");
}

void PrintRow(const std::string& x, const TransplantReport& r) {
  bench::Row("%-10s %8.2f %8.2f %8.2f %8.2f %10.2f %8.2f", x.c_str(), bench::Sec(r.phases.pram),
             bench::Sec(r.phases.translation), bench::Sec(r.phases.reboot),
             bench::Sec(r.phases.restoration), bench::Sec(r.downtime), bench::Sec(r.total_time));
}

void Sweep(const MachineProfile& profile, bench::BenchReport& report) {
  bench::Section((profile.name + " a) vCPU sweep (1 VM, 1 GB)").c_str());
  PrintHeader();
  for (uint32_t vcpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
    PrintRow(std::to_string(vcpus) + " vcpu", RunOnce(profile, 1, vcpus, 1ull << 30));
  }

  bench::Section((profile.name + " b) memory sweep (1 VM, 1 vCPU)").c_str());
  PrintHeader();
  for (uint64_t gib : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull}) {
    PrintRow(std::to_string(gib) + " GiB", RunOnce(profile, 1, 1, gib << 30));
  }

  bench::Section((profile.name + " c) VM-count sweep (1 vCPU / 1 GB each)").c_str());
  PrintHeader();
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    const TransplantReport r = RunOnce(profile, vms, 1, 1ull << 30);
    PrintRow(std::to_string(vms) + " VMs", r);
    report.AddSample("downtime_s_" + profile.name, bench::Sec(r.downtime));
    report.AddSample("total_s_" + profile.name, bench::Sec(r.total_time));
  }
}

// Speculative pre-translation moves the Extract -> UisrEncode work out of the
// pause window: with idle guests every VM's cached blob is adopted at pause
// time for the generation-check cost, so the pause-window translation share
// collapses while total work is unchanged.
void PretranslateComparison(bench::BenchReport& report) {
  // 512 MiB guests so 16 of them (plus kernel image + PRAM/UISR frames) fit
  // inside M1's 16 GiB.
  bench::Section("M1 d) pause-window translation, pre_translate on vs off (1 vCPU / 512 MiB each)");
  bench::Row("%-10s %14s %14s %10s %14s", "x", "transl-off(s)", "transl-on(s)", "speedup",
             "pre_transl(s)");
  for (int vms : {4, 8, 16}) {
    const TransplantReport off = RunOnce(MachineProfile::M1(), vms, 1, 512ull << 20, false);
    const TransplantReport on = RunOnce(MachineProfile::M1(), vms, 1, 512ull << 20, true);
    const double speedup = bench::Sec(on.phases.translation) > 0
                               ? bench::Sec(off.phases.translation) / bench::Sec(on.phases.translation)
                               : 0.0;
    bench::Row("%-10s %14.3f %14.3f %9.0fx %14.3f", (std::to_string(vms) + " VMs").c_str(),
               bench::Sec(off.phases.translation), bench::Sec(on.phases.translation), speedup,
               bench::Sec(on.phases.pre_translation));
    if (vms == 16) {
      report.SetScalar("translation_s_16vms_legacy", bench::Sec(off.phases.translation));
      report.SetScalar("translation_s_16vms_pretranslate", bench::Sec(on.phases.translation));
      report.SetScalar("translation_speedup_16vms", speedup);
      report.SetScalar("downtime_s_16vms_legacy", bench::Sec(off.downtime));
      report.SetScalar("downtime_s_16vms_pretranslate", bench::Sec(on.downtime));
    }
  }
}

void Run() {
  bench::Banner("Fig. 7 — InPlaceTP scalability, Xen -> KVM",
                "Paper reference: downtime stays within 1.7-3.6 s on M1 and 2.94-4.28 s on "
                "M2 across all sweeps; reboot grows 1.55 -> ~2.46 s with memory on M1.");
  bench::BenchReport report("fig7_inplace_scaling");
  Sweep(MachineProfile::M1(), report);
  Sweep(MachineProfile::M2(), report);
  PretranslateComparison(report);
  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main() {
  hypertp::Run();
  return 0;
}
