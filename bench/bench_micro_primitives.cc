// Microbenchmarks for HyperTP's hot primitives: UISR encode/decode, per-vCPU
// format translation, PRAM build/parse, CRC32, and the zero-copy
// encode-into-PRAM save path against the legacy materialize-then-copy store.
// These measure the real (host) cost of the state-manipulation code paths —
// the parts of HyperTP that would run inside the paper's downtime window.
//
// Writes BENCH_micro_primitives.json (series in ms and GB/s plus scalar
// speedups). Timings are host-dependent; the committed baseline under
// bench/baselines/ is a reference snapshot, not a regression oracle.
//
// `--smoke` shrinks reps/sizes so sanitizer runs (tests/run_sanitized.sh)
// cover every code path in seconds.

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench/bench_util.h"
#include "src/base/bytes.h"
#include "src/base/crc32.h"
#include "src/hw/physical_memory.h"
#include "src/kvm/kvm_uisr.h"
#include "src/pram/frame_writer.h"
#include "src/pram/pram.h"
#include "src/uisr/codec.h"
#include "src/xen/xen_uisr.h"

namespace hypertp {
namespace {

struct BenchConfig {
  int reps = 7;           // Best-of reps per measurement.
  int encode_iters = 200; // Encodes per timed rep.
  int crc_iters = 64;     // CRC passes per timed rep.
  uint64_t pram_gib = 1;  // Guest size for the PRAM build/parse loop.
};

using Clock = std::chrono::steady_clock;

// Best-of-`reps` wall-clock seconds of `fn()`.
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    fn();
    const auto end = Clock::now();
    const double s = std::chrono::duration<double>(end - start).count();
    if (rep == 0 || s < best) {
      best = s;
    }
  }
  return best;
}

double GbPerSec(uint64_t bytes, double seconds) {
  if (seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / seconds / 1e9;
}

// `device_bytes` attaches that much opaque device-model state split across
// four devices — virtio queue/ring snapshots are what makes real blobs big,
// and they are the bulk bytes the zero-copy store exists to avoid re-copying.
UisrVm MakeVm(uint32_t vcpus, uint64_t uid, uint64_t device_bytes = 0) {
  UisrVm vm;
  vm.vm_uid = uid;
  vm.name = "bench";
  vm.memory.memory_bytes = 1ull << 30;
  for (uint32_t i = 0; i < vcpus; ++i) {
    vm.vcpus.push_back(MakeSyntheticVcpu(static_cast<VmId>(uid), i));
  }
  vm.ioapic.num_pins = 48;
  if (device_bytes > 0) {
    for (uint32_t d = 0; d < 4; ++d) {
      UisrDeviceState dev;
      dev.model = d % 2 == 0 ? "virtio-net" : "virtio-blk";
      dev.instance = d;
      dev.opaque.resize(device_bytes / 4);
      for (size_t i = 0; i < dev.opaque.size(); ++i) {
        dev.opaque[i] = static_cast<uint8_t>(i * 31 + d + uid);
      }
      vm.devices.push_back(std::move(dev));
    }
  }
  return vm;
}

void BenchUisrCodec(const BenchConfig& cfg, bench::BenchReport& report) {
  bench::Section("UISR encode/decode (10-vCPU VM)");
  const UisrVm vm = MakeVm(10, 1);
  const uint64_t blob_bytes = EncodedUisrSize(vm);
  const uint64_t total = blob_bytes * static_cast<uint64_t>(cfg.encode_iters);

  const double enc_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < cfg.encode_iters; ++i) {
      ByteWriter w;
      EncodeUisrVm(vm, w);
    }
  });
  const std::vector<uint8_t> blob = EncodeUisrVm(vm);
  const double dec_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < cfg.encode_iters; ++i) {
      auto decoded = DecodeUisrVm(blob);
      if (!decoded.ok()) {
        std::fprintf(stderr, "decode failed: %s\n", decoded.error().ToString().c_str());
        return;
      }
    }
  });
  report.AddSample("uisr_encode_gb_s", GbPerSec(total, enc_s));
  report.AddSample("uisr_decode_gb_s", GbPerSec(total, dec_s));
  report.SetScalar("uisr_blob_bytes", static_cast<double>(blob_bytes));
  bench::Row("%-28s %10.3f GB/s", "encode", GbPerSec(total, enc_s));
  bench::Row("%-28s %10.3f GB/s", "decode", GbPerSec(total, dec_s));
}

void BenchVcpuTranslation(const BenchConfig& cfg, bench::BenchReport& report) {
  bench::Section("per-vCPU format translation (round trips)");
  const UisrVcpu vcpu = MakeSyntheticVcpu(2, 0);
  const int iters = cfg.encode_iters * 10;

  FixupLog log;
  const double xen_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < iters; ++i) {
      auto xen = XenVcpuFromUisr(vcpu, 2, &log);
      auto back = XenVcpuToUisr(*xen);
      if (!back.ok() || back->id != vcpu.id) {
        std::fprintf(stderr, "xen round trip drifted\n");
        return;
      }
      log.clear();
    }
  });
  const double kvm_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < iters; ++i) {
      auto kvm = KvmVcpuFromUisr(vcpu);
      auto back = KvmVcpuToUisr(*kvm);
      if (!back.ok() || back->id != vcpu.id) {
        std::fprintf(stderr, "kvm round trip drifted\n");
        return;
      }
    }
  });
  const double xen_us = xen_s * 1e6 / iters;
  const double kvm_us = kvm_s * 1e6 / iters;
  report.AddSample("xen_vcpu_roundtrip_us", xen_us);
  report.AddSample("kvm_vcpu_roundtrip_us", kvm_us);
  bench::Row("%-28s %10.3f us", "xen<->uisr", xen_us);
  bench::Row("%-28s %10.3f us", "kvm<->uisr", kvm_us);
}

void BenchPramBuildParse(const BenchConfig& cfg, bench::BenchReport& report) {
  bench::Section("PRAM build+parse");
  const double s = BestSeconds(cfg.reps, [&] {
    PhysicalMemory ram((cfg.pram_gib + 2) << 30);
    const uint64_t frames = cfg.pram_gib << 18;
    Mfn base =
        ram.Alloc(frames, kFramesPerHugePage, FrameOwner{FrameOwnerKind::kGuest, 1}).value();
    std::vector<PramPageEntry> entries;
    BuildEntriesForRange(0, base, frames, true, entries);
    PramBuilder builder(ram);
    (void)builder.AddFile("vm", cfg.pram_gib << 30, true, std::move(entries));
    auto handle = builder.Finalize();
    auto image = ParsePram(ram, handle->root_mfn);
    if (!image.ok()) {
      std::fprintf(stderr, "pram parse failed: %s\n", image.error().ToString().c_str());
    }
  });
  report.AddSample("pram_build_parse_ms", s * 1e3);
  bench::Row("%-28s %10.3f ms (%llu GiB guest)", "build+parse", s * 1e3,
             static_cast<unsigned long long>(cfg.pram_gib));
}

void BenchCrc32(const BenchConfig& cfg, bench::BenchReport& report) {
  bench::Section("CRC32 (dispatched / slice-by-8 / bitwise reference)");
  std::vector<uint8_t> buf(1 << 20);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  const uint64_t total = buf.size() * static_cast<uint64_t>(cfg.crc_iters);

  uint32_t sink = 0;
  const double fast_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < cfg.crc_iters; ++i) {
      sink ^= Crc32(buf);
    }
  });
  const double sliced_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < cfg.crc_iters; ++i) {
      sink ^= Crc32UpdateSliced(0, buf);
    }
  });
  // The bitwise path is ~20x slower; run fewer passes for the same series.
  const int bitwise_iters = cfg.crc_iters / 8 + 1;
  const double bitwise_s = BestSeconds(cfg.reps, [&] {
    for (int i = 0; i < bitwise_iters; ++i) {
      sink ^= Crc32UpdateBitwise(0xFFFFFFFFu, buf) ^ 0xFFFFFFFFu;
    }
  });
  if (sink == 0xDEADBEEF) {  // Defeat dead-code elimination of the loops.
    std::printf("(unlikely sink)\n");
  }
  const double fast_gb = GbPerSec(total, fast_s);
  const double sliced_gb = GbPerSec(total, sliced_s);
  const double bitwise_gb =
      GbPerSec(buf.size() * static_cast<uint64_t>(bitwise_iters), bitwise_s);
  report.AddSample("crc32_fast_gb_s", fast_gb);
  report.AddSample("crc32_sliced_gb_s", sliced_gb);
  report.AddSample("crc32_bitwise_gb_s", bitwise_gb);
  if (bitwise_gb > 0.0) {
    report.SetScalar("crc32_fast_speedup", fast_gb / bitwise_gb);
    report.SetScalar("crc32_slice8_speedup", sliced_gb / bitwise_gb);
  }
  bench::Row("%-28s %10.3f GB/s", "dispatched (hw if present)", fast_gb);
  bench::Row("%-28s %10.3f GB/s", "slice-by-8", sliced_gb);
  bench::Row("%-28s %10.3f GB/s (x%.1f sliced)", "bitwise reference", bitwise_gb,
             bitwise_gb > 0.0 ? sliced_gb / bitwise_gb : 0.0);
}

// The headline comparison: encoding a VM batch straight into backed PRAM
// frames (PramFrameWriter) vs the legacy materialize-then-copy store
// (encode into a vector, then write it page-by-page as per-page vectors —
// what StoreUisrBlob did before the zero-copy path).
void BenchEncodeToPram(const BenchConfig& cfg, bench::BenchReport& report) {
  bench::Section("encode-to-PRAM vs materialize-then-copy");
  constexpr int kVms = 8;
  // 10 vCPUs + 1 MiB of opaque device state per VM: blobs sized like a VM
  // with a few virtio devices mid-flight, where bulk bytes dominate the wire
  // image and the store path's copy count is what decides throughput.
  constexpr uint64_t kDeviceBytes = 1ull << 20;
  std::vector<UisrVm> vms;
  uint64_t batch_bytes = 0;
  for (int i = 0; i < kVms; ++i) {
    vms.push_back(MakeVm(10, static_cast<uint64_t>(i + 1), kDeviceBytes));
    batch_bytes += EncodedUisrSize(vms.back());
  }
  const int iters = cfg.encode_iters / 8 + 1;
  const uint64_t total = batch_bytes * static_cast<uint64_t>(iters);
  PhysicalMemory ram(1ull << 30);

  const double legacy_s = BestSeconds(cfg.reps, [&] {
    for (int it = 0; it < iters; ++it) {
      for (const UisrVm& vm : vms) {
        // Materialize the full blob...
        ByteWriter w;
        EncodeUisrVm(vm, w);
        const std::span<const uint8_t> blob = w.bytes();
        // ...then copy it page-by-page, a vector per page (the old store).
        const uint64_t frames = (blob.size() + kPageSize - 1) / kPageSize;
        Mfn base = ram.Alloc(frames, 1, FrameOwner{FrameOwnerKind::kUisr, vm.vm_uid}).value();
        for (uint64_t f = 0; f < frames; ++f) {
          const size_t begin = f * kPageSize;
          const size_t end = begin + kPageSize < blob.size() ? begin + kPageSize : blob.size();
          std::vector<uint8_t> page(blob.begin() + static_cast<ptrdiff_t>(begin),
                                    blob.begin() + static_cast<ptrdiff_t>(end));
          (void)ram.WritePage(base + f, std::move(page));
        }
        (void)ram.Free(base, frames);
      }
    }
  });

  const double zero_copy_s = BestSeconds(cfg.reps, [&] {
    for (int it = 0; it < iters; ++it) {
      for (const UisrVm& vm : vms) {
        auto writer = PramFrameWriter::Create(ram, vm.vm_uid, EncodedUisrSize(vm));
        if (!writer.ok()) {
          std::fprintf(stderr, "frame writer: %s\n", writer.error().ToString().c_str());
          return;
        }
        EncodeUisrVm(vm, static_cast<SpanWriter&>(*writer));
        (void)ram.Free(writer->frames().base, writer->frames().count);
      }
    }
  });

  const double legacy_gb = GbPerSec(total, legacy_s);
  const double zero_copy_gb = GbPerSec(total, zero_copy_s);
  report.AddSample("store_legacy_gb_s", legacy_gb);
  report.AddSample("store_zero_copy_gb_s", zero_copy_gb);
  if (legacy_gb > 0.0) {
    report.SetScalar("encode_to_pram_speedup", zero_copy_gb / legacy_gb);
  }
  report.SetScalar("store_batch_bytes", static_cast<double>(batch_bytes));
  bench::Row("%-28s %10.3f GB/s", "materialize-then-copy", legacy_gb);
  bench::Row("%-28s %10.3f GB/s (x%.2f)", "encode-into-frames", zero_copy_gb,
             legacy_gb > 0.0 ? zero_copy_gb / legacy_gb : 0.0);
}

void Run(const BenchConfig& cfg) {
  bench::Banner("Micro primitives — host cost of the state-manipulation hot paths",
                "UISR codec, vCPU translation, PRAM build/parse, CRC32, and the "
                "zero-copy encode-into-PRAM store. Wall-clock; host-dependent.");
  bench::BenchReport report("micro_primitives");
  BenchUisrCodec(cfg, report);
  BenchVcpuTranslation(cfg, report);
  BenchPramBuildParse(cfg, report);
  BenchCrc32(cfg, report);
  BenchEncodeToPram(cfg, report);
  report.WriteJsonArtifact();
}

}  // namespace
}  // namespace hypertp

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Keep MiB-sized blob buffers on the heap instead of per-iteration mmap —
  // otherwise both store paths measure page-fault churn, not the copies.
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
#endif
  hypertp::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.reps = 1;
      cfg.encode_iters = 8;
      cfg.crc_iters = 2;
      cfg.pram_gib = 1;
    }
  }
  hypertp::Run(cfg);
  return 0;
}
