// google-benchmark microbenchmarks for HyperTP's hot primitives: UISR
// encode/decode, per-vCPU format translation, PRAM build/parse, CRC32.
// These measure the real (host) cost of the state-manipulation code paths —
// the parts of HyperTP that would run inside the paper's downtime window.

#include <benchmark/benchmark.h>

#include "src/base/crc32.h"
#include "src/hw/physical_memory.h"
#include "src/kvm/kvm_uisr.h"
#include "src/pram/pram.h"
#include "src/uisr/codec.h"
#include "src/xen/xen_uisr.h"

namespace hypertp {
namespace {

UisrVm MakeVm(uint32_t vcpus) {
  UisrVm vm;
  vm.vm_uid = 1;
  vm.name = "bench";
  vm.memory.memory_bytes = 1ull << 30;
  for (uint32_t i = 0; i < vcpus; ++i) {
    vm.vcpus.push_back(MakeSyntheticVcpu(1, i));
  }
  vm.ioapic.num_pins = 48;
  return vm;
}

void BM_UisrEncode(benchmark::State& state) {
  const UisrVm vm = MakeVm(static_cast<uint32_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto blob = EncodeUisrVm(vm);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_UisrEncode)->Arg(1)->Arg(4)->Arg(10);

void BM_UisrDecode(benchmark::State& state) {
  const auto blob = EncodeUisrVm(MakeVm(static_cast<uint32_t>(state.range(0))));
  for (auto _ : state) {
    auto vm = DecodeUisrVm(blob);
    benchmark::DoNotOptimize(vm);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_UisrDecode)->Arg(1)->Arg(4)->Arg(10);

void BM_XenVcpuTranslation(benchmark::State& state) {
  const UisrVcpu vcpu = MakeSyntheticVcpu(2, 0);
  FixupLog log;
  for (auto _ : state) {
    auto xen = XenVcpuFromUisr(vcpu, 2, &log);
    auto back = XenVcpuToUisr(*xen);
    benchmark::DoNotOptimize(back);
    log.clear();
  }
}
BENCHMARK(BM_XenVcpuTranslation);

void BM_KvmVcpuTranslation(benchmark::State& state) {
  const UisrVcpu vcpu = MakeSyntheticVcpu(3, 0);
  for (auto _ : state) {
    auto kvm = KvmVcpuFromUisr(vcpu);
    auto back = KvmVcpuToUisr(*kvm);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_KvmVcpuTranslation);

void BM_PramBuildParse(benchmark::State& state) {
  const uint64_t gib = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    PhysicalMemory ram((gib + 2) << 30);
    const uint64_t frames = gib << 18;
    Mfn base = ram.Alloc(frames, kFramesPerHugePage, FrameOwner{FrameOwnerKind::kGuest, 1})
                   .value();
    std::vector<PramPageEntry> entries;
    for (uint64_t i = 0; i < frames; i += kFramesPerHugePage) {
      entries.push_back({i, base + i, kHugePageOrder});
    }
    PramBuilder builder(ram);
    (void)builder.AddFile("vm", gib << 30, true, std::move(entries));
    auto handle = builder.Finalize();
    auto image = ParsePram(ram, handle->root_mfn);
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_PramBuildParse)->Arg(1)->Arg(4)->Arg(12);

void BM_Crc32Page(benchmark::State& state) {
  std::vector<uint8_t> page(4096, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Crc32Page);

}  // namespace
}  // namespace hypertp

BENCHMARK_MAIN();
