// hypertpctl — the operator's command-line face of HyperTP. Each subcommand
// runs a self-contained scenario against a fresh simulated host/fleet and
// prints what a real hypertpctl would show.
//
//   hypertpctl status       memory-separation view of a loaded Xen host
//   hypertpctl transplant   in-place Xen -> KVM with the full phase report
//   hypertpctl chain        Xen -> bhyve -> KVM across the whole repertoire
//   hypertpctl checkpoint   cold save/restore across hypervisors
//   hypertpctl policy       what to do about each famous CVE
//   hypertpctl json         telemetry export of a transplant report

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/core/checkpoint.h"
#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/core/telemetry.h"
#include "src/guest/guest_image.h"
#include "src/hw/usage.h"
#include "src/vulndb/vulndb.h"

using namespace hypertp;

namespace {

std::unique_ptr<Hypervisor> LoadedXenHost(Machine& machine, int vms) {
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  for (int i = 0; i < vms; ++i) {
    auto id = xen->CreateVm(VmConfig::Small("vm-" + std::to_string(i)));
    if (id.ok()) {
      (void)InstallGuestImage(*xen, *id, 9000 + static_cast<uint64_t>(i));
    }
  }
  return xen;
}

int CmdStatus() {
  Machine machine(MachineProfile::M1(), 1);
  auto xen = LoadedXenHost(machine, 4);
  std::printf("host %s running %s with %zu VMs\n\n", machine.hostname().c_str(),
              std::string(xen->name()).c_str(), xen->ListVms().size());
  std::printf("%s", DescribeMachineUsage(machine).ToString().c_str());
  return 0;
}

int CmdTransplant() {
  Machine machine(MachineProfile::M1(), 1);
  auto xen = LoadedXenHost(machine, 2);
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->report.ToString().c_str());
  return 0;
}

int CmdChain() {
  Machine machine(MachineProfile::M1(), 1);
  std::unique_ptr<Hypervisor> hv = LoadedXenHost(machine, 1);
  InPlaceOptions options;
  options.remap_high_ioapic_pins = true;
  for (HypervisorKind hop :
       {HypervisorKind::kBhyve, HypervisorKind::kKvm, HypervisorKind::kXen}) {
    auto result = InPlaceTransplant::Run(std::move(hv), hop, options);
    if (!result.ok()) {
      std::fprintf(stderr, "hop failed: %s\n", result.error().ToString().c_str());
      return 1;
    }
    hv = std::move(result->hypervisor);
    std::printf("-> %-22s downtime %-10s fixups %zu\n",
                std::string(hv->name()).c_str(),
                FormatDuration(result->report.downtime).c_str(),
                result->report.fixups.size());
  }
  std::printf("full-circle transplant across the 3-hypervisor repertoire complete\n");
  return 0;
}

int CmdCheckpoint() {
  Machine m1(MachineProfile::M1(), 1);
  Machine m2(MachineProfile::M1(), 2);
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, m1);
  std::unique_ptr<Hypervisor> bhyve = MakeHypervisor(HypervisorKind::kBhyve, m2);
  auto id = xen->CreateVm(VmConfig::Small("suspendme"));
  if (!id.ok()) {
    return 1;
  }
  (void)xen->PrepareVmForTransplant(*id);
  (void)xen->PauseVm(*id);
  auto blob = SaveVmCheckpoint(*xen, *id);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.error().ToString().c_str());
    return 1;
  }
  auto info = InspectCheckpoint(*blob);
  std::printf("checkpoint: vm '%s' (uid %llu) from %s — %zu KiB, %llu pages captured\n",
              info->name.c_str(), static_cast<unsigned long long>(info->vm_uid),
              info->source_hypervisor.c_str(), blob->size() / 1024,
              static_cast<unsigned long long>(info->page_count));
  (void)xen->DestroyVm(*id);
  auto restored = RestoreVmCheckpoint(*bhyve, *blob);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.error().ToString().c_str());
    return 1;
  }
  (void)bhyve->ResumeVm(*restored);
  std::printf("restored cold onto %s and resumed — heterogeneous suspend/resume works\n",
              std::string(bhyve->name()).c_str());
  return 0;
}

int CmdPolicy() {
  const std::vector<HypervisorKind> pool = {HypervisorKind::kXen, HypervisorKind::kKvm,
                                            HypervisorKind::kBhyve};
  for (const char* id :
       {"CVE-2016-6258", "CVE-2017-12188", "CVE-2015-3456", "CVE-2015-8104"}) {
    const CveRecord* cve = nullptr;
    for (const CveRecord& r : VulnDatabase()) {
      if (r.id == id) {
        cve = &r;
      }
    }
    if (cve == nullptr) {
      continue;
    }
    const HypervisorKind current =
        cve->affects_xen ? HypervisorKind::kXen : HypervisorKind::kKvm;
    auto decision = DecideTransplant(current, {{cve}}, pool);
    std::printf("%-16s (CVSS %.1f, on %s): %s\n", cve->id.c_str(), cve->cvss_v2,
                std::string(HypervisorKindName(current)).c_str(), decision.rationale.c_str());
  }
  return 0;
}

int CmdJson() {
  Machine machine(MachineProfile::M1(), 1);
  auto xen = LoadedXenHost(machine, 1);
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!result.ok()) {
    return 1;
  }
  std::printf("%s\n", TransplantReportToJson(result->report).c_str());
  return 0;
}

void Usage() {
  std::printf("usage: hypertpctl <status|transplant|chain|checkpoint|policy|json>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "status") == 0) {
    return CmdStatus();
  }
  if (std::strcmp(cmd, "transplant") == 0) {
    return CmdTransplant();
  }
  if (std::strcmp(cmd, "chain") == 0) {
    return CmdChain();
  }
  if (std::strcmp(cmd, "checkpoint") == 0) {
    return CmdCheckpoint();
  }
  if (std::strcmp(cmd, "policy") == 0) {
    return CmdPolicy();
  }
  if (std::strcmp(cmd, "json") == 0) {
    return CmdJson();
  }
  Usage();
  return 2;
}
