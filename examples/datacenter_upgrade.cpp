// Cluster-scale upgrade console: plan and execute a whole-cluster hypervisor
// transplant with the BtrPlace-like planner, comparing the all-migration
// plan against a mixed InPlaceTP/MigrationTP plan (the paper's §5.4 setup).
//
//   $ ./build/examples/datacenter_upgrade

#include <cstdio>

#include "src/cluster/cluster.h"

using namespace hypertp;

namespace {

void RunScenario(double inplace_fraction) {
  std::printf("\n=== %.0f%% of VMs InPlaceTP-compatible ===\n", inplace_fraction * 100.0);
  ClusterModel cluster = ClusterModel::PaperCluster(inplace_fraction);

  auto plan = PlanClusterUpgrade(cluster, /*group_size=*/2);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.error().ToString().c_str());
    return;
  }
  std::printf("plan: %zu offline groups, %d migrations total\n", plan->steps.size(),
              plan->total_migrations());
  for (size_t i = 0; i < plan->steps.size(); ++i) {
    const UpgradeStep& step = plan->steps[i];
    std::printf("  step %zu: hosts {", i + 1);
    for (size_t h : step.group) {
      std::printf(" %zu", h);
    }
    std::printf(" } — %zu evacuations, rest ride the micro-reboot\n", step.migrations.size());
  }

  auto stats = ExecuteClusterUpgrade(cluster, *plan, ClusterExecutionParams{});
  if (!stats.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", stats.error().ToString().c_str());
    return;
  }
  std::printf("executed: %d migrations, migration time %s, in-place time %s, TOTAL %s\n",
              stats->migrations, FormatDuration(stats->migration_time).c_str(),
              FormatDuration(stats->inplace_time).c_str(),
              FormatDuration(stats->total_time).c_str());

  int upgraded = 0;
  for (const ClusterHost& host : cluster.hosts()) {
    upgraded += host.upgraded;
  }
  std::printf("cluster state: %d/%zu hosts upgraded, %zu VMs placed\n", upgraded,
              cluster.hosts().size(), cluster.vms().size());
}

}  // namespace

int main() {
  std::printf("Datacenter upgrade planner — 10 hosts x 10 VMs (1 vCPU / 4 GB), 10 Gbps\n");
  std::printf("(paper Fig. 13: 154 migrations at 0%%; 25 migrations and ~80%% faster at 80%%)\n");
  for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    RunScenario(fraction);
  }
  return 0;
}
