// Workload impact explorer: what does a tenant actually feel? Runs a
// Redis-like service through both transplant approaches and prints the QPS
// timeline plus the darknet-trainer view — the paper's §5.3 story in one
// executable.
//
//   $ ./build/examples/workload_impact

#include <cstdio>
#include <memory>

#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/core/migration_tp.h"
#include "src/workload/darknet.h"
#include "src/workload/throughput.h"

using namespace hypertp;

namespace {

void PrintTimeline(const TimeSeries& series) {
  for (SimTime t = 0; t + Seconds(10) <= series.points().back().time; t += Seconds(10)) {
    const double mean = series.MeanInWindow(t, t + Seconds(10));
    std::string bar(static_cast<size_t>(mean / 2500.0), '#');
    std::printf("  t=%4.0fs %8.0f qps %s\n", ToSeconds(t), mean, bar.c_str());
  }
}

}  // namespace

int main() {
  VmConfig config = VmConfig::Small("redis");
  config.vcpus = 2;
  config.memory_bytes = 8ull << 30;

  std::printf("== InPlaceTP: a few seconds of darkness, then faster on KVM ==\n");
  {
    Machine machine(MachineProfile::M1(), 1);
    std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
    (void)xen->CreateVm(config);
    auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.error().ToString().c_str());
      return 1;
    }
    auto schedule = InterferenceSchedule::ForInPlace(result->report, Seconds(50), true);
    Rng rng(5);
    TimeSeries series = GenerateThroughput(ThroughputModel::Redis(), Seconds(160), Seconds(1),
                                           schedule, true, rng, "redis");
    PrintTimeline(series);
    std::printf("  gap: %s; downtime (CPU view): %s\n",
                FormatDuration(series.LongestGapBelow(100.0)).c_str(),
                FormatDuration(result->report.downtime).c_str());
  }

  std::printf("\n== MigrationTP: no darkness, but a long degraded window ==\n");
  {
    Machine src_machine(MachineProfile::M1(), 2);
    Machine dst_machine(MachineProfile::M1(), 3);
    std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, src_machine);
    std::unique_ptr<Hypervisor> kvm = MakeHypervisor(HypervisorKind::kKvm, dst_machine);
    auto id = xen->CreateVm(config);
    MigrationConfig mig;
    mig.dirty_pages_per_sec = 8000.0;
    auto result = MigrationTransplant::Run(*xen, {*id}, *kvm, NetworkLink{1.0}, mig);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.error().ToString().c_str());
      return 1;
    }
    auto schedule = InterferenceSchedule::ForMigration(result->migrations[0], Seconds(46), 0.55);
    Rng rng(6);
    TimeSeries series = GenerateThroughput(ThroughputModel::Redis(), Seconds(220), Seconds(1),
                                           schedule, true, rng, "redis");
    PrintTimeline(series);
    std::printf("  copy window: %s; downtime: %s\n",
                FormatDuration(result->migrations[0].total_time -
                               result->migrations[0].downtime)
                    .c_str(),
                FormatDuration(result->migrations[0].downtime).c_str());
  }

  std::printf("\n== The ML trainer's view (Table 6) ==\n");
  {
    TransplantReport report;
    report.phases.pram = SecondsF(0.6);
    report.downtime = SecondsF(2.9);
    report.network_downtime = SecondsF(6.9);
    auto schedule = InterferenceSchedule::ForInPlace(report, Seconds(100), false);
    DarknetRun run = RunDarknetTraining(DarknetConfig{}, schedule);
    std::printf("  100 iterations: avg %.3f s, longest %.3f s "
                "(one iteration absorbs the whole pause)\n",
                run.average(), run.longest());
  }
  return 0;
}
