// Quickstart: boot a simulated Xen host, run a VM, transplant the host to
// KVM in place, and verify the VM survived with its memory untouched.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/core/factory.h"
#include "src/core/inplace.h"
#include "src/hw/machine.h"

using namespace hypertp;

int main() {
  // 1. A physical server (the paper's M1: 4c/8t, 16 GB RAM, 1 Gbps NIC).
  Machine machine(MachineProfile::M1(), /*id=*/1);

  // 2. Boot XenVisor on it and start a guest.
  std::unique_ptr<Hypervisor> xen = MakeHypervisor(HypervisorKind::kXen, machine);
  auto vm = xen->CreateVm(VmConfig::Small("my-first-vm"));
  if (!vm.ok()) {
    std::fprintf(stderr, "create failed: %s\n", vm.error().ToString().c_str());
    return 1;
  }
  std::printf("VM '%s' running on %s\n", "my-first-vm", std::string(xen->name()).c_str());

  // 3. The guest does some work: write recognizable data into its memory.
  for (Gfn gfn = 0; gfn < 64; ++gfn) {
    (void)xen->WriteGuestPage(*vm, gfn, 0xC0FFEE00 + gfn);
  }
  const uint64_t uid = xen->GetVmInfo(*vm)->uid;

  // 4. A critical Xen vulnerability drops. Transplant the host to KVM —
  //    micro-reboot included — without touching the guest's memory.
  auto result = InPlaceTransplant::Run(std::move(xen), HypervisorKind::kKvm, InPlaceOptions{});
  if (!result.ok()) {
    std::fprintf(stderr, "transplant failed: %s\n", result.error().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", result->report.ToString().c_str());

  // 5. Same VM, same memory, different hypervisor.
  Hypervisor& kvm = *result->hypervisor;
  const VmId new_id = result->restored_vms.at(0);
  std::printf("VM uid %llu now runs on %s\n", static_cast<unsigned long long>(uid),
              std::string(kvm.name()).c_str());
  for (Gfn gfn = 0; gfn < 64; ++gfn) {
    const uint64_t word = kvm.ReadGuestPage(new_id, gfn).value_or(0);
    if (word != 0xC0FFEE00 + gfn) {
      std::fprintf(stderr, "memory corrupted at gfn %llu!\n",
                   static_cast<unsigned long long>(gfn));
      return 1;
    }
  }
  std::printf("guest memory verified: 64/64 sampled pages identical and in place\n");
  std::printf("downtime was %s; the guest never knew its hypervisor changed species\n",
              FormatDuration(result->report.downtime).c_str());
  return 0;
}
