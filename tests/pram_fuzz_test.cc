// Property/fuzz tests for PRAM: randomized guest layouts round-trip through
// build -> finalize -> parse -> preserve -> scrub, seeded and parameterized.

#include <gtest/gtest.h>

#include <map>

#include "src/pram/pram.h"
#include "src/sim/rng.h"

namespace hypertp {
namespace {

class PramFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PramFuzzTest, RandomLayoutsSurviveTheFullCycle) {
  Rng rng(GetParam());
  PhysicalMemory ram(512ull << 20);  // 128k frames.

  // Random number of VMs with random scattered allocations.
  const int vm_count = static_cast<int>(rng.NextInRange(1, 6));
  PramBuilder builder(ram);
  struct VmLayout {
    uint64_t file_id;
    std::vector<PramPageEntry> entries;
    std::map<Mfn, uint64_t> probes;  // mfn -> expected word (last write wins).
  };
  std::vector<VmLayout> layouts;

  for (int v = 0; v < vm_count; ++v) {
    VmLayout layout;
    std::vector<std::pair<Gfn, Mfn>> map;
    Gfn gfn = 0;
    const int chunks = static_cast<int>(rng.NextInRange(1, 8));
    for (int c = 0; c < chunks; ++c) {
      const uint64_t frames = static_cast<uint64_t>(rng.NextInRange(1, 2048));
      auto mfn = ram.Alloc(frames, 1, FrameOwner{FrameOwnerKind::kGuest, 100 + static_cast<uint64_t>(v)});
      if (!mfn.ok()) {
        break;  // RAM full: use what we have.
      }
      // Random GFN hole before this chunk.
      gfn += static_cast<Gfn>(rng.NextInRange(0, 512));
      for (uint64_t i = 0; i < frames; ++i) {
        map.emplace_back(gfn + i, *mfn + i);
      }
      // Probe a few random frames with content.
      for (int p = 0; p < 3; ++p) {
        const Mfn probe = *mfn + static_cast<uint64_t>(rng.NextBelow(frames));
        const uint64_t word = rng.NextU64() | 1;
        EXPECT_TRUE(ram.WriteWord(probe, word).ok());
        layout.probes[probe] = word;
      }
      gfn += frames;
    }
    if (map.empty()) {
      continue;
    }
    layout.entries = BuildPageEntries(map, rng.NextBool(0.5));
    auto id = builder.AddFile("fuzz-vm-" + std::to_string(v), map.size() * kPageSize, false,
                              layout.entries);
    ASSERT_TRUE(id.ok()) << id.error().ToString();
    layout.file_id = *id;
    layouts.push_back(std::move(layout));
  }

  // Interleave hostile allocations that must be scrubbed.
  std::vector<Mfn> hostiles;
  for (int i = 0; i < 10; ++i) {
    auto mfn = ram.Alloc(static_cast<uint64_t>(rng.NextInRange(1, 256)), 1,
                         FrameOwner{FrameOwnerKind::kHypervisor, 0});
    if (mfn.ok()) {
      hostiles.push_back(*mfn);
    }
  }

  auto handle = builder.Finalize();
  ASSERT_TRUE(handle.ok()) << handle.error().ToString();
  auto image = ParsePram(ram, handle->root_mfn);
  ASSERT_TRUE(image.ok()) << image.error().ToString();
  ASSERT_EQ(image->files.size(), layouts.size());
  for (size_t v = 0; v < layouts.size(); ++v) {
    EXPECT_EQ(image->files[v].entries, layouts[v].entries) << "vm " << v;
  }

  auto preserve = PramPreservationList(ram, handle->root_mfn, *image);
  ASSERT_TRUE(preserve.ok());
  ram.ScrubExcept(*preserve);

  // Every probed guest word survived; every hostile frame did not.
  for (const VmLayout& layout : layouts) {
    for (const auto& [mfn, word] : layout.probes) {
      EXPECT_EQ(ram.ReadWord(mfn).value(), word);
    }
  }
  for (Mfn hostile : hostiles) {
    EXPECT_FALSE(ram.IsAllocated(hostile));
  }
  // And PRAM still parses post-scrub.
  EXPECT_TRUE(ParsePram(ram, handle->root_mfn).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PramFuzzTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull, 34ull,
                                           55ull, 89ull));

}  // namespace
}  // namespace hypertp
